package fascia

import (
	"repro/internal/cactus"
)

// CactusTemplate is a "tree-like template with triangles" (§I/§II-C of
// the paper): a connected template whose biconnected blocks are single
// edges or triangles.
type CactusTemplate = cactus.Template

// NewCactusTemplate builds and validates a triangle-cactus template from
// an undirected edge list over vertices 0..k-1.
func NewCactusTemplate(name string, k int, edges [][2]int) (*CactusTemplate, error) {
	return cactus.New(name, k, edges)
}

// TriangleTemplate returns the 3-cycle template.
func TriangleTemplate() *CactusTemplate { return cactus.Triangle() }

// TailedTriangleTemplate returns a triangle with a path of tail vertices
// attached.
func TailedTriangleTemplate(tail int) *CactusTemplate { return cactus.TailedTriangle(tail) }

// CountCactus estimates the number of non-induced occurrences of a
// triangle-cactus template by color coding with edge- and triangle-merge
// DP steps — the paper's "tree-like graph templates with triangles"
// capability. Iterations, colors and seed come from opt; table layout and
// parallel-mode options do not apply.
func CountCactus(g *Graph, t *CactusTemplate, opt Options) (Result, error) {
	e, err := cactus.NewEngine(g, t, cactus.Config{Colors: opt.Colors, Seed: opt.Seed})
	if err != nil {
		return Result{}, err
	}
	res, err := e.Run(opt.iterations(t.K()))
	if err != nil {
		return Result{}, err
	}
	return Result{
		Count:        res.Estimate,
		PerIteration: res.PerIteration,
		Iterations:   len(res.PerIteration),
	}, nil
}

// ExactCountCactus returns the exact occurrence count of a cactus
// template by exhaustive backtracking (small graphs only).
func ExactCountCactus(g *Graph, t *CactusTemplate) int64 {
	return cactus.Count(g, t)
}
