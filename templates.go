package fascia

import "repro/internal/tmpl"

// NewTemplate builds a tree template from an undirected edge list over
// vertices 0..k-1; labels may be nil.
func NewTemplate(name string, k int, edges [][2]int, labels []int32) (*Template, error) {
	return tmpl.NewTree(name, k, edges, labels)
}

// ParseTemplate builds a template from a compact edge-list string such as
// "0-1 1-2 1-3".
func ParseTemplate(name, spec string) (*Template, error) {
	return tmpl.Parse(name, spec)
}

// TemplateByName returns one of the paper's benchmark templates: U3-1,
// U3-2, U5-1, U5-2, U7-1, U7-2, U10-1, U10-2, U12-1, U12-2.
func TemplateByName(name string) (*Template, error) {
	return tmpl.Named(name)
}

// MustTemplate is TemplateByName for known-valid names; panics on error.
func MustTemplate(name string) *Template {
	return tmpl.MustNamed(name)
}

// PaperTemplates returns all ten benchmark templates in the paper's
// evaluation order.
func PaperTemplates() []*Template { return tmpl.NamedTemplates() }

// PaperTemplateNames lists the benchmark template names in order.
func PaperTemplateNames() []string {
	return append([]string(nil), tmpl.NamedTemplateNames...)
}

// PathTemplate returns the path on k vertices.
func PathTemplate(k int) *Template { return tmpl.Path(k) }

// StarTemplate returns the star on k vertices (vertex 0 is the center).
func StarTemplate(k int) *Template { return tmpl.Star(k) }

// AllTrees returns every non-isomorphic free tree on k vertices
// (1 <= k <= 12): 11 at k=7, 106 at k=10, 551 at k=12.
func AllTrees(k int) []*Template { return tmpl.AllTrees(k) }

// NumFreeTrees returns the number of free trees on k vertices.
func NumFreeTrees(k int) int { return tmpl.NumFreeTrees(k) }

// TemplatesIsomorphic reports whether two templates are isomorphic as
// free (optionally labeled) graphs.
func TemplatesIsomorphic(a, b *Template) bool { return tmpl.IsIsomorphic(a, b) }

// NewGraphTemplate builds a general connected template — tree or not —
// from an undirected edge list over vertices 0..k-1; labels may be nil.
// Non-tree templates are counted through the tree-decomposition DP and
// must have treewidth <= 2 (cycles, chordal cycles, tails) or be K4;
// wider templates are rejected when an engine is built.
func NewGraphTemplate(name string, k int, edges [][2]int, labels []int32) (*Template, error) {
	return tmpl.NewGraph(name, k, edges, labels)
}

// ParseGraphTemplate builds a template from a motif-zoo name
// ("triangle", "diamond", ...), compact cycle/clique notation ("c5",
// "cycle:5", "k4", "clique:4"), or a general edge-list string such as
// "0-1 1-2 2-0" — the non-tree counterpart of ParseTemplate.
func ParseGraphTemplate(name, spec string) (*Template, error) {
	return tmpl.ParseGraph(name, spec)
}

// CycleTemplate returns the k-cycle (k >= 3).
func CycleTemplate(k int) (*Template, error) { return tmpl.Cycle(k) }

// CliqueTemplate returns the complete graph on k vertices (3 <= k <= 16;
// only K4 and below fit the counting engine's width limit, larger
// cliques exist for exact baselines and tests).
func CliqueTemplate(k int) (*Template, error) { return tmpl.Clique(k) }

// MotifZooNames lists the size-3/4 motif zoo in canonical order:
// triangle, path3, star3, c4, diamond, tailed-triangle, k4.
func MotifZooNames() []string { return tmpl.ZooNames() }

// MotifZooTemplate returns a zoo motif by name ("paw" is accepted as an
// alias for tailed-triangle).
func MotifZooTemplate(name string) (*Template, error) { return tmpl.Zoo(name) }
