package fascia

import (
	"math"
	"math/rand"
	"testing"
)

func testGraph(seed int64) *Graph {
	return ErdosRenyi(40, 120, seed)
}

func TestCountAgainstExact(t *testing.T) {
	g := testGraph(1)
	tr := PathTemplate(4)
	want := float64(ExactCount(g, tr))
	res, err := Count(g, tr, DefaultOptions().WithIterations(500).WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Skip("degenerate instance")
	}
	if math.Abs(res.Count-want)/want > 0.10 {
		t.Fatalf("estimate %.1f, exact %.1f", res.Count, want)
	}
	if res.Iterations != 500 || len(res.PerIteration) != 500 {
		t.Fatal("iteration accounting wrong")
	}
	if res.Elapsed <= 0 || res.PeakTableBytes <= 0 {
		t.Fatal("metrics missing")
	}
}

func TestCountPaperTemplatesSmoke(t *testing.T) {
	g := Generate("circuit", 1.0, 7)
	for _, tr := range PaperTemplates() {
		res, err := Count(g, tr, DefaultOptions().WithIterations(2).WithSeed(1))
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if res.Count < 0 || math.IsNaN(res.Count) {
			t.Fatalf("%s: bad count %v", tr.Name(), res.Count)
		}
	}
}

func TestCountLabeled(t *testing.T) {
	g := AssignRandomLabels(testGraph(2), 3, 5)
	lt, err := PathTemplate(3).WithLabels("l", []int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(ExactCount(g, lt))
	res, err := CountLabeled(g, lt, DefaultOptions().WithIterations(800).WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if want > 0 && math.Abs(res.Count-want)/want > 0.15 {
		t.Fatalf("labeled estimate %.1f, exact %.1f", res.Count, want)
	}
	// Validation paths.
	if _, err := CountLabeled(g, PathTemplate(3), DefaultOptions()); err == nil {
		t.Fatal("unlabeled template accepted by CountLabeled")
	}
	un := testGraph(2)
	if _, err := CountLabeled(un, lt, DefaultOptions()); err == nil {
		t.Fatal("unlabeled graph accepted by CountLabeled")
	}
}

func TestOptionsChaining(t *testing.T) {
	o := DefaultOptions().
		WithIterations(7).
		WithSeed(11).
		WithThreads(2).
		WithTable(TableHash).
		WithPartition(PartitionBalanced).
		WithParallel(ParallelOuter)
	if o.Iterations != 7 || o.Seed != 11 || o.Threads != 2 ||
		o.Table != TableHash || o.Partition != PartitionBalanced || o.Parallel != ParallelOuter {
		t.Fatal("option chaining broken")
	}
	if o.iterations(5) != 7 {
		t.Fatal("iterations resolution wrong")
	}
	acc := DefaultOptions().WithAccuracy(0.5, 0.25)
	if acc.iterations(3) != IterationsFor(0.5, 0.25, 3) {
		t.Fatal("accuracy-derived iterations wrong")
	}
	if DefaultOptions().iterations(3) != 1 {
		t.Fatal("default iterations should be 1")
	}
}

func TestOptionStrings(t *testing.T) {
	if TableLazy.String() != "lazy" || TableNaive.String() != "naive" || TableHash.String() != "hash" {
		t.Fatal("table layout strings")
	}
	if PartitionOneAtATime.String() != "one-at-a-time" || PartitionBalanced.String() != "balanced" {
		t.Fatal("partition strings")
	}
	if ParallelAuto.String() != "auto" || ParallelInner.String() != "inner" || ParallelOuter.String() != "outer" {
		t.Fatal("parallel strings")
	}
	if TableLayout(9).String() == "" || PartitionStrategy(9).String() == "" || ParallelMode(9).String() == "" {
		t.Fatal("unknown enum strings")
	}
}

func TestInvalidOptionEnums(t *testing.T) {
	g := testGraph(3)
	tr := PathTemplate(3)
	bad := DefaultOptions()
	bad.Table = TableLayout(9)
	if _, err := Count(g, tr, bad); err == nil {
		t.Fatal("bad table layout accepted")
	}
	bad = DefaultOptions()
	bad.Partition = PartitionStrategy(9)
	if _, err := Count(g, tr, bad); err == nil {
		t.Fatal("bad partition accepted")
	}
	bad = DefaultOptions()
	bad.Parallel = ParallelMode(9)
	if _, err := Count(g, tr, bad); err == nil {
		t.Fatal("bad parallel mode accepted")
	}
}

func TestEngineReuse(t *testing.T) {
	g := testGraph(4)
	e, err := NewEngine(g, PathTemplate(3), DefaultOptions().WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	// Same engine, same seeds: identical estimates.
	if a.Count != b.Count {
		t.Fatal("engine runs not reproducible")
	}
	colors, prob, aut := e.EngineInternals()
	if colors != 3 || aut != 2 || math.Abs(prob-6.0/27.0) > 1e-12 {
		t.Fatalf("internals %d %v %d", colors, prob, aut)
	}
}

func TestSampleEmbeddingsPublic(t *testing.T) {
	g := testGraph(5)
	tr := MustTemplate("U5-2")
	embs, err := SampleEmbeddings(g, tr, DefaultOptions().WithIterations(20).WithSeed(2), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) != 10 {
		t.Fatalf("got %d embeddings", len(embs))
	}
	e, err := NewEngine(g, tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, emb := range embs {
		if err := e.VerifyEmbedding(emb); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVertexCountsPublic(t *testing.T) {
	g := testGraph(6)
	tr := MustTemplate("U5-2") // orbit vertex 0 is the degree-3 center
	opt := DefaultOptions().WithIterations(400).WithSeed(4)
	opt.RootVertex = 0
	got, err := VertexCounts(g, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantPer := ExactVertexCounts(g, tr, 0)
	var wantTotal, gotTotal float64
	for v := range got {
		gotTotal += got[v]
		wantTotal += float64(wantPer[v])
	}
	if wantTotal == 0 {
		t.Skip("degenerate instance")
	}
	if math.Abs(gotTotal-wantTotal)/wantTotal > 0.15 {
		t.Fatalf("total vertex counts %.1f, exact %.1f", gotTotal, wantTotal)
	}
}

func TestGraphletPipeline(t *testing.T) {
	g := testGraph(7)
	tr := MustTemplate("U5-2")
	est, err := GraphletDegrees(g, tr, 0, 400, DefaultOptions().WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	ex := ExactGraphletDegrees(g, tr, 0)
	agree := GDDAgreement(est, ex)
	if agree < 0.6 {
		t.Fatalf("GDD agreement %.3f too low", agree)
	}
	if GDDAgreement(ex, ex) < 0.999999 {
		t.Fatal("self agreement should be 1")
	}
}

func TestFindMotifsPublic(t *testing.T) {
	g := Generate("circuit", 1.0, 3)
	p, err := FindMotifs("circuit", g, 5, 100, DefaultOptions().WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Trees) != 3 || len(p.Counts) != 3 {
		t.Fatalf("profile sizes wrong: %d trees", len(p.Trees))
	}
	enum, err := EnumerateAllTrees(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	exacts := enum.Counts
	merr, err := MotifMeanRelativeError(p, exacts)
	if err != nil {
		t.Fatal(err)
	}
	if merr > 0.25 {
		t.Fatalf("mean relative error %.3f too high", merr)
	}
}

func TestGenerateAndNetworks(t *testing.T) {
	if len(Networks()) != 10 {
		t.Fatalf("expected 10 presets, got %d", len(Networks()))
	}
	if _, err := Network("enron"); err != nil {
		t.Fatal(err)
	}
	if _, err := Network("bogus"); err == nil {
		t.Fatal("unknown network accepted")
	}
	g := Generate("hpylori", 1.0, 1)
	if g.N() < 300 {
		t.Fatalf("hpylori-like network too small: %d", g.N())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with bad name should panic")
		}
	}()
	Generate("bogus", 1.0, 1)
}

func TestGraphFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := ErdosRenyi(30, 60, 2)
	if err := SaveGraph(dir+"/g.txt", g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(dir + "/g.txt")
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("file round trip mismatch")
	}
}

func TestTemplateSurface(t *testing.T) {
	if len(PaperTemplates()) != 10 || len(PaperTemplateNames()) != 10 {
		t.Fatal("paper template surface wrong")
	}
	tr, err := ParseTemplate("y", "0-1 1-2")
	if err != nil || !TemplatesIsomorphic(tr, PathTemplate(3)) {
		t.Fatal("parse/isomorphism surface broken")
	}
	if NumFreeTrees(7) != 11 || len(AllTrees(7)) != 11 {
		t.Fatal("free tree surface wrong")
	}
	if StarTemplate(5).Degree(0) != 4 {
		t.Fatal("star surface wrong")
	}
	if _, err := NewTemplate("bad", 3, [][2]int{{0, 1}}, nil); err == nil {
		t.Fatal("invalid template accepted")
	}
	if _, err := TemplateByName("U99-9"); err == nil {
		t.Fatal("unknown template accepted")
	}
}

func TestEnumerateExactEarlyStop(t *testing.T) {
	g := testGraph(8)
	n := 0
	EnumerateExact(g, PathTemplate(3), func(m []int32) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("early stop at %d", n)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := testGraph(9)
	tr := PathTemplate(5)
	opt := DefaultOptions().WithIterations(5).WithSeed(123)
	a, err := Count(g, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Count(g, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerIteration {
		if a.PerIteration[i] != b.PerIteration[i] {
			t.Fatal("runs with same seed differ")
		}
	}
}

func TestSeededRandHelper(t *testing.T) {
	// rand integration smoke: sampling API takes a caller RNG.
	g := testGraph(10)
	opt := DefaultOptions().WithSeed(77)
	opt.KeepTables = true
	e, err := NewEngine(g, PathTemplate(3), opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SampleEmbeddings(rand.New(rand.NewSource(1)), 3); err != nil {
		t.Fatal(err)
	}
}

func TestCountDistributedPublic(t *testing.T) {
	g := testGraph(11)
	tr := PathTemplate(4)
	opt := DefaultOptions().WithIterations(3).WithSeed(6)
	shared, err := Count(g, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 3} {
		res, err := CountDistributed(g, tr, ranks, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range shared.PerIteration {
			if res.PerIteration[i] != shared.PerIteration[i] {
				t.Fatalf("ranks=%d iter %d: distributed %v, shared %v",
					ranks, i, res.PerIteration[i], shared.PerIteration[i])
			}
		}
		if ranks > 1 && res.CommBytes == 0 {
			t.Fatal("no communication reported")
		}
	}
	if _, err := CountDistributed(g, tr, 0, opt); err == nil {
		t.Fatal("zero ranks accepted")
	}
	// Balanced strategy path.
	if _, err := CountDistributed(g, tr, 2, opt.WithPartition(PartitionBalanced)); err != nil {
		t.Fatal(err)
	}
}

func TestExactCountInducedPublic(t *testing.T) {
	g := testGraph(12)
	tr := PathTemplate(3)
	ind := ExactCountInduced(g, tr)
	non := ExactCount(g, tr)
	if ind > non {
		t.Fatalf("induced %d > non-induced %d", ind, non)
	}
}

func TestRewireGraphPublic(t *testing.T) {
	g := testGraph(13)
	r := RewireGraph(g, 10*g.M(), 3)
	if r.M() != g.M() {
		t.Fatal("rewire changed edge count")
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if r.Degree(v) != g.Degree(v) {
			t.Fatal("rewire changed a degree")
		}
	}
}

func TestFindMotifSignificancePublic(t *testing.T) {
	g := Generate("circuit", 1.0, 9)
	sig, err := FindMotifSignificance("circuit", g, 4, 60, 3, DefaultOptions().WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Z) != NumFreeTrees(4) {
		t.Fatalf("z-scores for %d trees, want %d", len(sig.Z), NumFreeTrees(4))
	}
	if _, err := FindMotifSignificance("x", g, 4, 5, 1, DefaultOptions()); err == nil {
		t.Fatal("one-sample ensemble accepted")
	}
	bad := DefaultOptions()
	bad.Table = TableLayout(9)
	if _, err := FindMotifSignificance("x", g, 4, 5, 3, bad); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestCountDirectedPublic(t *testing.T) {
	g := RandomDiGraph(30, 150, 3)
	tr := DiPathTemplate(3)
	want := float64(ExactCountDirected(g, tr))
	if want == 0 {
		t.Skip("degenerate instance")
	}
	res, err := CountDirected(g, tr, DefaultOptions().WithIterations(600).WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Count-want)/want > 0.12 {
		t.Fatalf("directed estimate %.1f, exact %.1f", res.Count, want)
	}
	// Orientation matters: in- and out-stars generally differ.
	arcs := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {4, 0}}
	h, err := NewDiGraph(5, arcs)
	if err != nil {
		t.Fatal(err)
	}
	if ExactCountDirected(h, DiStarOutTemplate(4)) != 1 {
		t.Fatal("out-star count wrong")
	}
	if ExactCountDirected(h, DiStarInTemplate(4)) != 0 {
		t.Fatal("in-star count wrong")
	}
	if _, err := NewDiTemplate("bad", 3, [][2]int{{0, 1}}); err == nil {
		t.Fatal("bad directed template accepted")
	}
	if _, err := CountDirected(g, tr, DefaultOptions().WithIterations(0)); err != nil {
		t.Fatal("default single iteration should work:", err)
	}
	balanced := DefaultOptions().WithIterations(2).WithPartition(PartitionBalanced)
	if _, err := CountDirected(g, tr, balanced); err != nil {
		t.Fatal(err)
	}
}

func TestCountConvergedPublic(t *testing.T) {
	g := testGraph(14)
	tr := PathTemplate(4)
	res, err := CountConverged(g, tr, 0.03, 4000, DefaultOptions().WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(ExactCount(g, tr))
	if want == 0 {
		t.Skip("degenerate")
	}
	if math.Abs(res.Count-want)/want > 0.12 {
		t.Fatalf("converged %.1f, exact %.1f after %d iterations", res.Count, want, res.Iterations)
	}
	if _, err := CountConverged(g, tr, -1, 10, DefaultOptions()); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestGraphletVectorsPublic(t *testing.T) {
	g := testGraph(15)
	templates := []*Template{PathTemplate(3), MustTemplate("U5-2")}
	gdv, err := ComputeGraphletVectors(g, templates, 40, DefaultOptions().WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	// P3: 2 orbits; U5-2 (spider 2,1,1): orbits {center},{2 leaves},{mid},{tip} = 4.
	if len(gdv.Orbits) != 6 {
		t.Fatalf("got %d orbits, want 6", len(gdv.Orbits))
	}
	arith, geom, err := GDVAgreement(gdv, gdv)
	if err != nil || arith < 0.999999 || geom < 0.999999 {
		t.Fatalf("self GDV agreement %v/%v err %v", arith, geom, err)
	}
}

func TestCountCactusPublic(t *testing.T) {
	g := Generate("ecoli", 0.3, 5) // clustered: plenty of triangles
	tr := TriangleTemplate()
	want := float64(ExactCountCactus(g, tr))
	if want == 0 {
		t.Skip("no triangles")
	}
	res, err := CountCactus(g, tr, DefaultOptions().WithIterations(400).WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Count-want)/want > 0.12 {
		t.Fatalf("triangle estimate %.1f, exact %.1f", res.Count, want)
	}
	// Tailed triangle too.
	tt := TailedTriangleTemplate(1)
	wantT := float64(ExactCountCactus(g, tt))
	resT, err := CountCactus(g, tt, DefaultOptions().WithIterations(400).WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if wantT > 0 && math.Abs(resT.Count-wantT)/wantT > 0.15 {
		t.Fatalf("tailed-triangle estimate %.1f, exact %.1f", resT.Count, wantT)
	}
	// Validation: non-cactus rejected.
	if _, err := NewCactusTemplate("c4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}); err == nil {
		t.Fatal("4-cycle accepted")
	}
}
