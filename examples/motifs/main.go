// Motif finding: estimate the relative frequencies of all 11 seven-vertex
// tree motifs across the four protein-interaction networks and show that
// the unicellular organisms cluster while C. elegans stands out — the
// paper's Figure 13 analysis.
//
// Run with: go run ./examples/motifs
package main

import (
	"fmt"
	"log"

	fascia "repro"
)

func main() {
	const (
		k     = 7
		iters = 50
		scale = 0.5 // half-sized PPI networks keep this example snappy
	)
	networks := []string{"ecoli", "scerevisiae", "hpylori", "celegans"}

	fmt.Printf("relative frequencies of all %d tree motifs on %d vertices (%d iterations)\n\n",
		fascia.NumFreeTrees(k), k, iters)

	profiles := make([]fascia.MotifProfile, 0, len(networks))
	for _, name := range networks {
		g := fascia.Generate(name, scale, 11)
		p, err := fascia.FindMotifs(name, g, k, iters, fascia.DefaultOptions().WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		profiles = append(profiles, p)
	}

	// Print the Figure 13 style overlay: one row per subgraph, one column
	// per network, counts scaled by each network's mean.
	fmt.Printf("%-9s", "subgraph")
	for _, name := range networks {
		fmt.Printf("%14s", name)
	}
	fmt.Println()
	rels := make([][]float64, len(profiles))
	for i, p := range profiles {
		rels[i] = p.RelativeFrequencies()
	}
	for s := 0; s < fascia.NumFreeTrees(k); s++ {
		fmt.Printf("%-9d", s+1)
		for i := range profiles {
			fmt.Printf("%14.4f", rels[i][s])
		}
		fmt.Println()
	}

	// Pairwise profile distances: the three unicellular organisms should
	// sit closer to each other than to C. elegans.
	fmt.Println("\npairwise motif-profile distances (mean |log ratio|):")
	for i := range profiles {
		for j := i + 1; j < len(profiles); j++ {
			d, err := fascia.MotifProfileDistance(profiles[i], profiles[j])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s vs %-12s %.3f\n", networks[i], networks[j], d)
		}
	}
}
