// Directed counting: the paper notes (§II-C) that color coding
// "theoretically allows for directed templates and networks" but analyzes
// only the undirected case. This example exercises the reproduction's
// directed variant: counting direction-preserving occurrences of oriented
// tree templates in a random digraph, and showing how orientation changes
// counts that the undirected view cannot distinguish.
//
// Run with: go run ./examples/directed
package main

import (
	"fmt"
	"log"

	fascia "repro"
)

func main() {
	// A skewed random digraph.
	g := fascia.RandomDiGraph(400, 2400, 7)
	fmt.Printf("digraph: n=%d arcs=%d\n\n", g.N(), g.A())

	opt := fascia.DefaultOptions().WithIterations(300).WithSeed(3)

	templates := []*fascia.DiTemplate{
		fascia.DiPathTemplate(4),                               // 0→1→2→3: a directed chain
		fascia.DiStarOutTemplate(4),                            // one broadcaster, three receivers
		fascia.DiStarInTemplate(4),                             // three broadcasters, one aggregator
		mustDi("feedfwd", 4, [][2]int{{0, 1}, {0, 2}, {1, 3}}), // out-tree
	}

	fmt.Printf("%-10s %14s %14s %10s\n", "template", "estimate", "exact", "rel.err")
	for _, t := range templates {
		res, err := fascia.CountDirected(g, t, opt)
		if err != nil {
			log.Fatal(err)
		}
		exact := fascia.ExactCountDirected(g, t)
		rel := 0.0
		if exact > 0 {
			rel = (res.Count - float64(exact)) / float64(exact)
		}
		fmt.Printf("%-10s %14.0f %14d %+9.2f%%\n", t.Name(), res.Count, exact, 100*rel)
	}

	// Orientation is information: in a citation-style digraph (arcs point
	// "old → new" along a preferential chain), in-stars and out-stars
	// diverge sharply even though the undirected skeleton is identical.
	arcs := make([][2]int32, 0, 1200)
	for v := int32(1); v < 400; v++ {
		for j := 0; j < 3 && j < int(v); j++ {
			arcs = append(arcs, [2]int32{v, (v * int32(j+1) * 7919) % v})
		}
	}
	cite, err := fascia.NewDiGraph(400, arcs)
	if err != nil {
		log.Fatal(err)
	}
	in := fascia.ExactCountDirected(cite, fascia.DiStarInTemplate(4))
	out := fascia.ExactCountDirected(cite, fascia.DiStarOutTemplate(4))
	fmt.Printf("\ncitation-style digraph: in-stars %d vs out-stars %d (same skeleton!)\n", in, out)
}

func mustDi(name string, k int, arcs [][2]int) *fascia.DiTemplate {
	t, err := fascia.NewDiTemplate(name, k, arcs)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
