// Labeled counting: attach vertex labels to a contact network (the
// paper's Portland methodology: 2 genders × 4 age groups = 8 labels) and
// show how label constraints prune the dynamic program — counting a
// labeled 7-vertex template is orders of magnitude faster and leaner than
// its unlabeled counterpart (the paper's Figures 4 and 6).
//
// Run with: go run ./examples/labeled
package main

import (
	"fmt"
	"log"

	fascia "repro"
)

func main() {
	// A scaled-down Portland-like contact network with 8 random labels.
	g := fascia.Generate("portland", 0.003, 1)
	fascia.AssignRandomLabels(g, 8, 2)
	fmt.Printf("network: %s, 8 vertex labels\n\n", g.ComputeStats())

	base := fascia.MustTemplate("U7-2")
	labels := []int32{0, 1, 2, 3, 4, 5, 6} // one distinct label per vertex
	labeled, err := base.WithLabels("U7-2-labeled", labels)
	if err != nil {
		log.Fatal(err)
	}

	opt := fascia.DefaultOptions().WithIterations(3).WithSeed(5)

	resU, err := fascia.Count(g, base, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unlabeled %s: estimate %.3e, %v, peak tables %.2f MB\n",
		base.Name(), resU.Count, resU.Elapsed.Round(0), float64(resU.PeakTableBytes)/(1<<20))

	resL, err := fascia.CountLabeled(g, labeled, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeled   %s: estimate %.3e, %v, peak tables %.2f MB\n",
		labeled.Name(), resL.Count, resL.Elapsed.Round(0), float64(resL.PeakTableBytes)/(1<<20))

	fmt.Printf("\nspeedup from labels: %.1fx, memory reduction: %.1fx\n",
		float64(resU.Elapsed)/float64(resL.Elapsed),
		float64(resU.PeakTableBytes)/float64(resL.PeakTableBytes))

	// Sanity: the labeled count must be far smaller — only embeddings
	// whose vertices carry exactly the requested labels survive. With 8
	// uniform labels and 7 fixed template labels, the expected ratio is
	// (1/8)^7 times the automorphism-weighted unlabeled count.
	fmt.Printf("labeled/unlabeled count ratio: %.3e (uniform-label expectation ~%.3e)\n",
		resL.Count/resU.Count,
		float64(base.Automorphisms())*pow(1.0/8, 7))
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}
