// Quickstart: count a tree template in a synthetic network, compare the
// color-coding estimate to the exact count, and sample a few concrete
// embeddings.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fascia "repro"
)

func main() {
	// A circuit-like network: 252 vertices, 399 edges (the paper's s420
	// stand-in, small enough that exact counting is instant).
	g := fascia.Generate("circuit", 1.0, 42)
	fmt.Printf("network: %s\n", g.ComputeStats())

	// U5-2 is the paper's 5-vertex "fork" template: a central vertex with
	// three branches of lengths 2, 1, 1.
	t := fascia.MustTemplate("U5-2")
	fmt.Printf("template: %s, %d automorphisms\n", t, t.Automorphisms())

	// Approximate count: 100 color-coding iterations.
	opt := fascia.DefaultOptions().WithIterations(100).WithSeed(7)
	res, err := fascia.Count(g, t, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate: %.0f non-induced occurrences (stderr %.0f) in %v\n",
		res.Count, res.StdErr, res.Elapsed.Round(0))

	// Ground truth by exhaustive search (exponential; fine at this size).
	exact := fascia.ExactCount(g, t)
	fmt.Printf("exact:    %d occurrences (estimate off by %+.2f%%)\n",
		exact, 100*(res.Count-float64(exact))/float64(exact))

	// Enumeration: sample concrete embeddings and verify them.
	embs, err := fascia.SampleEmbeddings(g, t, opt, 3)
	if err != nil {
		log.Fatal(err)
	}
	e, err := fascia.NewEngine(g, t, opt)
	if err != nil {
		log.Fatal(err)
	}
	for i, emb := range embs {
		if err := e.VerifyEmbedding(emb); err != nil {
			log.Fatalf("sampled embedding invalid: %v", err)
		}
		fmt.Printf("sampled embedding %d: template vertex i -> graph vertex %v\n", i+1, emb.Mapping)
	}

	// The theoretical iteration bound vs practice.
	fmt.Printf("theory: %d iterations for 10%% error at 90%% confidence; "+
		"in practice a handful suffice (see EXPERIMENTS.md)\n",
		fascia.IterationsFor(0.1, 0.05, t.K()))
}
