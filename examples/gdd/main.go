// Graphlet degree distributions: estimate, for every vertex, how many
// U5-2 templates it centers (its graphlet degree at the central orbit),
// build the distribution, and measure Pržulj agreement against the exact
// distribution as iterations grow — the paper's Figures 15 and 16.
//
// Run with: go run ./examples/gdd
package main

import (
	"fmt"
	"log"

	fascia "repro"
)

func main() {
	// U5-2's central orbit is its degree-3 vertex; in our construction
	// that is template vertex 0.
	t := fascia.MustTemplate("U5-2")
	orbit := -1
	for v := 0; v < t.K(); v++ {
		if t.Degree(v) == 3 {
			orbit = v
		}
	}
	fmt.Printf("template %s, central orbit = vertex %d\n\n", t.Name(), orbit)

	g := fascia.Generate("ecoli", 0.6, 5)
	fmt.Printf("network: %s\n", g.ComputeStats())

	// Exact distribution by exhaustive search.
	exactDist := fascia.ExactGraphletDegrees(g, t, orbit)
	degs := exactDist.Degrees()
	fmt.Printf("exact GDD support: %d distinct degrees, max %d\n\n", len(degs), degs[len(degs)-1])

	// Estimated distributions at increasing iteration counts.
	fmt.Println("iterations  agreement(estimate, exact)")
	for _, iters := range []int{1, 10, 100, 500} {
		est, err := fascia.GraphletDegrees(g, t, orbit, iters, fascia.DefaultOptions().WithSeed(9))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11d %.4f\n", iters, fascia.GDDAgreement(est, exactDist))
	}

	// Compare network families by their (estimated) GDDs, Figure 15
	// style: social vs random vs road.
	fmt.Println("\ncross-network GDD agreements (100 iterations each):")
	names := []string{"enron", "gnp", "paroad"}
	dists := make([]fascia.GraphletDistribution, len(names))
	for i, name := range names {
		gg := fascia.Generate(name, 0.05, 5)
		d, err := fascia.GraphletDegrees(gg, t, orbit, 100, fascia.DefaultOptions().WithSeed(2))
		if err != nil {
			log.Fatal(err)
		}
		dists[i] = d
	}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			fmt.Printf("  %-8s vs %-8s %.4f\n", names[i], names[j], fascia.GDDAgreement(dists[i], dists[j]))
		}
	}
}
