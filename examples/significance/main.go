// Motif significance: identify which subgraphs are over-represented in a
// network relative to a degree-preserving random null model — the
// classical network-motif methodology (Milo et al.) that §II-A of the
// FASCIA paper references, built on approximate counting so the whole
// ensemble is cheap.
//
// Run with: go run ./examples/significance
package main

import (
	"fmt"
	"log"

	fascia "repro"
)

func main() {
	const (
		k       = 5
		iters   = 150
		samples = 8
	)

	// A protein-interaction-style network: duplication-divergence
	// produces local clustering that degree-preserving rewiring destroys,
	// so clustered subgraphs surface as motifs.
	g := fascia.Generate("ecoli", 0.5, 21)
	fmt.Printf("network: %s\n", g.ComputeStats())
	fmt.Printf("null model: %d degree-preserving rewirings, %d counting iterations each\n\n",
		samples, iters)

	sig, err := fascia.FindMotifSignificance("ecoli", g, k, iters, samples,
		fascia.DefaultOptions().WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-28s %14s %14s %10s\n", "subgraph", "shape", "count", "null mean", "z")
	for i, tr := range sig.Real.Trees {
		fmt.Printf("%-10d %-28s %14.0f %14.0f %10.2f\n",
			i+1, tr.String(), sig.Real.Counts[i], sig.NullMean[i], sig.Z[i])
	}

	motifs := sig.Motifs(2.0)
	fmt.Printf("\nsubgraphs with z >= 2 (motifs): %d of %d\n", len(motifs), len(sig.Z))
	for _, i := range motifs {
		fmt.Printf("  subgraph %d: %.1fx the null expectation\n",
			i+1, sig.Real.Counts[i]/sig.NullMean[i])
	}

	// Sanity anchor: a same-size Erdős–Rényi graph should show far
	// weaker significance across the board.
	er := fascia.ErdosRenyi(g.N(), g.M(), 33)
	erSig, err := fascia.FindMotifSignificance("gnp", er, k, iters, samples,
		fascia.DefaultOptions().WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	var maxReal, maxER float64
	for i := range sig.Z {
		if z := abs(sig.Z[i]); z > maxReal {
			maxReal = z
		}
		if z := abs(erSig.Z[i]); z > maxER {
			maxER = z
		}
	}
	fmt.Printf("\nmax |z|: %.1f on the PPI-like network vs %.1f on G(n,m)\n", maxReal, maxER)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
