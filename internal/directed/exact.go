package directed

import "fmt"

// CountMappings returns the exact number of injective direction-preserving
// mappings of the directed tree template into g, by ordered backtracking
// (each template arc a→b must map onto a graph arc).
func CountMappings(g *DiGraph, t *DiTemplate) int64 {
	return countMappings(g, t, nil)
}

// CountColorfulMappings counts mappings whose image is rainbow under the
// given coloring — the oracle for the directed DP.
func CountColorfulMappings(g *DiGraph, t *DiTemplate, colors []int8) int64 {
	if len(colors) != g.N() {
		panic("directed: coloring length mismatch")
	}
	return countMappings(g, t, colors)
}

// Count returns the exact number of non-induced directed occurrences:
// mappings divided by the direction-preserving automorphism count.
func Count(g *DiGraph, t *DiTemplate) int64 {
	m := CountMappings(g, t)
	aut := t.Automorphisms()
	if m%aut != 0 {
		panic(fmt.Sprintf("directed: mapping count %d not divisible by aut %d", m, aut))
	}
	return m / aut
}

func countMappings(g *DiGraph, t *DiTemplate, colors []int8) int64 {
	k := t.K()
	skel := t.Skeleton()
	// BFS order over the skeleton; record each vertex's parent and the
	// arc direction between them.
	order := make([]int, 0, k)
	parentPos := make([]int, k)
	parentOut := make([]bool, k) // template arc parent→vertex?
	seen := make([]bool, k)
	order = append(order, 0)
	seen[0] = true
	parentPos[0] = -1
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, u := range skel.Adj(v) {
			w := int(u)
			if !seen[w] {
				seen[w] = true
				parentPos[len(order)] = i
				parentOut[len(order)] = t.HasArc(v, w)
				order = append(order, w)
			}
		}
	}

	assign := make([]int32, k)
	used := make(map[int32]bool, k)
	var colorBit uint64
	var count int64
	var recurse func(pos int)
	recurse = func(pos int) {
		if pos == k {
			count++
			return
		}
		try := func(gv int32) {
			if used[gv] {
				return
			}
			if colors != nil {
				bit := uint64(1) << uint(colors[gv])
				if colorBit&bit != 0 {
					return
				}
				colorBit |= bit
				defer func() { colorBit &^= bit }()
			}
			used[gv] = true
			assign[pos] = gv
			recurse(pos + 1)
			delete(used, gv)
		}
		if pos == 0 {
			for gv := int32(0); gv < int32(g.N()); gv++ {
				try(gv)
			}
			return
		}
		parent := assign[parentPos[pos]]
		if parentOut[pos] {
			for _, gv := range g.Out(parent) {
				try(gv)
			}
		} else {
			for _, gv := range g.In(parent) {
				try(gv)
			}
		}
	}
	recurse(0)
	return count
}
