package directed

import (
	"math"
	"testing"

	"repro/internal/part"
)

func TestFromArcsBasic(t *testing.T) {
	g := MustFromArcs(4, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {0, 1}, {3, 3}})
	if g.N() != 4 || g.A() != 3 {
		t.Fatalf("n=%d a=%d, want 4/3", g.N(), g.A())
	}
	if !g.HasArc(0, 1) || g.HasArc(1, 0) {
		t.Fatal("arc direction wrong")
	}
	if len(g.In(1)) != 1 || g.In(1)[0] != 0 {
		t.Fatalf("In(1) = %v", g.In(1))
	}
	if len(g.Out(2)) != 1 || g.Out(2)[0] != 0 {
		t.Fatalf("Out(2) = %v", g.Out(2))
	}
}

func TestFromArcsErrors(t *testing.T) {
	if _, err := FromArcs(2, [][2]int32{{0, 5}}); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
	if _, err := FromArcs(-1, nil); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestBidirectionalPair(t *testing.T) {
	g := MustFromArcs(2, [][2]int32{{0, 1}, {1, 0}})
	if g.A() != 2 || !g.HasArc(0, 1) || !g.HasArc(1, 0) {
		t.Fatal("bidirectional pair lost")
	}
}

func TestUnderlying(t *testing.T) {
	g := MustFromArcs(3, [][2]int32{{0, 1}, {1, 0}, {1, 2}})
	u := g.Underlying()
	if u.M() != 2 {
		t.Fatalf("underlying m = %d, want 2 (pair collapses)", u.M())
	}
}

func TestDiTemplateBasics(t *testing.T) {
	p := DiPath(3) // 0→1→2
	if p.K() != 3 || !p.HasArc(0, 1) || p.HasArc(1, 0) {
		t.Fatal("DiPath wrong")
	}
	if len(p.Arcs()) != 2 {
		t.Fatal("arcs wrong")
	}
	if _, err := NewDiTemplate("bad", 3, [][2]int{{0, 1}}); err == nil {
		t.Fatal("non-tree skeleton accepted")
	}
}

func TestDiTemplateAutomorphisms(t *testing.T) {
	cases := []struct {
		t    *DiTemplate
		want int64
	}{
		{DiPath(2), 1},    // 0→1: flipping reverses the arc
		{DiPath(5), 1},    // directed path: rigid
		{DiStarOut(4), 6}, // 3 out-leaves interchange: 3!
		{DiStarIn(5), 24}, // 4 in-leaves: 4!
		{MustDiTemplate("mix", 4, [][2]int{{0, 1}, {0, 2}, {3, 0}}), 2}, // two out-leaves swap, in-leaf fixed
	}
	for _, c := range cases {
		if got := c.t.Automorphisms(); got != c.want {
			t.Errorf("Aut(%s) = %d, want %d", c.t.Name(), got, c.want)
		}
	}
}

// TestDiAutomorphismsBruteForce cross-checks on random directed trees.
func TestDiAutomorphismsBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		k := 2 + int(seed%5)
		dt := RandomDiTemplate(k, seed)
		want := bruteDiAut(dt)
		if got := dt.Automorphisms(); got != want {
			t.Fatalf("seed %d: Aut = %d, brute %d (arcs %v)", seed, got, want, dt.Arcs())
		}
	}
}

func bruteDiAut(dt *DiTemplate) int64 {
	k := dt.K()
	arcs := dt.Arcs()
	var count int64
	perm := make([]int, k)
	used := make([]bool, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			for _, a := range arcs {
				if !dt.HasArc(perm[a[0]], perm[a[1]]) {
					return
				}
			}
			count++
			return
		}
		for v := 0; v < k; v++ {
			if !used[v] {
				used[v] = true
				perm[i] = v
				rec(i + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return count
}

func TestExactDirectedPathCounts(t *testing.T) {
	// Directed cycle 0→1→2→3→0: directed P3 (a→b→c) occurs 4 times;
	// in-star S3 (two arcs into a center) occurs 0 times.
	g := MustFromArcs(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if got := Count(g, DiPath(3)); got != 4 {
		t.Fatalf("directed P3 in C4 = %d, want 4", got)
	}
	if got := Count(g, DiStarIn(3)); got != 0 {
		t.Fatalf("in-star in directed cycle = %d, want 0", got)
	}
	// Reversing the graph turns out-stars into in-stars.
	h := MustFromArcs(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	if Count(h, DiStarOut(4)) != 1 || Count(h, DiStarIn(4)) != 0 {
		t.Fatal("star orientation confused")
	}
}

// TestDirectedColorfulExactEquivalence is the directed keystone: the
// direction-aware DP's colorful total must exactly match brute force.
func TestDirectedColorfulExactEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		n := 10 + int(seed)*2
		g := RandomDiGraph(n, int64(n*3), seed)
		k := 2 + int(seed%4)
		dt := RandomDiTemplate(k, seed+100)
		for _, strat := range []part.Strategy{part.OneAtATime, part.Balanced} {
			e, err := New(g, dt, Config{Seed: seed, Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			want := CountColorfulMappings(g, dt, e.ColoringFor(seed*13))
			got := e.ColorfulTotal(seed * 13)
			if got != float64(want) {
				t.Fatalf("seed %d k=%d %v: DP %v, exact %d (arcs %v)",
					seed, k, strat, got, want, dt.Arcs())
			}
		}
	}
}

func TestDirectedEstimateConverges(t *testing.T) {
	g := RandomDiGraph(30, 120, 5)
	dt := MustDiTemplate("vee", 3, [][2]int{{0, 1}, {2, 1}}) // two arcs into 1
	want := float64(Count(g, dt))
	if want == 0 {
		t.Skip("degenerate instance")
	}
	e, err := New(g, dt, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(800)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-want)/want > 0.12 {
		t.Fatalf("directed estimate %.1f, exact %.1f", res.Estimate, want)
	}
}

func TestDirectedVsUndirectedConsistency(t *testing.T) {
	// On a digraph whose arcs all exist in both directions, directed
	// counting of any orientation equals undirected counting of the
	// skeleton (mapping-for-mapping).
	arcs := [][2]int32{}
	undirected := [][2]int32{{0, 1}, {1, 2}, {1, 3}, {3, 4}, {2, 4}}
	for _, e := range undirected {
		arcs = append(arcs, e, [2]int32{e[1], e[0]})
	}
	g := MustFromArcs(5, arcs)
	dt := DiPath(3)
	// Every undirected P3 mapping respects any orientation here.
	if got, want := CountMappings(g, dt), int64(2*countUndirectedP3(undirected, 5)); got != want {
		t.Fatalf("bidirectional digraph P3 mappings = %d, want %d", got, want)
	}
}

func countUndirectedP3(edges [][2]int32, n int) int {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	total := 0
	for _, d := range deg {
		total += d * (d - 1) / 2
	}
	return total
}

func TestEngineValidation(t *testing.T) {
	g := RandomDiGraph(10, 20, 1)
	if _, err := New(nil, DiPath(3), Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(g, DiPath(3), Config{Colors: 2}); err == nil {
		t.Fatal("too few colors accepted")
	}
	e, _ := New(g, DiPath(3), Config{})
	if _, err := e.Run(0); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if e.Automorphisms() != 1 {
		t.Fatal("directed path should be rigid")
	}
}
