package directed

import (
	"fmt"
	"math/rand"

	"repro/internal/comb"
	"repro/internal/dp"
	"repro/internal/part"
)

// Config controls a directed counting run.
type Config struct {
	// Colors is the number of colors (0 = template size).
	Colors int
	// Strategy selects the partitioning heuristic for the skeleton.
	Strategy part.Strategy
	// Seed drives colorings; iteration i colors with Seed+i.
	Seed int64
}

// Result reports a directed counting run.
type Result struct {
	Estimate     float64
	PerIteration []float64
}

// Engine counts non-induced occurrences of a directed tree template in a
// digraph by direction-aware color coding: the partition tree is built on
// the undirected skeleton, and each DP step walks the cut arc in its
// template direction (out-neighbors for root→passive arcs, in-neighbors
// for passive→root).
type Engine struct {
	g   *DiGraph
	t   *DiTemplate
	cfg Config

	k      int
	tree   *part.Tree
	aut    int64
	prob   float64
	splits map[[2]int]*comb.SplitTable
	// forward[node] is true when the cut arc of the internal node points
	// root → passive-root, so the DP follows out-neighbors.
	forward map[*part.Node]bool
}

// New prepares a directed engine.
func New(g *DiGraph, t *DiTemplate, cfg Config) (*Engine, error) {
	if g == nil || t == nil {
		return nil, fmt.Errorf("directed: nil graph or template")
	}
	k := cfg.Colors
	if k == 0 {
		k = t.K()
	}
	if k < t.K() || k > comb.MaxColors {
		return nil, fmt.Errorf("directed: invalid color count %d for template size %d", k, t.K())
	}
	// Sharing must stay off: merged nodes lose the vertex identity the
	// arc-direction lookup needs.
	tree, err := part.Build(t.Skeleton(), cfg.Strategy, false)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g: g, t: t, cfg: cfg, k: k, tree: tree,
		aut:     t.Automorphisms(),
		prob:    dp.ColorfulProbability(k, t.K()),
		splits:  map[[2]int]*comb.SplitTable{},
		forward: map[*part.Node]bool{},
	}
	for _, n := range tree.Nodes {
		if n.IsLeaf() {
			continue
		}
		key := [2]int{n.Size(), n.Active.Size()}
		if _, ok := e.splits[key]; !ok {
			e.splits[key] = comb.NewSplitTable(k, n.Size(), n.Active.Size())
		}
		e.forward[n] = t.HasArc(n.Root, n.Passive.Root)
	}
	return e, nil
}

// Automorphisms returns the direction-preserving automorphism count used
// for scaling.
func (e *Engine) Automorphisms() int64 { return e.aut }

// Run executes iters color-coding iterations and averages the estimates.
func (e *Engine) Run(iters int) (Result, error) {
	if iters < 1 {
		return Result{}, fmt.Errorf("directed: iterations must be >= 1, got %d", iters)
	}
	res := Result{PerIteration: make([]float64, iters)}
	for i := 0; i < iters; i++ {
		total := e.ColorfulTotal(e.cfg.Seed + int64(i))
		res.PerIteration[i] = total / (e.prob * float64(e.aut))
	}
	var sum float64
	for _, x := range res.PerIteration {
		sum += x
	}
	res.Estimate = sum / float64(iters)
	return res, nil
}

// ColoringFor reproduces the coloring of an iteration seed.
func (e *Engine) ColoringFor(seed int64) []int8 {
	rng := rand.New(rand.NewSource(seed))
	colors := make([]int8, e.g.N())
	for i := range colors {
		colors[i] = int8(rng.Intn(e.k))
	}
	return colors
}

// ColorfulTotal runs one direction-aware DP pass under the coloring of
// the given seed and returns the raw colorful mapping total.
func (e *Engine) ColorfulTotal(seed int64) float64 {
	colors := e.ColoringFor(seed)
	n := int32(e.g.N())
	tables := map[*part.Node][][]float64{}
	remaining := map[*part.Node]int{}
	for _, nd := range e.tree.Nodes {
		remaining[nd] = nd.Consumers
	}
	for _, nd := range e.tree.Order {
		if nd.IsLeaf() {
			rows := make([][]float64, n)
			for v := int32(0); v < n; v++ {
				row := make([]float64, e.k)
				row[colors[v]] = 1
				rows[v] = row
			}
			tables[nd] = rows
			continue
		}
		act := tables[nd.Active]
		pas := tables[nd.Passive]
		split := e.splits[[2]int{nd.Size(), nd.Active.Size()}]
		nc := split.NumSets
		spn := split.SplitsPerSet
		rows := make([][]float64, n)
		for v := int32(0); v < n; v++ {
			arow := act[v]
			if arow == nil {
				continue
			}
			// The cut arc's direction picks the neighbor set: for a
			// root→passive arc the passive image must be an out-neighbor
			// of v; otherwise an in-neighbor.
			var nbrs []int32
			if e.forward[nd] {
				nbrs = e.g.Out(v)
			} else {
				nbrs = e.g.In(v)
			}
			var buf []float64
			for _, u := range nbrs {
				prow := pas[u]
				if prow == nil {
					continue
				}
				if buf == nil {
					buf = make([]float64, nc)
				}
				for ci := 0; ci < nc; ci++ {
					base := ci * spn
					var s float64
					for j := base; j < base+spn; j++ {
						if av := arow[split.ActiveIdx[j]]; av != 0 {
							s += av * prow[split.PassiveIdx[j]]
						}
					}
					buf[ci] += s
				}
			}
			if buf != nil {
				nonzero := false
				for _, x := range buf {
					if x != 0 {
						nonzero = true
						break
					}
				}
				if nonzero {
					rows[v] = buf
				}
			}
		}
		tables[nd] = rows
		for _, ch := range []*part.Node{nd.Active, nd.Passive} {
			remaining[ch]--
			if remaining[ch] == 0 {
				delete(tables, ch)
			}
		}
	}
	var total float64
	for _, row := range tables[e.tree.Root] {
		for _, x := range row {
			total += x
		}
	}
	return total
}
