// Package directed extends the reproduction to directed templates and
// networks. The paper (§II-C) notes the color-coding algorithm
// "theoretically allows for directed templates and networks" but analyzes
// only the undirected case; this package implements that directed
// variant: a directed graph substrate, directed tree templates (an
// orientation on every tree edge), a direction-aware dynamic program, and
// an exhaustive directed oracle that the DP is verified against exactly.
package directed

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// DiGraph is a directed graph in dual-CSR form: both out- and
// in-adjacency lists are stored, since the DP walks cut edges in whichever
// direction the template arc points. Vertices are dense int32 ids;
// parallel arcs and self-loops are dropped.
type DiGraph struct {
	outOff []int64
	out    []int32
	inOff  []int64
	in     []int32
}

// FromArcs builds a DiGraph over n vertices from a directed arc list
// (from, to). Duplicate arcs and self-loops are dropped; both (u,v) and
// (v,u) may coexist (a bidirectional pair).
func FromArcs(n int, arcs [][2]int32) (*DiGraph, error) {
	if n < 0 {
		return nil, fmt.Errorf("directed: negative vertex count %d", n)
	}
	outDeg := make([]int64, n)
	inDeg := make([]int64, n)
	for _, a := range arcs {
		u, v := a[0], a[1]
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return nil, fmt.Errorf("directed: arc (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			continue
		}
		outDeg[u]++
		inDeg[v]++
	}
	g := &DiGraph{
		outOff: make([]int64, n+1),
		inOff:  make([]int64, n+1),
	}
	for i := 0; i < n; i++ {
		g.outOff[i+1] = g.outOff[i] + outDeg[i]
		g.inOff[i+1] = g.inOff[i] + inDeg[i]
	}
	g.out = make([]int32, g.outOff[n])
	g.in = make([]int32, g.inOff[n])
	fillOut := make([]int64, n)
	fillIn := make([]int64, n)
	copy(fillOut, g.outOff[:n])
	copy(fillIn, g.inOff[:n])
	for _, a := range arcs {
		u, v := a[0], a[1]
		if u == v {
			continue
		}
		g.out[fillOut[u]] = v
		fillOut[u]++
		g.in[fillIn[v]] = u
		fillIn[v]++
	}
	g.dedup()
	return g, nil
}

// MustFromArcs is FromArcs for known-valid inputs; panics on error.
func MustFromArcs(n int, arcs [][2]int32) *DiGraph {
	g, err := FromArcs(n, arcs)
	if err != nil {
		panic(err)
	}
	return g
}

// dedup sorts and deduplicates both adjacency structures.
func (g *DiGraph) dedup() {
	compact := func(off []int64, adj []int32) ([]int64, []int32) {
		n := len(off) - 1
		newOff := make([]int64, n+1)
		w := int64(0)
		for v := 0; v < n; v++ {
			row := adj[off[v]:off[v+1]]
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			newOff[v] = w
			var prev int32 = -1
			for _, u := range row {
				if u != prev {
					adj[w] = u
					w++
					prev = u
				}
			}
		}
		newOff[n] = w
		return newOff, adj[:w:w]
	}
	g.outOff, g.out = compact(g.outOff, g.out)
	g.inOff, g.in = compact(g.inOff, g.in)
}

// N returns the number of vertices.
func (g *DiGraph) N() int { return len(g.outOff) - 1 }

// A returns the number of arcs.
func (g *DiGraph) A() int64 { return int64(len(g.out)) }

// Out returns v's out-neighbors (v → u). Do not modify.
func (g *DiGraph) Out(v int32) []int32 { return g.out[g.outOff[v]:g.outOff[v+1]] }

// In returns v's in-neighbors (u → v). Do not modify.
func (g *DiGraph) In(v int32) []int32 { return g.in[g.inOff[v]:g.inOff[v+1]] }

// HasArc reports whether the arc u → v exists.
func (g *DiGraph) HasArc(u, v int32) bool {
	row := g.Out(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return i < len(row) && row[i] == v
}

// Underlying returns the undirected graph obtained by forgetting arc
// directions (used to reuse the undirected partitioning machinery).
func (g *DiGraph) Underlying() *graph.Graph {
	edges := make([][2]int32, 0, g.A())
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Out(u) {
			edges = append(edges, [2]int32{u, v})
		}
	}
	return graph.MustFromEdges(g.N(), edges, nil)
}

// RandomDiGraph generates a uniform random digraph with the given number
// of arcs (duplicates collapse), for tests and examples.
func RandomDiGraph(n int, arcs int64, seed int64) *DiGraph {
	rng := newRand(seed)
	list := make([][2]int32, 0, arcs)
	for int64(len(list)) < arcs {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			list = append(list, [2]int32{u, v})
		}
	}
	return MustFromArcs(n, list)
}
