package directed

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/tmpl"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// DiTemplate is a directed tree template: an undirected tree skeleton
// plus an orientation for every tree edge. Arcs[i] corresponds to
// Skeleton().Edges()[i]; true means the arc points from the smaller
// endpoint to the larger, false the reverse.
type DiTemplate struct {
	skel *tmpl.Template
	// arcFrom[a][b] is true when the template has arc a→b (exactly one
	// direction per tree edge).
	dir map[[2]int]bool
}

// NewDiTemplate builds a directed tree template from arcs (from, to)
// whose underlying edges must form a tree on k vertices.
func NewDiTemplate(name string, k int, arcs [][2]int) (*DiTemplate, error) {
	edges := make([][2]int, len(arcs))
	for i, a := range arcs {
		edges[i] = [2]int{a[0], a[1]}
	}
	skel, err := tmpl.NewTree(name, k, edges, nil)
	if err != nil {
		return nil, fmt.Errorf("directed: invalid skeleton: %w", err)
	}
	dt := &DiTemplate{skel: skel, dir: make(map[[2]int]bool, len(arcs))}
	for _, a := range arcs {
		dt.dir[[2]int{a[0], a[1]}] = true
	}
	return dt, nil
}

// MustDiTemplate is NewDiTemplate for known-valid inputs.
func MustDiTemplate(name string, k int, arcs [][2]int) *DiTemplate {
	t, err := NewDiTemplate(name, k, arcs)
	if err != nil {
		panic(err)
	}
	return t
}

// Skeleton returns the underlying undirected tree.
func (t *DiTemplate) Skeleton() *tmpl.Template { return t.skel }

// K returns the number of template vertices.
func (t *DiTemplate) K() int { return t.skel.K() }

// Name returns the template name.
func (t *DiTemplate) Name() string { return t.skel.Name() }

// HasArc reports whether the template contains the arc a → b.
func (t *DiTemplate) HasArc(a, b int) bool { return t.dir[[2]int{a, b}] }

// Arcs returns all template arcs (from, to).
func (t *DiTemplate) Arcs() [][2]int {
	out := make([][2]int, 0, len(t.dir))
	for a := range t.dir {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// encode produces a direction-aware AHU code of the subtree rooted at v:
// each child code is prefixed with '>' when the arc points parent→child
// and '<' when child→parent.
func (t *DiTemplate) encode(v, parent int) string {
	var kids []string
	for _, u := range t.skel.Adj(v) {
		w := int(u)
		if w == parent {
			continue
		}
		mark := "<"
		if t.HasArc(v, w) {
			mark = ">"
		}
		kids = append(kids, mark+t.encode(w, v))
	}
	sort.Strings(kids)
	out := "("
	for _, k := range kids {
		out += k
	}
	return out + ")"
}

// rootedAut counts automorphisms of the rooted directed tree (fixing the
// root and preserving arc directions), alongside its code.
func (t *DiTemplate) rootedAut(v, parent int) (string, int64) {
	type kid struct {
		code string
		aut  int64
	}
	var kids []kid
	for _, u := range t.skel.Adj(v) {
		w := int(u)
		if w == parent {
			continue
		}
		c, a := t.rootedAut(w, v)
		mark := "<"
		if t.HasArc(v, w) {
			mark = ">"
		}
		kids = append(kids, kid{mark + c, a})
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].code < kids[j].code })
	aut := int64(1)
	run := int64(0)
	code := "("
	for i, kd := range kids {
		aut *= kd.aut
		if i > 0 && kd.code == kids[i-1].code {
			run++
			aut *= run + 1
		} else {
			run = 0
		}
		code += kd.code
	}
	return code + ")", aut
}

// Automorphisms returns the number of direction-preserving automorphisms
// of the directed tree, via the same centroid decomposition as the
// undirected case.
func (t *DiTemplate) Automorphisms() int64 {
	cs := t.skel.Centroids()
	if len(cs) == 1 {
		_, a := t.rootedAut(cs[0], -1)
		return a
	}
	c1, c2 := cs[0], cs[1]
	code1, a1 := t.rootedAut(c1, c2)
	code2, a2 := t.rootedAut(c2, c1)
	// The two halves can swap only if they are isomorphic as rooted
	// directed trees AND the bridging arc is symmetric under the swap,
	// i.e. swapping endpoints maps the arc to itself — impossible for a
	// single directed arc (c1→c2 becomes c2→c1). So a swap never
	// preserves directions and the count is just the product.
	_ = code1
	_ = code2
	return a1 * a2
}

// DiPath returns the directed path 0→1→…→k-1.
func DiPath(k int) *DiTemplate {
	arcs := make([][2]int, 0, k-1)
	for i := 0; i < k-1; i++ {
		arcs = append(arcs, [2]int{i, i + 1})
	}
	return MustDiTemplate(fmt.Sprintf("DP%d", k), k, arcs)
}

// DiStarOut returns the out-star: center 0 with arcs to k-1 leaves.
func DiStarOut(k int) *DiTemplate {
	arcs := make([][2]int, 0, k-1)
	for i := 1; i < k; i++ {
		arcs = append(arcs, [2]int{0, i})
	}
	return MustDiTemplate(fmt.Sprintf("DSout%d", k), k, arcs)
}

// DiStarIn returns the in-star: k-1 leaves with arcs into center 0.
func DiStarIn(k int) *DiTemplate {
	arcs := make([][2]int, 0, k-1)
	for i := 1; i < k; i++ {
		arcs = append(arcs, [2]int{i, 0})
	}
	return MustDiTemplate(fmt.Sprintf("DSin%d", k), k, arcs)
}

// RandomDiTemplate generates a random directed tree on k vertices.
func RandomDiTemplate(k int, seed int64) *DiTemplate {
	rng := newRand(seed)
	arcs := make([][2]int, 0, k-1)
	for v := 1; v < k; v++ {
		p := rng.Intn(v)
		if rng.Intn(2) == 0 {
			arcs = append(arcs, [2]int{p, v})
		} else {
			arcs = append(arcs, [2]int{v, p})
		}
	}
	return MustDiTemplate(fmt.Sprintf("DR%d", k), k, arcs)
}
