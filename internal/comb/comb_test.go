package comb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, r int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1},
		{5, 2, 10}, {10, 5, 252}, {12, 6, 924},
		{12, 0, 1}, {12, 12, 1},
		{32, 16, 601080390},
		{4, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.r); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.r, got, c.want)
		}
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	for n := 1; n <= MaxColors; n++ {
		for r := 1; r <= n; r++ {
			if Binomial(n, r) != Binomial(n-1, r-1)+Binomial(n-1, r) {
				t.Fatalf("Pascal identity fails at C(%d,%d)", n, r)
			}
		}
	}
}

func TestBinomialPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > MaxColors")
		}
	}()
	Binomial(MaxColors+1, 2)
}

func TestRankFirstCombinationIsZero(t *testing.T) {
	for h := 1; h <= 12; h++ {
		set := make([]int, h)
		First(set)
		if got := Rank(set); got != 0 {
			t.Errorf("Rank of first combination size %d = %d, want 0", h, got)
		}
	}
}

func TestRankColexSequential(t *testing.T) {
	// Enumerating in colex order must produce ranks 0, 1, 2, ...
	for _, k := range []int{5, 8, 12} {
		for h := 1; h <= k; h++ {
			set := make([]int, h)
			First(set)
			for want := int64(0); ; want++ {
				if got := Rank(set); got != want {
					t.Fatalf("k=%d h=%d: Rank(%v) = %d, want %d", k, h, set, got, want)
				}
				if !Next(set, k) {
					if want+1 != Binomial(k, h) {
						t.Fatalf("k=%d h=%d: enumerated %d combinations, want %d", k, h, want+1, Binomial(k, h))
					}
					break
				}
			}
		}
	}
}

func TestUnrankRoundTrip(t *testing.T) {
	for _, k := range []int{4, 7, 12} {
		for h := 1; h <= k; h++ {
			dst := make([]int, h)
			for idx := int64(0); idx < Binomial(k, h); idx++ {
				Unrank(idx, h, dst)
				if got := Rank(dst); got != idx {
					t.Fatalf("k=%d h=%d: Rank(Unrank(%d)) = %d", k, h, idx, got)
				}
				for i := 1; i < h; i++ {
					if dst[i] <= dst[i-1] {
						t.Fatalf("Unrank(%d, %d) = %v not strictly increasing", idx, h, dst)
					}
				}
			}
		}
	}
}

// TestRankUnrankProperty uses testing/quick over random combinations.
func TestRankUnrankProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(MaxColors-2)
		h := 1 + rng.Intn(k)
		perm := rng.Perm(k)[:h]
		// Sort the selection into a combination.
		for i := 1; i < len(perm); i++ {
			for j := i; j > 0 && perm[j] < perm[j-1]; j-- {
				perm[j], perm[j-1] = perm[j-1], perm[j]
			}
		}
		idx := Rank(perm)
		if idx < 0 || idx >= Binomial(k, h) {
			return false
		}
		back := Unrank(idx, h, make([]int, h))
		for i := range back {
			if back[i] != perm[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNextExhaustsAllCombinations(t *testing.T) {
	k, h := 10, 4
	seen := make(map[int64]bool)
	set := make([]int, h)
	First(set)
	for {
		seen[Rank(set)] = true
		if !Next(set, k) {
			break
		}
	}
	if int64(len(seen)) != Binomial(k, h) {
		t.Fatalf("Next visited %d distinct combinations, want %d", len(seen), Binomial(k, h))
	}
}

func TestCombinationsCount(t *testing.T) {
	all := Combinations(7, 3)
	if int64(len(all)) != Binomial(7, 3) {
		t.Fatalf("Combinations(7,3) returned %d sets, want %d", len(all), Binomial(7, 3))
	}
	for i, c := range all {
		if Rank(c) != int64(i) {
			t.Fatalf("Combinations(7,3)[%d] = %v has rank %d", i, c, Rank(c))
		}
	}
}

func TestRankPanicsOnBadInput(t *testing.T) {
	for _, bad := range [][]int{{2, 2}, {3, 1}, {-1, 2}, {0, MaxColors}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Rank(%v) did not panic", bad)
				}
			}()
			Rank(bad)
		}()
	}
}

func TestSplitTableSizes(t *testing.T) {
	st := NewSplitTable(12, 6, 3)
	if st.NumSets != 924 || st.SplitsPerSet != 20 {
		t.Fatalf("split table sizes = (%d, %d), want (924, 20)", st.NumSets, st.SplitsPerSet)
	}
	if len(st.ActiveIdx) != 924*20 || len(st.PassiveIdx) != 924*20 {
		t.Fatalf("split table arrays wrong length")
	}
}

// TestSplitTablePartition verifies the defining property: for every color
// set C and every recorded split, the active and passive combinations are
// disjoint and their union is exactly C.
func TestSplitTablePartition(t *testing.T) {
	for _, dims := range [][3]int{{5, 3, 1}, {5, 3, 2}, {7, 5, 2}, {8, 4, 2}, {12, 6, 3}, {6, 6, 5}} {
		k, h, aN := dims[0], dims[1], dims[2]
		st := NewSplitTable(k, h, aN)
		pN := h - aN
		set := make([]int, h)
		First(set)
		act := make([]int, aN)
		pas := make([]int, pN)
		for i := 0; ; i++ {
			inSet := 0
			for _, c := range set {
				inSet |= 1 << c
			}
			seen := make(map[[2]int32]bool)
			for s := 0; s < st.SplitsPerSet; s++ {
				ai := st.ActiveIdx[i*st.SplitsPerSet+s]
				pi := st.PassiveIdx[i*st.SplitsPerSet+s]
				pair := [2]int32{ai, pi}
				if seen[pair] {
					t.Fatalf("k=%d h=%d aN=%d set %v: duplicate split (%d,%d)", k, h, aN, set, ai, pi)
				}
				seen[pair] = true
				Unrank(int64(ai), aN, act)
				Unrank(int64(pi), pN, pas)
				mask := 0
				for _, c := range act {
					mask |= 1 << c
				}
				for _, c := range pas {
					if mask&(1<<c) != 0 {
						t.Fatalf("set %v split (%v,%v) not disjoint", set, act, pas)
					}
					mask |= 1 << c
				}
				if mask != inSet {
					t.Fatalf("set %v split (%v,%v) union != set", set, act, pas)
				}
			}
			if !Next(set, k) {
				break
			}
		}
	}
}

func TestSplitTablePanicsOnBadSizes(t *testing.T) {
	for _, dims := range [][3]int{{5, 1, 1}, {5, 3, 0}, {5, 3, 3}, {5, 6, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSplitTable(%v) did not panic", dims)
				}
			}()
			NewSplitTable(dims[0], dims[1], dims[2])
		}()
	}
}

// TestSingletonSplitsComplete verifies every (set, member) pair appears
// exactly once across all per-color lists and that RestIdx is correct.
func TestSingletonSplitsComplete(t *testing.T) {
	for _, dims := range [][2]int{{5, 2}, {5, 5}, {8, 4}, {12, 6}} {
		k, h := dims[0], dims[1]
		lists := SingletonSplits(k, h)
		if len(lists) != k {
			t.Fatalf("k=%d: got %d color lists", k, len(lists))
		}
		total := 0
		set := make([]int, h)
		rest := make([]int, h-1)
		for c := 0; c < k; c++ {
			want := Binomial(k-1, h-1)
			if int64(len(lists[c])) != want {
				t.Fatalf("k=%d h=%d color %d: %d entries, want %d", k, h, c, len(lists[c]), want)
			}
			prev := int32(-1)
			for _, e := range lists[c] {
				if e.SetIdx <= prev {
					t.Fatalf("color %d entries not sorted by SetIdx", c)
				}
				prev = e.SetIdx
				Unrank(int64(e.SetIdx), h, set)
				found := false
				pi := 0
				for _, v := range set {
					if v == c {
						found = true
					} else {
						rest[pi] = v
						pi++
					}
				}
				if !found {
					t.Fatalf("color %d: set %v does not contain it", c, set)
				}
				if Rank(rest) != int64(e.RestIdx) {
					t.Fatalf("color %d set %v: RestIdx = %d, want %d", c, set, e.RestIdx, Rank(rest))
				}
				total++
			}
		}
		if int64(total) != Binomial(k, h)*int64(h) {
			t.Fatalf("k=%d h=%d: total entries %d, want %d", k, h, total, Binomial(k, h)*int64(h))
		}
	}
}

func TestPairIndex(t *testing.T) {
	k := 6
	seen := make(map[int32]bool)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			idx := PairIndex(a, b)
			if idx != PairIndex(b, a) {
				t.Fatalf("PairIndex not symmetric for (%d,%d)", a, b)
			}
			if got := Rank([]int{a, b}); got != int64(idx) {
				t.Fatalf("PairIndex(%d,%d) = %d, want %d", a, b, idx, got)
			}
			if seen[idx] {
				t.Fatalf("PairIndex collision at (%d,%d)", a, b)
			}
			seen[idx] = true
		}
	}
	if int64(len(seen)) != Binomial(k, 2) {
		t.Fatalf("PairIndex covered %d values, want %d", len(seen), Binomial(k, 2))
	}
}

func TestPairIndexPanicsOnEqual(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PairIndex(3,3) did not panic")
		}
	}()
	PairIndex(3, 3)
}
