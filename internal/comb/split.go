package comb

import "fmt"

// SplitTable precomputes, for every color set C of size h drawn from k
// colors, all ways of splitting C into an active part of size aN and a
// passive part of size pN = h - aN, as pairs of combinatorial indices.
// This replaces explicit color-set manipulation in the innermost loops of
// the dynamic program with sequential array lookups, exactly as described
// in the paper's "Combinatorial Indexing System" section.
type SplitTable struct {
	K, H, AN, PN int

	// NumSets = C(K, H): the number of color sets (rows).
	NumSets int
	// SplitsPerSet = C(H, AN): the number of splits of each set.
	SplitsPerSet int

	// For set index I, the splits occupy ActiveIdx/PassiveIdx positions
	// [I*SplitsPerSet, (I+1)*SplitsPerSet).
	ActiveIdx  []int32
	PassiveIdx []int32
}

// NewSplitTable builds the split table for subtemplate size h with active
// child size aN, using k colors. It panics on invalid sizes; callers
// construct these from validated partition trees.
func NewSplitTable(k, h, aN int) *SplitTable {
	if h < 2 || h > k || aN < 1 || aN >= h {
		panic(fmt.Sprintf("comb: invalid split table sizes k=%d h=%d aN=%d", k, h, aN))
	}
	pN := h - aN
	nSets := int(Binomial(k, h))
	nSplits := int(Binomial(h, aN))
	st := &SplitTable{
		K: k, H: h, AN: aN, PN: pN,
		NumSets:      nSets,
		SplitsPerSet: nSplits,
		ActiveIdx:    make([]int32, nSets*nSplits),
		PassiveIdx:   make([]int32, nSets*nSplits),
	}

	set := make([]int, h)
	First(set)
	chooser := make([]int, aN)
	active := make([]int, aN)
	passive := make([]int, pN)
	for i := 0; ; i++ {
		// Enumerate all ways to pick the aN positions of set that form
		// the active part.
		First(chooser)
		base := i * nSplits
		for s := 0; ; s++ {
			ai, pi := 0, 0
			for pos := 0; pos < h; pos++ {
				if ai < aN && chooser[ai] == pos {
					active[ai] = set[pos]
					ai++
				} else {
					passive[pi] = set[pos]
					pi++
				}
			}
			st.ActiveIdx[base+s] = int32(Rank(active))
			st.PassiveIdx[base+s] = int32(Rank(passive))
			if !Next(chooser, h) {
				break
			}
		}
		if !Next(set, k) {
			break
		}
	}
	return st
}

// SingletonEntry links a size-h color set that contains a distinguished
// color c to the index of the size-(h-1) set with c removed. SetIdx is the
// rank of the full set among C(k,h) sets; RestIdx is the rank of the
// remainder among C(k,h-1) sets.
type SingletonEntry struct {
	SetIdx  int32
	RestIdx int32
}

// SingletonSplits precomputes, for each color c in [0,k), the list of
// size-h color sets containing c together with the index of the set minus
// {c}. This powers the paper's single-vertex-child specializations: when
// the active (resp. passive) child is a single template vertex, only color
// sets containing color(v) (resp. color(u)) can contribute, cutting the
// inner loop by a factor of (k-1)/k ... 1/k depending on h.
//
// Each color's list is sorted by SetIdx ascending (a consequence of colex
// enumeration), which keeps table accesses sequential.
func SingletonSplits(k, h int) [][]SingletonEntry {
	if h < 2 || h > k {
		panic(fmt.Sprintf("comb: invalid singleton split sizes k=%d h=%d", k, h))
	}
	perColor := int(Binomial(k-1, h-1))
	out := make([][]SingletonEntry, k)
	for c := range out {
		out[c] = make([]SingletonEntry, 0, perColor)
	}
	set := make([]int, h)
	First(set)
	rest := make([]int, h-1)
	for i := 0; ; i++ {
		for pos, c := range set {
			copy(rest[:pos], set[:pos])
			copy(rest[pos:], set[pos+1:])
			out[c] = append(out[c], SingletonEntry{SetIdx: int32(i), RestIdx: int32(Rank(rest))})
		}
		if !Next(set, k) {
			break
		}
	}
	return out
}

// PairIndex returns the rank of the two-element set {a, b} (a != b) among
// C(k,2) sets. Used by the size-2 subtemplate fast path where both
// children are single vertices.
func PairIndex(a, b int) int32 {
	if a == b {
		panic("comb: PairIndex requires distinct colors")
	}
	if a > b {
		a, b = b, a
	}
	return int32(int64(a) + Binomial(b, 2))
}
