// Package comb implements the combinatorial number system used by FASCIA
// to index color sets, along with binomial tables, combination
// enumeration, and precomputed split tables for the dynamic program.
//
// A color set {c1 < c2 < ... < ch} drawn from {0, ..., k-1} is represented
// by the single integer
//
//	I = C(c1,1) + C(c2,2) + ... + C(ch,h)
//
// which is exactly its rank in colexicographic order. Enumerating
// combinations in colex order therefore visits indices 0, 1, 2, ...
// sequentially, so the dynamic-programming tables can be plain arrays
// indexed by I.
package comb

import "fmt"

// MaxColors is the largest number of colors supported by the precomputed
// binomial table. The paper evaluates templates up to 12 vertices; we
// leave generous headroom. Binomials up to C(64, 32) overflow int64, but
// color coding only ever needs C(k, h) with k <= MaxColors, all of which
// fit comfortably.
const MaxColors = 32

// binomial[n][r] = C(n, r) for 0 <= n <= MaxColors, 0 <= r <= n.
var binomial [MaxColors + 1][MaxColors + 1]int64

func init() {
	for n := 0; n <= MaxColors; n++ {
		binomial[n][0] = 1
		for r := 1; r <= n; r++ {
			binomial[n][r] = binomial[n-1][r-1] + binomial[n-1][r]
		}
	}
}

// Binomial returns C(n, r). It returns 0 when r < 0 or r > n, matching the
// combinatorial convention. It panics if n is negative or exceeds
// MaxColors.
func Binomial(n, r int) int64 {
	if n < 0 || n > MaxColors {
		panic(fmt.Sprintf("comb: Binomial(%d, %d) out of supported range [0, %d]", n, r, MaxColors))
	}
	if r < 0 || r > n {
		return 0
	}
	return binomial[n][r]
}

// Rank returns the colexicographic rank of the combination set, which must
// hold strictly increasing values in [0, MaxColors). This is the
// combinatorial-number-system index used throughout the DP tables.
func Rank(set []int) int64 {
	var idx int64
	prev := -1
	for i, c := range set {
		if c <= prev || c < 0 || c >= MaxColors {
			panic(fmt.Sprintf("comb: Rank input %v is not a strictly increasing combination", set))
		}
		idx += Binomial(c, i+1)
		prev = c
	}
	return idx
}

// Unrank writes the combination of size h with colexicographic rank idx
// into dst (which must have length h) and returns dst. It is the inverse
// of Rank.
func Unrank(idx int64, h int, dst []int) []int {
	if len(dst) != h {
		panic(fmt.Sprintf("comb: Unrank dst length %d != h %d", len(dst), h))
	}
	for i := h; i >= 1; i-- {
		// Largest c with C(c, i) <= idx.
		c := i - 1
		for Binomial(c+1, i) <= idx {
			c++
		}
		dst[i-1] = c
		idx -= Binomial(c, i)
	}
	return dst
}

// First initializes dst (length h) to the colex-first combination
// {0, 1, ..., h-1}.
func First(dst []int) {
	for i := range dst {
		dst[i] = i
	}
}

// Next advances set to the next combination of values drawn from
// {0, ..., k-1} in colexicographic order. It reports false when set was
// the last combination, leaving set unchanged in that case.
func Next(set []int, k int) bool {
	h := len(set)
	for i := 0; i < h; i++ {
		// The largest value position i may take while leaving room for
		// positions below it is bounded by the next element (or k).
		var limit int
		if i == h-1 {
			limit = k - 1
		} else {
			limit = set[i+1] - 1
		}
		if set[i] < limit {
			set[i]++
			for j := 0; j < i; j++ {
				set[j] = j
			}
			return true
		}
	}
	return false
}

// Combinations returns all combinations of size h drawn from {0,...,k-1}
// in colexicographic order. The s-th returned slice has Rank s.
func Combinations(k, h int) [][]int {
	n := Binomial(k, h)
	out := make([][]int, 0, n)
	cur := make([]int, h)
	First(cur)
	for {
		c := make([]int, h)
		copy(c, cur)
		out = append(out, c)
		if !Next(cur, k) {
			break
		}
	}
	return out
}
