package comb

import "testing"

func BenchmarkRank(b *testing.B) {
	set := []int{1, 3, 4, 7, 9, 11}
	for i := 0; i < b.N; i++ {
		Rank(set)
	}
}

func BenchmarkUnrank(b *testing.B) {
	dst := make([]int, 6)
	for i := 0; i < b.N; i++ {
		Unrank(int64(i)%Binomial(12, 6), 6, dst)
	}
}

func BenchmarkNext(b *testing.B) {
	set := make([]int, 6)
	First(set)
	for i := 0; i < b.N; i++ {
		if !Next(set, 12) {
			First(set)
		}
	}
}

func BenchmarkNewSplitTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewSplitTable(12, 6, 3)
	}
}

func BenchmarkSingletonSplits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SingletonSplits(12, 6)
	}
}
