package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestErdosRenyiM(t *testing.T) {
	g := ErdosRenyiM(1000, 5000, 1)
	if g.N() != 1000 {
		t.Fatalf("n = %d", g.N())
	}
	// A few duplicate samples may collapse, but the count must be close.
	if g.M() < 4900 || g.M() > 5000 {
		t.Fatalf("m = %d, want about 5000", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyiM(200, 800, 99)
	b := ErdosRenyiM(200, 800, 99)
	c := ErdosRenyiM(200, 800, 100)
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	same := true
	for v := int32(0); v < 200 && same; v++ {
		av, cv := a.Adj(v), c.Adj(v)
		if len(av) != len(cv) {
			same = false
			break
		}
		for i := range av {
			if av[i] != cv[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(2000, 5, 7)
	if g.N() != 2000 {
		t.Fatalf("n = %d", g.N())
	}
	s := g.ComputeStats()
	if s.AvgDegree < 8 || s.AvgDegree > 11 {
		t.Fatalf("avg degree %.2f, want near 10", s.AvgDegree)
	}
	// Preferential attachment must produce hubs well above the average.
	if s.MaxDegree < 50 {
		t.Fatalf("max degree %d, expected a heavy tail", s.MaxDegree)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("BA graph should be connected, got %d components", count)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(12, 20000, 0.57, 0.19, 0.19, 3)
	if g.N() != 4096 {
		t.Fatalf("n = %d", g.N())
	}
	lcc, _ := g.LargestComponent()
	s := lcc.ComputeStats()
	if s.MaxDegree < 5*int(s.AvgDegree) {
		t.Fatalf("R-MAT LCC lacks skew: %v", s)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(3000, 20, 0.05, 11)
	s := g.ComputeStats()
	if math.Abs(s.AvgDegree-40) > 1.5 {
		t.Fatalf("avg degree %.2f, want near 40", s.AvgDegree)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatal("WS ring should be connected")
	}
}

func TestRoadNetwork(t *testing.T) {
	g := RoadNetwork(100, 100, 0.7, 5)
	lcc, _ := g.LargestComponent()
	s := lcc.ComputeStats()
	if s.AvgDegree < 2.2 || s.AvgDegree > 3.6 {
		t.Fatalf("road avg degree %.2f, want near 2.8", s.AvgDegree)
	}
	if s.MaxDegree > 9 {
		t.Fatalf("road max degree %d, want <= 9", s.MaxDegree)
	}
}

func TestDuplicationDivergence(t *testing.T) {
	g := DuplicationDivergence(1500, 0.5, 0.35, 21)
	if g.N() != 1500 {
		t.Fatalf("n = %d", g.N())
	}
	s := g.ComputeStats()
	if s.AvgDegree < 1.5 {
		t.Fatalf("DD network too sparse: %v", s)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCircuit(t *testing.T) {
	g := Circuit(252, 399, 14, 2)
	if g.N() != 252 || g.M() != 399 {
		t.Fatalf("circuit n=%d m=%d, want 252/399", g.N(), g.M())
	}
	if g.ComputeStats().MaxDegree > 14 {
		t.Fatal("degree cap violated")
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatal("circuit should be connected")
	}
}

func TestAssignLabels(t *testing.T) {
	g := Circuit(100, 150, 14, 2)
	AssignLabels(g, 8, 1)
	if g.Labels == nil || len(g.Labels) != 100 {
		t.Fatal("labels missing")
	}
	seen := map[int32]bool{}
	for _, l := range g.Labels {
		if l < 0 || l >= 8 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) < 4 {
		t.Fatalf("only %d distinct labels over 100 vertices", len(seen))
	}
}

func TestTrimToM(t *testing.T) {
	g := ErdosRenyiM(300, 2000, 4)
	lcc, _ := g.LargestComponent()
	trimmed := trimToM(lcc, 500, 9)
	if trimmed.M() != 500 {
		t.Fatalf("trimmed m = %d, want 500", trimmed.M())
	}
	if _, count := trimmed.ConnectedComponents(); count != 1 {
		t.Fatal("trimToM broke connectivity")
	}
	// No-op when already small enough.
	if got := trimToM(trimmed, 10000, 9); got != trimmed {
		t.Fatal("trimToM should return input unchanged when under target")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("enron")
	if err != nil || p.Name != "enron" {
		t.Fatalf("ByName(enron) = %v, %v", p.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPPIPresets(t *testing.T) {
	ps := PPIPresets()
	if len(ps) != 4 {
		t.Fatalf("got %d PPI presets, want 4", len(ps))
	}
}

// TestPresetsMatchPaperShape generates each preset at reduced scale and
// checks the realized degree statistics against the paper's Table I
// within loose tolerances (the point of the substitution is shape, not
// identity).
func TestPresetsMatchPaperShape(t *testing.T) {
	for _, p := range Presets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			scale := 0.05
			if p.Paper.N < 10000 {
				scale = 1.0
			}
			g := p.Build(scale, 12345)
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if _, count := g.ConnectedComponents(); count != 1 {
				t.Fatalf("%s preset not connected (%d components)", p.Name, count)
			}
			s := g.ComputeStats()
			wantN := float64(p.Paper.N) * scale
			if float64(s.N) < 0.4*wantN || float64(s.N) > 1.6*wantN {
				t.Errorf("%s: n=%d, want near %.0f", p.Name, s.N, wantN)
			}
			if s.AvgDegree < 0.5*p.Paper.DAvg || s.AvgDegree > 2.0*p.Paper.DAvg {
				t.Errorf("%s: davg=%.2f, paper %.2f", p.Name, s.AvgDegree, p.Paper.DAvg)
			}
		})
	}
}

func TestPresetsDeterministic(t *testing.T) {
	p, _ := ByName("hpylori")
	a := p.Build(1.0, 7)
	b := p.Build(1.0, 7)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("preset not deterministic")
	}
}

// adjacencyEqual compares the full wiring, not just sizes: map-iteration
// bugs produce same-shaped but differently-wired graphs.
func adjacencyEqual(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := int32(0); v < int32(a.N()); v++ {
		av, bv := a.Adj(v), b.Adj(v)
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// TestBarabasiAlbertDeterministic pins exact seed reproducibility of the
// preferential-attachment generator. Regression: the duplicate-target
// dedup set used to be flushed edge-ward by ranging over a map, so two
// runs with the same seed produced identically sized but differently
// wired graphs (and different CLI estimates for -network enron).
func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(500, 5, 42)
	b := BarabasiAlbert(500, 5, 42)
	if !adjacencyEqual(a, b) {
		t.Fatal("BarabasiAlbert wiring differs across runs with the same seed")
	}
	// The BA-backed preset (enron) must be wiring-deterministic too.
	p, _ := ByName("enron")
	if !adjacencyEqual(p.Build(0.05, 7), p.Build(0.05, 7)) {
		t.Fatal("enron preset wiring differs across runs with the same seed")
	}
}

func statsEqual(a, b *graph.Graph) bool {
	return a.N() == b.N() && a.M() == b.M()
}

func TestPresetSeedsDiffer(t *testing.T) {
	p, _ := ByName("circuit")
	a := p.Build(1.0, 1)
	b := p.Build(1.0, 2)
	// Same construction sizes but different wiring: compare adjacency.
	if !statsEqual(a, b) {
		return // different sizes is fine too
	}
	for v := int32(0); v < int32(a.N()); v++ {
		av, bv := a.Adj(v), b.Adj(v)
		if len(av) != len(bv) {
			return
		}
		for i := range av {
			if av[i] != bv[i] {
				return
			}
		}
	}
	t.Fatal("different seeds produced identical circuit")
}

func TestRewirePreservesDegrees(t *testing.T) {
	g := BarabasiAlbert(300, 4, 3)
	r := Rewire(g, 10*g.M(), 7)
	if r.N() != g.N() || r.M() != g.M() {
		t.Fatalf("rewire changed size: %d/%d vs %d/%d", r.N(), r.M(), g.N(), g.M())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if r.Degree(v) != g.Degree(v) {
			t.Fatalf("degree of %d changed: %d -> %d", v, g.Degree(v), r.Degree(v))
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// The wiring must actually change.
	changed := false
	for v := int32(0); v < int32(g.N()) && !changed; v++ {
		av, rv := g.Adj(v), r.Adj(v)
		for i := range av {
			if av[i] != rv[i] {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("rewire left the graph identical")
	}
}

func TestRewireDeterministic(t *testing.T) {
	g := ErdosRenyiM(100, 300, 1)
	a := Rewire(g, 1000, 5)
	b := Rewire(g, 1000, 5)
	for v := int32(0); v < int32(a.N()); v++ {
		av, bv := a.Adj(v), b.Adj(v)
		if len(av) != len(bv) {
			t.Fatal("nondeterministic rewire")
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatal("nondeterministic rewire")
			}
		}
	}
}

func TestRewireTinyGraph(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int32{{0, 1}}, nil)
	r := Rewire(g, 100, 1)
	if r.M() != 1 {
		t.Fatal("single edge should survive")
	}
}

// TestPPIClusteringExceedsRandom validates the duplication-divergence
// substitution quantitatively: PPI-style networks must be far more
// clustered than a degree-matched Erdős–Rényi graph, since that local
// structure is what motif analysis measures.
func TestPPIClusteringExceedsRandom(t *testing.T) {
	p, _ := ByName("ecoli")
	ppi := p.Build(1.0, 5)
	er := ErdosRenyiM(ppi.N(), ppi.M(), 5)
	cp, ce := ppi.GlobalClustering(), er.GlobalClustering()
	if cp < 3*ce {
		t.Fatalf("PPI clustering %.4f not well above ER %.4f", cp, ce)
	}
}
