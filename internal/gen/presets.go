package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// PaperStats records the size of the original dataset from Table I of the
// paper, so experiment output can show target vs realized sizes.
type PaperStats struct {
	N    int
	M    int64
	DAvg float64
	DMax int
}

// Preset is a named stand-in for one of the paper's networks. Build
// generates it at a given scale factor (1.0 = paper-sized; smaller values
// shrink the vertex count proportionally, preserving average degree) with
// a deterministic seed. The largest connected component is returned, as
// the paper analyzes only that.
type Preset struct {
	Name   string
	Source string // what the paper used
	Model  string // what we generate instead
	Paper  PaperStats
	Build  func(scale float64, seed int64) *graph.Graph
}

func scaledN(n int, scale float64) int {
	v := int(math.Round(float64(n) * scale))
	if v < 16 {
		v = 16
	}
	return v
}

// trimToM prunes a connected graph down to exactly m undirected edges
// while preserving connectivity: a random spanning tree is always kept and
// the remaining quota is filled with a random subset of the other edges.
// If the graph already has <= m edges it is returned unchanged.
func trimToM(g *graph.Graph, m int64, seed int64) *graph.Graph {
	if g.M() <= m {
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	keep := make([][2]int32, 0, m)
	rest := make([][2]int32, 0, len(edges))
	for _, e := range edges {
		ru, rv := find(e[0]), find(e[1])
		if ru != rv {
			parent[ru] = rv
			keep = append(keep, e)
		} else {
			rest = append(rest, e)
		}
	}
	for _, e := range rest {
		if int64(len(keep)) >= m {
			break
		}
		keep = append(keep, e)
	}
	return graph.MustFromEdges(n, keep, nil)
}

func lcc(g *graph.Graph) *graph.Graph {
	sub, _ := g.LargestComponent()
	return sub
}

// ppi builds a duplication–divergence network trimmed to the target
// average degree of the modelled protein-interaction network.
func ppi(paperN int, paperM int64, retain float64) func(scale float64, seed int64) *graph.Graph {
	return func(scale float64, seed int64) *graph.Graph {
		n := scaledN(paperN, scale)
		g := lcc(DuplicationDivergence(n, retain, 0.35, seed))
		target := scaleM(paperM, g.N(), paperN)
		return trimToM(g, target, seed+1)
	}
}

// Presets lists all ten networks from Table I of the paper in its order.
var Presets = []Preset{
	{
		Name:   "portland",
		Source: "NDSSL synthetic Portland contact network",
		Model:  "Watts-Strogatz small world (kNear=20, beta=0.05)",
		Paper:  PaperStats{N: 1588212, M: 31204286, DAvg: 39.3, DMax: 275},
		Build: func(scale float64, seed int64) *graph.Graph {
			n := scaledN(1588212, scale)
			return lcc(WattsStrogatz(n, 20, 0.05, seed))
		},
	},
	{
		Name:   "enron",
		Source: "SNAP email-Enron",
		Model:  "Barabasi-Albert preferential attachment (mPer=5)",
		Paper:  PaperStats{N: 33696, M: 180811, DAvg: 10.7, DMax: 1383},
		Build: func(scale float64, seed int64) *graph.Graph {
			n := scaledN(33696, scale)
			return lcc(BarabasiAlbert(n, 5, seed))
		},
	},
	{
		Name:   "gnp",
		Source: "Erdos-Renyi G(n,p) matched to Enron",
		Model:  "Erdos-Renyi G(n,m)",
		Paper:  PaperStats{N: 33696, M: 181044, DAvg: 10.7, DMax: 27},
		Build: func(scale float64, seed int64) *graph.Graph {
			n := scaledN(33696, scale)
			return lcc(ErdosRenyiM(n, scaleM(181044, n, 33696), seed))
		},
	},
	{
		Name:   "slashdot",
		Source: "SNAP soc-Slashdot0902",
		Model:  "R-MAT (0.57, 0.19, 0.19) heavy-tailed",
		Paper:  PaperStats{N: 82168, M: 438643, DAvg: 10.7, DMax: 2510},
		Build: func(scale float64, seed int64) *graph.Graph {
			// Choose the R-MAT scale so the LCC lands near the target n.
			n := scaledN(82168, scale)
			sc := 1
			for (1 << sc) < n*2 {
				sc++
			}
			m := scaleM(438643, n, 82168)
			return lcc(RMAT(sc, m, 0.57, 0.19, 0.19, seed))
		},
	},
	{
		Name:   "paroad",
		Source: "SNAP roadNet-PA",
		Model:  "jittered 2-D lattice (keep=0.7)",
		Paper:  PaperStats{N: 1090917, M: 1541898, DAvg: 2.8, DMax: 9},
		Build: func(scale float64, seed int64) *graph.Graph {
			n := scaledN(1090917, scale)
			side := int(math.Round(math.Sqrt(float64(n))))
			if side < 4 {
				side = 4
			}
			return lcc(RoadNetwork(side, side, 0.7, seed))
		},
	},
	{
		Name:   "circuit",
		Source: "ISCAS89 s420 electrical circuit",
		Model:  "random tree plus chords (maxDeg=14)",
		Paper:  PaperStats{N: 252, M: 399, DAvg: 3.1, DMax: 14},
		Build: func(scale float64, seed int64) *graph.Graph {
			n := scaledN(252, scale)
			return lcc(Circuit(n, scaleM(399, n, 252), 14, seed))
		},
	},
	{
		Name:   "ecoli",
		Source: "DIP E. coli PPI",
		Model:  "duplication-divergence (retain=0.55)",
		Paper:  PaperStats{N: 2546, M: 11520, DAvg: 9.0, DMax: 178},
		Build:  ppi(2546, 11520, 0.55),
	},
	{
		Name:   "scerevisiae",
		Source: "DIP S. cerevisiae (yeast) PPI",
		Model:  "duplication-divergence (retain=0.55)",
		Paper:  PaperStats{N: 5021, M: 22119, DAvg: 8.8, DMax: 289},
		Build:  ppi(5021, 22119, 0.55),
	},
	{
		Name:   "hpylori",
		Source: "DIP H. pylori PPI",
		Model:  "duplication-divergence (retain=0.45)",
		Paper:  PaperStats{N: 687, M: 1352, DAvg: 3.9, DMax: 54},
		Build:  ppi(687, 1352, 0.45),
	},
	{
		Name:   "celegans",
		Source: "DIP C. elegans PPI",
		Model:  "duplication-divergence (retain=0.40)",
		Paper:  PaperStats{N: 2391, M: 3831, DAvg: 3.2, DMax: 187},
		Build:  ppi(2391, 3831, 0.40),
	},
}

// ByName returns the preset with the given name.
func ByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, len(Presets))
	for i, p := range Presets {
		names[i] = p.Name
	}
	sort.Strings(names)
	return Preset{}, fmt.Errorf("gen: unknown network preset %q (have %v)", name, names)
}

// PPIPresets returns the four protein-interaction presets in paper order.
func PPIPresets() []Preset {
	out := make([]Preset, 0, 4)
	for _, p := range Presets {
		switch p.Name {
		case "ecoli", "scerevisiae", "hpylori", "celegans":
			out = append(out, p)
		}
	}
	return out
}
