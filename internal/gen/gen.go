// Package gen provides deterministic, seeded random-network generators
// that stand in for the datasets used in the FASCIA paper (SNAP social
// networks, the NDSSL Portland contact network, a PA road network, an
// ISCAS89 circuit, and four DIP protein-interaction networks). The module
// is offline, so each paper network is replaced by a generative model
// matched to its size and degree shape; see DESIGN.md §3 for the
// substitution rationale.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyiM generates a G(n, m) graph: m undirected edges sampled
// uniformly without self-loops (duplicates are dropped during CSR build,
// so the realized edge count can be marginally lower on dense inputs).
func ErdosRenyiM(n int, m int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int32, 0, m)
	for int64(len(edges)) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			edges = append(edges, [2]int32{u, v})
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

// BarabasiAlbert generates a preferential-attachment graph: starting from
// a small clique, each new vertex attaches to mPer existing vertices
// chosen proportionally to degree, giving the heavy-tailed degree
// distribution typical of social networks.
func BarabasiAlbert(n, mPer int, seed int64) *graph.Graph {
	if mPer < 1 {
		mPer = 1
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int32, 0, n*mPer)
	// targets holds one entry per edge endpoint: sampling uniformly from
	// it is sampling proportional to degree.
	targets := make([]int32, 0, 2*n*mPer)
	seedN := mPer + 1
	if seedN > n {
		seedN = n
	}
	for u := 0; u < seedN; u++ {
		for v := u + 1; v < seedN; v++ {
			edges = append(edges, [2]int32{int32(u), int32(v)})
			targets = append(targets, int32(u), int32(v))
		}
	}
	// picks records the distinct targets in sampling order: iterating the
	// dedup map instead would make the graph depend on Go's randomized map
	// order, breaking seed reproducibility.
	chosen := make(map[int32]bool, mPer)
	picks := make([]int32, 0, mPer)
	for u := seedN; u < n; u++ {
		for _, v := range picks {
			delete(chosen, v)
		}
		picks = picks[:0]
		for len(picks) < mPer {
			v := targets[rng.Intn(len(targets))]
			if !chosen[v] {
				chosen[v] = true
				picks = append(picks, v)
			}
		}
		for _, v := range picks {
			edges = append(edges, [2]int32{int32(u), v})
			targets = append(targets, int32(u), v)
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

// RMAT generates an R-MAT graph with 2^scale vertices and the requested
// number of sampled edges using recursive quadrant probabilities
// (a, b, c, d). The classic (0.57, 0.19, 0.19, 0.05) parameters give the
// skewed degree distributions of web/social graphs such as Enron and
// Slashdot. The result typically contains isolated vertices; callers take
// the largest connected component, as the paper does.
func RMAT(scale int, m int64, a, b, c float64, seed int64) *graph.Graph {
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int32, 0, m)
	for int64(len(edges)) < m {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its kNear nearest neighbors on each side, with each
// edge rewired to a random endpoint with probability beta. With kNear ≈ 20
// this models the homogeneous high-degree Portland contact network.
func WattsStrogatz(n, kNear int, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int32, 0, n*kNear)
	for u := 0; u < n; u++ {
		for j := 1; j <= kNear; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				v = rng.Intn(n)
				if v == u {
					v = (v + 1) % n
				}
			}
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

// RoadNetwork generates a planar-style road network: a rows×cols grid in
// which each lattice edge is kept with probability keep, plus sparse
// shortcut diagonals. Degrees are bounded by 8 and average ≈ 2.8 with the
// defaults used by the presets, matching the PA road network's shape.
func RoadNetwork(rows, cols int, keep float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	id := func(r, c int) int32 { return int32(r*cols + c) }
	edges := make([][2]int32, 0, 2*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() < keep {
				edges = append(edges, [2]int32{id(r, c), id(r, c+1)})
			}
			if r+1 < rows && rng.Float64() < keep {
				edges = append(edges, [2]int32{id(r, c), id(r+1, c)})
			}
			// Occasional diagonal, as real road grids are not perfect.
			if r+1 < rows && c+1 < cols && rng.Float64() < 0.02 {
				edges = append(edges, [2]int32{id(r, c), id(r+1, c+1)})
			}
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

// DuplicationDivergence generates a protein-interaction-style network via
// the duplication–divergence model: each new vertex copies a random
// existing vertex's edges, keeping each with probability retain, and
// attaches to the copied vertex with probability pAnchor. This is the
// standard generative model for PPI topology (sparse, skewed, clustered).
func DuplicationDivergence(n int, retain, pAnchor float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int32, n)
	addEdge := func(u, v int32) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	// Seed triangle.
	start := 3
	if n < 3 {
		start = n
	}
	if n >= 2 {
		addEdge(0, 1)
	}
	if n >= 3 {
		addEdge(0, 2)
		addEdge(1, 2)
	}
	for u := start; u < n; u++ {
		anchor := int32(rng.Intn(u))
		kept := false
		for _, v := range adj[anchor] {
			if rng.Float64() < retain {
				addEdge(int32(u), v)
				kept = true
			}
		}
		if rng.Float64() < pAnchor || !kept {
			addEdge(int32(u), anchor)
		}
	}
	edges := make([][2]int32, 0, n*4)
	for u := 0; u < n; u++ {
		for _, v := range adj[u] {
			if int32(u) < v {
				edges = append(edges, [2]int32{int32(u), v})
			}
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

// Circuit generates a sparse circuit-style network: a random spanning tree
// (wire fanout) plus extra chords until the target edge count is reached,
// with a maximum degree cap mimicking gate fanin/fanout limits. Matched to
// the ISCAS89 s420 circuit (252 vertices, 399 edges, dmax 14).
func Circuit(n int, m int64, maxDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	deg := make([]int, n)
	edges := make([][2]int32, 0, m)
	have := make(map[int64]bool, m)
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	// Random attachment tree keeps it connected.
	for u := 1; u < n; u++ {
		v := rng.Intn(u)
		for deg[v] >= maxDeg {
			v = rng.Intn(u)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		have[key(u, v)] = true
		deg[u]++
		deg[v]++
	}
	for int64(len(edges)) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || deg[u] >= maxDeg || deg[v] >= maxDeg || have[key(u, v)] {
			continue
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		have[key(u, v)] = true
		deg[u]++
		deg[v]++
	}
	return graph.MustFromEdges(n, edges, nil)
}

// AssignLabels attaches deterministic pseudo-random vertex labels in
// [0, numLabels) to g in place and returns g, mirroring the paper's
// randomly-assigned label methodology (8 labels for Portland: two genders
// × four age groups).
func AssignLabels(g *graph.Graph, numLabels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int32, g.N())
	for i := range labels {
		labels[i] = int32(rng.Intn(numLabels))
	}
	g.Labels = labels
	return g
}

// scaleM proportionally scales an edge target with a vertex-count ratio.
func scaleM(m int64, num, den int) int64 {
	v := int64(math.Round(float64(m) * float64(num) / float64(den)))
	if v < 1 {
		v = 1
	}
	return v
}

// Rewire performs degree-preserving randomization of g via double-edge
// swaps: repeatedly pick two edges (a,b), (c,d) and replace them with
// (a,d), (c,b) when doing so creates neither self-loops nor duplicate
// edges. This is the standard null model for motif significance analysis
// (Milo et al.): it preserves every vertex's degree exactly while
// destroying higher-order structure. swaps is the number of attempted
// swaps; 10·m or more gives a well-mixed sample.
func Rewire(g *graph.Graph, swaps int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := g.Edges()
	m := len(edges)
	if m < 2 {
		return graph.MustFromEdges(g.N(), edges, g.Labels)
	}
	have := make(map[int64]bool, m)
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	for _, e := range edges {
		have[key(e[0], e[1])] = true
	}
	for s := int64(0); s < swaps; s++ {
		i := rng.Intn(m)
		j := rng.Intn(m)
		if i == j {
			continue
		}
		a, b := edges[i][0], edges[i][1]
		c, d := edges[j][0], edges[j][1]
		// Randomize orientation so both pairings are reachable.
		if rng.Intn(2) == 0 {
			c, d = d, c
		}
		if a == d || c == b || a == c || b == d {
			continue
		}
		if have[key(a, d)] || have[key(c, b)] {
			continue
		}
		delete(have, key(a, b))
		delete(have, key(c, d))
		have[key(a, d)] = true
		have[key(c, b)] = true
		edges[i] = [2]int32{a, d}
		edges[j] = [2]int32{c, b}
	}
	return graph.MustFromEdges(g.N(), edges, g.Labels)
}
