// Package motif implements motif finding on top of the color-coding
// counter: estimating the occurrence counts of ALL tree templates of a
// given size in a network and comparing networks by their relative motif
// frequency profiles, as in §V-E of the paper (Figures 11-14).
package motif

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// Profile holds estimated counts for every free tree of size K in one
// network. Trees are in the canonical order of tmpl.AllTrees, so
// "subgraph i" is comparable across networks and runs, matching the
// paper's numbered x-axes.
type Profile struct {
	Network    string
	K          int
	Iterations int
	Trees      []*tmpl.Template
	Counts     []float64
}

// Find estimates occurrence counts for all free trees on k vertices using
// iters color-coding iterations per tree. cfg supplies engine settings
// (table layout, strategy, workers, seed); its Colors and RootVertex
// fields are reset per template.
func Find(name string, g *graph.Graph, k, iters int, cfg dp.Config) (Profile, error) {
	return FindContext(context.Background(), name, g, k, iters, cfg)
}

// FindContext is Find with cooperative cancellation: the context is
// checked between templates and plumbed into every per-template run, so
// a profile over dozens of trees aborts promptly mid-tree.
func FindContext(ctx context.Context, name string, g *graph.Graph, k, iters int, cfg dp.Config) (Profile, error) {
	if iters < 1 {
		return Profile{}, fmt.Errorf("motif: iterations must be >= 1, got %d", iters)
	}
	trees := tmpl.AllTrees(k)
	p := Profile{
		Network:    name,
		K:          k,
		Iterations: iters,
		Trees:      trees,
		Counts:     make([]float64, len(trees)),
	}
	for i, tr := range trees {
		if err := ctx.Err(); err != nil {
			return Profile{}, err
		}
		c := cfg
		c.Colors = 0
		c.RootVertex = -1
		// Decorrelate templates while keeping runs reproducible.
		c.Seed = cfg.Seed + int64(i)*1_000_003
		e, err := dp.New(g, tr, c)
		if err != nil {
			return Profile{}, fmt.Errorf("motif: template %s: %w", tr.Name(), err)
		}
		res, err := e.RunContext(ctx, iters)
		if err != nil {
			return Profile{}, fmt.Errorf("motif: template %s: %w", tr.Name(), err)
		}
		p.Counts[i] = res.Estimate
	}
	return p, nil
}

// Mean returns the average count across all trees in the profile.
func (p Profile) Mean() float64 {
	if len(p.Counts) == 0 {
		return 0
	}
	var s float64
	for _, c := range p.Counts {
		s += c
	}
	return s / float64(len(p.Counts))
}

// RelativeFrequencies returns each tree's count divided by the profile
// mean — the normalization the paper uses to overlay profiles of
// different-sized networks in Figures 13 and 14.
func (p Profile) RelativeFrequencies() []float64 {
	mean := p.Mean()
	out := make([]float64, len(p.Counts))
	if mean == 0 {
		return out
	}
	for i, c := range p.Counts {
		out[i] = c / mean
	}
	return out
}

// MeanRelativeError returns the mean over trees of |est-exact|/exact,
// skipping trees with zero exact count — the error metric of Figure 11.
func MeanRelativeError(est Profile, exactCounts []int64) (float64, error) {
	if len(exactCounts) != len(est.Counts) {
		return 0, fmt.Errorf("motif: %d exact counts for %d trees", len(exactCounts), len(est.Counts))
	}
	var sum float64
	n := 0
	for i, want := range exactCounts {
		if want == 0 {
			continue
		}
		sum += math.Abs(est.Counts[i]-float64(want)) / float64(want)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("motif: all exact counts are zero")
	}
	return sum / float64(n), nil
}

// ProfileDistance compares two relative-frequency profiles by mean
// absolute log-ratio distance, a simple scalar for "how different do
// these networks' motif signatures look" used in the comparative
// experiments.
func ProfileDistance(a, b Profile) (float64, error) {
	if a.K != b.K {
		return 0, fmt.Errorf("motif: profiles of different sizes %d vs %d", a.K, b.K)
	}
	ra, rb := a.RelativeFrequencies(), b.RelativeFrequencies()
	var sum float64
	n := 0
	for i := range ra {
		if ra[i] <= 0 || rb[i] <= 0 {
			continue
		}
		sum += math.Abs(math.Log(ra[i] / rb[i]))
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("motif: no comparable trees")
	}
	return sum / float64(n), nil
}
