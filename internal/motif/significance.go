package motif

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Significance holds motif z-scores against a degree-preserving random
// null model — the classical definition of a network motif (§II-A of the
// paper: "a subgraph with higher than expected occurrence", compared "to
// what is expected on a random graph").
type Significance struct {
	// Real is the motif profile of the input network.
	Real Profile
	// NullMean and NullStd are the per-tree mean and standard deviation
	// of counts over the randomized ensemble.
	NullMean []float64
	NullStd  []float64
	// Z[i] = (Real.Counts[i] - NullMean[i]) / NullStd[i]; 0 when the
	// ensemble shows no variance.
	Z []float64
	// Samples is the ensemble size used.
	Samples int
}

// FindSignificance estimates motif counts on g and on an ensemble of
// `samples` degree-preserving randomizations (double-edge swap null
// model), returning per-tree z-scores. Positive z marks over-represented
// subgraphs (motifs); negative z marks anti-motifs.
func FindSignificance(name string, g *graph.Graph, k, iters, samples int, cfg dp.Config) (Significance, error) {
	return FindSignificanceContext(context.Background(), name, g, k, iters, samples, cfg)
}

// FindSignificanceContext is FindSignificance with cooperative
// cancellation, checked between ensemble samples and inside every
// per-template counting run.
func FindSignificanceContext(ctx context.Context, name string, g *graph.Graph, k, iters, samples int, cfg dp.Config) (Significance, error) {
	if samples < 2 {
		return Significance{}, fmt.Errorf("motif: significance needs >= 2 null samples, got %d", samples)
	}
	real, err := FindContext(ctx, name, g, k, iters, cfg)
	if err != nil {
		return Significance{}, err
	}
	nTrees := len(real.Trees)
	sum := make([]float64, nTrees)
	sumSq := make([]float64, nTrees)
	for s := 0; s < samples; s++ {
		if err := ctx.Err(); err != nil {
			return Significance{}, err
		}
		null := gen.Rewire(g, 10*g.M(), cfg.Seed+int64(s)*7919+1)
		ncfg := cfg
		ncfg.Seed = cfg.Seed + int64(s)*104729 + 13
		prof, err := FindContext(ctx, fmt.Sprintf("%s-null%d", name, s), null, k, iters, ncfg)
		if err != nil {
			return Significance{}, err
		}
		for i, c := range prof.Counts {
			sum[i] += c
			sumSq[i] += c * c
		}
	}
	sig := Significance{
		Real:     real,
		NullMean: make([]float64, nTrees),
		NullStd:  make([]float64, nTrees),
		Z:        make([]float64, nTrees),
		Samples:  samples,
	}
	for i := 0; i < nTrees; i++ {
		mean := sum[i] / float64(samples)
		variance := sumSq[i]/float64(samples) - mean*mean
		if variance < 0 {
			variance = 0
		}
		std := math.Sqrt(variance * float64(samples) / float64(samples-1))
		sig.NullMean[i] = mean
		sig.NullStd[i] = std
		if std > 0 {
			sig.Z[i] = (real.Counts[i] - mean) / std
		}
	}
	return sig, nil
}

// Motifs returns the indices of trees with z-score at least threshold,
// i.e. the significantly over-represented subgraphs.
func (s Significance) Motifs(threshold float64) []int {
	var out []int
	for i, z := range s.Z {
		if z >= threshold {
			out = append(out, i)
		}
	}
	return out
}
