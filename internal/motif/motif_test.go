package motif

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/graph"
)

func randomG(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func TestFindSmallSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomG(rng, 25, 70)
	cfg := dp.DefaultConfig()
	cfg.Seed = 42
	p, err := Find("test", g, 4, 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 4 || len(p.Trees) != 2 || len(p.Counts) != 2 {
		t.Fatalf("profile malformed: %+v", p)
	}
	for i, tr := range p.Trees {
		want := float64(exact.Count(g, tr))
		if want == 0 {
			continue
		}
		if math.Abs(p.Counts[i]-want)/want > 0.20 {
			t.Errorf("tree %s: estimate %.1f, exact %.1f", tr.Name(), p.Counts[i], want)
		}
	}
}

func TestFindValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomG(rng, 10, 20)
	if _, err := Find("x", g, 3, 0, dp.DefaultConfig()); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestRelativeFrequencies(t *testing.T) {
	p := Profile{K: 3, Counts: []float64{10, 30}}
	rf := p.RelativeFrequencies()
	if rf[0] != 0.5 || rf[1] != 1.5 {
		t.Fatalf("relative frequencies %v", rf)
	}
	if p.Mean() != 20 {
		t.Fatalf("mean %v", p.Mean())
	}
	empty := Profile{}
	if empty.Mean() != 0 || len(empty.RelativeFrequencies()) != 0 {
		t.Fatal("empty profile should degrade gracefully")
	}
	zero := Profile{Counts: []float64{0, 0}}
	if rf := zero.RelativeFrequencies(); rf[0] != 0 || rf[1] != 0 {
		t.Fatal("zero profile should yield zeros")
	}
}

func TestMeanRelativeError(t *testing.T) {
	p := Profile{Counts: []float64{90, 220, 5}}
	got, err := MeanRelativeError(p, []int64{100, 200, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.1 + 0.1) / 2 // zero-count tree skipped
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("error %v, want %v", got, want)
	}
	if _, err := MeanRelativeError(p, []int64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MeanRelativeError(Profile{Counts: []float64{1}}, []int64{0}); err == nil {
		t.Fatal("all-zero exact accepted")
	}
}

func TestProfileDistance(t *testing.T) {
	a := Profile{K: 3, Counts: []float64{10, 20}}
	b := Profile{K: 3, Counts: []float64{10, 20}}
	d, err := ProfileDistance(a, b)
	if err != nil || d != 0 {
		t.Fatalf("identical profiles distance %v err %v", d, err)
	}
	c := Profile{K: 3, Counts: []float64{20, 10}}
	d2, err := ProfileDistance(a, c)
	if err != nil || d2 <= 0 {
		t.Fatalf("different profiles distance %v err %v", d2, err)
	}
	if _, err := ProfileDistance(a, Profile{K: 4}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := ProfileDistance(Profile{K: 3, Counts: []float64{0}}, Profile{K: 3, Counts: []float64{0}}); err == nil {
		t.Fatal("incomparable profiles accepted")
	}
}

// TestFindConsistentWithEnumeration: motif profile ranks must broadly
// agree with the exact relative magnitudes (Figure 12's observation that
// even 1 iteration preserves relative magnitudes is probabilistic; with
// 300 iterations ordering of well-separated counts must hold).
func TestFindOrderingPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomG(rng, 30, 100)
	cfg := dp.DefaultConfig()
	cfg.Seed = 7
	p, err := Find("test", g, 5, 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		est   float64
		exact int64
	}
	pairs := make([]pair, len(p.Trees))
	for i, tr := range p.Trees {
		pairs[i] = pair{p.Counts[i], exact.Count(g, tr)}
	}
	for i := range pairs {
		for j := range pairs {
			// Only check well-separated pairs (2× difference).
			if pairs[i].exact > 2*pairs[j].exact && pairs[j].exact > 0 {
				if pairs[i].est <= pairs[j].est {
					t.Errorf("ordering violated: exact %d vs %d but est %.1f vs %.1f",
						pairs[i].exact, pairs[j].exact, pairs[i].est, pairs[j].est)
				}
			}
		}
	}
}
