package motif

import (
	"testing"

	"repro/internal/dp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// plantedGraph builds a random backbone plus many disjoint planted stars,
// so star motifs are over-represented relative to any degree-preserving
// randomization... actually degree-preserving null models preserve star
// counts, so we plant triangles-free high-clustering structure instead:
// a Watts-Strogatz ring, whose path/locality structure randomization
// destroys.
func plantedGraph() *graph.Graph {
	return gen.WattsStrogatz(160, 3, 0.02, 5)
}

func TestFindSignificance(t *testing.T) {
	g := plantedGraph()
	cfg := dp.DefaultConfig()
	cfg.Seed = 9
	sig, err := FindSignificance("ws", g, 4, 120, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Z) != tmpl.NumFreeTrees(4) || sig.Samples != 5 {
		t.Fatalf("malformed significance: %+v", sig)
	}
	for i := range sig.Z {
		if sig.NullStd[i] < 0 {
			t.Fatal("negative std")
		}
	}
	// A small-world ring has long path chains; rewiring spreads edges so
	// stars (around what were locally clustered vertices) change. At
	// minimum the scores must be finite and not all zero.
	nonzero := false
	for _, z := range sig.Z {
		if z != 0 {
			nonzero = true
		}
		if z != z { // NaN
			t.Fatal("NaN z-score")
		}
	}
	if !nonzero {
		t.Fatal("all z-scores zero")
	}
	// Motifs() respects the threshold.
	all := sig.Motifs(-1e18)
	if len(all) != len(sig.Z) {
		t.Fatal("threshold filtering broken")
	}
	none := sig.Motifs(1e18)
	if len(none) != 0 {
		t.Fatal("threshold filtering broken high")
	}
}

func TestFindSignificanceValidation(t *testing.T) {
	g := plantedGraph()
	if _, err := FindSignificance("x", g, 4, 5, 1, dp.DefaultConfig()); err == nil {
		t.Fatal("one sample accepted")
	}
}

// TestSignificanceDetectsPlantedStructure: a graph made of disjoint long
// paths chained into a connected line has maximal path-motif counts for
// its degree sequence; rewiring can only break paths apart, so the path
// tree must not be under-represented.
func TestSignificanceDetectsPlantedStructure(t *testing.T) {
	// A long path: every vertex degree <= 2, P4 count = n-3. Rewiring a
	// path yields unions of paths and cycles; long-range order is
	// destroyed, reducing the count of long paths through any fixed
	// vertex sequence but keeping degree-driven counts. With degrees
	// preserved, the P4 count of a 2-regular-ish graph is nearly fixed,
	// so |z| should be modest — this guards against wild miscalibration.
	edges := make([][2]int32, 0, 159)
	for i := 0; i < 159; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	g := graph.MustFromEdges(160, edges, nil)
	cfg := dp.DefaultConfig()
	cfg.Seed = 3
	sig, err := FindSignificance("path", g, 4, 200, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, z := range sig.Z {
		if z < -50 || z > 50 {
			t.Fatalf("tree %d: implausible z %.1f (mean %.1f std %.2f real %.1f)",
				i, z, sig.NullMean[i], sig.NullStd[i], sig.Real.Counts[i])
		}
	}
}
