package motif

import (
	"context"
	"fmt"
	"math"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// ZooProfile holds EXACT counts of the size-3/4 motif zoo (triangle,
// path3, star3, c4, diamond, tailed-triangle, k4) in one network,
// computed by the closed-form counters in internal/exact — no sampling
// error, so zoo significance needs no per-count iteration budget.
type ZooProfile struct {
	Network string
	// Names lists the motifs in tmpl.ZooNames order; Counts is parallel.
	Names  []string
	Counts []int64
}

// FindZoo computes the exact motif-zoo profile of g.
func FindZoo(name string, g *graph.Graph) ZooProfile {
	return ZooProfile{
		Network: name,
		Names:   tmpl.ZooNames(),
		Counts:  exact.ZooCounts(g),
	}
}

// ZooSignificance holds motif-zoo z-scores against the degree-preserving
// null model — the non-tree counterpart of Significance. Because both
// the real profile and every null sample are exact counts, any nonzero
// z reflects genuine structure, never estimator noise.
type ZooSignificance struct {
	// Real is the exact zoo profile of the input network.
	Real ZooProfile
	// NullMean and NullStd are the per-motif mean and standard deviation
	// of exact counts over the randomized ensemble.
	NullMean []float64
	NullStd  []float64
	// Z[i] = (Real.Counts[i] - NullMean[i]) / NullStd[i]; 0 when the
	// ensemble shows no variance.
	Z []float64
	// Samples is the ensemble size used.
	Samples int
}

// FindZooSignificance computes exact zoo counts on g and on an ensemble
// of `samples` degree-preserving randomizations (double-edge swap null
// model), returning per-motif z-scores. Positive z marks
// over-represented motifs — e.g. triangles and their supergraphs in
// clustered networks, which a degree-matched rewiring destroys.
func FindZooSignificance(name string, g *graph.Graph, samples int, seed int64) (ZooSignificance, error) {
	return FindZooSignificanceContext(context.Background(), name, g, samples, seed)
}

// FindZooSignificanceContext is FindZooSignificance with cooperative
// cancellation, checked between ensemble samples.
func FindZooSignificanceContext(ctx context.Context, name string, g *graph.Graph, samples int, seed int64) (ZooSignificance, error) {
	if samples < 2 {
		return ZooSignificance{}, fmt.Errorf("motif: zoo significance needs >= 2 null samples, got %d", samples)
	}
	real := FindZoo(name, g)
	n := len(real.Names)
	sum := make([]float64, n)
	sumSq := make([]float64, n)
	for s := 0; s < samples; s++ {
		if err := ctx.Err(); err != nil {
			return ZooSignificance{}, err
		}
		null := gen.Rewire(g, 10*g.M(), seed+int64(s)*7919+1)
		for i, c := range exact.ZooCounts(null) {
			sum[i] += float64(c)
			sumSq[i] += float64(c) * float64(c)
		}
	}
	sig := ZooSignificance{
		Real:     real,
		NullMean: make([]float64, n),
		NullStd:  make([]float64, n),
		Z:        make([]float64, n),
		Samples:  samples,
	}
	for i := 0; i < n; i++ {
		mean := sum[i] / float64(samples)
		variance := sumSq[i]/float64(samples) - mean*mean
		if variance < 0 {
			variance = 0
		}
		std := math.Sqrt(variance * float64(samples) / float64(samples-1))
		sig.NullMean[i] = mean
		sig.NullStd[i] = std
		if std > 0 {
			sig.Z[i] = (float64(real.Counts[i]) - mean) / std
		}
	}
	return sig, nil
}

// Motifs returns the names of zoo motifs with z-score at least
// threshold — the significantly over-represented non-tree subgraphs.
func (s ZooSignificance) Motifs(threshold float64) []string {
	var out []string
	for i, z := range s.Z {
		if z >= threshold {
			out = append(out, s.Real.Names[i])
		}
	}
	return out
}
