package motif

import (
	"context"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/tmpl"
)

func TestFindZooMatchesCounters(t *testing.T) {
	g := gen.ErdosRenyiM(80, 400, 21)
	p := FindZoo("er", g)
	if p.Network != "er" {
		t.Fatalf("network name %q", p.Network)
	}
	names := tmpl.ZooNames()
	if len(p.Names) != len(names) || len(p.Counts) != len(names) {
		t.Fatalf("malformed profile: %d names, %d counts", len(p.Names), len(p.Counts))
	}
	for i, name := range names {
		if p.Names[i] != name {
			t.Fatalf("name %d: %q, want %q", i, p.Names[i], name)
		}
		want, err := exact.CountMotif(g, name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Counts[i] != want {
			t.Fatalf("%s: profile %d, counter %d", name, p.Counts[i], want)
		}
	}
}

// TestZooSignificanceDetectsClustering: a small-world ring lattice is
// heavily clustered — its triangle count vastly exceeds any
// degree-preserving randomization's — so the triangle z-score (and its
// supergraph tailed-triangle's) must come out strongly positive.
func TestZooSignificanceDetectsClustering(t *testing.T) {
	g := gen.WattsStrogatz(200, 4, 0.02, 5)
	sig, err := FindZooSignificance("ws", g, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Samples != 8 || len(sig.Z) != len(tmpl.ZooNames()) {
		t.Fatalf("malformed significance: %+v", sig)
	}
	zOf := func(name string) float64 {
		for i, n := range sig.Real.Names {
			if n == name {
				return sig.Z[i]
			}
		}
		t.Fatalf("motif %s missing", name)
		return 0
	}
	if z := zOf("triangle"); z < 3 {
		t.Errorf("triangle z = %.2f on a clustered ring, want strongly positive", z)
	}
	if z := zOf("tailed-triangle"); z < 3 {
		t.Errorf("tailed-triangle z = %.2f on a clustered ring, want strongly positive", z)
	}
	for i, z := range sig.Z {
		if z != z {
			t.Fatalf("NaN z-score for %s", sig.Real.Names[i])
		}
	}
	// Motifs() respects thresholds.
	if got := sig.Motifs(-1e18); len(got) != len(sig.Z) {
		t.Fatal("threshold filtering broken low")
	}
	if got := sig.Motifs(1e18); len(got) != 0 {
		t.Fatal("threshold filtering broken high")
	}
	found := false
	for _, name := range sig.Motifs(3) {
		if name == "triangle" {
			found = true
		}
	}
	if !found {
		t.Error("Motifs(3) does not include triangle")
	}
}

func TestZooSignificanceValidation(t *testing.T) {
	g := gen.ErdosRenyiM(30, 60, 1)
	if _, err := FindZooSignificance("x", g, 1, 0); err == nil {
		t.Fatal("one sample accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FindZooSignificanceContext(ctx, "x", g, 4, 0); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
