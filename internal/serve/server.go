package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	fascia "repro"
	"repro/internal/shard"
)

// Config sizes a Server. The zero value is usable: GOMAXPROCS workers,
// 2 run slots, a 16-deep wait queue, a 64 MiB cache, 32-iteration
// queries bounded to 30 s.
type Config struct {
	// WorkerBudget is the global worker-goroutine budget shared by all
	// concurrent queries (0 = GOMAXPROCS). divideBudget carves it across
	// the run slots with nothing stranded.
	WorkerBudget int
	// MaxConcurrent is the number of queries that may run DP iterations
	// at once (0 = 2; capped at WorkerBudget).
	MaxConcurrent int
	// QueueDepth bounds queries waiting behind the run slots; beyond it,
	// admission control rejects with 429 + Retry-After (0 = 16, negative
	// = no waiting room).
	QueueDepth int
	// MaxRemoteConcurrent bounds queries dispatched to the shard tier at
	// once (0 = 4). Remote runs are network-bound and do not consume the
	// local worker budget, but each pins O(shards) connections.
	MaxRemoteConcurrent int
	// CacheBytes budgets the seed-keyed result cache (0 = 64 MiB).
	CacheBytes int64
	// MemBudgetBytes is the per-query peak table-memory budget applied
	// to every local DP run (Options.MemBudgetBytes: large table slabs
	// spill to file-backed mappings; 0 = the FASCIA_MEM_BYTES env or
	// unlimited). Execution-only — it never affects estimates or cache
	// keys.
	MemBudgetBytes int64
	// DefaultIterations is used when a query omits iterations (0 = 32).
	DefaultIterations int
	// MaxIterations caps per-query iterations (0 = 100000).
	MaxIterations int
	// DefaultTimeout bounds queries that omit timeout_ms (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps per-query deadlines (0 = 5m).
	MaxTimeout time.Duration
	// MaxUploadBytes caps graph-upload request bodies (0 = 256 MiB).
	MaxUploadBytes int64
	// Logf receives server-side diagnostics that have no client to go to
	// (e.g. a response body that failed to encode because the client hung
	// up mid-write). nil = log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.DefaultIterations <= 0 {
		c.DefaultIterations = 32
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server is the counting service: registry + scheduler + cache behind an
// http.Handler. Create with New, serve via ServeHTTP, stop with Drain.
type Server struct {
	cfg      Config
	registry *Registry
	cache    *Cache
	sched    *scheduler
	pool     *shard.Pool
	mux      *http.ServeMux

	// drainMu orders query admission against drain: queries join the
	// inflight group under RLock, Drain flips draining under Lock, so no
	// query can slip in after Drain has begun waiting.
	drainMu  sync.RWMutex
	draining bool // guarded by drainMu
	inflight sync.WaitGroup
	// drainCtx is the parent of every query context; Drain cancels it to
	// flush in-flight queries as partial means.
	drainCtx    context.Context
	drainCancel context.CancelFunc

	queries        atomic.Int64
	rejected       atomic.Int64
	partialResults atomic.Int64
	queryErrors    atomic.Int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(),
		cache:    NewCache(cfg.CacheBytes),
		sched:    newScheduler(cfg.WorkerBudget, cfg.MaxConcurrent, cfg.QueueDepth, cfg.MaxRemoteConcurrent),
		pool:     shard.NewPool(shard.PoolOptions{Logf: cfg.Logf}),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("POST /v1/graphs", s.handleAddGraph)
	s.mux.HandleFunc("POST /v1/count", s.handleCount)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/shards", s.handleListShards)
	s.mux.HandleFunc("POST /v1/shards", s.handleAddShard)
	s.mux.HandleFunc("DELETE /v1/shards", s.handleRemoveShard)
	return s
}

// Registry exposes the graph registry (for preloading graphs at boot).
func (s *Server) Registry() *Registry { return s.registry }

// Pool exposes the shard-tier coordinator pool (for boot-time shard
// registration and tests).
func (s *Server) Pool() *shard.Pool { return s.pool }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain performs graceful shutdown of query processing: stop admitting
// (new queries get 503), cancel every in-flight query via its context —
// each flushes its partial mean to its client with ctx.Err() semantics —
// and wait for them to finish, bounded by ctx. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if !already {
		mDrains.Add(1)
	}
	s.drainCancel()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain timed out with queries in flight: %w", ctx.Err())
	}
}

// beginQuery joins the in-flight group unless the server is draining.
func (s *Server) beginQuery() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Queries counts count-queries that produced a response body
	// (including partial results); Rejected counts 429s and 503s.
	Queries        int64 `json:"queries"`
	Rejected       int64 `json:"rejected"`
	PartialResults int64 `json:"partial_results"`
	QueryErrors    int64 `json:"query_errors"`
	Draining       bool  `json:"draining"`
	// Queued and Running gauge scheduler occupancy; Slots and QueueCap
	// are its static limits; WorkerBudgets is the per-slot carve-up.
	Queued        int64 `json:"queued"`
	Running       int64 `json:"running"`
	Slots         int   `json:"slots"`
	QueueCap      int   `json:"queue_cap"`
	WorkerBudgets []int `json:"worker_budgets"`
	// RunningRemote gauges queries currently executing on the shard tier.
	RunningRemote int64 `json:"running_remote"`
	// Shards counts registered shard workers; ShardQueries, Redispatches
	// and Failures are the pool's lifetime dispatch counters.
	Shards            int   `json:"shards"`
	ShardQueries      int64 `json:"shard_queries"`
	ShardRedispatches int64 `json:"shard_redispatches"`
	ShardFailures     int64 `json:"shard_failures"`
	// Graphs counts registered graphs; Cache snapshots the result cache.
	Graphs int        `json:"graphs"`
	Cache  CacheStats `json:"cache"`
}

// Stats returns the server's current counters.
func (s *Server) Stats() Stats {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	ps := s.pool.Stats()
	return Stats{
		Queries:           s.queries.Load(),
		Rejected:          s.rejected.Load(),
		PartialResults:    s.partialResults.Load(),
		QueryErrors:       s.queryErrors.Load(),
		Draining:          draining,
		Queued:            s.sched.queued.Load(),
		Running:           s.sched.running.Load(),
		Slots:             cap(s.sched.slots),
		QueueCap:          cap(s.sched.queue),
		WorkerBudgets:     append([]int(nil), s.sched.budgets...),
		RunningRemote:     s.sched.runningRemote.Load(),
		Shards:            ps.Shards,
		ShardQueries:      ps.Queries,
		ShardRedispatches: ps.Redispatches,
		ShardFailures:     ps.Failures,
		Graphs:            len(s.registry.List()),
		Cache:             s.cache.Stats(),
	}
}

// CountRequest is the body of POST /v1/count.
type CountRequest struct {
	// Graph names a registered graph.
	Graph string `json:"graph"`
	// Template is a compact edge-list spec such as "0-1 1-2 1-3".
	Template string `json:"template"`
	// TemplateLabels optionally labels the template's vertices (requires
	// a labeled graph).
	TemplateLabels []int32 `json:"template_labels,omitempty"`
	// Iterations is the number of color-coding iterations (0 = server
	// default). Overlapping queries share work: with the same seed, a
	// larger request on top of a cached smaller one computes only the
	// residual iterations.
	Iterations int `json:"iterations,omitempty"`
	// Adaptive, when positive, replaces the fixed iteration count with
	// variance-targeted stopping: iterations run until the relative
	// standard error of the mean drops below this target, iterations
	// capping the run (0 = the server's iteration cap). The adaptive
	// stream follows the same seed schedule as a fixed run, so adaptive
	// and fixed queries share cache entries, and a converged response is
	// a bit-identical prefix of the fixed response.
	Adaptive float64 `json:"adaptive,omitempty"`
	// Seed bases the coloring seed stream; iteration i colors with
	// Seed+i.
	Seed int64 `json:"seed,omitempty"`
	// Colors overrides the color count (0 = template size).
	Colors int `json:"colors,omitempty"`
	// TimeoutMillis bounds this query; on expiry the partial mean over
	// completed iterations is returned with partial=true (0 = server
	// default; capped at the server max).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this query (it neither reads
	// nor extends entries).
	NoCache bool `json:"no_cache,omitempty"`
	// PerIteration includes the per-iteration estimates in the response.
	PerIteration bool `json:"per_iteration,omitempty"`
}

// CountResponse is the body of a successful (possibly partial) count.
type CountResponse struct {
	Graph    string  `json:"graph"`
	Template string  `json:"template"`
	Count    float64 `json:"count"`
	StdErr   float64 `json:"std_err"`
	// Iterations is the total behind Count; CachedIterations of them
	// came from the seed-keyed cache, the rest were computed now.
	Iterations       int `json:"iterations"`
	CachedIterations int `json:"cached_iterations"`
	// Cache is "hit", "partial", "miss", or "bypass".
	Cache string `json:"cache"`
	// ShardIterations counts the iterations computed by the shard tier
	// (neither cached nor computed locally); Shards is the dispatch group
	// size and ShardRedispatches the number of group rebuilds after shard
	// loss. All zero for queries the shard tier never saw.
	ShardIterations   int `json:"shard_iterations,omitempty"`
	Shards            int `json:"shards,omitempty"`
	ShardRedispatches int `json:"shard_redispatches,omitempty"`
	// Partial marks a query cut short by its deadline or a server drain;
	// Count is then the mean over the iterations that completed and
	// Error carries the context error.
	Partial       bool      `json:"partial,omitempty"`
	Error         string    `json:"error,omitempty"`
	ElapsedMillis float64   `json:"elapsed_ms"`
	PerIteration  []float64 `json:"per_iteration,omitempty"`
}

// writeJSON writes a JSON response body. An Encode failure cannot be
// reported to the client — the status line is already on the wire, and
// the usual cause is the client hanging up mid-write — so it is logged
// and counted (fascia.serve.response_encode_errors) instead of being
// silently dropped.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		mEncodeErrors.Add(1)
		s.cfg.Logf("serve: encode %d response: %v", code, err)
	}
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	if draining {
		s.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.registry.List())
}

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		s.httpError(w, http.StatusBadRequest, "missing ?name=")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	g, err := fascia.ReadGraph(body)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "parse edge list: %v", err)
		return
	}
	info, err := s.registry.Add(name, g)
	if err != nil {
		s.httpError(w, http.StatusConflict, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

// handleCount is the query path: validate → cache fast path → admission
// control → run-slot wait → residual DP run → cache extend → respond.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	if !s.beginQuery() {
		s.rejected.Add(1)
		s.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.inflight.Done()
	start := time.Now()

	var req CountRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	g, info, ok := s.registry.Get(req.Graph)
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown graph %q", req.Graph)
		return
	}
	tr, err := fascia.ParseTemplate("query", req.Template)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "parse template: %v", err)
		return
	}
	if req.TemplateLabels != nil {
		if g.Labels == nil {
			s.httpError(w, http.StatusBadRequest, "labeled template requires a labeled graph; %q is unlabeled", req.Graph)
			return
		}
		tr, err = tr.WithLabels("query", req.TemplateLabels)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "template labels: %v", err)
			return
		}
	}
	if req.Adaptive < 0 {
		s.httpError(w, http.StatusBadRequest, "adaptive %g must be positive", req.Adaptive)
		return
	}
	iters := req.Iterations
	if iters == 0 {
		if req.Adaptive > 0 {
			// Adaptive queries default to the server cap: the variance
			// target, not DefaultIterations, decides when to stop.
			iters = s.cfg.MaxIterations
		} else {
			iters = s.cfg.DefaultIterations
		}
	}
	if iters < 1 || iters > s.cfg.MaxIterations {
		s.httpError(w, http.StatusBadRequest, "iterations %d out of range [1, %d]", iters, s.cfg.MaxIterations)
		return
	}
	if req.Colors < 0 || req.Colors > 64 || (req.Colors > 0 && req.Colors < tr.K()) {
		s.httpError(w, http.StatusBadRequest, "colors %d invalid for a %d-vertex template (want 0 or %d..64)", req.Colors, tr.K(), tr.K())
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	opt := fascia.DefaultOptions().WithSeed(req.Seed).WithMemBudgetBytes(s.cfg.MemBudgetBytes)
	opt.Colors = req.Colors
	key := CacheKey{
		GraphHash: info.Hash,
		Template:  tr.CanonicalFree(),
		Options:   opt.Fingerprint(),
		Seed:      req.Seed,
	}

	// Cache fast path: a fully covered query is answered without
	// touching the scheduler at all, so hits stay cheap under load.
	kind := HitKind(-1) // bypass
	var prior []float64
	if !req.NoCache {
		prior, kind = s.cache.Lookup(key, iters)
		recordLookup(kind, len(prior))
	}
	// Adaptive fast path: if a prefix of the cached stream already meets
	// the variance target, the bit-identical adaptive answer is that
	// prefix — truncated at the exact stop index a from-scratch adaptive
	// run would have halted at, however much more the cache holds.
	if req.Adaptive > 0 && len(prior) > 0 {
		if idx := shard.StopIndex(prior, req.Adaptive, 2); idx >= 0 {
			res := fascia.MergeIterations(prior[:idx], fascia.Result{})
			s.respondCount(w, req, key, res, Hit, nil, start, shardSummary{})
			return
		}
	}
	if kind == Hit {
		res := fascia.MergeIterations(prior, fascia.Result{})
		s.respondCount(w, req, key, res, kind, nil, start, shardSummary{})
		return
	}

	// Admission control: bounded waiting room, 429 + Retry-After beyond.
	if err := s.sched.admit(); err != nil {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.sched.retryAfter()))
		s.httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	defer s.sched.release()

	// Query context: client disconnect + server drain + per-query
	// deadline all cancel the DP run, which flushes its partial mean.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopDrainWatch := context.AfterFunc(s.drainCtx, cancel)
	defer stopDrainWatch()
	ctx, cancelTimeout := context.WithTimeout(ctx, timeout)
	defer cancelTimeout()

	// Shard tier: when registered shard workers cover this graph, the
	// residual iterations are dispatched to them first. The tier returns
	// a contiguous prefix of the same per-iteration stream the local
	// engine would compute (iteration i colors with Seed+i on every
	// engine), so whatever it completes splices in bit-identically and
	// any remainder — after shard loss exhausts the group, say — runs
	// locally from the advanced seed base.
	cached := len(prior)
	remaining := iters - cached
	var sh shardSummary
	var runErr error
	if remaining > 0 && s.pool.Covers(info.Hash) > 0 {
		if rerr := s.sched.acquireRemote(ctx); rerr == nil {
			q := shard.Query{
				GraphHash:  info.Hash,
				GraphN:     info.N,
				Template:   tr,
				Colors:     req.Colors,
				Strategy:   partStrategy(opt.Partition),
				Seed:       req.Seed + int64(len(prior)),
				Iterations: remaining,
			}
			if req.Adaptive > 0 {
				// Adaptive dispatch: the pool sends doubling waves and
				// stops (truncating at the exact stop index) once the
				// cached prefix plus its waves meet the target.
				q.Converge = &shard.ConvergeSpec{RelStdErr: req.Adaptive, MinIters: 2, Prior: prior}
			}
			out, serr := s.pool.Count(ctx, q)
			s.sched.releaseRemote()
			sh = shardSummary{iterations: len(out.PerIteration), shards: out.Shards, redispatches: out.Redispatches}
			mShardIterations.Add(int64(sh.iterations))
			prior = append(prior, out.PerIteration...)
			remaining -= sh.iterations
			switch {
			case serr == nil:
			case errors.Is(serr, context.Canceled) || errors.Is(serr, context.DeadlineExceeded):
				// The query context died mid-dispatch: flush the partial
				// mean exactly as a cancelled local run would.
				runErr = serr
				remaining = 0
			default:
				// Shard loss drained the group, or a worker refused the
				// run: keep the completed prefix, finish locally.
				mShardFallbacks.Add(1)
				s.cfg.Logf("serve: shard tier served %d of %d iterations (%v); computing %d locally",
					sh.iterations, sh.iterations+remaining, serr, remaining)
			}
		}
		// acquireRemote fails only when ctx is already done; the local
		// path below reports that as "cancelled while queued".
	}

	// An adaptive query whose stream (cache prefix + shard waves) has
	// met the variance target needs no local residual; the shard tier
	// already truncated its contribution at the exact stop index.
	if req.Adaptive > 0 && shard.StopIndex(prior, req.Adaptive, 2) >= 0 {
		remaining = 0
	}

	// Residual local run: iteration i of a run colors with Seed+i, so a
	// run based at Seed+len(prior) computes exactly the estimates the
	// cache and the shard tier did not provide, and the merge is
	// bit-identical to a from-scratch run. Adaptive queries run the
	// residual under the variance target instead of a fixed count, with
	// the prior stream seeding the convergence accumulator.
	var res fascia.Result
	localMerged := false
	if remaining > 0 && runErr == nil {
		slot, workers, err := s.sched.acquireSlot(ctx)
		if err != nil {
			s.rejected.Add(1)
			s.httpError(w, http.StatusServiceUnavailable, "cancelled while queued: %v", err)
			return
		}
		runOpt := opt.WithSeed(req.Seed + int64(len(prior))).WithThreads(workers)
		if req.Adaptive > 0 {
			res, runErr = fascia.CountConvergedResidualContext(ctx, g, tr, req.Adaptive, iters, runOpt, prior)
			localMerged = true // res already spans prior + fresh
		} else {
			res, runErr = fascia.CountContext(ctx, g, tr, runOpt.WithIterations(remaining))
		}
		s.sched.releaseSlot(slot, time.Since(start))
		if runErr != nil && !errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded) {
			s.queryErrors.Add(1)
			s.httpError(w, http.StatusInternalServerError, "count: %v", runErr)
			return
		}
		fresh := len(res.PerIteration)
		if localMerged {
			fresh -= len(prior)
		}
		mFreshIterations.Add(int64(fresh))
	}
	merged := res
	if !localMerged {
		merged = fascia.MergeIterations(prior, res)
	}
	// MergeIterations attributes all of prior to the cache, but the
	// shard tier's contribution was computed now; restore the true split
	// so CachedIterations stays what the cache actually served.
	merged.Stats.CachedIterations = cached
	if !req.NoCache && (runErr == nil || localMerged || len(res.PerIteration) == 0) {
		// Complete runs always extend the cache, and so does a query cut
		// short before any local iterations finished — the shard tier
		// only ever returns a contiguous prefix of the seed stream. A
		// cancelled fixed local run with completed iterations cannot:
		// its completed set may be a non-contiguous subset of the seed
		// range under outer parallelism, and cache entries must be exact
		// prefixes. Adaptive residual runs are exempt from that rule —
		// they execute strictly sequentially, so even a cancelled one
		// leaves an exact prefix.
		s.cache.Extend(key, merged.PerIteration)
	}
	s.respondCount(w, req, key, merged, kind, runErr, start, sh)
}

// shardSummary carries one query's shard-tier accounting to the
// response writer.
type shardSummary struct {
	iterations   int
	shards       int
	redispatches int
}

// respondCount writes the 200 response for a served query (complete or
// partial).
func (s *Server) respondCount(w http.ResponseWriter, req CountRequest, key CacheKey, res fascia.Result, kind HitKind, runErr error, start time.Time, sh shardSummary) {
	s.queries.Add(1)
	mQueries.Add(1)
	recordPeakRSS(res.Stats.PeakRSSBytes)
	resp := CountResponse{
		Graph:             req.Graph,
		Template:          key.Template,
		Count:             res.Count,
		StdErr:            res.StdErr,
		Iterations:        res.Iterations,
		CachedIterations:  res.Stats.CachedIterations,
		ShardIterations:   sh.iterations,
		Shards:            sh.shards,
		ShardRedispatches: sh.redispatches,
		Cache:             "bypass",
		ElapsedMillis:     float64(time.Since(start).Microseconds()) / 1000,
	}
	if kind >= Miss {
		resp.Cache = kind.String()
	}
	if runErr != nil {
		resp.Partial = true
		resp.Error = runErr.Error()
		s.partialResults.Add(1)
		mPartialResults.Add(1)
	}
	if req.PerIteration {
		resp.PerIteration = res.PerIteration
	}
	s.writeJSON(w, http.StatusOK, resp)
}
