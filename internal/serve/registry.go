// Package serve is the long-lived counting service behind cmd/fasciad:
// a graph registry that loads each graph once and shares its CSR across
// queries, a bounded-queue scheduler with admission control and a global
// worker budget, a seed-keyed result cache that lets repeated and
// overlapping queries reuse completed iterations, and an HTTP/JSON front
// end with graceful drain. See DESIGN.md §7 "Serving".
package serve

import (
	"fmt"
	"sort"
	"sync"

	fascia "repro"
	"repro/internal/graph"
)

// GraphInfo describes a registered graph.
type GraphInfo struct {
	// Name is the registry key clients use in queries.
	Name string `json:"name"`
	// N and M are the vertex and undirected-edge counts.
	N int   `json:"n"`
	M int64 `json:"m"`
	// Hash is the structural fingerprint of the CSR (adjacency + labels);
	// it namespaces the result cache so re-uploading a different graph
	// under the same name can never serve stale counts.
	Hash uint64 `json:"hash"`
	// Labeled reports whether the graph carries vertex labels.
	Labeled bool `json:"labeled"`
}

type graphEntry struct {
	info GraphInfo
	g    *fascia.Graph
}

// Registry holds named graphs, each loaded once and shared (read-only)
// across all concurrent queries. Graphs are immutable after Add, so
// queries never copy the CSR.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*graphEntry // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*graphEntry)}
}

// Add registers g under name. Re-adding a structurally identical graph
// (same hash) is an idempotent no-op; re-adding a different graph under
// an existing name is an error — replacement would silently invalidate
// every cached result keyed on the old hash, so clients must pick a new
// name instead.
func (r *Registry) Add(name string, g *fascia.Graph) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, fmt.Errorf("serve: graph name must be non-empty")
	}
	if g == nil || g.N() == 0 {
		return GraphInfo{}, fmt.Errorf("serve: graph %q is empty", name)
	}
	info := GraphInfo{
		Name:    name,
		N:       g.N(),
		M:       g.M(),
		Hash:    HashGraph(g),
		Labeled: g.Labels != nil,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.graphs[name]; ok {
		if old.info.Hash == info.Hash {
			return old.info, nil
		}
		return GraphInfo{}, fmt.Errorf("serve: graph %q already registered with different contents (hash %x vs %x)",
			name, old.info.Hash, info.Hash)
	}
	r.graphs[name] = &graphEntry{info: info, g: g}
	return info, nil
}

// Get returns the named graph and its info.
func (r *Registry) Get(name string) (*fascia.Graph, GraphInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.graphs[name]
	if !ok {
		return nil, GraphInfo{}, false
	}
	return e.g, e.info, true
}

// List returns all registered graphs' info, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	out := make([]GraphInfo, 0, len(r.graphs))
	//lint:maporder ok — collection order is erased by the sort.Slice below
	for _, e := range r.graphs {
		out = append(out, e.info)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HashGraph returns the structural CSR fingerprint (graph.Hash): the
// result cache keys on it so a hit can only come from the same
// adjacency structure, and the sharded tier uses it as the wire-level
// graph identity.
func HashGraph(g *fascia.Graph) uint64 {
	return graph.Hash(g)
}
