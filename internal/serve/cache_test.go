package serve

import (
	"fmt"
	"testing"
)

func k(seed int64) CacheKey {
	return CacheKey{GraphHash: 0xabc, Template: "((()()))", Options: "v1|c=0", Seed: seed}
}

func floats(n int, base float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = base + float64(i)
	}
	return out
}

func TestCacheLookupExtend(t *testing.T) {
	c := NewCache(1 << 20)

	// Miss on empty.
	got, kind := c.Lookup(k(1), 5)
	if kind != Miss || got != nil {
		t.Fatalf("empty lookup = %v, %v; want nil, Miss", got, kind)
	}

	// Extend with 6 estimates; a 4-iteration request is a full hit.
	c.Extend(k(1), floats(6, 10))
	got, kind = c.Lookup(k(1), 4)
	if kind != Hit || len(got) != 4 || got[0] != 10 || got[3] != 13 {
		t.Fatalf("lookup(4) = %v, %v; want first 4 of stream, Hit", got, kind)
	}

	// A 10-iteration request is a partial hit returning all 6.
	got, kind = c.Lookup(k(1), 10)
	if kind != PartialHit || len(got) != 6 {
		t.Fatalf("lookup(10) = %d ests, %v; want 6, PartialHit", len(got), kind)
	}

	// Returned slice must not alias cache storage.
	got[0] = -1
	again, _ := c.Lookup(k(1), 6)
	if again[0] != 10 {
		t.Fatal("Lookup returned an aliasing slice")
	}

	// Extending with a longer stream replaces; with a shorter one, the
	// longer stream is kept (both are prefixes of the same pure stream).
	c.Extend(k(1), floats(10, 10))
	if got, kind := c.Lookup(k(1), 10); kind != Hit || len(got) != 10 {
		t.Fatalf("after extend lookup(10) = %d, %v; want 10, Hit", len(got), kind)
	}
	c.Extend(k(1), floats(3, 10))
	if got, kind := c.Lookup(k(1), 10); kind != Hit || len(got) != 10 {
		t.Fatalf("shorter extend truncated the stream: %d, %v", len(got), kind)
	}

	// Different seed bases are distinct streams.
	if _, kind := c.Lookup(k(2), 3); kind != Miss {
		t.Fatalf("different seed hit the cache: %v", kind)
	}

	st := c.Stats()
	if st.Hits != 4 || st.PartialHits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v; want 4 hits, 1 partial, 2 misses", st)
	}
	if st.CachedIterationsServed != 4+6+6+10+10 {
		t.Fatalf("served = %d, want %d", st.CachedIterationsServed, 4+6+6+10+10)
	}
}

func TestCacheKeyComponents(t *testing.T) {
	c := NewCache(1 << 20)
	base := CacheKey{GraphHash: 1, Template: "t", Options: "o", Seed: 0}
	c.Extend(base, floats(4, 0))
	for _, variant := range []CacheKey{
		{GraphHash: 2, Template: "t", Options: "o", Seed: 0},
		{GraphHash: 1, Template: "u", Options: "o", Seed: 0},
		{GraphHash: 1, Template: "t", Options: "o2", Seed: 0},
		{GraphHash: 1, Template: "t", Options: "o", Seed: 7},
	} {
		if _, kind := c.Lookup(variant, 2); kind != Miss {
			t.Errorf("key variant %+v unexpectedly found cached data (%v)", variant, kind)
		}
	}
	if _, kind := c.Lookup(base, 2); kind != Hit {
		t.Fatalf("base key lost: %v", kind)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Budget fits ~3 entries of 100 estimates each (800B + overhead).
	per := entryBytes(&cacheEntry{key: k(0), perIter: floats(100, 0)})
	c := NewCache(3 * per)
	for i := int64(0); i < 3; i++ {
		c.Extend(k(i), floats(100, 0))
	}
	if st := c.Stats(); st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("stats after 3 inserts: %+v", st)
	}
	// Touch seed 0 so it is most recent, then insert a fourth entry:
	// seed 1 (the LRU) must go.
	c.Lookup(k(0), 100)
	c.Extend(k(3), floats(100, 0))
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if _, kind := c.Lookup(k(1), 1); kind != Miss {
		t.Fatal("LRU entry (seed 1) survived eviction")
	}
	for _, s := range []int64{0, 2, 3} {
		if _, kind := c.Lookup(k(s), 1); kind == Miss {
			t.Fatalf("recently used seed %d was evicted", s)
		}
	}
	if st := c.Stats(); st.Bytes > st.MaxBytes {
		t.Fatalf("over budget: %d > %d", st.Bytes, st.MaxBytes)
	}
}

func TestCacheOversizedEntryNotCached(t *testing.T) {
	c := NewCache(entryOverheadBytes + 80) // fits ~10 estimates
	c.Extend(k(1), floats(10000, 0))
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry cached: %+v", st)
	}
	// A fitting entry still works.
	c.Extend(CacheKey{Seed: 2}, floats(1, 0))
	if _, kind := c.Lookup(CacheKey{Seed: 2}, 1); kind != Hit {
		t.Fatal("small entry not cached")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1 << 20)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 200; i++ {
				seed := int64(i % 5)
				c.Extend(k(seed), floats(1+i%7, float64(seed)*100))
				got, kind := c.Lookup(k(seed), 3)
				if kind != Miss {
					for j, x := range got {
						if want := float64(seed)*100 + float64(j); x != want {
							err = fmt.Errorf("worker %d: stream %d[%d] = %v, want %v", w, seed, j, x, want)
						}
					}
				}
			}
			done <- err
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
