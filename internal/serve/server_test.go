package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	fascia "repro"
	"repro/internal/shard"
)

// checkGoroutines fails the test if the goroutine count has not settled
// back to (roughly) its starting value — the lifecycle tests run it
// after drains and cancelled queries to prove worker pools exit.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// newTestServer boots a Server with the test graph "g" pre-registered
// and returns it with an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if _, err := s.Registry().Add("g", fascia.ErdosRenyi(120, 480, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, client *http.Client, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, buf.Bytes()
}

func countQuery(t *testing.T, ts *httptest.Server, req CountRequest) (int, CountResponse, http.Header) {
	t.Helper()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/count", req)
	var out CountResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decode %q: %v", body, err)
		}
	}
	return resp.StatusCode, out, resp.Header
}

func TestServerEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	client := ts.Client()

	// Upload a second graph over HTTP and list both.
	var edge bytes.Buffer
	if err := fascia.WriteGraph(&edge, fascia.ErdosRenyi(60, 180, 2)); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(ts.URL+"/v1/graphs?name=up", "text/plain", bytes.NewReader(edge.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	resp, err = client.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 2 || infos[0].Name != "g" || infos[1].Name != "up" {
		t.Fatalf("graphs = %+v", infos)
	}

	// A served count must agree bit-for-bit with the library.
	req := CountRequest{Graph: "g", Template: "0-1 1-2 2-3", Iterations: 12, Seed: 5, PerIteration: true}
	code, out, _ := countQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("count status = %d", code)
	}
	g, _, _ := s.Registry().Get("g")
	tr, _ := fascia.ParseTemplate("t", req.Template)
	want, err := fascia.Count(g, tr, fascia.DefaultOptions().WithIterations(12).WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Count != want.Count || out.Iterations != 12 || out.Cache != "miss" || out.Partial {
		t.Fatalf("served %+v, library count %v", out, want.Count)
	}
	for i, x := range out.PerIteration {
		if x != want.PerIteration[i] {
			t.Fatalf("per-iteration %d: served %v, library %v", i, x, want.PerIteration[i])
		}
	}

	// Error paths.
	for _, bad := range []struct {
		req  CountRequest
		code int
	}{
		{CountRequest{Graph: "nope", Template: "0-1"}, http.StatusNotFound},
		{CountRequest{Graph: "g", Template: "0-0"}, http.StatusBadRequest},
		{CountRequest{Graph: "g", Template: "0-1 2-3"}, http.StatusBadRequest},
		{CountRequest{Graph: "g", Template: "0-1", Iterations: -4}, http.StatusBadRequest},
		{CountRequest{Graph: "g", Template: "0-1 1-2", Colors: 2}, http.StatusBadRequest},
		{CountRequest{Graph: "g", Template: "0-1", TemplateLabels: []int32{1, 2}}, http.StatusBadRequest},
	} {
		if code, _, _ := countQuery(t, ts, bad.req); code != bad.code {
			t.Errorf("%+v -> status %d, want %d", bad.req, code, bad.code)
		}
	}

	// Health and stats.
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	st := s.Stats()
	if st.Queries < 1 || st.Graphs != 2 || st.Cache.Misses < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServerCacheHitAndOverlap is the seed-keyed cache acceptance test:
// a repeated query is a pure hit (no scheduler involvement), and an
// overlapping larger query computes only the residual iterations yet
// returns estimates bit-identical to a from-scratch run.
func TestServerCacheHitAndOverlap(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	base := CountRequest{Graph: "g", Template: "0-1 1-2 1-3", Seed: 11, PerIteration: true}

	prime := base
	prime.Iterations = 6
	code, miss, _ := countQuery(t, ts, prime)
	if code != http.StatusOK || miss.Cache != "miss" || miss.CachedIterations != 0 {
		t.Fatalf("prime: %d %+v", code, miss)
	}

	// Exact repeat: full hit, zero fresh iterations, identical numbers.
	code, hit, _ := countQuery(t, ts, prime)
	if code != http.StatusOK || hit.Cache != "hit" || hit.CachedIterations != 6 || hit.Iterations != 6 {
		t.Fatalf("repeat: %d %+v", code, hit)
	}
	if hit.Count != miss.Count || hit.StdErr != miss.StdErr {
		t.Fatalf("cache hit changed the answer: %v vs %v", hit.Count, miss.Count)
	}
	if st := s.Stats(); st.Cache.Hits != 1 {
		t.Fatalf("hit counter = %d, want 1 (stats %+v)", st.Cache.Hits, st.Cache)
	}

	// A smaller query with the same seed is also fully covered.
	small := base
	small.Iterations = 3
	if code, out, _ := countQuery(t, ts, small); code != http.StatusOK || out.Cache != "hit" || out.Iterations != 3 {
		t.Fatalf("prefix query: %d %+v", code, out)
	}

	// Overlap: 10 iterations on top of the cached 6 runs only 4 more.
	over := base
	over.Iterations = 10
	code, part, _ := countQuery(t, ts, over)
	if code != http.StatusOK || part.Cache != "partial" || part.CachedIterations != 6 || part.Iterations != 10 {
		t.Fatalf("overlap: %d %+v", code, part)
	}
	if st := s.Stats(); st.Cache.PartialHits != 1 {
		t.Fatalf("partial-hit counter = %d, want 1", st.Cache.PartialHits)
	}

	// The merged stream must equal a from-scratch 10-iteration run.
	g, _, _ := s.Registry().Get("g")
	tr, _ := fascia.ParseTemplate("t", base.Template)
	want, err := fascia.Count(g, tr, fascia.DefaultOptions().WithIterations(10).WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(part.PerIteration) != 10 {
		t.Fatalf("merged stream has %d estimates", len(part.PerIteration))
	}
	for i, x := range part.PerIteration {
		if x != want.PerIteration[i] {
			t.Fatalf("merged iteration %d: %v, want %v (seed %d)", i, x, want.PerIteration[i], base.Seed+int64(i))
		}
	}
	if part.Count != want.Count {
		t.Fatalf("merged mean %v, want %v", part.Count, want.Count)
	}

	// The now-extended entry fully covers the larger range.
	if code, out, _ := countQuery(t, ts, over); code != http.StatusOK || out.Cache != "hit" || out.CachedIterations != 10 {
		t.Fatalf("post-extend repeat: %d %+v", code, out)
	}

	// no_cache bypasses both read and write paths.
	bypass := prime
	bypass.NoCache = true
	if code, out, _ := countQuery(t, ts, bypass); code != http.StatusOK || out.Cache != "bypass" || out.CachedIterations != 0 {
		t.Fatalf("bypass: %d %+v", code, out)
	}
}

// TestServerAdaptive covers the variance-targeted stopping rule end to
// end: an adaptive query stops at exactly the shard.StopIndex of the
// fixed-run seed stream (bit-identical prefix), repeats are pure cache
// hits served from the shared (seed-keyed, adaptivity-blind) entry,
// fixed queries reuse the same entry, and a tighter tolerance resumes
// from the cached prefix instead of starting over.
func TestServerAdaptive(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const seed, cap1, rel1, rel2 = 11, 400, 0.02, 0.01

	// Fixed-run reference stream straight from the library.
	g, _, _ := s.Registry().Get("g")
	tr, _ := fascia.ParseTemplate("t", "0-1 1-2 1-3")
	want, err := fascia.Count(g, tr, fascia.DefaultOptions().WithIterations(cap1).WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	stop1 := shard.StopIndex(want.PerIteration, rel1, 2)
	stop2 := shard.StopIndex(want.PerIteration, rel2, 2)
	if stop1 < 2 || stop2 <= stop1 {
		t.Fatalf("degenerate workload: stops %d, %d", stop1, stop2)
	}

	base := CountRequest{Graph: "g", Template: "0-1 1-2 1-3", Seed: seed, Iterations: cap1, PerIteration: true}

	// Adaptive miss: runs until converged, returns the exact prefix.
	ad := base
	ad.Adaptive = rel1
	code, out, _ := countQuery(t, ts, ad)
	if code != http.StatusOK || out.Cache != "miss" {
		t.Fatalf("adaptive miss: %d %+v", code, out)
	}
	if out.Iterations != stop1 || len(out.PerIteration) != stop1 {
		t.Fatalf("adaptive run stopped at %d iterations, want %d", out.Iterations, stop1)
	}
	for i, x := range out.PerIteration {
		if x != want.PerIteration[i] {
			t.Fatalf("adaptive iteration %d: %v != fixed run %v", i, x, want.PerIteration[i])
		}
	}

	// Repeat: served from cache without recounting.
	if code, hit, _ := countQuery(t, ts, ad); code != http.StatusOK || hit.Cache != "hit" || hit.Iterations != stop1 {
		t.Fatalf("adaptive repeat: %d %+v", code, hit)
	}

	// The cache entry is shared with fixed queries at the same seed.
	fixed := base
	fixed.Iterations = stop1 - 1
	if code, out, _ := countQuery(t, ts, fixed); code != http.StatusOK || out.Cache != "hit" {
		t.Fatalf("fixed query on adaptive entry: %d %+v", code, out)
	}

	// Tighter tolerance: resumes from the cached prefix (partial, not
	// miss) and lands on the tighter stopping point, still bit-identical.
	tight := base
	tight.Adaptive = rel2
	code, out, _ = countQuery(t, ts, tight)
	if code != http.StatusOK || out.Cache != "partial" || out.CachedIterations != stop1 {
		t.Fatalf("tighter adaptive: %d %+v", code, out)
	}
	if out.Iterations != stop2 || len(out.PerIteration) != stop2 {
		t.Fatalf("tighter adaptive stopped at %d iterations, want %d", out.Iterations, stop2)
	}
	for i, x := range out.PerIteration {
		if x != want.PerIteration[i] {
			t.Fatalf("tighter adaptive iteration %d: %v != fixed run %v", i, x, want.PerIteration[i])
		}
	}

	// Validation: a negative tolerance is rejected.
	bad := base
	bad.Adaptive = -0.1
	if code, _, _ := countQuery(t, ts, bad); code != http.StatusBadRequest {
		t.Fatalf("negative adaptive tolerance accepted: %d", code)
	}
}

// slowRequest is a query sized to hold a run slot long enough for the
// test to observe it mid-flight (cancelled by deadline/drain, never run
// to completion).
func slowRequest() CountRequest {
	return CountRequest{Graph: "slow", Template: "0-1 1-2 2-3 3-4 4-5 5-6 6-7", Iterations: 100000, Seed: 3, TimeoutMillis: 60000}
}

func addSlowGraph(t *testing.T, s *Server) {
	t.Helper()
	if _, err := s.Registry().Add("slow", fascia.ErdosRenyi(1500, 15000, 2)); err != nil {
		t.Fatal(err)
	}
}

// waitRunning polls until n queries hold run slots.
func waitRunning(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Running < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d running queries: %+v", n, s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerQueueFull429 fills the single run slot and the zero-depth
// queue, then checks admission control rejects with 429 + Retry-After.
func TestServerQueueFull429(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{WorkerBudget: 1, MaxConcurrent: 1, QueueDepth: -1})
	addSlowGraph(t, s)

	// Prime a small cached query while the slot is free; it is re-issued
	// later to prove hits bypass admission control.
	cached := CountRequest{Graph: "g", Template: "0-1 1-2", Iterations: 4, Seed: 1}
	if code, out, _ := countQuery(t, ts, cached); code != http.StatusOK || out.Cache != "miss" {
		t.Fatalf("prime: %d %+v", code, out)
	}

	type slowResult struct {
		code int
		out  CountResponse
	}
	done := make(chan slowResult, 1)
	go func() {
		code, out, _ := countQuery(t, ts, slowRequest())
		done <- slowResult{code, out}
	}()
	waitRunning(t, s, 1)

	req := slowRequest()
	req.Seed = 99 // distinct stream: must not be served from cache
	code, _, hdr := countQuery(t, ts, req)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive estimate", ra)
	}
	if st := s.Stats(); st.Rejected < 1 {
		t.Fatalf("rejected counter = %d", st.Rejected)
	}

	// Cache hits bypass admission entirely: with the slot held and the
	// queue full, the primed query is still answered from cache.
	if code, out, _ := countQuery(t, ts, cached); code != http.StatusOK || out.Cache != "hit" {
		t.Fatalf("cached query during saturation: %d %+v (want 200 hit)", code, out)
	}

	// Drain to cancel the in-flight query; it must flush a partial mean.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-done
	if res.code != http.StatusOK || !res.out.Partial {
		t.Fatalf("cancelled slow query: %d %+v", res.code, res.out)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()
	checkGoroutines(t, before)
}

// TestServerDeadlinePartial checks a query cut short by its own
// deadline returns 200 with the partial mean over completed iterations
// and ctx error semantics.
func TestServerDeadlinePartial(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{})
	addSlowGraph(t, s)

	req := slowRequest()
	req.TimeoutMillis = 250
	req.NoCache = true
	start := time.Now()
	code, out, _ := countQuery(t, ts, req)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !out.Partial || !strings.Contains(out.Error, "deadline") {
		t.Fatalf("want partial result with deadline error, got %+v", out)
	}
	if out.Iterations >= req.Iterations {
		t.Fatalf("all %d iterations completed under a %dms deadline", out.Iterations, req.TimeoutMillis)
	}
	if out.Iterations > 0 && out.Count <= 0 {
		t.Fatalf("partial mean = %v over %d iterations", out.Count, out.Iterations)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline-bounded query took %v", elapsed)
	}
	if st := s.Stats(); st.PartialResults != 1 {
		t.Fatalf("partial counter = %d", st.PartialResults)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()
	checkGoroutines(t, before)
}

// TestServerDrain checks the graceful-drain contract: in-flight queries
// are cancelled and flush partial means, new queries get 503, health
// flips, drain is idempotent, and no goroutines leak.
func TestServerDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{WorkerBudget: 2, MaxConcurrent: 2})
	addSlowGraph(t, s)

	type result struct {
		code int
		out  CountResponse
	}
	done := make(chan result, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			req := slowRequest()
			req.Seed = int64(100 + i)
			code, out, _ := countQuery(t, ts, req)
			done <- result{code, out}
		}()
	}
	waitRunning(t, s, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("drain took %v", d)
	}
	for i := 0; i < 2; i++ {
		res := <-done
		if res.code != http.StatusOK {
			t.Fatalf("in-flight query got status %d during drain", res.code)
		}
		if !res.out.Partial || res.out.Error == "" {
			t.Fatalf("in-flight query not flushed as partial: %+v", res.out)
		}
		if res.out.Iterations > 0 && res.out.Count <= 0 {
			t.Fatalf("flushed mean %v over %d iterations", res.out.Count, res.out.Iterations)
		}
	}

	// Post-drain: no admission, health 503, stats report draining.
	if code, _, _ := countQuery(t, ts, CountRequest{Graph: "g", Template: "0-1", Iterations: 1}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query status = %d, want 503", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz = %d, want 503", resp.StatusCode)
	}
	if !s.Stats().Draining {
		t.Fatal("stats do not report draining")
	}
	// Idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()
	checkGoroutines(t, before)
}

// TestServerConcurrentCacheHits hammers one cached query from many
// goroutines: every response must be a full hit with identical numbers,
// and the scheduler must never be touched (hits bypass admission).
func TestServerConcurrentCacheHits(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{WorkerBudget: 1, MaxConcurrent: 1, QueueDepth: -1})

	req := CountRequest{Graph: "g", Template: "0-1 1-2 2-3", Iterations: 8, Seed: 21}
	code, primed, _ := countQuery(t, ts, req)
	if code != http.StatusOK || primed.Cache != "miss" {
		t.Fatalf("prime: %d %+v", code, primed)
	}

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, out, _ := countQuery(t, ts, req)
			switch {
			case code != http.StatusOK:
				errs <- fmt.Errorf("status %d", code)
			case out.Cache != "hit":
				errs <- fmt.Errorf("cache = %q, want hit", out.Cache)
			case out.Count != primed.Count || out.StdErr != primed.StdErr:
				errs <- fmt.Errorf("hit diverged: %v vs %v", out.Count, primed.Count)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Cache.Hits < clients {
		t.Fatalf("cache hits = %d, want >= %d", st.Cache.Hits, clients)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()
	checkGoroutines(t, before)
}
