package serve

import (
	"testing"

	fascia "repro"
)

func TestRegistryAddGet(t *testing.T) {
	r := NewRegistry()
	g := fascia.ErdosRenyi(50, 120, 1)
	info, err := r.Add("web", g)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "web" || info.N != g.N() || info.M != g.M() || info.Hash == 0 {
		t.Fatalf("info = %+v", info)
	}
	got, gotInfo, ok := r.Get("web")
	if !ok || got != g || gotInfo.Hash != info.Hash {
		t.Fatalf("Get = %v, %+v, %v", got, gotInfo, ok)
	}
	if _, _, ok := r.Get("nope"); ok {
		t.Fatal("Get of unknown name succeeded")
	}

	// Re-adding the identical graph is idempotent.
	if _, err := r.Add("web", fascia.ErdosRenyi(50, 120, 1)); err != nil {
		t.Fatalf("idempotent re-add: %v", err)
	}
	// Re-adding a different graph under the same name is refused: it
	// would silently invalidate cache entries keyed on the old hash.
	if _, err := r.Add("web", fascia.ErdosRenyi(50, 120, 2)); err == nil {
		t.Fatal("conflicting re-add accepted")
	}
	// Empty names and empty graphs are refused.
	if _, err := r.Add("", g); err == nil {
		t.Fatal("empty name accepted")
	}

	list := r.List()
	if len(list) != 1 || list[0].Name != "web" {
		t.Fatalf("List = %+v", list)
	}
}

func TestHashGraphDistinguishes(t *testing.T) {
	a := fascia.ErdosRenyi(40, 100, 1)
	b := fascia.ErdosRenyi(40, 100, 2)  // different edges
	c := fascia.ErdosRenyi(41, 100, 1)  // different size
	a2 := fascia.ErdosRenyi(40, 100, 1) // identical rebuild
	al := fascia.AssignRandomLabels(fascia.ErdosRenyi(40, 100, 1), 3, 9)

	ha := HashGraph(a)
	if HashGraph(a2) != ha {
		t.Fatal("identical graphs hash differently")
	}
	for name, g := range map[string]*fascia.Graph{"edges": b, "size": c, "labels": al} {
		if HashGraph(g) == ha {
			t.Errorf("%s variant collides with base hash", name)
		}
	}
	// Label values matter, not just presence.
	l1 := fascia.AssignRandomLabels(fascia.ErdosRenyi(40, 100, 1), 3, 10)
	if HashGraph(al) == HashGraph(l1) {
		t.Error("different labelings collide")
	}
}
