package serve

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	fascia "repro"
	"repro/internal/shard"
)

// startShardWorker boots an in-process shard worker serving g on a
// loopback listener and returns its address.
func startShardWorker(t *testing.T, g *fascia.Graph) string {
	t.Helper()
	w := shard.NewWorker(shard.WorkerOptions{})
	w.AddGraph(g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	t.Cleanup(w.Close)
	return ln.Addr().String()
}

// registerShard announces addr (serving g) to the server over HTTP.
func registerShard(t *testing.T, ts *httptest.Server, addr string, g *fascia.Graph) {
	t.Helper()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/shards", ShardRegistration{
		Addr:   addr,
		Graphs: []string{GraphHashHex(HashGraph(g))},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register shard %s: %d %s", addr, resp.StatusCode, body)
	}
}

// TestServerShardRouting proves the HTTP query path routes through the
// shard tier when workers cover the graph — and that the sharded result
// is bit-identical to the single-process engine, cache layer included.
func TestServerShardRouting(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	g := fascia.ErdosRenyi(120, 480, 1) // same build as newTestServer's "g"
	for i := 0; i < 2; i++ {
		registerShard(t, ts, startShardWorker(t, g), g)
	}
	if got := s.Stats().Shards; got != 2 {
		t.Fatalf("Shards = %d, want 2", got)
	}

	const iters, seed = 12, int64(7)
	tr, err := fascia.ParseTemplate("t", "0-1 1-2 1-3")
	if err != nil {
		t.Fatal(err)
	}
	want, err := fascia.Count(g, tr, fascia.DefaultOptions().WithSeed(seed).WithIterations(iters))
	if err != nil {
		t.Fatal(err)
	}

	code, out, _ := countQuery(t, ts, CountRequest{
		Graph: "g", Template: "0-1 1-2 1-3", Iterations: iters, Seed: seed, PerIteration: true,
	})
	if code != http.StatusOK {
		t.Fatalf("count = %d", code)
	}
	if out.ShardIterations != iters || out.Shards != 2 {
		t.Fatalf("shard accounting = %d iterations over %d shards, want %d over 2", out.ShardIterations, out.Shards, iters)
	}
	if out.CachedIterations != 0 {
		t.Fatalf("CachedIterations = %d, want 0 (shard iterations are fresh, not cached)", out.CachedIterations)
	}
	if len(out.PerIteration) != iters {
		t.Fatalf("per-iteration length %d, want %d", len(out.PerIteration), iters)
	}
	for i, est := range out.PerIteration {
		if est != want.PerIteration[i] {
			t.Fatalf("iteration %d: sharded %v != local %v", i, est, want.PerIteration[i])
		}
	}
	if out.Count != want.Count {
		t.Fatalf("sharded count %v != local %v", out.Count, want.Count)
	}

	// The sharded stream extended the cache: the same query again is a
	// pure hit and never touches the tier.
	code, out2, _ := countQuery(t, ts, CountRequest{
		Graph: "g", Template: "0-1 1-2 1-3", Iterations: iters, Seed: seed,
	})
	if code != http.StatusOK || out2.Cache != "hit" || out2.CachedIterations != iters {
		t.Fatalf("re-query = %d cache=%q cached=%d, want 200 hit %d", code, out2.Cache, out2.CachedIterations, iters)
	}
	if out2.ShardIterations != 0 {
		t.Fatalf("cache hit reported %d shard iterations", out2.ShardIterations)
	}

	// Overlap: doubling the iterations serves the cached prefix locally
	// and only the residual through the tier, still bit-identical.
	want2, err := fascia.Count(g, tr, fascia.DefaultOptions().WithSeed(seed).WithIterations(2*iters))
	if err != nil {
		t.Fatal(err)
	}
	code, out3, _ := countQuery(t, ts, CountRequest{
		Graph: "g", Template: "0-1 1-2 1-3", Iterations: 2 * iters, Seed: seed, PerIteration: true,
	})
	if code != http.StatusOK {
		t.Fatalf("overlap count = %d", code)
	}
	if out3.CachedIterations != iters || out3.ShardIterations != iters {
		t.Fatalf("overlap split = %d cached + %d sharded, want %d + %d",
			out3.CachedIterations, out3.ShardIterations, iters, iters)
	}
	for i, est := range out3.PerIteration {
		if est != want2.PerIteration[i] {
			t.Fatalf("overlap iteration %d: %v != %v", i, est, want2.PerIteration[i])
		}
	}
}

// TestServerShardFallback proves a query survives the whole shard tier
// being unreachable: the pool excludes the dead shard, runs out of
// candidates, and the query falls back to the local engine with the
// same bit-identical result.
func TestServerShardFallback(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	g := fascia.ErdosRenyi(120, 480, 1)

	// A shard address that refuses connections: bind, then close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	registerShard(t, ts, dead, g)

	want, err := fascia.Count(g, mustTemplate(t, "0-1 0-2"), fascia.DefaultOptions().WithSeed(3).WithIterations(8))
	if err != nil {
		t.Fatal(err)
	}
	code, out, _ := countQuery(t, ts, CountRequest{
		Graph: "g", Template: "0-1 0-2", Iterations: 8, Seed: 3, PerIteration: true,
	})
	if code != http.StatusOK {
		t.Fatalf("count with dead shard = %d", code)
	}
	if out.Partial {
		t.Fatalf("fallback run reported partial: %+v", out)
	}
	if out.ShardIterations != 0 {
		t.Fatalf("dead shard served %d iterations", out.ShardIterations)
	}
	for i, est := range out.PerIteration {
		if est != want.PerIteration[i] {
			t.Fatalf("fallback iteration %d: %v != %v", i, est, want.PerIteration[i])
		}
	}
	if st := s.Stats(); st.ShardFailures < 1 {
		t.Fatalf("ShardFailures = %d, want >= 1", st.ShardFailures)
	}
}

// TestServerShardEndpoints exercises the registration API surface:
// hex-hash round-trip, listing, dedup by address, removal, and the
// error paths.
func TestServerShardEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := ts.Client()

	reg := ShardRegistration{Addr: "127.0.0.1:9999", Graphs: []string{"00deadbeef015ca1e"[:16]}}
	if resp, body := postJSON(t, client, ts.URL+"/v1/shards", reg); resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	// Re-registering the same address refreshes rather than duplicates.
	if resp, _ := postJSON(t, client, ts.URL+"/v1/shards", reg); resp.StatusCode != http.StatusOK {
		t.Fatal("re-register failed")
	}

	resp, err := client.Get(ts.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	var list []ShardListEntry
	decodeBody(t, resp, &list)
	if len(list) != 1 || list[0].Addr != reg.Addr || len(list[0].Graphs) != 1 || list[0].Graphs[0] != reg.Graphs[0] {
		t.Fatalf("list = %+v, want the one registration back", list)
	}

	// Bad hex and missing addr are rejected.
	if resp, _ := postJSON(t, client, ts.URL+"/v1/shards", ShardRegistration{Addr: "x:1", Graphs: []string{"zzzz"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad hex accepted: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, client, ts.URL+"/v1/shards", ShardRegistration{Graphs: []string{"ff"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing addr accepted: %d", resp.StatusCode)
	}

	del := func(addr string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/shards?addr="+addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(reg.Addr); code != http.StatusOK {
		t.Fatalf("delete = %d", code)
	}
	if code := del(reg.Addr); code != http.StatusNotFound {
		t.Fatalf("double delete = %d, want 404", code)
	}
}

func mustTemplate(t *testing.T, spec string) *fascia.Template {
	t.Helper()
	tr, err := fascia.ParseTemplate("t", spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
