package serve

import "expvar"

// Process-wide expvar counters under the fascia.serve.* namespace,
// published once at init (expvar registration is global). Every Server
// in the process folds into them; per-Server numbers are available from
// Server.Stats(). fasciad exposes these at /debug/vars alongside the
// fascia.* run gauges.
var (
	mQueries         = expvar.NewInt("fascia.serve.queries")
	mCacheHits       = expvar.NewInt("fascia.serve.cache_hits")
	mCachePartials   = expvar.NewInt("fascia.serve.cache_partial_hits")
	mCacheMisses     = expvar.NewInt("fascia.serve.cache_misses")
	mCachedIterInt   = expvar.NewInt("fascia.serve.cached_iterations_served")
	mFreshIterations = expvar.NewInt("fascia.serve.fresh_iterations")
	mRejected        = expvar.NewInt("fascia.serve.rejected_queries")
	mPartialResults  = expvar.NewInt("fascia.serve.partial_results")
	mQueryErrors     = expvar.NewInt("fascia.serve.query_errors")
	mDrains          = expvar.NewInt("fascia.serve.drains")
	mEncodeErrors    = expvar.NewInt("fascia.serve.response_encode_errors")
	// mShardIterations counts iterations served by the shard tier;
	// mShardFallbacks counts queries that fell back to a local run after
	// the tier could not finish (shard loss exhausted the group, or a
	// worker refused the dispatch).
	mShardIterations = expvar.NewInt("fascia.serve.shard_iterations")
	mShardFallbacks  = expvar.NewInt("fascia.serve.shard_fallbacks")
	// mPeakRSSBytes is a high-water gauge of the process resident-set
	// size as sampled by query runs (RunStats.PeakRSSBytes) — the figure
	// a -mem budget bounds, watchable at /debug/vars during soak tests.
	mPeakRSSBytes = expvar.NewInt("fascia.serve.peak_rss_bytes")
)

// recordPeakRSS raises the peak-RSS high-water gauge. Benign race: two
// concurrent raises can lose the smaller value, which the next sample
// restores; the gauge is monotone enough for observability.
func recordPeakRSS(b int64) {
	if b > mPeakRSSBytes.Value() {
		mPeakRSSBytes.Set(b)
	}
}

// recordLookup folds a cache-lookup outcome into the global gauges.
func recordLookup(kind HitKind, cached int) {
	switch kind {
	case Hit:
		mCacheHits.Add(1)
	case PartialHit:
		mCachePartials.Add(1)
	case Miss:
		mCacheMisses.Add(1)
	}
	if cached > 0 {
		mCachedIterInt.Add(int64(cached))
	}
}
