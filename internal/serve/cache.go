package serve

import (
	"container/list"
	"sync"
)

// CacheKey identifies one stream of per-iteration estimates: iteration i
// of a run over (graph, template, options) with base seed s always
// colors with seed s+i and produces a bit-identical estimate, so the
// stream starting at (GraphHash, Template, Options, Seed) is a pure
// function of the key. Overlapping queries share a key when they share a
// base seed: a 100-iteration query on top of a cached 60 reuses the
// prefix and computes only the 40-iteration residual (with base seed
// Seed+60), then extends the entry.
type CacheKey struct {
	// GraphHash is HashGraph of the registered graph.
	GraphHash uint64
	// Template is the template's canonical free encoding
	// (tmpl.CanonicalFree), so isomorphic respellings of the same tree
	// share an entry; labels participate in the encoding.
	Template string
	// Options is the Options.Fingerprint of the result-relevant knobs.
	Options string
	// Seed is the base coloring seed of the stream.
	Seed int64
}

// HitKind classifies a cache lookup.
type HitKind int

const (
	// Miss: no cached estimates for the key.
	Miss HitKind = iota
	// PartialHit: a prefix of the requested iterations was cached; only
	// the residual needs computing.
	PartialHit
	// Hit: the request is fully covered by cached estimates.
	Hit
)

func (h HitKind) String() string {
	switch h {
	case Miss:
		return "miss"
	case PartialHit:
		return "partial"
	case Hit:
		return "hit"
	default:
		return "unknown"
	}
}

// cacheEntry is one LRU-resident estimate stream.
type cacheEntry struct {
	key     CacheKey
	perIter []float64
}

// entryOverheadBytes approximates the fixed per-entry footprint (key
// strings, map slot, list element) charged against the byte budget on
// top of the 8 bytes per cached estimate.
const entryOverheadBytes = 256

func entryBytes(e *cacheEntry) int64 {
	return int64(len(e.perIter))*8 + int64(len(e.key.Template)) + int64(len(e.key.Options)) + entryOverheadBytes
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits, PartialHits, Misses count Lookup outcomes.
	Hits        int64 `json:"hits"`
	PartialHits int64 `json:"partial_hits"`
	Misses      int64 `json:"misses"`
	// CachedIterationsServed sums the per-iteration estimates returned
	// from cache across all lookups (the work the cache saved).
	CachedIterationsServed int64 `json:"cached_iterations_served"`
	// Evictions counts entries dropped by the byte budget.
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe current residency.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the configured budget.
	MaxBytes int64 `json:"max_bytes"`
}

// Cache is the seed-keyed result cache: an LRU over estimate streams,
// bounded by an approximate byte budget. All methods are safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64                      // immutable after NewCache
	bytes    int64                      // guarded by mu
	entries  map[CacheKey]*list.Element // guarded by mu; value: *cacheEntry
	lru      list.List                  // guarded by mu; front = most recently used

	hits, partials, misses, served, evictions int64 // guarded by mu
}

// DefaultCacheBytes is the byte budget used when NewCache is given a
// non-positive one.
const DefaultCacheBytes = 64 << 20

// NewCache returns a cache bounded to maxBytes (<= 0 selects
// DefaultCacheBytes).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &Cache{maxBytes: maxBytes, entries: make(map[CacheKey]*list.Element)}
	c.lru.Init()
	return c
}

// Lookup returns up to n cached per-iteration estimates for the stream
// at k (a copy, never aliasing cache storage) and classifies the
// outcome. A Hit covers all n requested iterations; a PartialHit covers
// a non-empty prefix, leaving the caller to compute the residual with
// base seed k.Seed + len(prefix) and Extend the entry afterwards.
func (c *Cache) Lookup(k CacheKey, n int) ([]float64, HitKind) {
	if n <= 0 {
		return nil, Miss
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, Miss
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	m := len(e.perIter)
	if m >= n {
		c.hits++
		c.served += int64(n)
		return append([]float64(nil), e.perIter[:n]...), Hit
	}
	c.partials++
	c.served += int64(m)
	return append([]float64(nil), e.perIter...), PartialHit
}

// Extend installs perIter as the stream for k, keeping whichever of the
// existing and new streams is longer (both are prefixes of the same
// deterministic stream, so the longer strictly subsumes the shorter).
// perIter is copied. Inserting may evict least-recently-used entries to
// respect the byte budget; an entry larger than the whole budget is not
// cached.
func (c *Cache) Extend(k CacheKey, perIter []float64) {
	if len(perIter) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*cacheEntry)
		if len(perIter) > len(e.perIter) {
			c.bytes -= entryBytes(e)
			e.perIter = append([]float64(nil), perIter...)
			c.bytes += entryBytes(e)
		}
		c.lru.MoveToFront(el)
		c.evict()
		return
	}
	e := &cacheEntry{key: k, perIter: append([]float64(nil), perIter...)}
	if entryBytes(e) > c.maxBytes {
		return // would evict everything else and still not fit
	}
	c.entries[k] = c.lru.PushFront(e)
	c.bytes += entryBytes(e)
	c.evict()
}

// evict drops LRU entries until the budget holds. Caller holds c.mu.
func (c *Cache) evict() {
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= entryBytes(e)
		c.evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:                   c.hits,
		PartialHits:            c.partials,
		Misses:                 c.misses,
		CachedIterationsServed: c.served,
		Evictions:              c.evictions,
		Entries:                len(c.entries),
		Bytes:                  c.bytes,
		MaxBytes:               c.maxBytes,
	}
}
