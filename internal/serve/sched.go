package serve

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by admit when the bounded wait queue is at
// capacity; HTTP maps it to 429 with a Retry-After estimate.
var ErrQueueFull = errors.New("serve: query queue full")

// scheduler owns the service's execution resources: a bounded admission
// queue in front of a fixed set of run slots, and a global worker budget
// carved across the slots so concurrent queries can never oversubscribe
// the machine. Admission is non-blocking (full queue → ErrQueueFull,
// load-shedding at the door); admitted queries wait — cancellably — for
// a run slot.
type scheduler struct {
	// queue holds one token per admitted-but-not-finished query:
	// capacity = slots + queueDepth.
	queue chan struct{}
	// slots holds the run-slot indices; acquiring one grants the
	// pre-carved worker budget budgets[slot].
	slots chan int
	// budgets[i] is the worker count granted by slot i; the budgets sum
	// to exactly the global worker budget (divideBudget invariant).
	budgets []int

	// remote bounds concurrently dispatched shard-tier queries. Remote
	// runs are network-bound, not CPU-bound, so they do not hold a run
	// slot (that would starve local queries of workers the remote run
	// never uses) — but they are still bounded, because each dispatch
	// pins O(ranks) connections and a control-reader goroutine per rank.
	remote chan struct{}

	// queued and running gauge current occupancy (for stats and
	// Retry-After estimation).
	queued  atomic.Int64
	running atomic.Int64
	// runningRemote gauges queries currently executing on the shard tier.
	runningRemote atomic.Int64
	// avgRunNanos is an EWMA of completed query durations, seeding the
	// Retry-After estimate.
	avgRunNanos atomic.Int64
}

// newScheduler builds a scheduler with the given global worker budget
// (<= 0 → GOMAXPROCS), concurrent run slots (<= 0 → 2, and never more
// than the worker budget so every slot gets ≥ 1 worker), wait-queue
// depth (< 0 → 0), and concurrent remote (shard-tier) dispatches
// (<= 0 → 4).
func newScheduler(workerBudget, maxConcurrent, queueDepth, maxRemote int) *scheduler {
	if workerBudget <= 0 {
		workerBudget = runtime.GOMAXPROCS(0)
	}
	if maxConcurrent <= 0 {
		maxConcurrent = 2
	}
	if maxConcurrent > workerBudget {
		maxConcurrent = workerBudget
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if maxRemote <= 0 {
		maxRemote = 4
	}
	s := &scheduler{
		queue:   make(chan struct{}, maxConcurrent+queueDepth),
		slots:   make(chan int, maxConcurrent),
		budgets: divideBudget(workerBudget, maxConcurrent),
		remote:  make(chan struct{}, maxRemote),
	}
	for i := 0; i < maxConcurrent; i++ {
		s.slots <- i
	}
	return s
}

// admit claims a queue token without blocking. On success the caller
// must eventually call release (normally via done after running).
func (s *scheduler) admit() error {
	select {
	case s.queue <- struct{}{}:
		s.queued.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// release returns an admission token (without having run — e.g. the
// query was cancelled while waiting for a slot).
func (s *scheduler) release() {
	s.queued.Add(-1)
	<-s.queue
}

// acquireSlot blocks until a run slot is free or ctx is done, returning
// the slot index and its worker budget. The caller must releaseSlot.
func (s *scheduler) acquireSlot(ctx context.Context) (slot, workers int, err error) {
	select {
	case slot = <-s.slots:
		s.running.Add(1)
		return slot, s.budgets[slot], nil
	case <-ctx.Done():
		return 0, 0, ctx.Err()
	}
}

// releaseSlot returns a run slot and folds the query's duration into
// the EWMA used for Retry-After estimation.
func (s *scheduler) releaseSlot(slot int, elapsed time.Duration) {
	old := s.avgRunNanos.Load()
	if old == 0 {
		s.avgRunNanos.Store(int64(elapsed))
	} else {
		s.avgRunNanos.Store(old - old/4 + int64(elapsed)/4)
	}
	s.running.Add(-1)
	s.slots <- slot
}

// acquireRemote claims a remote-dispatch slot (shard-tier queries are
// bounded separately from the local run slots — see the remote field).
// The caller must releaseRemote on success.
func (s *scheduler) acquireRemote(ctx context.Context) error {
	select {
	case s.remote <- struct{}{}:
		s.runningRemote.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// releaseRemote returns a remote-dispatch slot.
func (s *scheduler) releaseRemote() {
	s.runningRemote.Add(-1)
	<-s.remote
}

// retryAfter estimates, in whole seconds (minimum 1), how long a
// rejected client should wait before retrying: the number of queries
// actually waiting ahead of it times the average query duration, spread
// over the run slots.
//
// The waiter count is queued minus running: the queued gauge counts
// every admitted query, including the ones currently holding run slots
// (or executing remotely on the shard tier), and those are not ahead of
// the rejected client in any queue — an earlier version counted them
// and told clients to back off roughly twice as long as the real
// drain time under steady load (pinned in sched_test.go).
func (s *scheduler) retryAfter() int {
	avg := time.Duration(s.avgRunNanos.Load())
	if avg <= 0 {
		return 1
	}
	waiting := s.queued.Load() - s.running.Load() - s.runningRemote.Load()
	if waiting < 0 {
		waiting = 0
	}
	est := avg * time.Duration(waiting+1) / time.Duration(cap(s.slots))
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// divideBudget splits total workers across slots run slots with no
// remainder stranded: every slot gets at least one worker, the shares
// sum to exactly max(total, slots), and remainder workers go one each to
// the leading slots. It is the serving-layer sibling of dp.hybridSplit,
// which taught us the failure mode: a floor-division split (total/slots
// each) silently under-subscribes every non-divisible budget — 7 workers
// over 3 slots ran 3×2 = 6 and idled one core. The audit tests in
// sched_test.go lock the exact-sum invariant for all small budgets.
func divideBudget(total, slots int) []int {
	if total < 1 {
		total = 1
	}
	if slots < 1 {
		slots = 1
	}
	out := make([]int, slots)
	base, rem := total/slots, total%slots
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}
