package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	fascia "repro"
	"repro/internal/part"
)

// ShardRegistration is the body of POST /v1/shards: a worker announcing
// itself (or refreshing its graph set) to the coordinator.
type ShardRegistration struct {
	// Addr is the worker's shard-protocol listen address (host:port).
	Addr string `json:"addr"`
	// Graphs lists the graph hashes the worker serves, as 16-digit hex
	// strings. Hex, not numbers: JSON numbers decode through float64,
	// whose 53-bit mantissa silently corrupts uint64 hashes.
	Graphs []string `json:"graphs"`
}

// ShardListEntry is one element of the GET /v1/shards response.
type ShardListEntry struct {
	Addr   string   `json:"addr"`
	Graphs []string `json:"graphs"`
}

func (s *Server) handleAddShard(w http.ResponseWriter, r *http.Request) {
	var reg ShardRegistration
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&reg); err != nil {
		s.httpError(w, http.StatusBadRequest, "decode registration: %v", err)
		return
	}
	if reg.Addr == "" {
		s.httpError(w, http.StatusBadRequest, "missing addr")
		return
	}
	if len(reg.Graphs) == 0 {
		s.httpError(w, http.StatusBadRequest, "shard %s registers no graphs", reg.Addr)
		return
	}
	hashes := make([]uint64, len(reg.Graphs))
	for i, hs := range reg.Graphs {
		h, err := strconv.ParseUint(hs, 16, 64)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "graph hash %q is not hex: %v", hs, err)
			return
		}
		hashes[i] = h
	}
	n := s.pool.Register(reg.Addr, hashes)
	s.cfg.Logf("serve: shard %s registered with %d graphs (%d shards total)", reg.Addr, len(hashes), n)
	s.writeJSON(w, http.StatusOK, map[string]int{"shards": n})
}

func (s *Server) handleListShards(w http.ResponseWriter, _ *http.Request) {
	infos := s.pool.List()
	out := make([]ShardListEntry, 0, len(infos))
	for _, info := range infos {
		e := ShardListEntry{Addr: info.Addr, Graphs: make([]string, 0, len(info.Graphs))}
		for _, h := range info.Graphs {
			e.Graphs = append(e.Graphs, GraphHashHex(h))
		}
		out = append(out, e)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRemoveShard(w http.ResponseWriter, r *http.Request) {
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		s.httpError(w, http.StatusBadRequest, "missing ?addr=")
		return
	}
	if !s.pool.Deregister(addr) {
		s.httpError(w, http.StatusNotFound, "shard %s not registered", addr)
		return
	}
	s.cfg.Logf("serve: shard %s deregistered", addr)
	s.writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
}

// partStrategy maps the public option to the internal partition
// strategy for shard dispatch. The mapping must agree with
// Options.strategy(): dispatching a different strategy than the local
// engine would use breaks the bit-identity contract between the shard
// tier and local fallback.
func partStrategy(p fascia.PartitionStrategy) part.Strategy {
	if p == fascia.PartitionBalanced {
		return part.Balanced
	}
	return part.OneAtATime
}

// GraphHashHex formats a graph hash the way the shard-registration API
// expects it (16-digit hex).
func GraphHashHex(h uint64) string { return fmt.Sprintf("%016x", h) }
