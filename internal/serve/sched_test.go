package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDivideBudget is the worker-pool-division audit: the serving
// layer's carve-up must never strand budget the way dp's old
// floor-division hybrid split did (7 workers over 3 slots ran 3×2 = 6).
// Pinned cases first, then the exhaustive small-budget sweep.
func TestDivideBudget(t *testing.T) {
	cases := []struct {
		total, slots int
		want         []int
	}{
		{7, 3, []int{3, 2, 2}}, // the hybridSplit regression shape
		{8, 1, []int{8}},
		{1, 1, []int{1}},
		{4, 4, []int{1, 1, 1, 1}},
		{5, 4, []int{2, 1, 1, 1}},
		{2, 4, []int{1, 1, 1, 1}}, // fewer workers than slots: min 1 each
		{0, 3, []int{1, 1, 1}},    // degenerate budget clamps to 1
		{16, 5, []int{4, 3, 3, 3, 3}},
	}
	for _, c := range cases {
		got := divideBudget(c.total, c.slots)
		if len(got) != len(c.want) {
			t.Fatalf("divideBudget(%d, %d) = %v, want %v", c.total, c.slots, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("divideBudget(%d, %d) = %v, want %v", c.total, c.slots, got, c.want)
				break
			}
		}
	}

	// Property sweep: every slot gets >= 1 worker; when the budget
	// covers the slots the shares sum to exactly the budget (nothing
	// stranded, nothing oversubscribed); shares are non-increasing so
	// remainder workers land on the leading slots.
	for total := 1; total <= 32; total++ {
		for slots := 1; slots <= 32; slots++ {
			got := divideBudget(total, slots)
			if len(got) != slots {
				t.Fatalf("divideBudget(%d, %d): %d shares", total, slots, len(got))
			}
			sum := 0
			for i, w := range got {
				if w < 1 {
					t.Fatalf("divideBudget(%d, %d): zero share in %v", total, slots, got)
				}
				if i > 0 && got[i] > got[i-1] {
					t.Fatalf("divideBudget(%d, %d): shares not non-increasing: %v", total, slots, got)
				}
				sum += w
			}
			if total >= slots && sum != total {
				t.Fatalf("divideBudget(%d, %d) = %v sums to %d, want %d", total, slots, got, sum, total)
			}
			if total < slots && sum != slots {
				t.Fatalf("divideBudget(%d, %d) = %v sums to %d, want %d (min 1 each)", total, slots, got, sum, slots)
			}
		}
	}
}

func TestSchedulerAdmissionBounds(t *testing.T) {
	s := newScheduler(4, 2, 1, 0) // 2 run slots + 1 waiting = 3 admitted max
	for i := 0; i < 3; i++ {
		if err := s.admit(); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if err := s.admit(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th admit = %v, want ErrQueueFull", err)
	}
	s.release()
	if err := s.admit(); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestSchedulerSlotBudgets(t *testing.T) {
	s := newScheduler(7, 3, 0, 0)
	ctx := context.Background()
	seen := map[int]int{}
	var slots []int
	for i := 0; i < 3; i++ {
		slot, workers, err := s.acquireSlot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[slot] = workers
		slots = append(slots, slot)
	}
	total := 0
	for _, w := range seen {
		total += w
	}
	if len(seen) != 3 || total != 7 {
		t.Fatalf("slot budgets %v use %d workers, want all 3 slots summing to 7", seen, total)
	}

	// All slots taken: acquire must block until a slot frees or ctx dies.
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, _, err := s.acquireSlot(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("acquire on full scheduler = %v, want deadline exceeded", err)
	}
	s.releaseSlot(slots[0], 10*time.Millisecond)
	if _, _, err := s.acquireSlot(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestSchedulerConcurrencyCappedByWorkers(t *testing.T) {
	s := newScheduler(2, 8, 0, 0) // more slots requested than workers
	if got := cap(s.slots); got != 2 {
		t.Fatalf("slots = %d, want clamp to worker budget 2", got)
	}
}

func TestSchedulerRetryAfter(t *testing.T) {
	s := newScheduler(2, 2, 4, 0)
	if got := s.retryAfter(); got < 1 {
		t.Fatalf("retryAfter with no history = %d, want >= 1", got)
	}
	// Feed a 3s average: with an empty queue the estimate is avg/slots,
	// rounded up; it must stay >= 1 and grow with queue depth.
	s.avgRunNanos.Store(int64(3 * time.Second))
	empty := s.retryAfter()
	if empty < 1 {
		t.Fatalf("retryAfter = %d, want >= 1", empty)
	}
	for i := 0; i < 4; i++ {
		if err := s.admit(); err != nil {
			t.Fatal(err)
		}
	}
	if deep := s.retryAfter(); deep < empty {
		t.Fatalf("retryAfter shrank with queue depth: %d < %d", deep, empty)
	}
}

// TestSchedulerRetryAfterCountsWaitersNotRunners pins the retryAfter
// fix: a query holding a run slot (or a remote-dispatch slot) still
// holds its admission token, but it is *running*, not waiting, and must
// not inflate the backoff estimate. Before the fix, two admitted
// queries both occupying run slots were counted as two waiters, telling
// the rejected client to wait ~3× the real drain time.
func TestSchedulerRetryAfterCountsWaitersNotRunners(t *testing.T) {
	s := newScheduler(4, 2, 4, 1)
	s.avgRunNanos.Store(int64(4 * time.Second))

	// Empty scheduler: one prospective query over 2 slots → ceil(4s/2) = 2.
	if got := s.retryAfter(); got != 2 {
		t.Fatalf("retryAfter idle = %d, want 2", got)
	}

	ctx := context.Background()
	// Two queries admitted AND running (each holds a run slot): still no
	// one waiting, so the estimate must not move.
	for i := 0; i < 2; i++ {
		if err := s.admit(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.acquireSlot(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.retryAfter(); got != 2 {
		t.Fatalf("retryAfter with 2 running, 0 waiting = %d, want 2 (runners counted as waiters?)", got)
	}

	// A remote (shard-tier) query in flight is running too.
	if err := s.admit(); err != nil {
		t.Fatal(err)
	}
	if err := s.acquireRemote(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.retryAfter(); got != 2 {
		t.Fatalf("retryAfter with remote running = %d, want 2", got)
	}

	// One genuine waiter: (1+1)·4s / 2 slots = 4.
	if err := s.admit(); err != nil {
		t.Fatal(err)
	}
	if got := s.retryAfter(); got != 4 {
		t.Fatalf("retryAfter with 1 waiter = %d, want 4", got)
	}
	s.releaseRemote()
}

func TestSchedulerRemoteSlotBounds(t *testing.T) {
	s := newScheduler(4, 2, 0, 1)
	ctx := context.Background()
	if err := s.acquireRemote(ctx); err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := s.acquireRemote(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("acquireRemote on full remote pool = %v, want deadline exceeded", err)
	}
	if got := s.runningRemote.Load(); got != 1 {
		t.Fatalf("runningRemote = %d, want 1", got)
	}
	s.releaseRemote()
	if err := s.acquireRemote(ctx); err != nil {
		t.Fatalf("acquireRemote after release: %v", err)
	}
	s.releaseRemote()
}
