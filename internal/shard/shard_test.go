package shard

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges, nil)
}

// startWorker boots a shard worker on a loopback listener and returns
// its address.
func startWorker(t *testing.T, g *graph.Graph, opts WorkerOptions) (*Worker, string) {
	t.Helper()
	if opts.PeerTimeout == 0 {
		opts.PeerTimeout = 10 * time.Second
	}
	opts.Logf = t.Logf
	w := NewWorker(opts)
	w.AddGraph(g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	t.Cleanup(w.Close)
	return w, ln.Addr().String()
}

// startFleet boots n workers over the same graph and a pool that knows
// all of them.
func startFleet(t *testing.T, g *graph.Graph, n int, opts WorkerOptions) (*Pool, []*Worker, []string) {
	t.Helper()
	h := graph.Hash(g)
	pool := NewPool(PoolOptions{Logf: t.Logf})
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	for i := range workers {
		workers[i], addrs[i] = startWorker(t, g, opts)
		pool.Register(addrs[i], []uint64{h})
	}
	return pool, workers, addrs
}

func meanStderr(xs []float64) (mean, stderr float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	if len(xs) > 1 {
		stderr = math.Sqrt(ss/float64(len(xs)-1)) / math.Sqrt(float64(len(xs)))
	}
	return mean, stderr
}

func TestWireRoundTrips(t *testing.T) {
	q := runRequest{
		RunID: 7, GraphHash: 0xdeadbeefcafef00d, Rank: 1, Ranks: 3,
		Colors: 5, Strategy: 1, Seed: -42, Iters: 9, TK: 4,
		Template: "0-1 1-2 1-3",
		Labels:   []int32{0, 2, 1, 0},
		Peers:    []string{"a:1", "b:2", "c:3"},
	}
	got, err := decodeRun(encodeRun(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != q.RunID || got.GraphHash != q.GraphHash || got.Rank != q.Rank ||
		got.Ranks != q.Ranks || got.Colors != q.Colors || got.Strategy != q.Strategy ||
		got.Seed != q.Seed || got.Iters != q.Iters || got.TK != q.TK || got.Template != q.Template {
		t.Fatalf("run request round trip: got %+v want %+v", got, q)
	}
	if len(got.Labels) != 4 || got.Labels[1] != 2 || len(got.Peers) != 3 || got.Peers[2] != "c:3" {
		t.Fatalf("labels/peers round trip: %+v", got)
	}

	rows := rowsMsg{Iter: 3, Step: 5, Rows: [][]float64{{1.5, 0, -2.25}, nil, {}, {7}}}
	rt, err := decodeRows(encodeRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Iter != 3 || rt.Step != 5 || len(rt.Rows) != 4 {
		t.Fatalf("rows header round trip: %+v", rt)
	}
	if rt.Rows[1] != nil || rt.Rows[2] == nil || len(rt.Rows[2]) != 0 {
		t.Fatalf("nil/empty row distinction lost: %+v", rt.Rows)
	}
	if rt.Rows[0][2] != -2.25 || rt.Rows[3][0] != 7 {
		t.Fatalf("row values corrupted: %+v", rt.Rows)
	}

	h, err := decodeHello(encodeHello(hello{Kind: kindPeer, GraphHash: 1, RunID: 99, Rank: 2}))
	if err != nil || h.RunID != 99 || h.Rank != 2 || h.Kind != kindPeer {
		t.Fatalf("hello round trip: %+v err %v", h, err)
	}
	d, err := decodeDone(encodeDone(doneMsg{Messages: 10, CommBytes: 1 << 40, MaxRows: 3, Groups: 4, GroupedFrames: 8}))
	if err != nil || d.CommBytes != 1<<40 || d.Groups != 4 {
		t.Fatalf("done round trip: %+v err %v", d, err)
	}
}

// TestTemplateWireRoundTrip pins that the edge-spec wire form rebuilds
// an isomorphic template with identical vertex numbering (the DP
// depends on the numbering, not just the isomorphism class).
func TestTemplateWireRoundTrip(t *testing.T) {
	for _, tr := range []*tmpl.Template{
		tmpl.Path(3), tmpl.Star(5), tmpl.MustNamed("U5-2"), tmpl.Spider(2, 2, 1),
	} {
		q := runRequest{TK: uint32(tr.K()), Template: templateSpec(tr), Labels: templateLabels(tr)}
		back, err := templateFromWire(q)
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if back.K() != tr.K() {
			t.Fatalf("%v: came back with %d vertices", tr, back.K())
		}
		be := back.Edges()
		for i, e := range tr.Edges() {
			if be[i] != e {
				t.Fatalf("%v: edge %d changed: %v vs %v", tr, i, be[i], e)
			}
		}
	}
}

// TestShardBitIdentity is the keystone: a coordinator driving real
// worker processes' protocol over TCP must reproduce the in-process
// distributed engine bit for bit — estimates AND communication
// accounting (same needs lists, same skip rule, same cost model).
func TestShardBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 50, 150)
	tr := tmpl.MustNamed("U5-2")
	const iters, seed = 4, 11

	for _, ranks := range []int{1, 2, 3} {
		de, err := dist.New(g, tr, dist.Config{Ranks: ranks, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		want, err := de.Run(iters)
		if err != nil {
			t.Fatal(err)
		}

		pool, _, _ := startFleet(t, g, ranks, WorkerOptions{})
		out, err := pool.Count(context.Background(), Query{
			GraphHash: graph.Hash(g), GraphN: g.N(),
			Template: tr, Seed: seed, Iterations: iters,
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if len(out.PerIteration) != iters {
			t.Fatalf("ranks=%d: got %d iterations, want %d", ranks, len(out.PerIteration), iters)
		}
		for i := range want.PerIteration {
			if out.PerIteration[i] != want.PerIteration[i] {
				t.Fatalf("ranks=%d iter %d: wire %v, in-process %v",
					ranks, i, out.PerIteration[i], want.PerIteration[i])
			}
		}
		if out.Messages != want.Messages || out.CommBytes != want.CommBytes {
			t.Fatalf("ranks=%d: wire accounting (%d msgs, %d bytes) != in-process (%d msgs, %d bytes)",
				ranks, out.Messages, out.CommBytes, want.Messages, want.CommBytes)
		}
		if ranks > 1 && out.Messages > 0 && out.Groups == 0 {
			t.Fatalf("ranks=%d: sender flushed %d messages in zero groups", ranks, out.Messages)
		}
		if out.Shards != ranks || out.Redispatches != 0 {
			t.Fatalf("ranks=%d: outcome %+v", ranks, out)
		}
	}
}

// TestShardOracleDifferential checks the whole multi-worker wire path
// against the exhaustive oracle at 6 standard errors, same contract as
// the root diff_test harness.
func TestShardOracleDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential run is slow under -short")
	}
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 26, 70)
	tr := tmpl.MustNamed("U5-2")
	exactCount := exact.Count(g, tr)
	if exactCount <= 0 {
		t.Fatalf("degenerate workload: exact count %d", exactCount)
	}

	pool, _, _ := startFleet(t, g, 3, WorkerOptions{})
	const iters, seed = 300, 101
	out, err := pool.Count(context.Background(), Query{
		GraphHash: graph.Hash(g), GraphN: g.N(),
		Template: tr, Seed: seed, Iterations: iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean, stderr := meanStderr(out.PerIteration)
	diff := math.Abs(mean - float64(exactCount))
	tol := 6*stderr + 1e-9 + 1e-12*float64(exactCount)
	if diff > tol {
		t.Fatalf("ORACLE DISAGREEMENT seed=%d: sharded estimate %v over %d iterations vs exact %d (|diff| %g > 6σ tolerance %g)",
			seed, mean, iters, exactCount, diff, tol)
	}
}

// TestShardLossRedispatch kills one worker mid-run and requires the
// coordinator to finish the query on the survivors with `excluded`
// semantics: the dead shard leaves the group, the unfinished iterations
// re-dispatch, and the final stream is still bit-identical.
func TestShardLossRedispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 40, 120)
	tr := tmpl.Path(4)
	const iters, seed = 8, 5

	de, err := dist.New(g, tr, dist.Config{Ranks: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	want, err := de.Run(iters)
	if err != nil {
		t.Fatal(err)
	}

	// 20ms per iteration stretches the run to ~160ms; the kill at 50ms
	// lands mid-exchange with plenty of margin on both sides.
	pool, workers, addrs := startFleet(t, g, 3, WorkerOptions{IterDelay: 20 * time.Millisecond})
	killed := workers[1]
	timer := time.AfterFunc(50*time.Millisecond, killed.Close)
	defer timer.Stop()

	out, err := pool.Count(context.Background(), Query{
		GraphHash: graph.Hash(g), GraphN: g.N(),
		Template: tr, Seed: seed, Iterations: iters,
	})
	if err != nil {
		t.Fatalf("query should survive shard loss: %v", err)
	}
	if out.Redispatches < 1 || len(out.FailedShards) < 1 {
		t.Fatalf("kill went unnoticed: %+v", out)
	}
	if out.FailedShards[0] != addrs[1] {
		t.Fatalf("failed shard %q, killed %q", out.FailedShards[0], addrs[1])
	}
	if len(out.PerIteration) != iters {
		t.Fatalf("got %d iterations, want %d", len(out.PerIteration), iters)
	}
	for i := range want.PerIteration {
		if out.PerIteration[i] != want.PerIteration[i] {
			t.Fatalf("iter %d after re-dispatch: %v, want %v", i, out.PerIteration[i], want.PerIteration[i])
		}
	}
}

// TestShardAllLost drives the pool to ErrNoShards once every shard is
// gone, handing back the completed prefix for a local fallback.
func TestShardAllLost(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := randomGraph(rng, 30, 80)
	tr := tmpl.Path(3)

	pool, workers, _ := startFleet(t, g, 2, WorkerOptions{IterDelay: 20 * time.Millisecond})
	timer := time.AfterFunc(50*time.Millisecond, func() {
		for _, w := range workers {
			w.Close()
		}
	})
	defer timer.Stop()

	out, err := pool.Count(context.Background(), Query{
		GraphHash: graph.Hash(g), GraphN: g.N(),
		Template: tr, Seed: 1, Iterations: 50,
	})
	if !errors.Is(err, ErrNoShards) {
		t.Fatalf("want ErrNoShards, got %v (outcome %+v)", err, out)
	}
	if len(out.PerIteration) >= 50 {
		t.Fatalf("all shards died yet all iterations completed")
	}
	// The prefix that did complete must be bit-identical.
	de, err := dist.New(g, tr, dist.Config{Ranks: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := de.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.PerIteration {
		if out.PerIteration[i] != want.PerIteration[i] {
			t.Fatalf("prefix iter %d: %v, want %v", i, out.PerIteration[i], want.PerIteration[i])
		}
	}
}

// TestShardCancellation cancels mid-run: the coordinator hands back the
// completed prefix with ctx.Err(), workers tear their runs down, and no
// goroutines leak on either side.
func TestShardCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := randomGraph(rng, 30, 80)
	tr := tmpl.Path(3)

	pool, workers, _ := startFleet(t, g, 2, WorkerOptions{IterDelay: 10 * time.Millisecond})
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(60*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	out, err := pool.Count(ctx, Query{
		GraphHash: graph.Hash(g), GraphN: g.N(),
		Template: tr, Seed: 9, Iterations: 1000,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(out.PerIteration) >= 1000 {
		t.Fatal("cancellation did not interrupt the run")
	}

	// Workers must notice the hangup and reap their runs.
	deadline := time.Now().Add(5 * time.Second)
	for _, w := range workers {
		for {
			w.mu.Lock()
			n := len(w.runs)
			w.mu.Unlock()
			if n == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker still holds %d runs after cancellation", n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked after cancellation: %d -> %d\n%s",
		base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestWorkerDrain pins SIGTERM semantics: draining lets the in-flight
// exchange finish (the run completes and stays bit-identical) while new
// runs are refused, which the pool converts into exclusion.
func TestWorkerDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := randomGraph(rng, 30, 80)
	tr := tmpl.Path(3)
	const iters, seed = 6, 3

	pool, workers, _ := startFleet(t, g, 2, WorkerOptions{IterDelay: 20 * time.Millisecond})

	type res struct {
		out Outcome
		err error
	}
	resCh := make(chan res, 1)
	go func() {
		out, err := pool.Count(context.Background(), Query{
			GraphHash: graph.Hash(g), GraphN: g.N(),
			Template: tr, Seed: seed, Iterations: iters,
		})
		resCh <- res{out, err}
	}()
	time.Sleep(40 * time.Millisecond) // let the run get in flight

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- workers[0].Drain(ctx)
	}()

	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight query should complete through drain: %v", r.err)
	}
	if len(r.out.PerIteration) != iters {
		t.Fatalf("drained run returned %d iterations, want %d", len(r.out.PerIteration), iters)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}

	de, err := dist.New(g, tr, dist.Config{Ranks: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	want, err := de.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.PerIteration {
		if r.out.PerIteration[i] != want.PerIteration[i] {
			t.Fatalf("iter %d through drain: %v, want %v", i, r.out.PerIteration[i], want.PerIteration[i])
		}
	}

	// The drained worker now refuses runs; the pool excludes it and
	// finishes on the survivor.
	out, err := pool.Count(context.Background(), Query{
		GraphHash: graph.Hash(g), GraphN: g.N(),
		Template: tr, Seed: seed, Iterations: 2,
	})
	if err != nil {
		t.Fatalf("post-drain query: %v", err)
	}
	if len(out.FailedShards) != 1 {
		t.Fatalf("draining shard was not excluded: %+v", out)
	}
	if out.PerIteration[0] != want.PerIteration[0] {
		t.Fatalf("post-drain estimate drifted: %v vs %v", out.PerIteration[0], want.PerIteration[0])
	}
}

// TestPoolUnknownGraph: a shard advertising a graph it cannot actually
// serve is excluded, not fatal.
func TestPoolUnknownGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := randomGraph(rng, 20, 50)
	other := randomGraph(rng, 21, 50)

	// Worker holds `other` but the pool believes it covers g's hash.
	_, addr := startWorker(t, other, WorkerOptions{})
	pool := NewPool(PoolOptions{Logf: t.Logf})
	pool.Register(addr, []uint64{graph.Hash(g)})

	_, err := pool.Count(context.Background(), Query{
		GraphHash: graph.Hash(g), GraphN: g.N(),
		Template: tmpl.Path(3), Seed: 1, Iterations: 1,
	})
	if !errors.Is(err, ErrNoShards) {
		t.Fatalf("want ErrNoShards after excluding the lying shard, got %v", err)
	}
}

// TestPoolRegistry covers the registry surface the serve layer uses.
func TestPoolRegistry(t *testing.T) {
	pool := NewPool(PoolOptions{})
	if n := pool.Register("b:1", []uint64{7}); n != 1 {
		t.Fatalf("register count %d", n)
	}
	pool.Register("a:1", []uint64{7, 9})
	if got := pool.Covers(7); got != 2 {
		t.Fatalf("Covers(7) = %d", got)
	}
	if got := pool.Covers(9); got != 1 {
		t.Fatalf("Covers(9) = %d", got)
	}
	lst := pool.List()
	if len(lst) != 2 || lst[0].Addr != "a:1" || lst[1].Addr != "b:1" {
		t.Fatalf("list not sorted: %+v", lst)
	}
	if len(lst[0].Graphs) != 2 || lst[0].Graphs[0] != 7 {
		t.Fatalf("graphs not sorted: %+v", lst[0])
	}
	if !pool.Deregister("b:1") || pool.Deregister("b:1") {
		t.Fatal("deregister semantics")
	}
	if got := pool.Covers(7); got != 1 {
		t.Fatalf("Covers(7) after deregister = %d", got)
	}
}

// TestStopIndex pins the Welford stopping rule the adaptive tiers
// share: constant streams stop at the floor, high-variance streams
// never stop, zero means and non-positive targets disable stopping.
func TestStopIndex(t *testing.T) {
	constant := []float64{8, 8, 8, 8, 8, 8}
	if got := StopIndex(constant, 0.1, 4); got != 4 {
		t.Fatalf("constant stream: stop %d, want 4 (the floor)", got)
	}
	if got := StopIndex(constant, 0.1, 0); got != 2 {
		t.Fatalf("minIters < 2 not clamped: stop %d, want 2", got)
	}
	if got := StopIndex([]float64{1, 100, 1, 100, 1, 100}, 0.01, 2); got != -1 {
		t.Fatalf("high-variance stream converged at %d", got)
	}
	if got := StopIndex([]float64{5, -5, 5, -5}, 0.5, 2); got != -1 {
		t.Fatalf("zero-mean stream converged at %d", got)
	}
	if got := StopIndex(constant, 0, 2); got != -1 {
		t.Fatalf("non-positive target converged at %d", got)
	}
	if got := StopIndex(nil, 0.1, 2); got != -1 {
		t.Fatalf("empty stream converged at %d", got)
	}
}

// TestShardConverged drives the adaptive wave dispatcher over real TCP
// workers: the converged stream must be the exact StopIndex prefix of
// the fixed-run stream (bit-identical), a cached prior must shift the
// dispatch without changing the stopping point, and an already-converged
// prior must dispatch nothing.
func TestShardConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randomGraph(rng, 40, 120)
	tr := tmpl.MustNamed("U5-2")
	const seed, cap1 = 9, 200
	const relStdErr, minIters = 0.1, 5

	pool, _, _ := startFleet(t, g, 2, WorkerOptions{})
	base := Query{
		GraphHash: graph.Hash(g), GraphN: g.N(),
		Template: tr, Seed: seed, Iterations: cap1,
	}
	ref, err := pool.Count(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	stop := StopIndex(ref.PerIteration, relStdErr, minIters)
	if stop < minIters || stop >= cap1 {
		t.Fatalf("degenerate workload: stop %d", stop)
	}

	// Adaptive from scratch: exactly the StopIndex prefix.
	q := base
	q.Converge = &ConvergeSpec{RelStdErr: relStdErr, MinIters: minIters}
	out, err := pool.Count(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerIteration) != stop {
		t.Fatalf("adaptive dispatch ran %d iterations, want %d", len(out.PerIteration), stop)
	}
	for i, x := range out.PerIteration {
		if x != ref.PerIteration[i] {
			t.Fatalf("EXACTNESS DISAGREEMENT adaptive iteration %d: %v != fixed %v", i, x, ref.PerIteration[i])
		}
	}

	// A cached prior shifts the fresh seeds (the caller pre-offsets
	// Seed, as the serving layer does) but not the stopping point; only
	// the fresh iterations come back.
	const p = 4
	q = base
	q.Seed = seed + p
	q.Iterations = cap1 - p
	q.Converge = &ConvergeSpec{RelStdErr: relStdErr, MinIters: minIters, Prior: ref.PerIteration[:p]}
	out, err = pool.Count(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerIteration) != stop-p {
		t.Fatalf("prior-seeded dispatch ran %d fresh iterations, want %d", len(out.PerIteration), stop-p)
	}
	for i, x := range out.PerIteration {
		if x != ref.PerIteration[p+i] {
			t.Fatalf("EXACTNESS DISAGREEMENT prior-seeded iteration %d: %v != fixed %v", i, x, ref.PerIteration[p+i])
		}
	}

	// An already-converged prior dispatches nothing.
	q = base
	q.Seed = seed + int64(stop)
	q.Iterations = cap1 - stop
	q.Converge = &ConvergeSpec{RelStdErr: relStdErr, MinIters: minIters, Prior: ref.PerIteration[:stop]}
	out, err = pool.Count(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerIteration) != 0 || out.Shards != 0 {
		t.Fatalf("converged prior still dispatched: %d iterations over %d shards", len(out.PerIteration), out.Shards)
	}
}
