package shard

import (
	"runtime"
	"testing"
)

// allocBytes reports how many heap bytes fn allocates. TotalAlloc is
// monotonic (GC never decreases it), so the delta is stable.
func allocBytes(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestDecodeRowsHostileRowCount pins the per-element floor on the row
// count: a 1 MiB frame claiming 2^20 rows must be rejected before the
// 24-byte-per-row header slice is allocated (the old n <= len(b) floor
// let it allocate ~24 MiB from ~1 MiB of input).
func TestDecodeRowsHostileRowCount(t *testing.T) {
	var w wbuf
	w.u32(7)       // iter
	w.u32(3)       // step
	w.u32(1 << 20) // claimed row count
	payload := append(w.b, make([]byte, 1<<20)...)

	var err error
	alloc := allocBytes(func() { _, err = decodeRows(payload) })
	if err == nil {
		t.Fatal("decodeRows accepted a row count exceeding the wire-byte floor")
	}
	if alloc > 4<<20 {
		t.Errorf("decodeRows allocated %d bytes on a hostile 1 MiB frame; the length floor must reject it first", alloc)
	}
}

// TestDecodeRowsTightFrame confirms the floor admits a frame with zero
// slack: exactly the bytes its rows need.
func TestDecodeRowsTightFrame(t *testing.T) {
	m := rowsMsg{Iter: 1, Step: 2, Rows: [][]float64{{1.5}, nil, {2.5, -3.5}}}
	got, err := decodeRows(encodeRows(m))
	if err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	if len(got.Rows) != 3 || got.Rows[1] != nil || got.Rows[2][1] != -3.5 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}
