package shard

import (
	"runtime"
	"testing"
)

// allocBytes reports how many heap bytes fn allocates. TotalAlloc is
// monotonic (GC never decreases it), so the delta is stable.
func allocBytes(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestDecodeRowsHostileRowCount pins the per-element floor on the row
// count: a 1 MiB frame claiming 2^20 rows must be rejected before the
// 24-byte-per-row header slice is allocated (the old n <= len(b) floor
// let it allocate ~24 MiB from ~1 MiB of input).
func TestDecodeRowsHostileRowCount(t *testing.T) {
	var w wbuf
	w.u32(7)       // iter
	w.u32(3)       // step
	w.u32(1 << 20) // claimed row count
	payload := append(w.b, make([]byte, 1<<20)...)

	var err error
	alloc := allocBytes(func() { _, err = decodeRows(payload) })
	if err == nil {
		t.Fatal("decodeRows accepted a row count exceeding the wire-byte floor")
	}
	if alloc > 4<<20 {
		t.Errorf("decodeRows allocated %d bytes on a hostile 1 MiB frame; the length floor must reject it first", alloc)
	}
}

// TestDecodeRunHostileLabelCount pins the same floor on the label
// array: labels are 4 wire bytes each, so a count beyond remaining/4
// must fail before the backing array is sized.
func TestDecodeRunHostileLabelCount(t *testing.T) {
	var w wbuf
	w.u64(1)       // run id
	w.u64(2)       // graph hash
	w.u32(0)       // rank
	w.u32(1)       // ranks
	w.u32(4)       // colors
	w.u32(0)       // strategy
	w.i64(42)      // seed
	w.u32(1)       // iters
	w.u32(0)       // tk
	w.str("path3") // template
	w.u8(1)        // labels present
	w.u32(1 << 20) // claimed label count, 4 MiB worth
	payload := append(w.b, make([]byte, 1<<20)...)

	var err error
	alloc := allocBytes(func() { _, err = decodeRun(payload) })
	if err == nil {
		t.Fatal("decodeRun accepted a label count exceeding the wire-byte floor")
	}
	if alloc > 2<<20 {
		t.Errorf("decodeRun allocated %d bytes on a hostile 1 MiB frame; the length floor must reject it first", alloc)
	}
}

// TestDecodeRowsTightFrame confirms the floor admits a frame with zero
// slack: exactly the bytes its rows need.
func TestDecodeRowsTightFrame(t *testing.T) {
	m := rowsMsg{Iter: 1, Step: 2, Rows: [][]float64{{1.5}, nil, {2.5, -3.5}}}
	got, err := decodeRows(encodeRows(m))
	if err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	if len(got.Rows) != 3 || got.Rows[1] != nil || got.Rows[2][1] != -3.5 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}
