package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comb"
	"repro/internal/dp"
	"repro/internal/part"
	"repro/internal/tmpl"
)

// ErrNoShards reports that no registered shard (outside the excluded
// set) covers the queried graph; the caller falls back to local
// execution for whatever iterations remain.
var ErrNoShards = errors.New("shard: no shards cover the graph")

// workerError is a run-level error a worker reported over the wire
// (as opposed to a connection failure).
type workerError struct{ msg string }

func (e workerError) Error() string { return "shard: worker: " + e.msg }

// excludable reports whether the error means "this shard cannot serve
// the run right now" (draining, missing graph copy) — grounds for
// excluding the shard and re-dispatching — rather than a deterministic
// query error that would fail identically everywhere.
func (e workerError) excludable() bool {
	return strings.Contains(e.msg, "draining") || strings.Contains(e.msg, "not registered")
}

// PoolOptions configures a coordinator pool.
type PoolOptions struct {
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// DialTimeout bounds each shard dial (default 5s).
	DialTimeout time.Duration
	// HelloTimeout bounds the control handshake (default 10s).
	HelloTimeout time.Duration
}

// shardEntry is one registered shard worker.
type shardEntry struct {
	addr   string
	graphs map[uint64]bool
}

// ShardInfo describes a registered shard for listings.
type ShardInfo struct {
	Addr   string
	Graphs []uint64 // sorted
}

// PoolStats aggregates the pool's lifetime counters.
type PoolStats struct {
	Shards       int
	Queries      int64
	Redispatches int64
	Failures     int64
}

// Pool is the coordinator's view of the shard tier: a registry of
// worker addresses with the graphs each holds, and the dispatch logic
// that fans a query's iterations out to a group, collects the per-rank
// totals, and re-dispatches after shard loss.
type Pool struct {
	logf         func(string, ...any)
	dialTimeout  time.Duration
	helloTimeout time.Duration

	mu     sync.Mutex
	shards map[string]*shardEntry // guarded by mu

	nextRun      atomic.Uint64
	queries      atomic.Int64
	redispatches atomic.Int64
	failures     atomic.Int64
}

// NewPool returns an empty pool.
func NewPool(opts PoolOptions) *Pool {
	p := &Pool{
		logf:         opts.Logf,
		dialTimeout:  opts.DialTimeout,
		helloTimeout: opts.HelloTimeout,
		shards:       map[string]*shardEntry{},
	}
	if p.logf == nil {
		p.logf = func(string, ...any) {}
	}
	if p.dialTimeout <= 0 {
		p.dialTimeout = 5 * time.Second
	}
	if p.helloTimeout <= 0 {
		p.helloTimeout = 10 * time.Second
	}
	// Run ids need only be unique per worker lifetime; salting with the
	// clock keeps a restarted coordinator from colliding with runs a
	// prior incarnation left on long-lived workers.
	p.nextRun.Store(uint64(time.Now().UnixNano()))
	return p
}

// Register adds (or refreshes) a shard and the graph hashes it serves.
// Returns the resulting shard count.
func (p *Pool) Register(addr string, graphs []uint64) int {
	e := &shardEntry{addr: addr, graphs: make(map[uint64]bool, len(graphs))}
	for _, h := range graphs {
		e.graphs[h] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shards[addr] = e
	return len(p.shards)
}

// Deregister removes a shard; reports whether it was present.
func (p *Pool) Deregister(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.shards[addr]
	delete(p.shards, addr)
	return ok
}

// List returns the registered shards sorted by address.
func (p *Pool) List() []ShardInfo {
	p.mu.Lock()
	out := make([]ShardInfo, 0, len(p.shards))
	for _, e := range p.shards {
		info := ShardInfo{Addr: e.addr, Graphs: make([]uint64, 0, len(e.graphs))}
		for h := range e.graphs {
			info.Graphs = append(info.Graphs, h)
		}
		sort.Slice(info.Graphs, func(i, j int) bool { return info.Graphs[i] < info.Graphs[j] })
		out = append(out, info)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Covers reports how many registered shards hold the graph.
func (p *Pool) Covers(hash uint64) int {
	return len(p.group(hash, nil, 0))
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	n := len(p.shards)
	p.mu.Unlock()
	return PoolStats{
		Shards:       n,
		Queries:      p.queries.Load(),
		Redispatches: p.redispatches.Load(),
		Failures:     p.failures.Load(),
	}
}

// group returns the dispatch group for a graph: covering shards minus
// the excluded set, sorted by address (the rank order — deterministic
// so a fixed fleet yields a fixed partition), capped at max when
// max > 0.
func (p *Pool) group(hash uint64, excluded map[string]bool, max int) []string {
	p.mu.Lock()
	out := make([]string, 0, len(p.shards))
	for addr, e := range p.shards {
		if e.graphs[hash] && !excluded[addr] {
			out = append(out, addr)
		}
	}
	p.mu.Unlock()
	sort.Strings(out)
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Query is one sharded counting request: iterations [Seed, Seed+Iterations)
// of the canonical per-iteration estimate stream for (graph, template,
// colors, strategy).
type Query struct {
	GraphHash uint64
	// GraphN is the coordinator's vertex count, cross-checked against
	// every shard's local copy during the hello.
	GraphN     int
	Template   *tmpl.Template
	Colors     int // 0 = template size
	Strategy   part.Strategy
	Seed       int64
	Iterations int
	// MaxShards caps the group size (0 = use every covering shard).
	MaxShards int
	// Converge, when non-nil, makes the dispatch adaptive: instead of
	// running all Iterations up front, the coordinator sends
	// doubling-sized waves and stops as soon as the estimate stream
	// (Prior plus dispatched waves) meets the variance target.
	// Iterations then caps the fresh iterations dispatched.
	Converge *ConvergeSpec
}

// ConvergeSpec is the variance target of an adaptive dispatch.
type ConvergeSpec struct {
	// RelStdErr is the relative-standard-error-of-the-mean target over
	// the full estimate stream.
	RelStdErr float64
	// MinIters is the minimum total stream length (counting Prior)
	// before the target may stop the dispatch (< 2 is raised to 2).
	MinIters int
	// Prior holds per-iteration estimates already known for seeds
	// [Seed-len(Prior), Seed) — a cache prefix the target counts.
	Prior []float64
}

// StopIndex returns the length of the shortest prefix of ests at which
// an adaptive run targeting relStdErr would stop — the first
// n >= max(minIters, 2) whose relative standard error of the mean is at
// or below the target — or -1 if no prefix converges. It mirrors the dp
// engine's Welford stop rule exactly, so coordinators and caches can
// truncate an over-complete estimate stream to the bit-identical
// adaptive prefix.
func StopIndex(ests []float64, relStdErr float64, minIters int) int {
	if relStdErr <= 0 {
		return -1
	}
	if minIters < 2 {
		minIters = 2
	}
	var mean, m2 float64
	for i, est := range ests {
		n := float64(i + 1)
		delta := est - mean
		mean += delta / n
		m2 += delta * (est - mean)
		if i+1 >= minIters && mean != 0 &&
			math.Sqrt(m2/(n-1)/n)/math.Abs(mean) <= relStdErr {
			return i + 1
		}
	}
	return -1
}

// Outcome reports a sharded dispatch.
type Outcome struct {
	// PerIteration holds the completed prefix of the iteration stream —
	// bit-identical to the in-process engine under the same seed.
	PerIteration []float64
	// Messages and CommBytes aggregate the inter-shard row exchange
	// under the dist cost model; Groups and GroupedFrames describe the
	// adaptive send grouping (GroupedFrames frames in Groups flushes).
	Messages      int64
	CommBytes     int64
	Groups        int64
	GroupedFrames int64
	// MaxRankRows is the largest per-subtemplate row count any shard held.
	MaxRankRows int
	// Shards is the group size of the final dispatch; Redispatches
	// counts group rebuilds after shard loss; FailedShards lists the
	// addresses dropped along the way.
	Shards       int
	Redispatches int
	FailedShards []string
}

// Count runs the query over the shard tier. On shard loss it marks the
// unfinished iterations failed and re-dispatches them to the surviving
// shards (the lost shard excluded); the completed per-iteration prefix
// is never discarded, and because the estimate stream is invariant to
// the group size the splice is bit-exact. Returns ErrNoShards (with
// whatever prefix completed) once no eligible shard remains, and
// ctx.Err() on cancellation — in both cases the Outcome still carries
// the completed prefix.
func (p *Pool) Count(ctx context.Context, q Query) (Outcome, error) {
	var out Outcome
	if q.Iterations < 1 {
		return out, fmt.Errorf("shard: iterations must be >= 1, got %d", q.Iterations)
	}
	k := q.Colors
	if k == 0 {
		k = q.Template.K()
	}
	if k < q.Template.K() || k > comb.MaxColors {
		return out, fmt.Errorf("shard: invalid color count %d for template size %d", k, q.Template.K())
	}
	// The identical expression to dist.Engine.Scale — the coordinator
	// must divide the summed rank totals exactly as the in-process
	// runtime does to stay bit-identical.
	scale := dp.ColorfulProbability(k, q.Template.K()) * float64(q.Template.Automorphisms())
	p.queries.Add(1)

	excluded := map[string]bool{}
	if q.Converge != nil {
		return p.countConverged(ctx, q, k, scale, excluded)
	}
	ests, err := p.dispatch(ctx, q, k, scale, excluded, q.Seed, q.Iterations, &out)
	out.PerIteration = ests
	return out, err
}

// countConverged is the adaptive dispatch loop: waves of iterations go
// out until the estimate stream (Converge.Prior plus everything
// dispatched) meets the variance target or q.Iterations fresh
// iterations are exhausted. The first wave tops the stream up to
// MinIters; each later wave doubles the stream, so the per-wave dial
// overhead stays logarithmic in the total while the overshoot past the
// exact stop point is bounded by 2x — and the overshoot is then
// truncated at StopIndex, so the returned prefix is bit-identical to a
// local adaptive run over the same seeds.
func (p *Pool) countConverged(ctx context.Context, q Query, k int, scale float64, excluded map[string]bool) (Outcome, error) {
	var out Outcome
	c := q.Converge
	minIters := c.MinIters
	if minIters < 2 {
		minIters = 2
	}
	stream := append([]float64(nil), c.Prior...)
	finish := func(err error) (Outcome, error) {
		keep := len(stream) - len(c.Prior)
		if idx := StopIndex(stream, c.RelStdErr, minIters); idx >= 0 {
			if f := idx - len(c.Prior); f < keep {
				keep = max(f, 0)
			}
		}
		out.PerIteration = append([]float64(nil), stream[len(c.Prior):len(c.Prior)+keep]...)
		return out, err
	}
	for {
		if StopIndex(stream, c.RelStdErr, minIters) >= 0 {
			return finish(nil)
		}
		rem := q.Iterations - (len(stream) - len(c.Prior))
		if rem <= 0 {
			return finish(nil)
		}
		wave := minIters - len(stream)
		if wave < 1 {
			wave = len(stream)
		}
		if wave > rem {
			wave = rem
		}
		base := q.Seed + int64(len(stream)-len(c.Prior))
		ests, err := p.dispatch(ctx, q, k, scale, excluded, base, wave, &out)
		stream = append(stream, ests...)
		if err != nil {
			return finish(err)
		}
	}
}

// dispatch runs iters iterations [base, base+iters) over the shard
// tier, excluding lost shards and re-dispatching the remainder until
// the range completes or no eligible shard remains. It returns the
// completed contiguous per-iteration prefix and folds transport
// accounting into out.
func (p *Pool) dispatch(ctx context.Context, q Query, k int, scale float64, excluded map[string]bool, base int64, iters int, out *Outcome) ([]float64, error) {
	var acc []float64
	remaining := iters
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return acc, err
		}
		group := p.group(q.GraphHash, excluded, q.MaxShards)
		if len(group) == 0 {
			return acc, ErrNoShards
		}
		out.Shards = len(group)
		ests, gs, failedAddr, err := p.runGroup(ctx, group, q, k, scale, base, remaining)
		acc = append(acc, ests...)
		base += int64(len(ests))
		remaining -= len(ests)
		out.Messages += gs.messages
		out.CommBytes += gs.commBytes
		out.Groups += gs.groups
		out.GroupedFrames += gs.groupedFrames
		if gs.maxRows > out.MaxRankRows {
			out.MaxRankRows = gs.maxRows
		}
		if err == nil && failedAddr == "" {
			break
		}
		if cerr := ctx.Err(); cerr != nil {
			return acc, cerr
		}
		if failedAddr != "" {
			p.logf("shard: lost %s mid-run (%v); re-dispatching %d iterations to %d survivors",
				failedAddr, err, remaining, len(group)-1)
			excluded[failedAddr] = true
			out.FailedShards = append(out.FailedShards, failedAddr)
			p.failures.Add(1)
			if remaining > 0 {
				out.Redispatches++
				p.redispatches.Add(1)
			}
			continue
		}
		return acc, err
	}
	return acc, nil
}

// groupStats aggregates one dispatch's transport accounting.
type groupStats struct {
	messages      int64
	commBytes     int64
	groups        int64
	groupedFrames int64
	maxRows       int
}

// event is one frame from one shard's control connection.
type event struct {
	rank int
	iter *iterMsg
	done *doneMsg
	err  error
}

// runGroup dispatches iterations [base, base+iters) across group (one
// rank per shard, in slice order) and collects the stream. Returns the
// completed contiguous per-iteration prefix; failedAddr names the shard
// to exclude when the dispatch died of connection loss or refusal.
func (p *Pool) runGroup(ctx context.Context, group []string, q Query, k int, scale float64, base int64, iters int) (ests []float64, gs groupStats, failedAddr string, err error) {
	ranks := len(group)
	runID := p.nextRun.Add(1)

	conns := make([]net.Conn, ranks)
	brs := make([]*bufio.Reader, ranks)
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}

	// Phase 1: dial + hello every shard before any run request goes
	// out, so a dead shard is discovered while aborting is still free.
	type dialOut struct {
		rank int
		conn net.Conn
		br   *bufio.Reader
		err  error
	}
	dialCh := make(chan dialOut, ranks)
	for i, addr := range group {
		go func(i int, addr string) {
			conn, br, derr := p.dialControl(ctx, addr, q)
			dialCh <- dialOut{rank: i, conn: conn, br: br, err: derr}
		}(i, addr)
	}
	var dialErr error
	failedRank := -1
	for range group {
		d := <-dialCh
		conns[d.rank], brs[d.rank] = d.conn, d.br
		if d.err != nil && dialErr == nil {
			dialErr, failedRank = d.err, d.rank
		}
	}
	if dialErr != nil {
		closeAll()
		var we workerError
		if errors.As(dialErr, &we) && !we.excludable() {
			return nil, gs, "", dialErr
		}
		return nil, gs, group[failedRank], dialErr
	}

	// Phase 2: run requests. Peers is the full group so every worker
	// derives the same rank→address map.
	labels := templateLabels(q.Template)
	for i := range group {
		req := runRequest{
			RunID:     runID,
			GraphHash: q.GraphHash,
			Rank:      uint32(i),
			Ranks:     uint32(ranks),
			Colors:    uint32(k),
			Strategy:  uint32(q.Strategy),
			Seed:      base,
			Iters:     uint32(iters),
			TK:        uint32(q.Template.K()),
			Template:  templateSpec(q.Template),
			Labels:    labels,
			Peers:     group,
		}
		conns[i].SetWriteDeadline(time.Now().Add(p.helloTimeout))
		if werr := writeFrame(conns[i], msgRun, encodeRun(req)); werr != nil {
			closeAll()
			return nil, gs, group[i], fmt.Errorf("shard: sending run to %s: %w", group[i], werr)
		}
		conns[i].SetWriteDeadline(time.Time{})
	}

	// Phase 3: collect. Readers demux each conn into one event stream;
	// the buffer holds every possible event so a reader can never block
	// after the aggregation loop bails out early.
	ch := make(chan event, ranks*(iters+2))
	var wg sync.WaitGroup
	for i := range group {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			readControl(i, brs[i], ch)
		}(i)
	}
	unwatch := context.AfterFunc(ctx, closeAll)
	defer unwatch()

	next := make([]int, ranks) // per-rank contiguous iterations received
	totals := make([][]float64, iters)
	for i := range totals {
		totals[i] = make([]float64, ranks)
	}
	pending := ranks
	for pending > 0 && err == nil {
		ev := <-ch
		switch {
		case ev.err != nil:
			err = ev.err
			failedAddr = group[ev.rank]
		case ev.iter != nil:
			if int(ev.iter.Iter) != next[ev.rank] || next[ev.rank] >= iters {
				err = fmt.Errorf("shard: %s sent iteration %d out of order (want %d)", group[ev.rank], ev.iter.Iter, next[ev.rank])
				failedAddr = group[ev.rank]
				break
			}
			totals[next[ev.rank]][ev.rank] = ev.iter.Total
			next[ev.rank]++
		case ev.done != nil:
			if next[ev.rank] != iters {
				err = fmt.Errorf("shard: %s finished after %d of %d iterations", group[ev.rank], next[ev.rank], iters)
				failedAddr = group[ev.rank]
				break
			}
			gs.messages += ev.done.Messages
			gs.commBytes += ev.done.CommBytes
			gs.groups += int64(ev.done.Groups)
			gs.groupedFrames += int64(ev.done.GroupedFrames)
			if int(ev.done.MaxRows) > gs.maxRows {
				gs.maxRows = int(ev.done.MaxRows)
			}
			pending--
		}
	}
	closeAll()
	wg.Wait()

	// The completed prefix: iterations every rank reported. Totals are
	// summed in rank order — the bit-identity contract with the
	// in-process engines.
	prefix := iters
	for _, n := range next {
		if n < prefix {
			prefix = n
		}
	}
	ests = make([]float64, prefix)
	for i := 0; i < prefix; i++ {
		var sum float64
		for r := 0; r < ranks; r++ {
			sum += totals[i][r]
		}
		ests[i] = sum / scale
	}
	if err != nil {
		var we workerError
		if errors.As(err, &we) && !we.excludable() {
			// Deterministic run error: retrying elsewhere would fail the
			// same way, so surface it instead of excluding the shard.
			return ests, gs, "", err
		}
	}
	return ests, gs, failedAddr, err
}

// dialControl opens a control connection and completes the hello,
// cross-checking the shard's graph copy.
func (p *Pool) dialControl(ctx context.Context, addr string, q Query) (net.Conn, *bufio.Reader, error) {
	d := net.Dialer{Timeout: p.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	conn.SetDeadline(time.Now().Add(p.helloTimeout))
	if err := writeFrame(conn, msgHello, encodeHello(hello{Kind: kindControl, GraphHash: q.GraphHash})); err != nil {
		conn.Close()
		return nil, nil, err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	t, payload, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	switch t {
	case msgHelloOK:
		ok, derr := decodeHelloOK(payload)
		if derr != nil {
			conn.Close()
			return nil, nil, derr
		}
		if int(ok.N) != q.GraphN {
			conn.Close()
			return nil, nil, fmt.Errorf("shard: %s holds a %d-vertex copy, coordinator has %d", addr, ok.N, q.GraphN)
		}
		conn.SetDeadline(time.Time{})
		return conn, br, nil
	case msgErr:
		msg, _ := decodeErr(payload)
		conn.Close()
		return nil, nil, workerError{msg: msg}
	default:
		conn.Close()
		return nil, nil, fmt.Errorf("shard: unexpected frame type %d in control handshake", t)
	}
}

// readControl pumps one shard's control stream into the event channel.
func readControl(rank int, br *bufio.Reader, ch chan<- event) {
	for {
		t, payload, err := readFrame(br)
		if err != nil {
			ch <- event{rank: rank, err: fmt.Errorf("shard: control stream: %w", err)}
			return
		}
		switch t {
		case msgIter:
			m, derr := decodeIter(payload)
			if derr != nil {
				ch <- event{rank: rank, err: derr}
				return
			}
			ch <- event{rank: rank, iter: &m}
		case msgDone:
			m, derr := decodeDone(payload)
			if derr != nil {
				ch <- event{rank: rank, err: derr}
				return
			}
			ch <- event{rank: rank, done: &m}
			return
		case msgErr:
			msg, _ := decodeErr(payload)
			ch <- event{rank: rank, err: workerError{msg: msg}}
			return
		default:
			ch <- event{rank: rank, err: fmt.Errorf("shard: unexpected frame type %d on control stream", t)}
			return
		}
	}
}

// templateLabels extracts a labeled template's label vector (nil for
// unlabeled templates).
func templateLabels(t *tmpl.Template) []int32 {
	if !t.Labeled() {
		return nil
	}
	out := make([]int32, t.K())
	for v := range out {
		out[v] = t.Label(v)
	}
	return out
}
