package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/tmpl"
)

// errRunCancelled marks a run torn down by the coordinator (control
// connection closed) or by worker shutdown; the iteration in flight is
// garbage and is discarded without a reply.
var errRunCancelled = errors.New("shard: run cancelled")

// WorkerOptions configures a shard worker.
type WorkerOptions struct {
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// IterDelay, when positive, sleeps between iterations — a throttle
	// for demos and for tests that need a wide window to kill a worker
	// mid-run.
	IterDelay time.Duration
	// PeerTimeout bounds the peer-link rendezvous and handshakes
	// (default 30s).
	PeerTimeout time.Duration
	// DialTimeout bounds a single peer dial (default 5s).
	DialTimeout time.Duration
}

// Worker owns local copies of registered graphs and serves shard runs:
// each control connection carries one run in which this process acts as
// one rank of a group, computing the rank-local DP over its vertex
// block and exchanging boundary rows with its peer workers directly.
type Worker struct {
	logf        func(string, ...any)
	iterDelay   time.Duration
	peerTimeout time.Duration
	dialTimeout time.Duration

	mu       sync.Mutex
	graphs   map[uint64]*graph.Graph  // guarded by mu
	runs     map[uint64]*workerRun    // guarded by mu
	arrived  map[uint64]chan struct{} // guarded by mu; run-registration broadcast
	ctrl     map[net.Conn]struct{}    // guarded by mu; open control conns
	ln       net.Listener             // guarded by mu
	draining bool                     // guarded by mu
	closed   bool                     // guarded by mu
	closedCh chan struct{}
	inflight sync.WaitGroup
}

// workerRun is one in-flight run on this worker.
type workerRun struct {
	id       uint64
	stop     atomic.Bool
	stopCh   chan struct{}
	stopOnce sync.Once
	peerCh   chan peerConn
	x        *wireExchange // set before the run is registered
}

// peerConn is an accepted peer connection awaiting attachment.
type peerConn struct {
	rank int
	conn net.Conn
	br   *bufio.Reader
}

func (r *workerRun) cancel() {
	r.stopOnce.Do(func() {
		r.stop.Store(true)
		close(r.stopCh)
		r.x.abortConns(errRunCancelled)
	})
}

func (r *workerRun) stopped() bool { return r.stop.Load() }

// NewWorker returns a worker with no graphs.
func NewWorker(opts WorkerOptions) *Worker {
	w := &Worker{
		logf:        opts.Logf,
		iterDelay:   opts.IterDelay,
		peerTimeout: opts.PeerTimeout,
		dialTimeout: opts.DialTimeout,
		graphs:      map[uint64]*graph.Graph{},
		runs:        map[uint64]*workerRun{},
		arrived:     map[uint64]chan struct{}{},
		ctrl:        map[net.Conn]struct{}{},
		closedCh:    make(chan struct{}),
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	if w.peerTimeout <= 0 {
		w.peerTimeout = 30 * time.Second
	}
	if w.dialTimeout <= 0 {
		w.dialTimeout = 5 * time.Second
	}
	return w
}

// AddGraph registers a local graph copy, keyed by its structural hash.
func (w *Worker) AddGraph(g *graph.Graph) uint64 {
	h := graph.Hash(g)
	w.mu.Lock()
	w.graphs[h] = g
	w.mu.Unlock()
	return h
}

// GraphHashes lists the registered graph hashes, sorted.
func (w *Worker) GraphHashes() []uint64 {
	w.mu.Lock()
	out := make([]uint64, 0, len(w.graphs))
	for h := range w.graphs {
		out = append(out, h)
	}
	w.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Serve accepts control and peer connections on ln until the listener
// closes (via Close).
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return errors.New("shard: worker closed")
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go w.handleConn(c)
	}
}

// Drain stops accepting new runs and waits for in-flight runs (and
// their exchanges) to finish, bounded by ctx.
func (w *Worker) Drain(ctx context.Context) error {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
	done := make(chan struct{})
	go func() {
		w.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("shard: drain aborted with runs in flight: %w", ctx.Err())
	}
}

// Close tears the worker down: the listener closes, in-flight runs are
// cancelled, open control connections are severed.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	close(w.closedCh)
	ln := w.ln
	runs := make([]*workerRun, 0, len(w.runs))
	for _, r := range w.runs {
		runs = append(runs, r)
	}
	conns := make([]net.Conn, 0, len(w.ctrl))
	for c := range w.ctrl {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, r := range runs {
		r.cancel()
	}
	for _, c := range conns {
		c.Close()
	}
	w.inflight.Wait()
}

func (w *Worker) handleConn(c net.Conn) {
	br := bufio.NewReaderSize(c, 64<<10)
	c.SetReadDeadline(time.Now().Add(w.peerTimeout))
	t, payload, err := readFrame(br)
	if err != nil || t != msgHello {
		c.Close()
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	switch h.Kind {
	case kindControl:
		w.handleControl(c, br, h)
	case kindPeer:
		w.handlePeer(c, br, h)
	default:
		c.Close()
	}
}

// replyErr best-effort ships an error frame and closes the connection.
func replyErr(c net.Conn, msg string) {
	c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	writeFrame(c, msgErr, encodeErr(msg))
	c.Close()
}

// handleControl serves one run on a coordinator connection.
func (w *Worker) handleControl(c net.Conn, br *bufio.Reader, h hello) {
	w.mu.Lock()
	if w.draining || w.closed {
		w.mu.Unlock()
		replyErr(c, "shard worker draining")
		return
	}
	g := w.graphs[h.GraphHash]
	if g == nil {
		w.mu.Unlock()
		replyErr(c, fmt.Sprintf("graph %x not registered on this shard", h.GraphHash))
		return
	}
	// Inside the same critical section as the draining check so Drain
	// can never return while this run is being admitted.
	w.inflight.Add(1)
	w.ctrl[c] = struct{}{}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.ctrl, c)
		w.mu.Unlock()
		c.Close()
		w.inflight.Done()
	}()

	cw := bufio.NewWriter(c)
	reply := func(t msgType, payload []byte) error {
		if err := writeFrame(cw, t, payload); err != nil {
			return err
		}
		return cw.Flush()
	}
	if err := reply(msgHelloOK, encodeHelloOK(helloOK{N: uint32(g.N())})); err != nil {
		return
	}
	c.SetReadDeadline(time.Now().Add(w.peerTimeout))
	t, payload, err := readFrame(br)
	if err != nil || t != msgRun {
		return
	}
	c.SetReadDeadline(time.Time{})
	q, err := decodeRun(payload)
	if err != nil {
		reply(msgErr, encodeErr(err.Error()))
		return
	}
	if q.GraphHash != h.GraphHash || q.RunID == 0 {
		reply(msgErr, encodeErr("run request does not match hello"))
		return
	}
	w.runShard(c, br, reply, g, q)
}

// templateFromWire rebuilds the query template from its wire spec.
func templateFromWire(q runRequest) (*tmpl.Template, error) {
	if q.TK < 1 || q.TK > 64 {
		return nil, fmt.Errorf("shard: template size %d out of range", q.TK)
	}
	var t *tmpl.Template
	var err error
	if q.Template == "" {
		t, err = tmpl.NewTree("wire", int(q.TK), nil, q.Labels)
	} else {
		t, err = tmpl.Parse("wire", q.Template)
		if err == nil && q.Labels != nil {
			t, err = t.WithLabels("wire", q.Labels)
		}
	}
	if err != nil {
		return nil, err
	}
	if t.K() != int(q.TK) {
		return nil, fmt.Errorf("shard: template spec has %d vertices, header says %d", t.K(), q.TK)
	}
	return t, nil
}

// templateSpec renders a template for the wire: its edge list in
// tmpl.Parse syntax (empty for the single-vertex template).
func templateSpec(t *tmpl.Template) string {
	edges := t.Edges()
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = fmt.Sprintf("%d-%d", e[0], e[1])
	}
	return strings.Join(parts, " ")
}

// runShard executes one run as rank q.Rank, streaming per-iteration
// totals back on the control connection.
func (w *Worker) runShard(c net.Conn, br *bufio.Reader, reply func(msgType, []byte) error, g *graph.Graph, q runRequest) {
	tr, err := templateFromWire(q)
	if err != nil {
		reply(msgErr, encodeErr(err.Error()))
		return
	}
	if q.Strategy > uint32(part.Balanced) {
		reply(msgErr, encodeErr(fmt.Sprintf("unknown partition strategy %d", q.Strategy)))
		return
	}
	eng, err := dist.New(g, tr, dist.Config{
		Ranks:    int(q.Ranks),
		Colors:   int(q.Colors),
		Strategy: part.Strategy(q.Strategy),
		Seed:     q.Seed,
	})
	if err != nil {
		reply(msgErr, encodeErr(err.Error()))
		return
	}
	r := int(q.Rank)
	comm := &dist.CommStats{}
	run := &workerRun{
		id:     q.RunID,
		stopCh: make(chan struct{}),
		peerCh: make(chan peerConn, q.Ranks),
		x:      newWireExchange(r, int(q.Ranks), comm),
	}
	if err := w.registerRun(run); err != nil {
		reply(msgErr, encodeErr(err.Error()))
		return
	}
	defer w.unregisterRun(run)
	defer run.x.shutdown()
	// Late peer hellos (e.g. for a run torn down during rendezvous) park
	// their conns in peerCh; release them on the way out.
	defer func() {
		for {
			select {
			case pc := <-run.peerCh:
				pc.conn.Close()
			default:
				return
			}
		}
	}()

	// The coordinator sends nothing after the run request; any read
	// completion means it hung up (cancel, failure, or done with us) —
	// tear the run down so blocked exchanges unwind.
	go func() {
		br.ReadByte()
		run.cancel()
	}()

	if err := w.connectPeers(run, eng, q); err != nil {
		if !run.stopped() {
			w.logf("shard: run %d rank %d: peer setup: %v", q.RunID, r, err)
			reply(msgErr, encodeErr(err.Error()))
		}
		return
	}

	maxRows := 0
	for it := 0; it < int(q.Iters); it++ {
		if run.stopped() {
			return
		}
		colors := eng.IterationColors(it)
		rr, err := eng.RunRank(r, colors, iterExchange{x: run.x, iter: it}, &run.stop)
		if err != nil {
			if !run.stopped() {
				w.logf("shard: run %d rank %d iter %d: %v", q.RunID, r, it, err)
				reply(msgErr, encodeErr(err.Error()))
			}
			return
		}
		if run.stopped() {
			return // the iteration's compute was fast-forwarded; discard
		}
		if rr.MaxNodeRows > maxRows {
			maxRows = rr.MaxNodeRows
		}
		if reply(msgIter, encodeIter(iterMsg{Iter: uint32(it), Total: rr.Total})) != nil {
			return
		}
		if w.iterDelay > 0 {
			select {
			case <-time.After(w.iterDelay):
			case <-run.stopCh:
				return
			}
		}
	}
	// Flush and reap the links before reading the grouping counters.
	run.x.shutdown()
	groups, frames := run.x.groupStats()
	reply(msgDone, encodeDone(doneMsg{
		Messages:      comm.Messages.Load(),
		CommBytes:     comm.Bytes.Load(),
		MaxRows:       uint32(maxRows),
		Groups:        uint32(groups),
		GroupedFrames: uint32(frames),
	}))
}

func (w *Worker) registerRun(run *workerRun) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("shard: worker closed")
	}
	if _, ok := w.runs[run.id]; ok {
		return fmt.Errorf("shard: run %d already in flight", run.id)
	}
	w.runs[run.id] = run
	if ch, ok := w.arrived[run.id]; ok {
		close(ch)
		delete(w.arrived, run.id)
	}
	return nil
}

func (w *Worker) unregisterRun(run *workerRun) {
	w.mu.Lock()
	delete(w.runs, run.id)
	w.mu.Unlock()
}

// waitRun blocks until the run registers, bounded by d and by worker
// shutdown.
func (w *Worker) waitRun(id uint64, d time.Duration) *workerRun {
	w.mu.Lock()
	if run, ok := w.runs[id]; ok {
		w.mu.Unlock()
		return run
	}
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	ch, ok := w.arrived[id]
	if !ok {
		ch = make(chan struct{})
		w.arrived[id] = ch
	}
	w.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		w.mu.Lock()
		run := w.runs[id]
		w.mu.Unlock()
		return run
	case <-t.C:
		return nil
	case <-w.closedCh:
		return nil
	}
}

// handlePeer hands an inbound peer connection to its run.
func (w *Worker) handlePeer(c net.Conn, br *bufio.Reader, h hello) {
	run := w.waitRun(h.RunID, w.peerTimeout)
	if run == nil {
		replyErr(c, fmt.Sprintf("no run %d on this shard", h.RunID))
		return
	}
	// Acknowledge before attaching: once the run's writer owns the
	// connection this goroutine must not touch it again.
	c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := writeFrame(c, msgHelloOK, encodeHelloOK(helloOK{})); err != nil {
		c.Close()
		return
	}
	c.SetWriteDeadline(time.Time{})
	select {
	case run.peerCh <- peerConn{rank: int(h.Rank), conn: c, br: br}:
	default:
		c.Close() // duplicate or overflowing peer — the run will not miss it
	}
}

// connectPeers establishes this rank's peer links: dial every lower
// rank the needs lists say we exchange with, accept from every such
// higher rank; pairs with empty needs in both directions never connect.
func (w *Worker) connectPeers(run *workerRun, eng *dist.Engine, q runRequest) error {
	p := int(q.Ranks)
	r := int(q.Rank)
	wanted := make([]bool, p)
	need := 0
	for o := 0; o < p; o++ {
		if o == r {
			continue
		}
		if len(eng.NeedList(r, o)) > 0 || len(eng.NeedList(o, r)) > 0 {
			wanted[o] = true
			need++
		}
	}
	if need == 0 {
		return nil
	}
	type dialRes struct {
		rank int
		conn net.Conn
		br   *bufio.Reader
		err  error
	}
	resCh := make(chan dialRes, p)
	dialsOut := 0
	for o := 0; o < r; o++ {
		if !wanted[o] {
			continue
		}
		dialsOut++
		go func(o int) {
			conn, br, err := w.dialPeer(q.Peers[o], q.RunID, uint32(r))
			resCh <- dialRes{rank: o, conn: conn, br: br, err: err}
		}(o)
	}
	// Abandoned dials must not leak sockets once we bail out.
	defer func() {
		if dialsOut > 0 {
			go func(n int) {
				for i := 0; i < n; i++ {
					if res := <-resCh; res.conn != nil {
						res.conn.Close()
					}
				}
			}(dialsOut)
		}
	}()
	attached := make([]bool, p)
	deadline := time.NewTimer(w.peerTimeout)
	defer deadline.Stop()
	for need > 0 {
		select {
		case res := <-resCh:
			dialsOut--
			if res.err != nil {
				return fmt.Errorf("shard: rank %d dialing rank %d: %w", r, res.rank, res.err)
			}
			run.x.attach(res.rank, res.conn, res.br)
			attached[res.rank] = true
			need--
		case pc := <-run.peerCh:
			if pc.rank <= r || pc.rank >= p || !wanted[pc.rank] || attached[pc.rank] {
				pc.conn.Close()
				return fmt.Errorf("shard: rank %d: unexpected peer hello from rank %d", r, pc.rank)
			}
			run.x.attach(pc.rank, pc.conn, pc.br)
			attached[pc.rank] = true
			need--
		case <-deadline.C:
			return fmt.Errorf("shard: rank %d: peer rendezvous timed out with %d links missing", r, need)
		case <-run.stopCh:
			return errRunCancelled
		}
	}
	return nil
}

// dialPeer opens a peer link toward a lower-ranked worker.
func (w *Worker) dialPeer(addr string, runID uint64, rank uint32) (net.Conn, *bufio.Reader, error) {
	conn, err := net.DialTimeout("tcp", addr, w.dialTimeout)
	if err != nil {
		return nil, nil, err
	}
	conn.SetDeadline(time.Now().Add(w.peerTimeout))
	if err := writeFrame(conn, msgHello, encodeHello(hello{Kind: kindPeer, RunID: runID, Rank: rank})); err != nil {
		conn.Close()
		return nil, nil, err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	t, payload, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if t == msgErr {
		msg, _ := decodeErr(payload)
		conn.Close()
		return nil, nil, fmt.Errorf("shard: peer refused link: %s", msg)
	}
	if t != msgHelloOK {
		conn.Close()
		return nil, nil, fmt.Errorf("shard: unexpected frame type %d in peer handshake", t)
	}
	conn.SetDeadline(time.Time{})
	return conn, br, nil
}
