// Package shard is the horizontally-sharded counting tier: the
// internal/dist rank protocol promoted from an in-process simulation to
// a real wire. A coordinator (the fasciad daemon) fans a query's
// iterations out to a group of shard worker processes; each worker owns
// a contiguous vertex block of the registered graph, runs the
// rank-local DP (dist.Engine.RunRank) and exchanges boundary-vertex
// passive rows with its peers over length-prefixed binary TCP framing,
// in the precomputed needs-list order, with the per-node exchange
// pipelined (packets for later DP steps travel while earlier steps
// compute) and sends grouped adaptively per Chen et al.
// (arXiv:1804.09764). Per-iteration estimates are bit-identical to the
// in-process engine under the same seed, which keeps the serving
// layer's MergeIterations and seed-keyed cache contracts intact across
// local and sharded execution.
//
// Failure handling is part of the protocol contract: losing a shard
// connection marks the iterations it had not finished as failed; the
// coordinator re-dispatches them to the surviving shards (the dead
// shard excluded from the new group), and bit-identity across group
// sizes makes the retry invisible in the estimate stream. SIGTERM on a
// worker drains: in-flight exchanges run to completion, new runs are
// refused.
package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const (
	// wireMagic opens every hello so a stray connection to the shard
	// port fails fast instead of hanging the accept loop.
	wireMagic = uint32(0xfa5c1a5d)
	// wireVersion gates protocol compatibility.
	wireVersion = 1
	// maxFrameBytes bounds a single frame: a hostile or corrupt length
	// prefix may force at most one bounded allocation. Row packets for
	// huge needs lists dominate legitimate sizes; 1 GiB is far above any
	// real packet and far below an allocation that could hurt.
	maxFrameBytes = 1 << 30
)

// msgType tags a frame.
type msgType byte

const (
	msgHello msgType = iota + 1
	msgHelloOK
	msgRun
	msgIter
	msgDone
	msgErr
	msgRows
)

// Connection kinds carried in hello frames.
const (
	kindControl = byte(0) // coordinator → worker: one run per connection
	kindPeer    = byte(1) // worker → worker: row packets for one run
)

// hello opens every connection.
type hello struct {
	Kind      byte
	GraphHash uint64 // control: the graph the run will count over
	RunID     uint64 // peer: the run this connection belongs to
	Rank      uint32 // peer: the dialing worker's rank in the run
}

// helloOK acknowledges a hello; N echoes the worker's local vertex
// count for control connections so the coordinator can cross-check.
type helloOK struct {
	N uint32
}

// runRequest asks a worker to run a contiguous iteration range as one
// rank of a shard group.
type runRequest struct {
	RunID     uint64
	GraphHash uint64
	Rank      uint32
	Ranks     uint32
	Colors    uint32 // 0 = template size
	Strategy  uint32 // part.Strategy
	Seed      int64  // base seed: iteration i colors with Seed+i
	Iters     uint32
	TK        uint32   // template vertex count (edge specs can't express k=1)
	Template  string   // edge-list spec, vertex numbering preserved
	Labels    []int32  // nil = unlabeled template
	Peers     []string // shard addresses by rank; Peers[Rank] is self
}

// iterMsg streams one completed iteration's rank-local total back to
// the coordinator.
type iterMsg struct {
	Iter  uint32
	Total float64
}

// doneMsg closes a successful run with its transport accounting.
type doneMsg struct {
	Messages  int64
	CommBytes int64
	MaxRows   uint32
	// Groups and GroupedFrames describe the adaptive group sizing of the
	// pipelined sender: GroupedFrames frames left in Groups flushes.
	Groups        uint32
	GroupedFrames uint32
}

// rowsMsg carries one needs-list packet between peers.
type rowsMsg struct {
	Iter uint32
	Step uint32
	Rows [][]float64
}

// wbuf is an append-only little-endian encode buffer.
type wbuf struct{ b []byte }

func (w *wbuf) u8(x byte)     { w.b = append(w.b, x) }
func (w *wbuf) u32(x uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, x) }
func (w *wbuf) u64(x uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, x) }
func (w *wbuf) i64(x int64)   { w.u64(uint64(x)) }
func (w *wbuf) f64(x float64) { w.u64(math.Float64bits(x)) }
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// rbuf is a sticky-error little-endian decode buffer.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("shard: truncated frame at offset %d of %d", r.off, len(r.b))
	}
}

func (r *rbuf) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	x := r.b[r.off]
	r.off++
	return x
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	x := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return x
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	x := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return x
}

func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *rbuf) str() string {
	n := r.u32()
	if r.err != nil || r.off+int(n) > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// writeFrame ships one length-prefixed frame: u32 length (type byte +
// payload), type byte, payload. The writer is typically buffered; the
// caller decides when to flush (the adaptive grouping lever).
func writeFrame(w io.Writer, t msgType, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, bounding the allocation by maxFrameBytes.
func readFrame(r *bufio.Reader) (msgType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("shard: frame length %d outside [1, %d]", n, maxFrameBytes)
	}
	var tb [1]byte
	if _, err := io.ReadFull(r, tb[:]); err != nil {
		return 0, nil, err
	}
	if n == 1 {
		return msgType(tb[0]), nil, nil
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return msgType(tb[0]), payload, nil
}

func encodeHello(h hello) []byte {
	var w wbuf
	w.u32(wireMagic)
	w.u8(wireVersion)
	w.u8(h.Kind)
	w.u64(h.GraphHash)
	w.u64(h.RunID)
	w.u32(h.Rank)
	return w.b
}

func decodeHello(b []byte) (hello, error) {
	r := rbuf{b: b}
	if magic := r.u32(); r.err == nil && magic != wireMagic {
		return hello{}, fmt.Errorf("shard: bad hello magic %#x", magic)
	}
	if v := r.u8(); r.err == nil && v != wireVersion {
		return hello{}, fmt.Errorf("shard: protocol version %d, want %d", v, wireVersion)
	}
	h := hello{Kind: r.u8(), GraphHash: r.u64(), RunID: r.u64(), Rank: r.u32()}
	return h, r.err
}

func encodeHelloOK(h helloOK) []byte {
	var w wbuf
	w.u32(h.N)
	return w.b
}

func decodeHelloOK(b []byte) (helloOK, error) {
	r := rbuf{b: b}
	h := helloOK{N: r.u32()}
	return h, r.err
}

func encodeRun(q runRequest) []byte {
	var w wbuf
	w.u64(q.RunID)
	w.u64(q.GraphHash)
	w.u32(q.Rank)
	w.u32(q.Ranks)
	w.u32(q.Colors)
	w.u32(q.Strategy)
	w.i64(q.Seed)
	w.u32(q.Iters)
	w.u32(q.TK)
	w.str(q.Template)
	if q.Labels == nil {
		w.u8(0)
	} else {
		w.u8(1)
		w.u32(uint32(len(q.Labels)))
		for _, l := range q.Labels {
			w.u32(uint32(l))
		}
	}
	w.u32(uint32(len(q.Peers)))
	for _, p := range q.Peers {
		w.str(p)
	}
	return w.b
}

// maxWireRanks bounds the decoded group size; a corrupt frame may force
// at most this many slice elements before lengths are revalidated.
const maxWireRanks = 4096

func decodeRun(b []byte) (runRequest, error) {
	r := rbuf{b: b}
	q := runRequest{
		RunID:     r.u64(),
		GraphHash: r.u64(),
		Rank:      r.u32(),
		Ranks:     r.u32(),
		Colors:    r.u32(),
		Strategy:  r.u32(),
		Seed:      r.i64(),
		Iters:     r.u32(),
		TK:        r.u32(),
		Template:  r.str(),
	}
	if r.u8() == 1 {
		n := r.u32()
		// Each label is 4 wire bytes, so bound the count by the bytes
		// actually remaining — n <= len(b) allowed a 4x allocation
		// amplification from a truncated frame.
		if r.err == nil && int(n) <= (len(b)-r.off)/4 {
			q.Labels = make([]int32, 0, n)
			for i := uint32(0); i < n; i++ {
				q.Labels = append(q.Labels, int32(r.u32()))
			}
		} else {
			r.fail()
		}
	}
	np := r.u32()
	if r.err == nil && np <= maxWireRanks {
		q.Peers = make([]string, 0, np)
		for i := uint32(0); i < np; i++ {
			q.Peers = append(q.Peers, r.str())
		}
	} else {
		r.fail()
	}
	if r.err != nil {
		return runRequest{}, r.err
	}
	if q.Ranks < 1 || q.Ranks > maxWireRanks || q.Rank >= q.Ranks || len(q.Peers) != int(q.Ranks) {
		return runRequest{}, fmt.Errorf("shard: inconsistent run request (rank %d of %d, %d peers)", q.Rank, q.Ranks, len(q.Peers))
	}
	return q, nil
}

func encodeIter(m iterMsg) []byte {
	var w wbuf
	w.u32(m.Iter)
	w.f64(m.Total)
	return w.b
}

func decodeIter(b []byte) (iterMsg, error) {
	r := rbuf{b: b}
	m := iterMsg{Iter: r.u32(), Total: r.f64()}
	return m, r.err
}

func encodeDone(m doneMsg) []byte {
	var w wbuf
	w.i64(m.Messages)
	w.i64(m.CommBytes)
	w.u32(m.MaxRows)
	w.u32(m.Groups)
	w.u32(m.GroupedFrames)
	return w.b
}

func decodeDone(b []byte) (doneMsg, error) {
	r := rbuf{b: b}
	m := doneMsg{Messages: r.i64(), CommBytes: r.i64(), MaxRows: r.u32(), Groups: r.u32(), GroupedFrames: r.u32()}
	return m, r.err
}

func encodeErr(msg string) []byte {
	var w wbuf
	w.str(msg)
	return w.b
}

func decodeErr(b []byte) (string, error) {
	r := rbuf{b: b}
	s := r.str()
	return s, r.err
}

// encodeRows serializes a packet in needs-list order: nil rows cost 4
// bytes (width -1), present rows a width header plus 8 bytes per value.
func encodeRows(m rowsMsg) []byte {
	size := 12
	for _, row := range m.Rows {
		size += 4 + 8*len(row)
	}
	w := wbuf{b: make([]byte, 0, size)}
	w.u32(m.Iter)
	w.u32(m.Step)
	w.u32(uint32(len(m.Rows)))
	for _, row := range m.Rows {
		if row == nil {
			w.u32(^uint32(0)) // -1: vertex has no counts
			continue
		}
		w.u32(uint32(len(row)))
		for _, x := range row {
			w.f64(x)
		}
	}
	return w.b
}

func decodeRows(b []byte) (rowsMsg, error) {
	r := rbuf{b: b}
	m := rowsMsg{Iter: r.u32(), Step: r.u32()}
	n := r.u32()
	// Every row costs at least its 4-byte width header on the wire, so
	// the count can never exceed the remaining bytes over 4. The looser
	// n <= len(b) floor let a 1 MiB frame force a 24 MiB row-header
	// allocation (24 bytes per slice header) before the first width
	// read failed.
	if r.err != nil || int(n) > (len(b)-r.off)/4 {
		r.fail()
		return rowsMsg{}, r.err
	}
	m.Rows = make([][]float64, n)
	for i := range m.Rows {
		width := r.u32()
		if width == ^uint32(0) {
			continue
		}
		if r.err != nil || r.off+8*int(width) > len(b) {
			r.fail()
			return rowsMsg{}, r.err
		}
		row := make([]float64, width)
		for j := range row {
			row[j] = r.f64()
		}
		m.Rows[i] = row
	}
	return m, r.err
}
