package shard

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/dist"
)

// groupBudgetBytes is the adaptive-grouping flush threshold for the
// pipelined sender: queued row frames accumulate in the socket buffer
// until either the link goes idle (nothing else queued — latency wins)
// or this many payload bytes are pending (bandwidth wins). Small
// packets therefore coalesce into large writes while big packets flush
// immediately — the effective group size adapts to the packet size, per
// the grouped-communication scheme of Chen et al. (arXiv:1804.09764).
const groupBudgetBytes = 128 << 10

// outFrame is one queued send on a peer link.
type outFrame struct {
	payload []byte
	// bytes is the dist cost-model payload size (8/value + 4/id), used
	// for grouping decisions so the adaptive sizing is transport-honest.
	bytes int64
}

// sendQueueDepth bounds the pipelined send queue per link. The eager
// sender ships each DP node's rows once, so at most one packet per
// internal tree node can be queued; 256 covers any template the DP can
// run while still exerting backpressure against a stalled peer.
const sendQueueDepth = 256

// inboxKey addresses a packet slot: the exchange demuxes by (iteration,
// step) because the pipelined eager sender ships packets out of consume
// order, and slow ranks may still be reading iteration i packets while
// fast peers already send iteration i+1.
type inboxKey struct {
	iter uint32
	step uint32
}

// peerLink is one live TCP connection between two ranks of one run.
// The writer goroutine drains out with adaptive group flushing; the
// reader goroutine demuxes row frames into the owning exchange's inbox.
type peerLink struct {
	rank int // remote rank
	conn net.Conn
	// br carries over the handshake's buffered reader: bytes the hello
	// exchange read ahead must not be lost to a fresh buffer.
	br  *bufio.Reader
	out chan outFrame

	closeOnce sync.Once
	// writerDone closes when the writer goroutine has drained (or
	// abandoned) its queue; the reader is reaped separately via wg
	// because it only unblocks once the connection closes.
	writerDone chan struct{}
	wg         sync.WaitGroup

	// Per-link failure: a link breaking (or its peer finishing and
	// closing) must only affect traffic with that peer — a faster rank
	// that completed its iterations closes its connections while slower
	// ranks are still mid-protocol, and that expected EOF must not
	// poison their exchanges with healthy peers. err is guarded by mu
	// (the owning exchange's mutex); broken closes once on first
	// failure.
	err    error
	broken chan struct{}

	// Grouping stats (writer goroutine only, read after wg.Wait).
	groups        int64
	groupedFrames int64
}

func (l *peerLink) close() {
	l.closeOnce.Do(func() { l.conn.Close() })
}

// wireExchange implements dist.Exchange over TCP peer links for one
// run. A single exchange spans all iterations of the run; the worker
// wraps it per iteration (iterExchange) to add the iteration tag the
// dist layer doesn't know about.
type wireExchange struct {
	rank int
	// links is indexed by remote rank; nil for self and never-talking
	// pairs. Slots are written during rendezvous under mu (attach) and
	// read lock-free afterwards by the run-owner goroutine, whose
	// attach calls happen-before its sends/recvs; concurrent readers
	// (abortConns from the cancel watcher) must snapshot under mu.
	links []*peerLink
	comm  *dist.CommStats

	mu    sync.Mutex
	slots map[inboxKey]chan dist.Packet // guarded by mu; cap-1, one packet per key ever

	shutOnce sync.Once
}

func newWireExchange(rank, ranks int, comm *dist.CommStats) *wireExchange {
	return &wireExchange{
		rank:  rank,
		links: make([]*peerLink, ranks),
		comm:  comm,
		slots: map[inboxKey]chan dist.Packet{},
	}
}

// attach wires a peer connection into the exchange and starts its
// reader and writer goroutines. br, when non-nil, is the handshake's
// buffered reader (it may hold read-ahead frames).
func (x *wireExchange) attach(rank int, conn net.Conn, br *bufio.Reader) *peerLink {
	if br == nil {
		br = bufio.NewReaderSize(conn, 64<<10)
	}
	l := &peerLink{
		rank: rank, conn: conn, br: br,
		out:        make(chan outFrame, sendQueueDepth),
		writerDone: make(chan struct{}),
		broken:     make(chan struct{}),
	}
	x.mu.Lock()
	x.links[rank] = l
	x.mu.Unlock()
	l.wg.Add(1)
	go x.writeLoop(l)
	go x.readLoop(l)
	return l
}

// fail records a link's first transport error and wakes every send or
// recv blocked on that link.
func (x *wireExchange) fail(l *peerLink, err error) {
	x.mu.Lock()
	if l.err == nil {
		l.err = err
		close(l.broken)
	}
	x.mu.Unlock()
}

func (x *wireExchange) linkErr(l *peerLink) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return l.err
}

func (x *wireExchange) slot(key inboxKey) chan dist.Packet {
	x.mu.Lock()
	ch, ok := x.slots[key]
	if !ok {
		ch = make(chan dist.Packet, 1)
		x.slots[key] = ch
	}
	x.mu.Unlock()
	return ch
}

// writeLoop drains the link's send queue into the socket with adaptive
// group flushing: keep appending frames while more are queued and the
// pending group is under budget, flush when the queue idles or the
// budget fills.
func (x *wireExchange) writeLoop(l *peerLink) {
	defer close(l.writerDone)
	bw := bufio.NewWriterSize(l.conn, 64<<10)
	var pending int64
	var pendingFrames int64
	flush := func() error {
		if pendingFrames == 0 {
			return nil
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		l.groups++
		l.groupedFrames += pendingFrames
		pending, pendingFrames = 0, 0
		return nil
	}
	for f := range l.out {
		if err := writeFrame(bw, msgRows, f.payload); err != nil {
			x.fail(l, fmt.Errorf("shard: send to rank %d: %w", l.rank, err))
			go drainOut(l.out)
			return
		}
		pending += f.bytes
		pendingFrames++
		if len(l.out) == 0 || pending >= groupBudgetBytes {
			if err := flush(); err != nil {
				x.fail(l, fmt.Errorf("shard: flush to rank %d: %w", l.rank, err))
				go drainOut(l.out)
				return
			}
		}
	}
	if err := flush(); err != nil {
		x.fail(l, fmt.Errorf("shard: flush to rank %d: %w", l.rank, err))
	}
}

// drainOut keeps a dead link's queue from blocking senders until the
// exchange's failure propagates to the DP loop.
func drainOut(ch chan outFrame) {
	for range ch {
	}
}

// readLoop demuxes inbound row frames into (iter, step) slots.
func (x *wireExchange) readLoop(l *peerLink) {
	defer l.wg.Done()
	for {
		t, payload, err := readFrame(l.br)
		if err != nil {
			// An EOF here is routine: the peer finished its iterations
			// and closed — everything it ever owed this rank was
			// delivered to the slots first, so only a recv that would
			// still be waiting on this peer surfaces the error.
			x.fail(l, fmt.Errorf("shard: recv from rank %d: %w", l.rank, err))
			return
		}
		if t != msgRows {
			x.fail(l, fmt.Errorf("shard: unexpected frame type %d on peer link to rank %d", t, l.rank))
			return
		}
		m, err := decodeRows(payload)
		if err != nil {
			x.fail(l, fmt.Errorf("shard: malformed rows from rank %d: %w", l.rank, err))
			return
		}
		// Cap-1 slot, one packet per (src-link, iter, step) by protocol;
		// a duplicate means a peer bug — fail instead of deadlocking.
		select {
		case x.slot(slotKey(l.rank, m.Iter, m.Step)) <- dist.Packet{Rows: m.Rows}:
		default:
			x.fail(l, fmt.Errorf("shard: duplicate packet from rank %d for iter %d step %d", l.rank, m.Iter, m.Step))
			return
		}
	}
}

// send queues a packet toward dst for (iter, step).
func (x *wireExchange) send(dst int, iter, step int, pk dist.Packet) error {
	l := x.links[dst]
	if l == nil {
		return fmt.Errorf("shard: rank %d has no link to rank %d", x.rank, dst)
	}
	f := outFrame{
		payload: encodeRows(rowsMsg{Iter: uint32(iter), Step: uint32(step), Rows: pk.Rows}),
		bytes:   pk.PayloadBytes(),
	}
	select {
	case l.out <- f:
	case <-l.broken:
		return x.linkErr(l)
	}
	x.comm.Messages.Add(1)
	x.comm.Bytes.Add(f.bytes)
	return nil
}

// slotKey folds the source rank into the step word: several sources
// legitimately send toward the same (iter, step), so the step alone
// would collide. Steps are bounded by the DP order length (< 2·k) and
// ranks by maxWireRanks, so both fit their halves comfortably.
func slotKey(src int, iter, step uint32) inboxKey {
	return inboxKey{iter, step<<16 | uint32(src)}
}

// recv blocks until the (src, iter, step) packet arrives or the source
// link breaks.
func (x *wireExchange) recv(src, iter, step int) (dist.Packet, error) {
	l := x.links[src]
	if l == nil {
		return dist.Packet{}, fmt.Errorf("shard: rank %d has no link to rank %d", x.rank, src)
	}
	key := slotKey(src, uint32(iter), uint32(step))
	select {
	case pk := <-x.slot(key):
		x.mu.Lock()
		delete(x.slots, key)
		x.mu.Unlock()
		return pk, nil
	case <-l.broken:
		// Drain race: the packet may have landed before the failure
		// (the reader delivers every frame before it can observe EOF).
		select {
		case pk := <-x.slot(key):
			x.mu.Lock()
			delete(x.slots, key)
			x.mu.Unlock()
			return pk, nil
		default:
		}
		return dist.Packet{}, x.linkErr(l)
	}
}

// shutdown tears down every link exactly once: each writer drains and
// flushes its remaining queue (delivering the data peers still need),
// then the connections close and the goroutines are reaped. Safe to
// call from the run-owner goroutine only.
func (x *wireExchange) shutdown() {
	x.shutOnce.Do(func() {
		for _, l := range x.links {
			if l == nil {
				continue
			}
			close(l.out)
		}
		for _, l := range x.links {
			if l == nil {
				continue
			}
			<-l.writerDone // writer flushed (or failed) before the close below
			l.close()
			l.wg.Wait() // reader unblocks on the closed conn
		}
	})
}

// abortConns force-closes every live connection and poisons the
// exchange, unblocking any rank goroutine parked in send or recv. Used
// by cancellation; unlike shutdown it is safe from any goroutine and
// leaves the writer goroutines to exit via their error paths.
func (x *wireExchange) abortConns(err error) {
	x.mu.Lock()
	links := make([]*peerLink, 0, len(x.links))
	for _, l := range x.links {
		if l != nil {
			links = append(links, l)
		}
	}
	x.mu.Unlock()
	for _, l := range links {
		x.fail(l, err)
		l.close()
	}
}

// groupStats sums the adaptive grouping counters across links. Call
// only after closeAll.
func (x *wireExchange) groupStats() (groups, frames int64) {
	for _, l := range x.links {
		if l == nil {
			continue
		}
		groups += l.groups
		frames += l.groupedFrames
	}
	return groups, frames
}

// iterExchange adapts wireExchange to dist.Exchange for one iteration.
type iterExchange struct {
	x    *wireExchange
	iter int
}

func (e iterExchange) Send(dst, step int, pk dist.Packet) error {
	return e.x.send(dst, e.iter, step, pk)
}

func (e iterExchange) Recv(src, step int) (dist.Packet, error) {
	return e.x.recv(src, e.iter, step)
}
