// Direct combinatorial counters for the size-3/4 motif zoo. Each
// counter is a closed-form or enumeration formula independent of the
// backtracking searcher in exact.go, so the two act as mutual oracles:
// the differential harness checks CountMotif == Count on small random
// graphs, then uses CountMotif (cheap) as the reference the color-coding
// estimates must approach. All counts are non-induced occurrences
// (subgraph copies, not induced subgraphs), matching Count's semantics.

package exact

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tmpl"
)

// CountMotif returns the exact non-induced occurrence count of the named
// zoo motif (any name accepted by tmpl.Zoo) using a direct combinatorial
// counter rather than backtracking.
func CountMotif(g *graph.Graph, name string) (int64, error) {
	switch name {
	case "triangle":
		return CountTriangles(g), nil
	case "path3":
		return CountPaths3(g), nil
	case "star3":
		return CountStars3(g), nil
	case "c4":
		return CountCycles4(g), nil
	case "diamond":
		return CountDiamonds(g), nil
	case "tailed-triangle", "paw":
		return CountTailedTriangles(g), nil
	case "k4":
		return CountCliques4(g), nil
	default:
		return 0, fmt.Errorf("exact: no direct counter for motif %q (zoo: %v)", name, tmpl.ZooNames())
	}
}

// ZooCounts returns the counts of every zoo motif, in tmpl.ZooNames()
// order.
func ZooCounts(g *graph.Graph) []int64 {
	names := tmpl.ZooNames()
	out := make([]int64, len(names))
	for i, name := range names {
		c, err := CountMotif(g, name)
		if err != nil {
			panic(err) // zoo names always have counters
		}
		out[i] = c
	}
	return out
}

func choose2(n int64) int64 { return n * (n - 1) / 2 }
func choose3(n int64) int64 { return n * (n - 1) * (n - 2) / 6 }

// CountPaths3 counts 3-vertex paths: one wedge per choice of a center and
// two distinct neighbors.
func CountPaths3(g *graph.Graph) int64 {
	var total int64
	for v := int32(0); v < int32(g.N()); v++ {
		total += choose2(int64(g.Degree(v)))
	}
	return total
}

// CountStars3 counts 3-leaf stars (K_{1,3}): a center and three distinct
// neighbors.
func CountStars3(g *graph.Graph) int64 {
	var total int64
	for v := int32(0); v < int32(g.N()); v++ {
		total += choose3(int64(g.Degree(v)))
	}
	return total
}

// forEachTriangle calls fn once per triangle, with u < v < w. The
// enumeration marks u's adjacency and scans each forward neighbor v's
// forward adjacency for marked vertices.
func forEachTriangle(g *graph.Graph, fn func(u, v, w int32)) {
	n := int32(g.N())
	mark := make([]bool, n)
	for u := int32(0); u < n; u++ {
		adjU := g.Adj(u)
		for _, v := range adjU {
			if v > u {
				mark[v] = true
			}
		}
		for _, v := range adjU {
			if v <= u {
				continue
			}
			for _, w := range g.Adj(v) {
				if w > v && mark[w] {
					fn(u, v, w)
				}
			}
		}
		for _, v := range adjU {
			if v > u {
				mark[v] = false
			}
		}
	}
}

// CountTriangles counts triangles by direct enumeration — an independent
// implementation of graph.Triangles (which rank-orders by degree) used to
// cross-check it.
func CountTriangles(g *graph.Graph) int64 {
	var total int64
	forEachTriangle(g, func(u, v, w int32) { total++ })
	return total
}

// CountTailedTriangles counts paws (a triangle plus a pendant edge): for
// each triangle, any neighbor of a corner other than the two remaining
// corners provides the tail.
func CountTailedTriangles(g *graph.Graph) int64 {
	var total int64
	forEachTriangle(g, func(u, v, w int32) {
		total += int64(g.Degree(u)) + int64(g.Degree(v)) + int64(g.Degree(w)) - 6
	})
	return total
}

// CountCliques4 counts K4s: for each triangle u<v<w, each common
// neighbor x > w completes a clique counted exactly once at its sorted
// vertex order.
func CountCliques4(g *graph.Graph) int64 {
	var total int64
	forEachTriangle(g, func(u, v, w int32) {
		for _, x := range g.Adj(w) {
			if x > w && g.HasEdge(x, u) && g.HasEdge(x, v) {
				total++
			}
		}
	})
	return total
}

// CountDiamonds counts diamonds (K4 minus an edge): a chord edge (u,v)
// plus an unordered pair of common neighbors. The chord is determined by
// a diamond copy's edge set, so each copy is counted once.
func CountDiamonds(g *graph.Graph) int64 {
	n := int32(g.N())
	mark := make([]bool, n)
	var total int64
	for u := int32(0); u < n; u++ {
		for _, x := range g.Adj(u) {
			mark[x] = true
		}
		for _, v := range g.Adj(u) {
			if v <= u {
				continue // one direction per edge
			}
			var codeg int64
			for _, x := range g.Adj(v) {
				if x != u && mark[x] {
					codeg++
				}
			}
			total += choose2(codeg)
		}
		for _, x := range g.Adj(u) {
			mark[x] = false
		}
	}
	return total
}

// CountCycles4 counts 4-cycles via two-hop path counting: for each
// vertex u, paths2[x] is the number of length-2 walks u-w-x with x > u
// (w unconstrained, w != u, w != x automatic on simple graphs); each
// unordered diagonal pair {u,x} then closes C(paths2[x], 2) cycles, and
// each 4-cycle owns two diagonal pairs.
func CountCycles4(g *graph.Graph) int64 {
	n := int32(g.N())
	paths2 := make([]int64, n)
	touched := make([]int32, 0, 64)
	var twice int64
	for u := int32(0); u < n; u++ {
		touched = touched[:0]
		for _, w := range g.Adj(u) {
			for _, x := range g.Adj(w) {
				if x > u {
					if paths2[x] == 0 {
						touched = append(touched, x)
					}
					paths2[x]++
				}
			}
		}
		for _, x := range touched {
			twice += choose2(paths2[x])
			paths2[x] = 0
		}
	}
	return twice / 2
}
