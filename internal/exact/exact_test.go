package exact

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tmpl"
)

func complete(n int) *graph.Graph {
	var edges [][2]int32
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func pathG(n int) *graph.Graph {
	var edges [][2]int32
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	return graph.MustFromEdges(n, edges, nil)
}

func choose(n, r int64) int64 {
	num := int64(1)
	for i := int64(0); i < r; i++ {
		num = num * (n - i) / (i + 1)
	}
	return num
}

func TestCountPathsInCompleteGraph(t *testing.T) {
	// Occurrences of P_k in K_n: C(n,k) * k!/2.
	for _, k := range []int{2, 3, 4} {
		for _, n := range []int{4, 5, 6} {
			fact := int64(1)
			for i := 2; i <= k; i++ {
				fact *= int64(i)
			}
			want := choose(int64(n), int64(k)) * fact / 2
			if got := Count(complete(n), tmpl.Path(k)); got != want {
				t.Errorf("P%d in K%d = %d, want %d", k, n, got, want)
			}
		}
	}
}

func TestCountStarsInCompleteGraph(t *testing.T) {
	// Occurrences of S_k (star with k-1 leaves) in K_n: n * C(n-1, k-1).
	for _, k := range []int{3, 4, 5} {
		n := 6
		want := int64(n) * choose(int64(n-1), int64(k-1))
		if got := Count(complete(n), tmpl.Star(k)); got != want {
			t.Errorf("S%d in K%d = %d, want %d", k, n, got, want)
		}
	}
}

func TestCountPathsInPath(t *testing.T) {
	// P_k occurs exactly n-k+1 times in P_n.
	for _, k := range []int{2, 3, 5} {
		n := 9
		if got := Count(pathG(n), tmpl.Path(k)); got != int64(n-k+1) {
			t.Errorf("P%d in path-%d = %d, want %d", k, n, got, n-k+1)
		}
	}
}

func TestCountSingleVertex(t *testing.T) {
	g := pathG(5)
	if got := Count(g, tmpl.MustTree("k1", 1, nil, nil)); got != 5 {
		t.Fatalf("K1 count = %d, want 5", got)
	}
}

func TestCountMappingsVsCount(t *testing.T) {
	g := complete(5)
	p3 := tmpl.Path(3)
	if CountMappings(g, p3) != 2*Count(g, p3) {
		t.Fatal("mappings should be aut × occurrences for P3")
	}
}

func TestCountLabeled(t *testing.T) {
	// Path 0-1-2 with labels: graph a(0)-b(1)-a(2)-b(3).
	g := graph.MustFromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}}, []int32{0, 1, 0, 1})
	aba, _ := tmpl.Path(3).WithLabels("aba", []int32{0, 1, 0})
	bab, _ := tmpl.Path(3).WithLabels("bab", []int32{1, 0, 1})
	aab, _ := tmpl.Path(3).WithLabels("aab", []int32{0, 0, 1})
	if got := Count(g, aba); got != 1 {
		t.Errorf("aba count = %d, want 1", got)
	}
	if got := Count(g, bab); got != 1 {
		t.Errorf("bab count = %d, want 1", got)
	}
	if got := Count(g, aab); got != 0 {
		t.Errorf("aab count = %d, want 0", got)
	}
}

func TestCountColorfulMappings(t *testing.T) {
	// Triangle graph with rainbow coloring: P3 has 6 mappings, all
	// colorful; with colors {0,0,1} only mappings avoiding the repeated
	// color pair survive.
	g := graph.MustFromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}}, nil)
	p3 := tmpl.Path(3)
	if got := CountColorfulMappings(g, p3, []int8{0, 1, 2}); got != 6 {
		t.Errorf("rainbow colorful = %d, want 6", got)
	}
	if got := CountColorfulMappings(g, p3, []int8{0, 0, 1}); got != 0 {
		t.Errorf("two-color colorful on 3 distinct vertices = %d, want 0", got)
	}
	if got := CountMappings(g, p3); got != 6 {
		t.Errorf("total mappings = %d, want 6", got)
	}
}

func TestCountColorfulNeverExceedsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomG(rng, 12, 20)
	tr := tmpl.Path(4)
	colors := make([]int8, g.N())
	for i := range colors {
		colors[i] = int8(rng.Intn(4))
	}
	if CountColorfulMappings(g, tr, colors) > CountMappings(g, tr) {
		t.Fatal("colorful count exceeds total")
	}
}

func randomG(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func TestCountRootedMappings(t *testing.T) {
	// P3 in a path of 4: rooted at template center (vertex 1), the count
	// at graph vertex v is the number of P3 mappings with center at v.
	g := pathG(4)
	per := CountRootedMappings(g, tmpl.Path(3), 1)
	want := []int64{0, 2, 2, 0} // centers must be inner vertices; ×2 for flips
	for v, w := range want {
		if per[v] != w {
			t.Errorf("rooted count at %d = %d, want %d", v, per[v], w)
		}
	}
	// Sums across vertices equal total mappings.
	var sum int64
	for _, x := range per {
		sum += x
	}
	if sum != CountMappings(g, tmpl.Path(3)) {
		t.Fatal("rooted counts do not sum to total mappings")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := complete(6)
	calls := 0
	Enumerate(g, tmpl.Path(3), func(m []int32) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop after %d calls, want 5", calls)
	}
}

func TestEnumerateMappingsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomG(rng, 10, 18)
	tr := tmpl.Spider(2, 1, 1)
	count := 0
	Enumerate(g, tr, func(m []int32) bool {
		count++
		seen := map[int32]bool{}
		for _, v := range m {
			if seen[v] {
				t.Fatal("duplicate vertex in mapping")
			}
			seen[v] = true
		}
		for _, e := range tr.Edges() {
			if !g.HasEdge(m[e[0]], m[e[1]]) {
				t.Fatal("template edge missing in graph")
			}
		}
		return true
	})
	if int64(count) != CountMappings(g, tr) {
		t.Fatalf("enumerated %d mappings, count says %d", count, CountMappings(g, tr))
	}
}

func TestCountInducedVsNonInduced(t *testing.T) {
	// Figure 1's point: non-induced counts dominate induced ones. In
	// K_4, P3 occurs 12 times non-induced but 0 times induced (every
	// vertex triple has all three edges).
	g := complete(4)
	p3 := tmpl.Path(3)
	if got := Count(g, p3); got != 12 {
		t.Fatalf("non-induced P3 in K4 = %d, want 12", got)
	}
	if got := CountInduced(g, p3); got != 0 {
		t.Fatalf("induced P3 in K4 = %d, want 0", got)
	}
	// In a path graph every occurrence is induced.
	pg := pathG(6)
	if CountInduced(pg, p3) != Count(pg, p3) {
		t.Fatal("path graph: induced and non-induced should agree")
	}
}

func TestCountInducedStarInWheel(t *testing.T) {
	// Wheel graph (C5 plus a hub): S4 occurs 10 times centered at the
	// hub (any 3 of 5 rim vertices) and once per rim vertex (its two
	// cycle neighbors plus the hub), 15 total non-induced. None is
	// induced: any 3 rim vertices include a cycle-adjacent pair, and the
	// rim-centered stars contain hub-rim chords.
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	for i := int32(0); i < 5; i++ {
		edges = append(edges, [2]int32{5, i})
	}
	g := graph.MustFromEdges(6, edges, nil)
	s4 := tmpl.Star(4)
	induced := CountInduced(g, s4)
	nonInduced := Count(g, s4)
	if induced >= nonInduced {
		t.Fatalf("induced %d should be < non-induced %d", induced, nonInduced)
	}
	// Hub stars: C(5,3) = 10 non-induced from the hub; each rim vertex
	// has degree 3 -> C(3,2)... wait, S4 needs center degree 3: rim
	// degree is 3 (two cycle + hub): C(3,3) = 1 per rim vertex = 5.
	if nonInduced != 15 {
		t.Fatalf("non-induced S4 = %d, want 15", nonInduced)
	}
	if induced != 0 {
		t.Fatalf("induced S4 = %d, want 0 (every triple hits an edge)", induced)
	}
}
