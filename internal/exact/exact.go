// Package exact provides exhaustive (exponential-time) counting and
// enumeration of non-induced template occurrences by ordered
// backtracking. Templates may be arbitrary connected graphs: tree edges
// guide the search (each vertex after the first extends from its BFS
// parent's adjacency) and the remaining template edges are enforced as
// back-edge checks against already-placed vertices. The package serves
// two roles in the reproduction: the paper's "naïve exact count"
// baseline used in the error and comparison experiments, and the
// ground-truth oracle for validating the color-coding dynamic programs
// (including exact colorful-count equivalence under a fixed coloring).
// For the size-3/4 motif zoo, motifs.go supplies independent
// closed-form counters cross-checked against the searcher.
package exact

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tmpl"
)

// searcher holds the state of one backtracking run.
type searcher struct {
	g     *graph.Graph
	t     *tmpl.Template
	order []int // template vertices in BFS order from vertex 0
	par   []int // par[i]: position in order of the BFS parent of order[i]

	// backChecks[i]: positions of earlier-placed template neighbors of
	// order[i] other than its BFS parent. Empty at every position for tree
	// templates; for templates with cycles these carry the non-tree edges.
	backChecks [][]int

	assign []int32 // assign[i]: graph vertex for order[i]
	used   map[int32]bool

	colors   []int8 // when non-nil, only count rainbow (colorful) mappings
	colorBit uint64

	count int64
	visit func(mapping []int32) bool // optional; return false to stop
	stop  bool
}

func newSearcher(g *graph.Graph, t *tmpl.Template) *searcher {
	k := t.K()
	s := &searcher{
		g:      g,
		t:      t,
		order:  make([]int, 0, k),
		par:    make([]int, k),
		assign: make([]int32, k),
		used:   make(map[int32]bool, k),
	}
	// BFS order over the template so each vertex (after the first) has
	// its parent already placed.
	seen := make([]bool, k)
	s.order = append(s.order, 0)
	seen[0] = true
	s.par[0] = -1
	for i := 0; i < len(s.order); i++ {
		v := s.order[i]
		for _, u := range t.Adj(v) {
			if !seen[u] {
				seen[u] = true
				s.par[len(s.order)] = i
				s.order = append(s.order, int(u))
			}
		}
	}
	// Record every template edge not covered by the BFS tree as a back
	// check at the later endpoint's position.
	s.backChecks = make([][]int, k)
	pos := make([]int, k)
	for i, v := range s.order {
		pos[v] = i
	}
	for i, v := range s.order {
		for _, u := range t.Adj(v) {
			if j := pos[u]; j < i && j != s.par[i] {
				s.backChecks[i] = append(s.backChecks[i], j)
			}
		}
	}
	return s
}

func (s *searcher) labelOK(tv int, gv int32) bool {
	return !s.t.Labeled() || s.g.Label(gv) == s.t.Label(tv)
}

func (s *searcher) recurse(pos int) {
	if s.stop {
		return
	}
	k := s.t.K()
	if pos == k {
		s.count++
		if s.visit != nil {
			m := make([]int32, k)
			for i, tv := range s.order {
				m[tv] = s.assign[i]
			}
			if !s.visit(m) {
				s.stop = true
			}
		}
		return
	}
	tv := s.order[pos]
	try := func(gv int32) {
		if s.used[gv] || !s.labelOK(tv, gv) {
			return
		}
		for _, j := range s.backChecks[pos] {
			if !s.g.HasEdge(gv, s.assign[j]) {
				return
			}
		}
		if s.colors != nil {
			bit := uint64(1) << uint(s.colors[gv])
			if s.colorBit&bit != 0 {
				return
			}
			s.colorBit |= bit
			defer func() { s.colorBit &^= bit }()
		}
		s.used[gv] = true
		s.assign[pos] = gv
		s.recurse(pos + 1)
		delete(s.used, gv)
	}
	if pos == 0 {
		for gv := int32(0); gv < int32(s.g.N()); gv++ {
			try(gv)
			if s.stop {
				return
			}
		}
		return
	}
	parent := s.assign[s.par[pos]]
	for _, gv := range s.g.Adj(parent) {
		try(gv)
		if s.stop {
			return
		}
	}
}

// CountMappings returns the exact number of injective homomorphisms
// (mappings) of the template into g. Each non-induced occurrence is
// counted once per automorphism of the template.
func CountMappings(g *graph.Graph, t *tmpl.Template) int64 {
	s := newSearcher(g, t)
	s.recurse(0)
	return s.count
}

// Count returns the exact number of non-induced occurrences of the
// template in g: CountMappings divided by |Aut(T)|.
func Count(g *graph.Graph, t *tmpl.Template) int64 {
	m := CountMappings(g, t)
	aut := t.Automorphisms()
	if m%aut != 0 {
		// Cannot happen for correct automorphism counts; guard loudly.
		panic(fmt.Sprintf("exact: mapping count %d not divisible by aut %d", m, aut))
	}
	return m / aut
}

// CountColorfulMappings returns the exact number of mappings whose image
// vertices all have distinct colors under the given coloring — the
// ground truth for the color-coding DP's per-iteration total. colors must
// assign each graph vertex a color in [0, 64).
func CountColorfulMappings(g *graph.Graph, t *tmpl.Template, colors []int8) int64 {
	if len(colors) != g.N() {
		panic("exact: coloring length mismatch")
	}
	s := newSearcher(g, t)
	s.colors = colors
	s.recurse(0)
	return s.count
}

// CountRootedMappings returns, per graph vertex v, the number of mappings
// that send template vertex root to v — the exact analogue of the DP's
// per-vertex root-table sums (used by graphlet-degree ground truth).
func CountRootedMappings(g *graph.Graph, t *tmpl.Template, root int) []int64 {
	out := make([]int64, g.N())
	s := newSearcher(g, t)
	s.visit = func(m []int32) bool {
		out[m[root]]++
		return true
	}
	s.recurse(0)
	return out
}

// Enumerate calls visit for every mapping of the template into g, until
// visit returns false. The mapping slice passed to visit is owned by the
// callback (a fresh copy per call); mapping[i] is the graph vertex of
// template vertex i.
func Enumerate(g *graph.Graph, t *tmpl.Template, visit func(mapping []int32) bool) {
	s := newSearcher(g, t)
	s.visit = visit
	s.recurse(0)
}

// CountInducedMappings returns the number of injective mappings of the
// template whose image is an induced copy: no graph edge may exist
// between image vertices beyond those required by the template (the
// distinction of the paper's Figure 1; color coding itself counts
// non-induced occurrences).
func CountInducedMappings(g *graph.Graph, t *tmpl.Template) int64 {
	var count int64
	s := newSearcher(g, t)
	required := make(map[[2]int]bool, t.K()-1)
	for _, e := range t.Edges() {
		required[[2]int{e[0], e[1]}] = true
		required[[2]int{e[1], e[0]}] = true
	}
	s.visit = func(m []int32) bool {
		for a := 0; a < t.K(); a++ {
			for b := a + 1; b < t.K(); b++ {
				if !required[[2]int{a, b}] && g.HasEdge(m[a], m[b]) {
					return true // extra edge: not induced
				}
			}
		}
		count++
		return true
	}
	s.recurse(0)
	return count
}

// CountInduced returns the exact number of induced occurrences of the
// template: CountInducedMappings divided by |Aut(T)|.
func CountInduced(g *graph.Graph, t *tmpl.Template) int64 {
	m := CountInducedMappings(g, t)
	aut := t.Automorphisms()
	if m%aut != 0 {
		panic(fmt.Sprintf("exact: induced mapping count %d not divisible by aut %d", m, aut))
	}
	return m / aut
}
