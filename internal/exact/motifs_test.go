package exact

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// TestCountMotifMatchesBacktracking is the motif-oracle leg of the
// differential matrix: every zoo motif's closed-form counter must agree
// bit-for-bit with the generalized backtracking searcher on random
// Erdős–Rényi and Barabási–Albert graphs up to 200 vertices.
func TestCountMotifMatchesBacktracking(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er-40", gen.ErdosRenyiM(40, 120, 1)},
		{"er-100", gen.ErdosRenyiM(100, 400, 2)},
		{"er-200-sparse", gen.ErdosRenyiM(200, 500, 3)},
		{"er-200-dense", gen.ErdosRenyiM(200, 1500, 4)},
		{"ba-80", gen.BarabasiAlbert(80, 3, 5)},
		{"ba-200", gen.BarabasiAlbert(200, 2, 6)},
		{"k6", complete(6)},
		{"path-10", pathG(10)},
	}
	for _, gc := range graphs {
		for _, name := range tmpl.ZooNames() {
			direct, err := CountMotif(gc.g, name)
			if err != nil {
				t.Fatalf("CountMotif(%s, %s): %v", gc.name, name, err)
			}
			want := Count(gc.g, tmpl.MustZoo(name))
			if direct != want {
				t.Errorf("%s on %s: direct counter = %d, backtracking = %d",
					name, gc.name, direct, want)
			}
		}
	}
}

// TestCountMotifPinned pins the counters on graphs with hand-computable
// counts.
func TestCountMotifPinned(t *testing.T) {
	// K5: C(5,3)=10 triangles, C(5,4)=5 K4s, 5·C(4,2)=30 paths,
	// 5·C(4,3)=20 stars, 3·C(5,4)=15 C4s (3 cycles per 4-set),
	// diamonds: 6 per 4-set (choose the chord) = 30, paws: each
	// triangle × 3 corners × 2 remaining vertices = 60.
	k5 := complete(5)
	pins := map[string]int64{
		"triangle":        10,
		"path3":           30,
		"star3":           20,
		"c4":              15,
		"diamond":         30,
		"tailed-triangle": 60,
		"k4":              5,
	}
	for name, want := range pins {
		got, err := CountMotif(k5, name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s in K5 = %d, want %d", name, got, want)
		}
	}
	// C6: no triangles, 6 wedges, no stars, one 4-cycle only in C4 itself
	// (C6 has none), no diamonds, no K4s.
	c6 := graph.MustFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, nil)
	for name, want := range map[string]int64{
		"triangle": 0, "path3": 6, "star3": 0, "c4": 0,
		"diamond": 0, "tailed-triangle": 0, "k4": 0,
	} {
		got, _ := CountMotif(c6, name)
		if got != want {
			t.Errorf("%s in C6 = %d, want %d", name, got, want)
		}
	}
}

// TestCountTrianglesCrossCheck checks the motif counter's triangle
// enumeration against graph.Triangles' degree-ordered implementation.
func TestCountTrianglesCrossCheck(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.ErdosRenyiM(150, 900, seed)
		if a, b := CountTriangles(g), g.Triangles(); a != b {
			t.Errorf("seed %d: CountTriangles = %d, graph.Triangles = %d", seed, a, b)
		}
	}
}

// TestZooCountsOrder checks ZooCounts aligns with tmpl.ZooNames.
func TestZooCountsOrder(t *testing.T) {
	g := gen.ErdosRenyiM(60, 200, 9)
	counts := ZooCounts(g)
	names := tmpl.ZooNames()
	if len(counts) != len(names) {
		t.Fatalf("ZooCounts has %d entries, zoo has %d", len(counts), len(names))
	}
	for i, name := range names {
		want, _ := CountMotif(g, name)
		if counts[i] != want {
			t.Errorf("ZooCounts[%d] (%s) = %d, want %d", i, name, counts[i], want)
		}
	}
}

// TestCountMotifUnknown checks the error path names the zoo.
func TestCountMotifUnknown(t *testing.T) {
	if _, err := CountMotif(pathG(3), "pentagon"); err == nil {
		t.Fatal("unknown motif accepted")
	}
}

// TestCountNonTreeTemplates checks the generalized searcher directly on
// non-zoo shapes: C5 in K6 and the 5-cycle graph, where counts are
// hand-computable.
func TestCountNonTreeTemplates(t *testing.T) {
	c5, err := tmpl.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	// C5 in K6: C(6,5) · 5!/10 = 6 · 12 = 72.
	if got := Count(complete(6), c5); got != 72 {
		t.Errorf("C5 in K6 = %d, want 72", got)
	}
	// C5 in C5: exactly one occurrence.
	g := graph.MustFromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, nil)
	if got := Count(g, c5); got != 1 {
		t.Errorf("C5 in C5 = %d, want 1", got)
	}
	// Colorful mappings under a rainbow coloring equal total mappings.
	colors := []int8{0, 1, 2, 3, 4}
	if got, want := CountColorfulMappings(g, c5, colors), CountMappings(g, c5); got != want {
		t.Errorf("rainbow colorful C5 = %d, want %d", got, want)
	}
}
