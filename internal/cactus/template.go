// Package cactus extends counting beyond pure trees to the paper's
// "tree-like graph templates with triangles" (§I, §II-C): templates whose
// biconnected blocks are single edges or triangles (a triangle cactus).
// The dynamic program gains a triangle-merge step — combining a root
// subtemplate with two child subtemplates whose roots must map to
// adjacent graph vertices — and is verified exactly against a
// general-template exhaustive oracle under fixed colorings.
package cactus

import (
	"fmt"
	"sort"
)

// Template is a connected triangle-cactus template: every edge lies in at
// most one cycle and every cycle is a triangle.
type Template struct {
	name  string
	k     int
	adj   [][]int8
	edges [][2]int
	// blocks lists the biconnected blocks: each is either 2 vertices (an
	// edge block) or 3 (a triangle block).
	blocks [][]int
}

// New validates and builds a triangle-cactus template from an undirected
// edge list over vertices 0..k-1.
func New(name string, k int, edges [][2]int) (*Template, error) {
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("cactus: template size %d unsupported (1..16)", k)
	}
	t := &Template{name: name, k: k, adj: make([][]int8, k)}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= k || v >= k || u == v {
			return nil, fmt.Errorf("cactus: bad edge (%d,%d)", u, v)
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return nil, fmt.Errorf("cactus: duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
		t.adj[u] = append(t.adj[u], int8(v))
		t.adj[v] = append(t.adj[v], int8(u))
		t.edges = append(t.edges, [2]int{u, v})
	}
	// Connectivity.
	visited := make([]bool, k)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range t.adj[v] {
			if !visited[u] {
				visited[u] = true
				count++
				stack = append(stack, int(u))
			}
		}
	}
	if count != k {
		return nil, fmt.Errorf("cactus: template not connected")
	}
	if err := t.decomposeBlocks(); err != nil {
		return nil, err
	}
	return t, nil
}

// Must is New for known-valid inputs; panics on error.
func Must(name string, k int, edges [][2]int) *Template {
	t, err := New(name, k, edges)
	if err != nil {
		panic(err)
	}
	return t
}

// decomposeBlocks computes biconnected components via DFS (Hopcroft-
// Tarjan) and verifies each block is an edge or a triangle.
func (t *Template) decomposeBlocks() error {
	k := t.k
	disc := make([]int, k)
	low := make([]int, k)
	for i := range disc {
		disc[i] = -1
	}
	var edgeStack [][2]int
	timer := 0
	var vErr error

	emit := func(until [2]int) {
		verts := map[int]bool{}
		edgeCount := 0
		for {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			verts[e[0]] = true
			verts[e[1]] = true
			edgeCount++
			if e == until {
				break
			}
		}
		vs := make([]int, 0, len(verts))
		for v := range verts {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		t.blocks = append(t.blocks, vs)
		// Valid blocks: a bridge (2 vertices, 1 edge) or a triangle
		// (3 vertices, 3 edges).
		if !(len(vs) == 2 && edgeCount == 1) && !(len(vs) == 3 && edgeCount == 3) && vErr == nil {
			vErr = fmt.Errorf("cactus: block with %d vertices and %d edges is neither an edge nor a triangle", len(vs), edgeCount)
		}
	}

	var dfs func(v, parent int)
	dfs = func(v, parent int) {
		disc[v] = timer
		low[v] = timer
		timer++
		for _, u8 := range t.adj[v] {
			u := int(u8)
			if u == parent {
				continue
			}
			if disc[u] < 0 {
				edgeStack = append(edgeStack, [2]int{v, u})
				dfs(u, v)
				if low[u] < low[v] {
					low[v] = low[u]
				}
				if low[u] >= disc[v] {
					emit([2]int{v, u})
				}
			} else if disc[u] < disc[v] {
				edgeStack = append(edgeStack, [2]int{v, u})
				if disc[u] < low[v] {
					low[v] = disc[u]
				}
			}
		}
	}

	dfs(0, -1)
	if vErr != nil {
		t.blocks = nil
	}
	return vErr
}

// K returns the number of template vertices.
func (t *Template) K() int { return t.k }

// Name returns the template name.
func (t *Template) Name() string { return t.name }

// Edges returns the template's edges.
func (t *Template) Edges() [][2]int { return t.edges }

// Blocks returns the biconnected blocks (sorted vertex lists; length 2 =
// edge block, 3 = triangle block).
func (t *Template) Blocks() [][]int { return t.blocks }

// Triangles returns the number of triangle blocks.
func (t *Template) Triangles() int {
	n := 0
	for _, b := range t.blocks {
		if len(b) == 3 {
			n++
		}
	}
	return n
}

// HasEdge reports whether template vertices a and b are adjacent.
func (t *Template) HasEdge(a, b int) bool {
	for _, u := range t.adj[a] {
		if int(u) == b {
			return true
		}
	}
	return false
}

// Automorphisms counts automorphisms of the template by pruned
// backtracking (templates are tiny: k <= 16 with tree-like structure, so
// the search prunes aggressively on adjacency mismatches).
func (t *Template) Automorphisms() int64 {
	k := t.k
	deg := make([]int, k)
	for v := range t.adj {
		deg[v] = len(t.adj[v])
	}
	perm := make([]int, k)
	used := make([]bool, k)
	var count int64
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			count++
			return
		}
		for img := 0; img < k; img++ {
			if used[img] || deg[img] != deg[i] {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				if t.HasEdge(i, j) != t.HasEdge(img, perm[j]) {
					ok = false
					break
				}
			}
			if ok {
				used[img] = true
				perm[i] = img
				rec(i + 1)
				used[img] = false
			}
		}
	}
	rec(0)
	return count
}

// Triangle returns the 3-cycle template.
func Triangle() *Template {
	return Must("triangle", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
}

// TailedTriangle returns a triangle with a path of tail vertices attached
// to vertex 0.
func TailedTriangle(tail int) *Template {
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	prev := 0
	for i := 0; i < tail; i++ {
		edges = append(edges, [2]int{prev, 3 + i})
		prev = 3 + i
	}
	return Must(fmt.Sprintf("tailed-triangle-%d", tail), 3+tail, edges)
}
