package cactus

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomG(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func complete(n int) *graph.Graph {
	var edges [][2]int32
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func bowtie() *Template {
	// Two triangles sharing vertex 0.
	return Must("bowtie", 5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {3, 4}, {0, 4}})
}

func TestValidation(t *testing.T) {
	// Pure trees are valid cacti.
	if _, err := New("path", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	// Triangle, tailed triangle, bowtie: valid.
	if Triangle().Triangles() != 1 {
		t.Fatal("triangle not recognized")
	}
	if TailedTriangle(2).Triangles() != 1 {
		t.Fatal("tailed triangle not recognized")
	}
	if bowtie().Triangles() != 2 {
		t.Fatal("bowtie should have two triangle blocks")
	}
	// C4 (square): one block with 4 vertices, rejected.
	if _, err := New("c4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}); err == nil {
		t.Fatal("4-cycle accepted")
	}
	// Two triangles sharing an edge (K4 minus an edge): 4-vertex block.
	if _, err := New("diamond", 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}}); err == nil {
		t.Fatal("diamond accepted")
	}
	// Disconnected.
	if _, err := New("disc", 4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Fatal("disconnected accepted")
	}
	// Duplicate edge / self loop / out of range.
	if _, err := New("dup", 3, [][2]int{{0, 1}, {1, 0}, {1, 2}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if _, err := New("loop", 2, [][2]int{{0, 0}, {0, 1}}); err == nil {
		t.Fatal("self loop accepted")
	}
	if _, err := New("oob", 2, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestAutomorphismsKnown(t *testing.T) {
	cases := []struct {
		t    *Template
		want int64
	}{
		{Triangle(), 6},        // S3
		{TailedTriangle(1), 2}, // swap the two free triangle vertices
		{bowtie(), 8},          // 2 per triangle × swap triangles
		{Must("p3", 3, [][2]int{{0, 1}, {1, 2}}), 2},
	}
	for _, c := range cases {
		if got := c.t.Automorphisms(); got != c.want {
			t.Errorf("Aut(%s) = %d, want %d", c.t.Name(), got, c.want)
		}
	}
}

func TestExactTriangleCounts(t *testing.T) {
	// Triangles in K4: C(4,3) = 4; in K5: 10.
	if got := Count(complete(4), Triangle()); got != 4 {
		t.Fatalf("triangles in K4 = %d, want 4", got)
	}
	if got := Count(complete(5), Triangle()); got != 10 {
		t.Fatalf("triangles in K5 = %d, want 10", got)
	}
	// A triangle-free graph has none.
	ring := graph.MustFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, nil)
	if got := Count(ring, Triangle()); got != 0 {
		t.Fatalf("triangles in C6 = %d, want 0", got)
	}
}

// TestCactusColorfulExactEquivalence is the cactus keystone: the DP's
// colorful total must exactly match brute force, for triangle-bearing
// templates on random graphs.
func TestCactusColorfulExactEquivalence(t *testing.T) {
	templates := []*Template{
		Triangle(),
		TailedTriangle(1),
		TailedTriangle(2),
		bowtie(),
		// Triangle with subtrees on two corners.
		Must("tri-tree", 6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}, {4, 5}}),
		// Pure tree handled by the same engine.
		Must("tree", 4, [][2]int{{0, 1}, {1, 2}, {1, 3}}),
	}
	for seed := int64(1); seed <= 6; seed++ {
		n := 12 + int(seed)*3
		g := randomG(rand.New(rand.NewSource(seed)), n, n*3)
		for _, tpl := range templates {
			e, err := NewEngine(g, tpl, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			want := CountColorfulMappings(g, tpl, e.ColoringFor(seed*7))
			got := e.ColorfulTotal(seed * 7)
			if got != float64(want) {
				t.Fatalf("seed %d %s: DP %v, exact %d", seed, tpl.Name(), got, want)
			}
		}
	}
}

func TestCactusEstimateConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomG(rng, 40, 200)
	tpl := TailedTriangle(1)
	want := float64(Count(g, tpl))
	if want == 0 {
		t.Skip("degenerate instance")
	}
	e, err := NewEngine(g, tpl, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(800)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-want)/want > 0.12 {
		t.Fatalf("estimate %.1f, exact %.1f", res.Estimate, want)
	}
}

func TestCactusMatchesTreeEngineOnTrees(t *testing.T) {
	// For pure trees the cactus engine must agree with exhaustive counts
	// exactly per coloring (sanity that edge merges alone are correct).
	rng := rand.New(rand.NewSource(6))
	g := randomG(rng, 20, 50)
	tpl := Must("star4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	e, err := NewEngine(g, tpl, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := CountColorfulMappings(g, tpl, e.ColoringFor(9))
	if got := e.ColorfulTotal(9); got != float64(want) {
		t.Fatalf("tree via cactus engine: %v vs %d", got, want)
	}
}

func TestEngineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomG(rng, 10, 20)
	if _, err := NewEngine(nil, Triangle(), Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewEngine(g, Triangle(), Config{Colors: 2}); err == nil {
		t.Fatal("too few colors accepted")
	}
	e, _ := NewEngine(g, Triangle(), Config{})
	if _, err := e.Run(0); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if e.Automorphisms() != 6 {
		t.Fatal("triangle aut wrong")
	}
}

func TestExtraColorsCactus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomG(rng, 15, 45)
	tpl := TailedTriangle(1)
	e, err := NewEngine(g, tpl, Config{Colors: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := CountColorfulMappings(g, tpl, e.ColoringFor(11))
	if got := e.ColorfulTotal(11); got != float64(want) {
		t.Fatalf("extra colors: DP %v, exact %d", got, want)
	}
}
