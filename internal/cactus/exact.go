package cactus

import (
	"fmt"

	"repro/internal/graph"
)

// CountMappings returns the exact number of injective mappings of the
// cactus template into g by ordered backtracking: every template edge
// (including triangle closures) must map onto a graph edge.
func CountMappings(g *graph.Graph, t *Template) int64 {
	return countMappings(g, t, nil)
}

// CountColorfulMappings counts mappings whose image is rainbow under the
// given coloring — the oracle for the cactus DP.
func CountColorfulMappings(g *graph.Graph, t *Template, colors []int8) int64 {
	if len(colors) != g.N() {
		panic("cactus: coloring length mismatch")
	}
	return countMappings(g, t, colors)
}

// Count returns the exact number of non-induced occurrences: mappings
// divided by the automorphism count.
func Count(g *graph.Graph, t *Template) int64 {
	m := CountMappings(g, t)
	aut := t.Automorphisms()
	if m%aut != 0 {
		panic(fmt.Sprintf("cactus: mapping count %d not divisible by aut %d", m, aut))
	}
	return m / aut
}

func countMappings(g *graph.Graph, t *Template, colors []int8) int64 {
	k := t.K()
	// BFS order; for each position, its parent and the list of earlier
	// template neighbors whose graph edges must be checked.
	order := make([]int, 0, k)
	parentPos := make([]int, k)
	backChecks := make([][]int, k) // positions of earlier neighbors (excluding parent)
	posOf := make([]int, k)
	seen := make([]bool, k)
	order = append(order, 0)
	seen[0] = true
	parentPos[0] = -1
	posOf[0] = 0
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, u8 := range t.adj[v] {
			u := int(u8)
			if !seen[u] {
				seen[u] = true
				parentPos[len(order)] = i
				posOf[u] = len(order)
				order = append(order, u)
			}
		}
	}
	for pos := 1; pos < k; pos++ {
		v := order[pos]
		for _, u8 := range t.adj[v] {
			up := posOf[int(u8)]
			if up < pos && up != parentPos[pos] {
				backChecks[pos] = append(backChecks[pos], up)
			}
		}
	}

	assign := make([]int32, k)
	used := make(map[int32]bool, k)
	var colorBit uint64
	var count int64
	var recurse func(pos int)
	recurse = func(pos int) {
		if pos == k {
			count++
			return
		}
		try := func(gv int32) {
			if used[gv] {
				return
			}
			for _, bp := range backChecks[pos] {
				if !g.HasEdge(assign[bp], gv) {
					return
				}
			}
			if colors != nil {
				bit := uint64(1) << uint(colors[gv])
				if colorBit&bit != 0 {
					return
				}
				colorBit |= bit
				defer func() { colorBit &^= bit }()
			}
			used[gv] = true
			assign[pos] = gv
			recurse(pos + 1)
			delete(used, gv)
		}
		if pos == 0 {
			for gv := int32(0); gv < int32(g.N()); gv++ {
				try(gv)
			}
			return
		}
		for _, gv := range g.Adj(assign[parentPos[pos]]) {
			try(gv)
		}
	}
	recurse(0)
	return count
}
