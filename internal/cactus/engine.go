package cactus

import (
	"fmt"
	"math/rand"

	"repro/internal/comb"
	"repro/internal/dp"
	"repro/internal/graph"
)

// planNode is one step of the rooted decomposition: a leaf vertex, a
// standard edge merge (as in the tree DP), or a triangle merge combining
// the root part with two child parts whose roots must map to adjacent
// graph vertices.
type planNode struct {
	kind  nodeKind
	size  int
	root  int
	act   *planNode
	pas1  *planNode
	pas2  *planNode
	split *comb.SplitTable // edge merge
	tri   *triSplit        // triangle merge
}

type nodeKind int

const (
	leafNode nodeKind = iota
	edgeNode
	triNode
)

// triSplit precomputes three-way color-set splits: for each set of size
// h, all (active, child1, child2) index triples.
type triSplit struct {
	numSets int
	per     int
	a       []int32
	p1      []int32
	p2      []int32
}

func newTriSplit(k, h, aN, p1N, p2N int) *triSplit {
	nSets := int(comb.Binomial(k, h))
	per := int(comb.Binomial(h, aN) * comb.Binomial(h-aN, p1N))
	ts := &triSplit{
		numSets: nSets, per: per,
		a:  make([]int32, 0, nSets*per),
		p1: make([]int32, 0, nSets*per),
		p2: make([]int32, 0, nSets*per),
	}
	set := make([]int, h)
	comb.First(set)
	chooseA := make([]int, aN)
	choose1 := make([]int, p1N)
	bufA := make([]int, aN)
	buf1 := make([]int, p1N)
	buf2 := make([]int, p2N)
	rest := make([]int, h-aN)
	for {
		comb.First(chooseA)
		for {
			// Partition positions into active and remainder.
			ai, ri := 0, 0
			for pos := 0; pos < h; pos++ {
				if ai < aN && chooseA[ai] == pos {
					bufA[ai] = set[pos]
					ai++
				} else {
					rest[ri] = set[pos]
					ri++
				}
			}
			comb.First(choose1)
			for {
				i1, i2 := 0, 0
				for pos := 0; pos < len(rest); pos++ {
					if i1 < p1N && choose1[i1] == pos {
						buf1[i1] = rest[pos]
						i1++
					} else {
						buf2[i2] = rest[pos]
						i2++
					}
				}
				ts.a = append(ts.a, int32(comb.Rank(bufA)))
				ts.p1 = append(ts.p1, int32(comb.Rank(buf1)))
				ts.p2 = append(ts.p2, int32(comb.Rank(buf2)))
				if !comb.Next(choose1, len(rest)) {
					break
				}
			}
			if !comb.Next(chooseA, h) {
				break
			}
		}
		if !comb.Next(set, k) {
			break
		}
	}
	return ts
}

// Config controls a cactus counting run.
type Config struct {
	Colors int
	Seed   int64
}

// Result reports a cactus counting run.
type Result struct {
	Estimate     float64
	PerIteration []float64
}

// Engine counts non-induced occurrences of a triangle-cactus template by
// color coding with edge- and triangle-merge DP steps.
type Engine struct {
	g    *graph.Graph
	t    *Template
	cfg  Config
	k    int
	plan *planNode
	aut  int64
	prob float64
	// order lists plan nodes children-first for bottom-up evaluation.
	order []*planNode
}

// NewEngine prepares a cactus engine.
func NewEngine(g *graph.Graph, t *Template, cfg Config) (*Engine, error) {
	if g == nil || t == nil {
		return nil, fmt.Errorf("cactus: nil graph or template")
	}
	k := cfg.Colors
	if k == 0 {
		k = t.K()
	}
	if k < t.K() || k > comb.MaxColors {
		return nil, fmt.Errorf("cactus: invalid color count %d for template size %d", k, t.K())
	}
	e := &Engine{
		g: g, t: t, cfg: cfg, k: k,
		aut:  t.Automorphisms(),
		prob: dp.ColorfulProbability(k, t.K()),
	}
	e.plan = e.buildPlan()
	if e.plan.size != t.K() {
		return nil, fmt.Errorf("cactus: decomposition covers %d of %d vertices", e.plan.size, t.K())
	}
	var collect func(n *planNode)
	collect = func(n *planNode) {
		if n.kind != leafNode {
			collect(n.act)
			collect(n.pas1)
			if n.pas2 != nil {
				collect(n.pas2)
			}
		}
		e.order = append(e.order, n)
	}
	collect(e.plan)
	return e, nil
}

// buildPlan decomposes the template into leaf / edge-merge / triangle-
// merge steps, peeling blocks one at a time around each root (the
// cactus analogue of one-at-a-time partitioning).
func (e *Engine) buildPlan() *planNode {
	t := e.t
	// Blocks incident to each vertex.
	blocksOf := make([][]int, t.k)
	for bi, b := range t.blocks {
		for _, v := range b {
			blocksOf[v] = append(blocksOf[v], bi)
		}
	}
	var build func(root, fromBlock int) *planNode
	build = func(root, fromBlock int) *planNode {
		cur := &planNode{kind: leafNode, size: 1, root: root}
		for _, bi := range blocksOf[root] {
			if bi == fromBlock {
				continue
			}
			b := t.blocks[bi]
			if len(b) == 2 {
				other := b[0]
				if other == root {
					other = b[1]
				}
				child := build(other, bi)
				merged := &planNode{
					kind: edgeNode, size: cur.size + child.size, root: root,
					act: cur, pas1: child,
					split: comb.NewSplitTable(e.k, cur.size+child.size, cur.size),
				}
				cur = merged
			} else {
				var x, y = -1, -1
				for _, v := range b {
					if v != root {
						if x < 0 {
							x = v
						} else {
							y = v
						}
					}
				}
				c1 := build(x, bi)
				c2 := build(y, bi)
				h := cur.size + c1.size + c2.size
				merged := &planNode{
					kind: triNode, size: h, root: root,
					act: cur, pas1: c1, pas2: c2,
					tri: newTriSplit(e.k, h, cur.size, c1.size, c2.size),
				}
				cur = merged
			}
		}
		return cur
	}
	return build(0, -1)
}

// Automorphisms returns |Aut(T)| used for scaling.
func (e *Engine) Automorphisms() int64 { return e.aut }

// Run executes iters color-coding iterations and averages the estimates.
func (e *Engine) Run(iters int) (Result, error) {
	if iters < 1 {
		return Result{}, fmt.Errorf("cactus: iterations must be >= 1, got %d", iters)
	}
	res := Result{PerIteration: make([]float64, iters)}
	for i := 0; i < iters; i++ {
		total := e.ColorfulTotal(e.cfg.Seed + int64(i))
		res.PerIteration[i] = total / (e.prob * float64(e.aut))
	}
	var sum float64
	for _, x := range res.PerIteration {
		sum += x
	}
	res.Estimate = sum / float64(iters)
	return res, nil
}

// ColoringFor reproduces the coloring of an iteration seed.
func (e *Engine) ColoringFor(seed int64) []int8 {
	rng := rand.New(rand.NewSource(seed))
	colors := make([]int8, e.g.N())
	for i := range colors {
		colors[i] = int8(rng.Intn(e.k))
	}
	return colors
}

// ColorfulTotal runs one DP pass under the coloring of seed and returns
// the raw colorful mapping total.
func (e *Engine) ColorfulTotal(seed int64) float64 {
	colors := e.ColoringFor(seed)
	n := int32(e.g.N())
	tabs := map[*planNode][][]float64{}
	for _, nd := range e.order {
		rows := make([][]float64, n)
		switch nd.kind {
		case leafNode:
			for v := int32(0); v < n; v++ {
				row := make([]float64, e.k)
				row[colors[v]] = 1
				rows[v] = row
			}
		case edgeNode:
			act, pas := tabs[nd.act], tabs[nd.pas1]
			split := nd.split
			nc := split.NumSets
			spn := split.SplitsPerSet
			for v := int32(0); v < n; v++ {
				arow := act[v]
				if arow == nil {
					continue
				}
				var buf []float64
				for _, u := range e.g.Adj(v) {
					prow := pas[u]
					if prow == nil {
						continue
					}
					if buf == nil {
						buf = make([]float64, nc)
					}
					for ci := 0; ci < nc; ci++ {
						base := ci * spn
						var s float64
						for j := base; j < base+spn; j++ {
							if av := arow[split.ActiveIdx[j]]; av != 0 {
								s += av * prow[split.PassiveIdx[j]]
							}
						}
						buf[ci] += s
					}
				}
				rows[v] = compact(buf)
			}
		case triNode:
			act, pas1, pas2 := tabs[nd.act], tabs[nd.pas1], tabs[nd.pas2]
			ts := nd.tri
			for v := int32(0); v < n; v++ {
				arow := act[v]
				if arow == nil {
					continue
				}
				var buf []float64
				adj := e.g.Adj(v)
				for _, u1 := range adj {
					p1row := pas1[u1]
					if p1row == nil {
						continue
					}
					for _, u2 := range adj {
						if u2 == u1 {
							continue
						}
						p2row := pas2[u2]
						if p2row == nil || !e.g.HasEdge(u1, u2) {
							continue
						}
						if buf == nil {
							buf = make([]float64, ts.numSets)
						}
						for ci := 0; ci < ts.numSets; ci++ {
							base := ci * ts.per
							var s float64
							for j := base; j < base+ts.per; j++ {
								av := arow[ts.a[j]]
								if av == 0 {
									continue
								}
								p1 := p1row[ts.p1[j]]
								if p1 == 0 {
									continue
								}
								s += av * p1 * p2row[ts.p2[j]]
							}
							buf[ci] += s
						}
					}
				}
				rows[v] = compact(buf)
			}
		}
		tabs[nd] = rows
	}
	var total float64
	for _, row := range tabs[e.plan] {
		for _, x := range row {
			total += x
		}
	}
	return total
}

// compact drops all-zero rows.
func compact(buf []float64) []float64 {
	if buf == nil {
		return nil
	}
	for _, x := range buf {
		if x != 0 {
			return buf
		}
	}
	return nil
}
