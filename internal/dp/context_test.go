package dp

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/tmpl"
)

// cancelWorkload builds a (graph, template, iters) workload that takes at
// least about a second to run uncancelled on one core, so a mid-run
// cancellation has something to interrupt.
func cancelWorkload(t *testing.T) (cfg Config, iters int, build func(Config) *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(rng, 2000, 20000)
	tr := tmpl.Path(10)
	cfg = DefaultConfig()
	cfg.Seed = 5
	build = func(c Config) *Engine {
		e, err := New(g, tr, c)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// Calibrate the iteration count so the full run takes >= ~1s.
	e := build(cfg)
	start := time.Now()
	if _, err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	per := time.Since(start)
	iters = int(time.Second/per) + 2
	return cfg, iters, build
}

// TestRunContextCancelPrompt is the acceptance test for the cancellation
// latency criterion: in every parallel mode, cancelling a >= 1s workload
// returns within 100ms, with err = context.Canceled, a partial
// PerIteration, and no leaked goroutines.
func TestRunContextCancelPrompt(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a ~1s workload")
	}
	cfg, iters, build := cancelWorkload(t)
	for _, mode := range []Mode{Inner, Outer, Hybrid} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c := cfg
			c.Mode = mode
			e := build(c)
			before := runtime.NumGoroutine()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var cancelTime time.Time
			timer := time.AfterFunc(50*time.Millisecond, func() {
				cancelTime = time.Now()
				cancel()
			})
			defer timer.Stop()

			res, err := e.RunContext(ctx, iters)
			returned := time.Now()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if cancelTime.IsZero() {
				t.Fatal("run finished before the cancel fired; workload too small")
			}
			if lat := returned.Sub(cancelTime); lat > 100*time.Millisecond {
				t.Errorf("returned %v after cancellation, want <= 100ms", lat)
			}
			if len(res.PerIteration) >= iters {
				t.Errorf("all %d iterations completed despite cancellation", iters)
			}
			if !res.Stats.Cancelled {
				t.Error("Stats.Cancelled not set")
			}
			if res.Stats.Iterations != len(res.PerIteration) {
				t.Errorf("Stats.Iterations = %d, PerIteration has %d", res.Stats.Iterations, len(res.PerIteration))
			}
			// No goroutine leak: worker pools must drain and exit.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if after := runtime.NumGoroutine(); after > before {
				t.Errorf("goroutines leaked: %d before, %d after", before, after)
			}
		})
	}
}

// TestRunContextAlreadyCancelled checks that a pre-cancelled context
// yields zero completed iterations and the context error immediately.
func TestRunContextAlreadyCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 60, 200)
	e, err := New(g, tmpl.Path(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunContext(ctx, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.PerIteration) != 0 {
		t.Fatalf("pre-cancelled run completed %d iterations", len(res.PerIteration))
	}
	if !res.Stats.Cancelled {
		t.Error("Stats.Cancelled not set")
	}
}

// TestRunContextMatchesRun checks bit-identical estimates between the
// context and plain entry points (the cancellation plumbing must not
// perturb seeds or summation order).
func TestRunContextMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 150, 700)
	tr := tmpl.MustNamed("U5-2")
	for _, mode := range []Mode{Inner, Outer, Hybrid} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.Seed = 11
		e1, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := e1.Run(6)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e2.RunContext(context.Background(), 6)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Estimate != r2.Estimate {
			t.Fatalf("mode %v: Run=%v RunContext=%v", mode, r1.Estimate, r2.Estimate)
		}
		for i := range r1.PerIteration {
			if r1.PerIteration[i] != r2.PerIteration[i] {
				t.Fatalf("mode %v: iteration %d differs", mode, i)
			}
		}
	}
}

// TestVertexCountsContextCancel checks cancellation and partial rescaling
// of the per-vertex counting path.
func TestVertexCountsContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 100, 400)
	cfg := DefaultConfig()
	cfg.RootVertex = 0
	e, err := New(g, tmpl.Path(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if counts, err := e.VertexCountsContext(ctx, 4); !errors.Is(err, context.Canceled) || counts != nil {
		t.Fatalf("pre-cancelled VertexCounts: counts=%v err=%v", counts != nil, err)
	}
}

// TestRunConvergedContextCancel checks the adaptive runner honors a
// pre-cancelled context.
func TestRunConvergedContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := randomGraph(rng, 100, 400)
	e, err := New(g, tmpl.Path(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunConvergedContext(ctx, 0.01, 2, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.PerIteration) != 0 || !res.Stats.Cancelled {
		t.Fatalf("pre-cancelled converged run: %d iterations, cancelled=%v", len(res.PerIteration), res.Stats.Cancelled)
	}
}

// TestOnIterationHook checks the progress hook fires once per completed
// iteration with increasing elapsed times, in every mode.
func TestOnIterationHook(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 100, 400)
	for _, mode := range []Mode{Inner, Outer, Hybrid} {
		var calls int
		var lastElapsed time.Duration
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.OnIteration = func(i int, est float64, elapsed time.Duration) {
			calls++
			if est <= 0 {
				t.Errorf("mode %v: iteration %d estimate %v", mode, i, est)
			}
			if elapsed < 0 {
				t.Errorf("mode %v: negative elapsed", mode)
			}
			lastElapsed = elapsed
		}
		e, err := New(g, tmpl.Path(4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(5); err != nil {
			t.Fatal(err)
		}
		if calls != 5 {
			t.Fatalf("mode %v: OnIteration fired %d times, want 5", mode, calls)
		}
		if lastElapsed == 0 {
			t.Errorf("mode %v: elapsed never set", mode)
		}
	}
}

// TestRunStatsInvariants checks the observability snapshot's internal
// consistency: node times account for most of the elapsed wall time in a
// sequential run, kernel counters match forced ablation modes, row
// traffic balances, and iteration timings are complete.
func TestRunStatsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 1200, 12000)
	tr := tmpl.MustNamed("U7-1")
	iters := 3

	for _, kernel := range []KernelMode{KernelDirect, KernelAggregate} {
		cfg := DefaultConfig()
		cfg.Mode = Inner
		cfg.Workers = 1
		cfg.Kernel = kernel
		e, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stats

		if s.Iterations != iters || len(s.IterTimes) != iters {
			t.Fatalf("kernel %v: Iterations=%d IterTimes=%d, want %d", kernel, s.Iterations, len(s.IterTimes), iters)
		}
		if s.Layout != "lazy" {
			t.Errorf("kernel %v: Layout = %q", kernel, s.Layout)
		}
		if len(s.Nodes) == 0 {
			t.Fatalf("kernel %v: no node stats", kernel)
		}
		// Node times must account for the bulk of the run: within 20% of
		// elapsed (the acceptance criterion; coloring and scan overhead
		// make up the rest).
		total := s.NodeTimeTotal()
		if total > res.Elapsed {
			t.Errorf("kernel %v: node time %v exceeds elapsed %v in a sequential run", kernel, total, res.Elapsed)
		}
		if float64(total) < 0.8*float64(res.Elapsed) {
			t.Errorf("kernel %v: node time %v below 80%% of elapsed %v", kernel, total, res.Elapsed)
		}
		// Forced kernels must land every internal-node pass on one counter.
		switch kernel {
		case KernelDirect:
			if s.KernelDirect == 0 || s.KernelAggregate != 0 {
				t.Errorf("forced direct: direct=%d aggregate=%d", s.KernelDirect, s.KernelAggregate)
			}
		case KernelAggregate:
			if s.KernelAggregate == 0 || s.KernelDirect != 0 {
				t.Errorf("forced aggregate: direct=%d aggregate=%d", s.KernelDirect, s.KernelAggregate)
			}
		}
		// Without KeepTables every allocated row and table is released.
		if s.RowsAllocated != s.RowsReleased {
			t.Errorf("kernel %v: rows allocated %d != released %d", kernel, s.RowsAllocated, s.RowsReleased)
		}
		if s.TablesAllocated != s.TablesReleased {
			t.Errorf("kernel %v: tables allocated %d != released %d", kernel, s.TablesAllocated, s.TablesReleased)
		}
		if s.RowsAllocated == 0 {
			t.Errorf("kernel %v: no row traffic recorded", kernel)
		}
		if s.PeakTableBytes != res.PeakTableBytes {
			t.Errorf("kernel %v: stats peak %d != result peak %d", kernel, s.PeakTableBytes, res.PeakTableBytes)
		}
		if s.Cancelled {
			t.Errorf("kernel %v: uncancelled run marked cancelled", kernel)
		}
	}
}
