package dp

import "fmt"

// ReorderMode controls the degree-bucketed vertex relabeling of the
// execution graph (Config.Reorder).
type ReorderMode int

const (
	// ReorderAuto applies the relabeling on large degree-skewed graphs,
	// where it helps most: the tiled pass's hot gathered rows (hubs)
	// pack contiguously instead of scattering across the table.
	ReorderAuto ReorderMode = iota
	// ReorderOn always applies the relabeling.
	ReorderOn
	// ReorderOff never applies it.
	ReorderOff
)

func (m ReorderMode) String() string {
	switch m {
	case ReorderAuto:
		return "auto"
	case ReorderOn:
		return "on"
	case ReorderOff:
		return "off"
	default:
		return fmt.Sprintf("ReorderMode(%d)", int(m))
	}
}

// reorderMinVerts and reorderSkewFactor gate ReorderAuto: relabeling a
// small or degree-uniform graph buys nothing (the CSR rebuild costs more
// than the locality it adds), so auto requires a big graph whose max
// degree dwarfs the average — the hub-heavy shape where packing hot rows
// pays.
const (
	reorderMinVerts   = 4096
	reorderSkewFactor = 8
)

// shouldReorder decides at engine construction whether to relabel.
// KeepTables forces it off: embedding sampling walks the kept tables by
// graph vertex id, and keeping those ids the caller's avoids translating
// every sampled embedding.
func (e *Engine) shouldReorder() bool {
	if e.cfg.KeepTables {
		return false
	}
	switch e.cfg.Reorder {
	case ReorderOn:
		return true
	case ReorderOff:
		return false
	}
	if e.g.N() < reorderMinVerts {
		return false
	}
	s := e.g.ComputeStats()
	return float64(s.MaxDegree) >= reorderSkewFactor*s.AvgDegree
}

// origID maps an engine-graph vertex id back to the caller's original
// id (the identity when no reordering is applied). Per-vertex outputs
// (VertexCounts) emit through it so the relabeling stays invisible.
func (e *Engine) origID(v int32) int32 {
	if e.ord == nil {
		return v
	}
	return e.ord.Orig[v]
}
