package dp

import (
	"os"
	"strconv"

	"repro/internal/comb"
)

// Tiling turns the bottom-up pass's passive-table sweep into a blocked
// SpMM: when the passive child table for a node exceeds the last-level
// cache budget, the per-lane column space is split into tiles sized so
// one tile of the passive table stays cache-resident, and the per-vertex
// kernels run tile-by-tile over a small block of output rows held in a
// per-worker scratch. Each (vertex, column) cell is visited exactly once
// across tiles and the per-cell sums are exact integer float64
// additions, so tiled and untiled runs produce bit-identical tables.
const (
	// defaultLLCBytes is the passive-table cache budget when neither
	// Config.LLCBytes nor FASCIA_LLC_BYTES picks one. 64 MiB sits below
	// the measured bandwidth cliff on typical server LLCs while leaving
	// room for the output block and adjacency stream.
	defaultLLCBytes = 64 << 20
	// tileBlockBytes targets the per-worker output-row block at the L2
	// (~1 MiB): large enough to amortize the tile sweep's re-walk of the
	// adjacency rows, small enough that the block stays resident.
	tileBlockBytes = 1 << 20
	minBlockVerts  = 16
	maxBlockVerts  = 4096
	// maxTileSweeps caps how many times a node's adjacency is re-walked;
	// past this the gather savings lose to the CSR re-stream, so the
	// auto batch picker shrinks B instead of tiling finer.
	maxTileSweeps = 16
	llcEnvVar     = "FASCIA_LLC_BYTES"
	memEnvVar     = "FASCIA_MEM_BYTES"
	// denseCellBytes is the storage cost of one dense float64 table
	// cell, the default bytes-per-cell estimate for planners.
	denseCellBytes = 8.0
)

// resolveLLCBytes lowers the Config.LLCBytes knob: >0 is an explicit
// budget, <0 disables tiling (resolved 0), and 0 defers to the
// FASCIA_LLC_BYTES environment variable, then defaultLLCBytes.
func resolveLLCBytes(cfg int64) int64 {
	if cfg > 0 {
		return cfg
	}
	if cfg < 0 {
		return 0
	}
	if s := os.Getenv(llcEnvVar); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return defaultLLCBytes
}

// resolveMemBytes lowers the Config.MemBudgetBytes knob: >0 is an
// explicit budget, <0 disables spilling (resolved 0), and 0 defers to
// the FASCIA_MEM_BYTES environment variable, then unlimited.
func resolveMemBytes(cfg int64) int64 {
	if cfg > 0 {
		return cfg
	}
	if cfg < 0 {
		return 0
	}
	if s := os.Getenv(memEnvVar); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0
}

// tilePlan is the column tiling of one node's pass: bounds holds the
// per-lane passive-column tile edges (bounds[t]..bounds[t+1] is tile t),
// and blockVerts is the output-row block height the tile sweep uses.
type tilePlan struct {
	bounds     []int32
	blockVerts int
}

func (p *tilePlan) tiles() int { return len(p.bounds) - 1 }

// planTiles decides the column tiling for a pass with nc output color
// sets, ncP passive color sets, and the given lane count over nVerts
// vertices. It returns nil when the pass should run untiled: the
// passive table already fits the budget, tiling is disabled, or the
// shape is degenerate. forceCols pins the per-lane tile width for tests
// and benchmarks (>0 always tiles at that width, <0 never tiles, 0
// auto).
func planTiles(nc, ncP, lanes, nVerts int, llcBytes int64, forceCols int) *tilePlan {
	return planTilesBytes(nc, ncP, lanes, nVerts, llcBytes, forceCols, denseCellBytes)
}

// planTilesBytes is planTiles parameterized by the selected layout's
// bytes-per-cell estimate (table.Kind.BytesPerCellEstimate): a succinct
// passive table packs several cells per float64's worth of bytes, so
// the same cache budget admits wider tiles (often none at all).
func planTilesBytes(nc, ncP, lanes, nVerts int, llcBytes int64, forceCols int, cellBytes float64) *tilePlan {
	if ncP <= 0 || nVerts <= 0 || lanes <= 0 || forceCols < 0 {
		return nil
	}
	if cellBytes <= 0 {
		cellBytes = denseCellBytes
	}
	p := &tilePlan{blockVerts: blockVertsFor(nc, lanes)}
	if forceCols > 0 {
		// Pinned width (tests/benchmarks): step by the forced column
		// count; the last tile may be ragged.
		cols := forceCols
		if cols > ncP {
			cols = ncP
		}
		for lo := 0; lo < ncP; lo += cols {
			p.bounds = append(p.bounds, int32(lo))
		}
		p.bounds = append(p.bounds, int32(ncP))
		return p
	}
	if llcBytes <= 0 {
		return nil
	}
	pasBytes := int64(float64(nVerts) * float64(ncP) * float64(lanes) * cellBytes)
	if pasBytes <= llcBytes {
		return nil
	}
	// Size a tile to the budget, round the tile count up, then split the
	// columns evenly across that many tiles (widths differ by at most
	// one) so the last tile is never a sliver. ceil(ncP/tiles) never
	// exceeds the budget-derived width, so every tile still fits.
	rowBytes := int64(float64(nVerts) * float64(lanes) * cellBytes)
	if rowBytes < 1 {
		rowBytes = 1
	}
	cols := int(llcBytes / rowBytes)
	if cols < 1 {
		cols = 1
	}
	tiles := (ncP + cols - 1) / cols
	for t := 0; t <= tiles; t++ {
		p.bounds = append(p.bounds, int32(t*ncP/tiles))
	}
	return p
}

// blockVertsFor sizes the output-row block: as many vertices as fit
// tileBlockBytes of width-nc·lanes rows, clamped to [minBlockVerts,
// maxBlockVerts] and rounded down to a multiple of 16 so chunk
// boundaries stay cache-line aligned.
func blockVertsFor(nc, lanes int) int {
	rowBytes := nc * lanes * 8
	if rowBytes <= 0 {
		return minBlockVerts
	}
	bv := tileBlockBytes / rowBytes
	if bv > maxBlockVerts {
		bv = maxBlockVerts
	}
	bv &^= 15
	if bv < minBlockVerts {
		bv = minBlockVerts
	}
	return bv
}

// tilesNeeded returns how many budget-sized tiles a passive table of the
// given size would need (1 = fits untiled). llc <= 0 means tiling is
// disabled, so everything "fits" in one sweep.
func tilesNeeded(bytes, llc int64) int {
	if llc <= 0 || bytes <= llc {
		return 1
	}
	return int((bytes + llc - 1) / llc)
}

// tileSplits is the per-tile slice of a node's contraction metadata:
// only the (active, passive) split pairs and singleton entries whose
// passive index lands in [lo, hi) — precomputed once per pass so the
// per-vertex tile kernels iterate exactly the in-tile terms.
type tileSplits struct {
	lo, hi int32
	// General branch: seg[ci]..seg[ci+1] indexes act/pas for output set
	// ci, mirroring comb.SplitTable's fixed-stride layout in filtered,
	// variable-stride form.
	seg []int32
	act []int32
	pas []int32
	// Single-active branch: singles[c] is the SetIdx-sorted entry list
	// for active color c, filtered to RestIdx in [lo, hi).
	singles [][]comb.SingletonEntry
}

// buildTileSplits filters a node's contraction metadata per tile. For
// branches whose passive-index filtering is pure runtime gating
// (size-2, single-passive) the split slices stay empty and the kernels
// gate on the color directly.
func buildTileSplits(shape *kernelShape, plan *tilePlan) []tileSplits {
	ts := make([]tileSplits, plan.tiles())
	for t := range ts {
		ts[t].lo = plan.bounds[t]
		ts[t].hi = plan.bounds[t+1]
	}
	switch shape.branch {
	case branchGeneral:
		split := shape.split
		spn := shape.spn
		for t := range ts {
			lo, hi := ts[t].lo, ts[t].hi
			seg := make([]int32, shape.nc+1)
			var act, pas []int32
			for ci := 0; ci < shape.nc; ci++ {
				base := ci * spn
				for j := 0; j < spn; j++ {
					p := split.PassiveIdx[base+j]
					if p >= lo && p < hi {
						act = append(act, split.ActiveIdx[base+j])
						pas = append(pas, p)
					}
				}
				seg[ci+1] = int32(len(act))
			}
			ts[t].seg = seg
			ts[t].act = act
			ts[t].pas = pas
		}
	case branchActiveSingle:
		for t := range ts {
			lo, hi := ts[t].lo, ts[t].hi
			singles := make([][]comb.SingletonEntry, len(shape.singles))
			for c, entries := range shape.singles {
				var kept []comb.SingletonEntry
				for _, en := range entries {
					if en.RestIdx >= lo && en.RestIdx < hi {
						kept = append(kept, en)
					}
				}
				singles[c] = kept
			}
			ts[t].singles = singles
		}
	}
	return ts
}

// tileCtx bundles a pass's tiling plan with its per-tile filtered
// contraction metadata. A nil tileCtx means the pass runs untiled.
type tileCtx struct {
	plan *tilePlan
	ts   []tileSplits
}

func newTileCtx(shape *kernelShape, plan *tilePlan) *tileCtx {
	if plan == nil {
		return nil
	}
	return &tileCtx{plan: plan, ts: buildTileSplits(shape, plan)}
}

// tilePlanFor builds the tile plan for one node's pass at the given
// lane count, honoring the engine's resolved LLC budget, the selected
// layout's bytes-per-cell estimate, and the TileCols test override.
func (e *Engine) tilePlanFor(shape *kernelShape, lanes int) *tilePlan {
	return planTilesBytes(shape.nc, shape.ncP, lanes, e.g.N(), e.llcBytes, e.cfg.TileCols,
		e.cfg.TableKind.BytesPerCellEstimate())
}

// chunkForTiled rounds the standard work-stealing chunk size up to a
// whole number of tile blocks so every chunk boundary is also a block
// boundary: workers then never split a block's scratch rows, and the
// chunk cursor (which advances in chunk units from 0) keeps all chunk
// starts block-aligned.
func chunkForTiled(nVerts, workers, blockVerts int) int {
	chunk := chunkFor(nVerts, workers)
	if blockVerts <= 1 {
		return chunk
	}
	if rem := chunk % blockVerts; rem != 0 {
		chunk += blockVerts - rem
	}
	return chunk
}
