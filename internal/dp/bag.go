package dp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// This file is the beyond-trees DP: color-coding over a nice tree
// decomposition instead of the partition tree, which handles templates
// with cycles (treewidth <= 2 plus K4 — everything tmpl.Decompose
// accepts). Each decomposition bag's table maps (assignment of the bag's
// template vertices to graph vertices, set of colors used by the whole
// subtree's image) to the number of ways the forgotten vertices extend
// the assignment. The empty root bag's total is then exactly the
// colorful mapping count the partition-tree DP computes at its root, so
// estimates share scale() unchanged — and on tree templates the two
// engines are bit-identical per iteration (counts are integers well
// inside float64's exact range, and both pipelines sum them
// deterministically).

// bagOp is the precomputed evaluation plan for one decomposition node,
// in post-order. Child tables are consumed exactly once (the
// decomposition is a tree), so slots are freed eagerly.
type bagOp struct {
	kind  tmpl.BagKind
	verts []int // bag vertices after the operation, ascending
	// vPos: introduce — position of the new vertex in verts;
	// forget — position of the forgotten vertex in the CHILD's verts.
	vPos int
	// label is the introduced vertex's template label (labeled runs).
	label int32
	// checkPos: introduce — positions in verts (other than vPos) whose
	// template vertex is adjacent to the introduced one; every candidate
	// graph vertex must have a graph edge to each of their images.
	checkPos    []int
	left, right int // child indices in post-order, -1 when absent
}

// bagKey identifies one bag-table entry: the graph vertices assigned to
// the bag's template vertices (slot order follows verts; unused slots
// hold -1) and the bitmask of colors used by the subtree's whole image.
type bagKey struct {
	tuple [tmpl.MaxBagVerts]int32
	mask  uint64
}

// bagTable is a deterministic accumulation map: entries iterate in first-
// insertion order regardless of Go's map iteration randomization, which
// is what keeps per-iteration totals bit-identical across runs and
// parallel modes.
type bagTable struct {
	keys []bagKey
	vals []float64
	idx  map[bagKey]int32
}

func newBagTable() *bagTable {
	return &bagTable{idx: map[bagKey]int32{}}
}

func (bt *bagTable) add(k bagKey, v float64) {
	if i, ok := bt.idx[k]; ok {
		bt.vals[i] += v
		return
	}
	bt.idx[k] = int32(len(bt.keys))
	bt.keys = append(bt.keys, k)
	bt.vals = append(bt.vals, v)
}

// bagEntryBytes approximates the per-entry footprint (key + value + map
// slot) for the run's peak-memory accounting.
const bagEntryBytes = 72

func (bt *bagTable) bytes() int64 { return int64(len(bt.keys)) * bagEntryBytes }

func emptyBagKey() bagKey {
	var k bagKey
	for i := range k.tuple {
		k.tuple[i] = -1
	}
	return k
}

// insertSlot returns t with gv inserted at position p (later slots shift
// right; the last -1 pad falls off).
func insertSlot(t [tmpl.MaxBagVerts]int32, p int, gv int32) [tmpl.MaxBagVerts]int32 {
	for i := len(t) - 1; i > p; i-- {
		t[i] = t[i-1]
	}
	t[p] = gv
	return t
}

// removeSlot returns t with position p dropped (later slots shift left,
// -1 padding restored).
func removeSlot(t [tmpl.MaxBagVerts]int32, p int) [tmpl.MaxBagVerts]int32 {
	for i := p; i < len(t)-1; i++ {
		t[i] = t[i+1]
	}
	t[len(t)-1] = -1
	return t
}

// newBagEngine builds the decomposition-driven engine used for every
// non-tree template (and for trees under Config.ForceBagDP).
func newBagEngine(g *graph.Graph, t *tmpl.Template, cfg Config, k int) (*Engine, error) {
	if cfg.KeepTables {
		return nil, fmt.Errorf("dp: KeepTables (embedding sampling) requires a tree template; %s runs the bag DP", t.Name())
	}
	if cfg.RootVertex >= 0 {
		return nil, fmt.Errorf("dp: RootVertex (per-vertex rooted counts) requires a tree template; %s runs the bag DP", t.Name())
	}
	d, err := tmpl.Decompose(t)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g: g, t: t, cfg: cfg, k: k, bag: d,
		prob:  colorfulProbability(k, t.K()),
		aut:   t.Automorphisms(),
		batch: 1, // lane batching is a split-table fast path; the bag DP stays per-iteration
		arena: &table.Arena{},
	}
	e.rAut = e.aut // unused by the bag DP (no rooted counts); keep non-zero
	e.llcBytes = resolveLLCBytes(cfg.LLCBytes)
	e.memBytes = resolveMemBytes(cfg.MemBudgetBytes)
	// The partition-tree scratch pools are never used by the bag DP but
	// stay constructible (maxNC is 0, so pooled buffers are empty).
	e.scratchPool.New = func() any { return &scratch{} }
	e.batchScratchPool.New = func() any { return &batchScratch{} }

	// Precompute the per-node plan: child indices in post-order plus the
	// introduce-time edge checks.
	pos := map[*tmpl.Bag]int{}
	e.bagOps = make([]bagOp, len(d.Order))
	for i, bg := range d.Order {
		pos[bg] = i
		op := bagOp{kind: bg.Kind, verts: bg.Verts, left: -1, right: -1}
		if bg.Left != nil {
			op.left = pos[bg.Left]
		}
		if bg.Right != nil {
			op.right = pos[bg.Right]
		}
		switch bg.Kind {
		case tmpl.BagIntroduce:
			for p, u := range bg.Verts {
				if u == bg.Vertex {
					op.vPos = p
				} else if t.HasEdge(u, bg.Vertex) {
					op.checkPos = append(op.checkPos, p)
				}
			}
			if t.Labeled() {
				op.label = t.Label(bg.Vertex)
			}
		case tmpl.BagForget:
			for p, u := range bg.Left.Verts {
				if u == bg.Vertex {
					op.vPos = p
				}
			}
		}
		e.bagOps[i] = op
	}
	return e, nil
}

// Decomposition exposes the nice tree decomposition of a bag-DP engine
// (nil for partition-tree engines), for diagnostics and tests.
func (e *Engine) Decomposition() *tmpl.Decomposition { return e.bag }

// bagColors returns the bitmask of colors used by the bag's assigned
// graph vertices.
func (st *iterState) bagColors(key bagKey, width int) uint64 {
	var m uint64
	for p := 0; p < width; p++ {
		m |= 1 << uint(st.colors[key.tuple[p]])
	}
	return m
}

// runBag executes one color-coding iteration over the decomposition in
// post-order and returns the colorful mapping total. Cancellation is
// polled per table entry — the same granularity as the partition-tree
// pass's per-vertex polls.
func (st *iterState) runBag() float64 {
	e := st.e
	tabs := make([]*bagTable, len(e.bagOps))
	free := func(i int) {
		if i >= 0 {
			st.liveBytes -= tabs[i].bytes()
			tabs[i] = nil
		}
	}
	for i := range e.bagOps {
		op := &e.bagOps[i]
		var out *bagTable
		switch op.kind {
		case tmpl.BagLeaf:
			out = newBagTable()
			out.add(emptyBagKey(), 1)
		case tmpl.BagIntroduce:
			out = st.bagIntroduce(op, tabs[op.left])
		case tmpl.BagForget:
			out = st.bagForget(op, tabs[op.left])
		case tmpl.BagJoin:
			out = st.bagJoin(op, tabs[op.left], tabs[op.right])
		}
		if st.cancelled() {
			st.abort()
			return 0
		}
		free(op.left)
		free(op.right)
		tabs[i] = out
		st.tablesAllocated++
		st.tablesReleased++ // bag tables free eagerly; allocation == release
		st.rowsAllocated += int64(len(out.keys))
		st.rowsReleased += int64(len(out.keys))
		st.liveBytes += out.bytes()
		if st.liveBytes > st.peakBytes {
			st.peakBytes = st.liveBytes
		}
	}
	root := tabs[len(tabs)-1]
	var total float64
	for _, v := range root.vals {
		total += v
	}
	st.liveBytes -= root.bytes()
	if st.keep {
		// Bag engines never retain tables (KeepTables is rejected at
		// construction); VertexCounts' keep flag cannot reach here either.
		panic("dp: bag DP cannot keep tables")
	}
	st.recycleColors()
	return total
}

// bagIntroduce extends every child entry with every admissible graph
// vertex for the introduced template vertex: label match, a graph edge
// to the image of each adjacent bag vertex, and a color outside the
// subtree's used set (which also enforces injectivity — distinct colors
// force distinct vertices).
func (st *iterState) bagIntroduce(op *bagOp, child *bagTable) *bagTable {
	e := st.e
	out := newBagTable()
	labeled := e.t.Labeled()
	// childPos maps a position in the new bag to the child bag (which
	// lacks the introduced vertex).
	childPos := func(p int) int {
		if p > op.vPos {
			return p - 1
		}
		return p
	}
	// Candidates come from the adjacency of the first constrained bag
	// member when one exists; a bag with no edge to the new vertex (the
	// first introduce above a leaf) scans all graph vertices.
	anchor := -1
	if len(op.checkPos) > 0 {
		anchor = childPos(op.checkPos[0])
	}
	nVerts := int32(e.g.N())
	for ci, ck := range child.keys {
		if st.cancelled() {
			return out
		}
		cv := child.vals[ci]
		try := func(gv int32) {
			if labeled && e.g.Label(gv) != op.label {
				return
			}
			for _, p := range op.checkPos {
				if !e.g.HasEdge(gv, ck.tuple[childPos(p)]) {
					return
				}
			}
			bit := uint64(1) << uint(st.colors[gv])
			if ck.mask&bit != 0 {
				return
			}
			out.add(bagKey{tuple: insertSlot(ck.tuple, op.vPos, gv), mask: ck.mask | bit}, cv)
		}
		if anchor >= 0 {
			for _, gv := range e.g.Adj(ck.tuple[anchor]) {
				try(gv)
			}
		} else {
			for gv := int32(0); gv < nVerts; gv++ {
				try(gv)
			}
		}
	}
	return out
}

// bagForget sums out the forgotten vertex: entries that agree on the
// remaining assignment and the (unchanged) subtree color set merge.
func (st *iterState) bagForget(op *bagOp, child *bagTable) *bagTable {
	out := newBagTable()
	for ci, ck := range child.keys {
		if st.cancelled() {
			return out
		}
		out.add(bagKey{tuple: removeSlot(ck.tuple, op.vPos), mask: ck.mask}, child.vals[ci])
	}
	return out
}

// bagJoin combines two subtrees over an identical bag: entries pair when
// their bag assignments match and their subtree color sets overlap in
// exactly the bag's own colors (the shared vertices), so the forgotten
// portions stay rainbow-disjoint. Vertex-subtree connectivity guarantees
// a template vertex never hides in both sides' forgotten sets, so the
// color test is sufficient.
func (st *iterState) bagJoin(op *bagOp, left, right *bagTable) *bagTable {
	out := newBagTable()
	width := len(op.verts)
	// Group the right entries by assignment; left entries then probe by
	// tuple and scan the (insertion-ordered) matches, keeping the output
	// order deterministic.
	byTuple := map[[tmpl.MaxBagVerts]int32][]int32{}
	for ri, rk := range right.keys {
		byTuple[rk.tuple] = append(byTuple[rk.tuple], int32(ri))
	}
	for li, lk := range left.keys {
		if st.cancelled() {
			return out
		}
		shared := st.bagColors(lk, width)
		for _, ri := range byTuple[lk.tuple] {
			rk := right.keys[ri]
			if lk.mask&rk.mask != shared {
				continue
			}
			out.add(bagKey{tuple: lk.tuple, mask: lk.mask | rk.mask}, left.vals[li]*right.vals[ri])
		}
	}
	return out
}
