// Package dp implements the color-coding dynamic program at the heart of
// FASCIA (Algorithm 2 of the paper): random graph coloring, a bottom-up
// pass over the template's partition tree that counts colorful rooted
// mappings per (subtemplate, vertex, color set), single-vertex-child
// specializations, labeled-template pruning, two goroutine parallelization
// modes (inner: vertices sharded per pass; outer: concurrent independent
// iterations), peak table-memory tracking, per-vertex rooted counts for
// graphlet-degree analysis, and uniform sampling of colorful embeddings
// (the "enumeration" side of FASCIA).
package dp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comb"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// Mode selects the parallelization strategy of §III-E.
type Mode int

const (
	// Auto picks Inner for large graphs and Outer for small ones, as the
	// paper recommends.
	Auto Mode = iota
	// Inner parallelizes the per-vertex loop inside each DP pass.
	Inner
	// Outer runs whole iterations concurrently, each with its own tables.
	Outer
	// Hybrid combines both (the paper's stated future work): several
	// iterations run concurrently, each itself using inner-loop workers.
	// Worker budget is split roughly evenly between the two levels.
	Hybrid
)

func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case Inner:
		return "inner"
	case Outer:
		return "outer"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// autoInnerThreshold is the vertex count above which Auto chooses Inner:
// below it, per-pass fork/join overhead dominates and running whole
// iterations concurrently wins (the paper's observation on Enron-sized
// graphs versus Portland).
const autoInnerThreshold = 200_000

// Config controls a counting run.
type Config struct {
	// Colors is the number of colors k (>= template size); 0 means
	// exactly the template size, the paper's default.
	Colors int
	// TableKind selects the dynamic-table layout.
	TableKind table.Kind
	// Strategy selects the partitioning heuristic.
	Strategy part.Strategy
	// Share merges isomorphic rooted subtemplates (memory for time).
	Share bool
	// Mode selects the parallelization strategy.
	Mode Mode
	// Workers bounds the goroutines used; 0 means GOMAXPROCS.
	Workers int
	// Seed makes runs reproducible. Iteration i derives its coloring
	// from Seed+i, so Inner and Outer modes produce identical estimates.
	Seed int64
	// RootVertex, when >= 0, forces the template root vertex; negative
	// lets the partitioning strategy choose (DefaultConfig sets -1; any
	// root yields correct totals, the choice only affects performance
	// and the meaning of per-vertex counts).
	RootVertex int
	// DisableLeafSpecial turns off the single-vertex-child fast paths
	// (ablation switch; results must not change).
	DisableLeafSpecial bool
	// Kernel selects the internal-node combination kernel: KernelAuto
	// (default) picks per vertex by a degree/width cost model,
	// KernelDirect forces per-neighbor split contraction, and
	// KernelAggregate forces the SpMM-style neighbor-aggregation kernel.
	// Results are identical in all modes.
	Kernel KernelMode
	// Batch is the number of independent colorings ("lanes") each DP
	// traversal carries: 0 or 1 runs the classic one-coloring-per-pass
	// schedule, B > 1 walks the adjacency and split tables ONCE per B
	// iterations with table cells widened to [B]float64 lane blocks, and
	// BatchAuto (any negative value) sizes B from the table widths and a
	// per-lane memory budget. Peak table memory grows by B× a single
	// iteration. Estimates are bit-identical to unbatched runs: lane j of
	// batch b colors with seed Seed + b·B + j, the same per-iteration
	// seed stream Run has always used. Batching applies to Run/RunContext;
	// VertexCounts, RunConverged, and KeepTables sampling runs stay
	// unbatched (they need one coloring's tables at a time).
	Batch int
	// KeepTables retains all subtemplate tables after a run, enabling
	// embedding sampling at the cost of the memory the eager-release
	// schedule would have saved. It forces Share off.
	KeepTables bool
	// LLCBytes is the cache budget of the tiled DP execution layer: when
	// a node's passive table exceeds it, the pass sweeps the passive
	// columns in budget-sized tiles so the gathered rows stay
	// cache-resident. >0 sets an explicit budget, 0 defers to the
	// FASCIA_LLC_BYTES environment variable (then a 64 MiB default), and
	// <0 disables tiling. Tiling regroups exact integer sums only, so
	// estimates are bit-identical in every setting.
	LLCBytes int64
	// MemBudgetBytes bounds peak table memory: when > 0, table slabs at
	// least spillMinBytes large are drawn from unlinked file-backed
	// mappings the OS can page out under pressure, and the automatic
	// batch sizer caps its lane budget at half the budget, so peak RSS
	// stays bounded independent of graph size. 0 defers to the
	// FASCIA_MEM_BYTES environment variable (unset = unlimited), and < 0
	// disables spilling. Spilling only relocates storage; estimates are
	// bit-identical in every setting.
	MemBudgetBytes int64
	// TileCols, when > 0, pins the per-lane tile width in passive color
	// columns (a test/benchmark knob that forces tiling regardless of
	// budget); < 0 disables tiling; 0 lets LLCBytes decide.
	TileCols int
	// Reorder controls the degree-bucketed vertex relabeling applied at
	// engine construction: ReorderAuto (default) enables it on large
	// degree-skewed graphs, ReorderOn forces it, ReorderOff disables it.
	// Colorings are drawn in original-id order and scattered through the
	// permutation, so estimates are bit-identical in every setting;
	// KeepTables forces it off (sampling reads tables by graph id).
	Reorder ReorderMode
	// OnIteration, when non-nil, is called after every completed
	// iteration with its seed index, its estimate, and the wall time
	// elapsed since the run started — a progress hook. Under outer and
	// hybrid parallelism calls are serialized but indices may arrive out
	// of order; the callback must not block for long (it holds the
	// run's result lock).
	OnIteration func(i int, estimate float64, elapsed time.Duration)
	// ForceBagDP routes tree templates through the tree-decomposition
	// bag DP (the engine non-tree templates always use) instead of the
	// partition-tree DP. It exists to pin the reduction: on a tree
	// template the bag DP's per-iteration estimates must be bit-identical
	// to the partition-tree DP's. Incompatible with KeepTables,
	// RootVertex, and Batch > 1, like any non-tree run.
	ForceBagDP bool
}

// DefaultConfig returns the paper-faithful defaults: k = template size,
// lazy ("improved") tables, one-at-a-time partitioning without sharing,
// automatic parallel mode.
func DefaultConfig() Config {
	return Config{
		TableKind:  table.Lazy,
		Strategy:   part.OneAtATime,
		Share:      false,
		Mode:       Auto,
		RootVertex: -1,
	}
}

// BatchAuto, assigned to Config.Batch, asks the engine to size the lane
// count automatically from the table widths and batchMemBudget.
const BatchAuto = -1

// maxBatch bounds the lane count: beyond this the lane blocks outgrow
// the amortization win and per-batch memory dominates.
const maxBatch = 64

// batchMemBudget is the automatic batch sizer's cap on the estimated
// peak batched table footprint (lanes × per-lane dense-table bytes).
const batchMemBudget = 256 << 20

// Engine runs color-coding iterations for one (graph, template) pair.
type Engine struct {
	g   *graph.Graph
	t   *tmpl.Template
	cfg Config

	k    int // number of colors
	tree *part.Tree
	// bag, when non-nil, is the nice tree decomposition driving the
	// beyond-trees DP; tree is nil in that case, and iterations run
	// through runBag instead of the partition-tree pass.
	bag    *tmpl.Decomposition
	bagOps []bagOp // per-decomposition-node evaluation plan
	prob   float64 // probability a fixed template-size set is colorful
	aut    int64   // |Aut(T)|
	rAut   int64   // automorphisms fixing the partition root
	maxNC  int     // largest NumSets over all nodes
	maxNcP int     // largest passive-child NumSets over internal nodes
	batch  int     // resolved lane count (1 = unbatched)

	// ord, when non-nil, is the degree-bucketed vertex relabeling under
	// which e.g was rebuilt; Orig maps engine ids back to the caller's.
	ord *graph.Ordering
	// llcBytes is the resolved tiling cache budget (0 = tiling disabled).
	llcBytes int64
	// memBytes is the resolved peak-memory budget (0 = unlimited).
	memBytes int64

	splits  map[[2]int]*comb.SplitTable     // (size, activeSize) -> table
	singles map[int][][]comb.SingletonEntry // size -> per-color entries

	// arena recycles table backing slabs and color vectors across
	// iterations and batches (engine-lifetime free lists; outer-parallel
	// iterations share it under its own lock).
	arena *table.Arena

	// scratchPool recycles per-worker scratch buffers across nodes,
	// workers, and iterations (outer-parallel iterations share it too).
	scratchPool sync.Pool
	// batchScratchPool is the lane-widened variant used by batched runs.
	batchScratchPool sync.Pool
	// kernelDirect / kernelAggregate count vertex passes executed by each
	// kernel since engine creation, for diagnostics and the fasciabench
	// kernel ablation.
	kernelDirect    atomic.Int64
	kernelAggregate atomic.Int64

	// kept tables from the last iteration when cfg.KeepTables is set.
	kept       map[*part.Node]table.Table
	keptColors []int8
}

// New validates the configuration and precomputes the partition tree and
// all combinatorial index tables.
func New(g *graph.Graph, t *tmpl.Template, cfg Config) (*Engine, error) {
	if g == nil || t == nil {
		return nil, fmt.Errorf("dp: nil graph or template")
	}
	k := cfg.Colors
	if k == 0 {
		k = t.K()
	}
	if k < t.K() {
		return nil, fmt.Errorf("dp: %d colors for a %d-vertex template", k, t.K())
	}
	if k > comb.MaxColors {
		return nil, fmt.Errorf("dp: %d colors exceeds supported maximum %d", k, comb.MaxColors)
	}
	if t.Labeled() && g.Labels == nil {
		return nil, fmt.Errorf("dp: labeled template requires a labeled graph")
	}
	if !t.IsTree() || cfg.ForceBagDP {
		return newBagEngine(g, t, cfg, k)
	}
	share := cfg.Share
	if cfg.KeepTables {
		// Sampling reconstructs embeddings from vertex identities, which
		// sharing erases.
		share = false
	}
	tree, err := part.BuildRooted(t, cfg.Strategy, share, cfg.RootVertex)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g: g, t: t, cfg: cfg, k: k, tree: tree,
		prob:    colorfulProbability(k, t.K()),
		aut:     t.Automorphisms(),
		rAut:    t.RootedAutomorphisms(tree.Root.Root),
		splits:  map[[2]int]*comb.SplitTable{},
		singles: map[int][][]comb.SingletonEntry{},
		arena:   &table.Arena{},
	}
	e.llcBytes = resolveLLCBytes(cfg.LLCBytes)
	e.memBytes = resolveMemBytes(cfg.MemBudgetBytes)
	if e.memBytes > 0 {
		// Out-of-core mode: large table slabs move to unlinked
		// file-backed mappings so the resident set can stay within the
		// budget even when the summed table footprint exceeds it.
		e.arena.SetSpill(0)
	}
	if e.shouldReorder() {
		e.ord = graph.DegreeBucketOrdering(g)
		e.g = g.Relabel(e.ord)
	}
	for _, n := range tree.Nodes {
		nc := int(comb.Binomial(k, n.Size()))
		if nc > e.maxNC {
			e.maxNC = nc
		}
		if n.IsLeaf() {
			continue
		}
		if ncP := int(comb.Binomial(k, n.Passive.Size())); ncP > e.maxNcP {
			e.maxNcP = ncP
		}
		h, aN := n.Size(), n.Active.Size()
		key := [2]int{h, aN}
		if _, ok := e.splits[key]; !ok {
			e.splits[key] = comb.NewSplitTable(k, h, aN)
		}
		if !cfg.DisableLeafSpecial && h > 2 && (aN == 1 || h-aN == 1) {
			if _, ok := e.singles[h]; !ok {
				e.singles[h] = comb.SingletonSplits(k, h)
			}
		}
	}
	e.scratchPool.New = func() any {
		return &scratch{
			buf:      make([]float64, e.maxNC),
			actRow:   make([]float64, e.maxNC),
			pasRow:   make([]float64, e.maxNC),
			agg:      make([]float64, e.maxNC),
			colorAgg: make([]float64, e.k),
		}
	}
	e.batch = e.resolveBatch()
	e.batchScratchPool.New = func() any {
		w := e.maxNC * e.batch
		return &batchScratch{
			buf:      make([]float64, w),
			actRow:   make([]float64, w),
			pasRow:   make([]float64, w),
			agg:      make([]float64, w),
			colorAgg: make([]float64, e.k*e.batch),
			avB:      make([]float64, e.batch),
		}
	}
	return e, nil
}

// resolveBatch lowers Config.Batch to a concrete lane count.
func (e *Engine) resolveBatch() int {
	b := e.cfg.Batch
	if e.cfg.KeepTables {
		// Embedding sampling reads one coloring's tables; batching would
		// interleave B colorings in them.
		return 1
	}
	if b < 0 { // BatchAuto
		// Estimated per-lane peak: the two widest concurrently-live
		// tables at the selected layout's bytes-per-cell (succinct rows
		// pack several cells per dense cell's worth of bytes, so the same
		// budget admits wider batches). Grow B in powers of two while the
		// batched footprint stays under budget; an explicit memory budget
		// halves for the batch sizer so the CSR, scratch, and the second
		// live table fit alongside.
		cell := e.cfg.TableKind.BytesPerCellEstimate()
		perLane := int64(float64(e.g.N()) * float64(e.maxNC) * 2 * cell)
		if perLane <= 0 {
			return 1
		}
		budget := int64(batchMemBudget)
		if e.memBytes > 0 && e.memBytes/2 < budget {
			budget = e.memBytes / 2
		}
		b = 1
		for b < 16 && int64(2*b)*perLane <= budget {
			b *= 2
		}
		// Joint (B, tile) sizing: widening lanes widens the passive
		// tables, which the tiled pass compensates by sweeping more
		// column tiles — each sweep re-streaming the adjacency. Shrink B
		// until the widest pass stays within the sweep cap.
		for b > 1 && tilesNeeded(int64(float64(e.g.N())*float64(e.maxNcP)*float64(b)*cell), e.llcBytes) > maxTileSweeps {
			b /= 2
		}
		return b
	}
	if b < 1 {
		return 1
	}
	if b > maxBatch {
		return maxBatch
	}
	return b
}

// Batch returns the resolved lane count (1 = unbatched) — the number of
// concurrent colorings each DP traversal carries.
func (e *Engine) Batch() int { return e.batch }

// ArenaStats returns cumulative table-slab reuse counters of the
// engine's arena: free-list hits and fresh allocations.
func (e *Engine) ArenaStats() (hits, misses int64) { return e.arena.Stats() }

// KernelStats returns cumulative counts of internal-node vertex passes
// executed by the direct and aggregated kernels since engine creation.
func (e *Engine) KernelStats() (direct, aggregated int64) {
	return e.kernelDirect.Load(), e.kernelAggregate.Load()
}

// ColorfulProbability returns k!/((k-t)!·k^t): the probability that a
// fixed set of t vertices receives t distinct colors out of k. Exported
// for the distributed runtime, which applies the same estimate scaling.
func ColorfulProbability(k, t int) float64 {
	return colorfulProbability(k, t)
}

// colorfulProbability returns k!/((k-t)!·k^t): the probability that a
// fixed set of t vertices receives t distinct colors out of k.
func colorfulProbability(k, t int) float64 {
	p := 1.0
	for i := 0; i < t; i++ {
		p *= float64(k-i) / float64(k)
	}
	return p
}

// Colors returns the number of colors in use.
func (e *Engine) Colors() int { return e.k }

// Tree exposes the partition tree (for diagnostics and tests).
func (e *Engine) Tree() *part.Tree { return e.tree }

// ColorfulProbability returns the scaling probability used for estimates.
func (e *Engine) ColorfulProbability() float64 { return e.prob }

// Automorphisms returns |Aut(T)| used for estimate scaling.
func (e *Engine) Automorphisms() int64 { return e.aut }

// workers resolves the configured worker count.
func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// mode resolves Auto into a concrete mode following the paper's guidance.
func (e *Engine) mode() Mode {
	if e.cfg.Mode != Auto {
		return e.cfg.Mode
	}
	if e.g.N() >= autoInnerThreshold {
		return Inner
	}
	return Outer
}

// IterationsFor returns the worst-case iteration count that guarantees a
// relative error of eps with confidence 1-2·delta for a k-vertex template
// (Algorithm 1, line 2): ceil(e^k · ln(1/delta) / eps²). As the paper
// shows, far fewer iterations suffice in practice.
func IterationsFor(eps, delta float64, k int) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	n := math.Exp(float64(k)) * math.Log(1/delta) / (eps * eps)
	if n < 1 {
		return 1
	}
	if n > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(math.Ceil(n))
}
