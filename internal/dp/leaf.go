package dp

import (
	"repro/internal/part"
	"repro/internal/table"
)

// laneTab is the read surface the batched kernels consume: either a real
// lane-strided table (*table.Multi) or the implicit lane table of a leaf
// (*leafLanes). Internal nodes always materialize; leaves in batched
// mode do not — their cell values are a pure function of the coloring.
type laneTab interface {
	Has(v int32) bool
	LaneRow(v int32) []float64
	Get(v, ci int32, lane int) float64
	MaterializeRow(v int32, dst []float64) []float64
	AccumulateRows(vs []int32, dst []float64)
	AccumulateRowsRange(vs []int32, dst []float64, lo, hi int)
	GatherColors(vs []int32, colors []int8, dst []float64)
	GatherColorsRange(vs []int32, colors []int8, dst []float64, lo, hi int)
}

var (
	_ laneTab = (*table.Multi)(nil)
	_ laneTab = (*leafLanes)(nil)
)

// leafLanes is the implicit lane table of a single-vertex subtemplate in
// batched mode: lane j of vertex v holds count 1 for the singleton color
// set {color_j(v)} (label-gated) and 0 everywhere else — exactly what
// initLeafB used to materialize. Deriving the cells from the coloring on
// the fly removes the B×-widened leaf tables entirely: no leaf
// allocation, no leaf-init sweep, and the hot laneActives/gather reads
// touch the 1-byte-per-lane color vector instead of 8-byte table cells.
// The scalar (unbatched) path keeps materialized leaves: KeepTables
// sampling and VertexCounts read them, and at one lane they are small.
type leafLanes struct {
	colors []int8
	lanes  int
	width  int // k·lanes, the flat row width
	// labels gates vertices by graph label when the template is labeled
	// (nil = unlabeled, every vertex matches).
	labels []int32
	want   int32
}

// newLeafLanes builds the implicit lane table of leaf n over this
// batch's coloring.
func (st *batchState) newLeafLanes(n *part.Node) *leafLanes {
	e := st.e
	lf := &leafLanes{colors: st.colors, lanes: st.lanes, width: e.k * st.lanes}
	if e.t.Labeled() {
		lf.labels = e.g.Labels
		lf.want = e.t.Label(n.LeafVertex())
	}
	return lf
}

// ok reports whether v's graph label matches the leaf's template label.
func (lf *leafLanes) ok(v int32) bool {
	return lf.labels == nil || lf.labels[v] == lf.want
}

// Has implements laneTab: a leaf "row" exists for every label-matching
// vertex (its one nonzero cell per lane is the seeded count 1).
func (lf *leafLanes) Has(v int32) bool { return lf.ok(v) }

// LaneRow implements laneTab; there is no materialized row.
func (lf *leafLanes) LaneRow(v int32) []float64 { return nil }

// Get implements laneTab: 1 iff ci is lane's color of v (and the label
// matches).
func (lf *leafLanes) Get(v, ci int32, lane int) float64 {
	if lf.ok(v) && int32(lf.colors[int(v)*lf.lanes+lane]) == ci {
		return 1
	}
	return 0
}

// MaterializeRow implements laneTab, writing v's implicit flat row
// (width k·L) into dst.
func (lf *leafLanes) MaterializeRow(v int32, dst []float64) []float64 {
	dst = dst[:lf.width]
	clear(dst)
	if lf.ok(v) {
		L := lf.lanes
		base := int(v) * L
		for j := 0; j < L; j++ {
			dst[int(lf.colors[base+j])*L+j] = 1
		}
	}
	return dst
}

// AccumulateRows implements laneTab: each label-matching vertex u adds 1
// to dst[color_j(u)·L+j] per lane — neighbor aggregation degenerates to
// counting neighbors per (color, lane).
func (lf *leafLanes) AccumulateRows(vs []int32, dst []float64) {
	L := lf.lanes
	for _, u := range vs {
		if !lf.ok(u) {
			continue
		}
		base := int(u) * L
		for j := 0; j < L; j++ {
			dst[int(lf.colors[base+j])*L+j]++
		}
	}
}

// AccumulateRowsRange implements laneTab: lanes whose color falls
// outside the per-lane column range [lo, hi) are skipped.
func (lf *leafLanes) AccumulateRowsRange(vs []int32, dst []float64, lo, hi int) {
	L := lf.lanes
	for _, u := range vs {
		if !lf.ok(u) {
			continue
		}
		base := int(u) * L
		for j := 0; j < L; j++ {
			c := int(lf.colors[base+j])
			if c >= lo && c < hi {
				dst[c*L+j]++
			}
		}
	}
}

// GatherColors implements laneTab: the gathered cell (u, colors[u·L+j])
// is the leaf's own nonzero cell exactly when the requested color equals
// u's color in that lane, so the fold is a per-(color, lane) neighbor
// count.
func (lf *leafLanes) GatherColors(vs []int32, colors []int8, dst []float64) {
	L := lf.lanes
	for _, u := range vs {
		if !lf.ok(u) {
			continue
		}
		base := int(u) * L
		for j := 0; j < L; j++ {
			if c := colors[base+j]; c == lf.colors[base+j] {
				dst[int(c)*L+j]++
			}
		}
	}
}

// GatherColorsRange implements laneTab: GatherColors restricted to
// colors in [lo, hi).
func (lf *leafLanes) GatherColorsRange(vs []int32, colors []int8, dst []float64, lo, hi int) {
	L := lf.lanes
	for _, u := range vs {
		if !lf.ok(u) {
			continue
		}
		base := int(u) * L
		for j := 0; j < L; j++ {
			c := int(colors[base+j])
			if c >= lo && c < hi && int8(c) == lf.colors[base+j] {
				dst[c*L+j]++
			}
		}
	}
}
