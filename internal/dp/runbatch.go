package dp

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// runBatches is the batched counterpart of RunContext's scheduling: the
// iteration range [0, iters) is cut into ceil(iters/B) batches of up to
// B = Engine.Batch() lanes, and each batch runs ONE bottom-up DP
// traversal for all of its lanes (the last batch may be ragged). Lane j
// of batch b colors with seed Seed + b·B + j — exactly the seeds the
// unbatched schedule draws — so estimates land in the same PerIteration
// slots bit-identically.
//
// Mode mapping mirrors the unbatched scheduler one level up:
//
//	Inner:  batches run sequentially, all workers shard vertices inside
//	        each traversal (peak memory ≈ B× one iteration).
//	Outer:  batches run concurrently with one worker each (memory grows
//	        with concurrent batches × lanes).
//	Hybrid: concurrent batches each get a hybridSplit share of the
//	        inner-loop budget.
//
// Per-lane iteration times are the batch wall time divided by its lane
// count — the traversal is shared, so lanes have no individual timings.
func (e *Engine) runBatches(ctx context.Context, mode Mode, iters int, stop *atomic.Bool, start time.Time, estimates []float64, iterTimes []time.Duration, completed []bool, stats *RunStats, res *Result) {
	B := e.batch
	numBatches := (iters + B - 1) / B

	runBatch := func(b, innerW int) (*batchState, time.Duration) {
		base := b * B
		lanes := B
		if base+lanes > iters {
			lanes = iters - base
		}
		st := e.newBatchState(e.cfg.Seed+int64(base), lanes, innerW)
		st.stop = stop
		st.nodeTimes = make([]time.Duration, len(e.tree.Order))
		t0 := time.Now()
		st.run()
		return st, time.Since(t0)
	}

	// fold merges one finished batch; callers serialize (the concurrent
	// modes hold mu).
	fold := func(b int, st *batchState, d time.Duration) {
		stats.mergeBatch(st)
		if st.peakBytes > res.PeakTableBytes {
			res.PeakTableBytes = st.peakBytes
		}
		if st.aborted {
			return
		}
		stats.BatchesRun++
		perLane := d / time.Duration(st.lanes)
		base := b * B
		//lint:ctxpoll ok — ≤B-element fold of a completed batch; breaking mid-fold would drop lanes that already ran
		for j := 0; j < st.lanes; j++ {
			i := base + j
			estimates[i] = e.scale(st.totals[j])
			iterTimes[i] = perLane
			completed[i] = true
			if e.cfg.OnIteration != nil {
				e.cfg.OnIteration(i, estimates[i], time.Since(start))
			}
		}
	}

	if mode == Inner {
		for b := 0; b < numBatches; b++ {
			if stopRequested(ctx, stop) {
				break
			}
			st, d := runBatch(b, e.workers())
			fold(b, st, d)
			if st.aborted {
				break
			}
		}
		return
	}

	workers := e.workers()
	if workers > numBatches {
		workers = numBatches
	}
	innerWs := make([]int, workers)
	for w := range innerWs {
		innerWs[w] = 1
	}
	if mode == Hybrid {
		workers, innerWs = hybridSplit(e.workers(), numBatches)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	next := make(chan int, numBatches)
	for b := 0; b < numBatches; b++ {
		next <- b
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := range next {
				if stopRequested(ctx, stop) {
					continue // drain remaining batch slots
				}
				st, d := runBatch(b, innerWs[w])
				mu.Lock()
				fold(b, st, d)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}
