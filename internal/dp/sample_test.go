package dp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/tmpl"
)

// TestSamplingUniformity checks that SampleEmbeddings draws colorful
// mappings approximately uniformly: over many samples, each colorful
// mapping's empirical frequency should be near 1/total.
func TestSamplingUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randomGraph(rng, 10, 24)
	tr := tmpl.Path(3)
	cfg := DefaultConfig()
	cfg.KeepTables = true
	// Find a coloring with a reasonably rich sample space.
	var e *Engine
	for seed := int64(1); seed < 20; seed++ {
		cfg.Seed = seed
		var err error
		e, err = New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		if res.PerIteration[0] > 0 {
			break
		}
	}
	colors := e.keptColors

	// Enumerate the colorful mappings under this exact coloring. A
	// sampled mapping fixes a root assignment, so the sample space is
	// rooted mappings; for P3 rooted at an end (one-at-a-time partitions
	// root at a leaf), every mapping appears once.
	want := map[string]bool{}
	exact.Enumerate(g, tr, func(m []int32) bool {
		seen := map[int8]bool{}
		ok := true
		for _, v := range m {
			if seen[colors[v]] {
				ok = false
				break
			}
			seen[colors[v]] = true
		}
		if ok {
			want[fmt.Sprint(m)] = true
		}
		return true
	})
	if len(want) < 4 {
		t.Skip("too few colorful mappings under this coloring")
	}

	const samples = 6000
	freq := map[string]int{}
	embs, err := e.SampleEmbeddings(rng, samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, emb := range embs {
		key := fmt.Sprint(emb.Mapping)
		if !want[key] {
			t.Fatalf("sampled mapping %s is not a colorful mapping", key)
		}
		freq[key]++
	}
	// Every colorful mapping should appear, at a rate within 4 sigma of
	// uniform.
	p := 1.0 / float64(len(want))
	sigma := math.Sqrt(float64(samples) * p * (1 - p))
	expect := float64(samples) * p
	for key := range want {
		got := float64(freq[key])
		if math.Abs(got-expect) > 4*sigma+1 {
			t.Errorf("mapping %s sampled %d times, expected %.1f±%.1f", key, freq[key], expect, sigma)
		}
	}
}

// TestSampleAfterEveryTableKind ensures sampling works with each layout.
func TestSampleAfterEveryTableKind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 25, 70)
	tr := tmpl.Spider(2, 1, 1)
	for _, kind := range []struct {
		name string
		set  func(*Config)
	}{
		{"lazy", func(c *Config) {}},
		{"naive", func(c *Config) { c.TableKind = 0 }},
	} {
		cfg := DefaultConfig()
		kind.set(&cfg)
		cfg.KeepTables = true
		cfg.Seed = 6
		e, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(1); err != nil {
			t.Fatal(err)
		}
		embs, err := e.SampleEmbeddings(rng, 5)
		if err != nil {
			t.Skipf("%s: no colorful embeddings this coloring", kind.name)
		}
		for _, emb := range embs {
			if err := e.VerifyEmbedding(emb); err != nil {
				t.Fatalf("%s: %v", kind.name, err)
			}
		}
	}
}
