package dp

import (
	"fmt"
	"math/rand"

	"repro/internal/part"
)

// Embedding is one non-induced occurrence of the template: Mapping[i] is
// the graph vertex that template vertex i maps to.
type Embedding struct {
	Mapping []int32
}

// SampleEmbeddings draws count colorful embeddings uniformly at random
// (over colorful rooted mappings) by backtracking through the dynamic
// tables of the most recent run — FASCIA's enumeration capability. The
// engine must have been configured with KeepTables and have completed at
// least one run; the samples come from that run's coloring. It returns an
// error when the last run found no colorful embeddings.
func (e *Engine) SampleEmbeddings(rng *rand.Rand, count int) ([]Embedding, error) {
	if e.kept == nil {
		return nil, fmt.Errorf("dp: SampleEmbeddings requires KeepTables and a completed run")
	}
	root := e.tree.Root
	rootTab := e.kept[root]
	n := int32(e.g.N())

	// Cache per-vertex totals of the root table for fast weighted choice.
	sums := make([]float64, n)
	var total float64
	for v := int32(0); v < n; v++ {
		if rootTab.Has(v) {
			sums[v] = rootTab.SumRow(v)
			total += sums[v]
		}
	}
	if total <= 0 {
		return nil, fmt.Errorf("dp: no colorful embeddings to sample in the last run")
	}

	out := make([]Embedding, 0, count)
	for s := 0; s < count; s++ {
		// Choose the root vertex proportional to its total count; the
		// last positive bucket absorbs floating-point slack.
		target := rng.Float64() * total
		v := int32(-1)
		for cand := int32(0); cand < n; cand++ {
			if sums[cand] <= 0 {
				continue
			}
			v = cand
			if target < sums[cand] {
				break
			}
			target -= sums[cand]
		}
		// Choose the color set within the row proportionally.
		nc := rootTab.NumSets()
		target = rng.Float64() * sums[v]
		ci := int32(-1)
		for cand := int32(0); cand < int32(nc); cand++ {
			w := rootTab.Get(v, cand)
			if w <= 0 {
				continue
			}
			ci = cand
			if target < w {
				break
			}
			target -= w
		}
		m := make([]int32, e.t.K())
		if err := e.assign(rng, root, v, ci, m); err != nil {
			return nil, err
		}
		out = append(out, Embedding{Mapping: m})
	}
	return out, nil
}

// assign recursively reconstructs one mapping consistent with node's
// table cell (v, ci), sampling child decompositions proportional to their
// contribution to the cell's count.
func (e *Engine) assign(rng *rand.Rand, n *part.Node, v int32, ci int32, m []int32) error {
	if n.IsLeaf() {
		m[n.LeafVertex()] = v
		return nil
	}
	act, pas := e.kept[n.Active], e.kept[n.Passive]
	split := e.splits[[2]int{n.Size(), n.Active.Size()}]
	spn := split.SplitsPerSet
	base := int(ci) * spn

	want := e.kept[n].Get(v, ci)
	if want <= 0 {
		return fmt.Errorf("dp: inconsistent tables during sampling (cell %d/%d empty)", v, ci)
	}
	target := rng.Float64() * want
	var lastU int32 = -1
	var lastJ = -1
	for _, u := range e.g.Adj(v) {
		if !pas.Has(u) {
			continue
		}
		for j := base; j < base+spn; j++ {
			av := act.Get(v, split.ActiveIdx[j])
			if av == 0 {
				continue
			}
			pv := pas.Get(u, split.PassiveIdx[j])
			if pv == 0 {
				continue
			}
			w := av * pv
			lastU, lastJ = u, j
			if target < w {
				if err := e.assign(rng, n.Active, v, split.ActiveIdx[j], m); err != nil {
					return err
				}
				return e.assign(rng, n.Passive, u, split.PassiveIdx[j], m)
			}
			target -= w
		}
	}
	// Floating-point slack: fall back to the last positive option.
	if lastJ >= 0 {
		if err := e.assign(rng, n.Active, v, split.ActiveIdx[lastJ], m); err != nil {
			return err
		}
		return e.assign(rng, n.Passive, lastU, split.PassiveIdx[lastJ], m)
	}
	return fmt.Errorf("dp: inconsistent tables during sampling (no decomposition)")
}

// VerifyEmbedding checks that an embedding really is a non-induced
// occurrence: distinct vertices, every template edge present, and labels
// matching for labeled templates. Exposed for tests and examples.
func (e *Engine) VerifyEmbedding(emb Embedding) error {
	if len(emb.Mapping) != e.t.K() {
		return fmt.Errorf("dp: mapping has %d vertices, template %d", len(emb.Mapping), e.t.K())
	}
	seen := map[int32]bool{}
	for i, v := range emb.Mapping {
		if v < 0 || int(v) >= e.g.N() {
			return fmt.Errorf("dp: mapped vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("dp: vertex %d used twice", v)
		}
		seen[v] = true
		if e.t.Labeled() && e.g.Label(v) != e.t.Label(i) {
			return fmt.Errorf("dp: label mismatch at template vertex %d", i)
		}
	}
	for _, edge := range e.t.Edges() {
		if !e.g.HasEdge(emb.Mapping[edge[0]], emb.Mapping[edge[1]]) {
			return fmt.Errorf("dp: template edge %v not present in graph", edge)
		}
	}
	return nil
}
