package dp

import (
	"repro/internal/comb"
)

// Batched kernels: the lane-widened counterparts of the scalar passes in
// kernel.go. Every kernel walks the adjacency and the combinatorial index
// tables exactly once per batch and runs a flat float64 multiply-add over
// the L-lane blocks in its innermost loop. Per-lane accumulation order
// matches the scalar kernels neighbor-for-neighbor, and counts are
// integer-valued float64s, so every lane's result is bit-identical to the
// corresponding unbatched iteration. Zero-skip guards are kept only where
// they gate whole loops (a zero active cell contributes zero products
// either way), so dropping per-cell branches inside lane loops cannot
// change any value — 0·x == 0 for the finite nonnegative counts stored
// here.

// laneActives fills sc.avB with lane j's active root cell
// act[v][{color_j(v)}] and reports whether any lane is nonzero (the
// batched form of the scalar kernels' `av == 0` early return).
func (st *batchState) laneActives(ctx *batchCtx, v int32, sc *batchScratch) ([]float64, bool) {
	L := st.lanes
	avB := sc.avB[:L]
	base := int(v) * L
	any := false
	if lf, ok := ctx.act.(*leafLanes); ok {
		// Implicit leaf active child: cell (v, {color_j(v)}, j) is by
		// definition the seeded 1 (or 0 on a label mismatch).
		if !lf.ok(v) {
			return avB, false
		}
		for j := 0; j < L; j++ {
			avB[j] = 1
		}
		return avB, true
	}
	if arow := ctx.act.LaneRow(v); arow != nil {
		for j := 0; j < L; j++ {
			av := arow[int(st.colors[base+j])*L+j]
			avB[j] = av
			any = any || av != 0
		}
		return avB, any
	}
	for j := 0; j < L; j++ {
		av := ctx.act.Get(v, int32(st.colors[base+j]), j)
		avB[j] = av
		any = any || av != 0
	}
	return avB, any
}

// passSize2B handles h == 2 for all lanes: lane j contributes only the
// pair set {color_j(v), color_j(u)} with distinct colors. The aggregated
// variant groups neighbors into per-(color, lane) sums first.
func (st *batchState) passSize2B(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch, aggregate bool) {
	L := st.lanes
	avB, any := st.laneActives(ctx, v, sc)
	if !any {
		return
	}
	pas := ctx.pas
	vbase := int(v) * L
	if !aggregate {
		if lf, ok := pas.(*leafLanes); ok {
			// Implicit leaf passive child: lane j of neighbor u holds 1 at
			// u's own color and 0 elsewhere, so the contraction collapses
			// to one colors-vector read per (neighbor, lane) — no table.
			for _, u := range adj {
				if !lf.ok(u) {
					continue
				}
				ubase := int(u) * L
				for j := 0; j < L; j++ {
					av := avB[j]
					if av == 0 {
						continue
					}
					cv := int(st.colors[vbase+j])
					cu := int(st.colors[ubase+j])
					if cu == cv {
						continue
					}
					buf[int(comb.PairIndex(cv, cu))*L+j] += av // pv == 1
				}
			}
			return
		}
		for _, u := range adj {
			ubase := int(u) * L
			if prow := pas.LaneRow(u); prow != nil {
				for j := 0; j < L; j++ {
					av := avB[j]
					if av == 0 {
						continue
					}
					cv := int(st.colors[vbase+j])
					cu := int(st.colors[ubase+j])
					if cu == cv {
						continue
					}
					if pv := prow[cu*L+j]; pv != 0 {
						buf[int(comb.PairIndex(cv, cu))*L+j] += av * pv
					}
				}
			} else if pas.Has(u) { // hash layout: probe per lane
				for j := 0; j < L; j++ {
					av := avB[j]
					if av == 0 {
						continue
					}
					cv := int(st.colors[vbase+j])
					cu := int(st.colors[ubase+j])
					if cu == cv {
						continue
					}
					if pv := pas.Get(u, int32(cu), j); pv != 0 {
						buf[int(comb.PairIndex(cv, cu))*L+j] += av * pv
					}
				}
			}
		}
		return
	}
	k := st.e.k
	colorAgg := sc.colorAgg[:k*L]
	clear(colorAgg)
	pas.GatherColors(adj, st.colors, colorAgg)
	for c := 0; c < k; c++ {
		cs := colorAgg[c*L : c*L+L]
		for j, s := range cs {
			if s == 0 {
				continue
			}
			// Same-color neighbors fold into colorAgg[cv_j] but form no
			// valid pair set — the batched form of the scalar kernel's
			// colorAgg[cv] = 0.
			cv := int(st.colors[vbase+j])
			if c == cv {
				continue
			}
			if av := avB[j]; av != 0 {
				buf[int(comb.PairIndex(cv, c))*L+j] += av * s
			}
		}
	}
}

// passActiveSingleB handles aN == 1, h > 2 for all lanes: lane j touches
// only the singleton entries of color_j(v). The aggregated variant sums
// whole lane-strided passive rows first, then walks each lane's entry
// list once.
func (st *batchState) passActiveSingleB(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch, aggregate bool) {
	L := st.lanes
	avB, any := st.laneActives(ctx, v, sc)
	if !any {
		return
	}
	pas := ctx.pas
	vbase := int(v) * L
	if !aggregate {
		for _, u := range adj {
			if prow := pas.LaneRow(u); prow != nil {
				for j := 0; j < L; j++ {
					av := avB[j]
					if av == 0 {
						continue
					}
					for _, en := range ctx.singles[int(st.colors[vbase+j])] {
						buf[int(en.SetIdx)*L+j] += av * prow[int(en.RestIdx)*L+j]
					}
				}
			} else if pas.Has(u) { // hash layout: probe per lane
				for j := 0; j < L; j++ {
					av := avB[j]
					if av == 0 {
						continue
					}
					for _, en := range ctx.singles[int(st.colors[vbase+j])] {
						if pv := pas.Get(u, en.RestIdx, j); pv != 0 {
							buf[int(en.SetIdx)*L+j] += av * pv
						}
					}
				}
			}
		}
		return
	}
	agg := sc.agg[:ctx.ncP*L]
	clear(agg)
	pas.AccumulateRows(adj, agg)
	for j := 0; j < L; j++ {
		av := avB[j]
		if av == 0 {
			continue
		}
		for _, en := range ctx.singles[int(st.colors[vbase+j])] {
			buf[int(en.SetIdx)*L+j] += av * agg[int(en.RestIdx)*L+j]
		}
	}
}

// passPassiveSingleB handles pN == 1, h > 2 for all lanes: for neighbor u,
// lane j touches only the singleton entries of color_j(u). The aggregated
// variant folds neighbors into k·L per-(color, lane) sums and walks each
// color's entry list once, with the lane sweep innermost on contiguous
// blocks.
func (st *batchState) passPassiveSingleB(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch, aggregate bool) {
	L := st.lanes
	arow := ctx.act.MaterializeRow(v, sc.actRow)
	pas := ctx.pas
	if !aggregate {
		if lf, ok := pas.(*leafLanes); ok {
			// Implicit leaf passive child: pv is 1 at u's own lane color,
			// so only that color's singleton entries contribute.
			for _, u := range adj {
				if !lf.ok(u) {
					continue
				}
				ubase := int(u) * L
				for j := 0; j < L; j++ {
					cu := int(st.colors[ubase+j])
					for _, en := range ctx.singles[cu] {
						if av := arow[int(en.RestIdx)*L+j]; av != 0 {
							buf[int(en.SetIdx)*L+j] += av // pv == 1
						}
					}
				}
			}
			return
		}
		for _, u := range adj {
			ubase := int(u) * L
			if prow := pas.LaneRow(u); prow != nil {
				for j := 0; j < L; j++ {
					cu := int(st.colors[ubase+j])
					pv := prow[cu*L+j]
					if pv == 0 {
						continue
					}
					for _, en := range ctx.singles[cu] {
						if av := arow[int(en.RestIdx)*L+j]; av != 0 {
							buf[int(en.SetIdx)*L+j] += av * pv
						}
					}
				}
			} else if pas.Has(u) { // hash layout: probe per lane
				for j := 0; j < L; j++ {
					cu := int(st.colors[ubase+j])
					pv := pas.Get(u, int32(cu), j)
					if pv == 0 {
						continue
					}
					for _, en := range ctx.singles[cu] {
						if av := arow[int(en.RestIdx)*L+j]; av != 0 {
							buf[int(en.SetIdx)*L+j] += av * pv
						}
					}
				}
			}
		}
		return
	}
	k := st.e.k
	colorAgg := sc.colorAgg[:k*L]
	clear(colorAgg)
	pas.GatherColors(adj, st.colors, colorAgg)
	for c := 0; c < k; c++ {
		cs := colorAgg[c*L : c*L+L]
		nonzero := false
		for _, s := range cs {
			if s != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			continue
		}
		for _, en := range ctx.singles[c] {
			laneMulAdd(buf[int(en.SetIdx)*L:][:L], arow[int(en.RestIdx)*L:], cs)
		}
	}
}

// passGeneralDirectB is the lane-widened Algorithm 2 inner step: for every
// neighbor u, every color set C, and every (Ca, Cp) split, run the
// multiply-add across all lanes of the contiguous lane blocks.
func (st *batchState) passGeneralDirectB(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch) {
	L := st.lanes
	arow := ctx.act.MaterializeRow(v, sc.actRow)
	pas := ctx.pas
	split, spn, nc := ctx.split, ctx.spn, ctx.nc
	for _, u := range adj {
		prow := pas.LaneRow(u)
		if prow == nil {
			if !pas.Has(u) {
				continue
			}
			prow = pas.MaterializeRow(u, sc.pasRow)
		}
		for ci := 0; ci < nc; ci++ {
			out := buf[ci*L : ci*L+L]
			base := ci * spn
			for j := base; j < base+spn; j++ {
				laneMulAdd(out, arow[int(split.ActiveIdx[j])*L:], prow[int(split.PassiveIdx[j])*L:])
			}
		}
	}
}

// passGeneralAggregateB is the lane-widened SpMM restructure: one
// neighbor-aggregation sweep builds the lane-strided agg[Cp] rows, then a
// single split contraction runs against the active lane row.
func (st *batchState) passGeneralAggregateB(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch) {
	L := st.lanes
	agg := sc.agg[:ctx.ncP*L]
	clear(agg)
	ctx.pas.AccumulateRows(adj, agg)
	arow := ctx.act.MaterializeRow(v, sc.actRow)
	split, spn, nc := ctx.split, ctx.spn, ctx.nc
	for ci := 0; ci < nc; ci++ {
		out := buf[ci*L : ci*L+L]
		base := ci * spn
		for j := base; j < base+spn; j++ {
			laneMulAdd(out, arow[int(split.ActiveIdx[j])*L:], agg[int(split.PassiveIdx[j])*L:])
		}
	}
}
