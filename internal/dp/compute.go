package dp

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comb"
	"repro/internal/part"
	"repro/internal/table"
)

// iterState holds everything one color-coding iteration needs.
type iterState struct {
	e      *Engine
	colors []int8
	tabs   map[*part.Node]table.Table
	// remaining consumer counts per node; a table is released when its
	// last consumer finishes (unless the engine keeps tables).
	remaining map[*part.Node]int
	// liveBytes is the running summed footprint of live tables, updated
	// on table fill and release — O(1) peak tracking instead of
	// re-summing the table map after every node.
	liveBytes int64
	// peakBytes tracks the maximum liveBytes observed.
	peakBytes int64
	// workers for the inner-parallel per-vertex loop (1 = sequential).
	workers int
	// keep retains every node's table (disables eager release) so the
	// caller can read or sample from them after the pass.
	keep bool

	// stop, when non-nil, is the cancellation flag armed by the run's
	// context watcher. DP loops poll it at vertex granularity (one
	// atomic load per vertex pass, negligible next to the pass itself).
	stop *atomic.Bool
	// aborted records that this iteration was cut short; its total is
	// meaningless and its tables have been released.
	aborted bool
	// total is the iteration's colorful mapping total (set by run();
	// carried here so parallel drivers can hand the whole state back).
	total float64
	// nodeTimes, when non-nil, accumulates per-node wall time in tree
	// evaluation order (observability; nil skips the clock calls).
	nodeTimes []time.Duration
	// Table-traffic accounting for RunStats.
	rowsAllocated, rowsReleased     int64
	tablesAllocated, tablesReleased int64
	// Tiling accounting for RunStats.
	tiledPasses int64
	tileSweeps  int64
}

// cancelled polls the iteration's stop flag.
func (st *iterState) cancelled() bool {
	return st.stop != nil && st.stop.Load()
}

// scratch is per-worker reusable buffer space, pooled on the Engine so it
// is reused across nodes, workers, and iterations instead of reallocated
// per computeNode call. All row buffers are sized to the engine's widest
// table (maxNC >= ncP for every node).
type scratch struct {
	buf      []float64 // output row, sliced to NumSets of current node
	actRow   []float64 // materialized active row (hash layout fallback)
	pasRow   []float64 // materialized passive row (hash layout fallback)
	agg      []float64 // aggregated neighbor passive rows (SpMM kernel)
	colorAgg []float64 // per-color neighbor sums (pN == 1 kernels), len k
	tileBuf  []float64 // block output rows of the tiled pass, lazily grown
	// kernel-choice tallies, flushed to the engine counters on putScratch.
	directN int64
	aggN    int64
}

// tileRows returns the block output-row buffer of the tiled pass,
// growing it on first use (the pool's steady state carries it across
// nodes and iterations).
func (sc *scratch) tileRows(n int) []float64 {
	if cap(sc.tileBuf) < n {
		sc.tileBuf = make([]float64, n)
	}
	return sc.tileBuf[:n]
}

// getScratch hands out pooled per-worker scratch space.
func (e *Engine) getScratch() *scratch {
	return e.scratchPool.Get().(*scratch)
}

// putScratch returns scratch to the pool, flushing its kernel tallies.
func (e *Engine) putScratch(sc *scratch) {
	if sc.directN != 0 {
		e.kernelDirect.Add(sc.directN)
		sc.directN = 0
	}
	if sc.aggN != 0 {
		e.kernelAggregate.Add(sc.aggN)
		sc.aggN = 0
	}
	e.scratchPool.Put(sc)
}

func (e *Engine) newIterState(rng *rand.Rand, workers int) *iterState {
	st := &iterState{
		e:         e,
		colors:    e.arena.I8(e.g.N()), // recycled across iterations
		tabs:      map[*part.Node]table.Table{},
		remaining: map[*part.Node]int{},
		workers:   workers,
		keep:      e.cfg.KeepTables,
	}
	if e.ord != nil {
		// Degree-bucketed execution order: draw the stream in ORIGINAL
		// vertex-id order (the exact per-vertex sequence an unreordered
		// run consumes) and scatter through the permutation, so every
		// original vertex keeps its color and the estimate stream stays
		// bit-identical.
		perm := e.ord.Perm
		for v := 0; v < e.g.N(); v++ {
			st.colors[int(perm[v])] = int8(rng.Intn(e.k))
		}
	} else {
		for i := range st.colors {
			st.colors[i] = int8(rng.Intn(e.k))
		}
	}
	if e.tree != nil {
		for _, n := range e.tree.Nodes {
			st.remaining[n] = n.Consumers
		}
	}
	return st
}

// recycleColors hands the iteration's color vector back to the engine
// arena (skipped for kept states, whose colors outlive the iteration).
func (st *iterState) recycleColors() {
	st.e.arena.PutI8(st.colors)
	st.colors = nil
}

// run executes the bottom-up DP (Algorithm 2) and returns the colorful
// mapping total of the full template. When the iteration's context is
// cancelled mid-pass, run releases all live tables, marks the state
// aborted, and returns 0 — the caller must discard the iteration.
func (st *iterState) run() float64 {
	e := st.e
	if e.bag != nil {
		return st.runBag()
	}
	for ni, n := range e.tree.Order {
		if st.cancelled() {
			st.abort()
			return 0
		}
		var nodeStart time.Time
		if st.nodeTimes != nil {
			nodeStart = time.Now()
		}
		nc := int(comb.Binomial(e.k, n.Size()))
		tab := table.NewInArena(e.cfg.TableKind, e.g.N(), nc, e.arena)
		st.tabs[n] = tab
		if n.IsLeaf() {
			st.initLeaf(n, tab)
		} else {
			st.computeNode(n, tab)
		}
		if st.nodeTimes != nil {
			st.nodeTimes[ni] += time.Since(nodeStart)
		}
		st.tablesAllocated++
		st.rowsAllocated += tab.Rows()
		if st.cancelled() {
			// The pass aborted mid-node; the table is partial garbage.
			st.abort()
			return 0
		}
		st.liveBytes += tab.Bytes()
		if st.liveBytes > st.peakBytes {
			st.peakBytes = st.liveBytes
		}
		if !n.IsLeaf() {
			st.releaseChildren(n)
		}
	}
	total := st.tabs[e.tree.Root].Total()
	if st.keep {
		e.kept = st.tabs
		e.keptColors = st.colors
	} else {
		root := st.tabs[e.tree.Root]
		st.rowsReleased += root.Rows()
		st.tablesReleased++
		root.Release()
		st.recycleColors()
	}
	return total
}

// abort releases every live table after a cancellation and marks the
// iteration as discarded.
func (st *iterState) abort() {
	st.aborted = true
	//lint:maporder ok — release-only loop on an aborted iteration: the stats it folds are commutative integer sums
	for n, tab := range st.tabs {
		st.rowsReleased += tab.Rows()
		st.tablesReleased++
		tab.Release()
		delete(st.tabs, n)
	}
	st.liveBytes = 0
	st.recycleColors()
}

func (st *iterState) releaseChildren(n *part.Node) {
	if st.keep {
		return
	}
	for _, ch := range []*part.Node{n.Active, n.Passive} {
		st.remaining[ch]--
		if st.remaining[ch] == 0 {
			tab := st.tabs[ch]
			st.liveBytes -= tab.Bytes()
			st.rowsReleased += tab.Rows()
			st.tablesReleased++
			tab.Release()
			delete(st.tabs, ch)
		}
	}
}

// initLeaf fills a single-vertex subtemplate table: vertex v holds count
// 1 for the singleton color set {color(v)} — but only when v's graph
// label matches the leaf's template label (Algorithm 2, line 4, plus the
// labeled pruning of §V-A).
func (st *iterState) initLeaf(n *part.Node, tab table.Table) {
	e := st.e
	labeled := e.t.Labeled()
	var want int32
	if labeled {
		want = e.t.Label(n.LeafVertex())
	}
	for v := int32(0); v < int32(e.g.N()); v++ {
		if labeled && e.g.Label(v) != want {
			continue
		}
		// The combinatorial index of the singleton {c} is c itself.
		tab.Set(v, int32(st.colors[v]), 1)
	}
}

// computeNode fills the table of an internal node from its children's
// tables (Algorithm 2, lines 7-15), sharding vertices across workers.
//
// Workers never read the table being written (vertex passes read only the
// children's completed tables), so for layouts that are unsafe for
// concurrent writers (Hash) each worker fills a private staging table
// lock-free and the stagings are merged after the barrier — no global
// store mutex serializing the workers.
func (st *iterState) computeNode(n *part.Node, tab table.Table) {
	e := st.e
	ctx := st.nodeContext(n, tab)
	nVerts := int32(e.g.N())
	tc := newTileCtx(&ctx.kernelShape, e.tilePlanFor(&ctx.kernelShape, 1))
	if tc != nil {
		st.tiledPasses++
		st.tileSweeps += int64(len(tc.ts))
	}

	if st.workers <= 1 {
		sc := e.getScratch()
		if tc != nil {
			st.passRangeTiled(ctx, tab, tc, 0, nVerts, sc)
		} else {
			for v := int32(0); v < nVerts; v++ {
				if st.cancelled() {
					break
				}
				st.vertexPass(ctx, tab, v, sc)
			}
		}
		e.putScratch(sc)
		return
	}

	mainHash, stage := tab.(*table.HashTable)
	var stagings []*table.HashTable
	if stage {
		stagings = make([]*table.HashTable, st.workers)
	}
	chunk := chunkFor(int(nVerts), st.workers)
	if tc != nil {
		chunk = chunkForTiled(int(nVerts), st.workers, tc.plan.blockVerts)
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < st.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			target := tab
			if stage {
				s := table.NewHashArena(int(nVerts), ctx.nc, e.arena)
				stagings[w] = s
				target = s
			}
			sc := e.getScratch()
			defer e.putScratch(sc)
			for {
				if st.cancelled() {
					return
				}
				start := next.Add(int32(chunk)) - int32(chunk)
				if start >= nVerts {
					return
				}
				end := start + int32(chunk)
				if end > nVerts {
					end = nVerts
				}
				if tc != nil {
					st.passRangeTiled(ctx, target, tc, start, end, sc)
					continue
				}
				for v := start; v < end; v++ {
					if st.cancelled() {
						return
					}
					st.vertexPass(ctx, target, v, sc)
				}
			}
		}(w)
	}
	wg.Wait()
	if stage {
		for _, s := range stagings {
			if s != nil {
				mainHash.MergeFrom(s)
				s.Release()
			}
		}
	}
}

// chunkOverride, when positive, pins the work-stealing chunk size — a
// benchmark knob for comparing against the historical constant (512).
// Set it only while no DP pass is running.
var chunkOverride int

// chunkFor sizes the work-stealing chunks of the inner-parallel vertex
// loop. The historical constant 512 under-splits small graphs (a worker
// can end up with one giant chunk while others idle) and over-splits
// huge ones (atomic contention on the shared cursor). Targeting ~8
// chunks per worker balances stealing granularity against cursor
// traffic, with a floor that keeps per-chunk overhead negligible and a
// ceiling that preserves stealing on degree-skewed graphs, where one
// chunk of hubs can cost many times a chunk of leaves.
func chunkFor(nVerts, workers int) int {
	if chunkOverride > 0 {
		return chunkOverride
	}
	const (
		chunksPerWorker = 8
		minChunk        = 64
		maxChunk        = 4096
	)
	c := nVerts / (workers * chunksPerWorker)
	if c < minChunk {
		return minChunk
	}
	if c > maxChunk {
		return maxChunk
	}
	return c
}

// materializeRow returns a direct row when the layout has one, otherwise
// decodes it in one pass (succinct layout, via table.RowDecoder) or
// copies it cell-by-cell into dst (hash layout).
func materializeRow(tab table.Table, v int32, dst []float64, width int) []float64 {
	if row := tab.Row(v); row != nil {
		return row
	}
	dst = dst[:width]
	if rd, ok := tab.(table.RowDecoder); ok {
		if !rd.DecodeRowInto(v, dst) {
			clear(dst)
		}
		return dst
	}
	for ci := 0; ci < width; ci++ {
		dst[ci] = tab.Get(v, int32(ci))
	}
	return dst
}

// IterProfile breaks one iteration's wall time into phases, reproducing
// the paper's observation (§V-A) that the dominant cost is the inner
// table-combination step of Algorithm 2 rather than coloring or leaf
// initialization.
type IterProfile struct {
	Coloring time.Duration
	LeafInit time.Duration
	Compute  time.Duration // internal-node DP passes (the paper's "step 12")
	Finalize time.Duration
	// PerNode holds the compute time of each internal node in
	// evaluation order.
	PerNode []time.Duration
}

// Total returns the summed phase time.
func (p IterProfile) Total() time.Duration {
	return p.Coloring + p.LeafInit + p.Compute + p.Finalize
}

// ComputeShare returns the fraction of time spent in internal-node DP
// computation.
func (p IterProfile) ComputeShare() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.Compute) / float64(t)
}

// ProfileIteration runs one sequential iteration under the given seed and
// returns its phase breakdown.
func (e *Engine) ProfileIteration(seed int64) (IterProfile, float64) {
	var prof IterProfile
	start := time.Now()
	st := e.newIterState(rand.New(rand.NewSource(seed)), 1)
	prof.Coloring = time.Since(start)
	if e.bag != nil {
		// The bag DP has no leaf/internal split; its whole pass is the
		// combination step.
		t0 := time.Now()
		total := st.runBag()
		prof.Compute = time.Since(t0)
		return prof, e.scale(total)
	}

	for _, n := range e.tree.Order {
		nc := int(comb.Binomial(e.k, n.Size()))
		tab := table.NewInArena(e.cfg.TableKind, e.g.N(), nc, e.arena)
		st.tabs[n] = tab
		phase := time.Now()
		if n.IsLeaf() {
			st.initLeaf(n, tab)
			prof.LeafInit += time.Since(phase)
		} else {
			st.computeNode(n, tab)
			d := time.Since(phase)
			prof.Compute += d
			prof.PerNode = append(prof.PerNode, d)
		}
		if !n.IsLeaf() {
			st.releaseChildren(n)
		}
	}
	phase := time.Now()
	total := st.tabs[e.tree.Root].Total()
	st.tabs[e.tree.Root].Release()
	st.recycleColors()
	prof.Finalize = time.Since(phase)
	return prof, e.scale(total)
}
