package dp

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comb"
	"repro/internal/part"
	"repro/internal/table"
)

// iterState holds everything one color-coding iteration needs.
type iterState struct {
	e      *Engine
	colors []int8
	tabs   map[*part.Node]table.Table
	// remaining consumer counts per node; a table is released when its
	// last consumer finishes (unless the engine keeps tables).
	remaining map[*part.Node]int
	// peakBytes tracks the maximum summed footprint of live tables.
	peakBytes int64
	// workers for the inner-parallel per-vertex loop (1 = sequential).
	workers int
	// keep retains every node's table (disables eager release) so the
	// caller can read or sample from them after the pass.
	keep bool
	// storeMu serializes stores into layouts that are not safe for
	// concurrent writers (the hash layout).
	storeMu sync.Mutex
}

// scratch is per-worker reusable buffer space.
type scratch struct {
	buf    []float64 // output row, len = NumSets of current node
	actRow []float64 // materialized active row (hash layout fallback)
	pasRow []float64 // materialized passive row (hash layout fallback)
}

func (e *Engine) newIterState(rng *rand.Rand, workers int) *iterState {
	st := &iterState{
		e:         e,
		colors:    make([]int8, e.g.N()),
		tabs:      map[*part.Node]table.Table{},
		remaining: map[*part.Node]int{},
		workers:   workers,
		keep:      e.cfg.KeepTables,
	}
	for i := range st.colors {
		st.colors[i] = int8(rng.Intn(e.k))
	}
	for _, n := range e.tree.Nodes {
		st.remaining[n] = n.Consumers
	}
	return st
}

// run executes the bottom-up DP (Algorithm 2) and returns the colorful
// mapping total of the full template.
func (st *iterState) run() float64 {
	e := st.e
	for _, n := range e.tree.Order {
		nc := int(comb.Binomial(e.k, n.Size()))
		tab := table.New(e.cfg.TableKind, e.g.N(), nc)
		st.tabs[n] = tab
		if n.IsLeaf() {
			st.initLeaf(n, tab)
		} else {
			st.computeNode(n, tab)
		}
		st.trackPeak()
		if !n.IsLeaf() {
			st.releaseChildren(n)
		}
	}
	total := st.tabs[e.tree.Root].Total()
	if st.keep {
		e.kept = st.tabs
		e.keptColors = st.colors
	} else {
		st.tabs[e.tree.Root].Release()
	}
	return total
}

func (st *iterState) trackPeak() {
	var sum int64
	for _, tab := range st.tabs {
		sum += tab.Bytes()
	}
	if sum > st.peakBytes {
		st.peakBytes = sum
	}
}

func (st *iterState) releaseChildren(n *part.Node) {
	if st.keep {
		return
	}
	for _, ch := range []*part.Node{n.Active, n.Passive} {
		st.remaining[ch]--
		if st.remaining[ch] == 0 {
			st.tabs[ch].Release()
			delete(st.tabs, ch)
		}
	}
}

// initLeaf fills a single-vertex subtemplate table: vertex v holds count
// 1 for the singleton color set {color(v)} — but only when v's graph
// label matches the leaf's template label (Algorithm 2, line 4, plus the
// labeled pruning of §V-A).
func (st *iterState) initLeaf(n *part.Node, tab table.Table) {
	e := st.e
	labeled := e.t.Labeled()
	var want int32
	if labeled {
		want = e.t.Label(n.LeafVertex())
	}
	for v := int32(0); v < int32(e.g.N()); v++ {
		if labeled && e.g.Label(v) != want {
			continue
		}
		// The combinatorial index of the singleton {c} is c itself.
		tab.Set(v, int32(st.colors[v]), 1)
	}
}

// computeNode fills the table of an internal node from its children's
// tables (Algorithm 2, lines 7-15), sharding vertices across workers.
func (st *iterState) computeNode(n *part.Node, tab table.Table) {
	e := st.e
	act := st.tabs[n.Active]
	pas := st.tabs[n.Passive]
	nc := tab.NumSets()
	ncP := int(comb.Binomial(e.k, n.Passive.Size()))
	split := e.splits[[2]int{n.Size(), n.Active.Size()}]
	special := !e.cfg.DisableLeafSpecial
	singles := e.singles[n.Size()] // nil unless a child of this size-class is a single vertex

	nVerts := int32(e.g.N())
	if st.workers <= 1 {
		sc := &scratch{
			buf:    make([]float64, nc),
			actRow: make([]float64, e.maxNC),
			pasRow: make([]float64, e.maxNC),
		}
		for v := int32(0); v < nVerts; v++ {
			st.vertexPass(n, tab, act, pas, split, special, singles, nc, ncP, v, sc)
		}
		return
	}

	const chunk = 512
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < st.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &scratch{
				buf:    make([]float64, nc),
				actRow: make([]float64, e.maxNC),
				pasRow: make([]float64, e.maxNC),
			}
			for {
				start := next.Add(chunk) - chunk
				if start >= nVerts {
					return
				}
				end := start + chunk
				if end > nVerts {
					end = nVerts
				}
				for v := start; v < end; v++ {
					st.vertexPass(n, tab, act, pas, split, special, singles, nc, ncP, v, sc)
				}
			}
		}()
	}
	wg.Wait()
}

// vertexPass computes the full color-set row of one vertex v for node n.
func (st *iterState) vertexPass(
	n *part.Node, tab, act, pas table.Table,
	split *comb.SplitTable, special bool, singles [][]comb.SingletonEntry,
	nc, ncP int, v int32, sc *scratch,
) {
	if !act.Has(v) {
		return
	}
	e := st.e
	aN, pN := n.Active.Size(), n.Passive.Size()
	buf := sc.buf
	for i := range buf {
		buf[i] = 0
	}
	any := false
	adj := e.g.Adj(v)

	switch {
	case special && aN == 1 && pN == 1:
		// Both children are single vertices: the only contributing color
		// set is {color(v), color(u)} with distinct colors.
		av := act.Get(v, int32(st.colors[v]))
		if av == 0 {
			return
		}
		cv := int(st.colors[v])
		for _, u := range adj {
			cu := int(st.colors[u])
			if cu == cv || !pas.Has(u) {
				continue
			}
			pv := pas.Get(u, int32(cu))
			if pv != 0 {
				buf[comb.PairIndex(cv, cu)] += av * pv
				any = true
			}
		}

	case special && singles != nil && aN == 1:
		// Active child is the root alone: only color sets containing
		// color(v) contribute, and the passive part is C \ {color(v)} —
		// the (k-1)/k work reduction of §III-D.
		av := act.Get(v, int32(st.colors[v]))
		if av == 0 {
			return
		}
		entries := singles[int(st.colors[v])]
		for _, u := range adj {
			if !pas.Has(u) {
				continue
			}
			if prow := pas.Row(u); prow != nil {
				for _, en := range entries {
					if pv := prow[en.RestIdx]; pv != 0 {
						buf[en.SetIdx] += av * pv
						any = true
					}
				}
			} else {
				for _, en := range entries {
					if pv := pas.Get(u, en.RestIdx); pv != 0 {
						buf[en.SetIdx] += av * pv
						any = true
					}
				}
			}
		}

	case special && singles != nil && pN == 1:
		// Passive child is a single vertex: for neighbor u only color
		// sets containing color(u) contribute, with the active part
		// C \ {color(u)}.
		arow := materializeRow(act, v, sc.actRow, int(comb.Binomial(e.k, aN)))
		for _, u := range adj {
			if !pas.Has(u) {
				continue
			}
			pv := pas.Get(u, int32(st.colors[u]))
			if pv == 0 {
				continue
			}
			for _, en := range singles[int(st.colors[u])] {
				if av := arow[en.RestIdx]; av != 0 {
					buf[en.SetIdx] += av * pv
					any = true
				}
			}
		}

	default:
		// General split (Algorithm 2 lines 9-12): for every neighbor u
		// and every color set C, sum products over all (Ca, Cp) splits.
		arow := materializeRow(act, v, sc.actRow, int(comb.Binomial(e.k, aN)))
		spn := split.SplitsPerSet
		for _, u := range adj {
			if !pas.Has(u) {
				continue
			}
			prow := pas.Row(u)
			if prow == nil {
				prow = materializeRow(pas, u, sc.pasRow, ncP)
			}
			for ci := 0; ci < nc; ci++ {
				base := ci * spn
				var s float64
				for j := base; j < base+spn; j++ {
					if av := arow[split.ActiveIdx[j]]; av != 0 {
						s += av * prow[split.PassiveIdx[j]]
					}
				}
				if s != 0 {
					buf[ci] += s
					any = true
				}
			}
		}
	}

	if !any {
		return
	}
	if _, isHash := tab.(*table.HashTable); isHash && st.workers > 1 {
		st.storeMu.Lock()
		tab.StoreRow(v, buf)
		st.storeMu.Unlock()
		return
	}
	tab.StoreRow(v, buf)
}

// materializeRow returns a direct row when the layout has one, otherwise
// copies the row cell-by-cell into dst (hash layout).
func materializeRow(tab table.Table, v int32, dst []float64, width int) []float64 {
	if row := tab.Row(v); row != nil {
		return row
	}
	dst = dst[:width]
	for ci := 0; ci < width; ci++ {
		dst[ci] = tab.Get(v, int32(ci))
	}
	return dst
}

// IterProfile breaks one iteration's wall time into phases, reproducing
// the paper's observation (§V-A) that the dominant cost is the inner
// table-combination step of Algorithm 2 rather than coloring or leaf
// initialization.
type IterProfile struct {
	Coloring time.Duration
	LeafInit time.Duration
	Compute  time.Duration // internal-node DP passes (the paper's "step 12")
	Finalize time.Duration
	// PerNode holds the compute time of each internal node in
	// evaluation order.
	PerNode []time.Duration
}

// Total returns the summed phase time.
func (p IterProfile) Total() time.Duration {
	return p.Coloring + p.LeafInit + p.Compute + p.Finalize
}

// ComputeShare returns the fraction of time spent in internal-node DP
// computation.
func (p IterProfile) ComputeShare() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.Compute) / float64(t)
}

// ProfileIteration runs one sequential iteration under the given seed and
// returns its phase breakdown.
func (e *Engine) ProfileIteration(seed int64) (IterProfile, float64) {
	var prof IterProfile
	start := time.Now()
	st := e.newIterState(rand.New(rand.NewSource(seed)), 1)
	prof.Coloring = time.Since(start)

	for _, n := range e.tree.Order {
		nc := int(comb.Binomial(e.k, n.Size()))
		tab := table.New(e.cfg.TableKind, e.g.N(), nc)
		st.tabs[n] = tab
		phase := time.Now()
		if n.IsLeaf() {
			st.initLeaf(n, tab)
			prof.LeafInit += time.Since(phase)
		} else {
			st.computeNode(n, tab)
			d := time.Since(phase)
			prof.Compute += d
			prof.PerNode = append(prof.PerNode, d)
		}
		if !n.IsLeaf() {
			st.releaseChildren(n)
		}
	}
	phase := time.Now()
	total := st.tabs[e.tree.Root].Total()
	st.tabs[e.tree.Root].Release()
	prof.Finalize = time.Since(phase)
	return prof, e.scale(total)
}
