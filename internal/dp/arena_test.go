package dp

import (
	"math/rand"
	"testing"

	"repro/internal/table"
	"repro/internal/tmpl"
)

// TestArenaReuseAcrossIterations checks the cross-iteration table arena:
// once a run has warmed the engine's free lists, repeating the same
// iteration schedule must be served entirely from recycled slabs — zero
// arena misses — for all three table layouts. Table widths are a
// function of the partition tree, not the coloring, so every slab class
// recurs exactly.
func TestArenaReuseAcrossIterations(t *testing.T) {
	for _, kind := range []table.Kind{table.Lazy, table.Naive, table.Hash, table.Succinct} {
		rng := rand.New(rand.NewSource(1))
		g := randomGraph(rng, 500, 2500)
		cfg := DefaultConfig()
		cfg.TableKind = kind
		cfg.Mode = Inner
		cfg.Workers = 1
		e, err := New(g, tmpl.Path(5), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(5); err != nil { // warm the free lists
			t.Fatal(err)
		}
		h0, m0 := e.ArenaStats()
		if m0 == 0 {
			t.Fatalf("%v: warm-up reported no arena misses (slabs not arena-backed?)", kind)
		}
		res, err := e.Run(5)
		if err != nil {
			t.Fatal(err)
		}
		h1, m1 := e.ArenaStats()
		if m1 != m0 {
			t.Fatalf("%v: %d arena misses after warm-up (hits %d)", kind, m1-m0, h1-h0)
		}
		if h1 <= h0 {
			t.Fatalf("%v: no arena hits on a warm run", kind)
		}
		if res.Stats.ArenaMisses != 0 {
			t.Fatalf("%v: RunStats reports %d misses on a warm run", kind, res.Stats.ArenaMisses)
		}
		if res.Stats.ArenaHits != h1-h0 {
			t.Fatalf("%v: RunStats hits %d != engine delta %d", kind, res.Stats.ArenaHits, h1-h0)
		}
	}
}

// TestArenaReuseBatched is the batched counterpart: lane tables draw
// B×-wide slabs from the same arena, and a warm batched run must also be
// miss-free.
func TestArenaReuseBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 400, 1600)
	cfg := DefaultConfig()
	cfg.Batch = 4
	e, err := New(g, tmpl.Path(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(8); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ArenaMisses != 0 {
		t.Fatalf("warm batched run reported %d arena misses", res.Stats.ArenaMisses)
	}
	if res.Stats.ArenaHits == 0 {
		t.Fatal("warm batched run reported no arena hits")
	}
}

// TestIterationAllocsAfterWarmup asserts the satellite requirement: after
// the arena is warm, a full iteration performs no per-iteration slab
// allocations — only the fixed bookkeeping objects (iteration state,
// maps, table headers, rng) remain, a small constant independent of the
// graph size.
func TestIterationAllocsAfterWarmup(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 2000, 8000)
	cfg := DefaultConfig()
	cfg.TableKind = table.Naive
	cfg.Workers = 1
	cfg.Mode = Inner
	e, err := New(g, tmpl.Path(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.ColorfulTotal(0) // warm the arena and scratch pool
	_, m0 := e.ArenaStats()
	allocs := testing.AllocsPerRun(10, func() {
		e.ColorfulTotal(1)
	})
	_, m1 := e.ArenaStats()
	if m1 != m0 {
		t.Fatalf("warm iterations performed %d slab allocations (arena misses)", m1-m0)
	}
	// Fixed bookkeeping only: 13 table headers, iterState, two maps, the
	// rng, the colors recycle path. The 2000-vertex, C(7,h)-wide data
	// slabs (tens of KB each) must all come from the arena.
	budget := 90.0
	if raceEnabled {
		budget = 120.0
	}
	if allocs > budget {
		t.Fatalf("warm iteration allocated %v objects; arena reuse regressed", allocs)
	}
}

// TestChunkFor pins the adaptive work-stealing chunk policy: ~8 chunks
// per worker between the floor and ceiling, and the override knob wins.
func TestChunkFor(t *testing.T) {
	cases := []struct {
		nVerts, workers, want int
	}{
		{1_000, 4, 64},        // below the floor: small graphs keep cheap chunks
		{100_000, 4, 3125},    // in range: nVerts / (workers*8)
		{10_000_000, 4, 4096}, // above the ceiling: preserve stealing on skew
		{512, 1, 64},
		{1_000_000, 16, 4096}, // 1e6/(16*8) = 7812, clamped to the ceiling
		{200_000, 8, 3125},
	}
	for _, c := range cases {
		if got := chunkFor(c.nVerts, c.workers); got != c.want {
			t.Errorf("chunkFor(%d, %d) = %d, want %d", c.nVerts, c.workers, got, c.want)
		}
	}
	chunkOverride = 512
	defer func() { chunkOverride = 0 }()
	if got := chunkFor(1_000_000, 4); got != 512 {
		t.Errorf("chunkOverride ignored: got %d", got)
	}
}
