package dp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/table"
	"repro/internal/tmpl"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func randomTree(rng *rand.Rand, k int) *tmpl.Template {
	edges := make([][2]int, 0, k-1)
	for v := 1; v < k; v++ {
		edges = append(edges, [2]int{rng.Intn(v), v})
	}
	return tmpl.MustTree("rand", k, edges, nil)
}

// TestColorfulExactEquivalence is the keystone correctness test: under a
// fixed coloring, the DP's colorful-mapping total must EXACTLY equal
// brute-force colorful enumeration, for every combination of strategy,
// table layout, sharing, leaf specialization, and worker count.
func TestColorfulExactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(18)
		g := randomGraph(rng, n, n*2)
		k := 2 + rng.Intn(4)
		tr := randomTree(rng, k)
		seed := rng.Int63()

		var want int64 = -1
		for _, strat := range []part.Strategy{part.OneAtATime, part.Balanced} {
			for _, kind := range table.Kinds {
				for _, share := range []bool{false, true} {
					for _, noSpecial := range []bool{false, true} {
						for _, workers := range []int{1, 3} {
							cfg := DefaultConfig()
							cfg.Strategy = strat
							cfg.TableKind = kind
							cfg.Share = share
							cfg.DisableLeafSpecial = noSpecial
							cfg.Workers = workers
							cfg.Mode = Inner
							e, err := New(g, tr, cfg)
							if err != nil {
								t.Fatal(err)
							}
							if want < 0 {
								want = exact.CountColorfulMappings(g, tr, e.ColoringFor(seed))
							}
							got := e.ColorfulTotal(seed)
							if got != float64(want) {
								t.Fatalf("trial %d (%v/%v/share=%v/nospecial=%v/w=%d): DP total %v, exact %d\ntemplate %v",
									trial, strat, kind, share, noSpecial, workers, got, want, tr)
							}
						}
					}
				}
			}
		}
	}
}

// TestColorfulEquivalenceExtraColors repeats the keystone check with more
// colors than template vertices.
func TestColorfulEquivalenceExtraColors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 15, 30)
	tr := tmpl.Spider(2, 1, 1) // k = 5
	for _, colors := range []int{5, 6, 8} {
		cfg := DefaultConfig()
		cfg.Colors = colors
		e, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.CountColorfulMappings(g, tr, e.ColoringFor(99))
		if got := e.ColorfulTotal(99); got != float64(want) {
			t.Fatalf("colors=%d: DP %v, exact %d", colors, got, want)
		}
	}
}

// TestColorfulEquivalenceLabeled checks labeled pruning end to end.
func TestColorfulEquivalenceLabeled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 20, 50)
	g.Labels = make([]int32, g.N())
	for i := range g.Labels {
		g.Labels[i] = int32(rng.Intn(3))
	}
	base := tmpl.Spider(2, 1, 1)
	lt, err := base.WithLabels("lab", []int32{0, 1, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range table.Kinds {
		cfg := DefaultConfig()
		cfg.TableKind = kind
		e, err := New(g, lt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.CountColorfulMappings(g, lt, e.ColoringFor(4))
		if got := e.ColorfulTotal(4); got != float64(want) {
			t.Fatalf("%v: labeled DP %v, exact %d", kind, got, want)
		}
	}
}

func TestEstimateUnbiased(t *testing.T) {
	// With enough iterations the mean estimate must approach the exact
	// occurrence count.
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(rng, 30, 90)
	tr := tmpl.Path(4)
	want := float64(exact.Count(g, tr))
	cfg := DefaultConfig()
	cfg.Seed = 5
	e, err := New(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Skip("degenerate instance")
	}
	rel := math.Abs(res.Estimate-want) / want
	if rel > 0.10 {
		t.Fatalf("estimate %.1f vs exact %.1f (rel err %.3f)", res.Estimate, want, rel)
	}
	if res.StdErr <= 0 {
		t.Fatal("stderr not computed")
	}
}

func TestInnerOuterSameEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 25, 60)
	tr := tmpl.Path(5)
	results := map[Mode][]float64{}
	for _, mode := range []Mode{Inner, Outer} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.Workers = 4
		cfg.Seed = 77
		e, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(8)
		if err != nil {
			t.Fatal(err)
		}
		results[mode] = res.PerIteration
	}
	for i := range results[Inner] {
		if results[Inner][i] != results[Outer][i] {
			t.Fatalf("iteration %d differs between modes: %v vs %v", i, results[Inner][i], results[Outer][i])
		}
	}
}

func TestAutoModeSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	small := randomGraph(rng, 50, 100)
	cfg := DefaultConfig()
	e, err := New(small, tmpl.Path(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.mode() != Outer {
		t.Fatalf("small graph resolved to %v, want Outer", e.mode())
	}
	if Inner.String() != "inner" || Outer.String() != "outer" || Auto.String() != "auto" || Mode(9).String() == "" {
		t.Fatal("mode strings broken")
	}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 10, 15)
	if _, err := New(nil, tmpl.Path(3), DefaultConfig()); err == nil {
		t.Error("nil graph accepted")
	}
	cfg := DefaultConfig()
	cfg.Colors = 2
	if _, err := New(g, tmpl.Path(3), cfg); err == nil {
		t.Error("too few colors accepted")
	}
	cfg = DefaultConfig()
	cfg.Colors = 40
	if _, err := New(g, tmpl.Path(3), cfg); err == nil {
		t.Error("too many colors accepted")
	}
	lt, _ := tmpl.Path(3).WithLabels("l", []int32{0, 1, 0})
	if _, err := New(g, lt, DefaultConfig()); err == nil {
		t.Error("labeled template on unlabeled graph accepted")
	}
	e, _ := New(g, tmpl.Path(3), DefaultConfig())
	if _, err := e.Run(0); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := e.VertexCounts(0); err == nil {
		t.Error("zero iterations accepted for vertex counts")
	}
}

func TestEngineAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 10, 15)
	e, err := New(g, tmpl.Path(3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.Colors() != 3 || e.Automorphisms() != 2 || e.Tree() == nil {
		t.Fatal("accessors broken")
	}
	p := e.ColorfulProbability()
	want := 6.0 / 27.0 // 3!/3^3
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("colorful probability %v, want %v", p, want)
	}
}

func TestSingleVertexTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 17, 25)
	e, err := New(g, tmpl.MustTree("k1", 1, nil, nil), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 17 {
		t.Fatalf("K1 estimate %v, want 17 (number of vertices)", res.Estimate)
	}
}

func TestEdgeTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 20, 40)
	e, err := New(g, tmpl.Path(2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(g.M())
	if math.Abs(res.Estimate-want)/want > 0.1 {
		t.Fatalf("edge estimate %v, want ~%v", res.Estimate, want)
	}
}

func TestVertexCountsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 14, 26)
	tr := tmpl.Path(3)
	cfg := DefaultConfig()
	cfg.RootVertex = 1 // center of the path
	cfg.Seed = 13
	e, err := New(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.VertexCounts(1500)
	if err != nil {
		t.Fatal(err)
	}
	exactRooted := exact.CountRootedMappings(g, tr, 1)
	rAut := tr.RootedAutomorphisms(1) // = 2 (swap the arms)
	for v := range got {
		want := float64(exactRooted[v]) / float64(rAut)
		if want == 0 {
			if got[v] != 0 {
				t.Fatalf("vertex %d: got %v, want 0", v, got[v])
			}
			continue
		}
		if math.Abs(got[v]-want)/want > 0.25 {
			t.Fatalf("vertex %d: got %.2f, want %.2f", v, got[v], want)
		}
	}
	// Sharing must be rejected for per-vertex counts.
	cfg.Share = true
	e2, err := New(g, tmpl.MustNamed("U7-2"), cfg2Share(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.VertexCounts(1); err == nil {
		t.Fatal("shared engine accepted for vertex counts")
	}
}

func cfg2Share(cfg Config) Config {
	cfg.Share = true
	cfg.RootVertex = -1
	return cfg
}

func TestSampleEmbeddings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 20, 50)
	tr := tmpl.Spider(2, 1, 1)
	cfg := DefaultConfig()
	cfg.KeepTables = true
	cfg.Seed = 3
	e, err := New(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SampleEmbeddings(rng, 1); err == nil {
		t.Fatal("sampling before any run accepted")
	}
	if _, err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	embs, err := e.SampleEmbeddings(rng, 30)
	if err != nil {
		t.Skip("no colorful embeddings under this coloring")
	}
	colors := e.keptColors
	for _, emb := range embs {
		if err := e.VerifyEmbedding(emb); err != nil {
			t.Fatal(err)
		}
		seen := map[int8]bool{}
		for _, v := range emb.Mapping {
			c := colors[v]
			if seen[c] {
				t.Fatal("sampled embedding not colorful")
			}
			seen[c] = true
		}
	}
}

func TestVerifyEmbeddingRejectsBadMappings(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}}, nil)
	e, err := New(g, tmpl.Path(3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []Embedding{
		{Mapping: []int32{0, 1}},    // wrong length
		{Mapping: []int32{0, 1, 0}}, // duplicate
		{Mapping: []int32{0, 2, 3}}, // missing edge 0-2
		{Mapping: []int32{0, 1, 9}}, // out of range
	}
	for i, emb := range bad {
		if err := e.VerifyEmbedding(emb); err == nil {
			t.Errorf("bad embedding %d accepted", i)
		}
	}
	if err := e.VerifyEmbedding(Embedding{Mapping: []int32{0, 1, 2}}); err != nil {
		t.Errorf("good embedding rejected: %v", err)
	}
}

func TestPeakBytesOrdering(t *testing.T) {
	// A sparse graph and a large template: many vertices never acquire
	// counts for the bigger subtemplates, which is where the lazy layout
	// saves memory (with small templates the per-row header overhead can
	// exceed the savings, as on a 3-vertex template).
	rng := rand.New(rand.NewSource(55))
	g := randomGraph(rng, 3000, 3000)
	tr := tmpl.Path(10)
	peak := map[table.Kind]int64{}
	for _, kind := range table.Kinds {
		cfg := DefaultConfig()
		cfg.TableKind = kind
		cfg.Seed = 9
		e, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		peak[kind] = res.PeakTableBytes
	}
	if peak[table.Naive] < peak[table.Lazy] {
		t.Fatalf("naive peak %d < lazy peak %d", peak[table.Naive], peak[table.Lazy])
	}
	if peak[table.Naive] <= 0 {
		t.Fatal("peak tracking broken")
	}
}

func TestIterationsFor(t *testing.T) {
	if IterationsFor(0.1, 0.1, 5) <= IterationsFor(0.2, 0.1, 5) {
		t.Fatal("tighter eps should need more iterations")
	}
	if IterationsFor(0.1, 0.05, 5) <= IterationsFor(0.1, 0.2, 5) {
		t.Fatal("tighter delta should need more iterations")
	}
	if IterationsFor(0.1, 0.1, 8) <= IterationsFor(0.1, 0.1, 4) {
		t.Fatal("larger templates should need more iterations")
	}
	if IterationsFor(0, 0.1, 5) != 1 || IterationsFor(0.1, 0, 5) != 1 {
		t.Fatal("degenerate parameters should clamp to 1")
	}
	if IterationsFor(1e-9, 1e-9, 30) != math.MaxInt32 {
		t.Fatal("overflow not clamped")
	}
}

func TestShareMatchesUnshared(t *testing.T) {
	// Estimates must be identical with and without subtemplate sharing.
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 40, 100)
	tr := tmpl.MustNamed("U7-2")
	var base []float64
	for _, share := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Share = share
		cfg.Seed = 23
		e, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res.PerIteration
			continue
		}
		for i := range base {
			if base[i] != res.PerIteration[i] {
				t.Fatalf("share changed iteration %d: %v vs %v", i, base[i], res.PerIteration[i])
			}
		}
	}
}

func TestHybridMatchesOtherModes(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := randomGraph(rng, 30, 80)
	tr := tmpl.MustNamed("U5-2")
	var base []float64
	for _, mode := range []Mode{Inner, Outer, Hybrid} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.Workers = 4
		cfg.Seed = 19
		e, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(9)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res.PerIteration
			continue
		}
		for i := range base {
			if res.PerIteration[i] != base[i] {
				t.Fatalf("%v: iteration %d differs: %v vs %v", mode, i, res.PerIteration[i], base[i])
			}
		}
	}
	if Hybrid.String() != "hybrid" {
		t.Fatal("hybrid string")
	}
}

func TestHybridWithHashTables(t *testing.T) {
	// Hash-layout stores must stay consistent when hybrid mode nests
	// inner workers inside concurrent iterations.
	rng := rand.New(rand.NewSource(44))
	g := randomGraph(rng, 40, 120)
	tr := tmpl.Path(4)
	cfg := DefaultConfig()
	cfg.Mode = Hybrid
	cfg.Workers = 4
	cfg.TableKind = table.Hash
	cfg.Seed = 8
	e, err := New(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = Inner
	cfg.TableKind = table.Lazy
	e2, err := New(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.PerIteration {
		if res.PerIteration[i] != res2.PerIteration[i] {
			t.Fatalf("hybrid+hash diverged at iteration %d", i)
		}
	}
}

func TestRunConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomGraph(rng, 40, 120)
	tr := tmpl.Path(4)
	cfg := DefaultConfig()
	cfg.Seed = 4
	e, err := New(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunConverged(0.02, 3, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerIteration) < 3 || len(res.PerIteration) > 5000 {
		t.Fatalf("converged after %d iterations", len(res.PerIteration))
	}
	if res.StdErr/res.Estimate > 0.021 && len(res.PerIteration) < 5000 {
		t.Fatalf("stopped early with rel stderr %.4f", res.StdErr/res.Estimate)
	}
	want := float64(exact.Count(g, tr))
	if want > 0 && math.Abs(res.Estimate-want)/want > 0.10 {
		t.Fatalf("converged estimate %.1f, exact %.1f", res.Estimate, want)
	}
	// Prefix property: converged per-iteration estimates match a fixed
	// run's prefix.
	fixed, err := e.Run(len(res.PerIteration))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.PerIteration {
		if res.PerIteration[i] != fixed.PerIteration[i] {
			t.Fatal("converged run is not a prefix of the fixed run")
		}
	}
	// Validation.
	if _, err := e.RunConverged(0, 2, 10); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, err := e.RunConverged(0.1, 10, 5); err == nil {
		t.Fatal("max < min accepted")
	}
}

func TestRunConvergedTightToleranceHitsMax(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := randomGraph(rng, 20, 40)
	e, err := New(g, tmpl.Path(3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunConverged(1e-9, 2, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerIteration) != 25 {
		t.Fatalf("expected to hit maxIters, ran %d", len(res.PerIteration))
	}
}

// TestRunConvergedPriorResume checks the prior-seeded adaptive runner:
// splitting a converged run at any point and resuming from the prefix
// (with the seed offset by the prior length, as the serving layer does)
// must reproduce the remaining iterations, the stopping point, and the
// final estimate bit for bit.
func TestRunConvergedPriorResume(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := randomGraph(rng, 40, 120)
	tr := tmpl.Path(4)
	cfg := DefaultConfig()
	cfg.Seed = 4
	e, err := New(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const relStdErr, minIters, maxIters = 0.05, 3, 2000
	full, err := e.RunConverged(relStdErr, minIters, maxIters)
	if err != nil {
		t.Fatal(err)
	}
	n := len(full.PerIteration)
	if n < minIters || n >= maxIters {
		t.Fatalf("full run converged after %d iterations (want interior of [%d, %d))", n, minIters, maxIters)
	}
	// An adaptive run's summary must be bit-identical to a fixed run of
	// its stop length — the serve cache hands the two out interchangeably.
	fixed, err := e.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Estimate != full.Estimate || fixed.StdErr != full.StdErr {
		t.Fatalf("adaptive summary (%v ± %v) != fixed %d-iteration summary (%v ± %v)",
			full.Estimate, full.StdErr, n, fixed.Estimate, fixed.StdErr)
	}
	for _, p := range []int{1, n / 2, n - 1} {
		prior := full.PerIteration[:p]
		cfg2 := cfg
		cfg2.Seed = cfg.Seed + int64(p)
		e2, err := New(g, tr, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e2.RunConvergedPriorContext(context.Background(), relStdErr, minIters, maxIters, prior)
		if err != nil {
			t.Fatal(err)
		}
		if p+len(res.PerIteration) != n {
			t.Fatalf("prior=%d: resumed run stopped at %d total iterations, full run at %d", p, p+len(res.PerIteration), n)
		}
		for i, x := range res.PerIteration {
			if x != full.PerIteration[p+i] {
				t.Fatalf("prior=%d: fresh iteration %d estimate %v != full run %v", p, i, x, full.PerIteration[p+i])
			}
		}
		if res.Estimate != full.Estimate || res.StdErr != full.StdErr {
			t.Fatalf("prior=%d: resumed estimate %v ± %v != full %v ± %v",
				p, res.Estimate, res.StdErr, full.Estimate, full.StdErr)
		}
	}
	// A prior already past the stopping rule runs nothing fresh.
	done, err := e.RunConvergedPriorContext(context.Background(), relStdErr, minIters, maxIters, full.PerIteration)
	if err != nil {
		t.Fatal(err)
	}
	if len(done.PerIteration) != 0 {
		t.Fatalf("converged prior still ran %d fresh iterations", len(done.PerIteration))
	}
	if done.Estimate != full.Estimate || done.StdErr != full.StdErr {
		t.Fatalf("converged-prior estimate %v ± %v != full %v ± %v",
			done.Estimate, done.StdErr, full.Estimate, full.StdErr)
	}
}

func TestProfileIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randomGraph(rng, 2000, 10000)
	e, err := New(g, tmpl.Path(7), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof, est := e.ProfileIteration(3)
	if est != e.scale(e.ColorfulTotal(3)) {
		t.Fatal("profiled estimate differs from normal run")
	}
	if prof.Total() <= 0 || len(prof.PerNode) == 0 {
		t.Fatalf("degenerate profile %+v", prof)
	}
	// The paper's §V-A observation: the DP combination step dominates.
	if share := prof.ComputeShare(); share < 0.5 {
		t.Fatalf("compute share %.2f implausibly low for k=7", share)
	}
	var perNodeSum time.Duration
	for _, d := range prof.PerNode {
		perNodeSum += d
	}
	if perNodeSum != prof.Compute {
		t.Fatal("per-node times do not sum to compute time")
	}
}
