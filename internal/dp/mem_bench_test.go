package dp

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// memSmokeRSSCeiling is the asserted whole-process peak-RSS bound of the
// bench-mem CI smoke: the budget itself, plus the graph and runtime
// overhead the budget deliberately does not cover, with headroom for
// allocator slack. An unbudgeted run of the same workload peaks several
// times higher, so a regression that stops routing slabs through the
// spill region or uncaps the auto batch sizer trips this immediately.
const (
	memSmokeBudget     = 96 << 20
	memSmokeRSSCeiling = 256 << 20
)

// BenchmarkMemBudgetSmoke is the CI smoke of the out-of-core mode (make
// bench-mem): a U7 path on a 200k-vertex Barabási–Albert graph with
// dense (naive) tables — the layout whose whole-table slabs the spill
// region targets — under a 96 MiB table budget (the Makefile adds
// GOMEMLIMIT on top). The run must actually spill, stay under the
// asserted RSS ceiling, and remain bit-identical to an unbudgeted run —
// spilling relocates storage, it never changes estimates.
func BenchmarkMemBudgetSmoke(b *testing.B) {
	g := gen.BarabasiAlbert(200_000, 6, 1)
	tpl := tmpl.MustNamed("U7-1")
	const iters = 2

	cfg := DefaultConfig()
	cfg.TableKind = table.Naive
	cfg.Batch = BatchAuto
	cfg.Mode = Inner
	cfg.Workers = 1
	cfg.Seed = 3
	cfg.MemBudgetBytes = memSmokeBudget
	e, err := New(g, tpl, cfg)
	if err != nil {
		b.Fatal(err)
	}

	var budgeted Result
	b.Run("budgeted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			budgeted, err = e.Run(iters)
			if err != nil {
				b.Fatal(err)
			}
		}
		st := budgeted.Stats
		if st.MemBudgetBytes != memSmokeBudget {
			b.Fatalf("resolved budget %d, want %d", st.MemBudgetBytes, memSmokeBudget)
		}
		if runtime.GOOS == "linux" {
			if st.SpillSlabs == 0 || st.SpillMappedBytes == 0 {
				b.Fatalf("budgeted run never spilled (slabs %d, mapped %d bytes)", st.SpillSlabs, st.SpillMappedBytes)
			}
			if st.PeakRSSBytes == 0 {
				b.Fatal("no RSS samples recorded")
			}
			if st.PeakRSSBytes > memSmokeRSSCeiling {
				b.Fatalf("peak RSS %.1f MiB above the %.0f MiB smoke ceiling (budget %.0f MiB)",
					float64(st.PeakRSSBytes)/(1<<20), float64(memSmokeRSSCeiling)/(1<<20), float64(memSmokeBudget)/(1<<20))
			}
		}
		b.ReportMetric(float64(st.PeakRSSBytes)/(1<<20), "peakRSS-MB")
		b.ReportMetric(float64(st.SpillMappedBytes)/(1<<20), "spilled-MB")
		b.ReportMetric(float64(budgeted.PeakTableBytes)/(1<<20), "peakTable-MB")
	})

	// Equivalence leg: the same seeds without a budget. Runs second so
	// its (much larger) footprint cannot inflate the budgeted leg's RSS
	// samples — process RSS is a high-water mark.
	free := cfg
	free.MemBudgetBytes = -1
	e2, err := New(g, tpl, free)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unbudgeted", func(b *testing.B) {
		var res Result
		for i := 0; i < b.N; i++ {
			res, err = e2.Run(iters)
			if err != nil {
				b.Fatal(err)
			}
		}
		if res.Stats.SpillSlabs != 0 {
			b.Fatalf("unbudgeted run spilled %d slabs", res.Stats.SpillSlabs)
		}
		if len(res.PerIteration) != len(budgeted.PerIteration) {
			b.Fatalf("iteration counts differ: %d vs %d", len(res.PerIteration), len(budgeted.PerIteration))
		}
		for i := range res.PerIteration {
			if res.PerIteration[i] != budgeted.PerIteration[i] {
				b.Fatalf("iteration %d: unbudgeted %v != budgeted %v — spilling changed an estimate",
					i, res.PerIteration[i], budgeted.PerIteration[i])
			}
		}
		b.ReportMetric(float64(res.PeakTableBytes)/(1<<20), "peakTable-MB")
	})
}

// BenchmarkMemBudget is the acceptance-scale variant (make bench-mem-full,
// the numbers behind BENCH_mem.json): a U10 path on a million-vertex
// Barabási–Albert graph, budgeted vs unbudgeted. Slow and memory-hungry;
// run it on an otherwise idle host.
//
//	go test -run='^$' -bench='BenchmarkMemBudget$' -benchtime=1x ./internal/dp
func BenchmarkMemBudget(b *testing.B) {
	g := gen.BarabasiAlbert(1_000_000, 5, 1)
	tpl := tmpl.MustNamed("U10-1")
	const iters = 2
	for _, mem := range []int64{512 << 20, -1} {
		cfg := DefaultConfig()
		cfg.TableKind = table.Naive
		cfg.Batch = BatchAuto
		cfg.Mode = Inner
		cfg.Workers = 1
		cfg.Seed = 3
		cfg.MemBudgetBytes = mem
		e, err := New(g, tpl, cfg)
		if err != nil {
			b.Fatal(err)
		}
		name := "unbudgeted"
		if mem > 0 {
			name = fmt.Sprintf("mem%dMiB", mem>>20)
		}
		b.Run(name, func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				res, err = e.Run(iters)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.PeakRSSBytes)/(1<<20), "peakRSS-MB")
			b.ReportMetric(float64(res.Stats.SpillMappedBytes)/(1<<20), "spilled-MB")
			b.ReportMetric(float64(res.PeakTableBytes)/(1<<20), "peakTable-MB")
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*iters)*1000, "ms/iter")
		})
	}
}

// BenchmarkAdaptiveStopSmoke is the CI smoke of the variance-targeted
// stopping rule (make bench-adaptive): a U7 path on a 50k-vertex
// Barabási–Albert graph run adaptively to a 1% relative-stderr target
// with a fixed-iteration cap far above it. The run must actually
// converge — stop strictly before the cap with the target met — so a
// regression that breaks the Welford stopping scan (or silently
// inflates per-iteration variance) trips this immediately. The reported
// iter-savings metric is the factor of iterations the adaptive rule
// avoided versus running the fixed cap.
func BenchmarkAdaptiveStopSmoke(b *testing.B) {
	const (
		target   = 0.01
		capIters = 100
	)
	g := gen.BarabasiAlbert(50_000, 5, 1)
	tpl := tmpl.MustNamed("U7-1")
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Seed = 3
	e, err := New(g, tpl, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.RunConverged(target, 2, capIters)
		if err != nil {
			b.Fatal(err)
		}
		n := len(res.PerIteration)
		if n < 2 || n >= capIters {
			b.Fatalf("adaptive run did not converge before the cap: %d iterations (cap %d)", n, capIters)
		}
		if rel := res.StdErr / res.Estimate; rel > target {
			b.Fatalf("stopped at %d iterations with relative stderr %.4f above the %.2f target", n, rel, target)
		}
		b.ReportMetric(float64(n), "iters-to-1pct")
		b.ReportMetric(float64(capIters)/float64(n), "iter-savings-x")
	}
}
