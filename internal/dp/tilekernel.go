package dp

import (
	"repro/internal/comb"
	"repro/internal/table"
)

// Scalar tiled kernels: the column-tiled counterparts of the passes in
// kernel.go. Each kernel processes only the passive-column range
// [ts.lo, ts.hi) of one tile; the tile sweep in passRangeTiled
// accumulates every tile's contributions into the same block-scratch
// output row, and each (neighbor, passive-column) term lands in exactly
// one tile, so the union over tiles reproduces the untiled pass — counts
// are integer-valued float64s, so the regrouped summation is exact and
// the stored rows are bit-identical.

// passRangeTiled runs the tiled pass over vertices [start, end): blocks
// of plan.blockVerts output rows accumulate in per-worker scratch while
// the tile loop sweeps the passive columns, then each finished row is
// stored once. Chunk boundaries are always block-aligned
// (chunkForTiled), so blocks never straddle workers.
func (st *iterState) passRangeTiled(ctx *nodeCtx, tab table.Table, tc *tileCtx, start, end int32, sc *scratch) {
	nc := ctx.nc
	bv := int32(tc.plan.blockVerts)
	for b0 := start; b0 < end; b0 += bv {
		b1 := b0 + bv
		if b1 > end {
			b1 = end
		}
		rows := sc.tileRows(int(b1-b0) * nc)
		clear(rows)
		for t := range tc.ts {
			ts := &tc.ts[t]
			for v := b0; v < b1; v++ {
				if st.cancelled() {
					return
				}
				st.vertexPassTile(ctx, v, rows[int(v-b0)*nc:][:nc], sc, ts, t == 0)
			}
		}
		for v := b0; v < b1; v++ {
			if st.cancelled() {
				return
			}
			row := rows[int(v-b0)*nc:][:nc]
			for _, x := range row {
				if x != 0 {
					tab.StoreRow(v, row)
					break
				}
			}
		}
	}
}

// vertexPassTile is one vertex's contribution from one tile,
// accumulated into its block-scratch row buf (cleared once per block,
// not per tile). Kernel choice depends only on degree and shape, so it
// is identical across tiles; the tallies count each vertex once (on the
// first tile).
func (st *iterState) vertexPassTile(ctx *nodeCtx, v int32, buf []float64, sc *scratch, ts *tileSplits, first bool) {
	if !ctx.act.Has(v) {
		return
	}
	adj := st.e.g.Adj(v)
	if len(adj) == 0 {
		return
	}
	aggregate := ctx.useAggregate(len(adj))
	if first {
		if aggregate {
			sc.aggN++
		} else {
			sc.directN++
		}
	}
	switch ctx.branch {
	case branchSize2:
		st.passSize2Tile(ctx, v, adj, buf, sc, aggregate, ts)
	case branchActiveSingle:
		st.passActiveSingleTile(ctx, v, adj, buf, sc, aggregate, ts)
	case branchPassiveSingle:
		st.passPassiveSingleTile(ctx, v, adj, buf, sc, aggregate, ts)
	default:
		if aggregate {
			st.passGeneralAggregateTile(ctx, v, adj, buf, sc, ts)
		} else {
			st.passGeneralDirectTile(ctx, v, adj, buf, sc, ts)
		}
	}
}

// passSize2Tile restricts passSize2 to neighbor colors in [lo, hi); the
// passive table's columns ARE the colors here, so the gate is pure
// runtime color filtering.
func (st *iterState) passSize2Tile(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch, aggregate bool, ts *tileSplits) {
	act, pas := ctx.act, ctx.pas
	av := act.Get(v, int32(st.colors[v]))
	if av == 0 {
		return
	}
	cv := int(st.colors[v])
	lo, hi := int(ts.lo), int(ts.hi)
	if !aggregate {
		for _, u := range adj {
			cu := int(st.colors[u])
			if cu == cv || cu < lo || cu >= hi {
				continue
			}
			if pv := pas.Get(u, int32(cu)); pv != 0 {
				buf[comb.PairIndex(cv, cu)] += av * pv
			}
		}
		return
	}
	colorAgg := sc.colorAgg
	clear(colorAgg[lo:hi])
	table.GatherColorsRangeInto(pas, adj, st.colors, colorAgg, lo, hi)
	if cv >= lo && cv < hi {
		// Same-color neighbors contribute nothing (no valid pair set).
		colorAgg[cv] = 0
	}
	for c := lo; c < hi; c++ {
		if s := colorAgg[c]; s != 0 {
			buf[comb.PairIndex(cv, c)] += av * s
		}
	}
}

// passActiveSingleTile walks the tile-filtered singleton entry lists
// (RestIdx in [lo, hi)), so the passive reads stay inside the tile.
func (st *iterState) passActiveSingleTile(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch, aggregate bool, ts *tileSplits) {
	act, pas := ctx.act, ctx.pas
	av := act.Get(v, int32(st.colors[v]))
	if av == 0 {
		return
	}
	entries := ts.singles[int(st.colors[v])]
	if !aggregate {
		for _, u := range adj {
			if prow := pas.Row(u); prow != nil {
				for _, en := range entries {
					if pv := prow[en.RestIdx]; pv != 0 {
						buf[en.SetIdx] += av * pv
					}
				}
			} else if pas.Has(u) {
				for _, en := range entries {
					if pv := pas.Get(u, en.RestIdx); pv != 0 {
						buf[en.SetIdx] += av * pv
					}
				}
			}
		}
		return
	}
	agg := sc.agg[:ctx.ncP]
	lo, hi := int(ts.lo), int(ts.hi)
	clear(agg[lo:hi])
	table.AccumulateRowsRangeInto(pas, adj, agg, lo, hi)
	for _, en := range entries {
		if s := agg[en.RestIdx]; s != 0 {
			buf[en.SetIdx] += av * s
		}
	}
}

// passPassiveSingleTile gates neighbors by color in [lo, hi); the
// singleton entry lists index the ACTIVE row here and stay unfiltered.
func (st *iterState) passPassiveSingleTile(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch, aggregate bool, ts *tileSplits) {
	act, pas := ctx.act, ctx.pas
	arow := materializeRow(act, v, sc.actRow, ctx.ncA)
	lo, hi := int(ts.lo), int(ts.hi)
	if !aggregate {
		for _, u := range adj {
			cu := int(st.colors[u])
			if cu < lo || cu >= hi {
				continue
			}
			pv := pas.Get(u, int32(cu))
			if pv == 0 {
				continue
			}
			for _, en := range ctx.singles[cu] {
				if av := arow[en.RestIdx]; av != 0 {
					buf[en.SetIdx] += av * pv
				}
			}
		}
		return
	}
	colorAgg := sc.colorAgg
	clear(colorAgg[lo:hi])
	table.GatherColorsRangeInto(pas, adj, st.colors, colorAgg, lo, hi)
	for c := lo; c < hi; c++ {
		s := colorAgg[c]
		if s == 0 {
			continue
		}
		for _, en := range ctx.singles[c] {
			if av := arow[en.RestIdx]; av != 0 {
				buf[en.SetIdx] += av * s
			}
		}
	}
}

// passGeneralDirectTile contracts only the tile-filtered (Ca, Cp) split
// pairs (PassiveIdx in [lo, hi)), via the per-tile variable-stride
// seg/act/pas arrays built by buildTileSplits.
func (st *iterState) passGeneralDirectTile(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch, ts *tileSplits) {
	act, pas := ctx.act, ctx.pas
	arow := materializeRow(act, v, sc.actRow, ctx.ncA)
	nc := ctx.nc
	for _, u := range adj {
		prow := pas.Row(u)
		if prow == nil {
			if !pas.Has(u) {
				continue
			}
			prow = materializeRow(pas, u, sc.pasRow, ctx.ncP)
		}
		for ci := 0; ci < nc; ci++ {
			var s float64
			for j := ts.seg[ci]; j < ts.seg[ci+1]; j++ {
				if av := arow[ts.act[j]]; av != 0 {
					s += av * prow[ts.pas[j]]
				}
			}
			if s != 0 {
				buf[ci] += s
			}
		}
	}
}

// passGeneralAggregateTile aggregates only the tile's passive columns,
// then contracts against the tile-filtered split pairs.
func (st *iterState) passGeneralAggregateTile(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch, ts *tileSplits) {
	act, pas := ctx.act, ctx.pas
	agg := sc.agg[:ctx.ncP]
	lo, hi := int(ts.lo), int(ts.hi)
	clear(agg[lo:hi])
	table.AccumulateRowsRangeInto(pas, adj, agg, lo, hi)
	arow := materializeRow(act, v, sc.actRow, ctx.ncA)
	nc := ctx.nc
	for ci := 0; ci < nc; ci++ {
		var s float64
		for j := ts.seg[ci]; j < ts.seg[ci+1]; j++ {
			if av := arow[ts.act[j]]; av != 0 {
				s += av * agg[ts.pas[j]]
			}
		}
		if s != 0 {
			buf[ci] += s
		}
	}
}
