package dp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/part"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// BenchmarkIterationByK measures one DP iteration per template size on a
// fixed random graph — the 2^k cost growth of the paper's Figure 3 at the
// engine level.
func BenchmarkIterationByK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 5000, 25000)
	for _, k := range []int{3, 5, 7, 10} {
		tr := tmpl.Path(k)
		cfg := DefaultConfig()
		e, err := New(g, tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.ColorfulTotal(int64(i))
			}
		})
	}
}

// BenchmarkLeafSpecialization isolates the single-vertex-child fast path
// cost difference.
func BenchmarkLeafSpecialization(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 3000, 15000)
	tr := tmpl.Path(7)
	for _, disable := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.DisableLeafSpecial = disable
		e, err := New(g, tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("special=%v", !disable), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.ColorfulTotal(int64(i))
			}
		})
	}
}

// BenchmarkKernelDirectVsAggregate is the acceptance benchmark: on a
// high-degree graph (n=20k, avg deg 40) the aggregated kernel must beat
// the direct per-neighbor split contraction by >= 2x on star templates
// (2.5-3.5x measured), and auto must track the better of the two within
// 10% on every case (it usually beats both by mixing per vertex).
//
// Template/strategy pairs cover all three aggregating branches:
// stars under the default one-at-a-time partitioning yield
// passive-single nodes (bulk per-color gather); balanced paths yield
// general two-sided nodes (SpMM-style row aggregation); path-7 under
// one-at-a-time is active-single everywhere, where aggregation wins only
// on the lower half of the template and auto must mix kernels. The naive
// variants isolate kernel arithmetic from sparse-layout probe costs.
func BenchmarkKernelDirectVsAggregate(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 20000, 400000) // avg deg 40
	cases := []struct {
		name  string
		tr    *tmpl.Template
		strat part.Strategy
		kind  table.Kind
	}{
		{"star7/one", tmpl.Star(7), part.OneAtATime, table.Lazy},
		{"star8/one", tmpl.Star(8), part.OneAtATime, table.Lazy},
		{"star8/one/naive", tmpl.Star(8), part.OneAtATime, table.Naive},
		{"path7/balanced", tmpl.Path(7), part.Balanced, table.Lazy},
		{"path8/balanced/naive", tmpl.Path(8), part.Balanced, table.Naive},
		{"path7/one", tmpl.Path(7), part.OneAtATime, table.Lazy},
	}
	for _, tc := range cases {
		for _, mode := range []KernelMode{KernelDirect, KernelAggregate, KernelAuto} {
			cfg := DefaultConfig()
			cfg.Strategy = tc.strat
			cfg.TableKind = tc.kind
			cfg.Kernel = mode
			cfg.Workers = 1
			e, err := New(g, tc.tr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%v", tc.name, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.ColorfulTotal(int64(i))
				}
			})
		}
	}
}

// BenchmarkScratchAllocs reports steady-state allocations per iteration;
// the scratch pool should keep this flat in the number of internal nodes
// (table allocations dominate, per-node scratch must not).
func BenchmarkScratchAllocs(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 2000, 10000)
	cfg := DefaultConfig()
	cfg.Workers = 1
	e, err := New(g, tmpl.Path(10), cfg)
	if err != nil {
		b.Fatal(err)
	}
	e.ColorfulTotal(0) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ColorfulTotal(int64(i))
	}
}
