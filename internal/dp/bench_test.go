package dp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tmpl"
)

// BenchmarkIterationByK measures one DP iteration per template size on a
// fixed random graph — the 2^k cost growth of the paper's Figure 3 at the
// engine level.
func BenchmarkIterationByK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 5000, 25000)
	for _, k := range []int{3, 5, 7, 10} {
		tr := tmpl.Path(k)
		cfg := DefaultConfig()
		e, err := New(g, tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.ColorfulTotal(int64(i))
			}
		})
	}
}

// BenchmarkLeafSpecialization isolates the single-vertex-child fast path
// cost difference.
func BenchmarkLeafSpecialization(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 3000, 15000)
	tr := tmpl.Path(7)
	for _, disable := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.DisableLeafSpecial = disable
		e, err := New(g, tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("special=%v", !disable), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.ColorfulTotal(int64(i))
			}
		})
	}
}
