package dp

import (
	"os"
	"strconv"
	"strings"
)

// readRSSBytes returns the process's current resident-set size read
// from /proc/self/statm (field 2, in pages), or 0 on platforms without
// procfs. RunStats folds samples taken at iteration boundaries into
// PeakRSSBytes — the whole-process figure a memory budget bounds,
// unlike the table-only PeakTableBytes.
func readRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || pages < 0 {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
