package dp

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comb"
	"repro/internal/part"
	"repro/internal/table"
)

// batchState runs L independent color-coding iterations ("lanes")
// through ONE bottom-up DP traversal: per-vertex colors widen to
// lane-strided vectors, table cells widen to [L]float64 lane blocks
// (table.Multi), and every computeNode pass walks the adjacency and
// enumerates the (Ca, Cp) splits once per batch instead of once per
// iteration. Lane j colors with seed base+j — exactly the seed stream
// the unbatched schedule uses — and counts are integer-valued float64s,
// so per-lane totals are bit-identical to L unbatched iterations.
type batchState struct {
	e     *Engine
	lanes int
	// colors is the lane-strided coloring: lane j of vertex v is
	// colors[v*lanes+j].
	colors []int8
	tabs   map[*part.Node]*table.Multi
	// leaves holds the implicit lane tables of non-root leaves: their
	// cells derive from the coloring (leafLanes), so nothing is
	// allocated or initialized for them in batched mode.
	leaves    map[*part.Node]*leafLanes
	remaining map[*part.Node]int
	liveBytes int64
	peakBytes int64
	workers   int
	// Tiling accounting for RunStats.
	tiledPasses int64
	tileSweeps  int64

	stop    *atomic.Bool
	aborted bool
	// totals holds the per-lane colorful mapping totals after run.
	totals    []float64
	nodeTimes []time.Duration

	rowsAllocated, rowsReleased     int64
	tablesAllocated, tablesReleased int64
}

// batchScratch is the lane-widened per-worker scratch: every row buffer
// of the scalar scratch times the engine's batch width.
type batchScratch struct {
	buf      []float64 // output rows, nc*B
	actRow   []float64 // materialized active lane row (hash fallback)
	pasRow   []float64 // materialized passive lane row (hash fallback)
	agg      []float64 // aggregated neighbor lane rows, ncP*B
	colorAgg []float64 // per-(color, lane) neighbor sums, k*B
	avB      []float64 // per-lane active root-cell values, B
	tileBuf  []float64 // block output rows of the tiled pass, lazily grown
	// kernel-choice tallies (in lane units, so counts stay comparable
	// with unbatched runs), flushed on putBatchScratch.
	directN int64
	aggN    int64
}

// tileRows returns the block output-row buffer of the tiled pass,
// growing it on first use (the pool's steady state carries it across
// nodes and iterations).
func (sc *batchScratch) tileRows(n int) []float64 {
	if cap(sc.tileBuf) < n {
		sc.tileBuf = make([]float64, n)
	}
	return sc.tileBuf[:n]
}

func (e *Engine) getBatchScratch() *batchScratch {
	return e.batchScratchPool.Get().(*batchScratch)
}

func (e *Engine) putBatchScratch(sc *batchScratch) {
	if sc.directN != 0 {
		e.kernelDirect.Add(sc.directN)
		sc.directN = 0
	}
	if sc.aggN != 0 {
		e.kernelAggregate.Add(sc.aggN)
		sc.aggN = 0
	}
	e.batchScratchPool.Put(sc)
}

// newBatchState prepares a batch of lanes colorings: lane j is colored
// by rand.NewSource(baseSeed+j) drawing exactly the per-vertex stream an
// unbatched iteration with that seed would draw.
func (e *Engine) newBatchState(baseSeed int64, lanes, workers int) *batchState {
	n := e.g.N()
	st := &batchState{
		e:         e,
		lanes:     lanes,
		colors:    e.arena.I8(n * lanes),
		tabs:      map[*part.Node]*table.Multi{},
		leaves:    map[*part.Node]*leafLanes{},
		remaining: map[*part.Node]int{},
		workers:   workers,
		totals:    make([]float64, lanes),
	}
	for j := 0; j < lanes; j++ {
		rng := rand.New(rand.NewSource(baseSeed + int64(j)))
		if e.ord != nil {
			// Degree-bucketed execution order: draw the stream in
			// ORIGINAL vertex-id order (the exact per-vertex sequence an
			// unreordered run consumes) and scatter through the
			// permutation, so every original vertex keeps its color and
			// the estimate stream stays bit-identical.
			perm := e.ord.Perm
			for v := 0; v < n; v++ {
				st.colors[int(perm[v])*lanes+j] = int8(rng.Intn(e.k))
			}
		} else {
			for v := 0; v < n; v++ {
				st.colors[v*lanes+j] = int8(rng.Intn(e.k))
			}
		}
	}
	for _, nd := range e.tree.Nodes {
		st.remaining[nd] = nd.Consumers
	}
	return st
}

func (st *batchState) cancelled() bool {
	return st.stop != nil && st.stop.Load()
}

// run executes the bottom-up DP once for all lanes and fills st.totals
// with the per-lane colorful mapping totals. On cancellation it releases
// everything, marks the state aborted, and returns early — the caller
// must discard the whole batch.
func (st *batchState) run() {
	e := st.e
	for ni, n := range e.tree.Order {
		if st.cancelled() {
			st.abort()
			return
		}
		var nodeStart time.Time
		if st.nodeTimes != nil {
			nodeStart = time.Now()
		}
		if n.IsLeaf() && n != e.tree.Root {
			// Implicit leaf: cells derive from the coloring via
			// leafLanes — no B×-widened leaf table to allocate, fill, or
			// stream through the child kernels.
			st.leaves[n] = st.newLeafLanes(n)
			if st.nodeTimes != nil {
				st.nodeTimes[ni] += time.Since(nodeStart)
			}
			continue
		}
		nc := int(comb.Binomial(e.k, n.Size()))
		tab := table.NewMulti(e.cfg.TableKind, e.g.N(), nc, st.lanes, e.arena)
		st.tabs[n] = tab
		if n.IsLeaf() {
			st.initLeafB(n, tab)
		} else {
			st.computeNodeB(n, tab)
		}
		if st.nodeTimes != nil {
			st.nodeTimes[ni] += time.Since(nodeStart)
		}
		st.tablesAllocated++
		st.rowsAllocated += tab.Rows()
		if st.cancelled() {
			st.abort()
			return
		}
		st.liveBytes += tab.Bytes()
		if st.liveBytes > st.peakBytes {
			st.peakBytes = st.liveBytes
		}
		if !n.IsLeaf() {
			st.releaseChildrenB(n)
		}
	}
	root := st.tabs[e.tree.Root]
	root.Totals(st.totals)
	st.rowsReleased += root.Rows()
	st.tablesReleased++
	root.Release()
	e.arena.PutI8(st.colors)
	st.colors = nil
	// leafLanes alias st.colors; drop them with it.
	st.leaves = nil
}

func (st *batchState) abort() {
	st.aborted = true
	//lint:maporder ok — release-only loop on an aborted batch: the stats it folds are commutative integer sums
	for n, tab := range st.tabs {
		st.rowsReleased += tab.Rows()
		st.tablesReleased++
		tab.Release()
		delete(st.tabs, n)
	}
	st.liveBytes = 0
	st.e.arena.PutI8(st.colors)
	st.colors = nil
	st.leaves = nil
}

func (st *batchState) releaseChildrenB(n *part.Node) {
	for _, ch := range []*part.Node{n.Active, n.Passive} {
		st.remaining[ch]--
		if st.remaining[ch] == 0 {
			if tab, ok := st.tabs[ch]; ok {
				st.liveBytes -= tab.Bytes()
				st.rowsReleased += tab.Rows()
				st.tablesReleased++
				tab.Release()
				delete(st.tabs, ch)
			} else {
				// Implicit leaf: nothing allocated, nothing to release.
				delete(st.leaves, ch)
			}
		}
	}
}

// initLeafB fills a leaf's lane table: vertex v holds count 1 for the
// singleton color set {color_j(v)} in lane j (label pruning is
// lane-independent).
func (st *batchState) initLeafB(n *part.Node, tab *table.Multi) {
	e := st.e
	L := st.lanes
	labeled := e.t.Labeled()
	var want int32
	if labeled {
		want = e.t.Label(n.LeafVertex())
	}
	for v := int32(0); v < int32(e.g.N()); v++ {
		if labeled && e.g.Label(v) != want {
			continue
		}
		base := int(v) * L
		for j := 0; j < L; j++ {
			tab.Set(v, int32(st.colors[base+j]), j, 1)
		}
	}
}

// batchCtx binds a node's kernel shape to this batch's lane tables
// (materialized Multi for internal children, implicit leafLanes for leaf
// children).
type batchCtx struct {
	kernelShape
	act, pas laneTab
}

// laneTabFor resolves a child node to its lane-table read surface.
func (st *batchState) laneTabFor(n *part.Node) laneTab {
	if tab, ok := st.tabs[n]; ok {
		return tab
	}
	return st.leaves[n]
}

func (st *batchState) batchContext(n *part.Node, tab *table.Multi) *batchCtx {
	return &batchCtx{
		kernelShape: st.e.kernelShapeFor(n, tab.NumSets()),
		act:         st.laneTabFor(n.Active),
		pas:         st.laneTabFor(n.Passive),
	}
}

// computeNodeB fills an internal node's lane table from its children's,
// sharding vertices across workers exactly like the scalar computeNode
// (hash layouts go through per-worker lock-free staging + merge).
func (st *batchState) computeNodeB(n *part.Node, tab *table.Multi) {
	e := st.e
	ctx := st.batchContext(n, tab)
	nVerts := int32(e.g.N())
	tc := newTileCtx(&ctx.kernelShape, e.tilePlanFor(&ctx.kernelShape, st.lanes))
	if tc != nil {
		st.tiledPasses++
		st.tileSweeps += int64(len(tc.ts))
	}

	if st.workers <= 1 {
		sc := e.getBatchScratch()
		if tc != nil {
			st.passRangeTiledB(ctx, tab, tc, 0, nVerts, sc)
		} else {
			for v := int32(0); v < nVerts; v++ {
				if st.cancelled() {
					break
				}
				st.vertexPassB(ctx, tab, v, sc)
			}
		}
		e.putBatchScratch(sc)
		return
	}

	stage := tab.IsHash()
	var stagings []*table.Multi
	if stage {
		stagings = make([]*table.Multi, st.workers)
	}
	chunk := chunkFor(int(nVerts), st.workers)
	if tc != nil {
		chunk = chunkForTiled(int(nVerts), st.workers, tc.plan.blockVerts)
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < st.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			target := tab
			if stage {
				s := table.NewMulti(table.Hash, int(nVerts), ctx.nc, st.lanes, e.arena)
				stagings[w] = s
				target = s
			}
			sc := e.getBatchScratch()
			defer e.putBatchScratch(sc)
			for {
				if st.cancelled() {
					return
				}
				start := next.Add(int32(chunk)) - int32(chunk)
				if start >= nVerts {
					return
				}
				end := start + int32(chunk)
				if end > nVerts {
					end = nVerts
				}
				if tc != nil {
					st.passRangeTiledB(ctx, target, tc, start, end, sc)
					continue
				}
				for v := start; v < end; v++ {
					if st.cancelled() {
						return
					}
					st.vertexPassB(ctx, target, v, sc)
				}
			}
		}(w)
	}
	wg.Wait()
	if stage {
		for _, s := range stagings {
			if s != nil {
				tab.MergeFrom(s)
				s.Release()
			}
		}
	}
}

// vertexPassB computes the lane-strided color-set rows of one vertex for
// all lanes at once and stores them into tab. The kernel decision is a
// function of degree and node shape only, so all lanes of a vertex run
// the same kernel; the tallies count lane units to stay comparable with
// unbatched runs.
func (st *batchState) vertexPassB(ctx *batchCtx, tab *table.Multi, v int32, sc *batchScratch) {
	if !ctx.act.Has(v) {
		return
	}
	adj := st.e.g.Adj(v)
	if len(adj) == 0 {
		return
	}
	L := st.lanes
	aggregate := ctx.useAggregate(len(adj))
	if aggregate {
		sc.aggN += int64(L)
	} else {
		sc.directN += int64(L)
	}
	buf := sc.buf[:ctx.nc*L]
	clear(buf)

	switch ctx.branch {
	case branchSize2:
		st.passSize2B(ctx, v, adj, buf, sc, aggregate)
	case branchActiveSingle:
		st.passActiveSingleB(ctx, v, adj, buf, sc, aggregate)
	case branchPassiveSingle:
		st.passPassiveSingleB(ctx, v, adj, buf, sc, aggregate)
	default:
		if aggregate {
			st.passGeneralAggregateB(ctx, v, adj, buf, sc)
		} else {
			st.passGeneralDirectB(ctx, v, adj, buf, sc)
		}
	}
	// Counts are nonnegative, so "some lane contributed" is exactly
	// "some cell is nonzero" — the same presence rule the scalar pass
	// applies per lane, unioned over lanes.
	for _, x := range buf {
		if x != 0 {
			tab.StoreRow(v, buf)
			return
		}
	}
}
