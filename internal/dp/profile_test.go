package dp

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/tmpl"
)

// TestComputeShareEdgeCases pins the IterProfile arithmetic: an empty
// profile has share 0 (no division by zero), and a populated one reports
// Compute/Total exactly.
func TestComputeShareEdgeCases(t *testing.T) {
	var zero IterProfile
	if got := zero.ComputeShare(); got != 0 {
		t.Fatalf("zero profile ComputeShare = %v, want 0", got)
	}
	p := IterProfile{
		Coloring: 1 * time.Millisecond,
		LeafInit: 2 * time.Millisecond,
		Compute:  6 * time.Millisecond,
		Finalize: 1 * time.Millisecond,
	}
	if got := p.Total(); got != 10*time.Millisecond {
		t.Fatalf("Total = %v, want 10ms", got)
	}
	if got := p.ComputeShare(); got != 0.6 {
		t.Fatalf("ComputeShare = %v, want 0.6", got)
	}
}

// TestProfileMatchesBatchedRun checks that ProfileIteration's estimate —
// computed by the scalar path — equals the corresponding lane of a
// batched run, tying the profiling hook into the bit-identity contract.
func TestProfileMatchesBatchedRun(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 300, 1200)
	cfg := DefaultConfig()
	cfg.Seed = 100
	cfg.Batch = 4
	e, err := New(g, tmpl.Path(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_, est := e.ProfileIteration(cfg.Seed + int64(i))
		if est != res.PerIteration[i] {
			t.Fatalf("profiled estimate for seed %d = %v, batched lane got %v",
				cfg.Seed+int64(i), est, res.PerIteration[i])
		}
	}
}
