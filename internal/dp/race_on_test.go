//go:build race

package dp

// raceEnabled is true when the race detector is on; its instrumentation
// adds a handful of allocations per iteration, so allocation-budget
// assertions loosen slightly.
const raceEnabled = true
