package dp

// laneMulAdd is the batched kernels' innermost contraction step:
// out[l] += a[l] · p[l] over min(len(out), len(a), len(p)) lanes.
// Like table's bulk8.go it is written in the 8-wide slice-to-array-
// pointer form so the loop body carries no per-element bounds checks
// (eight independent FMAs in flight instead of one checked multiply-add
// per cycle). This file must stay free of IsInBounds checks — `make
// check-bce` builds it with -gcflags=-d=ssa/check_bce and fails if any
// reappear. The //fascia:hotpath annotation holds it to zero heap
// allocation: fasciavet's hotalloc rules statically, and `make
// check-escape` against the compiler's -m escape diagnostics.
//
//fascia:hotpath
func laneMulAdd(out, a, p []float64) {
	if len(a) > len(out) {
		a = a[:len(out)]
	}
	if len(p) > len(a) {
		p = p[:len(a)]
	}
	for len(a) >= 8 && len(p) >= 8 && len(out) >= 8 {
		o := (*[8]float64)(out)
		x := (*[8]float64)(a)
		y := (*[8]float64)(p)
		o[0] += x[0] * y[0]
		o[1] += x[1] * y[1]
		o[2] += x[2] * y[2]
		o[3] += x[3] * y[3]
		o[4] += x[4] * y[4]
		o[5] += x[5] * y[5]
		o[6] += x[6] * y[6]
		o[7] += x[7] * y[7]
		out = out[8:]
		a = a[8:]
		p = p[8:]
	}
	out = out[:len(p)]
	a = a[:len(p)]
	for i, y := range p {
		out[i] += a[i] * y
	}
}
