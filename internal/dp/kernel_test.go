package dp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// TestKernelModeEquivalence is the kernel property test: under a fixed
// coloring, ColorfulTotal must be bit-identical across KernelMode
// direct/aggregate/auto × all three table layouts × leaf specializations
// on/off, with inner parallelism enabled, over randomized graphs and
// templates k=3..8. Counts are integer-valued, so every summation order
// is exact and equality is exact, not approximate.
func TestKernelModeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	modes := []KernelMode{KernelDirect, KernelAggregate, KernelAuto}
	for trial := 0; trial < 3; trial++ {
		// Mix degree regimes so KernelAuto exercises both kernels: trial 0
		// is sparse (direct-leaning), later trials are denser than the
		// aggregation thresholds (~k..2k for the pN==1 path).
		n := 20 + rng.Intn(25)
		m := n * (2 + trial*8 + rng.Intn(4))
		g := randomGraph(rng, n, m)
		for k := 3; k <= 8; k++ {
			tr := randomTree(rng, k)
			seed := rng.Int63()
			want := 0.0
			haveWant := false
			for _, kind := range table.Kinds {
				for _, mode := range modes {
					for _, noSpecial := range []bool{false, true} {
						cfg := DefaultConfig()
						cfg.TableKind = kind
						cfg.Kernel = mode
						cfg.DisableLeafSpecial = noSpecial
						cfg.Mode = Inner
						cfg.Workers = 4
						e, err := New(g, tr, cfg)
						if err != nil {
							t.Fatal(err)
						}
						got := e.ColorfulTotal(seed)
						if !haveWant {
							want, haveWant = got, true
							// Pin the whole family to brute-force truth on
							// instances where enumeration is affordable.
							if k <= 4 {
								ex := exact.CountColorfulMappings(g, tr, e.ColoringFor(seed))
								if got != float64(ex) {
									t.Fatalf("trial %d k=%d: DP %v, exact %d", trial, k, got, ex)
								}
							}
							continue
						}
						if got != want {
							t.Fatalf("trial %d k=%d %v/kernel=%v/nospecial=%v: total %v, want %v\ntemplate %v",
								trial, k, kind, mode, noSpecial, got, want, tr)
						}
					}
				}
			}
		}
	}
}

// TestKernelStatsAndCostModel checks that forced modes run only their
// kernel and that the auto cost model aggregates on a high-degree graph.
func TestKernelStatsAndCostModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dense := randomGraph(rng, 300, 300*20) // avg deg ~40
	// One-at-a-time partitioning of a star peels leaves, so the internal
	// nodes have a single-vertex passive child — the branch whose
	// aggregated (colorAgg) kernel the cost model picks at high degree.
	tr := tmpl.Star(6)
	run := func(mode KernelMode) (direct, agg int64) {
		cfg := DefaultConfig()
		cfg.Kernel = mode
		cfg.Workers = 1
		e, err := New(dense, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.ColorfulTotal(1)
		return e.KernelStats()
	}
	if d, a := run(KernelDirect); a != 0 || d == 0 {
		t.Fatalf("KernelDirect ran %d direct / %d aggregated passes", d, a)
	}
	if d, a := run(KernelAggregate); d != 0 || a == 0 {
		t.Fatalf("KernelAggregate ran %d direct / %d aggregated passes", d, a)
	}
	// Auto on a high-degree graph must choose aggregation for most
	// passes of the pN==1 nodes (threshold k·E/(α·E-1) ≈ 4..7 << 40).
	if _, a := run(KernelAuto); a == 0 {
		t.Fatal("KernelAuto never aggregated on an avg-degree-40 graph")
	}
	// Auto on a near-empty graph must run (almost) all passes direct:
	// thresholds bottom out around 4, so only the rare degree-4+ vertex
	// of the avg-degree-1 graph may aggregate.
	sparse := randomGraph(rng, 200, 100)
	cfg := DefaultConfig()
	e, err := New(sparse, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.ColorfulTotal(1)
	if d, a := e.KernelStats(); a > d/10 {
		t.Fatalf("KernelAuto aggregated %d of %d passes on an avg-degree-1 graph", a, a+d)
	}
}

func TestKernelModeString(t *testing.T) {
	if KernelAuto.String() != "auto" || KernelDirect.String() != "direct" ||
		KernelAggregate.String() != "aggregate" || KernelMode(9).String() == "" {
		t.Fatal("kernel mode strings broken")
	}
}

// TestHashInnerParallelStaging pins the lock-free staging path: Hash
// tables filled by many inner workers (per-worker staging + merge) must
// match the sequential result exactly. Run under -race in `make ci`.
func TestHashInnerParallelStaging(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGraph(rng, 400, 4000)
	for _, k := range []int{4, 7} {
		tr := randomTree(rng, k)
		var want float64
		for i, workers := range []int{1, 8} {
			cfg := DefaultConfig()
			cfg.TableKind = table.Hash
			cfg.Mode = Inner
			cfg.Workers = workers
			e, err := New(g, tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := e.ColorfulTotal(5)
			if i == 0 {
				want = got
			} else if got != want {
				t.Fatalf("k=%d workers=%d: total %v, sequential %v", k, workers, got, want)
			}
		}
	}
}

// TestScratchPoolReuse asserts the per-worker scratch is pooled rather
// than reallocated per internal node: a warmed engine's iteration must
// stay under an allocation budget that per-node scratch churn (3 slices ×
// 9 internal nodes for a k=10 path) would blow through.
func TestScratchPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 100, 400)
	cfg := DefaultConfig()
	cfg.TableKind = table.Naive
	cfg.Workers = 1
	cfg.Mode = Inner
	e, err := New(g, tmpl.Path(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.ColorfulTotal(0) // warm the pool
	allocs := testing.AllocsPerRun(20, func() {
		e.ColorfulTotal(1)
	})
	// Budget: 19 Naive tables (2 allocs each) + iterState/colors/maps/rng
	// ≈ 55. The seed's per-node scratch added 27 more slice allocations
	// (and per-worker copies under parallelism); fail well below that.
	// Race instrumentation adds a few allocations of its own.
	budget := 70.0
	if raceEnabled {
		budget = 90.0
	}
	if allocs > budget {
		t.Fatalf("iteration allocated %v objects; scratch pooling regressed", allocs)
	}
}

// TestKernelConfigPlumbing ensures the benchmark helper modes resolve.
func TestKernelConfigPlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 30, 90)
	for _, mode := range []KernelMode{KernelAuto, KernelDirect, KernelAggregate} {
		cfg := DefaultConfig()
		cfg.Kernel = mode
		e, err := New(g, tmpl.Path(5), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(2); err != nil {
			t.Fatal(err)
		}
	}
	// String round-trip sanity for diagnostics output.
	if s := fmt.Sprint(KernelAggregate); s != "aggregate" {
		t.Fatalf("fmt.Sprint(KernelAggregate) = %q", s)
	}
}
