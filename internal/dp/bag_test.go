package dp

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// TestBagColorfulExactEquivalence is the bag DP's keystone: under a
// fixed coloring its colorful-mapping total must EXACTLY equal
// brute-force colorful enumeration, for every zoo motif and longer
// cycles, on random graphs.
func TestBagColorfulExactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	templates := []*tmpl.Template{}
	for _, name := range tmpl.ZooNames() {
		templates = append(templates, tmpl.MustZoo(name))
	}
	c5, err := tmpl.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	c6, err := tmpl.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	templates = append(templates, c5, c6)
	for trial := 0; trial < 4; trial++ {
		n := 10 + rng.Intn(15)
		g := randomGraph(rng, n, n*3)
		seed := rng.Int63()
		for _, tr := range templates {
			e, err := New(g, tr, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			want := exact.CountColorfulMappings(g, tr, e.ColoringFor(seed))
			if got := e.ColorfulTotal(seed); got != float64(want) {
				t.Fatalf("trial %d template %s: bag DP total %v, exact %d", trial, tr.Name(), got, want)
			}
		}
	}
}

// TestBagTreeBitIdentity pins the reduction: on tree templates the bag
// DP's per-iteration estimates are bit-identical to the partition-tree
// DP's, across modes and extra colors.
func TestBagTreeBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4; trial++ {
		g := randomGraph(rng, 12+rng.Intn(12), 40)
		tr := randomTree(rng, 3+rng.Intn(4))
		for _, colors := range []int{0, tr.K() + 2} {
			for _, mode := range []Mode{Inner, Outer, Hybrid} {
				cfg := DefaultConfig()
				cfg.Colors = colors
				cfg.Mode = mode
				cfg.Seed = int64(trial)
				treeEng, err := New(g, tr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.ForceBagDP = true
				bagEng, err := New(g, tr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if bagEng.Decomposition() == nil || bagEng.Tree() != nil {
					t.Fatal("ForceBagDP engine did not take the bag path")
				}
				want, err := treeEng.Run(6)
				if err != nil {
					t.Fatal(err)
				}
				got, err := bagEng.Run(6)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.PerIteration) != len(want.PerIteration) {
					t.Fatalf("iteration counts differ: %d vs %d", len(got.PerIteration), len(want.PerIteration))
				}
				for i := range got.PerIteration {
					if got.PerIteration[i] != want.PerIteration[i] {
						t.Fatalf("trial %d %s colors=%d mode=%v iter %d: bag %v != tree %v",
							trial, tr.Name(), colors, mode, i, got.PerIteration[i], want.PerIteration[i])
					}
				}
				if got.Estimate != want.Estimate {
					t.Fatalf("estimates differ: bag %v != tree %v", got.Estimate, want.Estimate)
				}
			}
		}
	}
}

// TestBagEstimateApproachesExact runs enough iterations on a non-tree
// template for the scaled mean to land near the exact count.
func TestBagEstimateApproachesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 30, 120)
	for _, name := range []string{"triangle", "c4", "diamond", "k4"} {
		tr := tmpl.MustZoo(name)
		exactCount, err := exact.CountMotif(g, name)
		if err != nil {
			t.Fatal(err)
		}
		if exactCount == 0 {
			t.Fatalf("test graph has no %s; pick a denser graph", name)
		}
		cfg := DefaultConfig()
		cfg.Seed = 77
		e, err := New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(400)
		if err != nil {
			t.Fatal(err)
		}
		tol := 6*res.StdErr + 1e-9
		if diff := res.Estimate - float64(exactCount); diff > tol || -diff > tol {
			t.Errorf("%s: estimate %v vs exact %d (tol %v)", name, res.Estimate, exactCount, tol)
		}
	}
}

// TestBagRejections pins the clear errors for features the bag DP does
// not provide.
func TestBagRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 10, 25)
	tri := tmpl.Triangle()

	cfg := DefaultConfig()
	cfg.KeepTables = true
	if _, err := New(g, tri, cfg); err == nil {
		t.Error("KeepTables accepted on a non-tree template")
	}

	cfg = DefaultConfig()
	cfg.RootVertex = 0
	if _, err := New(g, tri, cfg); err == nil {
		t.Error("RootVertex accepted on a non-tree template")
	}

	e, err := New(g, tri, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.VertexCounts(2); err == nil {
		t.Error("VertexCounts accepted on a non-tree template")
	}
	if _, err := e.SampleEmbeddings(rng, 1); err == nil {
		t.Error("SampleEmbeddings accepted without kept tables")
	}
	if e.Batch() != 1 {
		t.Errorf("bag engine batch = %d, want 1", e.Batch())
	}

	// K5 exceeds the supported width and must fail at construction.
	k5, err := tmpl.Clique(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, k5, DefaultConfig()); err == nil {
		t.Error("treewidth-4 template accepted")
	}
}

// TestBagCancellation checks the bag DP aborts promptly on context
// cancellation and reports a partial result.
func TestBagCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 60, 400)
	e, err := New(g, tmpl.MustZoo("diamond"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunContext(ctx, 50)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !res.Stats.Cancelled {
		t.Error("cancelled run did not set Stats.Cancelled")
	}
	if len(res.PerIteration) != 0 {
		t.Errorf("pre-cancelled run completed %d iterations", len(res.PerIteration))
	}
}

// TestBagConvergedAndProfile exercises the adaptive driver and profiler
// through the bag path.
func TestBagConvergedAndProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 25, 90)
	cfg := DefaultConfig()
	cfg.Seed = 11
	e, err := New(g, tmpl.MustZoo("c4"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunConverged(0.5, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerIteration) < 2 {
		t.Fatalf("converged run did %d iterations, want >= 2", len(res.PerIteration))
	}
	prof, est := e.ProfileIteration(11)
	if prof.Compute <= 0 {
		t.Error("profile recorded no compute time")
	}
	// The profiled iteration uses seed 11 = Seed+0, so its estimate must
	// equal the first per-iteration estimate of the run.
	if est != res.PerIteration[0] {
		t.Errorf("profiled estimate %v != first iteration %v", est, res.PerIteration[0])
	}
}

// TestBagLabeledTemplates checks labeled pruning through the bag DP
// against the generalized exact counter.
func TestBagLabeledTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 16
	edges := make([][2]int32, 50)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(rng.Intn(2))
	}
	g := graph.MustFromEdges(n, edges, labels)
	tri, err := tmpl.Triangle().WithLabels("tri-aab", []int32{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, tri, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(29)
	want := exact.CountColorfulMappings(g, tri, e.ColoringFor(seed))
	if got := e.ColorfulTotal(seed); got != float64(want) {
		t.Fatalf("labeled bag DP total %v, exact %d", got, want)
	}
}
