package dp

import (
	"testing"
)

// checkPlanInvariants asserts the structural contract every tile plan
// must satisfy: bounds cover [0, ncP] exactly once, strictly increase,
// and blockVerts lands in its clamp range. These are the properties the
// tile kernels rely on for the visit-each-cell-exactly-once bit-identity
// argument. (Width balance is an auto-mode-only property — a forced
// width leaves a ragged last tile — so the auto callers check it
// separately.)
func checkPlanInvariants(t *testing.T, p *tilePlan, ncP int) {
	t.Helper()
	if p == nil {
		return
	}
	if len(p.bounds) < 2 {
		t.Fatalf("plan has %d bounds, want >= 2", len(p.bounds))
	}
	if p.bounds[0] != 0 || p.bounds[len(p.bounds)-1] != int32(ncP) {
		t.Fatalf("bounds %v do not cover [0, %d]", p.bounds, ncP)
	}
	for i := 1; i < len(p.bounds); i++ {
		if p.bounds[i] <= p.bounds[i-1] {
			t.Fatalf("bounds %v not strictly increasing at %d", p.bounds, i)
		}
	}
	if p.blockVerts < minBlockVerts || p.blockVerts > maxBlockVerts {
		t.Fatalf("blockVerts %d outside [%d, %d]", p.blockVerts, minBlockVerts, maxBlockVerts)
	}
}

func TestPlanTilesShapes(t *testing.T) {
	cases := []struct {
		name                   string
		nc, ncP, lanes, nVerts int
		llc                    int64
		forceCols              int
		wantNil                bool
		wantTiles              int // 0 = don't check
	}{
		{name: "fits budget untiled", nc: 35, ncP: 7, lanes: 1, nVerts: 1000, llc: 1 << 20, wantNil: true},
		{name: "tiling disabled", nc: 35, ncP: 7, lanes: 8, nVerts: 100000, llc: 0, wantNil: true},
		{name: "force off", nc: 35, ncP: 7, lanes: 8, nVerts: 100000, llc: 1 << 20, forceCols: -1, wantNil: true},
		{name: "zero-width passive", nc: 35, ncP: 0, lanes: 8, nVerts: 100000, llc: 1 << 20, wantNil: true},
		{name: "zero vertices", nc: 35, ncP: 7, lanes: 8, nVerts: 0, llc: 1 << 20, wantNil: true},
		{name: "zero lanes", nc: 35, ncP: 7, lanes: 0, nVerts: 100000, llc: 1 << 20, wantNil: true},
		{name: "force one row", nc: 35, ncP: 7, lanes: 1, nVerts: 100, llc: 1 << 30, forceCols: 1, wantTiles: 7},
		{name: "force odd", nc: 35, ncP: 7, lanes: 1, nVerts: 100, llc: 1 << 30, forceCols: 3, wantTiles: 3},
		{name: "force full width", nc: 35, ncP: 7, lanes: 1, nVerts: 100, llc: 1 << 30, forceCols: 7, wantTiles: 1},
		{name: "force wider than table clamps", nc: 35, ncP: 7, lanes: 1, nVerts: 100, llc: 1 << 30, forceCols: 99, wantTiles: 1},
		{name: "llc below one row still one column per tile", nc: 35, ncP: 7, lanes: 8, nVerts: 100000, llc: 1, wantTiles: 7},
		{name: "auto splits over budget", nc: 21, ncP: 21, lanes: 8, nVerts: 100000, llc: 64 << 20, wantTiles: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := planTiles(tc.nc, tc.ncP, tc.lanes, tc.nVerts, tc.llc, tc.forceCols)
			if tc.wantNil {
				if p != nil {
					t.Fatalf("want untiled (nil plan), got bounds %v", p.bounds)
				}
				return
			}
			if p == nil {
				t.Fatal("want a tile plan, got nil")
			}
			checkPlanInvariants(t, p, tc.ncP)
			if tc.wantTiles > 0 && p.tiles() != tc.wantTiles {
				t.Fatalf("got %d tiles (bounds %v), want %d", p.tiles(), p.bounds, tc.wantTiles)
			}
		})
	}
}

// FuzzTilePlan drives the tile-size picker with arbitrary — including
// degenerate — shapes and checks the structural invariants plus the
// auto-mode budget contract. The seeds pin the degenerate inputs named
// by the issue: zero-width tables, single-vertex graphs, and an LLC
// budget smaller than one row.
func FuzzTilePlan(f *testing.F) {
	f.Add(35, 7, 8, 100000, int64(64<<20), 0)
	f.Add(0, 0, 0, 0, int64(0), 0)              // all-degenerate
	f.Add(1, 0, 1, 1, int64(1<<20), 0)          // zero-width passive table
	f.Add(1, 1, 1, 1, int64(1<<20), 0)          // single-vertex graph
	f.Add(35, 21, 8, 100000, int64(1), 0)       // budget smaller than one row
	f.Add(35, 7, 8, 100000, int64(-5), 0)       // negative budget
	f.Add(35, 7, 8, 100000, int64(1<<20), 9999) // force wider than the table
	f.Add(35, 7, 8, 100000, int64(1<<20), -1)   // force off
	f.Fuzz(func(t *testing.T, nc, ncP, lanes, nVerts int, llc int64, forceCols int) {
		// Keep the product bounded so the bounds slice stays small; the
		// picker itself must tolerate any int, so clamp only magnitudes.
		if ncP > 1<<20 || ncP < -1<<20 || nc > 1<<20 || nc < -1<<20 {
			t.Skip()
		}
		p := planTiles(nc, ncP, lanes, nVerts, llc, forceCols)
		if p == nil {
			return
		}
		checkPlanInvariants(t, p, ncP)
		if forceCols == 0 {
			// Auto mode only tiles past the budget, and each tile must fit
			// it unless a single column already exceeds it.
			pasBytes := int64(nVerts) * int64(ncP) * int64(lanes) * 8
			if llc <= 0 || pasBytes <= llc {
				t.Fatalf("auto plan tiled a fitting pass: %d bytes vs budget %d", pasBytes, llc)
			}
			rowBytes := int64(nVerts) * int64(lanes) * 8
			widthMin, widthMax := int32(1<<30), int32(0)
			for i := 1; i < len(p.bounds); i++ {
				w := p.bounds[i] - p.bounds[i-1]
				if int64(w)*rowBytes > llc && w > 1 {
					t.Fatalf("tile %d of width %d (%d bytes) exceeds budget %d", i-1, w, int64(w)*rowBytes, llc)
				}
				widthMin, widthMax = min(widthMin, w), max(widthMax, w)
			}
			if widthMax-widthMin > 1 {
				t.Fatalf("auto bounds %v unbalanced: widths span [%d, %d]", p.bounds, widthMin, widthMax)
			}
		}
	})
}

// Regression twins for FuzzTilePlan's degenerate seeds, runnable without
// the fuzzer (go test) so CI pins them deterministically.
func TestTilePlanDegenerate(t *testing.T) {
	// Zero-width passive table, zero vertices, zero lanes: untiled.
	for _, args := range [][4]int{{0, 0, 0, 0}, {1, 0, 1, 1}, {35, 7, 0, 100}, {35, 7, 1, 0}} {
		if p := planTiles(args[0], args[1], args[2], args[3], 1<<20, 0); p != nil {
			t.Fatalf("planTiles%v = %v, want nil", args, p.bounds)
		}
	}
	// Single-vertex graph over budget: tiles to single columns, never 0-width.
	p := planTiles(1, 4, 1, 1, 8, 0) // 4 cols x 8 bytes = 32 > 8
	if p == nil {
		t.Fatal("single-vertex over-budget pass should tile")
	}
	checkPlanInvariants(t, p, 4)
	// Budget smaller than one row degrades to one column per tile.
	p = planTiles(35, 21, 8, 100000, 1, 0)
	if p == nil || p.tiles() != 21 {
		t.Fatalf("sub-row budget: got %+v, want 21 single-column tiles", p)
	}
	checkPlanInvariants(t, p, 21)
}

// TestBlockVertsFor pins the output-block clamp range and the 16-vertex
// alignment the chunkForTiled contract relies on.
func TestBlockVertsFor(t *testing.T) {
	cases := []struct {
		nc, lanes, want int
	}{
		{0, 0, minBlockVerts},                   // degenerate width
		{1, 1, maxBlockVerts},                   // tiny rows clamp high
		{1 << 20, 8, minBlockVerts},             // huge rows clamp low
		{35, 8, (1 << 20) / (35 * 8 * 8) &^ 15}, // mid-range, 16-aligned
	}
	for _, tc := range cases {
		got := blockVertsFor(tc.nc, tc.lanes)
		if got != tc.want {
			t.Errorf("blockVertsFor(%d, %d) = %d, want %d", tc.nc, tc.lanes, got, tc.want)
		}
		if got%16 != 0 {
			t.Errorf("blockVertsFor(%d, %d) = %d not 16-aligned", tc.nc, tc.lanes, got)
		}
	}
}

// TestChunkForTiledAlignment pins the chunk/tile-block alignment across
// worker counts 1..16: every chunk the work-stealing cursor hands out
// must start on a block boundary and cover whole blocks (except the
// ragged final chunk at nVerts).
func TestChunkForTiledAlignment(t *testing.T) {
	for _, nVerts := range []int{1, 100, 5_000, 100_000, 1_000_003} {
		for workers := 1; workers <= 16; workers++ {
			for _, blockVerts := range []int{16, 48, 1024, 4096} {
				chunk := chunkForTiled(nVerts, workers, blockVerts)
				if chunk <= 0 {
					t.Fatalf("nVerts=%d workers=%d block=%d: chunk %d <= 0", nVerts, workers, blockVerts, chunk)
				}
				if chunk%blockVerts != 0 {
					t.Fatalf("nVerts=%d workers=%d block=%d: chunk %d not a whole number of blocks",
						nVerts, workers, blockVerts, chunk)
				}
				if chunk < chunkFor(nVerts, workers) {
					t.Fatalf("nVerts=%d workers=%d block=%d: tiled chunk %d shrank below untiled %d",
						nVerts, workers, blockVerts, chunk, chunkFor(nVerts, workers))
				}
				// Walk the cursor like the workers do: every claimed start
				// must be block-aligned.
				for start := 0; start < nVerts; start += chunk {
					if start%blockVerts != 0 {
						t.Fatalf("chunk start %d not aligned to block %d", start, blockVerts)
					}
				}
			}
		}
	}
	// blockVerts <= 1 degrades to the plain chunk.
	if got, want := chunkForTiled(1000, 4, 1), chunkFor(1000, 4); got != want {
		t.Fatalf("blockVerts=1: got %d, want plain chunk %d", got, want)
	}
}
