package dp

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Result summarizes a counting run.
type Result struct {
	// Estimate is the mean over iterations of the scaled colorful count:
	// the approximate number of non-induced occurrences of the template.
	Estimate float64
	// PerIteration holds each iteration's individual estimate.
	PerIteration []float64
	// StdErr is the standard error of the mean across iterations (0 for
	// a single iteration).
	StdErr float64
	// PeakTableBytes is the maximum summed table footprint observed in
	// any single iteration.
	PeakTableBytes int64
	// Elapsed is the wall-clock time of the whole run.
	Elapsed time.Duration
	// ModeUsed records the resolved parallelization mode.
	ModeUsed Mode
}

// Run executes iters color-coding iterations (Algorithm 1) and averages
// their estimates. Estimates are independent of the parallel mode: the
// i-th iteration always colors with seed Seed+i.
func (e *Engine) Run(iters int) (Result, error) {
	if iters < 1 {
		return Result{}, fmt.Errorf("dp: iterations must be >= 1, got %d", iters)
	}
	start := time.Now()
	mode := e.mode()
	res := Result{PerIteration: make([]float64, iters), ModeUsed: mode}

	switch mode {
	case Outer, Hybrid:
		// Whole iterations run concurrently, each with private tables
		// (memory grows with concurrent iterations, as the paper notes).
		// Hybrid additionally gives each concurrent iteration a share of
		// inner-loop workers - the combination the paper leaves as
		// future work.
		workers := e.workers()
		if workers > iters {
			workers = iters
		}
		innerW := 1
		if mode == Hybrid {
			// Split the budget ~evenly across the two levels.
			outerW := 1
			for outerW*outerW < e.workers() {
				outerW++
			}
			if outerW > iters {
				outerW = iters
			}
			workers = outerW
			innerW = e.workers() / outerW
			if innerW < 1 {
				innerW = 1
			}
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		next := make(chan int, iters)
		for i := 0; i < iters; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					st := e.newIterState(rand.New(rand.NewSource(e.cfg.Seed+int64(i))), innerW)
					total := st.run()
					mu.Lock()
					res.PerIteration[i] = e.scale(total)
					if st.peakBytes > res.PeakTableBytes {
						res.PeakTableBytes = st.peakBytes
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	default: // Inner
		for i := 0; i < iters; i++ {
			st := e.newIterState(rand.New(rand.NewSource(e.cfg.Seed+int64(i))), e.workers())
			total := st.run()
			res.PerIteration[i] = e.scale(total)
			if st.peakBytes > res.PeakTableBytes {
				res.PeakTableBytes = st.peakBytes
			}
		}
	}

	var sum float64
	for _, x := range res.PerIteration {
		sum += x
	}
	res.Estimate = sum / float64(iters)
	if iters > 1 {
		var ss float64
		for _, x := range res.PerIteration {
			d := x - res.Estimate
			ss += d * d
		}
		res.StdErr = math.Sqrt(ss / float64(iters-1) / float64(iters))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// scale converts a colorful mapping total into an occurrence estimate
// (Algorithm 2, lines 20-23): divide by the colorful probability and the
// automorphism count of the template.
func (e *Engine) scale(total float64) float64 {
	return total / (e.prob * float64(e.aut))
}

// ColorfulTotal runs a single DP pass with the given coloring seed and
// returns the raw colorful mapping total (no scaling). It is the hook the
// correctness tests use to compare against brute-force colorful
// enumeration under a deterministic coloring.
func (e *Engine) ColorfulTotal(seed int64) float64 {
	st := e.newIterState(rand.New(rand.NewSource(seed)), e.workers())
	return st.run()
}

// ColoringFor reproduces the vertex coloring used by iteration seed, for
// tests and external verification.
func (e *Engine) ColoringFor(seed int64) []int8 {
	rng := rand.New(rand.NewSource(seed))
	colors := make([]int8, e.g.N())
	for i := range colors {
		colors[i] = int8(rng.Intn(e.k))
	}
	return colors
}

// VertexCounts estimates, for every graph vertex v, the number of
// template embeddings in which v plays the role of the template root
// (set Config.RootVertex to pick the role — e.g. the center of U5-2 for
// the paper's graphlet-degree experiments). Estimates are averaged over
// iters iterations and scaled by the colorful probability and the number
// of automorphisms fixing the root.
func (e *Engine) VertexCounts(iters int) ([]float64, error) {
	if iters < 1 {
		return nil, fmt.Errorf("dp: iterations must be >= 1, got %d", iters)
	}
	if e.cfg.Share {
		return nil, fmt.Errorf("dp: per-vertex counts require Share=false (shared nodes lose root identity)")
	}
	n := e.g.N()
	acc := make([]float64, n)
	scale := 1 / (e.prob * float64(e.rAut) * float64(iters))
	for i := 0; i < iters; i++ {
		st := e.newIterState(rand.New(rand.NewSource(e.cfg.Seed+int64(i))), e.workers())
		st.keep = true // retain the root table for reading
		st.run()
		root := st.tabs[e.tree.Root]
		for v := int32(0); v < int32(n); v++ {
			if root.Has(v) {
				acc[v] += root.SumRow(v) * scale
			}
		}
		for _, tab := range st.tabs {
			tab.Release()
		}
		e.kept = nil
		e.keptColors = nil
	}
	return acc, nil
}

// RunConverged runs iterations adaptively until the relative standard
// error of the mean estimate falls below relStdErr, bounded by minIters
// and maxIters — a practical alternative to the enormously conservative
// theoretical bound of IterationsFor (the paper's Figures 10-12 show a
// few iterations usually suffice; this automates "enough"). Iterations
// use the same seeds as Run, so a converged run is a prefix of a fixed
// run. Inner-loop parallelism applies within each iteration.
func (e *Engine) RunConverged(relStdErr float64, minIters, maxIters int) (Result, error) {
	if relStdErr <= 0 {
		return Result{}, fmt.Errorf("dp: relStdErr must be positive, got %v", relStdErr)
	}
	if minIters < 2 {
		minIters = 2
	}
	if maxIters < minIters {
		return Result{}, fmt.Errorf("dp: maxIters %d < minIters %d", maxIters, minIters)
	}
	start := time.Now()
	workers := 1
	if e.mode() == Inner {
		workers = e.workers()
	}
	res := Result{ModeUsed: e.mode()}
	var mean, m2 float64
	for i := 0; i < maxIters; i++ {
		st := e.newIterState(rand.New(rand.NewSource(e.cfg.Seed+int64(i))), workers)
		est := e.scale(st.run())
		if st.peakBytes > res.PeakTableBytes {
			res.PeakTableBytes = st.peakBytes
		}
		res.PerIteration = append(res.PerIteration, est)
		// Welford's online mean/variance update.
		n := float64(i + 1)
		delta := est - mean
		mean += delta / n
		m2 += delta * (est - mean)
		if i+1 >= minIters && mean != 0 {
			stderr := math.Sqrt(m2 / (n - 1) / n)
			if stderr/math.Abs(mean) <= relStdErr {
				break
			}
		}
	}
	n := float64(len(res.PerIteration))
	res.Estimate = mean
	if n > 1 {
		res.StdErr = math.Sqrt(m2 / (n - 1) / n)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
