package dp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Result summarizes a counting run.
type Result struct {
	// Estimate is the mean over iterations of the scaled colorful count:
	// the approximate number of non-induced occurrences of the template.
	Estimate float64
	// PerIteration holds each iteration's individual estimate. For a
	// cancelled run it holds only the iterations that completed, in seed
	// order.
	PerIteration []float64
	// StdErr is the standard error of the mean across iterations (0 for
	// a single iteration).
	StdErr float64
	// PeakTableBytes is the maximum summed table footprint observed in
	// any single iteration.
	PeakTableBytes int64
	// Elapsed is the wall-clock time of the whole run.
	Elapsed time.Duration
	// ModeUsed records the resolved parallelization mode.
	ModeUsed Mode
	// Stats is the observability snapshot of the run (per-node times,
	// kernel decisions, table row traffic, per-iteration timings).
	Stats RunStats
}

// Run executes iters color-coding iterations (Algorithm 1) and averages
// their estimates. Estimates are independent of the parallel mode: the
// i-th iteration always colors with seed Seed+i.
func (e *Engine) Run(iters int) (Result, error) {
	return e.RunContext(context.Background(), iters)
}

// RunContext is Run with cooperative cancellation: the context is polled
// at iteration boundaries and inside every DP pass at vertex granularity,
// so all three parallel modes abort promptly (typically well under a
// millisecond of DP work after cancellation). On cancellation it returns
// the partial result — the mean over the iterations that completed, with
// Stats.Cancelled set — alongside ctx.Err().
func (e *Engine) RunContext(ctx context.Context, iters int) (Result, error) {
	if iters < 1 {
		return Result{}, fmt.Errorf("dp: iterations must be >= 1, got %d", iters)
	}
	start := time.Now()
	mode := e.mode()
	stop, release := watchContext(ctx)
	defer release()
	kd0, ka0 := e.KernelStats()
	ah0, am0 := e.arena.Stats()

	estimates := make([]float64, iters)
	iterTimes := make([]time.Duration, iters)
	completed := make([]bool, iters)
	stats := e.newRunStats()
	stats.BatchSize = e.batch
	res := Result{ModeUsed: mode}

	// runIter executes one full iteration and returns its state; the
	// caller folds the result in under its own synchronization.
	runIter := func(i, innerW int) (*iterState, time.Duration) {
		st := e.newIterState(rand.New(rand.NewSource(e.cfg.Seed+int64(i))), innerW)
		st.stop = stop
		if e.tree != nil {
			st.nodeTimes = make([]time.Duration, len(e.tree.Order))
		}
		t0 := time.Now()
		st.total = st.run()
		return st, time.Since(t0)
	}

	switch {
	case e.batch > 1:
		// Batched execution: one DP traversal per lane batch; seeds and
		// per-iteration estimates are identical to the unbatched schedule.
		e.runBatches(ctx, mode, iters, stop, start, estimates, iterTimes, completed, &stats, &res)
	case mode == Outer || mode == Hybrid:
		// Whole iterations run concurrently, each with private tables
		// (memory grows with concurrent iterations, as the paper notes).
		// Hybrid additionally gives each concurrent iteration a share of
		// inner-loop workers - the combination the paper leaves as
		// future work.
		workers := e.workers()
		if workers > iters {
			workers = iters
		}
		innerWs := make([]int, workers)
		for w := range innerWs {
			innerWs[w] = 1
		}
		if mode == Hybrid {
			workers, innerWs = hybridSplit(e.workers(), iters)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		next := make(chan int, iters)
		for i := 0; i < iters; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := range next {
					if stopRequested(ctx, stop) {
						continue // drain remaining iteration slots
					}
					st, d := runIter(i, innerWs[w])
					mu.Lock()
					stats.mergeIter(st)
					if st.peakBytes > res.PeakTableBytes {
						res.PeakTableBytes = st.peakBytes
					}
					if !st.aborted {
						estimates[i] = e.scale(st.total)
						iterTimes[i] = d
						completed[i] = true
						if e.cfg.OnIteration != nil {
							e.cfg.OnIteration(i, estimates[i], time.Since(start))
						}
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
	default: // Inner
		for i := 0; i < iters; i++ {
			if stopRequested(ctx, stop) {
				break
			}
			st, d := runIter(i, e.workers())
			stats.mergeIter(st)
			if st.peakBytes > res.PeakTableBytes {
				res.PeakTableBytes = st.peakBytes
			}
			if st.aborted {
				break
			}
			estimates[i] = e.scale(st.total)
			iterTimes[i] = d
			completed[i] = true
			if e.cfg.OnIteration != nil {
				e.cfg.OnIteration(i, estimates[i], time.Since(start))
			}
		}
	}

	// Compact to completed iterations (all of them when not cancelled).
	for i := 0; i < iters; i++ {
		if completed[i] {
			res.PerIteration = append(res.PerIteration, estimates[i])
			stats.IterTimes = append(stats.IterTimes, iterTimes[i])
		}
	}
	n := len(res.PerIteration)
	stats.Iterations = n
	if n > 0 {
		var sum float64
		for _, x := range res.PerIteration {
			sum += x
		}
		res.Estimate = sum / float64(n)
	}
	if n > 1 {
		var ss float64
		for _, x := range res.PerIteration {
			d := x - res.Estimate
			ss += d * d
		}
		res.StdErr = math.Sqrt(ss / float64(n-1) / float64(n))
	}
	kd1, ka1 := e.KernelStats()
	stats.KernelDirect = kd1 - kd0
	stats.KernelAggregate = ka1 - ka0
	ah1, am1 := e.arena.Stats()
	stats.ArenaHits, stats.ArenaMisses = ah1-ah0, am1-am0
	stats.PeakTableBytes = res.PeakTableBytes
	spillSlabs, spillBytes := e.arena.SpillStats()
	stats.SpillSlabs, stats.SpillMappedBytes = int64(spillSlabs), spillBytes
	stats.sampleRSS()
	res.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		stats.Cancelled = true
		res.Stats = stats
		return res, err
	}
	res.Stats = stats
	return res, nil
}

// hybridSplit divides a worker budget between concurrent iterations
// (outer level) and per-traversal DP workers (inner level), aiming for
// the balanced ~sqrt split of Hybrid mode without stranding budget. The
// old floor-division split under-subscribed every non-square budget
// (7 workers -> 3 outer x 2 inner = 6 used); here the remainder workers
// go one each to the first outer slots (7 -> [3 2 2]), so the inner
// widths always sum to min(total, ...) exactly. outerW never exceeds
// slots — the number of schedulable units (iterations or batches) — so
// short runs widen inner parallelism instead of idling outer slots.
func hybridSplit(total, slots int) (outerW int, innerW []int) {
	if total < 1 {
		total = 1
	}
	if slots < 1 {
		slots = 1
	}
	outerW = 1
	for outerW*outerW < total { // ceil(sqrt(total))
		outerW++
	}
	if outerW > slots {
		outerW = slots
	}
	innerW = make([]int, outerW)
	base, rem := total/outerW, total%outerW
	for w := range innerW {
		innerW[w] = base
		if w < rem {
			innerW[w]++
		}
	}
	return outerW, innerW
}

// scale converts a colorful mapping total into an occurrence estimate
// (Algorithm 2, lines 20-23): divide by the colorful probability and the
// automorphism count of the template.
func (e *Engine) scale(total float64) float64 {
	return total / (e.prob * float64(e.aut))
}

// ColorfulTotal runs a single DP pass with the given coloring seed and
// returns the raw colorful mapping total (no scaling). It is the hook the
// correctness tests use to compare against brute-force colorful
// enumeration under a deterministic coloring.
func (e *Engine) ColorfulTotal(seed int64) float64 {
	st := e.newIterState(rand.New(rand.NewSource(seed)), e.workers())
	return st.run()
}

// ColoringFor reproduces the vertex coloring used by iteration seed, for
// tests and external verification. Colors are indexed by the caller's
// original vertex ids: the rng stream is always drawn in original-id
// order, and a degree-bucketed execution reordering only scatters the
// same per-vertex colors into the relabeled id space.
func (e *Engine) ColoringFor(seed int64) []int8 {
	rng := rand.New(rand.NewSource(seed))
	colors := make([]int8, e.g.N())
	for i := range colors {
		colors[i] = int8(rng.Intn(e.k))
	}
	return colors
}

// Reseed changes the engine's base coloring seed for subsequent runs.
// All precomputed structures (partition tree, split tables) are
// seed-independent, so reseeding a built engine is free — the retry loop
// of embedding sampling uses it instead of rebuilding the engine.
func (e *Engine) Reseed(seed int64) { e.cfg.Seed = seed }

// ReleaseKept drops tables retained by a KeepTables run, returning their
// storage (and the kept color vector) to the engine arena before a
// re-run replaces them.
func (e *Engine) ReleaseKept() {
	//lint:maporder ok — release-only loop: table teardown order cannot affect any estimate
	for _, tab := range e.kept {
		tab.Release()
	}
	e.kept = nil
	e.arena.PutI8(e.keptColors)
	e.keptColors = nil
}

// VertexCounts estimates, for every graph vertex v, the number of
// template embeddings in which v plays the role of the template root
// (set Config.RootVertex to pick the role — e.g. the center of U5-2 for
// the paper's graphlet-degree experiments). Estimates are averaged over
// iters iterations and scaled by the colorful probability and the number
// of automorphisms fixing the root.
func (e *Engine) VertexCounts(iters int) ([]float64, error) {
	return e.VertexCountsContext(context.Background(), iters)
}

// VertexCountsContext is VertexCounts with cooperative cancellation. On
// cancellation it returns the partial per-vertex estimates rescaled to
// the iterations that completed (nil when none did) alongside ctx.Err().
func (e *Engine) VertexCountsContext(ctx context.Context, iters int) ([]float64, error) {
	if iters < 1 {
		return nil, fmt.Errorf("dp: iterations must be >= 1, got %d", iters)
	}
	if e.bag != nil {
		return nil, fmt.Errorf("dp: per-vertex rooted counts require a tree template; %s runs the bag DP", e.t.Name())
	}
	if e.cfg.Share {
		return nil, fmt.Errorf("dp: per-vertex counts require Share=false (shared nodes lose root identity)")
	}
	stop, release := watchContext(ctx)
	defer release()
	n := e.g.N()
	acc := make([]float64, n)
	scale := 1 / (e.prob * float64(e.rAut) * float64(iters))
	done := 0
	for i := 0; i < iters; i++ {
		if stopRequested(ctx, stop) {
			break
		}
		st := e.newIterState(rand.New(rand.NewSource(e.cfg.Seed+int64(i))), e.workers())
		st.stop = stop
		st.keep = true // retain the root table for reading
		st.run()
		if st.aborted {
			break
		}
		root := st.tabs[e.tree.Root]
		// Aborting inside this fold would leave acc holding a partial
		// iteration that the done-count rescale below cannot see, so the
		// read-only O(n) walk runs to completion; cancellation is polled
		// at the iteration boundary above and per vertex inside st.run().
		//lint:ctxpoll ok — read-only fold of a completed iteration; breaking mid-fold would corrupt the partial mean
		for v := int32(0); v < int32(n); v++ {
			if root.Has(v) {
				// Emit through the inverse permutation so callers see
				// counts indexed by their own vertex ids even when the
				// engine runs on a degree-bucketed relabeling.
				acc[e.origID(v)] += root.SumRow(v) * scale
			}
		}
		//lint:maporder ok — release-only loop: table teardown order cannot affect any estimate
		for _, tab := range st.tabs {
			tab.Release()
		}
		e.kept = nil
		e.arena.PutI8(e.keptColors)
		e.keptColors = nil
		done++
	}
	if err := ctx.Err(); err != nil {
		if done == 0 {
			return nil, err
		}
		// Rescale the partial sum from 1/iters to 1/done.
		f := float64(iters) / float64(done)
		for v := range acc {
			acc[v] *= f
		}
		return acc, err
	}
	return acc, nil
}

// RunConverged runs iterations adaptively until the relative standard
// error of the mean estimate falls below relStdErr, bounded by minIters
// and maxIters — a practical alternative to the enormously conservative
// theoretical bound of IterationsFor (the paper's Figures 10-12 show a
// few iterations usually suffice; this automates "enough"). Iterations
// use the same seeds as Run, so a converged run is a prefix of a fixed
// run. Inner-loop parallelism applies within each iteration.
func (e *Engine) RunConverged(relStdErr float64, minIters, maxIters int) (Result, error) {
	return e.RunConvergedContext(context.Background(), relStdErr, minIters, maxIters)
}

// RunConvergedContext is RunConverged with cooperative cancellation,
// polled at iteration boundaries and at vertex granularity inside each
// DP pass. On cancellation it returns the partial result alongside
// ctx.Err().
func (e *Engine) RunConvergedContext(ctx context.Context, relStdErr float64, minIters, maxIters int) (Result, error) {
	return e.RunConvergedPriorContext(ctx, relStdErr, minIters, maxIters, nil)
}

// RunConvergedPriorContext is RunConvergedContext seeded with prior
// per-iteration estimates computed elsewhere (a result cache, an
// earlier shard wave): the Welford accumulator starts from prior and
// the min/max iteration bounds count prior toward the totals, so the
// run only spends the residual iterations the target still needs.
// Fresh iterations color with this engine's Seed+i from i = 0 —
// callers offset Config.Seed by len(prior) to keep the global seed
// schedule contiguous. PerIteration holds only the fresh estimates;
// Estimate and StdErr cover prior and fresh together.
func (e *Engine) RunConvergedPriorContext(ctx context.Context, relStdErr float64, minIters, maxIters int, prior []float64) (Result, error) {
	if relStdErr <= 0 {
		return Result{}, fmt.Errorf("dp: relStdErr must be positive, got %v", relStdErr)
	}
	if minIters < 2 {
		minIters = 2
	}
	if maxIters < minIters {
		return Result{}, fmt.Errorf("dp: maxIters %d < minIters %d", maxIters, minIters)
	}
	start := time.Now()
	stop, release := watchContext(ctx)
	defer release()
	kd0, ka0 := e.KernelStats()
	workers := 1
	if e.mode() == Inner {
		workers = e.workers()
	}
	ah0, am0 := e.arena.Stats()
	stats := e.newRunStats()
	// Convergence checks are per iteration, so adaptive runs stay
	// unbatched regardless of Config.Batch.
	stats.BatchSize = 1
	res := Result{ModeUsed: e.mode()}
	var mean, m2 float64
	for j, est := range prior {
		n := float64(j + 1)
		delta := est - mean
		mean += delta / n
		m2 += delta * (est - mean)
	}
	converged := func() bool {
		n := float64(len(prior) + len(res.PerIteration))
		if n < float64(minIters) || n < 2 || mean == 0 {
			return false
		}
		return math.Sqrt(m2/(n-1)/n)/math.Abs(mean) <= relStdErr
	}
	for i := 0; len(prior)+i < maxIters && !converged(); i++ {
		if stopRequested(ctx, stop) {
			break
		}
		st := e.newIterState(rand.New(rand.NewSource(e.cfg.Seed+int64(i))), workers)
		st.stop = stop
		if e.tree != nil {
			st.nodeTimes = make([]time.Duration, len(e.tree.Order))
		}
		t0 := time.Now()
		total := st.run()
		d := time.Since(t0)
		stats.mergeIter(st)
		if st.peakBytes > res.PeakTableBytes {
			res.PeakTableBytes = st.peakBytes
		}
		if st.aborted {
			break
		}
		est := e.scale(total)
		res.PerIteration = append(res.PerIteration, est)
		stats.IterTimes = append(stats.IterTimes, d)
		// Welford's online mean/variance update.
		n := float64(len(prior) + len(res.PerIteration))
		delta := est - mean
		mean += delta / n
		m2 += delta * (est - mean)
		if e.cfg.OnIteration != nil {
			e.cfg.OnIteration(i, est, time.Since(start))
		}
	}
	// The Welford accumulator above decides WHEN to stop (mirroring
	// shard.StopIndex exactly, so stop indices agree across tiers), but
	// the reported summary is recomputed with the fixed path's two-pass
	// formula over prior+fresh: the two disagree in the last ulp, and an
	// adaptive run's Estimate/StdErr must be bit-identical to a fixed
	// run of the same length (the cache serves them interchangeably).
	if n := len(prior) + len(res.PerIteration); n > 0 {
		var sum float64
		for _, x := range prior {
			sum += x
		}
		for _, x := range res.PerIteration {
			sum += x
		}
		res.Estimate = sum / float64(n)
		if n > 1 {
			var ss float64
			for _, x := range prior {
				d := x - res.Estimate
				ss += d * d
			}
			for _, x := range res.PerIteration {
				d := x - res.Estimate
				ss += d * d
			}
			res.StdErr = math.Sqrt(ss / float64(n-1) / float64(n))
		}
	}
	stats.Iterations = len(res.PerIteration)
	kd1, ka1 := e.KernelStats()
	stats.KernelDirect = kd1 - kd0
	stats.KernelAggregate = ka1 - ka0
	ah1, am1 := e.arena.Stats()
	stats.ArenaHits, stats.ArenaMisses = ah1-ah0, am1-am0
	stats.PeakTableBytes = res.PeakTableBytes
	spillSlabs, spillBytes := e.arena.SpillStats()
	stats.SpillSlabs, stats.SpillMappedBytes = int64(spillSlabs), spillBytes
	stats.sampleRSS()
	res.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		stats.Cancelled = true
		res.Stats = stats
		return res, err
	}
	res.Stats = stats
	return res, nil
}
