package dp

import (
	"repro/internal/comb"
	"repro/internal/table"
)

// Batched tiled kernels: the lane-widened counterparts of tilekernel.go.
// The tile dimension is the passive child's per-lane column space; lane
// blocks are contiguous, so a per-lane column tile [lo, hi) is the flat
// range [lo·L, hi·L) of every lane row. As with the scalar tiled pass,
// each (neighbor, passive-column, lane) term lands in exactly one tile
// and the block-scratch accumulation is an exact integer float64 sum, so
// tiled and untiled batched runs store bit-identical rows.

// passRangeTiledB is the batched tiled driver over vertices [start,
// end): block rows of width nc·L accumulate across the tile sweep, then
// store once per vertex.
func (st *batchState) passRangeTiledB(ctx *batchCtx, tab *table.Multi, tc *tileCtx, start, end int32, sc *batchScratch) {
	w := ctx.nc * st.lanes
	bv := int32(tc.plan.blockVerts)
	for b0 := start; b0 < end; b0 += bv {
		b1 := b0 + bv
		if b1 > end {
			b1 = end
		}
		rows := sc.tileRows(int(b1-b0) * w)
		clear(rows)
		for t := range tc.ts {
			ts := &tc.ts[t]
			for v := b0; v < b1; v++ {
				if st.cancelled() {
					return
				}
				st.vertexPassTileB(ctx, v, rows[int(v-b0)*w:][:w], sc, ts, t == 0)
			}
		}
		for v := b0; v < b1; v++ {
			if st.cancelled() {
				return
			}
			row := rows[int(v-b0)*w:][:w]
			for _, x := range row {
				if x != 0 {
					tab.StoreRow(v, row)
					break
				}
			}
		}
	}
}

// vertexPassTileB is one vertex's contribution from one tile across all
// lanes, accumulated into its block-scratch row.
func (st *batchState) vertexPassTileB(ctx *batchCtx, v int32, buf []float64, sc *batchScratch, ts *tileSplits, first bool) {
	if !ctx.act.Has(v) {
		return
	}
	adj := st.e.g.Adj(v)
	if len(adj) == 0 {
		return
	}
	aggregate := ctx.useAggregate(len(adj))
	if first {
		if aggregate {
			sc.aggN += int64(st.lanes)
		} else {
			sc.directN += int64(st.lanes)
		}
	}
	switch ctx.branch {
	case branchSize2:
		st.passSize2BTile(ctx, v, adj, buf, sc, aggregate, ts)
	case branchActiveSingle:
		st.passActiveSingleBTile(ctx, v, adj, buf, sc, aggregate, ts)
	case branchPassiveSingle:
		st.passPassiveSingleBTile(ctx, v, adj, buf, sc, aggregate, ts)
	default:
		if aggregate {
			st.passGeneralAggregateBTile(ctx, v, adj, buf, sc, ts)
		} else {
			st.passGeneralDirectBTile(ctx, v, adj, buf, sc, ts)
		}
	}
}

// passSize2BTile gates each lane's neighbor color to [lo, hi).
func (st *batchState) passSize2BTile(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch, aggregate bool, ts *tileSplits) {
	L := st.lanes
	avB, any := st.laneActives(ctx, v, sc)
	if !any {
		return
	}
	pas := ctx.pas
	vbase := int(v) * L
	lo, hi := int(ts.lo), int(ts.hi)
	if !aggregate {
		for _, u := range adj {
			ubase := int(u) * L
			if prow := pas.LaneRow(u); prow != nil {
				for j := 0; j < L; j++ {
					av := avB[j]
					if av == 0 {
						continue
					}
					cv := int(st.colors[vbase+j])
					cu := int(st.colors[ubase+j])
					if cu == cv || cu < lo || cu >= hi {
						continue
					}
					if pv := prow[cu*L+j]; pv != 0 {
						buf[int(comb.PairIndex(cv, cu))*L+j] += av * pv
					}
				}
			} else if pas.Has(u) { // hash layout: probe per lane
				for j := 0; j < L; j++ {
					av := avB[j]
					if av == 0 {
						continue
					}
					cv := int(st.colors[vbase+j])
					cu := int(st.colors[ubase+j])
					if cu == cv || cu < lo || cu >= hi {
						continue
					}
					if pv := pas.Get(u, int32(cu), j); pv != 0 {
						buf[int(comb.PairIndex(cv, cu))*L+j] += av * pv
					}
				}
			}
		}
		return
	}
	colorAgg := sc.colorAgg[:st.e.k*L]
	clear(colorAgg[lo*L : hi*L])
	pas.GatherColorsRange(adj, st.colors, colorAgg, lo, hi)
	for c := lo; c < hi; c++ {
		cs := colorAgg[c*L : c*L+L]
		for j, s := range cs {
			if s == 0 {
				continue
			}
			cv := int(st.colors[vbase+j])
			if c == cv {
				continue
			}
			if av := avB[j]; av != 0 {
				buf[int(comb.PairIndex(cv, c))*L+j] += av * s
			}
		}
	}
}

// passActiveSingleBTile walks the tile-filtered entry lists (RestIdx in
// [lo, hi)), so all passive reads stay inside the tile.
func (st *batchState) passActiveSingleBTile(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch, aggregate bool, ts *tileSplits) {
	L := st.lanes
	avB, any := st.laneActives(ctx, v, sc)
	if !any {
		return
	}
	pas := ctx.pas
	vbase := int(v) * L
	if !aggregate {
		for _, u := range adj {
			if prow := pas.LaneRow(u); prow != nil {
				for j := 0; j < L; j++ {
					av := avB[j]
					if av == 0 {
						continue
					}
					for _, en := range ts.singles[int(st.colors[vbase+j])] {
						buf[int(en.SetIdx)*L+j] += av * prow[int(en.RestIdx)*L+j]
					}
				}
			} else if pas.Has(u) { // hash layout: probe per lane
				for j := 0; j < L; j++ {
					av := avB[j]
					if av == 0 {
						continue
					}
					for _, en := range ts.singles[int(st.colors[vbase+j])] {
						if pv := pas.Get(u, en.RestIdx, j); pv != 0 {
							buf[int(en.SetIdx)*L+j] += av * pv
						}
					}
				}
			}
		}
		return
	}
	agg := sc.agg[:ctx.ncP*L]
	lo, hi := int(ts.lo), int(ts.hi)
	clear(agg[lo*L : hi*L])
	pas.AccumulateRowsRange(adj, agg, lo, hi)
	for j := 0; j < L; j++ {
		av := avB[j]
		if av == 0 {
			continue
		}
		for _, en := range ts.singles[int(st.colors[vbase+j])] {
			buf[int(en.SetIdx)*L+j] += av * agg[int(en.RestIdx)*L+j]
		}
	}
}

// passPassiveSingleBTile gates each lane's neighbor color to [lo, hi);
// the entry lists index the active row and stay unfiltered.
func (st *batchState) passPassiveSingleBTile(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch, aggregate bool, ts *tileSplits) {
	L := st.lanes
	arow := ctx.act.MaterializeRow(v, sc.actRow)
	pas := ctx.pas
	lo, hi := int(ts.lo), int(ts.hi)
	if !aggregate {
		for _, u := range adj {
			ubase := int(u) * L
			if prow := pas.LaneRow(u); prow != nil {
				for j := 0; j < L; j++ {
					cu := int(st.colors[ubase+j])
					if cu < lo || cu >= hi {
						continue
					}
					pv := prow[cu*L+j]
					if pv == 0 {
						continue
					}
					for _, en := range ctx.singles[cu] {
						if av := arow[int(en.RestIdx)*L+j]; av != 0 {
							buf[int(en.SetIdx)*L+j] += av * pv
						}
					}
				}
			} else if pas.Has(u) { // hash layout: probe per lane
				for j := 0; j < L; j++ {
					cu := int(st.colors[ubase+j])
					if cu < lo || cu >= hi {
						continue
					}
					pv := pas.Get(u, int32(cu), j)
					if pv == 0 {
						continue
					}
					for _, en := range ctx.singles[cu] {
						if av := arow[int(en.RestIdx)*L+j]; av != 0 {
							buf[int(en.SetIdx)*L+j] += av * pv
						}
					}
				}
			}
		}
		return
	}
	colorAgg := sc.colorAgg[:st.e.k*L]
	clear(colorAgg[lo*L : hi*L])
	pas.GatherColorsRange(adj, st.colors, colorAgg, lo, hi)
	for c := lo; c < hi; c++ {
		cs := colorAgg[c*L : c*L+L]
		nonzero := false
		for _, s := range cs {
			if s != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			continue
		}
		for _, en := range ctx.singles[c] {
			laneMulAdd(buf[int(en.SetIdx)*L:][:L], arow[int(en.RestIdx)*L:], cs)
		}
	}
}

// passGeneralDirectBTile contracts only the tile-filtered split pairs.
func (st *batchState) passGeneralDirectBTile(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch, ts *tileSplits) {
	L := st.lanes
	arow := ctx.act.MaterializeRow(v, sc.actRow)
	pas := ctx.pas
	nc := ctx.nc
	for _, u := range adj {
		prow := pas.LaneRow(u)
		if prow == nil {
			if !pas.Has(u) {
				continue
			}
			prow = pas.MaterializeRow(u, sc.pasRow)
		}
		for ci := 0; ci < nc; ci++ {
			out := buf[ci*L : ci*L+L]
			for j := ts.seg[ci]; j < ts.seg[ci+1]; j++ {
				laneMulAdd(out, arow[int(ts.act[j])*L:], prow[int(ts.pas[j])*L:])
			}
		}
	}
}

// passGeneralAggregateBTile aggregates only the tile's passive lane
// columns, then contracts against the tile-filtered split pairs.
func (st *batchState) passGeneralAggregateBTile(ctx *batchCtx, v int32, adj []int32, buf []float64, sc *batchScratch, ts *tileSplits) {
	L := st.lanes
	agg := sc.agg[:ctx.ncP*L]
	lo, hi := int(ts.lo), int(ts.hi)
	clear(agg[lo*L : hi*L])
	ctx.pas.AccumulateRowsRange(adj, agg, lo, hi)
	arow := ctx.act.MaterializeRow(v, sc.actRow)
	nc := ctx.nc
	for ci := 0; ci < nc; ci++ {
		out := buf[ci*L : ci*L+L]
		for j := ts.seg[ci]; j < ts.seg[ci+1]; j++ {
			laneMulAdd(out, arow[int(ts.act[j])*L:], agg[int(ts.pas[j])*L:])
		}
	}
}
