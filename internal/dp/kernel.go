package dp

import (
	"fmt"
	"math"

	"repro/internal/comb"
	"repro/internal/part"
	"repro/internal/table"
)

// KernelMode selects how an internal node combines its children's tables
// (the hot inner step of Algorithm 2).
//
// The direct kernel re-runs the full (Ca, Cp) split contraction for every
// neighbor: O(deg(v) · C(k,h)·C(h,aN)) work per vertex. The aggregated
// kernel exploits that the contraction distributes over the neighbor sum
// — it first accumulates agg[Cp] = Σ_{u∈N(v)} table_p[u][Cp] into a dense
// per-worker scratch buffer (an SpMM row: adjacency × passive-count
// matrix) and then contracts ONCE against the active row, reducing the
// dominant term to O(deg(v) · C(k,pN) + C(k,h)·C(h,aN)) on sequential
// memory. Counts are integer-valued float64s, so both summation orders
// are exact and the results are bit-identical (up to 2^53).
type KernelMode int

const (
	// KernelAuto picks direct or aggregated per vertex using a
	// degree/width cost model (the default).
	KernelAuto KernelMode = iota
	// KernelDirect always re-contracts per neighbor (the seed behavior).
	KernelDirect
	// KernelAggregate always aggregates neighbor rows first.
	KernelAggregate
)

func (m KernelMode) String() string {
	switch m {
	case KernelAuto:
		return "auto"
	case KernelDirect:
		return "direct"
	case KernelAggregate:
		return "aggregate"
	default:
		return fmt.Sprintf("KernelMode(%d)", int(m))
	}
}

// kernel branch identifiers: which specialization an internal node uses.
// The branch is a property of the node (child sizes + config), fixed for
// all vertices of a pass.
type kernelBranch uint8

const (
	branchGeneral       kernelBranch = iota // general (Ca, Cp) split contraction
	branchSize2                             // both children single vertices
	branchActiveSingle                      // active child is a single vertex
	branchPassiveSingle                     // passive child is a single vertex
)

// neverAggregate is an unreachable degree threshold.
const neverAggregate = math.MaxInt

// directCellCost calibrates the cost model for memory behavior: one cell
// touched by the direct kernel (a split-table-indexed gather plus a
// dependent multiply-add, repeated per neighbor) costs about this many
// aggregated-kernel cell operations (a sequential streaming add that the
// compiler can pipeline). Measured ~2x on amd64 across the three table
// layouts; a pure operation count (factor 1) makes auto under-aggregate
// badly on mid-size nodes where the direct gather footprint no longer
// fits in L1.
const directCellCost = 2

// kernelShape is the layout-independent per-node kernel context: the
// specialization branch, the combinatorial index tables, the table
// widths, and the resolved cost-model threshold. It is shared between
// the scalar vertex pass (nodeCtx) and the batched one (batchCtx), so
// the kernel decision — a function of degree and widths only — is
// identical in both execution modes.
type kernelShape struct {
	n       *part.Node
	split   *comb.SplitTable
	singles [][]comb.SingletonEntry

	branch kernelBranch
	aN, pN int
	nc     int // NumSets of this node: C(k, h)
	ncA    int // active child width: C(k, aN)
	ncP    int // passive child width: C(k, pN)
	spn    int // splits per color set: C(h, aN)

	mode KernelMode
	// aggMinDeg is the KernelAuto decision threshold: vertices with
	// degree >= aggMinDeg run the aggregated kernel.
	aggMinDeg int
}

// nodeCtx carries everything a scalar vertex pass needs for one internal
// node, precomputed once per computeNode call instead of re-derived per
// vertex.
type nodeCtx struct {
	kernelShape
	act, pas table.Table
}

// kernelShapeFor builds the per-node kernel shape, resolving the kernel
// choice. The cost model compares per-vertex work at degree d, weighting
// each cell the direct kernel touches by its access pattern: the general
// direct kernel accumulates into a register (one gather per split cell,
// weight α = directCellCost), while the singleton-entry kernels scatter
// into buf per entry (source gather + buf scatter, weight 2α). Aggregated
// cells are sequential streaming adds (weight 1), and the aggregated
// contraction runs the same direct inner loop once per vertex instead of
// once per neighbor:
//
//	general:        α·d·nc·spn vs d·ncP + α·nc·spn    (E = C(k-1,h-1))
//	active-single:  2α·d·E     vs d·ncP + 2α·E
//	passive-single: 2α·d·E     vs d + 2α·k·E
//	size-2:         α·d        vs d + k   (colorAgg grouping)
//
// and solves each inequality for the break-even degree once per node.
// Aggregation never wins where the inequality has no solution — only
// active-single nodes on the upper half of the template, where each
// neighbor's dense passive row (ncP = C(k,h-1) cells) is wider than the
// 2α-weighted entry list the direct kernel reads.
func (e *Engine) kernelShapeFor(n *part.Node, nc int) kernelShape {
	ctx := kernelShape{
		n:       n,
		split:   e.splits[[2]int{n.Size(), n.Active.Size()}],
		singles: e.singles[n.Size()],
		aN:      n.Active.Size(),
		pN:      n.Passive.Size(),
		nc:      nc,
		mode:    e.cfg.Kernel,
	}
	ctx.ncA = int(comb.Binomial(e.k, ctx.aN))
	ctx.ncP = int(comb.Binomial(e.k, ctx.pN))
	ctx.spn = ctx.split.SplitsPerSet

	special := !e.cfg.DisableLeafSpecial
	scatter := 2 * directCellCost // per-entry weight of the scatter kernels
	switch {
	case special && ctx.aN == 1 && ctx.pN == 1:
		ctx.branch = branchSize2
		// Grouping neighbors by color saves the per-neighbor pair-index
		// scatter: α·d vs d + k, i.e. d·(α-1) > k.
		ctx.aggMinDeg = e.k/(directCellCost-1) + 1
	case special && ctx.singles != nil && ctx.aN == 1:
		ctx.branch = branchActiveSingle
		// E = entries per color = C(k-1, h-1); aggregation streams the
		// full ncP-wide passive row per neighbor instead of E scattered
		// entries, so it wins when 2α·d·E > d·ncP + 2α·E, i.e.
		// d·(2α·E - ncP) > 2α·E.
		if entries := int(comb.Binomial(e.k-1, n.Size()-1)); scatter*entries > ctx.ncP {
			ctx.aggMinDeg = (scatter*entries)/(scatter*entries-ctx.ncP) + 1
		} else {
			ctx.aggMinDeg = neverAggregate
		}
	case special && ctx.singles != nil && ctx.pN == 1:
		ctx.branch = branchPassiveSingle
		// E = entries per color = C(k-1, h-1); folding neighbors into k
		// per-color sums costs one L1 add each and defers the entry
		// scatter to once per color: 2α·d·E > d + 2α·k·E, i.e.
		// d·(2α·E - 1) > 2α·k·E.
		entries := int(comb.Binomial(e.k-1, n.Size()-1))
		ctx.aggMinDeg = (scatter*e.k*entries)/(scatter*entries-1) + 1
	default:
		ctx.branch = branchGeneral
		// Aggregate wins when α·d·nc·spn > d·ncP + α·nc·spn, i.e.
		// d·(α·nc·spn - ncP) > α·nc·spn. Since nc·spn counts disjoint
		// (Ca, Cp) pairs it is always ≥ ncP, so the threshold is finite
		// (2 at the root, where nc·spn == ncP).
		ncSpn := directCellCost * ctx.nc * ctx.spn
		ctx.aggMinDeg = ncSpn/(ncSpn-ctx.ncP) + 1
	}
	return ctx
}

// nodeContext binds the node's kernel shape to this iteration's child
// tables.
func (st *iterState) nodeContext(n *part.Node, tab table.Table) *nodeCtx {
	return &nodeCtx{
		kernelShape: st.e.kernelShapeFor(n, tab.NumSets()),
		act:         st.tabs[n.Active],
		pas:         st.tabs[n.Passive],
	}
}

// useAggregate resolves the kernel for one vertex of degree deg.
func (ctx *kernelShape) useAggregate(deg int) bool {
	switch ctx.mode {
	case KernelDirect:
		return false
	case KernelAggregate:
		return true
	default:
		return deg >= ctx.aggMinDeg
	}
}

// vertexPass computes the full color-set row of one vertex v for node
// ctx.n and stores it into tab (which is ctx's node table or a per-worker
// staging table in Hash inner-parallel mode).
func (st *iterState) vertexPass(ctx *nodeCtx, tab table.Table, v int32, sc *scratch) {
	if !ctx.act.Has(v) {
		return
	}
	adj := st.e.g.Adj(v)
	if len(adj) == 0 {
		return
	}
	aggregate := ctx.useAggregate(len(adj))
	if aggregate {
		sc.aggN++
	} else {
		sc.directN++
	}
	buf := sc.buf[:ctx.nc]
	for i := range buf {
		buf[i] = 0
	}

	var any bool
	switch ctx.branch {
	case branchSize2:
		any = st.passSize2(ctx, v, adj, buf, sc, aggregate)
	case branchActiveSingle:
		any = st.passActiveSingle(ctx, v, adj, buf, sc, aggregate)
	case branchPassiveSingle:
		any = st.passPassiveSingle(ctx, v, adj, buf, sc, aggregate)
	default:
		if aggregate {
			any = st.passGeneralAggregate(ctx, v, adj, buf, sc)
		} else {
			any = st.passGeneralDirect(ctx, v, adj, buf, sc)
		}
	}
	if any {
		tab.StoreRow(v, buf)
	}
}

// passSize2 handles h == 2: both children are single vertices, so the
// only contributing color set is {color(v), color(u)} with distinct
// colors. The aggregated variant groups neighbors by color first.
func (st *iterState) passSize2(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch, aggregate bool) bool {
	act, pas := ctx.act, ctx.pas
	av := act.Get(v, int32(st.colors[v]))
	if av == 0 {
		return false
	}
	cv := int(st.colors[v])
	any := false
	if !aggregate {
		for _, u := range adj {
			cu := int(st.colors[u])
			if cu == cv {
				continue
			}
			// Get returns 0 for absent rows on every layout, so no Has
			// probe is needed (here and in the other single-vertex
			// branches): zero contributions fall out of the != 0 check.
			if pv := pas.Get(u, int32(cu)); pv != 0 {
				buf[comb.PairIndex(cv, cu)] += av * pv
				any = true
			}
		}
		return any
	}
	colorAgg := sc.colorAgg
	for i := range colorAgg {
		colorAgg[i] = 0
	}
	table.GatherColorsInto(pas, adj, st.colors, colorAgg)
	// Same-color neighbors were folded into colorAgg[cv] by the bulk
	// gather; they contribute nothing (no valid pair set), so drop them.
	colorAgg[cv] = 0
	for c, s := range colorAgg {
		if s != 0 {
			buf[comb.PairIndex(cv, c)] += av * s
			any = true
		}
	}
	return any
}

// passActiveSingle handles aN == 1, h > 2: the active child is the root
// alone, so only color sets containing color(v) contribute and the
// passive part is C \ {color(v)} — the (k-1)/k work reduction of §III-D.
// The aggregated variant sums whole passive rows first, then walks the
// singleton entries once.
func (st *iterState) passActiveSingle(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch, aggregate bool) bool {
	act, pas := ctx.act, ctx.pas
	av := act.Get(v, int32(st.colors[v]))
	if av == 0 {
		return false
	}
	entries := ctx.singles[int(st.colors[v])]
	any := false
	if !aggregate {
		for _, u := range adj {
			// Row-first: a non-nil row needs no Has probe; only the Hash
			// layout (Row always nil) still wants the cheap presence
			// check before cell-wise Gets.
			if prow := pas.Row(u); prow != nil {
				for _, en := range entries {
					if pv := prow[en.RestIdx]; pv != 0 {
						buf[en.SetIdx] += av * pv
						any = true
					}
				}
			} else if pas.Has(u) {
				for _, en := range entries {
					if pv := pas.Get(u, en.RestIdx); pv != 0 {
						buf[en.SetIdx] += av * pv
						any = true
					}
				}
			}
		}
		return any
	}
	agg := sc.agg[:ctx.ncP]
	for i := range agg {
		agg[i] = 0
	}
	table.AccumulateRowsInto(pas, adj, agg)
	for _, en := range entries {
		if s := agg[en.RestIdx]; s != 0 {
			buf[en.SetIdx] += av * s
			any = true
		}
	}
	return any
}

// passPassiveSingle handles pN == 1, h > 2: the passive child is a single
// vertex, so for neighbor u only color sets containing color(u)
// contribute, with the active part C \ {color(u)}. The aggregated variant
// folds all neighbors into k per-color sums and walks the singleton
// entries once per color instead of once per neighbor.
func (st *iterState) passPassiveSingle(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch, aggregate bool) bool {
	act, pas := ctx.act, ctx.pas
	arow := materializeRow(act, v, sc.actRow, ctx.ncA)
	any := false
	if !aggregate {
		for _, u := range adj {
			pv := pas.Get(u, int32(st.colors[u]))
			if pv == 0 {
				continue
			}
			for _, en := range ctx.singles[int(st.colors[u])] {
				if av := arow[en.RestIdx]; av != 0 {
					buf[en.SetIdx] += av * pv
					any = true
				}
			}
		}
		return any
	}
	colorAgg := sc.colorAgg
	for i := range colorAgg {
		colorAgg[i] = 0
	}
	table.GatherColorsInto(pas, adj, st.colors, colorAgg)
	for c, s := range colorAgg {
		if s == 0 {
			continue
		}
		for _, en := range ctx.singles[c] {
			if av := arow[en.RestIdx]; av != 0 {
				buf[en.SetIdx] += av * s
				any = true
			}
		}
	}
	return any
}

// passGeneralDirect is Algorithm 2 lines 9-12 as in the seed: for every
// neighbor u and every color set C, sum products over all (Ca, Cp)
// splits.
func (st *iterState) passGeneralDirect(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch) bool {
	act, pas := ctx.act, ctx.pas
	arow := materializeRow(act, v, sc.actRow, ctx.ncA)
	split, spn, nc := ctx.split, ctx.spn, ctx.nc
	any := false
	for _, u := range adj {
		prow := pas.Row(u)
		if prow == nil {
			if !pas.Has(u) {
				continue
			}
			prow = materializeRow(pas, u, sc.pasRow, ctx.ncP)
		}
		for ci := 0; ci < nc; ci++ {
			base := ci * spn
			var s float64
			for j := base; j < base+spn; j++ {
				if av := arow[split.ActiveIdx[j]]; av != 0 {
					s += av * prow[split.PassiveIdx[j]]
				}
			}
			if s != 0 {
				buf[ci] += s
				any = true
			}
		}
	}
	return any
}

// passGeneralAggregate is the SpMM-style restructure of the general
// split: one neighbor-aggregation sweep building agg[Cp] on sequential
// memory, then a single split contraction against the active row.
func (st *iterState) passGeneralAggregate(ctx *nodeCtx, v int32, adj []int32, buf []float64, sc *scratch) bool {
	act, pas := ctx.act, ctx.pas
	agg := sc.agg[:ctx.ncP]
	for i := range agg {
		agg[i] = 0
	}
	table.AccumulateRowsInto(pas, adj, agg)
	arow := materializeRow(act, v, sc.actRow, ctx.ncA)
	split, spn, nc := ctx.split, ctx.spn, ctx.nc
	any := false
	for ci := 0; ci < nc; ci++ {
		base := ci * spn
		var s float64
		for j := base; j < base+spn; j++ {
			if av := arow[split.ActiveIdx[j]]; av != 0 {
				s += av * agg[split.PassiveIdx[j]]
			}
		}
		if s != 0 {
			buf[ci] += s
			any = true
		}
	}
	return any
}
