package dp

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

// TestTiledEquivalence is the keystone property test of the tiled
// execution layer: tiled and untiled passes must produce BIT-IDENTICAL
// PerIteration estimate streams. Each (vertex, column) cell is visited
// exactly once across tiles and counts are integer-valued float64s, so
// no summation-order slack is needed or tolerated. The sweep covers all
// three table layouts × both forced kernels × B ∈ {1, 4, 8} × tile
// widths {1 column, odd, full width} × sequential and 4-worker passes
// (run under -race by `make race`, which makes the worker sweep a data
// race probe too).
func TestTiledEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 90, 320)
	tpl := randomTree(rng, 6)
	const iters = 3
	for _, kind := range []table.Kind{table.Lazy, table.Naive, table.Hash, table.Succinct} {
		for _, kern := range []KernelMode{KernelDirect, KernelAggregate} {
			for _, workers := range []int{1, 4} {
				base := DefaultConfig()
				base.TableKind = kind
				base.Kernel = kern
				base.Mode = Inner
				base.Workers = workers
				base.Seed = 99
				base.TileCols = -1 // reference: tiling off
				for _, B := range []int{1, 4, 8} {
					refCfg := base
					refCfg.Batch = B
					e0, err := New(g, tpl, refCfg)
					if err != nil {
						t.Fatal(err)
					}
					ref, err := e0.Run(iters)
					if err != nil {
						t.Fatal(err)
					}
					if ref.Stats.TiledPasses != 0 {
						t.Fatalf("%v/%v w=%d B=%d: reference run tiled %d passes, want 0",
							kind, kern, workers, B, ref.Stats.TiledPasses)
					}
					// Tile widths: single column, odd width, full width
					// (full width still runs the tiled kernel path, as a
					// one-tile sweep).
					for _, cols := range []int{1, 3, 1 << 20} {
						cfg := refCfg
						cfg.TileCols = cols
						e, err := New(g, tpl, cfg)
						if err != nil {
							t.Fatal(err)
						}
						res, err := e.Run(iters)
						if err != nil {
							t.Fatal(err)
						}
						if res.Stats.TiledPasses == 0 {
							t.Fatalf("%v/%v w=%d B=%d cols=%d: no pass ran tiled",
								kind, kern, workers, B, cols)
						}
						for i := range res.PerIteration {
							if res.PerIteration[i] != ref.PerIteration[i] {
								t.Fatalf("%v/%v w=%d B=%d cols=%d: iteration %d estimate %v != untiled %v",
									kind, kern, workers, B, cols, i, res.PerIteration[i], ref.PerIteration[i])
							}
						}
						if res.Estimate != ref.Estimate {
							t.Fatalf("%v/%v w=%d B=%d cols=%d: mean %v != untiled %v",
								kind, kern, workers, B, cols, res.Estimate, ref.Estimate)
						}
					}
				}
			}
		}
	}
}

// TestReorderEquivalence pins the degree-bucketed relabeling's
// invisibility: with reordering forced on, the PerIteration stream and
// the per-original-vertex counts must be bit-identical to a run with
// reordering off — colors are drawn in original-id order and scattered
// through the permutation, and per-vertex output is translated back.
func TestReorderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// A skewed graph (star-heavy) so the bucketing actually permutes.
	g := randomGraph(rng, 120, 500)
	tpl := randomTree(rng, 5)
	const iters = 4
	for _, B := range []int{1, 4} {
		off := DefaultConfig()
		off.Seed = 5
		off.Batch = B
		off.Reorder = ReorderOff
		e0, err := New(g, tpl, off)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := e0.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		refCounts, err := e0.VertexCounts(iters)
		if err != nil {
			t.Fatal(err)
		}

		on := off
		on.Reorder = ReorderOn
		e1, err := New(g, tpl, on)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e1.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.ReorderApplied {
			t.Fatalf("B=%d: ReorderOn run did not report ReorderApplied", B)
		}
		if ref.Stats.ReorderApplied {
			t.Fatalf("B=%d: ReorderOff run reported ReorderApplied", B)
		}
		for i := range res.PerIteration {
			if res.PerIteration[i] != ref.PerIteration[i] {
				t.Fatalf("B=%d: iteration %d estimate %v != unreordered %v",
					B, i, res.PerIteration[i], ref.PerIteration[i])
			}
		}
		counts, err := e1.VertexCounts(iters)
		if err != nil {
			t.Fatal(err)
		}
		for v := range counts {
			if counts[v] != refCounts[v] {
				t.Fatalf("B=%d: vertex %d count %v != unreordered %v",
					B, v, counts[v], refCounts[v])
			}
		}
	}
}
