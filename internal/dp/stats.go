package dp

import (
	"context"
	"sync/atomic"
	"time"
)

// NodeStat records the accumulated wall time spent computing one
// partition-tree node across all iterations of a run, in evaluation
// order. Leaf nodes measure leaf-table initialization; internal nodes
// measure the DP combination pass (the paper's "step 12", the dominant
// cost per §V-A).
type NodeStat struct {
	// Index is the node's position in the tree's evaluation order.
	Index int
	// Size is the subtemplate's vertex count.
	Size int
	// Leaf marks single-vertex subtemplates.
	Leaf bool
	// Time is the wall time spent filling this node's table, summed over
	// every iteration the run executed (including aborted ones). Under
	// outer/hybrid parallelism concurrent iterations' times add up, so
	// the total can exceed the run's wall-clock elapsed time.
	Time time.Duration
}

// RunStats is the per-run observability snapshot populated by RunContext
// and friends: where the time went (per node, per iteration), which
// kernels the cost model chose, and how much table storage moved.
type RunStats struct {
	// Layout names the table layout used ("lazy", "naive", "hash").
	Layout string
	// Iterations is the number of iterations that ran to completion
	// (cancelled iterations are excluded).
	Iterations int
	// IterTimes holds the wall time of each completed iteration, in seed
	// order.
	IterTimes []time.Duration
	// Nodes holds per-partition-tree-node accumulated compute times in
	// evaluation order.
	Nodes []NodeStat
	// KernelDirect and KernelAggregate count internal-node vertex passes
	// executed by each DP kernel during this run (the cost-model
	// decisions; forced modes land everything on one counter).
	KernelDirect    int64
	KernelAggregate int64
	// RowsAllocated and RowsReleased count materialized table rows over
	// the whole run (dense layouts materialize every vertex; sparse and
	// hash layouts only touched vertices). With the eager-release
	// schedule and no KeepTables the two are equal at run end.
	RowsAllocated int64
	RowsReleased  int64
	// TablesAllocated and TablesReleased count whole subtemplate tables.
	TablesAllocated int64
	TablesReleased  int64
	// PeakTableBytes mirrors Result.PeakTableBytes: the largest live
	// table footprint of any single iteration.
	PeakTableBytes int64
	// BatchSize is the resolved lane count of the batched execution mode
	// (1 = classic unbatched scheduling).
	BatchSize int
	// BatchesRun counts lane batches that ran to completion —
	// ceil(Iterations/BatchSize) for an uncancelled batched run, 0 when
	// unbatched.
	BatchesRun int64
	// ArenaHits and ArenaMisses count table-arena slab requests served
	// from the engine's cross-iteration free lists vs fresh allocations
	// during this run. After the first iteration warms the arena, steady
	// state is all hits.
	ArenaHits   int64
	ArenaMisses int64
	// TiledPasses counts internal-node passes that ran the column-tiled
	// execution path (passive table over the LLC budget), and TileSweeps
	// the total tiles swept across them — TileSweeps/TiledPasses is the
	// mean tiling factor.
	TiledPasses int64
	TileSweeps  int64
	// LLCBudgetBytes is the resolved cache budget the tiling decisions
	// used (0 = tiling disabled).
	LLCBudgetBytes int64
	// MemBudgetBytes is the resolved peak-memory budget the spill and
	// batch-sizing decisions used (0 = unlimited, spilling off).
	MemBudgetBytes int64
	// PeakRSSBytes is the largest process resident-set size sampled from
	// /proc/self/statm at iteration boundaries during the run (0 where
	// /proc is unavailable). Unlike PeakTableBytes it measures the whole
	// process — CSR, scratch, runtime — so it is the figure a memory
	// budget actually bounds.
	PeakRSSBytes int64
	// SpillMappedBytes and SpillSlabs snapshot the arena's file-backed
	// spill region at run end: bytes currently mapped and slabs live.
	SpillMappedBytes int64
	SpillSlabs       int64
	// ReorderApplied reports whether the engine ran on a degree-bucketed
	// vertex relabeling of the input graph.
	ReorderApplied bool
	// CachedIterations counts iterations whose per-iteration estimates
	// were served from a result cache rather than computed by this run.
	// It is always 0 for direct engine runs; serving layers that merge
	// cached estimates into a result (fascia.MergeIterations, the
	// fasciad seed-keyed cache) set it so Iterations =
	// CachedIterations + freshly computed iterations.
	CachedIterations int
	// Cancelled reports whether the run was cut short by its context.
	Cancelled bool
}

// NodeTimeTotal sums the per-node times — in sequential (inner, one
// worker per pass) runs this closely tracks the run's elapsed time.
func (s RunStats) NodeTimeTotal() time.Duration {
	var t time.Duration
	for _, n := range s.Nodes {
		t += n.Time
	}
	return t
}

// newRunStats seeds the per-node stat slots from the engine's partition
// tree.
func (e *Engine) newRunStats() RunStats {
	st := RunStats{
		Layout:         e.cfg.TableKind.String(),
		LLCBudgetBytes: e.llcBytes,
		MemBudgetBytes: e.memBytes,
		ReorderApplied: e.ord != nil,
	}
	if e.tree != nil {
		st.Nodes = make([]NodeStat, len(e.tree.Order))
		for i, n := range e.tree.Order {
			st.Nodes[i] = NodeStat{Index: i, Size: n.Size(), Leaf: n.IsLeaf()}
		}
	}
	return st
}

// mergeIter folds one iteration's iterState accounting into the stats.
// Callers serialize access (outer/hybrid modes hold the result mutex).
func (s *RunStats) mergeIter(st *iterState) {
	for i, d := range st.nodeTimes {
		s.Nodes[i].Time += d
	}
	s.RowsAllocated += st.rowsAllocated
	s.RowsReleased += st.rowsReleased
	s.TablesAllocated += st.tablesAllocated
	s.TablesReleased += st.tablesReleased
	s.TiledPasses += st.tiledPasses
	s.TileSweeps += st.tileSweeps
	s.sampleRSS()
}

// sampleRSS folds the current process resident-set size into the peak.
// Called at iteration/batch boundaries under the caller's run lock.
func (s *RunStats) sampleRSS() {
	if r := readRSSBytes(); r > s.PeakRSSBytes {
		s.PeakRSSBytes = r
	}
}

// mergeBatch folds one lane batch's batchState accounting into the
// stats. Callers serialize access exactly like mergeIter.
func (s *RunStats) mergeBatch(st *batchState) {
	for i, d := range st.nodeTimes {
		s.Nodes[i].Time += d
	}
	s.RowsAllocated += st.rowsAllocated
	s.RowsReleased += st.rowsReleased
	s.TablesAllocated += st.tablesAllocated
	s.TablesReleased += st.tablesReleased
	s.TiledPasses += st.tiledPasses
	s.TileSweeps += st.tileSweeps
	s.sampleRSS()
}

// stopRequested is the iteration/batch-boundary cancellation check: it
// consults the context directly in addition to the watcher flag, because
// the AfterFunc that arms the flag fires on a separate goroutine — on a
// single-CPU runtime a fast run can drain every remaining iteration
// before that goroutine is ever scheduled. Boundaries are coarse enough
// to afford the ctx.Err() mutex; the per-vertex inner loops keep the
// one-atomic-load poll.
func stopRequested(ctx context.Context, stop *atomic.Bool) bool {
	if stop != nil && stop.Load() {
		return true
	}
	return ctx != nil && ctx.Err() != nil
}

// watchContext arms a cancellation flag that DP inner loops can poll
// with a single atomic load (cheap enough to check at every vertex).
// The returned release func detaches the watcher; it must be called to
// avoid leaking the AfterFunc registration.
func watchContext(ctx context.Context) (stop *atomic.Bool, release func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	var b atomic.Bool
	if ctx.Err() != nil {
		// AfterFunc fires asynchronously even for a dead context; set the
		// flag synchronously so not a single iteration starts.
		b.Store(true)
		return &b, func() {}
	}
	cancel := context.AfterFunc(ctx, func() { b.Store(true) })
	return &b, func() { cancel() }
}
