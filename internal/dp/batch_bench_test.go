package dp

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// BenchmarkBatchedDP is the acceptance benchmark of the iteration-batched
// execution mode: 8 iterations of a k=7 path template on 100k-vertex
// Erdős–Rényi and Barabási–Albert graphs, sweeping the lane width B with
// inner parallelism pinned to one worker so the comparison isolates the
// traversal amortization (B=1 is the classic schedule). The recorded
// numbers live in BENCH_batch.json; the target is >= 1.5x at B=8 with
// peak table bytes <= B x the unbatched peak.
//
// Run with:
//
//	go test -run='^$' -bench=BenchmarkBatchedDP/ -benchtime=1x -count=3 ./internal/dp
func BenchmarkBatchedDP(b *testing.B) {
	const iters = 8
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er100k", gen.ErdosRenyiM(100_000, 400_000, 1)},
		{"ba100k", gen.BarabasiAlbert(100_000, 4, 1)},
	}
	tpl := tmpl.MustNamed("U7-1")
	for _, gr := range graphs {
		for _, B := range []int{1, 2, 4, 8, 16} {
			cfg := DefaultConfig()
			cfg.Batch = B
			cfg.Mode = Inner
			cfg.Workers = 1
			e, err := New(gr.g, tpl, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/B%d", gr.name, B), func(b *testing.B) {
				var peak int64
				for i := 0; i < b.N; i++ {
					res, err := e.Run(iters)
					if err != nil {
						b.Fatal(err)
					}
					peak = res.PeakTableBytes
				}
				b.ReportMetric(float64(peak)/(1<<20), "peakMB")
				b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*iters)*1000, "ms/iter")
			})
		}
	}
}

// BenchmarkBatchedDPSmall is the CI smoke version (make bench-batch): a
// small graph, B=1 vs B=4, with an equivalence assertion so the smoke
// run doubles as an end-to-end batched-vs-unbatched check.
func BenchmarkBatchedDPSmall(b *testing.B) {
	g := gen.ErdosRenyiM(5_000, 20_000, 1)
	tpl := tmpl.MustNamed("U7-1")
	const iters = 4
	var ref []float64
	for _, B := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Batch = B
		cfg.Mode = Inner
		cfg.Workers = 1
		e, err := New(g, tpl, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("B%d", B), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := e.Run(iters)
				if err != nil {
					b.Fatal(err)
				}
				if B == 1 {
					ref = res.PerIteration
				} else if ref != nil {
					for j := range res.PerIteration {
						if res.PerIteration[j] != ref[j] {
							b.Fatalf("B=%d iteration %d: %v != unbatched %v",
								B, j, res.PerIteration[j], ref[j])
						}
					}
				}
			}
		})
	}
}

// BenchmarkTiledDPSmall is the CI smoke of the tiled execution layer
// (make bench-tile): a small graph run untiled, then with a forced
// 2-column tile width at B=1 and B=4, with an estimate-equivalence
// assertion so the smoke run doubles as an end-to-end
// tiled-vs-untiled bit-identity check.
func BenchmarkTiledDPSmall(b *testing.B) {
	g := gen.ErdosRenyiM(5_000, 20_000, 1)
	tpl := tmpl.MustNamed("U7-1")
	const iters = 4
	var ref []float64
	for _, run := range []struct {
		name     string
		tileCols int
		batch    int
	}{
		{"untiled", -1, 1},
		{"tiledB1", 2, 1},
		{"tiledB4", 2, 4},
	} {
		cfg := DefaultConfig()
		cfg.Batch = run.batch
		cfg.Mode = Inner
		cfg.Workers = 1
		cfg.TileCols = run.tileCols
		e, err := New(g, tpl, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(run.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := e.Run(iters)
				if err != nil {
					b.Fatal(err)
				}
				if run.tileCols > 0 && res.Stats.TiledPasses == 0 {
					b.Fatalf("%s: no pass ran tiled", run.name)
				}
				if run.tileCols < 0 {
					ref = res.PerIteration
				} else if ref != nil {
					for j := range res.PerIteration {
						if res.PerIteration[j] != ref[j] {
							b.Fatalf("%s iteration %d: %v != untiled %v",
								run.name, j, res.PerIteration[j], ref[j])
						}
					}
				}
			}
		})
	}
}

// BenchmarkChunkSkew compares the historical fixed work-stealing chunk
// (512 vertices) against the adaptive chunkFor policy on a degree-skewed
// Barabási–Albert graph, where a fixed chunk of hub vertices can cost
// many times a chunk of leaves and strand workers at the tail of a pass.
func BenchmarkChunkSkew(b *testing.B) {
	g := gen.BarabasiAlbert(50_000, 8, 1)
	tpl := tmpl.MustNamed("U5-1")
	for _, fixed := range []int{512, 0} {
		cfg := DefaultConfig()
		cfg.Mode = Inner
		cfg.Workers = 4
		e, err := New(g, tpl, cfg)
		if err != nil {
			b.Fatal(err)
		}
		name := "adaptive"
		if fixed > 0 {
			name = fmt.Sprintf("fixed%d", fixed)
		}
		b.Run(name, func(b *testing.B) {
			chunkOverride = fixed
			defer func() { chunkOverride = 0 }()
			for i := 0; i < b.N; i++ {
				e.ColorfulTotal(int64(i))
			}
		})
	}
}
