package dp

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// TestBatchEquivalence is the keystone property test of the batched
// execution mode: for every table layout, kernel, and parallel mode, a
// batched run's PerIteration estimates must be BIT-IDENTICAL to the
// unbatched run's — lane j of batch b colors with seed Seed + b·B + j,
// exactly the unbatched schedule, and counts are integer-valued float64s
// so no summation-order slack is needed or tolerated. iters=5 against
// B ∈ {2, 4, 8} exercises ragged last batches (5 = 2+2+1 = 4+1 = 5).
func TestBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []struct {
		name string
		n, m int
	}{
		{"sparse", 80, 160},
		{"dense", 60, 600},
	}
	const iters = 5
	for _, gs := range graphs {
		g := randomGraph(rng, gs.n, gs.m)
		for _, k := range []int{3, 5, 7} {
			tpl := randomTree(rng, k)
			for _, kind := range []table.Kind{table.Lazy, table.Naive, table.Hash, table.Succinct} {
				for _, kern := range []KernelMode{KernelDirect, KernelAggregate, KernelAuto} {
					for _, mode := range []Mode{Inner, Outer, Hybrid} {
						base := DefaultConfig()
						base.TableKind = kind
						base.Kernel = kern
						base.Mode = mode
						base.Workers = 3
						base.Seed = 42

						e1, err := New(g, tpl, base)
						if err != nil {
							t.Fatal(err)
						}
						ref, err := e1.Run(iters)
						if err != nil {
							t.Fatal(err)
						}
						if got := e1.Batch(); got != 1 {
							t.Fatalf("default batch = %d, want 1", got)
						}
						for _, B := range []int{2, 4, 8} {
							cfg := base
							cfg.Batch = B
							e2, err := New(g, tpl, cfg)
							if err != nil {
								t.Fatal(err)
							}
							res, err := e2.Run(iters)
							if err != nil {
								t.Fatal(err)
							}
							if len(res.PerIteration) != iters {
								t.Fatalf("%s k=%d %v/%v/%v B=%d: %d iterations, want %d",
									gs.name, k, kind, kern, mode, B, len(res.PerIteration), iters)
							}
							for i := range res.PerIteration {
								if res.PerIteration[i] != ref.PerIteration[i] {
									t.Fatalf("%s k=%d %v/%v/%v B=%d: iteration %d estimate %v != unbatched %v",
										gs.name, k, kind, kern, mode, B, i, res.PerIteration[i], ref.PerIteration[i])
								}
							}
							if res.Estimate != ref.Estimate {
								t.Fatalf("%s k=%d %v/%v/%v B=%d: mean %v != %v",
									gs.name, k, kind, kern, mode, B, res.Estimate, ref.Estimate)
							}
						}
					}
				}
			}
		}
	}
}

// TestBatchLabeledEquivalence covers the label-pruned leaf path under
// batching.
func TestBatchLabeledEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 100
	edges := make([][2]int32, 400)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(rng.Intn(3))
	}
	g := mustLabeledGraph(t, n, edges, labels)
	tpl := tmpl.MustTree("ltree", 4, [][2]int{{0, 1}, {1, 2}, {1, 3}}, []int32{0, 1, 2, 1})

	base := DefaultConfig()
	base.Seed = 5
	e1, err := New(g, tpl, base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e1.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Batch = 4
	e2, err := New(g, tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e2.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.PerIteration {
		if res.PerIteration[i] != ref.PerIteration[i] {
			t.Fatalf("labeled batched iteration %d: %v != %v", i, res.PerIteration[i], ref.PerIteration[i])
		}
	}
}

// TestBatchStats checks the batched path's accounting: BatchesRun counts
// ceil(iters/B), BatchSize reports the resolved width, row and table
// traffic balances (everything allocated is released), and peak bytes
// stay within B× the unbatched peak (the documented memory model).
func TestBatchStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 300, 1500)
	tpl := tmpl.Path(5)

	base := DefaultConfig()
	base.Seed = 9
	e1, err := New(g, tpl, base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e1.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.BatchSize != 1 || ref.Stats.BatchesRun != 0 {
		t.Fatalf("unbatched stats: BatchSize=%d BatchesRun=%d", ref.Stats.BatchSize, ref.Stats.BatchesRun)
	}

	cfg := base
	cfg.Batch = 4
	e2, err := New(g, tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e2.Run(10) // 4 + 4 + 2 lanes
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.BatchSize != 4 {
		t.Fatalf("BatchSize = %d, want 4", s.BatchSize)
	}
	if s.BatchesRun != 3 {
		t.Fatalf("BatchesRun = %d, want 3", s.BatchesRun)
	}
	if s.Iterations != 10 {
		t.Fatalf("Iterations = %d, want 10", s.Iterations)
	}
	if s.RowsAllocated == 0 || s.RowsAllocated != s.RowsReleased {
		t.Fatalf("row traffic unbalanced: allocated %d released %d", s.RowsAllocated, s.RowsReleased)
	}
	if s.TablesAllocated == 0 || s.TablesAllocated != s.TablesReleased {
		t.Fatalf("table traffic unbalanced: allocated %d released %d", s.TablesAllocated, s.TablesReleased)
	}
	if len(s.IterTimes) != 10 {
		t.Fatalf("IterTimes has %d entries, want 10", len(s.IterTimes))
	}
	if res.PeakTableBytes > 4*ref.PeakTableBytes {
		t.Fatalf("batched peak %d exceeds B x unbatched peak %d", res.PeakTableBytes, 4*ref.PeakTableBytes)
	}
	if res.PeakTableBytes <= ref.PeakTableBytes {
		t.Fatalf("batched peak %d not larger than unbatched %d (lanes should widen tables)",
			res.PeakTableBytes, ref.PeakTableBytes)
	}
}

// TestBatchOnIterationOrder checks that the batched scheduler reports
// every iteration exactly once through OnIteration, with in-order
// delivery within each batch under Inner mode.
func TestBatchOnIterationOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 120, 500)
	cfg := DefaultConfig()
	cfg.Batch = 4
	cfg.Mode = Inner
	var seen []int
	cfg.OnIteration = func(i int, est float64, _ time.Duration) {
		seen = append(seen, i)
		if est == 0 {
			t.Errorf("iteration %d reported zero estimate", i)
		}
	}
	e, err := New(g, tmpl.Path(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(7); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 7 {
		t.Fatalf("OnIteration fired %d times, want 7", len(seen))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("Inner-mode batched OnIteration order %v, want 0..6", seen)
		}
	}
}

// TestBatchAutoResolve checks the automatic width selection: BatchAuto
// yields a width in [1, maxBatch], KeepTables forces unbatched execution
// (sampling reads per-iteration tables), and explicit widths are clamped
// to maxBatch.
func TestBatchAutoResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 200, 800)
	cfg := DefaultConfig()
	cfg.Batch = BatchAuto
	e, err := New(g, tmpl.Path(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b := e.Batch(); b < 1 || b > maxBatch {
		t.Fatalf("auto batch %d out of [1, %d]", b, maxBatch)
	}
	if b := e.Batch(); b < 2 {
		t.Fatalf("auto batch %d on a small graph, want >= 2 (budget is ample)", b)
	}

	cfg.KeepTables = true
	ek, err := New(g, tmpl.Path(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b := ek.Batch(); b != 1 {
		t.Fatalf("KeepTables batch = %d, want 1", b)
	}

	cfg.KeepTables = false
	cfg.Batch = 10 * maxBatch
	ec, err := New(g, tmpl.Path(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b := ec.Batch(); b != maxBatch {
		t.Fatalf("oversized batch resolved to %d, want clamp to %d", b, maxBatch)
	}
}

// TestHybridSplit pins the worker-budget split: the inner widths must sum
// to the full budget (the old floor-division split stranded workers on
// non-square budgets), no width may be zero, and the outer width never
// exceeds the schedulable slots.
func TestHybridSplit(t *testing.T) {
	cases := []struct {
		total, slots int
		wantOuter    int
		wantInner    []int
	}{
		{1, 8, 1, []int{1}},
		{2, 8, 2, []int{1, 1}},
		{3, 8, 2, []int{2, 1}},
		{4, 8, 2, []int{2, 2}},
		{6, 8, 3, []int{2, 2, 2}},
		{7, 8, 3, []int{3, 2, 2}}, // the old split used 3x2 = 6 of 7
		{9, 8, 3, []int{3, 3, 3}},
		{16, 2, 2, []int{8, 8}}, // capped by slots: widen inner
		{16, 8, 4, []int{4, 4, 4, 4}},
		{5, 1, 1, []int{5}},
	}
	for _, c := range cases {
		outer, inner := hybridSplit(c.total, c.slots)
		if outer != c.wantOuter {
			t.Errorf("hybridSplit(%d, %d) outer = %d, want %d", c.total, c.slots, outer, c.wantOuter)
		}
		if len(inner) != len(c.wantInner) {
			t.Fatalf("hybridSplit(%d, %d) inner = %v, want %v", c.total, c.slots, inner, c.wantInner)
		}
		for i := range inner {
			if inner[i] != c.wantInner[i] {
				t.Errorf("hybridSplit(%d, %d) inner = %v, want %v", c.total, c.slots, inner, c.wantInner)
				break
			}
		}
	}
	// Property sweep: for every budget 1..16 and slot count 1..16, the
	// widths sum to the whole budget whenever outer slots allow, and
	// every concurrent unit gets at least one worker.
	for total := 1; total <= 16; total++ {
		for slots := 1; slots <= 16; slots++ {
			outer, inner := hybridSplit(total, slots)
			if outer < 1 || outer > slots {
				t.Fatalf("hybridSplit(%d, %d): outer %d out of range", total, slots, outer)
			}
			sum := 0
			for _, w := range inner {
				if w < 1 {
					t.Fatalf("hybridSplit(%d, %d): zero inner width in %v", total, slots, inner)
				}
				sum += w
			}
			if sum != total {
				t.Fatalf("hybridSplit(%d, %d): inner %v sums to %d, want %d", total, slots, inner, sum, total)
			}
		}
	}
}

// TestBatchCancellation checks that a cancelled batched run returns a
// clean partial result: completed batches' lanes are kept in seed order
// and everything allocated is released.
func TestBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 400, 2000)
	cfg := DefaultConfig()
	cfg.Batch = 2
	cfg.Seed = 3
	e, err := New(g, tmpl.Path(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	cfg2 := cfg
	cfg2.OnIteration = func(i int, est float64, _ time.Duration) {
		calls++
		if calls == 2 { // cancel after the first full batch folds
			cancel()
		}
	}
	e2, err := New(g, tmpl.Path(6), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e2.RunContext(ctx, 50)
	if err == nil {
		t.Fatal("expected context error")
	}
	if !res.Stats.Cancelled {
		t.Fatal("Stats.Cancelled not set")
	}
	if len(res.PerIteration) == 0 || len(res.PerIteration) >= 50 {
		t.Fatalf("partial run kept %d iterations", len(res.PerIteration))
	}
	// Completed prefix must match an uncancelled run's estimates.
	ref, err := e.Run(len(res.PerIteration))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.PerIteration {
		if res.PerIteration[i] != ref.PerIteration[i] {
			t.Fatalf("partial iteration %d: %v != %v", i, res.PerIteration[i], ref.PerIteration[i])
		}
	}
	if res.Stats.RowsAllocated != res.Stats.RowsReleased {
		t.Fatalf("cancelled batched run leaked rows: %d allocated, %d released",
			res.Stats.RowsAllocated, res.Stats.RowsReleased)
	}
}

// mustLabeledGraph builds a labeled graph for the label-pruning tests.
func mustLabeledGraph(t *testing.T, n int, edges [][2]int32, labels []int32) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges, labels)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
