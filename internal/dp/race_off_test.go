//go:build !race

package dp

// raceEnabled is true when the race detector is on.
const raceEnabled = false
