package enumerate

import "bytes"

// fastCanon computes AHU canonical codes for small trees given as edge
// lists, allocation-free after warm-up. It produces byte-for-byte the
// same encoding as tmpl.(*Template).CanonicalFree for unlabeled trees
// (nested parentheses, minimum over centroid rootings), so codes index
// directly into the tmpl.AllTrees ordering. This is the hot path of the
// MODA-style enumerator: it runs once per enumerated subtree.
type fastCanon struct {
	k     int
	verts []int32 // distinct graph vertices of the current subtree
	adj   [][]int8
	size  []int8
	order []int8
	par   []int8
	vbuf  [][]byte // per-vertex encode buffers
	best  []byte
	cand  []byte
	kids  [][]byte
}

func newFastCanon(k int) *fastCanon {
	f := &fastCanon{
		k:     k,
		verts: make([]int32, 0, k),
		adj:   make([][]int8, k),
		size:  make([]int8, k),
		order: make([]int8, 0, k),
		par:   make([]int8, k),
		vbuf:  make([][]byte, k),
		best:  make([]byte, 0, 4*k),
		cand:  make([]byte, 0, 4*k),
		kids:  make([][]byte, 0, k),
	}
	for i := range f.adj {
		f.adj[i] = make([]int8, 0, k)
		f.vbuf[i] = make([]byte, 0, 4*k)
	}
	return f
}

// local maps a graph vertex to its dense local id, registering it on
// first sight. Linear scan beats a map for k <= 12.
func (f *fastCanon) local(v int32) int8 {
	for i, w := range f.verts {
		if w == v {
			return int8(i)
		}
	}
	f.verts = append(f.verts, v)
	return int8(len(f.verts) - 1)
}

// code returns the canonical free-tree code of the k-vertex subtree with
// the given k-1 edges. The returned slice is reused by the next call.
func (f *fastCanon) code(edges [][2]int32) []byte {
	f.verts = f.verts[:0]
	for i := range f.adj {
		f.adj[i] = f.adj[i][:0]
	}
	for _, e := range edges {
		a, b := f.local(e[0]), f.local(e[1])
		f.adj[a] = append(f.adj[a], b)
		f.adj[b] = append(f.adj[b], a)
	}
	k := int8(f.k)

	// Subtree sizes from an iterative DFS rooted at 0, then centroid(s)
	// by the max-component criterion (identical to tmpl.Centroids).
	f.order = f.order[:0]
	f.par[0] = -1
	f.order = append(f.order, 0)
	for i := 0; i < len(f.order); i++ {
		v := f.order[i]
		for _, u := range f.adj[v] {
			if u != f.par[v] {
				f.par[u] = v
				f.order = append(f.order, u)
			}
		}
	}
	best := int8(k)
	var c1, c2 int8 = -1, -1
	for i := len(f.order) - 1; i >= 0; i-- {
		v := f.order[i]
		f.size[v] = 1
		for _, u := range f.adj[v] {
			if u != f.par[v] {
				f.size[v] += f.size[u]
			}
		}
	}
	for v := int8(0); v < k; v++ {
		maxComp := k - f.size[v]
		for _, u := range f.adj[v] {
			if u != f.par[v] && f.size[u] > maxComp {
				maxComp = f.size[u]
			}
		}
		if maxComp < best {
			best, c1, c2 = maxComp, v, -1
		} else if maxComp == best {
			c2 = v
		}
	}

	f.best = f.encode(c1, -1, f.best[:0])
	if c2 >= 0 {
		f.cand = f.encode(c2, -1, f.cand[:0])
		if bytes.Compare(f.cand, f.best) < 0 {
			f.best, f.cand = f.cand, f.best
		}
	}
	return f.best
}

// encode writes the AHU code of the subtree rooted at v (entered from
// parent) into dst, matching tmpl's "(" + sorted child codes + ")".
func (f *fastCanon) encode(v, parent int8, dst []byte) []byte {
	nKids := 0
	for _, u := range f.adj[v] {
		if u != parent {
			f.vbuf[u] = f.encode(u, v, f.vbuf[u][:0])
			nKids++
		}
	}
	// Gather and insertion-sort the children's codes (at most k-1 of
	// them; sort.Slice's reflection overhead dominates at this size).
	kids := f.kids[:0]
	for _, u := range f.adj[v] {
		if u != parent {
			kids = append(kids, f.vbuf[u])
		}
	}
	for i := 1; i < len(kids); i++ {
		for j := i; j > 0 && bytes.Compare(kids[j], kids[j-1]) < 0; j-- {
			kids[j], kids[j-1] = kids[j-1], kids[j]
		}
	}
	dst = append(dst, '(')
	for _, kc := range kids {
		dst = append(dst, kc...)
	}
	return append(dst, ')')
}
