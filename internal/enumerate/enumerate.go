// Package enumerate implements a single-pass subtree enumerator used as
// the reproduction's MODA stand-in (the paper compares FASCIA against the
// MODA motif-discovery tool, a closed Windows binary): it enumerates every
// k-vertex subtree of the graph exactly once and classifies each by
// canonical form, producing counts for ALL tree templates of size k
// simultaneously. Like MODA, its advantage over the naïve baseline is that
// the enumeration work is shared across templates instead of repeated per
// template.
//
// The enumeration adapts Wernicke's ESU algorithm to edge space: elements
// are graph edges, two edges are adjacent when they share an endpoint,
// and a connected set of k-1 edges spanning k distinct vertices is
// exactly a k-vertex subtree. ESU's exclusive-neighborhood rule guarantees
// each edge set is produced exactly once.
package enumerate

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tmpl"
)

// Counts holds the result of a single-pass enumeration: Counts[i] is the
// number of non-induced occurrences of Trees[i] (the canonical ordering
// of tmpl.AllTrees(k)).
type Counts struct {
	K      int
	Trees  []*tmpl.Template
	Counts []int64
}

// Total returns the total number of k-vertex subtrees across all shapes.
func (c Counts) Total() int64 {
	var t int64
	for _, x := range c.Counts {
		t += x
	}
	return t
}

// CountAllTrees enumerates every k-vertex subtree of g once and returns
// per-shape occurrence counts for all free trees on k vertices.
func CountAllTrees(g *graph.Graph, k int) (Counts, error) {
	if k < 2 {
		return Counts{}, fmt.Errorf("enumerate: k must be >= 2, got %d", k)
	}
	trees := tmpl.AllTrees(k)
	index := make(map[string]int, len(trees))
	for i, t := range trees {
		index[t.CanonicalFree()] = i
	}
	out := Counts{K: k, Trees: trees, Counts: make([]int64, len(trees))}
	classify := newClassifier(k, index)
	err := Subtrees(g, k, func(edges [][2]int32) bool {
		out.Counts[classify.shape(edges)]++
		return true
	})
	return out, err
}

// Subtrees calls visit for every k-vertex subtree of g exactly once,
// passing its edge list (k-1 edges; the slice is reused across calls).
// visit returns false to stop early.
func Subtrees(g *graph.Graph, k int, visit func(edges [][2]int32) bool) error {
	if k < 2 {
		return fmt.Errorf("enumerate: k must be >= 2, got %d", k)
	}
	edges := g.Edges()
	m := len(edges)
	// Edge adjacency: edges sharing an endpoint. Built as per-vertex
	// incidence lists to avoid materializing the full line graph.
	incid := make([][]int32, g.N())
	for id, e := range edges {
		incid[e[0]] = append(incid[e[0]], int32(id))
		incid[e[1]] = append(incid[e[1]], int32(id))
	}

	target := k - 1
	sub := make([]int32, 0, target)
	subEdges := make([][2]int32, 0, target)
	inSub := make([]bool, m)
	// blocked marks edges in N(sub) ∪ sub (the exclusive-neighborhood
	// test); a counter-stamped array avoids clearing between calls.
	blockedStamp := make([]int32, m)
	var stamp int32

	// Distinct-vertex tracking: a stamp array over graph vertices plus a
	// counter of distinct vertices in the current edge set.
	vertCnt := make([]int16, g.N())
	distinct := 0

	addEdge := func(id int32) {
		e := edges[id]
		inSub[id] = true
		sub = append(sub, id)
		subEdges = append(subEdges, e)
		if vertCnt[e[0]]++; vertCnt[e[0]] == 1 {
			distinct++
		}
		if vertCnt[e[1]]++; vertCnt[e[1]] == 1 {
			distinct++
		}
	}
	removeEdge := func(id int32) {
		e := edges[id]
		if vertCnt[e[0]]--; vertCnt[e[0]] == 0 {
			distinct--
		}
		if vertCnt[e[1]]--; vertCnt[e[1]] == 0 {
			distinct--
		}
		subEdges = subEdges[:len(subEdges)-1]
		sub = sub[:len(sub)-1]
		inSub[id] = false
	}

	// Per-depth reusable buffers: each recursion level owns a grown and a
	// next buffer, reused across siblings (the recursive call below a
	// sibling completes before the next sibling starts).
	grownBufs := make([][]int32, target+1)
	nextBufs := make([][]int32, target+1)

	stopped := false
	var extend func(ext []int32, root int32, depth int)
	extend = func(ext []int32, root int32, depth int) {
		if stopped {
			return
		}
		if len(sub) == target {
			// A connected edge set of size k-1 spans k vertices iff it is
			// acyclic, i.e. a subtree.
			if distinct == k {
				if !visit(subEdges) {
					stopped = true
				}
			}
			return
		}
		// ESU: consume ext elements one at a time; each picked element w
		// extends with its exclusive neighbors beyond root.
		for i := 0; i < len(ext) && !stopped; i++ {
			w := ext[i]
			// Build w's exclusive neighborhood before adding it.
			grown := grownBufs[depth][:0]
			we := edges[w]
			for _, end := range we {
				for _, u := range incid[end] {
					if u > root && u != w && blockedStamp[u] != stamp && !inSub[u] {
						blockedStamp[u] = stamp
						grown = append(grown, u)
					}
				}
			}
			grownBufs[depth] = grown
			addEdge(w)

			next := append(nextBufs[depth][:0], ext[i+1:]...)
			next = append(next, grown...)
			nextBufs[depth] = next
			extend(next, root, depth+1)

			removeEdge(w)
			// grown edges stay stamped only while w is in sub: for the
			// NEXT sibling w' they must be reconsidered, so unstamp them.
			for _, u := range grownBufs[depth] {
				blockedStamp[u] = 0
			}
		}
	}

	rootExt := make([]int32, 0, 64)
	for rootID := int32(0); rootID < int32(m) && !stopped; rootID++ {
		stamp++
		// Stamp the root's neighborhood as blocked (it is N(sub)); ext
		// itself lives in the candidate list, and deeper exclusivity
		// tests must see N({root}) as non-exclusive.
		addEdge(rootID)
		e := edges[rootID]
		rootExt = rootExt[:0]
		for _, end := range e {
			for _, u := range incid[end] {
				if u > rootID && blockedStamp[u] != stamp {
					blockedStamp[u] = stamp
					rootExt = append(rootExt, u)
				}
			}
		}
		extend(rootExt, rootID, 0)
		removeEdge(rootID)
	}
	return nil
}

// classifier maps a subtree edge list to its free-tree index via the
// allocation-free canonical encoder; this is the enumerator's hot path.
type classifier struct {
	index map[string]int
	canon *fastCanon
}

func newClassifier(k int, index map[string]int) *classifier {
	return &classifier{index: index, canon: newFastCanon(k)}
}

// shape returns the free-tree index of the subtree given by edges.
func (c *classifier) shape(edges [][2]int32) int {
	code := c.canon.code(edges)
	idx, ok := c.index[string(code)] // no-alloc map lookup
	if !ok {
		panic("enumerate: subtree shape not among free trees")
	}
	return idx
}
