package enumerate

import (
	"math/rand"
	"testing"

	"repro/internal/tmpl"
)

// TestFastCanonMatchesTemplateCodes verifies the fast encoder produces
// byte-identical codes to tmpl.CanonicalFree on random trees of every
// supported size, under arbitrary vertex relabelings.
func TestFastCanonMatchesTemplateCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for k := 2; k <= 12; k++ {
		f := newFastCanon(k)
		for trial := 0; trial < 60; trial++ {
			edges := make([][2]int, 0, k-1)
			for v := 1; v < k; v++ {
				edges = append(edges, [2]int{rng.Intn(v), v})
			}
			tr := tmpl.MustTree("r", k, edges, nil)
			want := tr.CanonicalFree()
			// Scramble vertex ids into sparse graph-vertex space.
			offset := int32(rng.Intn(1000))
			ge := make([][2]int32, len(edges))
			perm := rng.Perm(k)
			for i, e := range edges {
				ge[i] = [2]int32{int32(perm[e[0]])*3 + offset, int32(perm[e[1]])*3 + offset}
			}
			if got := string(f.code(ge)); got != want {
				t.Fatalf("k=%d trial %d: fast %q, tmpl %q", k, trial, got, want)
			}
		}
	}
}

// TestFastCanonAllTreesDistinct checks the encoder distinguishes all
// non-isomorphic trees (codes are exactly the AllTrees codes).
func TestFastCanonAllTreesDistinct(t *testing.T) {
	for k := 2; k <= 10; k++ {
		f := newFastCanon(k)
		seen := map[string]bool{}
		for _, tr := range tmpl.AllTrees(k) {
			ge := make([][2]int32, 0, k-1)
			for _, e := range tr.Edges() {
				ge = append(ge, [2]int32{int32(e[0]), int32(e[1])})
			}
			code := string(f.code(ge))
			if code != tr.CanonicalFree() {
				t.Fatalf("k=%d %s: code mismatch", k, tr.Name())
			}
			if seen[code] {
				t.Fatalf("k=%d: duplicate code", k)
			}
			seen[code] = true
		}
	}
}

func BenchmarkFastCanon(b *testing.B) {
	f := newFastCanon(7)
	edges := [][2]int32{{0, 1}, {1, 2}, {1, 3}, {3, 4}, {4, 5}, {4, 6}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.code(edges)
	}
}
