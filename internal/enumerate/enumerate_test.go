package enumerate

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

func complete(n int) *graph.Graph {
	var edges [][2]int32
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func randomG(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func TestSubtreesCompleteGraphTotal(t *testing.T) {
	// The number of k-vertex subtrees of K_n is C(n,k) · k^(k-2)
	// (Cayley: labeled trees on k vertices).
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 2, 10},   // C(5,2)·1
		{5, 3, 30},   // C(5,3)·3
		{6, 4, 240},  // C(6,4)·16
		{7, 5, 2625}, // C(7,5)·125
	}
	for _, c := range cases {
		res, err := CountAllTrees(complete(c.n), c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Total(); got != c.want {
			t.Errorf("K_%d k=%d: total %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestCountAllTreesMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		g := randomG(rng, 12+trial*3, 30+trial*8)
		for _, k := range []int{3, 4, 5} {
			res, err := CountAllTrees(g, k)
			if err != nil {
				t.Fatal(err)
			}
			for i, tr := range res.Trees {
				want := exact.Count(g, tr)
				if res.Counts[i] != want {
					t.Fatalf("trial %d k=%d tree %s: enumerate %d, exact %d",
						trial, k, tr.Name(), res.Counts[i], want)
				}
			}
		}
	}
}

func TestCountAllTreesSize7(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomG(rng, 16, 24)
	res, err := CountAllTrees(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 11 || len(res.Counts) != 11 {
		t.Fatalf("expected 11 tree shapes at k=7, got %d", len(res.Trees))
	}
	// Cross-check two shapes against the oracle.
	for _, i := range []int{0, 10} {
		if want := exact.Count(g, res.Trees[i]); res.Counts[i] != want {
			t.Fatalf("tree %d: enumerate %d, exact %d", i, res.Counts[i], want)
		}
	}
}

func TestSubtreesNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomG(rng, 10, 22)
	seen := map[string]bool{}
	err := Subtrees(g, 4, func(edges [][2]int32) bool {
		key := ""
		ids := make([]int, 0, len(edges))
		for _, e := range edges {
			ids = append(ids, int(e[0])*1000+int(e[1]))
		}
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		for _, id := range ids {
			key += string(rune(id)) + ","
		}
		if seen[key] {
			t.Fatal("duplicate subtree emitted")
		}
		seen[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no subtrees found")
	}
}

func TestSubtreesEdgesFormTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomG(rng, 14, 30)
	err := Subtrees(g, 5, func(edges [][2]int32) bool {
		if len(edges) != 4 {
			t.Fatalf("subtree with %d edges", len(edges))
		}
		verts := map[int32]bool{}
		for _, e := range edges {
			if !g.HasEdge(e[0], e[1]) {
				t.Fatal("emitted edge not in graph")
			}
			verts[e[0]] = true
			verts[e[1]] = true
		}
		if len(verts) != 5 {
			t.Fatalf("subtree spans %d vertices, want 5", len(verts))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubtreesEarlyStop(t *testing.T) {
	g := complete(8)
	calls := 0
	if err := Subtrees(g, 3, func([][2]int32) bool {
		calls++
		return calls < 7
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Fatalf("early stop after %d calls", calls)
	}
}

func TestBadK(t *testing.T) {
	g := complete(4)
	if _, err := CountAllTrees(g, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if err := Subtrees(g, 0, func([][2]int32) bool { return true }); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestPathGraphSubtrees(t *testing.T) {
	// A path on n vertices has exactly n-k+1 subtrees of k vertices (all
	// paths).
	var edges [][2]int32
	for i := 0; i < 9; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	g := graph.MustFromEdges(10, edges, nil)
	res, err := CountAllTrees(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 7 {
		t.Fatalf("path subtrees = %d, want 7", res.Total())
	}
	// All of them are paths.
	for i, tr := range res.Trees {
		want := int64(0)
		if tmpl.IsIsomorphic(tr, tmpl.Path(4)) {
			want = 7
		}
		if res.Counts[i] != want {
			t.Fatalf("tree %s count %d, want %d", tr.Name(), res.Counts[i], want)
		}
	}
}
