package experiments

import (
	"fmt"

	"repro/internal/part"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// AblationPartition measures the §III-D trade-off: one-at-a-time versus
// balanced partitioning, with and without isomorphic-subtemplate sharing,
// on the U12-2 (or largest enabled) template.
func (p Params) AblationPartition() (Table, error) {
	g := p.network("enron")
	name := fmt.Sprintf("U%d-2", p.MaxK)
	tpl := tmpl.MustNamed(name)
	t := Table{
		Title:   fmt.Sprintf("Ablation: partitioning strategy and sharing, %s, enron-like", name),
		Columns: []string{"strategy", "share", "time_ms", "peak_mb", "estimate"},
	}
	for _, strat := range []part.Strategy{part.OneAtATime, part.Balanced} {
		for _, share := range []bool{false, true} {
			cfg := p.baseConfig()
			cfg.Strategy = strat
			cfg.Share = share
			d, res, err := singleIterationTime(g, tpl, cfg)
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				strat.String(), fmt.Sprint(share), ms(d), mb(res.PeakTableBytes), sci(res.Estimate),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: one-at-a-time is faster despite symmetry savings; sharing trades time for memory")
	return t, nil
}

// AblationTable measures the three table layouts' time/memory trade-off
// on a path template over the road-like network.
func (p Params) AblationTable() (Table, error) {
	g := p.network("paroad")
	tpl := tmpl.MustNamed(fmt.Sprintf("U%d-1", p.MaxK))
	t := Table{
		Title:   fmt.Sprintf("Ablation: table layout, %s, paroad-like", tpl.Name()),
		Columns: []string{"layout", "time_ms", "peak_mb"},
	}
	for _, kind := range []table.Kind{table.Naive, table.Lazy, table.Hash} {
		cfg := p.baseConfig()
		cfg.TableKind = kind
		d, res, err := singleIterationTime(g, tpl, cfg)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{kind.String(), ms(d), mb(res.PeakTableBytes)})
	}
	t.Notes = append(t.Notes, "hash trades lookup time for footprint on high-selectivity workloads")
	return t, nil
}

// AblationLeafSpecial measures the single-vertex-child specializations'
// effect (the (k-1)/k inner-loop reduction of §III-D).
func (p Params) AblationLeafSpecial() (Table, error) {
	g := p.network("enron")
	tpl := tmpl.MustNamed(fmt.Sprintf("U%d-1", p.MaxK))
	t := Table{
		Title:   fmt.Sprintf("Ablation: leaf specializations, %s, enron-like", tpl.Name()),
		Columns: []string{"leaf_special", "time_ms", "estimate"},
	}
	for _, disable := range []bool{false, true} {
		cfg := p.baseConfig()
		cfg.DisableLeafSpecial = disable
		d, res, err := singleIterationTime(g, tpl, cfg)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(!disable), ms(d), sci(res.Estimate)})
	}
	t.Notes = append(t.Notes, "estimates must be identical; only time may differ")
	return t, nil
}
