package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// AblationPartition measures the §III-D trade-off: one-at-a-time versus
// balanced partitioning, with and without isomorphic-subtemplate sharing,
// on the U12-2 (or largest enabled) template.
func (p Params) AblationPartition(ctx context.Context) (Table, error) {
	g := p.network("enron")
	name := fmt.Sprintf("U%d-2", p.MaxK)
	tpl := tmpl.MustNamed(name)
	t := Table{
		Title:   fmt.Sprintf("Ablation: partitioning strategy and sharing, %s, enron-like", name),
		Columns: []string{"strategy", "share", "time_ms", "peak_mb", "estimate"},
	}
	for _, strat := range []part.Strategy{part.OneAtATime, part.Balanced} {
		for _, share := range []bool{false, true} {
			cfg := p.baseConfig()
			cfg.Strategy = strat
			cfg.Share = share
			d, res, err := singleIterationTime(ctx, g, tpl, cfg)
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				strat.String(), fmt.Sprint(share), ms(d), mb(res.PeakTableBytes), sci(res.Estimate),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: one-at-a-time is faster despite symmetry savings; sharing trades time for memory")
	return t, nil
}

// AblationTable measures the three table layouts' time/memory trade-off
// on a path template over the road-like network.
func (p Params) AblationTable(ctx context.Context) (Table, error) {
	g := p.network("paroad")
	tpl := tmpl.MustNamed(fmt.Sprintf("U%d-1", p.MaxK))
	t := Table{
		Title:   fmt.Sprintf("Ablation: table layout, %s, paroad-like", tpl.Name()),
		Columns: []string{"layout", "time_ms", "peak_mb"},
	}
	for _, kind := range []table.Kind{table.Naive, table.Lazy, table.Hash} {
		cfg := p.baseConfig()
		cfg.TableKind = kind
		d, res, err := singleIterationTime(ctx, g, tpl, cfg)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{kind.String(), ms(d), mb(res.PeakTableBytes)})
	}
	t.Notes = append(t.Notes, "hash trades lookup time for footprint on high-selectivity workloads")
	return t, nil
}

// AblationKernel compares the direct per-neighbor split contraction, the
// SpMM-style neighbor-aggregation kernel, and the auto cost model on a
// degree-skewed network. Estimates must be identical across kernels; the
// vertex-pass split shows what the cost model chose.
func (p Params) AblationKernel(ctx context.Context) (Table, error) {
	g := p.network("enron")
	tpl := tmpl.MustNamed(fmt.Sprintf("U%d-1", p.MaxK))
	t := Table{
		Title:   fmt.Sprintf("Ablation: DP kernel, %s, enron-like", tpl.Name()),
		Columns: []string{"kernel", "time_ms", "direct_passes", "agg_passes", "estimate"},
	}
	var directTime time.Duration
	for _, mode := range []dp.KernelMode{dp.KernelDirect, dp.KernelAggregate, dp.KernelAuto} {
		cfg := p.baseConfig()
		cfg.Kernel = mode
		e, err := dp.New(g, tpl, cfg)
		if err != nil {
			return t, err
		}
		start := time.Now()
		res, err := e.RunContext(ctx, 1)
		if err != nil {
			return t, err
		}
		d := time.Since(start)
		if mode == dp.KernelDirect {
			directTime = d
		}
		nd, na := e.KernelStats()
		t.Rows = append(t.Rows, []string{
			mode.String(), ms(d), fmt.Sprint(nd), fmt.Sprint(na), sci(res.Estimate),
		})
	}
	t.Notes = append(t.Notes,
		"estimates must be bit-identical; aggregation wins on high-degree vertices",
		fmt.Sprintf("direct kernel baseline: %s ms", ms(directTime)))
	return t, nil
}

// AblationBatch sweeps the iteration-batch width B on an Erdős–Rényi and
// a Barabási–Albert graph: B colorings ("lanes") share one DP traversal
// per batch, so per-iteration time should fall with B until lane-widened
// rows outgrow cache, while peak table bytes grow ~B× one iteration.
// Lane seeds equal iteration seeds, so estimates must be bit-identical
// across every width — the sweep enforces that.
func (p Params) AblationBatch(ctx context.Context) (Table, error) {
	if len(p.Batches) == 0 {
		p.Batches = []int{1, 2, 4}
	}
	k := min(p.MaxK, 7)
	tpl := tmpl.MustNamed(fmt.Sprintf("U%d-1", k))
	n := max(int(60_000*p.Scale), 2_000)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er", gen.ErdosRenyiM(n, int64(4*n), p.Seed)},
		{"ba", gen.BarabasiAlbert(n, 4, p.Seed)},
	}
	const iters = 8
	t := Table{
		Title:   fmt.Sprintf("Ablation: iteration batch width, %s, ER/BA n=%d, %d iterations", tpl.Name(), n, iters),
		Columns: []string{"graph", "batch", "time_ms", "iter_ms", "peak_mb", "estimate"},
	}
	for _, gr := range graphs {
		var baseline float64
		for bi, b := range p.Batches {
			cfg := p.baseConfig()
			cfg.Batch = b
			e, err := dp.New(gr.g, tpl, cfg)
			if err != nil {
				return t, err
			}
			start := time.Now()
			res, err := e.RunContext(ctx, iters)
			if err != nil {
				return t, err
			}
			d := time.Since(start)
			if bi == 0 {
				baseline = res.Estimate
			} else if res.Estimate != baseline {
				return t, fmt.Errorf("ablation-batch: estimate drifted at B=%d on %s: got %v, want %v",
					b, gr.name, res.Estimate, baseline)
			}
			t.Rows = append(t.Rows, []string{
				gr.name, fmt.Sprint(e.Batch()), ms(d), ms(d / iters), mb(res.PeakTableBytes), sci(res.Estimate),
			})
		}
	}
	t.Notes = append(t.Notes,
		"estimates are bit-identical across widths (lane seeds equal iteration seeds)",
		"peak tables grow ~Bx one iteration; speedup saturates when lane rows exceed cache")
	return t, nil
}

// AblationLeafSpecial measures the single-vertex-child specializations'
// effect (the (k-1)/k inner-loop reduction of §III-D).
func (p Params) AblationLeafSpecial(ctx context.Context) (Table, error) {
	g := p.network("enron")
	tpl := tmpl.MustNamed(fmt.Sprintf("U%d-1", p.MaxK))
	t := Table{
		Title:   fmt.Sprintf("Ablation: leaf specializations, %s, enron-like", tpl.Name()),
		Columns: []string{"leaf_special", "time_ms", "estimate"},
	}
	for _, disable := range []bool{false, true} {
		cfg := p.baseConfig()
		cfg.DisableLeafSpecial = disable
		d, res, err := singleIterationTime(ctx, g, tpl, cfg)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(!disable), ms(d), sci(res.Estimate)})
	}
	t.Notes = append(t.Notes, "estimates must be identical; only time may differ")
	return t, nil
}
