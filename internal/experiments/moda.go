package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/enumerate"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/motif"
	"repro/internal/tmpl"
)

// Moda reproduces the §V-C comparison on the circuit network: total time
// to obtain counts for all 11 seven-vertex tree templates using (a) the
// naïve per-template exhaustive counter, (b) the MODA-style single-pass
// enumerator, and (c) FASCIA with enough iterations for ~1% error
// (1,000 in the paper). It also reports FASCIA's realized mean error.
func (p Params) Moda(ctx context.Context) (Table, error) {
	// The circuit is 252 vertices at paper scale; always use it as-is.
	pre, err := gen.ByName("circuit")
	if err != nil {
		return Table{}, err
	}
	g := pre.Build(1.0, p.Seed)
	t := Table{
		Title:   "Section V-C: naive vs MODA-style vs FASCIA, all k=7 trees, circuit-like",
		Columns: []string{"method", "time_ms", "mean_rel_error"},
	}
	trees := tmpl.AllTrees(7)

	start := time.Now()
	naive := make([]int64, len(trees))
	for i, tr := range trees {
		if err := ctx.Err(); err != nil {
			return t, err
		}
		naive[i] = exact.Count(g, tr)
	}
	naiveTime := time.Since(start)

	start = time.Now()
	enum, err := enumerate.CountAllTrees(g, 7)
	if err != nil {
		return t, err
	}
	modaTime := time.Since(start)

	iters := p.Iters
	cfg := p.baseConfig()
	cfg.Workers = 1 // the paper's comparison is single-threaded
	start = time.Now()
	prof, err := motif.FindContext(ctx, "circuit", g, 7, iters, cfg)
	if err != nil {
		return t, err
	}
	fasciaTime := time.Since(start)

	// Consistency between the two exact baselines is itself a check.
	for i := range naive {
		if naive[i] != enum.Counts[i] {
			return t, fmt.Errorf("moda: baseline disagreement on tree %d: %d vs %d", i, naive[i], enum.Counts[i])
		}
	}
	merr, err := motif.MeanRelativeError(prof, naive)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"naive-exact", ms(naiveTime), "0"})
	t.Rows = append(t.Rows, []string{"moda-style", ms(modaTime), "0"})
	t.Rows = append(t.Rows, []string{fmt.Sprintf("fascia-%diter", iters), ms(fasciaTime), f4(merr)})
	t.Notes = append(t.Notes,
		"paper: naive 147s, MODA 32s, FASCIA 22s (~1% error) on s420; shape to check: both beat naive, FASCIA fastest",
		"on a graph this small an efficient tree-specific backtracking baseline is very fast; the crossover",
		"appears on denser graphs, measured below with a time budget (the paper: 'MODA is unable to scale')")

	// Scaling part: on a denser PPI-sized network exhaustive enumeration
	// explodes combinatorially while color coding's per-iteration cost
	// stays linear in m. Exhaustive methods run under a time budget and
	// report a lower bound when cut off.
	budget := 3 * time.Second
	if p.MaxK >= 12 { // full mode
		budget = 60 * time.Second
	}
	big := p.network("ecoli")
	bigStats := big.ComputeStats()

	start = time.Now()
	var enumerated int64
	complete := true
	err = enumerate.Subtrees(big, 7, func([][2]int32) bool {
		enumerated++
		if enumerated%(1<<20) == 0 && (time.Since(start) > budget || ctx.Err() != nil) {
			complete = false
			return false
		}
		return true
	})
	if err != nil {
		return t, err
	}
	enumTime := time.Since(start)

	start = time.Now()
	cfgBig := p.baseConfig()
	cfgBig.Workers = 1
	if _, err := motif.FindContext(ctx, "ecoli", big, 7, iters, cfgBig); err != nil {
		return t, err
	}
	fasciaBig := time.Since(start)

	suffix := ""
	if !complete {
		suffix = "+ (budget hit)"
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("enumeration(ecoli n=%d m=%d)", bigStats.N, bigStats.M),
		ms(enumTime) + suffix,
		fmt.Sprintf("subtrees>=%d", enumerated),
	})
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("fascia-%diter(ecoli)", iters), ms(fasciaBig), "approx",
	})
	return t, nil
}
