package experiments

import (
	"context"

	"repro/internal/dp"
)

// Profile reproduces the paper's §V-A instrumentation claim: "more than
// 90% of time is spent in step 12 of Algorithm 2" (the DP table
// combination step). One iteration per template is phase-profiled on the
// Portland-like network.
func (p Params) Profile(ctx context.Context) (Table, error) {
	g := p.network("portland")
	t := Table{
		Title:   "Section V-A: time breakdown per iteration, portland-like",
		Columns: []string{"template", "coloring_ms", "leaf_init_ms", "compute_ms", "compute_share"},
	}
	for _, tpl := range p.templates() {
		if err := ctx.Err(); err != nil {
			return t, err
		}
		cfg := p.baseConfig()
		cfg.Workers = 1
		e, err := dp.New(g, tpl, cfg)
		if err != nil {
			return t, err
		}
		prof, _ := e.ProfileIteration(p.Seed)
		t.Rows = append(t.Rows, []string{
			tpl.Name(), ms(prof.Coloring), ms(prof.LeafInit), ms(prof.Compute), f4(prof.ComputeShare()),
		})
	}
	t.Notes = append(t.Notes,
		"paper: >90% of time in the DP combination step for large templates; share grows with k")
	return t, nil
}
