package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/motif"
)

// Table1 reproduces Table I: sizes and degree statistics of all ten
// networks (our synthetic stand-ins next to the paper's originals).
func (p Params) Table1() Table {
	t := Table{
		Title:   "Table I: network sizes and degrees (generated stand-ins vs paper)",
		Columns: []string{"network", "model", "n", "m", "davg", "dmax", "clustering", "paper_n", "paper_m", "paper_davg", "paper_dmax"},
	}
	for _, pre := range gen.Presets {
		g := p.network(pre.Name)
		s := g.ComputeStats()
		t.Rows = append(t.Rows, []string{
			pre.Name, pre.Model,
			fmt.Sprint(s.N), fmt.Sprint(s.M), f2(s.AvgDegree), fmt.Sprint(s.MaxDegree), f4(g.GlobalClustering()),
			fmt.Sprint(pre.Paper.N), fmt.Sprint(pre.Paper.M), f2(pre.Paper.DAvg), fmt.Sprint(pre.Paper.DMax),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("scale=%.3g (small nets), %.3g (million-vertex nets); largest connected component only", p.Scale, p.SmallScale))
	return t
}

// Fig3 reproduces Figure 3: single-iteration execution time for the ten
// unlabeled benchmark templates on the Portland-like network.
func (p Params) Fig3(ctx context.Context) (Table, error) {
	g := p.network("portland")
	t := Table{
		Title:   "Figure 3: single-iteration time, unlabeled templates, portland-like",
		Columns: []string{"template", "k", "time_ms", "estimate"},
	}
	for _, tpl := range p.templates() {
		d, res, err := singleIterationTime(ctx, g, tpl, p.baseConfig())
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{tpl.Name(), fmt.Sprint(tpl.K()), ms(d), sci(res.Estimate)})
	}
	s := g.ComputeStats()
	t.Notes = append(t.Notes, fmt.Sprintf("network n=%d m=%d; paper shape: time grows ~2^k, ~2x spread within a size class", s.N, s.M))
	return t, nil
}

// Fig4 reproduces Figure 4: single-iteration time for the same templates
// with vertex labels (8 labels, randomly assigned), which prunes the
// search space dramatically.
func (p Params) Fig4(ctx context.Context) (Table, error) {
	g := p.network("portland")
	gen.AssignLabels(g, 8, p.Seed+7)
	t := Table{
		Title:   "Figure 4: single-iteration time, labeled templates (8 labels), portland-like",
		Columns: []string{"template", "k", "time_ms", "estimate"},
	}
	for _, base := range p.templates() {
		labels := make([]int32, base.K())
		for i := range labels {
			// Deterministic template labeling mirroring the paper's
			// random assignment.
			labels[i] = int32((i*5 + 3) % 8)
		}
		tpl, err := base.WithLabels(base.Name()+"-lab", labels)
		if err != nil {
			return t, err
		}
		d, res, err := singleIterationTime(ctx, g, tpl, p.baseConfig())
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{tpl.Name(), fmt.Sprint(tpl.K()), ms(d), sci(res.Estimate)})
	}
	t.Notes = append(t.Notes, "paper shape: labeled counting is orders of magnitude faster than Figure 3 at equal k")
	return t, nil
}

// Fig5 reproduces Figure 5: per-iteration motif-finding time (all tree
// templates of size k) on the four PPI networks.
func (p Params) Fig5(ctx context.Context) (Table, error) {
	t := Table{
		Title:   "Figure 5: per-iteration motif-finding time over all k-vertex trees, PPI networks",
		Columns: []string{"network", "k", "templates", "total_time_ms"},
	}
	sizes := []int{}
	for _, k := range []int{7, 10, 12} {
		if k <= p.MaxK {
			sizes = append(sizes, k)
		}
	}
	if len(sizes) == 0 {
		sizes = []int{p.MaxK}
	}
	for _, pre := range gen.PPIPresets() {
		g := p.network(pre.Name)
		for _, k := range sizes {
			start := time.Now()
			prof, err := motif.FindContext(ctx, pre.Name, g, k, 1, p.baseConfig())
			if err != nil {
				return t, err
			}
			totalMS := float64(time.Since(start).Microseconds()) / 1000
			t.Rows = append(t.Rows, []string{pre.Name, fmt.Sprint(k), fmt.Sprint(len(prof.Trees)), f2(totalMS)})
		}
	}
	t.Notes = append(t.Notes, "paper shape: k=7 well under a second, k=10 seconds, k=12 minutes at full scale")
	return t, nil
}
