package experiments

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
)

// tiny returns parameters small enough that every experiment runs in
// well under a second.
func tiny() Params {
	return Params{
		Scale:      0.1,
		SmallScale: 0.0008,
		ExactScale: 0.04,
		Seed:       3,
		Iters:      5,
		MaxK:       5,
		Threads:    []int{1, 2},
	}
}

func TestTable1(t *testing.T) {
	tab := tiny().Table1()
	if len(tab.Rows) != 10 {
		t.Fatalf("Table I has %d rows, want 10", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	if !strings.Contains(buf.String(), "portland") {
		t.Fatal("render missing networks")
	}
}

// TestAllExperimentsRun exercises every registered experiment end to end
// at tiny scale and sanity-checks the emitted tables.
func TestAllExperimentsRun(t *testing.T) {
	p := tiny()
	for _, name := range Order {
		name := name
		t.Run(name, func(t *testing.T) {
			tab, err := Run(name, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", name)
			}
			if len(tab.Columns) == 0 || tab.Title == "" {
				t.Fatalf("%s: malformed table", name)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: row width %d != %d columns", name, len(row), len(tab.Columns))
				}
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", tiny()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestRunContextCancelled checks that a pre-cancelled context aborts an
// experiment and surfaces the context error.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, "fig3", tiny()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fig3 returned %v, want context.Canceled", err)
	}
	if _, err := RunContext(ctx, "profile", tiny()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled profile returned %v, want context.Canceled", err)
	}
}

func TestRegistryAndOrderAgree(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order has %d entries, Registry %d", len(Order), len(Registry))
	}
	for _, name := range Order {
		if _, ok := Registry[name]; !ok {
			t.Fatalf("ordered experiment %q missing from registry", name)
		}
	}
}

func TestFig10ErrorDecreases(t *testing.T) {
	p := tiny()
	p.Iters = 10
	tab, err := p.Fig10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Final averaged error should not exceed the first iteration's by
	// much; typically it shrinks substantially.
	first, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][1], 64)
	if last > first*1.5+0.02 {
		t.Fatalf("U3-1 error grew from %.4f to %.4f", first, last)
	}
}

func TestFig16AgreementImproves(t *testing.T) {
	p := tiny()
	p.Iters = 100
	tab, err := p.Fig16(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Agreement is noisy on tiny inputs (rounding fractional estimates
	// into integer bins); require that it stays in range and does not
	// collapse as iterations grow.
	byNet := map[string][]float64{}
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		byNet[row[0]] = append(byNet[row[0]], v)
	}
	for net, vals := range byNet {
		for _, v := range vals {
			if v < 0 || v > 1.000001 {
				t.Fatalf("%s: agreement %v outside [0,1]", net, v)
			}
		}
		if len(vals) >= 2 && vals[len(vals)-1] < vals[0]-0.2 {
			t.Fatalf("%s: agreement collapsed from %.4f to %.4f", net, vals[0], vals[len(vals)-1])
		}
	}
}

func TestModaBaselinesAgree(t *testing.T) {
	p := tiny()
	p.Iters = 50
	tab, err := p.Moda(context.Background())
	if err != nil {
		t.Fatal(err) // includes the internal naive-vs-enumerator check
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("moda rows = %d, want 3 circuit rows + 2 scaling rows", len(tab.Rows))
	}
}

func TestAblationLeafSpecialSameEstimates(t *testing.T) {
	p := tiny()
	tab, err := p.AblationLeafSpecial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][2] != tab.Rows[1][2] {
		t.Fatalf("leaf specialization changed the estimate: %s vs %s", tab.Rows[0][2], tab.Rows[1][2])
	}
}

func TestQuickAndFullParams(t *testing.T) {
	q, f := Quick(), Full()
	if q.MaxK >= f.MaxK || q.Iters >= f.Iters {
		t.Fatal("quick params should be smaller than full")
	}
	if q.SmallScale >= f.SmallScale || q.ExactScale >= f.ExactScale {
		t.Fatal("quick scales should shrink networks")
	}
}
