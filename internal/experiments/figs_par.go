package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dp"
	"repro/internal/tmpl"
)

// Fig8 reproduces Figure 8: inner-loop strong scaling of the U12-2
// template (or the largest enabled template) on the Portland-like
// network across worker counts.
func (p Params) Fig8(ctx context.Context) (Table, error) {
	g := p.network("portland")
	name := "U12-2"
	if p.MaxK < 12 {
		name = fmt.Sprintf("U%d-2", p.MaxK)
	}
	tpl := tmpl.MustNamed(name)
	t := Table{
		Title:   fmt.Sprintf("Figure 8: inner-loop scaling, %s, portland-like", name),
		Columns: []string{"workers", "time_ms", "speedup"},
	}
	var base time.Duration
	for _, w := range p.Threads {
		cfg := p.baseConfig()
		cfg.Mode = dp.Inner
		cfg.Workers = w
		d, _, err := singleIterationTime(ctx, g, tpl, cfg)
		if err != nil {
			return t, err
		}
		if base == 0 {
			base = d
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(w), ms(d), f2(float64(base) / float64(d))})
	}
	t.Notes = append(t.Notes,
		"paper shape: ~12x speedup at 16 cores; on a single-core host the sweep measures goroutine overhead only")
	return t, nil
}

// Fig9 reproduces Figure 9: inner-loop vs outer-loop parallelization for
// U7-2 on the Enron-like network. The outer-loop row reports both the
// per-iteration average and the total for running `workers` concurrent
// iterations, as the paper plots.
func (p Params) Fig9(ctx context.Context) (Table, error) {
	g := p.network("enron")
	tpl := tmpl.MustNamed("U7-2")
	t := Table{
		Title:   "Figure 9: inner vs outer parallelization, U7-2, enron-like",
		Columns: []string{"workers", "inner_ms", "outer_per_iter_ms", "outer_total_ms"},
	}
	for _, w := range p.Threads {
		cfg := p.baseConfig()
		cfg.Mode = dp.Inner
		cfg.Workers = w
		dInner, _, err := singleIterationTime(ctx, g, tpl, cfg)
		if err != nil {
			return t, err
		}
		cfg = p.baseConfig()
		cfg.Mode = dp.Outer
		cfg.Workers = w
		e, err := dp.New(g, tpl, cfg)
		if err != nil {
			return t, err
		}
		start := time.Now()
		if _, err := e.RunContext(ctx, w); err != nil { // w iterations across w workers
			return t, err
		}
		total := time.Since(start)
		perIter := total / time.Duration(w)
		t.Rows = append(t.Rows, []string{fmt.Sprint(w), ms(dInner), ms(perIter), ms(total)})
	}
	t.Notes = append(t.Notes,
		"paper shape: outer-loop wins on small graphs (~6x at 16 cores vs ~2.5x inner)")
	return t, nil
}
