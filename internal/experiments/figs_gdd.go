package experiments

import (
	"context"
	"fmt"

	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/gdd"
	"repro/internal/tmpl"
)

// u52CenterOrbit returns the degree-3 central vertex of U5-2, the orbit
// the paper uses for its graphlet-degree experiments.
func u52CenterOrbit() (*tmpl.Template, int) {
	tpl := tmpl.MustNamed("U5-2")
	for v := 0; v < tpl.K(); v++ {
		if tpl.Degree(v) == 3 {
			return tpl, v
		}
	}
	panic("U5-2 lost its center")
}

// gddFor estimates the graphlet degree distribution of the U5-2 central
// orbit on a network.
func (p Params) gddFor(ctx context.Context, network string, iters int) (gdd.Distribution, error) {
	g := p.network(network)
	tpl, orbit := u52CenterOrbit()
	cfg := p.baseConfig()
	cfg.RootVertex = orbit
	e, err := dp.New(g, tpl, cfg)
	if err != nil {
		return nil, err
	}
	counts, err := e.VertexCountsContext(ctx, iters)
	if err != nil {
		return nil, err
	}
	return gdd.FromVertexCounts(counts), nil
}

// Fig15 reproduces Figure 15: the graphlet degree distribution of the
// U5-2 central orbit on the Enron, G(n,p), Portland, and Slashdot
// networks. Distributions are summarized as (support size, max degree,
// vertices at degree >= 1) plus the first decades of the histogram.
func (p Params) Fig15(ctx context.Context) (Table, error) {
	t := Table{
		Title:   "Figure 15: graphlet degree distribution (U5-2 center orbit)",
		Columns: []string{"network", "degree_bucket", "vertices"},
	}
	for _, name := range []string{"enron", "gnp", "portland", "slashdot"} {
		dist, err := p.gddFor(ctx, name, p.Iters/10+1)
		if err != nil {
			return t, err
		}
		// Log-scale buckets, as the figure's axes are log-log.
		buckets := map[int]int64{}
		for deg, cnt := range dist {
			if deg < 1 {
				continue
			}
			b := 0
			for d := deg; d >= 10; d /= 10 {
				b++
			}
			buckets[b] += cnt
		}
		for b := 0; b < 12; b++ {
			if cnt, ok := buckets[b]; ok {
				lo := int64(1)
				for i := 0; i < b; i++ {
					lo *= 10
				}
				t.Rows = append(t.Rows, []string{name, fmt.Sprintf("[%d,%d)", lo, lo*10), fmt.Sprint(cnt)})
			}
		}
	}
	t.Notes = append(t.Notes, "paper shape: heavy-tailed distributions for the social networks, concentrated for G(n,p)")
	return t, nil
}

// Fig16 reproduces Figure 16: Pržulj GDD agreement between the exact
// graphlet degree distribution and the color-coding estimate as
// iterations grow, on the E. coli-like and Enron-like networks.
func (p Params) Fig16(ctx context.Context) (Table, error) {
	t := Table{
		Title:   "Figure 16: GDD agreement vs iterations (U5-2 center orbit)",
		Columns: []string{"network", "iterations", "agreement"},
	}
	tpl, orbit := u52CenterOrbit()
	rAut := tpl.RootedAutomorphisms(orbit)
	for _, name := range []string{"ecoli", "enron"} {
		g := p.exactNetwork(name)
		rooted := exact.CountRootedMappings(g, tpl, orbit)
		exactCounts := make([]int64, len(rooted))
		for v, m := range rooted {
			exactCounts[v] = m / rAut
		}
		exactDist := gdd.FromExactCounts(exactCounts)

		cfg := p.baseConfig()
		cfg.RootVertex = orbit
		e, err := dp.New(g, tpl, cfg)
		if err != nil {
			return t, err
		}
		for _, iters := range []int{1, 10, 100, 1000} {
			if iters > p.Iters {
				break
			}
			counts, err := e.VertexCountsContext(ctx, iters)
			if err != nil {
				return t, err
			}
			est := gdd.FromVertexCounts(counts)
			t.Rows = append(t.Rows, []string{name, fmt.Sprint(iters), f4(gdd.Agreement(est, exactDist))})
		}
	}
	t.Notes = append(t.Notes, "paper shape: agreement approaches ~1 by 1000 iterations on both networks")
	return t, nil
}
