package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/enumerate"
	"repro/internal/exact"
	"repro/internal/motif"
	"repro/internal/tmpl"
)

// Fig10 reproduces Figure 10: approximation error versus iteration count
// for the U3-1 and U5-1 templates on the Enron-like network. The error at
// i iterations is |mean(first i estimates) - exact| / exact.
func (p Params) Fig10(ctx context.Context) (Table, error) {
	g := p.exactNetwork("enron")
	t := Table{
		Title:   "Figure 10: approximation error vs iterations, enron-like",
		Columns: []string{"iterations", "err_U3-1", "err_U5-1"},
	}
	maxIters := 10
	errCurves := make([][]float64, 2)
	for ti, name := range []string{"U3-1", "U5-1"} {
		tpl := tmpl.MustNamed(name)
		want := float64(exact.Count(g, tpl))
		if want == 0 {
			return t, fmt.Errorf("fig10: zero exact count for %s", name)
		}
		e, err := dp.New(g, tpl, p.baseConfig())
		if err != nil {
			return t, err
		}
		res, err := e.RunContext(ctx, maxIters)
		if err != nil {
			return t, err
		}
		curve := make([]float64, maxIters)
		sum := 0.0
		for i, est := range res.PerIteration {
			sum += est
			curve[i] = math.Abs(sum/float64(i+1)-want) / want
		}
		errCurves[ti] = curve
	}
	for i := 0; i < maxIters; i++ {
		t.Rows = append(t.Rows, []string{fmt.Sprint(i + 1), f4(errCurves[0][i]), f4(errCurves[1][i])})
	}
	t.Notes = append(t.Notes, "paper shape: error falls below 1% within ~3 iterations")
	return t, nil
}

// Fig11 reproduces Figure 11: mean relative error of motif counts (all
// 11 seven-vertex trees) on the H. pylori-like network as iterations grow
// from 1 to Iters (paper: 1 to 10,000).
func (p Params) Fig11(ctx context.Context) (Table, error) {
	g := p.network("hpylori")
	t := Table{
		Title:   "Figure 11: mean motif error vs iterations, hpylori-like, k=7",
		Columns: []string{"iterations", "mean_rel_error"},
	}
	enum, err := enumerate.CountAllTrees(g, 7)
	if err != nil {
		return t, err
	}
	checkpoints := []int{1, 10, 100, 1000, 10000}
	for _, it := range checkpoints {
		if it > p.Iters {
			break
		}
		prof, err := motif.FindContext(ctx, "hpylori", g, 7, it, p.baseConfig())
		if err != nil {
			return t, err
		}
		merr, err := motif.MeanRelativeError(prof, enum.Counts)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(it), f4(merr)})
	}
	t.Notes = append(t.Notes, "paper shape: error larger than on Enron (smaller graph), well below 1% by 1000 iterations")
	return t, nil
}

// Fig12 reproduces Figure 12: exact motif counts versus estimates after 1
// iteration and after many iterations on the H. pylori-like network.
func (p Params) Fig12(ctx context.Context) (Table, error) {
	g := p.network("hpylori")
	t := Table{
		Title:   "Figure 12: motif counts, exact vs 1 iteration vs many, hpylori-like, k=7",
		Columns: []string{"subgraph", "exact", "est_1iter", fmt.Sprintf("est_%diter", p.Iters)},
	}
	enum, err := enumerate.CountAllTrees(g, 7)
	if err != nil {
		return t, err
	}
	one, err := motif.FindContext(ctx, "hpylori", g, 7, 1, p.baseConfig())
	if err != nil {
		return t, err
	}
	many, err := motif.FindContext(ctx, "hpylori", g, 7, p.Iters, p.baseConfig())
	if err != nil {
		return t, err
	}
	for i := range enum.Trees {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i + 1), fmt.Sprint(enum.Counts[i]), sci(one.Counts[i]), sci(many.Counts[i]),
		})
	}
	t.Notes = append(t.Notes, "paper shape: even 1 iteration preserves relative magnitudes; many iterations converge to exact")
	return t, nil
}
