// Package experiments implements the reproduction harness for every table
// and figure in the FASCIA paper's evaluation (§IV-V). Each experiment is
// a function that generates its workload from the network presets,
// executes the measurement, and returns printable rows; cmd/fasciabench
// and the root-package benchmarks are thin wrappers around these
// functions. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for measured-vs-paper discussion.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/dp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// Params controls workload sizes. Quick() keeps every experiment to
// seconds on a laptop core; Full() approaches the paper's scales (hours
// of compute and tens of GB for the k=12 Portland runs — use only on a
// large machine).
type Params struct {
	// Scale multiplies every network's vertex count relative to Table I.
	Scale float64
	// SmallScale is used for the million-vertex networks (Portland, PA
	// road) which need a harsher reduction in quick mode.
	SmallScale float64
	// ExactScale is used for experiments that need an exhaustive exact
	// baseline on the social/PPI networks (Figures 10 and 16): brute
	// force is exponential, so quick mode shrinks those inputs further.
	ExactScale float64
	// Seed drives all generators and colorings.
	Seed int64
	// Iters is the default iteration count for error/profile experiments.
	Iters int
	// MaxK caps template sizes (quick mode skips k = 10, 12 sweeps).
	MaxK int
	// Threads lists the worker counts swept in the scaling experiments.
	Threads []int
	// Batches lists the iteration-batch widths swept by ablation-batch.
	Batches []int
}

// Quick returns parameters sized for CI: every experiment finishes in
// seconds while preserving each figure's qualitative shape.
func Quick() Params {
	return Params{
		Scale:      0.3,
		SmallScale: 0.004,
		ExactScale: 0.05,
		Seed:       1,
		Iters:      30,
		MaxK:       7,
		Threads:    []int{1, 2, 4, 8, 16},
		Batches:    []int{1, 2, 4, 8, 16},
	}
}

// Full returns parameters at the paper's scales. The largest runs need a
// multicore machine with tens of GB of memory.
func Full() Params {
	return Params{
		Scale:      1.0,
		SmallScale: 1.0,
		ExactScale: 1.0,
		Seed:       1,
		Iters:      1000,
		MaxK:       12,
		Threads:    []int{1, 2, 4, 8, 12, 16},
		Batches:    []int{1, 2, 4, 8, 16, 32},
	}
}

// network builds a preset's graph at the parameter scale.
func (p Params) network(name string) *graph.Graph {
	pre, err := gen.ByName(name)
	if err != nil {
		panic(err)
	}
	scale := p.Scale
	if pre.Paper.N > 500_000 {
		scale = p.SmallScale
	}
	return pre.Build(scale, p.Seed)
}

// exactNetwork builds a preset at ExactScale, for experiments that must
// also run an exhaustive exact baseline on it.
func (p Params) exactNetwork(name string) *graph.Graph {
	pre, err := gen.ByName(name)
	if err != nil {
		panic(err)
	}
	return pre.Build(p.ExactScale, p.Seed)
}

// templates returns the paper's benchmark templates with size <= MaxK.
func (p Params) templates() []*tmpl.Template {
	var out []*tmpl.Template
	for _, t := range tmpl.NamedTemplates() {
		if t.K() <= p.MaxK {
			out = append(out, t)
		}
	}
	return out
}

// singleIterationTime runs one counting iteration under ctx and reports
// its wall time along with the run result.
func singleIterationTime(ctx context.Context, g *graph.Graph, t *tmpl.Template, cfg dp.Config) (time.Duration, dp.Result, error) {
	e, err := dp.New(g, t, cfg)
	if err != nil {
		return 0, dp.Result{}, err
	}
	start := time.Now()
	res, err := e.RunContext(ctx, 1)
	if err != nil {
		return 0, dp.Result{}, err
	}
	return time.Since(start), res, nil
}

// baseConfig returns the engine defaults used across experiments.
func (p Params) baseConfig() dp.Config {
	cfg := dp.DefaultConfig()
	cfg.Seed = p.Seed
	return cfg
}

// Table is a generic printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table as aligned plain text.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, cell)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f4(x float64) string  { return fmt.Sprintf("%.4f", x) }
func sci(x float64) string { return fmt.Sprintf("%.3e", x) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}
func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
