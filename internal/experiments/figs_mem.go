package experiments

import (
	"context"
	"fmt"

	"repro/internal/gen"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// Fig6 reproduces Figure 6: peak dynamic-table memory on the
// Portland-like network for the complex templates (U3-2 ... U12-2),
// comparing the naive layout, the improved (lazy) layout, and the
// improved layout with a labeled template and graph.
func (p Params) Fig6(ctx context.Context) (Table, error) {
	g := p.network("portland")
	t := Table{
		Title:   "Figure 6: peak table memory (MB), portland-like, U*-2 templates",
		Columns: []string{"template", "k", "naive_mb", "improved_mb", "labeled_mb"},
	}
	labeledG := p.network("portland")
	gen.AssignLabels(labeledG, 8, p.Seed+7)
	for _, name := range []string{"U3-2", "U5-2", "U7-2", "U10-2", "U12-2"} {
		tpl := tmpl.MustNamed(name)
		if tpl.K() > p.MaxK {
			continue
		}
		row := []string{name, fmt.Sprint(tpl.K())}
		for _, kind := range []table.Kind{table.Naive, table.Lazy} {
			cfg := p.baseConfig()
			cfg.TableKind = kind
			_, res, err := singleIterationTime(ctx, g, tpl, cfg)
			if err != nil {
				return t, err
			}
			row = append(row, mb(res.PeakTableBytes))
		}
		labels := make([]int32, tpl.K())
		for i := range labels {
			labels[i] = int32((i*5 + 3) % 8)
		}
		ltpl, err := tpl.WithLabels(name+"-lab", labels)
		if err != nil {
			return t, err
		}
		cfg := p.baseConfig()
		cfg.TableKind = table.Lazy
		_, res, err := singleIterationTime(ctx, labeledG, ltpl, cfg)
		if err != nil {
			return t, err
		}
		row = append(row, mb(res.PeakTableBytes))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: improved ~20% below naive for unlabeled, >90% below for labeled templates")
	return t, nil
}

// Fig7 reproduces Figure 7: peak dynamic-table memory on the PA-road-like
// network for the path templates (U3-1 ... U12-1) across the hash, naive,
// and improved layouts.
func (p Params) Fig7(ctx context.Context) (Table, error) {
	g := p.network("paroad")
	t := Table{
		Title:   "Figure 7: peak table memory (MB), paroad-like, U*-1 templates",
		Columns: []string{"template", "k", "hash_mb", "naive_mb", "improved_mb"},
	}
	for _, name := range []string{"U3-1", "U5-1", "U7-1", "U10-1", "U12-1"} {
		tpl := tmpl.MustNamed(name)
		if tpl.K() > p.MaxK {
			continue
		}
		row := []string{name, fmt.Sprint(tpl.K())}
		for _, kind := range []table.Kind{table.Hash, table.Naive, table.Lazy} {
			cfg := p.baseConfig()
			cfg.TableKind = kind
			_, res, err := singleIterationTime(ctx, g, tpl, cfg)
			if err != nil {
				return t, err
			}
			row = append(row, mb(res.PeakTableBytes))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: improved 2-7% below naive; hash up to 90% below on the largest template")
	return t, nil
}
