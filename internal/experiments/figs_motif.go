package experiments

import (
	"context"
	"fmt"

	"repro/internal/gen"
	"repro/internal/motif"
)

// profileTable renders per-network relative motif frequencies for all
// 7-vertex trees (one column per network), the format of Figures 13/14.
func (p Params) profileTable(ctx context.Context, title string, networks []string) (Table, error) {
	t := Table{Title: title}
	t.Columns = append([]string{"subgraph"}, networks...)
	var profiles []motif.Profile
	for _, name := range networks {
		g := p.network(name)
		prof, err := motif.FindContext(ctx, name, g, 7, p.Iters, p.baseConfig())
		if err != nil {
			return t, err
		}
		profiles = append(profiles, prof)
	}
	nTrees := len(profiles[0].Trees)
	rel := make([][]float64, len(profiles))
	for i, prof := range profiles {
		rel[i] = prof.RelativeFrequencies()
	}
	for s := 0; s < nTrees; s++ {
		row := []string{fmt.Sprint(s + 1)}
		for i := range profiles {
			row = append(row, f4(rel[i][s]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13 reproduces Figure 13: relative frequencies of all 7-vertex tree
// motifs across the four PPI networks (counts scaled by each network's
// mean).
func (p Params) Fig13(ctx context.Context) (Table, error) {
	names := make([]string, 0, 4)
	for _, pre := range gen.PPIPresets() {
		names = append(names, pre.Name)
	}
	t, err := p.profileTable(ctx, "Figure 13: relative motif frequencies, k=7, PPI networks", names)
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes, "paper shape: the three unicellular organisms cluster; C. elegans stands out")
	return t, nil
}

// Fig14 reproduces Figure 14: relative frequencies of all 7-vertex tree
// motifs on the social, road, and random networks.
func (p Params) Fig14(ctx context.Context) (Table, error) {
	t, err := p.profileTable(ctx,
		"Figure 14: relative motif frequencies, k=7, social/road/random networks",
		[]string{"portland", "slashdot", "enron", "paroad", "gnp"})
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes, "paper shape: subgraphs 1 and 2 are highly discriminative across network families")
	return t, nil
}
