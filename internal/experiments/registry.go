package experiments

import (
	"context"
	"fmt"
	"sort"
)

// Runner executes one experiment under the given parameters. The context
// is checked between workload units (templates, networks, iteration
// sweeps) and plumbed into every counting run, so cancelling it aborts an
// experiment promptly with a partial table and the context's error.
type Runner func(Params, context.Context) (Table, error)

// Registry maps experiment names (as used by `fasciabench <name>`) to
// their runners, in the paper's presentation order.
var Registry = map[string]Runner{
	"table1":             func(p Params, _ context.Context) (Table, error) { return p.Table1(), nil },
	"fig3":               Params.Fig3,
	"fig4":               Params.Fig4,
	"fig5":               Params.Fig5,
	"fig6":               Params.Fig6,
	"fig7":               Params.Fig7,
	"fig8":               Params.Fig8,
	"fig9":               Params.Fig9,
	"fig10":              Params.Fig10,
	"fig11":              Params.Fig11,
	"fig12":              Params.Fig12,
	"fig13":              Params.Fig13,
	"fig14":              Params.Fig14,
	"fig15":              Params.Fig15,
	"fig16":              Params.Fig16,
	"moda":               Params.Moda,
	"ablation-partition": Params.AblationPartition,
	"ablation-table":     Params.AblationTable,
	"ablation-leaf":      Params.AblationLeafSpecial,
	"ablation-kernel":    Params.AblationKernel,
	"ablation-batch":     Params.AblationBatch,
	"distributed":        Params.Distributed,
	"profile":            Params.Profile,
}

// Order lists experiment names in presentation order for `fasciabench all`.
var Order = []string{
	"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "moda",
	"ablation-partition", "ablation-table", "ablation-leaf", "ablation-kernel",
	"ablation-batch",
	"distributed", "profile",
}

// Run executes the named experiment without cancellation.
func Run(name string, p Params) (Table, error) {
	return RunContext(context.Background(), name, p)
}

// RunContext executes the named experiment under ctx; cancelling ctx
// aborts the experiment between workload units and inside counting runs.
func RunContext(ctx context.Context, name string, p Params) (Table, error) {
	r, ok := Registry[name]
	if !ok {
		names := make([]string, 0, len(Registry))
		for n := range Registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return Table{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, names)
	}
	return r(p, ctx)
}
