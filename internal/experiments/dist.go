package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/tmpl"
)

// Distributed measures the simulated distributed-memory runtime (the
// paper's future work, in the PARSE/SAHAD direction): for a rank sweep on
// the Enron-like network it reports wall time, total communication
// volume, and the per-rank table-row bound, and checks that the estimate
// is invariant across rank counts.
func (p Params) Distributed(ctx context.Context) (Table, error) {
	g := p.network("enron")
	tpl := tmpl.MustNamed(fmt.Sprintf("U%d-1", p.MaxK))
	t := Table{
		Title:   fmt.Sprintf("Distributed-memory simulation: %s, enron-like", tpl.Name()),
		Columns: []string{"ranks", "time_ms", "comm_mb", "messages", "max_rank_rows", "estimate"},
	}
	var baseline float64
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		e, err := dist.New(g, tpl, dist.Config{Ranks: ranks, Seed: p.Seed})
		if err != nil {
			return t, err
		}
		start := time.Now()
		res, err := e.RunContext(ctx, 1)
		if err != nil {
			return t, err
		}
		elapsed := time.Since(start)
		if ranks == 1 {
			baseline = res.Estimate
		} else if res.Estimate != baseline {
			return t, fmt.Errorf("dist: estimate changed with rank count: %v vs %v", res.Estimate, baseline)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ranks), ms(elapsed), mb(res.CommBytes),
			fmt.Sprint(res.Messages), fmt.Sprint(res.MaxRankRows), sci(res.Estimate),
		})
	}
	t.Notes = append(t.Notes,
		"estimates are bit-identical across rank counts; comm volume grows with ranks while per-rank memory shrinks",
		"PARSE/SAHAD report the same qualitative trade-off on real clusters")
	return t, nil
}
