package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteEdgeList writes g as a plain text edge list: a header line
// "# n m [labeled]" followed by one "u v" pair per undirected edge, and,
// for labeled graphs, a trailing block of "l <v> <label>" lines.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	tag := ""
	if g.Labels != nil {
		tag = " labeled"
	}
	if _, err := fmt.Fprintf(bw, "# %d %d%s\n", g.N(), g.M(), tag); err != nil {
		return err
	}
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Adj(u) {
			if u < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	if g.Labels != nil {
		for v, l := range g.Labels {
			if _, err := fmt.Fprintf(bw, "l %d %d\n", v, l); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// maxFileVertices bounds the vertex count a graph file may declare or
// imply, protecting loaders from hostile headers that would otherwise
// force enormous allocations (found by fuzzing). 100M vertices needs
// ~1 GB for the offset array alone, a sensible ceiling for this library.
const maxFileVertices = 100_000_000

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' (other than the optional leading header) and blank lines are
// ignored, so plain SNAP-style edge lists also load; in that case the
// vertex count is inferred as max id + 1. Declared or implied vertex
// counts above maxFileVertices are rejected.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := -1
	var edges [][2]int32
	labelMap := map[int32]int32{}
	// labelLines remembers where each vertex's label was declared so that
	// errors detected after parsing (out-of-range ids against a header or
	// implied vertex count) still point at the offending line.
	labelLines := map[int32]int{}
	maxID := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if n < 0 {
				fields := strings.Fields(strings.TrimPrefix(line, "#"))
				if len(fields) >= 2 {
					if v, err := strconv.Atoi(fields[0]); err == nil {
						n = v
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "l" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed label line %q", lineNo, line)
			}
			v, err1 := strconv.ParseInt(fields[1], 10, 32)
			l, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed label line %q", lineNo, line)
			}
			if v < 0 {
				return nil, fmt.Errorf("graph: line %d: label for negative vertex %d", lineNo, v)
			}
			if first, ok := labelLines[int32(v)]; ok {
				return nil, fmt.Errorf("graph: line %d: duplicate label for vertex %d (first declared on line %d)", lineNo, v, first)
			}
			labelMap[int32(v)] = int32(l)
			labelLines[int32(v)] = lineNo
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: malformed edge line %q", lineNo, line)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 32)
		v, err2 := strconv.ParseInt(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: malformed edge line %q", lineNo, line)
		}
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = int(maxID) + 1
	}
	if n > maxFileVertices {
		return nil, fmt.Errorf("graph: file declares %d vertices, above the %d limit", n, maxFileVertices)
	}
	if int(maxID) >= n {
		return nil, fmt.Errorf("graph: edge endpoint %d outside declared vertex count %d", maxID, n)
	}
	var labels []int32
	if len(labelMap) > 0 {
		labels = make([]int32, n)
		for v, l := range labelMap {
			if int(v) >= n {
				return nil, fmt.Errorf("graph: line %d: label for vertex %d outside vertex count %d", labelLines[v], v, n)
			}
			labels[v] = l
		}
	}
	return FromEdges(n, edges, labels)
}

// binMagic identifies the legacy v1 binary CSR layout (12-byte packed
// header of three uint32s); binMagic2 identifies the v2 layout whose
// 32-byte header keeps the offsets array 8-byte aligned within the
// file, so MapBinary can alias the arrays straight out of a read-only
// mapping. WriteBinary emits v2; ReadBinary accepts both.
const (
	binMagic  = uint32(0xfa5c1a01)
	binMagic2 = uint32(0xfa5c1a02)
	// binV2HeaderBytes is the fixed v2 header size: magic u32,
	// hasLabels u32, n i64, adjLen i64, 8 reserved bytes. 32 is a
	// multiple of 8, and 32 + (n+1)*8 is too, so both the offsets and
	// (4-aligned) adjacency arrays land naturally aligned in the file.
	binV2HeaderBytes = 32
)

// WriteBinary writes g in the v2 little-endian binary CSR format,
// suitable for fast reloading — or direct memory-mapping via MapBinary
// — of large generated networks.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var hdr [binV2HeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], binMagic2)
	if g.Labels != nil {
		binary.LittleEndian.PutUint32(hdr[4:], 1)
	}
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(g.adj)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	if g.Labels != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.Labels); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the formats written by current (v2) and older (v1)
// WriteBinary and validates the result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	switch magic {
	case binMagic:
		return readBinaryV1(br)
	case binMagic2:
		return readBinaryV2(br)
	}
	return nil, fmt.Errorf("graph: bad binary magic %#x", magic)
}

// readBinaryV1 parses the legacy layout after its magic word: n u32,
// hasLabels u32, then the arrays.
func readBinaryV1(br io.Reader) (*Graph, error) {
	var n, hasLabels uint32
	for _, p := range []*uint32{&n, &hasLabels} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if n > maxFileVertices {
		return nil, fmt.Errorf("graph: binary declares %d vertices, above the %d limit", n, maxFileVertices)
	}
	g := &Graph{}
	offsets, err := readInt64s(br, int64(n)+1)
	if err != nil {
		return nil, err
	}
	g.offsets = offsets
	total := g.offsets[n]
	if total < 0 || total > int64(maxFileVertices)*64 {
		return nil, fmt.Errorf("graph: implausible adjacency length %d", total)
	}
	if g.adj, err = readInt32s(br, total); err != nil {
		return nil, err
	}
	if hasLabels == 1 {
		if g.Labels, err = readInt32s(br, int64(n)); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// readBinaryV2 parses the v2 layout after its magic word: the header
// remainder (hasLabels u32, n i64, adjLen i64, 8 reserved bytes), then
// the arrays.
func readBinaryV2(br io.Reader) (*Graph, error) {
	var rest [binV2HeaderBytes - 4]byte
	if _, err := io.ReadFull(br, rest[:]); err != nil {
		return nil, err
	}
	hasLabels := binary.LittleEndian.Uint32(rest[0:])
	n := int64(binary.LittleEndian.Uint64(rest[4:]))
	adjLen := int64(binary.LittleEndian.Uint64(rest[12:]))
	if hasLabels > 1 {
		return nil, fmt.Errorf("graph: bad label flag %d", hasLabels)
	}
	if n < 0 || n > maxFileVertices {
		return nil, fmt.Errorf("graph: binary declares %d vertices, above the %d limit", n, maxFileVertices)
	}
	if adjLen < 0 || adjLen > int64(maxFileVertices)*64 {
		return nil, fmt.Errorf("graph: implausible adjacency length %d", adjLen)
	}
	g := &Graph{}
	offsets, err := readInt64s(br, n+1)
	if err != nil {
		return nil, err
	}
	g.offsets = offsets
	if g.offsets[n] != adjLen {
		return nil, fmt.Errorf("graph: offsets end %d disagrees with declared adjacency length %d", g.offsets[n], adjLen)
	}
	if g.adj, err = readInt32s(br, adjLen); err != nil {
		return nil, err
	}
	if hasLabels == 1 {
		if g.Labels, err = readInt32s(br, n); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// binReadChunk is the element count per incremental read in readInt64s /
// readInt32s. Reading a declared-length array in bounded chunks means a
// hostile header can over-allocate by at most one chunk (8 MB) before
// the missing bytes surface as an error — a 15-byte file declaring 64M
// vertices used to allocate the full 512 MB offset array up front, which
// OOM-killed the fuzzing worker (testdata/fuzz/FuzzReadBinary).
const binReadChunk = 1 << 20

// readInt64s reads count little-endian int64s, growing the result as
// data actually arrives.
func readInt64s(r io.Reader, count int64) ([]int64, error) {
	if count < 0 {
		return nil, fmt.Errorf("graph: negative array length %d", count)
	}
	dst := make([]int64, 0, min64(count, binReadChunk))
	for count > 0 {
		c := min64(count, binReadChunk)
		start := len(dst)
		dst = append(dst, make([]int64, c)...)
		if err := binary.Read(r, binary.LittleEndian, dst[start:]); err != nil {
			return nil, err
		}
		count -= c
	}
	return dst, nil
}

// readInt32s is readInt64s for int32 payloads.
func readInt32s(r io.Reader, count int64) ([]int32, error) {
	if count < 0 {
		return nil, fmt.Errorf("graph: negative array length %d", count)
	}
	dst := make([]int32, 0, min64(count, binReadChunk))
	for count > 0 {
		c := min64(count, binReadChunk)
		start := len(dst)
		dst = append(dst, make([]int32, c)...)
		if err := binary.Read(r, binary.LittleEndian, dst[start:]); err != nil {
			return nil, err
		}
		count -= c
	}
	return dst, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SaveFile writes g to path, choosing the binary format for ".bin"
// suffixes and the text edge list otherwise.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		if err := WriteBinary(f, g); err != nil {
			return err
		}
	} else if err := WriteEdgeList(f, g); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path using the format implied by its suffix
// (see SaveFile).
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadEdgeList(f)
}
