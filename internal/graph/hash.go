package graph

import (
	"encoding/binary"
	"hash/fnv"
)

// Hash returns an FNV-1a fingerprint of the graph's structure: the
// vertex count, every adjacency list in CSR order, and the labels (with
// a presence marker so "no labels" differs from "all-zero labels"). Two
// graphs hash equal iff their CSR representations are identical. The
// serving registry keys result caches on it, and the sharded tier uses
// it as the wire-level graph identity: a shard worker only accepts a
// run for a graph whose local copy hashes identically, so every rank is
// provably counting over the same CSR.
func Hash(g *Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	n := g.N()
	put(uint64(n))
	for v := int32(0); v < int32(n); v++ {
		adj := g.Adj(v)
		put(uint64(len(adj)))
		for _, u := range adj {
			put(uint64(uint32(u)))
		}
	}
	if g.Labels == nil {
		put(0)
	} else {
		put(1)
		for _, l := range g.Labels {
			put(uint64(uint32(l)))
		}
	}
	return h.Sum64()
}
