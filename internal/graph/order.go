package graph

import (
	"math/bits"
	"sort"
)

// Ordering is a vertex relabeling produced by DegreeBucketOrdering. It
// maps between the original vertex ids of the input graph and the new
// ids of the relabeled (execution) graph.
type Ordering struct {
	// Perm maps original id -> new id.
	Perm []int32
	// Orig maps new id -> original id (the inverse of Perm).
	Orig []int32
	// Buckets holds the start offsets (in new-id space) of the degree
	// buckets, highest-degree bucket first, with a final sentinel equal
	// to N. Bucket b spans new ids [Buckets[b], Buckets[b+1]); empty
	// buckets collapse to zero-width spans.
	Buckets []int32
}

// DegreeBucketOrdering builds a deterministic degree-bucketed vertex
// ordering: vertices are stably partitioned into logarithmic degree
// buckets (bucket id = bits.Len(degree)), highest bucket first,
// preserving ascending original-id order within each bucket. High-degree
// vertices — whose table rows are gathered most often by the DP's
// aggregate kernel — end up contiguous at the front of the id space, so
// a column tile's hot rows pack into the fewest cache lines and pages.
//
// The construction is a counting sort: O(N) time, no comparisons, and
// fully determined by the degree sequence, so repeated runs (and runs on
// different worker counts) produce the identical permutation.
func DegreeBucketOrdering(g *Graph) *Ordering {
	n := g.N()
	maxBucket := 0
	for v := 0; v < n; v++ {
		if b := bits.Len(uint(g.Degree(int32(v)))); b > maxBucket {
			maxBucket = b
		}
	}
	nb := maxBucket + 1
	counts := make([]int32, nb+1)
	for v := 0; v < n; v++ {
		// Highest bucket first: flip the bucket id.
		b := maxBucket - bits.Len(uint(g.Degree(int32(v))))
		counts[b+1]++
	}
	for b := 0; b < nb; b++ {
		counts[b+1] += counts[b]
	}
	ord := &Ordering{
		Perm:    make([]int32, n),
		Orig:    make([]int32, n),
		Buckets: make([]int32, nb+1),
	}
	copy(ord.Buckets, counts)
	next := counts[:nb]
	for v := 0; v < n; v++ {
		b := maxBucket - bits.Len(uint(g.Degree(int32(v))))
		nv := next[b]
		next[b]++
		ord.Perm[v] = nv
		ord.Orig[nv] = int32(v)
	}
	return ord
}

// Relabel builds a new graph with vertex ids permuted by ord: new vertex
// Perm[v] carries original vertex v's adjacency (neighbor ids mapped
// through Perm and re-sorted to keep the CSR invariant) and label. The
// input graph is not modified.
func (g *Graph) Relabel(ord *Ordering) *Graph {
	n := g.N()
	ng := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]int32, g.offsets[n]),
	}
	for nv := 0; nv < n; nv++ {
		ng.offsets[nv+1] = ng.offsets[nv] + int64(g.Degree(ord.Orig[nv]))
	}
	for nv := 0; nv < n; nv++ {
		row := ng.adj[ng.offsets[nv]:ng.offsets[nv+1]]
		for i, u := range g.Adj(ord.Orig[nv]) {
			row[i] = ord.Perm[u]
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	if g.Labels != nil {
		ng.Labels = make([]int32, n)
		for nv := 0; nv < n; nv++ {
			ng.Labels[nv] = g.Labels[ord.Orig[nv]]
		}
	}
	return ng
}
