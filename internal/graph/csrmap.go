package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"strings"
	"unsafe"
)

// Out-of-core loading: a v2 binary CSR file keeps its offsets array
// 8-byte aligned at a fixed 32-byte header, so the whole file can be
// mapped read-only and the Graph's slices reinterpreted in place. A
// 10M-vertex graph then costs no anonymous RSS for the CSR — the kernel
// pages adjacency in on demand and evicts it under memory pressure,
// which is what keeps U10+ runs under a -mem budget.

// errNotMappable marks files MapBinary cannot alias in place (v1 or
// text formats, platforms without mmap); callers fall back to a full
// read.
var errNotMappable = errors.New("graph: file not mappable in place")

// MapBinary opens a binary CSR file without copying it into memory:
// v2 files (the format WriteBinary emits) are mapped read-only and the
// returned graph's CSR arrays alias the mapping directly. v1 binaries,
// text edge lists, and platforms without mmap support silently fall
// back to LoadFile. The header and offsets array are validated; the
// adjacency payload is trusted as written by WriteBinary, so only map
// files from trusted sources (use LoadFile for hostile input — it runs
// the full Validate pass). Call Unmap on a Mapped graph to release it.
func MapBinary(path string) (*Graph, error) {
	if !strings.HasSuffix(path, ".bin") {
		return LoadFile(path)
	}
	g, err := mapBinary(path)
	if errors.Is(err, errNotMappable) {
		return LoadFile(path)
	}
	return g, err
}

func mapBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < binV2HeaderBytes {
		return nil, errNotMappable
	}
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(magic[:]) != binMagic2 {
		return nil, errNotMappable
	}
	m, err := mmapFileRO(int(f.Fd()), st.Size())
	if err != nil {
		return nil, errNotMappable
	}
	g, err := graphFromMapped(m)
	if err != nil {
		munmapBytes(m)
		return nil, err
	}
	return g, nil
}

// graphFromMapped builds a Graph whose slices alias the mapped v2 file
// image m. Validation is deliberately light — header sanity plus a
// monotone sweep of the offsets array (one sequential touch of its
// pages) — because the O(m) symmetric-edge Validate pass would fault in
// the entire adjacency payload, defeating the point of mapping it.
func graphFromMapped(m []byte) (*Graph, error) {
	hasLabels := binary.LittleEndian.Uint32(m[4:])
	n := int64(binary.LittleEndian.Uint64(m[8:]))
	adjLen := int64(binary.LittleEndian.Uint64(m[16:]))
	if hasLabels > 1 {
		return nil, fmt.Errorf("graph: bad label flag %d", hasLabels)
	}
	if n < 0 || n > maxFileVertices {
		return nil, fmt.Errorf("graph: binary declares %d vertices, above the %d limit", n, maxFileVertices)
	}
	if adjLen < 0 || adjLen > int64(maxFileVertices)*64 {
		return nil, fmt.Errorf("graph: implausible adjacency length %d", adjLen)
	}
	need := int64(binV2HeaderBytes) + (n+1)*8 + adjLen*4
	if hasLabels == 1 {
		need += n * 4
	}
	if int64(len(m)) < need {
		return nil, fmt.Errorf("graph: mapped file truncated: %d bytes, need %d", len(m), need)
	}
	g := &Graph{mapped: m}
	off := int64(binV2HeaderBytes)
	g.offsets = unsafe.Slice((*int64)(unsafe.Pointer(&m[off])), n+1)
	off += (n + 1) * 8
	if adjLen > 0 {
		g.adj = unsafe.Slice((*int32)(unsafe.Pointer(&m[off])), adjLen)
	}
	off += adjLen * 4
	if hasLabels == 1 && n > 0 {
		g.Labels = unsafe.Slice((*int32)(unsafe.Pointer(&m[off])), n)
	}
	if g.offsets[0] != 0 {
		return nil, fmt.Errorf("graph: offsets start at %d, want 0", g.offsets[0])
	}
	if g.offsets[n] != adjLen {
		return nil, fmt.Errorf("graph: offsets end %d disagrees with declared adjacency length %d", g.offsets[n], adjLen)
	}
	for v := int64(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	return g, nil
}
