// Package graph provides the compressed-sparse-row (CSR) undirected graph
// substrate used by FASCIA: construction from edge lists, optional vertex
// labels, connected-component extraction, degree statistics, and simple
// text / binary persistence.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected graph in CSR form. Vertices are dense int32
// identifiers in [0, N). Each undirected edge {u, v} is stored twice, once
// in each endpoint's adjacency list; adjacency lists are sorted ascending
// and contain no duplicates or self-loops.
//
// Labels, when non-nil, has length N and assigns each vertex an integer
// label used by labeled-template counting.
type Graph struct {
	offsets []int64 // length N+1
	adj     []int32 // length 2*M
	Labels  []int32 // nil for unlabeled graphs
	// mapped, when non-nil, is the read-only file mapping the slices
	// above alias (MapBinary); Unmap releases it.
	mapped []byte
}

// Mapped reports whether the graph's CSR arrays alias a read-only file
// mapping established by MapBinary rather than heap memory.
func (g *Graph) Mapped() bool { return g.mapped != nil }

// Unmap releases the file mapping backing a MapBinary-loaded graph and
// clears the aliasing slices; it is a no-op for heap-backed graphs. The
// graph must not be used after a successful Unmap.
func (g *Graph) Unmap() error {
	if g.mapped == nil {
		return nil
	}
	m := g.mapped
	g.mapped, g.offsets, g.adj, g.Labels = nil, nil, nil, nil
	return munmapBytes(m)
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int64 { return int64(len(g.adj)) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Adj returns the sorted adjacency list of vertex v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Adj(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int32) bool {
	a := g.Adj(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// Label returns the label of vertex v, or 0 for unlabeled graphs.
func (g *Graph) Label(v int32) int32 {
	if g.Labels == nil {
		return 0
	}
	return g.Labels[v]
}

// Edges returns every undirected edge exactly once (u < v), in order.
func (g *Graph) Edges() [][2]int32 {
	out := make([][2]int32, 0, g.M())
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Adj(u) {
			if u < v {
				out = append(out, [2]int32{u, v})
			}
		}
	}
	return out
}

// Stats summarizes a graph for the Table I analogue.
type Stats struct {
	N         int
	M         int64
	AvgDegree float64
	MaxDegree int
}

// ComputeStats returns size and degree statistics for g.
func (g *Graph) ComputeStats() Stats {
	s := Stats{N: g.N(), M: g.M()}
	for v := int32(0); v < int32(g.N()); v++ {
		d := g.Degree(v)
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if s.N > 0 {
		s.AvgDegree = float64(2*s.M) / float64(s.N)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d davg=%.1f dmax=%d", s.N, s.M, s.AvgDegree, s.MaxDegree)
}

// FromEdges builds a Graph over n vertices from an undirected edge list.
// Self-loops and duplicate edges (in either orientation) are dropped.
// Endpoints must lie in [0, n). labels may be nil; otherwise it must have
// length n and is copied.
func FromEdges(n int, edges [][2]int32, labels []int32) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("graph: %d labels for %d vertices", len(labels), n)
	}
	deg := make([]int64, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			continue
		}
		deg[u]++
		deg[v]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]int32, offsets[n])
	fill := make([]int64, n)
	copy(fill, offsets[:n])
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		adj[fill[u]] = v
		fill[u]++
		adj[fill[v]] = u
		fill[v]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	g.sortAndDedup()
	if labels != nil {
		g.Labels = append([]int32(nil), labels...)
	}
	return g, nil
}

// MustFromEdges is FromEdges for inputs known to be valid (tests,
// generators); it panics on error.
func MustFromEdges(n int, edges [][2]int32, labels []int32) *Graph {
	g, err := FromEdges(n, edges, labels)
	if err != nil {
		panic(err)
	}
	return g
}

// sortAndDedup sorts every adjacency list and removes duplicate
// neighbors, compacting storage in place.
func (g *Graph) sortAndDedup() {
	n := g.N()
	newOff := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		row := g.adj[lo:hi]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		newOff[v] = w
		var prev int32 = -1
		for _, u := range row {
			if u != prev {
				g.adj[w] = u
				w++
				prev = u
			}
		}
	}
	newOff[n] = w
	g.offsets = newOff
	g.adj = g.adj[:w:w]
}

// ConnectedComponents returns a component id per vertex and the number of
// components, using an iterative BFS.
func (g *Graph) ConnectedComponents() (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, 1024)
	for s := int32(0); s < int32(n); s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Adj(v) {
				if comp[u] < 0 {
					comp[u] = id
					queue = append(queue, u)
				}
			}
		}
	}
	return comp, count
}

// LargestComponent returns the subgraph induced by the largest connected
// component, with vertices renumbered densely. Labels are carried over.
// The second return value maps new vertex ids to original ids.
func (g *Graph) LargestComponent() (*Graph, []int32) {
	comp, count := g.ConnectedComponents()
	if count <= 1 {
		orig := make([]int32, g.N())
		for i := range orig {
			orig[i] = int32(i)
		}
		return g, orig
	}
	sizes := make([]int64, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := int32(0)
	for c := int32(1); c < int32(count); c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	remap := make([]int32, g.N())
	orig := make([]int32, 0, sizes[best])
	for v := int32(0); v < int32(g.N()); v++ {
		if comp[v] == best {
			remap[v] = int32(len(orig))
			orig = append(orig, v)
		} else {
			remap[v] = -1
		}
	}
	edges := make([][2]int32, 0, g.M())
	for _, e := range g.Edges() {
		if comp[e[0]] == best {
			edges = append(edges, [2]int32{remap[e[0]], remap[e[1]]})
		}
	}
	var labels []int32
	if g.Labels != nil {
		labels = make([]int32, len(orig))
		for i, v := range orig {
			labels[i] = g.Labels[v]
		}
	}
	sub := MustFromEdges(len(orig), edges, labels)
	return sub, orig
}

// Validate checks CSR structural invariants: sorted adjacency, no
// self-loops, no duplicates, and symmetry. It is used by tests and when
// loading untrusted files.
func (g *Graph) Validate() error {
	n := g.N()
	if len(g.offsets) != n+1 || g.offsets[0] != 0 || g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: malformed offsets")
	}
	// The whole offsets array must be verified monotone before any Adj
	// call: the symmetry check below calls HasEdge(u, v) — hence Adj(u)
	// — for vertices u ahead of the outer loop, and slicing with corrupt
	// offsets panics. Found by fuzzing ReadBinary with corrupt files;
	// the regression input lives in testdata/fuzz/FuzzReadBinary.
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
	}
	if g.Labels != nil && len(g.Labels) != n {
		return fmt.Errorf("graph: label array length %d != n %d", len(g.Labels), n)
	}
	for v := int32(0); v < int32(n); v++ {
		row := g.Adj(v)
		for i, u := range row {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not sorted/deduped", v)
			}
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	return nil
}

// Triangles returns the number of triangles in g, counted once each, via
// the standard ordered neighbor-intersection method.
func (g *Graph) Triangles() int64 {
	var count int64
	for v := int32(0); v < int32(g.N()); v++ {
		adj := g.Adj(v)
		for i, u := range adj {
			if u <= v {
				continue
			}
			// Intersect v's and u's higher neighbors.
			a := adj[i+1:]
			b := g.Adj(u)
			ai, bi := 0, 0
			for ai < len(a) && bi < len(b) {
				switch {
				case a[ai] == b[bi]:
					if a[ai] > u {
						count++
					}
					ai++
					bi++
				case a[ai] < b[bi]:
					ai++
				default:
					bi++
				}
			}
		}
	}
	return count
}

// GlobalClustering returns the global clustering coefficient (transitivity):
// 3 × triangles / number of connected vertex triples (paths of length 2).
// It is 0 for triangle-free graphs and 1 for cliques, and distinguishes
// the clustered biological/contact networks from G(n,p)-like graphs.
func (g *Graph) GlobalClustering() float64 {
	var wedges int64
	for v := int32(0); v < int32(g.N()); v++ {
		d := int64(g.Degree(v))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(wedges)
}
