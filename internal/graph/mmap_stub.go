//go:build !linux

package graph

// Non-linux platforms have no in-place mapping; MapBinary degrades to a
// full LoadFile read via errNotMappable.
func mmapFileRO(fd int, size int64) ([]byte, error) {
	return nil, errNotMappable
}

func munmapBytes(b []byte) error {
	return nil
}
