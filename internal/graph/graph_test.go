package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	edges := make([][2]int32, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	return MustFromEdges(n, edges, nil)
}

func TestFromEdgesBasic(t *testing.T) {
	g := MustFromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, nil)
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("cycle graph: n=%d m=%d", g.N(), g.M())
	}
	for v := int32(0); v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	g := MustFromEdges(3, [][2]int32{{0, 1}, {1, 0}, {0, 1}, {1, 1}, {2, 2}}, nil)
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1 after dedup", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing")
	}
	if g.HasEdge(1, 1) || g.HasEdge(0, 2) {
		t.Fatal("unexpected edge present")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesErrors(t *testing.T) {
	if _, err := FromEdges(2, [][2]int32{{0, 5}}, nil); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges(-1, nil, nil); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := FromEdges(3, nil, []int32{1, 2}); err == nil {
		t.Error("wrong label length accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustFromEdges(0, nil, nil)
	if g.N() != 0 || g.M() != 0 {
		t.Fatal("empty graph malformed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.AvgDegree != 0 {
		t.Fatal("empty graph avg degree nonzero")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := MustFromEdges(5, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {3, 4}}, nil)
	es := g.Edges()
	if int64(len(es)) != g.M() {
		t.Fatalf("Edges() returned %d, want %d", len(es), g.M())
	}
	g2 := MustFromEdges(5, es, nil)
	if g2.M() != g.M() {
		t.Fatal("round-trip changed edge count")
	}
	for _, e := range es {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not in canonical orientation", e)
		}
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v missing after round trip", e)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := MustFromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}}, nil) // star
	s := g.ComputeStats()
	if s.N != 4 || s.M != 3 || s.MaxDegree != 3 || s.AvgDegree != 1.5 {
		t.Fatalf("star stats wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Fatalf("stats string %q", s.String())
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustFromEdges(7, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {5, 6}}, nil)
	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("vertices 0-2 not in same component")
	}
	if comp[0] == comp[3] || comp[3] == comp[5] {
		t.Error("distinct components merged")
	}
}

func TestLargestComponent(t *testing.T) {
	labels := []int32{7, 7, 7, 9, 9, 1, 1}
	g := MustFromEdges(7, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {5, 6}}, labels)
	sub, orig := g.LargestComponent()
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("largest component n=%d m=%d, want 3/3", sub.N(), sub.M())
	}
	for i, v := range orig {
		if sub.Label(int32(i)) != g.Label(v) {
			t.Fatalf("label not carried for new vertex %d", i)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargestComponentSingleComponent(t *testing.T) {
	g := pathGraph(5)
	sub, orig := g.LargestComponent()
	if sub != g {
		t.Fatal("connected graph should return itself")
	}
	if len(orig) != 5 || orig[3] != 3 {
		t.Fatal("identity mapping expected")
	}
}

func TestLabels(t *testing.T) {
	g := MustFromEdges(3, [][2]int32{{0, 1}}, []int32{4, 5, 6})
	if g.Label(1) != 5 {
		t.Fatalf("Label(1) = %d", g.Label(1))
	}
	u := MustFromEdges(3, [][2]int32{{0, 1}}, nil)
	if u.Label(2) != 0 {
		t.Fatal("unlabeled graph should report label 0")
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return MustFromEdges(n, edges, nil)
}

// TestValidateProperty: random multigraph inputs always produce valid CSR.
func TestValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(200))
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 40, 120)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestEdgeListLabeledRoundTrip(t *testing.T) {
	labels := []int32{3, 1, 4, 1, 5}
	g := MustFromEdges(5, [][2]int32{{0, 1}, {2, 3}, {3, 4}}, labels)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 5; v++ {
		if g2.Label(v) != g.Label(v) {
			t.Fatalf("label(%d) = %d, want %d", v, g2.Label(v), g.Label(v))
		}
	}
}

func TestReadEdgeListSNAPStyle(t *testing.T) {
	in := "# Comment line\n# another\n0 1\n1 2\n4 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 3 {
		t.Fatalf("snap parse: n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "l 1\n", "l x y\n", "0 1\nl 9 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

// TestReadEdgeListLabelValidation covers the label-line error paths:
// ids above the declared or implied vertex count, duplicate labels, and
// negative ids (which used to panic). Errors must carry line numbers.
func TestReadEdgeListLabelValidation(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"above declared n", "# 2 1\n0 1\nl 5 3\n", "line 3"},
		{"above implied n", "0 1\nl 7 3\n", "line 2"},
		{"duplicate", "l 0 1\nl 0 2\n0 1\n", "line 2"},
		{"duplicate cites first", "l 0 1\nl 0 2\n0 1\n", "line 1"},
		{"negative id", "0 1\nl -1 5\n", "line 2"},
	}
	for _, tc := range cases {
		_, err := ReadEdgeList(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: input %q accepted", tc.name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantSub)
		}
	}
	// A well-formed labeled file still loads.
	g, err := ReadEdgeList(strings.NewReader("# 3 2 labeled\n0 1\n1 2\nl 0 5\nl 2 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Label(0) != 5 || g.Label(1) != 0 || g.Label(2) != 7 {
		t.Fatalf("labels = %v", g.Labels)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 100, 400)
	g.Labels = make([]int32, g.N())
	for i := range g.Labels {
		g.Labels[i] = int32(rng.Intn(8))
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("binary round trip size mismatch")
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if g2.Label(v) != g.Label(v) {
			t.Fatal("binary round trip label mismatch")
		}
		a, b := g.Adj(v), g2.Adj(v)
		if len(a) != len(b) {
			t.Fatal("binary round trip adjacency mismatch")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("binary round trip adjacency mismatch")
			}
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	g := pathGraph(10)
	for _, name := range []string{dir + "/g.txt", dir + "/g.bin"} {
		if err := SaveFile(name, g); err != nil {
			t.Fatal(err)
		}
		g2, err := LoadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if g2.N() != 10 || g2.M() != 9 {
			t.Fatalf("%s: n=%d m=%d", name, g2.N(), g2.M())
		}
	}
	if _, err := LoadFile(dir + "/missing.txt"); err == nil {
		t.Fatal("missing file load succeeded")
	}
}

func TestTriangles(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"triangle", MustFromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}}, nil), 1},
		{"path", pathGraph(5), 0},
		{"k4", MustFromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, nil), 4},
		{"two-triangles", MustFromEdges(5, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}}, nil), 2},
	}
	for _, c := range cases {
		if got := c.g.Triangles(); got != c.want {
			t.Errorf("%s: triangles = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestGlobalClustering(t *testing.T) {
	k4 := MustFromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, nil)
	if got := k4.GlobalClustering(); got != 1.0 {
		t.Fatalf("K4 clustering = %v, want 1", got)
	}
	if got := pathGraph(6).GlobalClustering(); got != 0 {
		t.Fatalf("path clustering = %v, want 0", got)
	}
	if got := MustFromEdges(2, [][2]int32{{0, 1}}, nil).GlobalClustering(); got != 0 {
		t.Fatalf("edge clustering = %v, want 0", got)
	}
}

// TestReadEdgeListHostileInputs pins the loader's behavior on the
// hostile shapes the serve upload path can receive — each case was
// first added as a fuzz seed; this test keeps the contract even when
// fuzzing is skipped. Inputs either error cleanly or produce a graph
// that passes Validate; nothing may panic or silently corrupt.
func TestReadEdgeListHostileInputs(t *testing.T) {
	rejected := []struct {
		name, in string
	}{
		{"overflowing id", "0 99999999999999999999\n"},
		{"negative endpoint", "-3 4\n"},
		{"over-declared header", "# 1000000000 1\n0 1\n"},
		{"huge implied count", "0 200000000\n"},
		{"edge above header count", "# 2 1\n0 5\n"},
		{"lone endpoint", "0 1\n7\n"},
	}
	for _, c := range rejected {
		if g, err := ReadEdgeList(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted %q as %v", c.name, c.in, g)
		}
	}

	accepted := []struct {
		name, in string
		n        int
		m        int64
	}{
		{"crlf line endings", "0 1\r\n1 2\r\n", 3, 2},
		{"tab separation", "0\t1\n1\t2\n", 3, 2},
		{"interleaved comment", "0 1\n# interleaved comment\n1 2\n", 3, 2},
		{"self-loop dropped", "0 1\n1 1\n", 2, 1},
		{"duplicate edge deduped", "5 6\n5 6\n6 5\n", 7, 1},
	}
	for _, c := range accepted {
		g, err := ReadEdgeList(strings.NewReader(c.in))
		if err != nil {
			t.Errorf("%s: rejected %q: %v", c.name, c.in, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", c.name, err)
		}
		if g.N() != c.n || g.M() != c.m {
			t.Errorf("%s: got %d/%d vertices/edges, want %d/%d", c.name, g.N(), g.M(), c.n, c.m)
		}
	}
	// An id at exactly int32 max implies 2^31 vertices, far above the
	// loader's ceiling: must be refused, not allocated.
	if g, err := ReadEdgeList(strings.NewReader("0 2147483647")); err == nil {
		t.Errorf("int32-max id accepted as %v", g)
	}
}

// TestValidateCorruptOffsets pins the fuzz-found ReadBinary crash: a
// binary file with non-monotone offsets used to panic inside Validate
// (the symmetry check sliced Adj(u) for a vertex whose offsets had not
// been monotonicity-checked yet). All corrupt shapes must error.
func TestValidateCorruptOffsets(t *testing.T) {
	corrupt := []struct {
		name    string
		offsets []int64
		adj     []int32
	}{
		{"non-monotone", []int64{0, 3, 1, 4}, []int32{1, 2, 0, 0}},
		{"negative", []int64{0, -2, 4}, []int32{1, 1, 0, 0}},
		{"nonzero start", []int64{1, 2, 4}, []int32{1, 1, 0, 0}},
		{"end past adj", []int64{0, 2, 6}, []int32{1, 1, 0, 0}},
	}
	for _, c := range corrupt {
		g := &Graph{offsets: c.offsets, adj: c.adj}
		if err := g.Validate(); err == nil {
			t.Errorf("%s offsets validated", c.name)
		}
	}
}
