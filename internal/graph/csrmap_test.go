package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
)

// sameGraph compares structure and labels against a reference.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("size mismatch: n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	for v := int32(0); v < int32(want.N()); v++ {
		if got.Label(v) != want.Label(v) {
			t.Fatalf("vertex %d label %d, want %d", v, got.Label(v), want.Label(v))
		}
		a, b := got.Adj(v), want.Adj(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree %d, want %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbor %d: %d, want %d", v, i, a[i], b[i])
			}
		}
	}
}

// TestMapBinaryRoundTrip checks that mapping a v2 binary file in place
// yields the identical graph a full ReadBinary pass would, that the
// mapping is reported and releasable, and that labels survive.
func TestMapBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 200, 800)
	g.Labels = make([]int32, g.N())
	for i := range g.Labels {
		g.Labels[i] = int32(rng.Intn(5))
	}
	path := t.TempDir() + "/g.bin"
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := MapBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS == "linux" && !m.Mapped() {
		t.Fatal("v2 binary not mapped on linux")
	}
	sameGraph(t, m, g)
	if err := m.Unmap(); err != nil {
		t.Fatal(err)
	}
	if m.Mapped() {
		t.Fatal("still Mapped after Unmap")
	}
	if err := m.Unmap(); err != nil {
		t.Fatal("second Unmap not a no-op:", err)
	}

	// An unlabeled, empty-adjacency graph maps too (adjLen = 0).
	lone := MustFromEdges(3, nil, nil)
	if err := SaveFile(path, lone); err != nil {
		t.Fatal(err)
	}
	m, err = MapBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, m, lone)
	if err := m.Unmap(); err != nil {
		t.Fatal(err)
	}
}

// TestMapBinaryFallback checks the silent LoadFile fallbacks: text edge
// lists, legacy v1 binaries, and undersized files all load through the
// copying path and are never reported as mapped.
func TestMapBinaryFallback(t *testing.T) {
	dir := t.TempDir()
	g := pathGraph(10)

	txt := dir + "/g.txt"
	if err := SaveFile(txt, g); err != nil {
		t.Fatal(err)
	}
	m, err := MapBinary(txt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mapped() {
		t.Fatal("text file reported as mapped")
	}
	sameGraph(t, m, g)

	// A v1 binary: magic, n u32, hasLabels u32, offsets, adjacency.
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, binMagic)
	binary.Write(&buf, binary.LittleEndian, uint32(g.N()))
	binary.Write(&buf, binary.LittleEndian, uint32(0))
	binary.Write(&buf, binary.LittleEndian, g.offsets)
	binary.Write(&buf, binary.LittleEndian, g.adj)
	v1 := dir + "/v1.bin"
	if err := os.WriteFile(v1, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if m, err = MapBinary(v1); err != nil {
		t.Fatal(err)
	}
	if m.Mapped() {
		t.Fatal("v1 binary reported as mapped")
	}
	sameGraph(t, m, g)

	// Too short for a v2 header: falls back, and the fallback reports
	// the real parse error.
	short := dir + "/short.bin"
	if err := os.WriteFile(short, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MapBinary(short); err == nil {
		t.Fatal("truncated binary accepted")
	}
}

// TestMapBinaryCorruptHeader checks that in-place validation rejects
// corrupted v2 files instead of silently aliasing garbage.
func TestMapBinaryCorruptHeader(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("mapping path is linux-only")
	}
	g := pathGraph(10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	for _, tc := range []struct {
		name    string
		corrupt func([]byte)
	}{
		{"label-flag", func(b []byte) { b[4] = 9 }},
		{"vertex-count", func(b []byte) {
			binary.LittleEndian.PutUint64(b[8:], uint64(maxFileVertices)+1)
		}},
		{"adj-len", func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:], uint64(len(b))) // disagrees with offsets end
		}},
		{"offsets-start", func(b []byte) {
			binary.LittleEndian.PutUint64(b[binV2HeaderBytes:], 1)
		}},
		{"offsets-monotone", func(b []byte) {
			binary.LittleEndian.PutUint64(b[binV2HeaderBytes+8:], uint64(1<<40))
		}},
	} {
		b := append([]byte(nil), good...)
		tc.corrupt(b)
		path := dir + "/" + tc.name + ".bin"
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := MapBinary(path); err == nil || strings.Contains(err.Error(), "not mappable") {
			t.Errorf("%s: corrupted v2 file not rejected (err %v)", tc.name, err)
		}
	}
}
