package graph

import (
	"testing"
)

func orderTestGraph(t *testing.T) *Graph {
	t.Helper()
	// A small skewed graph: vertex 0 is a hub, 1-3 mid-degree, rest leaves.
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7},
		{1, 2}, {1, 3}, {2, 3},
		{4, 5}, {6, 7}, {8, 9},
	}
	g, err := FromEdges(10, edges, nil)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestDegreeBucketOrderingInvariants(t *testing.T) {
	g := orderTestGraph(t)
	ord := DegreeBucketOrdering(g)
	n := g.N()
	if len(ord.Perm) != n || len(ord.Orig) != n {
		t.Fatalf("perm/orig length = %d/%d, want %d", len(ord.Perm), len(ord.Orig), n)
	}
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		nv := ord.Perm[v]
		if nv < 0 || int(nv) >= n {
			t.Fatalf("Perm[%d] = %d out of range", v, nv)
		}
		if seen[nv] {
			t.Fatalf("Perm maps two vertices to %d", nv)
		}
		seen[nv] = true
		if ord.Orig[nv] != int32(v) {
			t.Fatalf("Orig[Perm[%d]] = %d, want %d", v, ord.Orig[nv], v)
		}
	}
	// Buckets: start at 0, end at n, non-decreasing, and degree buckets
	// are non-increasing along the new id order.
	if ord.Buckets[0] != 0 || ord.Buckets[len(ord.Buckets)-1] != int32(n) {
		t.Fatalf("Buckets endpoints = %d..%d, want 0..%d", ord.Buckets[0], ord.Buckets[len(ord.Buckets)-1], n)
	}
	for i := 1; i < len(ord.Buckets); i++ {
		if ord.Buckets[i] < ord.Buckets[i-1] {
			t.Fatalf("Buckets not monotone at %d: %v", i, ord.Buckets)
		}
	}
	for nv := 1; nv < n; nv++ {
		dPrev := g.Degree(ord.Orig[nv-1])
		dCur := g.Degree(ord.Orig[nv])
		if bucketLen(dCur) > bucketLen(dPrev) {
			t.Fatalf("degree bucket increases at new id %d: deg %d after %d", nv, dCur, dPrev)
		}
	}
	// Stability: within a bucket, original ids ascend.
	for b := 0; b+1 < len(ord.Buckets); b++ {
		for i := ord.Buckets[b] + 1; i < ord.Buckets[b+1]; i++ {
			if ord.Orig[i] <= ord.Orig[i-1] {
				t.Fatalf("bucket %d not stable: orig %d after %d", b, ord.Orig[i], ord.Orig[i-1])
			}
		}
	}
	// Determinism: a second run yields the identical permutation.
	ord2 := DegreeBucketOrdering(g)
	for v := 0; v < n; v++ {
		if ord.Perm[v] != ord2.Perm[v] {
			t.Fatalf("ordering not deterministic at %d", v)
		}
	}
}

func bucketLen(deg int) int {
	n := 0
	for d := uint(deg); d > 0; d >>= 1 {
		n++
	}
	return n
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := orderTestGraph(t)
	g.Labels = make([]int32, g.N())
	for v := range g.Labels {
		g.Labels[v] = int32(v % 3)
	}
	ord := DegreeBucketOrdering(g)
	ng := g.Relabel(ord)
	if err := ng.Validate(); err != nil {
		t.Fatalf("relabeled graph invalid: %v", err)
	}
	if ng.N() != g.N() || ng.M() != g.M() {
		t.Fatalf("relabel changed size: %d/%d vs %d/%d", ng.N(), ng.M(), g.N(), g.M())
	}
	for v := int32(0); int(v) < g.N(); v++ {
		nv := ord.Perm[v]
		if ng.Degree(nv) != g.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
		if ng.Labels[nv] != g.Labels[v] {
			t.Fatalf("label mismatch at %d", v)
		}
		for _, u := range g.Adj(v) {
			if !ng.HasEdge(nv, ord.Perm[u]) {
				t.Fatalf("edge (%d,%d) lost under relabel", v, u)
			}
		}
	}
}
