//go:build linux

package graph

import "syscall"

// mmapFileRO maps size bytes of the open file fd read-only and shared;
// pages fault in on first touch and the kernel reclaims them under
// pressure without ever writing to swap (the file itself is the
// backing store).
func mmapFileRO(fd int, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(fd, 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapBytes(b []byte) error {
	return syscall.Munmap(b)
}
