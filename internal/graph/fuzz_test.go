package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// fuzzSafeEdgeList reports whether the input stays clear of
// monster-but-legal vertex counts: any integer token in (1e6,
// maxFileVertices] — a header count or an edge/label id — makes the
// parser owe its caller a CSR of that size. That is designed behavior
// (the documented ceiling is 100M vertices), but at fuzzing exec rates
// the repeated GB-scale allocations OOM the fuzz worker (testdata twin
// ada0ffa6461ea6a2). Counts above maxFileVertices stay in: the parser
// rejects those before allocating anything.
func fuzzSafeEdgeList(input string) bool {
	for _, tok := range strings.Fields(input) {
		tok = strings.TrimPrefix(tok, "#")
		if v, err := strconv.ParseInt(tok, 10, 64); err == nil && v > 1_000_000 && v <= maxFileVertices {
			return false
		}
	}
	return true
}

// FuzzReadEdgeList checks the text parser never panics and that anything
// it accepts is a valid graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# 4 2\n0 1\n2 3\n")
	f.Add("0 1\n1 2\nl 0 7\n")
	f.Add("# junk header\n\n5 5\n")
	f.Add("l 0 1\n")
	f.Add("0 1 extra tokens ok\n")
	// Regressions: label id above the declared vertex count, duplicate
	// label lines, and a negative label id (which used to panic in the
	// labels-slice fill).
	f.Add("# 2 1\n0 1\nl 5 3\n")
	f.Add("l 0 1\nl 0 2\n0 1\n")
	f.Add("0 1\nl -1 5\n")
	// Hostile shapes the serve upload path can receive: huge/overflowing
	// vertex ids, negative endpoints, self-loops, duplicate edges, CRLF
	// line endings, tab separation, comments in the middle of the file,
	// and a header that wildly over-declares the vertex count.
	f.Add("0 99999999999999999999\n")
	f.Add("0 2147483647\n")
	f.Add("-3 4\n")
	f.Add("5 5\n5 5\n")
	f.Add("0 1\r\n1 2\r\n")
	f.Add("0\t1\n1\t2\n")
	f.Add("0 1\n# interleaved comment\n1 2\n")
	f.Add("# 1000000000 1\n0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		if !fuzzSafeEdgeList(input) {
			t.Skip("monster-but-legal vertex count; see fuzzSafeEdgeList")
		}
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() < g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed size: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// FuzzReadBinary checks the binary parser is robust against corruption.
func FuzzReadBinary(f *testing.F) {
	g := MustFromEdges(5, [][2]int32{{0, 1}, {1, 2}, {3, 4}}, []int32{1, 2, 3, 4, 5})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted binary fails validation: %v", err)
		}
	})
}
