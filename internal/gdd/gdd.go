// Package gdd implements graphlet degree distributions and the Pržulj
// GDD-agreement metric used in §V-F of the paper (Figures 15 and 16): the
// graphlet degree of a vertex for a template orbit is the number of
// template embeddings that contain the vertex at that orbit, and the
// distribution counts how many vertices have each degree.
package gdd

import (
	"fmt"
	"math"
	"sort"
)

// Distribution maps a graphlet degree d to the number of vertices whose
// graphlet degree is d. Degree 0 entries are retained for reporting but,
// following Pržulj, are excluded from agreement computation.
type Distribution map[int64]int64

// FromVertexCounts bins per-vertex (possibly fractional, for estimates)
// graphlet-degree values into a distribution by rounding to the nearest
// integer.
func FromVertexCounts(counts []float64) Distribution {
	d := Distribution{}
	for _, c := range counts {
		if c < 0 {
			c = 0
		}
		d[int64(math.Round(c))]++
	}
	return d
}

// FromExactCounts bins integer graphlet degrees.
func FromExactCounts(counts []int64) Distribution {
	d := Distribution{}
	for _, c := range counts {
		d[c]++
	}
	return d
}

// Degrees returns the distribution's support (degrees with at least one
// vertex), ascending.
func (d Distribution) Degrees() []int64 {
	out := make([]int64, 0, len(d))
	for k := range d {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// normalized computes Pržulj's scaled, normalized distribution
// N(d) = (D(d)/d) / Σ_j D(j)/j over d >= 1.
func (d Distribution) normalized() map[int64]float64 {
	var total float64
	for deg, cnt := range d {
		if deg >= 1 {
			total += float64(cnt) / float64(deg)
		}
	}
	out := make(map[int64]float64, len(d))
	if total == 0 {
		return out
	}
	for deg, cnt := range d {
		if deg >= 1 {
			out[deg] = float64(cnt) / float64(deg) / total
		}
	}
	return out
}

// Agreement returns the Pržulj GDD agreement between two distributions
// for one orbit: 1 - (1/√2)·‖N_a - N_b‖₂, where N are the scaled,
// normalized distributions. Identical distributions score 1; the score is
// symmetric and lies in [0, 1].
func Agreement(a, b Distribution) float64 {
	na, nb := a.normalized(), b.normalized()
	var ss float64
	for deg, va := range na {
		diff := va - nb[deg]
		ss += diff * diff
	}
	for deg, vb := range nb {
		if _, ok := na[deg]; !ok {
			ss += vb * vb
		}
	}
	return 1 - math.Sqrt(ss)/math.Sqrt2
}

// String renders the distribution compactly for reports.
func (d Distribution) String() string {
	out := ""
	for i, deg := range d.Degrees() {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d:%d", deg, d[deg])
	}
	return out
}
