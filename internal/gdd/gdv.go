package gdd

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// Orbit identifies one automorphism orbit of one template: the template's
// index in the family plus a representative template vertex.
type Orbit struct {
	Template       int
	Representative int
	Size           int // number of template vertices in the orbit
}

// GDV holds graphlet degree vectors: for every vertex, its estimated
// graphlet degree at every orbit of every supplied template — the full
// Pržulj methodology (the paper's Figures 15-16 use the single central
// orbit of U5-2; this generalizes to all orbits).
type GDV struct {
	Orbits []Orbit
	// Counts[o][v] is vertex v's graphlet degree at orbit o.
	Counts [][]float64
}

// Vector returns vertex v's graphlet degree vector across all orbits.
func (g GDV) Vector(v int32) []float64 {
	out := make([]float64, len(g.Orbits))
	for o := range g.Orbits {
		out[o] = g.Counts[o][v]
	}
	return out
}

// Distribution returns the degree distribution of one orbit.
func (g GDV) Distribution(orbit int) Distribution {
	return FromVertexCounts(g.Counts[orbit])
}

// ComputeGDV estimates graphlet degree vectors for all orbits of the
// given templates using iters color-coding iterations per orbit. cfg
// supplies engine settings; its RootVertex is overridden per orbit.
func ComputeGDV(g *graph.Graph, templates []*tmpl.Template, iters int, cfg dp.Config) (GDV, error) {
	return ComputeGDVContext(context.Background(), g, templates, iters, cfg)
}

// ComputeGDVContext is ComputeGDV with cooperative cancellation, checked
// between orbits and plumbed into every per-orbit counting run.
func ComputeGDVContext(ctx context.Context, g *graph.Graph, templates []*tmpl.Template, iters int, cfg dp.Config) (GDV, error) {
	if iters < 1 {
		return GDV{}, fmt.Errorf("gdd: iterations must be >= 1, got %d", iters)
	}
	var out GDV
	for ti, t := range templates {
		for _, orbit := range t.Orbits() {
			if err := ctx.Err(); err != nil {
				return GDV{}, err
			}
			rep := orbit[0]
			c := cfg
			c.RootVertex = rep
			c.Share = false
			e, err := dp.New(g, t, c)
			if err != nil {
				return GDV{}, fmt.Errorf("gdd: template %d orbit %d: %w", ti, rep, err)
			}
			counts, err := e.VertexCountsContext(ctx, iters)
			if err != nil {
				return GDV{}, err
			}
			out.Orbits = append(out.Orbits, Orbit{Template: ti, Representative: rep, Size: len(orbit)})
			out.Counts = append(out.Counts, counts)
		}
	}
	return out, nil
}

// AgreementGDV returns the arithmetic and geometric means of per-orbit
// GDD agreements between two graphlet degree vector sets, following
// Pržulj's aggregate agreement measures. The two GDVs must cover the
// same orbits.
func AgreementGDV(a, b GDV) (arith, geom float64, err error) {
	if len(a.Orbits) != len(b.Orbits) || len(a.Orbits) == 0 {
		return 0, 0, fmt.Errorf("gdd: GDV orbit sets differ (%d vs %d)", len(a.Orbits), len(b.Orbits))
	}
	logSum := 0.0
	for o := range a.Orbits {
		if a.Orbits[o] != b.Orbits[o] {
			return 0, 0, fmt.Errorf("gdd: orbit %d mismatch", o)
		}
		ag := Agreement(a.Distribution(o), b.Distribution(o))
		if ag < 0 {
			ag = 0
		}
		arith += ag
		logSum += math.Log(math.Max(ag, 1e-300))
	}
	n := float64(len(a.Orbits))
	return arith / n, math.Exp(logSum / n), nil
}
