package gdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromVertexCounts(t *testing.T) {
	d := FromVertexCounts([]float64{0.2, 0.6, 1.4, 2.0, 2.0, -0.5})
	if d[0] != 2 || d[1] != 2 || d[2] != 2 {
		t.Fatalf("distribution %v", d)
	}
}

func TestFromExactCounts(t *testing.T) {
	d := FromExactCounts([]int64{3, 3, 7})
	if d[3] != 2 || d[7] != 1 {
		t.Fatalf("distribution %v", d)
	}
}

func TestDegreesSorted(t *testing.T) {
	d := Distribution{5: 1, 1: 2, 3: 4}
	degs := d.Degrees()
	if len(degs) != 3 || degs[0] != 1 || degs[1] != 3 || degs[2] != 5 {
		t.Fatalf("degrees %v", degs)
	}
	if d.String() == "" {
		t.Fatal("empty render")
	}
}

func TestAgreementIdentity(t *testing.T) {
	d := Distribution{1: 5, 2: 3, 7: 1}
	if got := Agreement(d, d); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self agreement %v, want 1", got)
	}
}

func TestAgreementSymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Distribution {
			d := Distribution{}
			for i := 0; i < 1+rng.Intn(10); i++ {
				d[int64(1+rng.Intn(20))] += int64(1 + rng.Intn(50))
			}
			return d
		}
		a, b := mk(), mk()
		x, y := Agreement(a, b), Agreement(b, a)
		if math.Abs(x-y) > 1e-12 {
			return false
		}
		return x >= -1e-12 && x <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAgreementDisjointSupport(t *testing.T) {
	a := Distribution{1: 10}
	b := Distribution{10: 10}
	got := Agreement(a, b)
	// Two unit-mass distributions at different degrees: ‖N_a-N_b‖₂ = √2,
	// so agreement is exactly 0.
	if math.Abs(got) > 1e-12 {
		t.Fatalf("disjoint agreement %v, want 0", got)
	}
}

func TestAgreementIgnoresZeroDegree(t *testing.T) {
	a := Distribution{0: 100, 1: 5}
	b := Distribution{1: 5}
	if got := Agreement(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("zero-degree vertices should not affect agreement, got %v", got)
	}
}

func TestAgreementScaleInvariance(t *testing.T) {
	// Doubling all vertex counts leaves the normalized shape unchanged.
	a := Distribution{1: 4, 3: 6, 9: 2}
	b := Distribution{1: 8, 3: 12, 9: 4}
	if got := Agreement(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("scaled distribution agreement %v, want 1", got)
	}
}

func TestAgreementCloserIsHigher(t *testing.T) {
	base := Distribution{1: 10, 2: 10, 3: 10}
	near := Distribution{1: 11, 2: 10, 3: 9}
	far := Distribution{1: 30, 2: 1, 3: 1}
	if Agreement(base, near) <= Agreement(base, far) {
		t.Fatal("closer distribution should score higher")
	}
}

func TestAgreementEmpty(t *testing.T) {
	if got := Agreement(Distribution{}, Distribution{}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("empty vs empty = %v", got)
	}
	// Empty vs unit mass: distance √1 → agreement 1 - 1/√2.
	got := Agreement(Distribution{}, Distribution{2: 5})
	want := 1 - 1/math.Sqrt2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("empty vs point = %v, want %v", got, want)
	}
}
