package gdd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

func randomG(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges, nil)
}

func TestComputeGDVOrbitLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomG(rng, 20, 50)
	templates := []*tmpl.Template{tmpl.Path(3), tmpl.Star(4)}
	cfg := dp.DefaultConfig()
	cfg.Seed = 1
	gdv, err := ComputeGDV(g, templates, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// P3 has 2 orbits (ends, middle); S4 has 2 (center, leaves).
	if len(gdv.Orbits) != 4 {
		t.Fatalf("got %d orbits, want 4", len(gdv.Orbits))
	}
	sizes := map[int]int{}
	for _, o := range gdv.Orbits {
		sizes[o.Template] += o.Size
	}
	if sizes[0] != 3 || sizes[1] != 4 {
		t.Fatalf("orbit sizes per template: %v", sizes)
	}
	if len(gdv.Vector(0)) != 4 {
		t.Fatal("vector length wrong")
	}
	if _, err := ComputeGDV(g, templates, 0, cfg); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

// TestGDVMatchesExactPerOrbit checks each orbit's estimated counts
// against the exact rooted oracle.
func TestGDVMatchesExactPerOrbit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomG(rng, 16, 34)
	templates := []*tmpl.Template{tmpl.Path(3)}
	cfg := dp.DefaultConfig()
	cfg.Seed = 2
	gdv, err := ComputeGDV(g, templates, 1200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for o, orbit := range gdv.Orbits {
		tr := templates[orbit.Template]
		rooted := exact.CountRootedMappings(g, tr, orbit.Representative)
		rAut := tr.RootedAutomorphisms(orbit.Representative)
		var wantTotal, gotTotal float64
		for v := range rooted {
			wantTotal += float64(rooted[v]) / float64(rAut)
			gotTotal += gdv.Counts[o][v]
		}
		if wantTotal == 0 {
			continue
		}
		if math.Abs(gotTotal-wantTotal)/wantTotal > 0.15 {
			t.Fatalf("orbit %d: estimated total %.1f, exact %.1f", o, gotTotal, wantTotal)
		}
	}
}

func TestAgreementGDV(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomG(rng, 24, 60)
	templates := []*tmpl.Template{tmpl.Path(3), tmpl.Spider(2, 1, 1)}
	cfg := dp.DefaultConfig()
	cfg.Seed = 3
	a, err := ComputeGDV(g, templates, 80, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arith, geom, err := AgreementGDV(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arith-1) > 1e-9 || math.Abs(geom-1) > 1e-9 {
		t.Fatalf("self agreement %v/%v, want 1/1", arith, geom)
	}
	// A different graph scores lower.
	h := randomG(rng, 24, 20)
	b, err := ComputeGDV(h, templates, 80, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arith2, geom2, err := AgreementGDV(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if arith2 >= 1 || geom2 > arith2+1e-9 {
		t.Fatalf("cross agreement arith=%v geom=%v (geom must not exceed arith)", arith2, geom2)
	}
	// Mismatched orbit sets rejected.
	c, _ := ComputeGDV(g, []*tmpl.Template{tmpl.Path(3)}, 5, cfg)
	if _, _, err := AgreementGDV(a, c); err == nil {
		t.Fatal("mismatched GDVs accepted")
	}
}
