// Package part builds the partition tree that drives FASCIA's bottom-up
// dynamic program: the template is recursively split by single edge cuts
// adjacent to the current root into an active child (which keeps the root)
// and a passive child (rooted at the far endpoint of the cut edge), down
// to single vertices. The package implements the paper's one-at-a-time
// partitioning heuristic, a balanced alternative, rooted-isomorphism
// sharing between subtemplate nodes, and the cost/memory model used to
// reason about the trade-offs.
package part

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/comb"
	"repro/internal/tmpl"
)

// Strategy selects how cut edges are chosen during partitioning.
type Strategy int

const (
	// OneAtATime peels a single vertex per cut whenever possible (the
	// paper's preferred strategy): single-vertex children let the DP skip
	// all color sets not containing the vertex's own color.
	OneAtATime Strategy = iota
	// Balanced cuts the edge that splits the subtemplate most evenly,
	// minimizing the dominant multiplicative cost terms for large
	// templates at the price of fewer single-vertex specializations.
	Balanced
)

func (s Strategy) String() string {
	switch s {
	case OneAtATime:
		return "one-at-a-time"
	case Balanced:
		return "balanced"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Node is one subtemplate in the partition tree. Leaves are single
// template vertices; every internal node has an active child (same root)
// and a passive child (rooted across the cut edge).
type Node struct {
	ID    int
	Verts []int // template vertices of this subtemplate, sorted ascending
	Root  int   // template vertex acting as the root

	Active  *Node // nil iff leaf
	Passive *Node // nil iff leaf

	// Consumers counts how many parents read this node's table (2 when a
	// shared node serves both children of isomorphic shape). The DP engine
	// uses it to release tables as early as possible.
	Consumers int

	// Code is the label-aware AHU encoding of the subtemplate rooted at
	// Root; nodes with equal codes are interchangeable in the DP.
	Code string
}

// Size returns the number of template vertices in the subtemplate.
func (n *Node) Size() int { return len(n.Verts) }

// IsLeaf reports whether the node is a single template vertex.
func (n *Node) IsLeaf() bool { return n.Active == nil }

// LeafVertex returns the template vertex of a leaf node.
func (n *Node) LeafVertex() int {
	if !n.IsLeaf() {
		panic("part: LeafVertex on internal node")
	}
	return n.Verts[0]
}

// Tree is a fully built partition tree plus the evaluation order used by
// the dynamic program.
type Tree struct {
	Template *tmpl.Template
	Strategy Strategy
	Shared   bool
	Root     *Node

	// Nodes lists the unique nodes; Order lists them in evaluation order
	// (children strictly before parents).
	Nodes []*Node
	Order []*Node
}

// Build constructs the partition tree for t under the given strategy.
// When share is true, subtemplate nodes with identical rooted canonical
// codes are merged so their table is computed once (the paper's
// symmetry exploitation, e.g. the two arms of U7-2).
func Build(t *tmpl.Template, strategy Strategy, share bool) (*Tree, error) {
	return BuildRooted(t, strategy, share, -1)
}

// BuildRooted is Build with an explicit template root vertex (or -1 to
// let the strategy choose). Rooting at a specific vertex makes the DP's
// per-vertex root-table sums count embeddings in which that vertex plays
// the root's role — the basis of graphlet-degree computation.
func BuildRooted(t *tmpl.Template, strategy Strategy, share bool, rootVertex int) (*Tree, error) {
	k := t.K()
	if k < 1 {
		return nil, fmt.Errorf("part: empty template")
	}
	if !t.IsTree() {
		// Single-edge cuts only disconnect trees, and the rooted AHU codes
		// driving table sharing are undefined on cycles. Non-tree templates
		// run through the tree-decomposition DP instead (internal/dp bag
		// engine); they never reach the partition machinery.
		return nil, fmt.Errorf("part: template %s is not a tree (%d edges on %d vertices); non-tree templates use the tree-decomposition DP", t.Name(), t.NumEdges(), k)
	}
	if rootVertex >= k {
		return nil, fmt.Errorf("part: root vertex %d out of range for k=%d", rootVertex, k)
	}
	b := &builder{t: t, strategy: strategy}

	if rootVertex < 0 {
		rootVertex = chooseTemplateRoot(t, strategy)
	}
	verts := make([]int, k)
	for i := range verts {
		verts[i] = i
	}
	root := b.partition(verts, rootVertex)

	tree := &Tree{Template: t, Strategy: strategy, Shared: share, Root: root}
	if share {
		merge := map[string]*Node{}
		root = dedup(root, merge)
		tree.Root = root
	}
	collect(tree)
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("part: built invalid tree: %w", err)
	}
	return tree, nil
}

// MustBuild is Build for known-valid inputs; it panics on error.
func MustBuild(t *tmpl.Template, strategy Strategy, share bool) *Tree {
	tr, err := Build(t, strategy, share)
	if err != nil {
		panic(err)
	}
	return tr
}

type builder struct {
	t        *tmpl.Template
	strategy Strategy
	nextID   int
}

// chooseTemplateRoot picks the root of the whole template: a leaf for
// one-at-a-time (the first cut then peels the root itself, so the active
// child of the full template is a single vertex) and a centroid for
// balanced cuts.
func chooseTemplateRoot(t *tmpl.Template, s Strategy) int {
	if s == Balanced {
		return t.Centroids()[0]
	}
	for v := 0; v < t.K(); v++ {
		if t.Degree(v) == 1 {
			return v
		}
	}
	return 0 // k == 1
}

// partition recursively splits the subtemplate induced on verts, rooted
// at root, returning its node.
func (b *builder) partition(verts []int, root int) *Node {
	sort.Ints(verts)
	n := &Node{ID: b.nextID, Verts: verts, Root: root}
	b.nextID++
	n.Code = b.encode(verts, root)
	if len(verts) == 1 {
		return n
	}
	cut := b.chooseCut(verts, root)
	passiveVerts := b.subtreeAcross(verts, root, cut)
	passiveSet := map[int]bool{}
	for _, v := range passiveVerts {
		passiveSet[v] = true
	}
	activeVerts := make([]int, 0, len(verts)-len(passiveVerts))
	for _, v := range verts {
		if !passiveSet[v] {
			activeVerts = append(activeVerts, v)
		}
	}
	n.Active = b.partition(activeVerts, root)
	n.Passive = b.partition(passiveVerts, cut)
	return n
}

// neighborsIn returns root's template neighbors restricted to the
// subtemplate vertex set.
func (b *builder) neighborsIn(verts []int, v int) []int {
	in := map[int]bool{}
	for _, w := range verts {
		in[w] = true
	}
	var out []int
	for _, u := range b.t.Adj(v) {
		if in[int(u)] {
			out = append(out, int(u))
		}
	}
	return out
}

// subtreeAcross returns the vertices of the component containing
// neighbor after removing edge (root, neighbor) from the subtemplate.
func (b *builder) subtreeAcross(verts []int, root, neighbor int) []int {
	in := map[int]bool{}
	for _, w := range verts {
		in[w] = true
	}
	seen := map[int]bool{neighbor: true, root: true}
	stack := []int{neighbor}
	out := []int{neighbor}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range b.t.Adj(v) {
			w := int(u)
			if in[w] && !seen[w] {
				seen[w] = true
				out = append(out, w)
				stack = append(stack, w)
			}
		}
	}
	return out
}

// chooseCut picks which of root's incident edges to cut, returning the
// far endpoint (the passive child's root).
func (b *builder) chooseCut(verts []int, root int) int {
	nbrs := b.neighborsIn(verts, root)
	if len(nbrs) == 1 {
		// Forced: cutting root's only edge makes the active child the
		// single vertex {root} — the specialization one-at-a-time chases.
		return nbrs[0]
	}
	best := nbrs[0]
	bestSize := len(b.subtreeAcross(verts, root, nbrs[0]))
	for _, u := range nbrs[1:] {
		s := len(b.subtreeAcross(verts, root, u))
		better := false
		switch b.strategy {
		case OneAtATime:
			// Peel the smallest subtree (ideally a single leaf).
			better = s < bestSize
		case Balanced:
			half := len(verts) / 2
			better = abs(s-half) < abs(bestSize-half)
		}
		if better {
			best, bestSize = u, s
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// encode computes the label-aware AHU code of the subtemplate induced on
// verts, rooted at root.
func (b *builder) encode(verts []int, root int) string {
	in := map[int]bool{}
	for _, v := range verts {
		in[v] = true
	}
	var rec func(v, parent int) string
	rec = func(v, parent int) string {
		var kids []string
		for _, u := range b.t.Adj(v) {
			w := int(u)
			if w != parent && in[w] {
				kids = append(kids, rec(w, v))
			}
		}
		sort.Strings(kids)
		out := ""
		if b.t.Labeled() {
			out = fmt.Sprintf("%d", b.t.Label(v))
		}
		out += "("
		for _, kid := range kids {
			out += kid
		}
		return out + ")"
	}
	return rec(root, -1)
}

// dedup merges nodes with identical rooted codes bottom-up, counting
// consumers on the survivors.
func dedup(n *Node, merge map[string]*Node) *Node {
	if existing, ok := merge[n.Code]; ok {
		existing.Consumers++
		return existing
	}
	if !n.IsLeaf() {
		n.Active = dedup(n.Active, merge)
		n.Passive = dedup(n.Passive, merge)
	}
	n.Consumers = 1
	merge[n.Code] = n
	return n
}

// collect fills tree.Nodes and tree.Order (post-order, children before
// parents) and normalizes Consumers for the unshared case.
func collect(tree *Tree) {
	seen := map[*Node]bool{}
	var order []*Node
	var rec func(n *Node)
	rec = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if !n.IsLeaf() {
			// Evaluate the larger child first (Sethi–Ullman style): the
			// smaller one is then produced immediately before this node
			// consumes it, which keeps the number of live tables at the
			// "at most four" the paper reports.
			first, second := n.Active, n.Passive
			if second.Size() > first.Size() {
				first, second = second, first
			}
			rec(first)
			rec(second)
		}
		order = append(order, n)
	}
	rec(tree.Root)
	tree.Order = order
	tree.Nodes = order
	if !tree.Shared {
		for _, n := range tree.Nodes {
			n.Consumers = 1
		}
	}
	// The root has no parents; its dedup-assigned count of 1 (or the
	// unshared default) stands in for a consumer that does not exist.
	tree.Root.Consumers = 0
	// Renumber IDs in evaluation order for stable diagnostics.
	for i, n := range tree.Order {
		n.ID = i
	}
}

// Validate checks the structural invariants of the partition tree.
func (t *Tree) Validate() error {
	k := t.Template.K()
	if t.Root.Size() != k {
		return fmt.Errorf("root covers %d of %d vertices", t.Root.Size(), k)
	}
	pos := map[*Node]int{}
	for i, n := range t.Order {
		pos[n] = i
	}
	for _, n := range t.Nodes {
		inVerts := map[int]bool{}
		for _, v := range n.Verts {
			inVerts[v] = true
		}
		if !inVerts[n.Root] {
			return fmt.Errorf("node %d: root %d not among vertices %v", n.ID, n.Root, n.Verts)
		}
		if n.IsLeaf() {
			if n.Size() != 1 {
				return fmt.Errorf("node %d: leaf with %d vertices", n.ID, n.Size())
			}
			continue
		}
		if n.Passive == nil {
			return fmt.Errorf("node %d: active child without passive", n.ID)
		}
		if pos[n.Active] >= pos[n] || pos[n.Passive] >= pos[n] {
			return fmt.Errorf("node %d: children do not precede it in evaluation order", n.ID)
		}
		// Vertex-identity invariants only hold without sharing: a merged
		// node stands for an isomorphic shape, not specific vertices.
		if !t.Shared && n.Active.Root != n.Root {
			return fmt.Errorf("node %d: active child root %d != %d", n.ID, n.Active.Root, n.Root)
		}
		if n.Active.Size()+n.Passive.Size() != n.Size() {
			return fmt.Errorf("node %d: children sizes %d+%d != %d", n.ID, n.Active.Size(), n.Passive.Size(), n.Size())
		}
		if !t.Shared {
			// Without sharing the children literally partition the
			// vertex set and the cut edge must exist in the template.
			seen := map[int]bool{}
			for _, v := range n.Active.Verts {
				seen[v] = true
			}
			for _, v := range n.Passive.Verts {
				if seen[v] {
					return fmt.Errorf("node %d: children overlap at %d", n.ID, v)
				}
				seen[v] = true
			}
			for _, v := range n.Verts {
				if !seen[v] {
					return fmt.Errorf("node %d: vertex %d missing from children", n.ID, v)
				}
			}
			cutOK := false
			for _, u := range t.Template.Adj(n.Root) {
				if int(u) == n.Passive.Root {
					cutOK = true
				}
			}
			if !cutOK {
				return fmt.Errorf("node %d: cut edge (%d,%d) not in template", n.ID, n.Root, n.Passive.Root)
			}
		}
	}
	return nil
}

// Cost models the work and memory of running the DP with this tree.
type Cost struct {
	// Work is the paper's operation-count model: the sum over internal
	// nodes of C(k, |S|) * C(|S|, |active|), to be multiplied by the edge
	// count of the data graph.
	Work int64
	// TableEntries is the total number of color-set slots across all
	// unique node tables (× n vertices for the dense layout).
	TableEntries int64
	// PeakLiveEntries is the maximum, over the evaluation schedule with
	// eager release, of the summed color-set slots of live tables.
	PeakLiveEntries int64
	// PeakLiveTables is the maximum number of simultaneously live tables.
	PeakLiveTables int
}

// Model evaluates the cost model for k colors.
func (t *Tree) Model(k int) Cost {
	var c Cost
	live := map[*Node]int64{}
	remaining := map[*Node]int{}
	for _, n := range t.Nodes {
		remaining[n] = n.Consumers
	}
	var cur int64
	for _, n := range t.Order {
		slots := comb.Binomial(k, n.Size())
		c.TableEntries += slots
		if !n.IsLeaf() {
			c.Work += comb.Binomial(k, n.Size()) * comb.Binomial(n.Size(), n.Active.Size())
		}
		live[n] = slots
		cur += slots
		if cur > c.PeakLiveEntries {
			c.PeakLiveEntries = cur
		}
		if len(live) > c.PeakLiveTables {
			c.PeakLiveTables = len(live)
		}
		if !n.IsLeaf() {
			for _, ch := range []*Node{n.Active, n.Passive} {
				remaining[ch]--
				if remaining[ch] == 0 {
					cur -= live[ch]
					delete(live, ch)
				}
			}
		}
	}
	return c
}

// String renders the tree structure for diagnostics.
func (t *Tree) String() string {
	out := fmt.Sprintf("partition of %s (%s, shared=%v):\n", t.Template.Name(), t.Strategy, t.Shared)
	for _, n := range t.Order {
		if n.IsLeaf() {
			out += fmt.Sprintf("  node %d: leaf vertex %d (consumers %d)\n", n.ID, n.LeafVertex(), n.Consumers)
		} else {
			out += fmt.Sprintf("  node %d: verts %v root %d active=%d passive=%d (consumers %d)\n",
				n.ID, n.Verts, n.Root, n.Active.ID, n.Passive.ID, n.Consumers)
		}
	}
	return out
}

// Dot renders the partition tree in Graphviz DOT format: each node shows
// its subtemplate vertices and root, with edges to its active (solid) and
// passive (dashed) children.
func (t *Tree) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph partition {\n  node [shape=box];\n")
	for _, n := range t.Order {
		if n.IsLeaf() {
			fmt.Fprintf(&sb, "  n%d [label=\"leaf %d\"];\n", n.ID, n.LeafVertex())
		} else {
			fmt.Fprintf(&sb, "  n%d [label=\"%v root=%d\"];\n", n.ID, n.Verts, n.Root)
			fmt.Fprintf(&sb, "  n%d -> n%d [label=a];\n", n.ID, n.Active.ID)
			fmt.Fprintf(&sb, "  n%d -> n%d [label=p, style=dashed];\n", n.ID, n.Passive.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
