package part

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tmpl"
)

func TestBuildPathOneAtATime(t *testing.T) {
	tree := MustBuild(tmpl.Path(5), OneAtATime, false)
	if tree.Root.Size() != 5 {
		t.Fatalf("root size %d", tree.Root.Size())
	}
	// One-at-a-time on a path rooted at an end: every internal node's
	// active child is the single root vertex.
	for _, n := range tree.Nodes {
		if !n.IsLeaf() && n.Active.Size() != 1 {
			t.Errorf("node %d: active size %d, want 1 on a path", n.ID, n.Active.Size())
		}
	}
	// Unshared full binary partition over k leaves has 2k-1 nodes.
	if len(tree.Nodes) != 9 {
		t.Fatalf("path-5 partition has %d nodes, want 9", len(tree.Nodes))
	}
}

func TestBuildSingleVertex(t *testing.T) {
	tree := MustBuild(tmpl.MustTree("k1", 1, nil, nil), OneAtATime, false)
	if !tree.Root.IsLeaf() || len(tree.Order) != 1 {
		t.Fatal("single-vertex template should be a lone leaf")
	}
}

func TestBuildBalancedSplitsEvenly(t *testing.T) {
	tree := MustBuild(tmpl.Path(12), Balanced, false)
	a, p := tree.Root.Active.Size(), tree.Root.Passive.Size()
	if a+p != 12 {
		t.Fatalf("children sizes %d+%d", a, p)
	}
	if a < 4 || a > 8 {
		t.Errorf("balanced top cut %d/%d not near-even", a, p)
	}
}

func TestEvaluationOrderChildrenFirst(t *testing.T) {
	for _, s := range []Strategy{OneAtATime, Balanced} {
		tree := MustBuild(tmpl.MustNamed("U12-2"), s, false)
		pos := map[*Node]int{}
		for i, n := range tree.Order {
			pos[n] = i
		}
		for _, n := range tree.Nodes {
			if !n.IsLeaf() && (pos[n.Active] > pos[n] || pos[n.Passive] > pos[n]) {
				t.Fatalf("%v: children after parent in order", s)
			}
		}
	}
}

func TestSharingMergesSymmetricArms(t *testing.T) {
	u72 := tmpl.MustNamed("U7-2")
	unshared := MustBuild(u72, OneAtATime, false)
	shared := MustBuild(u72, OneAtATime, true)
	if len(shared.Nodes) >= len(unshared.Nodes) {
		t.Fatalf("sharing did not shrink U7-2: %d vs %d nodes", len(shared.Nodes), len(unshared.Nodes))
	}
	// All unlabeled leaves collapse to one under sharing.
	leaves := 0
	for _, n := range shared.Nodes {
		if n.IsLeaf() {
			leaves++
		}
	}
	if leaves != 1 {
		t.Fatalf("shared unlabeled tree has %d leaf nodes, want 1", leaves)
	}
}

func TestSharedConsumerCounts(t *testing.T) {
	tree := MustBuild(tmpl.MustNamed("U7-2"), OneAtATime, true)
	if tree.Root.Consumers != 0 {
		t.Fatalf("root consumers = %d, want 0", tree.Root.Consumers)
	}
	// Total consumer references must equal total child slots (2 per
	// internal node).
	internal := 0
	totalConsumers := 0
	for _, n := range tree.Nodes {
		if !n.IsLeaf() {
			internal++
		}
		totalConsumers += n.Consumers
	}
	if totalConsumers != 2*internal {
		t.Fatalf("consumer refs %d != 2×internal %d", totalConsumers, 2*internal)
	}
}

func TestLabeledCodesPreventBadSharing(t *testing.T) {
	labeled, err := tmpl.Star(5).WithLabels("ls", []int32{0, 1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	tree := MustBuild(labeled, OneAtATime, true)
	// Leaves with labels 1 and 2 must stay distinct; so >= 3 leaf nodes
	// (root-label leaf may or may not appear depending on cuts).
	kinds := map[string]bool{}
	for _, n := range tree.Nodes {
		if n.IsLeaf() {
			kinds[n.Code] = true
		}
	}
	if len(kinds) < 2 {
		t.Fatalf("labeled leaves merged: %v", kinds)
	}
}

// TestPartitionInvariantsProperty builds partition trees for random trees
// under both strategies and validates all invariants.
func TestPartitionInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(11)
		edges := make([][2]int, 0, k-1)
		for v := 1; v < k; v++ {
			edges = append(edges, [2]int{rng.Intn(v), v})
		}
		tr := tmpl.MustTree("r", k, edges, nil)
		for _, s := range []Strategy{OneAtATime, Balanced} {
			for _, share := range []bool{false, true} {
				tree, err := Build(tr, s, share)
				if err != nil {
					return false
				}
				if err := tree.Validate(); err != nil {
					return false
				}
				// Leaves must cover every template vertex (unshared).
				if !share {
					covered := map[int]bool{}
					for _, n := range tree.Nodes {
						if n.IsLeaf() {
							covered[n.LeafVertex()] = true
						}
					}
					if len(covered) != k {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModelCosts(t *testing.T) {
	k := 7
	tree := MustBuild(tmpl.MustNamed("U7-1"), OneAtATime, false)
	c := tree.Model(k)
	if c.Work <= 0 || c.TableEntries <= 0 {
		t.Fatalf("degenerate cost %+v", c)
	}
	// The paper: at most ~4 subtemplate tables need to be live at once.
	if c.PeakLiveTables > 4 {
		t.Errorf("peak live tables %d > 4 for a path", c.PeakLiveTables)
	}
	// Eager release must beat keeping everything.
	if c.PeakLiveEntries > c.TableEntries {
		t.Fatal("peak exceeds total")
	}
}

func TestModelBalancedVsOneAtATime(t *testing.T) {
	// For large templates balanced partitioning should not increase the
	// multiplicative work model dramatically; one-at-a-time should keep
	// peak live tables small. This documents the trade-off from §III-D.
	u12 := tmpl.MustNamed("U12-1")
	oat := MustBuild(u12, OneAtATime, false).Model(12)
	bal := MustBuild(u12, Balanced, false).Model(12)
	if oat.PeakLiveTables > 4 {
		t.Errorf("one-at-a-time peak live tables = %d", oat.PeakLiveTables)
	}
	if bal.Work <= 0 || oat.Work <= 0 {
		t.Fatal("work model degenerate")
	}
}

func TestStringRenders(t *testing.T) {
	tree := MustBuild(tmpl.Path(3), OneAtATime, false)
	s := tree.String()
	if s == "" || tree.Strategy.String() != "one-at-a-time" {
		t.Fatal("diagnostics broken")
	}
	if Balanced.String() != "balanced" || Strategy(9).String() == "" {
		t.Fatal("strategy strings broken")
	}
}

func TestDotExport(t *testing.T) {
	tree := MustBuild(tmpl.MustNamed("U5-2"), OneAtATime, false)
	dot := tree.Dot()
	if !strings.Contains(dot, "digraph partition") || !strings.Contains(dot, "leaf") {
		t.Fatalf("malformed dot output:\n%s", dot)
	}
	// One arrow pair per internal node.
	internal := 0
	for _, n := range tree.Nodes {
		if !n.IsLeaf() {
			internal++
		}
	}
	if got := strings.Count(dot, "->"); got != 2*internal {
		t.Fatalf("dot has %d edges, want %d", got, 2*internal)
	}
}
