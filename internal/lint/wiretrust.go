package lint

import (
	"go/ast"
	"go/token"
)

// WireTrust is the taint analyzer for the packages that parse bytes
// nobody vouched for: internal/shard (the TCP wire), internal/serve
// (HTTP bodies), and internal/graph (binary file headers). Any integer
// decoded from a net.Conn, bufio.Reader, HTTP body, or file header is
// tainted; it must flow through an explicit bounds comparison before
// it sizes a make, indexes a slice, bounds a slice expression, or
// budgets an io read — the exact bug class the ReadBinary fuzz crash
// exposed (a hostile length prefix forcing an unbounded allocation).
//
// The analysis is interprocedural through the flow engine's function
// summaries: a length decoded by rbuf.u32 is tainted at every call
// site because u32's summary says its result is wire-derived, and a
// tainted length passed to a helper that allocates with it unchecked
// is reported at the call site because the helper's summary says the
// parameter reaches a sink. Comparisons sanitize branch-insensitively
// (comparing a value anywhere, including a loop bound, counts), so the
// analyzer enforces "a check exists", not "the check is tight" — bound
// quality stays a review concern.
var WireTrust = &Analyzer{
	Name: "wiretrust",
	Doc:  "wire-decoded integer reaches make/index/read sizing without a bounds comparison (the ReadBinary fuzz-crash class)",
	Run:  runWireTrust,
}

// wireTrustPkgs are the package suffixes where untrusted bytes enter
// the process.
var wireTrustPkgs = []string{
	"internal/shard",
	"internal/serve",
	"internal/graph",
}

func runWireTrust(pass *Pass) {
	gated := false
	for _, s := range wireTrustPkgs {
		if pathHasSuffix(pass.Pkg.Path, s) {
			gated = true
			break
		}
	}
	if !gated {
		return
	}
	eng := newFlowEngine(pass.Pkg)
	eng.ensureWireSummaries()
	report := func(pos token.Pos, msg string) {
		pass.Reportf(pos, "%s", msg)
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			w := eng.newWalker(modeFull, report)
			w.analyzeFunc(fd)
		}
	}
}
