package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// GoLeak is the static twin of the runtime goroutine-leak checks in
// the serve/shard smoke tests: every `go func` in internal/serve,
// internal/shard, and internal/dist must have a statically-reachable
// exit on ctx.Done, a stop signal, or a connection close, and every
// context.WithCancel/WithTimeout/WithDeadline must have its cancel
// function used on all paths (called, deferred, or handed off — never
// discarded).
//
// Loop classification, tuned to this codebase:
//
//   - `for range ch` exits when the channel closes — always fine (the
//     writeLoop shape);
//   - a conditional `for cond {}` loop can exit when the condition
//     flips — accepted;
//   - an unconditional `for {}` loop must contain a reachable exit (a
//     return, or a break/goto that leaves the loop) — otherwise the
//     goroutine runs forever;
//   - an unconditional loop that *blocks* (select, channel send or
//     receive, or a Read/Recv/Accept/Wait-shaped call) must also show
//     a shutdown edge: a cancellation poll (ctx.Err/Done, an armed
//     atomic flag, stopped()/cancelled()/stopRequested), a receive
//     from a stop-named channel, a select case on ctx.Done(), or the
//     conn-close idiom (a read-shaped call whose error path returns).
//
// The check follows `go m.loop()` one call level into in-package
// declarations, so hiding the loop in a method does not hide the leak.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutine without a statically-reachable exit on ctx.Done/stop/conn-close, or a context cancel func not used on all paths",
	Run:  runGoLeak,
}

var goLeakPkgs = []string{
	"internal/serve",
	"internal/shard",
	"internal/dist",
}

func runGoLeak(pass *Pass) {
	gated := false
	for _, s := range goLeakPkgs {
		if pathHasSuffix(pass.Pkg.Path, s) {
			gated = true
			break
		}
	}
	if !gated {
		return
	}
	idx := newFuncIndex(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLostCancel(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, idx, gs)
				return true
			})
		}
	}
}

// checkGoStmt inspects one launched goroutine: its literal body, or —
// one call level deep — the body of the in-package function it names.
func checkGoStmt(pass *Pass, idx *funcIndex, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	callee := ""
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else {
		fd, _ := idx.callee(gs.Call)
		if fd == nil {
			return // external or dynamic target: out of scope
		}
		body = fd.Body
		callee = fd.Name.Name
	}
	if body == nil {
		return
	}
	checkGoroutineLoops(pass, idx, gs, body, callee, true)
}

// checkGoroutineLoops flags non-exiting loops in a goroutine body.
// When the body is a literal it also follows calls one level into
// in-package declarations (follow=true guards against recursing
// further).
func checkGoroutineLoops(pass *Pass, idx *funcIndex, gs *ast.GoStmt, body *ast.BlockStmt, callee string, follow bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure is not this goroutine's control flow
		case *ast.CallExpr:
			if !follow {
				return true
			}
			if fd, _ := idx.callee(n); fd != nil && fd.Body != nil {
				checkGoroutineLoops(pass, idx, gs, fd.Body, fd.Name.Name, false)
			}
			return true
		case *ast.ForStmt:
			if n.Cond != nil {
				return true // can exit when the condition flips
			}
			checkInfiniteLoop(pass, gs, n, callee)
			return true
		}
		return true
	})
}

func checkInfiniteLoop(pass *Pass, gs *ast.GoStmt, loop *ast.ForStmt, callee string) {
	where := ""
	if callee != "" {
		where = " (in " + callee + ", launched at " +
			pass.Pkg.Fset.Position(gs.Pos()).String() + ")"
	}
	pos := loop.Pos()
	if !loopHasExit(loop) {
		pass.Reportf(pos,
			"goroutine loop has no reachable exit%s; add a return on ctx.Done/stop/conn-close so shutdown does not leak it", where)
		return
	}
	if loopBlocks(loop.Body) && !loopHasShutdownEdge(pass, loop.Body) {
		pass.Reportf(pos,
			"blocking goroutine loop exits only on data conditions%s; add a ctx.Done/stop-channel/conn-close edge so shutdown does not leak it", where)
	}
}

// loopHasExit reports whether the loop body contains a statement that
// leaves the loop: a return, a break binding to this loop, or a goto
// (assumed outward). Breaks inside nested loops, selects, or switches
// bind to those, not to this loop; returns inside nested func literals
// leave the literal, not the loop.
func loopHasExit(loop *ast.ForStmt) bool {
	// Collect this loop's labels so `break label` resolves.
	found := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			switch n.Tok {
			case token.GOTO:
				found = true // assume the target is outside the loop
			case token.BREAK:
				if breakable || n.Label != nil {
					found = true
				}
			}
			return
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt:
			// An unlabeled break inside binds to the inner statement.
			ast.Inspect(n, func(m ast.Node) bool {
				if found || m == n {
					return !found
				}
				switch m := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.ReturnStmt:
					found = true
					return false
				case *ast.BranchStmt:
					if m.Tok == token.GOTO || (m.Tok == token.BREAK && m.Label != nil) {
						found = true
						return false
					}
				}
				return true
			})
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			walk(m, breakable)
			return false
		})
	}
	for _, s := range loop.Body.List {
		walk(s, true)
		if found {
			return true
		}
	}
	return false
}

// loopBlocks reports whether the loop body can block indefinitely:
// a select, a channel operation, or a Read/Recv/Accept/Wait-shaped
// call (ignoring nested func literals).
func loopBlocks(body *ast.BlockStmt) bool {
	blocking := false
	ast.Inspect(body, func(n ast.Node) bool {
		if blocking {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocking = true
			}
		case *ast.RangeStmt:
			return false // range-over-channel exits on close; handled as its own loop
		case *ast.CallExpr:
			name := calleeName(n)
			for _, p := range []string{"Read", "read", "Recv", "recv", "Accept", "Wait"} {
				if strings.HasPrefix(name, p) {
					blocking = true
					break
				}
			}
		}
		return !blocking
	})
	return blocking
}

// stopChannelName matches the project's shutdown-channel vocabulary.
func stopChannelName(name string) bool {
	lower := strings.ToLower(name)
	for _, s := range []string{"done", "stop", "quit", "clos", "broken", "exit", "drain"} {
		if strings.Contains(lower, s) {
			return true
		}
	}
	return false
}

// loopHasShutdownEdge reports whether the loop shows a recognized path
// out at shutdown: a cancellation poll (ctxpoll's vocabulary), a
// receive from a stop-named channel or ctx.Done(), or the conn-close
// idiom (a read-shaped call plus a return for its error path).
func loopHasShutdownEdge(pass *Pass, body *ast.BlockStmt) bool {
	if containsPoll(body, pass.Pkg.Info) {
		return true
	}
	found := false
	hasReadish, hasReturn := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			hasReturn = true
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			switch x := ast.Unparen(n.X).(type) {
			case *ast.Ident:
				if stopChannelName(x.Name) {
					found = true
				}
			case *ast.SelectorExpr:
				if stopChannelName(x.Sel.Name) {
					found = true
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
					found = true // <-ctx.Done() (typed check happens in containsPoll; any .Done() counts here)
				}
			}
		case *ast.CallExpr:
			name := calleeName(n)
			for _, p := range []string{"Read", "read", "Recv", "recv", "Accept"} {
				if strings.HasPrefix(name, p) {
					hasReadish = true
					break
				}
			}
		}
		return !found
	})
	return found || (hasReadish && hasReturn)
}

// checkLostCancel flags context.WithCancel/WithTimeout/WithDeadline
// results whose cancel function is discarded or never used.
func checkLostCancel(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := identObj(info, sel.Sel)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			return true
		}
		switch obj.Name() {
		case "WithCancel", "WithTimeout", "WithDeadline":
		default:
			return true
		}
		id, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(id.Pos(),
				"%s's cancel function is discarded; the derived context (and its timer) leaks — call or defer it", obj.Name())
			return true
		}
		cobj := info.Defs[id]
		if cobj == nil {
			return true // reassignment of an existing var: assume managed
		}
		used := false
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			if u, ok := m.(*ast.Ident); ok && u != id && info.Uses[u] == cobj {
				used = true
			}
			return !used
		})
		if !used {
			pass.Reportf(id.Pos(),
				"%s's cancel function %s is never used; call or defer it on every path so the derived context does not leak", obj.Name(), id.Name)
		}
		return true
	})
}
