package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages under FASCIA's bit-identity
// contract: the color-coding DP must sum in a fixed order so that every
// layout × kernel × batch × parallel combination (and every cache
// lookup keyed on Options.Fingerprint) reproduces the same estimate
// stream bit for bit. Unordered map iteration anywhere on those paths
// is a latent nondeterminism bug.
var deterministicPkgs = []string{
	"internal/dp",
	"internal/table",
	"internal/comb",
	"internal/serve",
}

func inDeterministicPkg(path string) bool {
	for _, s := range deterministicPkgs {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// MapOrder flags `for range` over map-typed values in the
// determinism-critical packages. Go randomizes map iteration order, so
// any map walk that feeds floating-point accumulation, table merging,
// serialization, or stats assembly silently breaks the bit-identity
// contract the kernel-equivalence and cache tests pin. Iterate a sorted
// key slice instead, or suppress with a reason proving the loop is
// order-insensitive (e.g. it only releases resources or feeds an
// integer sum).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map in a determinism-critical package (breaks the bit-identical estimate stream)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !inDeterministicPkg(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true // partial type info (broken package): skip
			}
			t := tv.Type.Underlying()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem().Underlying()
			}
			if _, ok := t.(*types.Map); ok {
				pass.Reportf(rs.For,
					"range over map %s iterates in nondeterministic order, which can break the bit-identical estimate stream; range over sorted keys instead (or suppress with a reason why order cannot matter)",
					exprString(rs.X))
			}
			return true
		})
	}
}
