package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces mutex discipline declared in the source: a struct
// field whose doc or line comment contains "guarded by <mu>" may only
// be touched inside functions that lexically take that lock. A function
// satisfies the analyzer when it
//
//   - calls <mu>.Lock() or <mu>.RLock() somewhere in its body (the
//     usual lock/defer-unlock shape),
//   - is a constructor (it builds the owning struct with a composite
//     literal, so nothing else can hold a reference yet),
//   - is named with a Locked suffix, or documents "caller holds <mu>"
//     (the helper-under-lock convention, e.g. Cache.evict), or
//   - carries a //lint:guardedby suppression with a reason.
//
// The check is lexical, not a happens-before proof — the race detector
// still owns the deep end — but it catches the classic regression where
// a new accessor forgets the lock entirely, which -race only sees if a
// test happens to race it. internal/serve's cache, registry, and drain
// state carry these annotations today.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "access to a '// guarded by <mu>' field in a function that never takes that lock",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
var callerHoldsRe = regexp.MustCompile(`(?i)caller\s+(must\s+)?(already\s+)?holds?\b`)

// guardedField records one annotated field.
type guardedField struct {
	guard string       // mutex field name, e.g. "mu" or "drainMu"
	owner *types.Named // the struct's named type, when resolvable
}

func runGuardedBy(pass *Pass) {
	info := pass.Pkg.Info
	guarded := map[types.Object]guardedField{} // field object -> guard

	// Pass 1: collect annotated fields from every struct declaration.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			var owner *types.Named
			if obj := info.Defs[ts.Name]; obj != nil {
				if named, ok := obj.Type().(*types.Named); ok {
					owner = named
				}
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guarded[obj] = guardedField{guard: guard, owner: owner}
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}

	// Pass 2: check accesses function by function.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locked := lockedMutexNames(fd.Body)
			callerHolds := docDeclaresCallerHolds(fd)
			isLockedHelper := strings.HasSuffix(fd.Name.Name, "Locked")
			constructed := constructedTypes(fd.Body, info)

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil {
					return true
				}
				gf, ok := guarded[obj]
				if !ok {
					return true
				}
				if locked[gf.guard] || isLockedHelper {
					return true
				}
				if callerHolds != "" && strings.Contains(callerHolds, gf.guard) {
					return true
				}
				if gf.owner != nil && constructed[gf.owner] {
					return true
				}
				pass.Reportf(id.Pos(),
					"access to %s (guarded by %s) in %s, which never locks %s; take the lock, add a Locked suffix / 'caller holds %s' doc for helpers called under it, or suppress with a reason",
					fieldRef(gf, obj), gf.guard, fd.Name.Name, gf.guard, gf.guard)
				return true
			})
		}
	}
}

func fieldRef(gf guardedField, obj types.Object) string {
	if gf.owner != nil {
		return gf.owner.Obj().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "" when unannotated.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexNames collects the terminal field names on which .Lock()
// or .RLock() is called anywhere in the body (c.mu.Lock() -> "mu").
func lockedMutexNames(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			out[recv.Sel.Name] = true
		case *ast.Ident:
			out[recv.Name] = true
		}
		return true
	})
	return out
}

// docDeclaresCallerHolds returns the function's doc text when it
// documents a caller-holds-the-lock contract, else "".
func docDeclaresCallerHolds(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	text := fd.Doc.Text()
	if callerHoldsRe.MatchString(text) {
		return text
	}
	return ""
}

// constructedTypes collects named struct types built with a composite
// literal in this function — the constructor exemption: until the value
// escapes, no lock can be needed.
func constructedTypes(body *ast.BlockStmt, info *types.Info) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := info.Types[cl]
		if !ok || tv.Type == nil {
			return true
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			out[named] = true
		}
		return true
	})
	return out
}
