package lint

import (
	"strings"
	"testing"
)

func TestParseEscapeOutput(t *testing.T) {
	out := `
# repro/internal/dp
internal/dp/lane8.go:30:12: make([]float64, n) escapes to heap
internal/dp/lane8.go:31:2: inlining call to addTo
internal/dp/kernel.go:44:7: s does not escape
internal/table/bulk8.go:14:6: moved to heap: acc
not a diagnostic line
internal/dp/bad.go:xx:1: escapes to heap
`
	diags := ParseEscapeOutput(out)
	if len(diags) != 2 {
		t.Fatalf("expected 2 diagnostics, got %d: %v", len(diags), diags)
	}
	if diags[0].File != "internal/dp/lane8.go" || diags[0].Line != 30 || diags[0].Col != 12 {
		t.Errorf("bad first diagnostic: %+v", diags[0])
	}
	if !strings.Contains(diags[0].Msg, "escapes to heap") {
		t.Errorf("bad first message: %q", diags[0].Msg)
	}
	if diags[1].File != "internal/table/bulk8.go" || diags[1].Line != 14 {
		t.Errorf("bad second diagnostic: %+v", diags[1])
	}
}

func TestEscapeFindings(t *testing.T) {
	ranges := []HotRange{
		{File: "/abs/repo/internal/dp/lane8.go", Start: 25, End: 40, Func: "laneMulAdd"},
	}
	diags := []EscapeDiag{
		{File: "internal/dp/lane8.go", Line: 30, Col: 12, Msg: "make([]float64, n) escapes to heap"},
		{File: "internal/dp/lane8.go", Line: 50, Col: 1, Msg: "escapes to heap"}, // outside the range
		{File: "internal/dp/other.go", Line: 30, Col: 1, Msg: "escapes to heap"}, // other file
	}
	got := EscapeFindings(ranges, diags)
	if len(got) != 1 {
		t.Fatalf("expected 1 finding, got %d: %v", len(got), got)
	}
	f := got[0]
	if f.Analyzer != "hotalloc" || f.Pos.Line != 30 || f.Pos.Column != 12 {
		t.Errorf("bad finding: %+v", f)
	}
	if !strings.Contains(f.Message, "laneMulAdd") {
		t.Errorf("finding does not name the hotpath function: %s", f.Message)
	}
}

// TestHotpathRanges checks the //fascia:hotpath extents against the
// hotalloc fixture, which annotates three functions.
func TestHotpathRanges(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.Load(fixturePrefix + "hotalloc/internal/dp")
	if err != nil {
		t.Fatal(err)
	}
	ranges := HotpathRanges([]*Package{pkg})
	byFunc := map[string]HotRange{}
	for _, r := range ranges {
		byFunc[r.Func] = r
	}
	for _, fn := range []string{"hotBad", "hotClean", "hotSuppressed"} {
		r, ok := byFunc[fn]
		if !ok {
			t.Errorf("missing hotpath range for %s (got %v)", fn, ranges)
			continue
		}
		if r.Start <= 0 || r.End < r.Start || r.File == "" {
			t.Errorf("degenerate range for %s: %+v", fn, r)
		}
	}
	if len(ranges) != 3 {
		t.Errorf("expected 3 hotpath ranges, got %d", len(ranges))
	}
}
