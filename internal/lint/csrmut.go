package lint

import (
	"go/ast"
	"go/types"
)

// csrOwnerPkgs may legitimately construct and mutate CSR storage.
var csrOwnerPkgs = []string{"internal/graph", "internal/gen"}

// CSRMut guards the registry's shared-graph contract: once a graph is
// registered with fasciad it is served read-only to every concurrent
// query, so its CSR storage must never be written outside the packages
// that build graphs (internal/graph, internal/gen). The CSR's offsets
// and adjacency slices are unexported (the compiler already walls them
// off), which leaves two mutation surfaces for the rest of the tree:
//
//   - the slice returned by (*graph.Graph).Adj(v), which aliases the
//     adjacency storage, and
//   - the exported Labels slice (elements or the header itself).
//
// The analyzer flags assignments, ++/--, and copy() targets through
// either surface, including through single-assignment local aliases
// (a := g.Adj(v); a[0] = x). Deeper aliasing (passing the slice to a
// function that writes it) is out of scope and covered by the runtime
// race/differential tests.
var CSRMut = &Analyzer{
	Name: "csrmut",
	Doc:  "write to shared CSR storage (Adj(v) slice or Labels) outside internal/graph and internal/gen",
	Run:  runCSRMut,
}

func runCSRMut(pass *Pass) {
	for _, owner := range csrOwnerPkgs {
		if pathHasSuffix(pass.Pkg.Path, owner) {
			return
		}
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCSRFunc(pass, fd.Body, info)
		}
	}
}

func checkCSRFunc(pass *Pass, body *ast.BlockStmt, info *types.Info) {
	// Pass 1: taint local variables directly bound to CSR storage
	// (a := g.Adj(v), ls := g.Labels, including slicings thereof).
	tainted := map[types.Object]bool{}
	for changed := true; changed; { // fixpoint for alias-of-alias chains
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !isCSRSource(rhs, info, tainted) {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Pass 2: flag writes through CSR storage.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if ref, ok := csrWriteTarget(lhs, info, tainted); ok {
					pass.Reportf(lhs.Pos(),
						"write to shared CSR storage %s outside internal/graph and internal/gen; registered graphs are immutable and shared across concurrent queries — build a new graph instead",
						ref)
				}
			}
		case *ast.IncDecStmt:
			if ref, ok := csrWriteTarget(st.X, info, tainted); ok {
				pass.Reportf(st.X.Pos(),
					"write to shared CSR storage %s outside internal/graph and internal/gen; registered graphs are immutable and shared across concurrent queries — build a new graph instead",
					ref)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 {
				if isCSRSource(st.Args[0], info, tainted) {
					pass.Reportf(st.Args[0].Pos(),
						"copy into shared CSR storage %s outside internal/graph and internal/gen; registered graphs are immutable and shared across concurrent queries",
						exprString(st.Args[0]))
				}
			}
		}
		return true
	})
}

// csrWriteTarget reports whether lhs writes into CSR storage and
// renders the offending reference. Element writes go through an index
// or slice of a CSR source; header writes assign g.Labels itself.
func csrWriteTarget(lhs ast.Expr, info *types.Info, tainted map[types.Object]bool) (string, bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if isCSRSource(e.X, info, tainted) {
			return exprString(e), true
		}
	case *ast.SliceExpr:
		if isCSRSource(e.X, info, tainted) {
			return exprString(e), true
		}
	case *ast.SelectorExpr:
		if isGraphLabels(e, info) {
			return exprString(e), true
		}
	}
	return "", false
}

// isCSRSource reports whether the expression evaluates to a slice that
// aliases CSR storage: g.Adj(v), g.Labels, a slicing of either, or a
// tainted local alias.
func isCSRSource(e ast.Expr, info *types.Info, tainted map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Adj" {
			return isGraphSelection(sel, info, "Adj")
		}
	case *ast.SelectorExpr:
		return isGraphLabels(e, info)
	case *ast.SliceExpr:
		return isCSRSource(e.X, info, tainted)
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && tainted[obj]
	}
	return false
}

func isGraphLabels(sel *ast.SelectorExpr, info *types.Info) bool {
	return sel.Sel.Name == "Labels" && isGraphSelection(sel, info, "Labels")
}

// isGraphSelection reports whether sel selects the named field/method
// of internal/graph's Graph type (directly or through embedding).
func isGraphSelection(sel *ast.SelectorExpr, info *types.Info, name string) bool {
	if s, ok := info.Selections[sel]; ok && s != nil {
		obj := s.Obj()
		return obj != nil && obj.Name() == name && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/graph")
	}
	// Fallback (partial type info): match on the receiver's named type.
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Graph" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/graph")
}
