package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPoll enforces the <100ms-abort guarantee inside internal/dp and
// the distributed tiers (internal/dist, internal/shard): any function
// that accepts a context.Context and contains a vertex/iteration-scale
// loop must poll for cancellation inside that loop — directly via
// ctx.Err()/ctx.Done(), or through one of the project's known helpers
// (the atomic stop flag armed by watchContext, polled with stop.Load(),
// the iteration state's cancelled() method, or a run's stopped()
// accessor).
//
// "Vertex/iteration-scale" is a heuristic, deliberately tuned to this
// codebase (a project-specific linter's privilege):
//
//   - a loop is flagged when its body calls one of the DP work horses
//     (run, runIter, runBatches, computeNode, …), or
//   - when its header names a vertex/iteration quantity (an identifier
//     equal to v/u/vid/vtx or containing iter/vert/batch/lane) and its
//     body makes at least one real (non-builtin, non-conversion) call.
//
// Pure-arithmetic folds over completed results (Welford updates,
// compaction loops) therefore stay exempt, while any loop that can burn
// per-vertex or per-iteration work must either poll or carry a
// suppression explaining why aborting mid-loop would corrupt state.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "vertex/iteration loop in a context-taking dp function without a cancellation poll (breaks the <100ms abort guarantee)",
	Run:  runCtxPoll,
}

// heavyWorkCalls are the DP entry points whose invocation marks a loop
// as long-running regardless of its header. RunRank and runGroup are
// the distributed tiers' work horses: a loop driving rank-local DP
// iterations or shard dispatch rounds burns per-iteration work plus
// network round-trips, so it must be interruptible.
var heavyWorkCalls = map[string]bool{
	"run":                 true,
	"runIter":             true,
	"runBatch":            true,
	"runBatches":          true,
	"computeNode":         true,
	"computeNodeBatch":    true,
	"computeBatchNode":    true,
	"RunContext":          true,
	"RunConvergedContext": true,
	"VertexCountsContext": true,
	"RunRank":             true,
	"runGroup":            true,
	"runShard":            true,
}

// vocabExact and vocabSubstrings define the vertex/iteration name
// heuristic for loop headers.
var vocabExact = map[string]bool{"v": true, "u": true, "vid": true, "vtx": true}
var vocabSubstrings = []string{"iter", "vert", "batch", "lane"}

func runCtxPoll(pass *Pass) {
	if !pathHasSuffix(pass.Pkg.Path, "internal/dp") &&
		!pathHasSuffix(pass.Pkg.Path, "internal/dist") &&
		!pathHasSuffix(pass.Pkg.Path, "internal/shard") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !takesContext(fd, info) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					if !loopNeedsPoll(loop.Init, loop.Cond, loop.Post, nil, loop.Body, info) {
						return true
					}
					body = loop.Body
				case *ast.RangeStmt:
					if !loopNeedsPoll(nil, nil, nil, loop, loop.Body, info) {
						return true
					}
					body = loop.Body
				default:
					return true
				}
				if !containsPoll(body, info) {
					pass.Reportf(n.Pos(),
						"vertex/iteration loop in context-taking function %s has no cancellation poll; check ctx.Err()/ctx.Done(), the armed stop flag (stop.Load()), or st.cancelled() inside the loop",
						fd.Name.Name)
				}
				return true
			})
		}
	}
}

// takesContext reports whether the function has a parameter of type
// context.Context.
func takesContext(fd *ast.FuncDecl, info *types.Info) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// loopNeedsPoll classifies a loop as vertex/iteration-scale.
func loopNeedsPoll(init ast.Stmt, cond ast.Expr, post ast.Stmt, rng *ast.RangeStmt, body *ast.BlockStmt, info *types.Info) bool {
	if containsHeavyCall(body) {
		return true
	}
	hot := false
	check := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && isVocabName(id.Name) {
				hot = true
			}
			return !hot
		})
	}
	if rng != nil {
		check(rng.Key)
		check(rng.Value)
		check(rng.X)
	} else {
		check(init)
		check(cond)
		check(post)
	}
	return hot && containsMaterialCall(body, info)
}

func isVocabName(name string) bool {
	lower := strings.ToLower(name)
	if vocabExact[lower] {
		return true
	}
	for _, sub := range vocabSubstrings {
		if strings.Contains(lower, sub) {
			return true
		}
	}
	return false
}

// calleeName returns the terminal name of a call's function expression.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	default:
		return ""
	}
}

func containsHeavyCall(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && heavyWorkCalls[calleeName(call)] {
			found = true
		}
		return !found
	})
	return found
}

// containsMaterialCall reports whether the body makes at least one call
// that is neither a builtin (append, len, …) nor a type conversion.
func containsMaterialCall(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if tv, ok := info.Types[call.Fun]; ok {
			if tv.IsType() || tv.IsBuiltin() {
				return !found
			}
		}
		found = true
		return false
	})
	return found
}

// containsPoll reports whether the subtree polls for cancellation:
// ctx.Err()/ctx.Done() on a context, Load() on an atomic stop flag, a
// call to a method named cancelled/Cancelled (the iteration-state
// helper) or stopped (the shard worker-run accessor), or a call to
// stopRequested (the iteration/batch-boundary helper that combines the
// flag with a synchronous ctx.Err() check).
func containsPoll(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "stopRequested" {
			found = true
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		switch sel.Sel.Name {
		case "cancelled", "Cancelled", "stopped":
			found = true
		case "Err", "Done":
			if tv, ok := info.Types[sel.X]; ok && isContextType(tv.Type) {
				found = true
			}
		case "Load":
			if tv, ok := info.Types[sel.X]; ok && isAtomicBool(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isAtomicBool(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Bool"
}
