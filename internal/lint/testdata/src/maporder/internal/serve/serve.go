// Package serve is the maporder golden fixture. Its import path ends in
// internal/serve, one of the determinism-critical packages, so every
// `for range` over a map must be flagged; loops over slices stay clean.
package serve

import "sort"

type registry struct {
	graphs map[string]int
}

type set map[string]bool

// totals is the canonical bug: a floating-point sum in map order.
func totals(weights map[string]float64) float64 {
	sum := 0.0
	for _, w := range weights { // want "maporder: range over map weights"
		sum += w // want "floatflow: float accumulation into sum is ordered by map iteration order"
	}
	return sum
}

// keys collects map keys; even a collect-then-sort shape ranges the map
// and is flagged (the tree suppresses these with a reason).
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want "maporder: range over map m"
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// list ranges a map reached through a field selector.
func (r *registry) list() int {
	n := 0
	for _, v := range r.graphs { // want "maporder: range over map r.graphs"
		n += v
	}
	return n
}

// card ranges a named map type; the underlying type is what counts.
func card(s set) int {
	n := 0
	for range s { // want "maporder: range over map s"
		n++
	}
	return n
}

// sumSlice ranges a slice: deterministic, clean.
func sumSlice(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
