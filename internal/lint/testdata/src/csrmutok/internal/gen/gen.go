// Package gen is the csrmut exemption fixture: the same writes that the
// csrmut fixture flags are legal inside an owner package (import path
// suffix internal/gen), so this package must stay clean.
package gen

import "repro/internal/graph"

// Relabel mutates label storage from inside an owner package: legal.
func Relabel(g *graph.Graph) {
	if g.Labels != nil {
		g.Labels[0] = 1
	}
	g.Labels = append(g.Labels, 2)
}

// Scrub writes through Adj via a local alias: legal here.
func Scrub(g *graph.Graph, v int32) {
	a := g.Adj(v)
	if len(a) > 0 {
		a[0] = 0
	}
}
