// Package dp is the floatflow golden fixture: float accumulations
// whose operand order depends on an unordered iteration break the
// bit-identical estimate stream. Map ranges here also trip maporder —
// the two analyzers are deliberately complementary.
package dp

import "sync"

// mapSum is the canonical bug: map-ordered float accumulation.
func mapSum(weights map[string]float64) float64 {
	sum := 0.0
	for _, w := range weights { // want "maporder: range over map weights"
		sum += w // want "floatflow: float accumulation into sum is ordered by map iteration order"
	}
	return sum
}

// perKey accumulates into cells indexed by the iteration key: exempt
// from floatflow (each cell sees a fixed per-key order), though the
// map range itself still trips maporder.
func perKey(src map[int]float64, dst []float64) {
	for k, v := range src { // want "maporder: range over map src"
		dst[k] += v
	}
}

// chanSum folds receives in arrival order — unordered when multiple
// senders interleave.
func chanSum(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum += v // want "floatflow: float accumulation into sum is ordered by channel receive order"
	}
	return sum
}

// syncMapSum ranges a sync.Map, randomized like the built-in map.
func syncMapSum(m *sync.Map) float64 {
	sum := 0.0
	m.Range(func(k, v any) bool {
		sum += v.(float64) // want "floatflow: float accumulation into sum is ordered by sync.Map iteration order"
		return true
	})
	return sum
}

// selectSum merges two result streams in select order: case choice is
// random when both are ready.
func selectSum(a, b chan float64, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		select {
		case v := <-a:
			sum += v // want "floatflow: float accumulation into sum is ordered by select receive order across multiple channels"
		case v := <-b:
			sum += v // want "floatflow: float accumulation into sum is ordered by select receive order across multiple channels"
		}
	}
	return sum
}

// goSum races goroutine completion order into the shared accumulator;
// the goroutine-local partial sum s is fine.
func goSum(parts [][]float64) float64 {
	var mu sync.Mutex
	sum := 0.0
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []float64) {
			defer wg.Done()
			s := 0.0
			for _, x := range p {
				s += x
			}
			mu.Lock()
			sum += s // want "floatflow: float accumulation into sum is ordered by goroutine completion order"
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return sum
}

type acc struct{ total float64 }

// add accumulates into its receiver; its summary records that, so
// calling it from an unordered loop is the same bug one call away.
func (a *acc) add(x float64) { a.total += x }

// mapSumViaHelper is the interprocedural case: the accumulation hides
// behind a method call.
func mapSumViaHelper(weights map[string]float64) float64 {
	var a acc
	for _, w := range weights { // want "maporder: range over map weights"
		a.add(w) // want "floatflow: call to add accumulates floats into a"
	}
	return a.total
}

// sortedSum walks materialized keys in slice order: deterministic,
// clean for both analyzers.
func sortedSum(weights map[string]float64, keys []string) float64 {
	sum := 0.0
	for _, k := range keys {
		sum += weights[k]
	}
	return sum
}

// suppressed pairs a valid maporder suppression with a malformed
// floatflow one: the floatflow finding survives.
func suppressed(m map[string]float64) float64 {
	sum := 0.0
	//lint:maporder ok — fixture: exercising floatflow's suppression path in isolation
	for _, w := range m {
		// want "suppress: malformed suppression for .floatflow."
		//lint:floatflow ok
		sum += w // want "floatflow: float accumulation into sum is ordered by map iteration order"
	}
	return sum
}
