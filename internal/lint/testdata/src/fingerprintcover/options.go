// Package fingerprintcover is the fingerprintcover golden fixture: an
// Options struct whose classification lists and Fingerprint body have
// drifted apart in every way the analyzer detects — a missing list, an
// embedded field, an unclassified field, a stale list entry, a double
// classification, an undeclared read, a declared-but-unread field, and
// a format-verb/argument mismatch.
package fingerprintcover

import "fmt"

type base struct{}

// Options drifts from its classification lists in every detectable way.
type Options struct { // want "fingerprintcover: missing classification list fingerprintLifecycle"
	base      // want "fingerprintcover: embedded field in Options cannot be classified"
	Colors    int
	Partition string
	Threads   int
	Unread    bool
	Seed      int64 // want "fingerprintcover: Options field .Seed. is not classified"
}

var fingerprintResultFields = []string{ // want "fingerprintcover: field .Unread. is declared result-relevant in fingerprintResultFields but never read"
	"Colors",
	"Partition",
	"Unread",
	"Ghost", // want "fingerprintcover: fingerprintResultFields names .Ghost., which is not a field of Options"
}

var fingerprintExecutionOnly = []string{
	"Partition", // want "fingerprintcover: Options field .Partition. classified twice"
	"Threads",
}

// Fingerprint reads a field it does not declare and drops a verb.
func (o Options) Fingerprint() string {
	_ = o.Threads                                                       // want "fingerprintcover: Fingerprint.. reads field .Threads., which is not declared in fingerprintResultFields"
	return fmt.Sprintf("v1|c=%d|p=%s", o.Colors, o.Partition, o.Colors) // want "fingerprintcover: Fingerprint format string has 2 verbs but 3 arguments"
}
