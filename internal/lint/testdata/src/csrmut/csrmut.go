// Package csrmut is the csrmut golden fixture: it writes through every
// CSR mutation surface from outside the owner packages — directly
// through Adj(v), through local aliases (including alias-of-alias via a
// reslice), through Labels elements and the Labels header, and via
// copy(). Read-only uses and copies out of CSR storage stay clean.
package csrmut

import "repro/internal/graph"

// scrub writes through the slice returned by Adj: flagged.
func scrub(g *graph.Graph, v int32) {
	g.Adj(v)[0] = 7 // want "csrmut: write to shared CSR storage"
}

// alias taints a local bound to Adj and writes through it: flagged.
func alias(g *graph.Graph, v int32) {
	a := g.Adj(v)
	a[0] = 1 // want "csrmut: write to shared CSR storage"
}

// chain follows an alias of an alias through a reslice: flagged.
func chain(g *graph.Graph, v int32) {
	a := g.Adj(v)
	b := a[1:]
	b[0]++ // want "csrmut: write to shared CSR storage"
}

// relabel mutates a label element and replaces the header: flagged on
// both lines.
func relabel(g *graph.Graph) {
	g.Labels[0] = 3       // want "csrmut: write to shared CSR storage"
	g.Labels = []int32{1} // want "csrmut: write to shared CSR storage"
}

// fill copies into adjacency storage: flagged.
func fill(g *graph.Graph, v int32, src []int32) {
	copy(g.Adj(v), src) // want "csrmut: copy into shared CSR storage"
}

// degreeSum only reads CSR storage: clean.
func degreeSum(g *graph.Graph) int {
	total := 0
	for v := int32(0); v < int32(g.N()); v++ {
		total += len(g.Adj(v))
	}
	return total
}

// snapshot copies OUT of CSR storage into a fresh slice: clean.
func snapshot(g *graph.Graph, v int32) []int32 {
	out := make([]int32, len(g.Adj(v)))
	copy(out, g.Adj(v))
	return out
}
