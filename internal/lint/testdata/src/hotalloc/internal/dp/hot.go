// Package dp is the hotalloc golden fixture: //fascia:hotpath
// functions run per vertex × per lane and must stay allocation free.
package dp

// Summer is the boxing target for the interface-conversion case.
type Summer interface{ Sum() float64 }

type lanes struct{ v [8]float64 }

func (l lanes) Sum() float64 {
	s := 0.0
	for _, x := range l.v {
		s += x
	}
	return s
}

// grow is unannotated and allocates: hotpath callers are flagged at
// the call site, one level deep.
func grow(dst []float64, x float64) []float64 {
	return append(dst, x)
}

//fascia:hotpath
func hotBad(dst []float64, l lanes) float64 {
	buf := []float64{1, 2} // want "hotalloc: composite literal allocates in hotpath function hotBad"
	dst = grow(dst, 1)     // want "hotalloc: hotpath function hotBad calls grow, which allocates"
	dst = append(dst, 2)   // want "hotalloc: append may grow and reallocate in hotpath function hotBad"
	s := Summer(l)         // want "hotalloc: conversion to interface .*Summer boxes its operand in hotpath function hotBad"
	f := func() float64 {  // want "hotalloc: closure captures dst in hotpath function hotBad"
		return dst[0] + buf[0]
	}
	return f() + s.Sum()
}

// hotClean is the 8-wide kernel shape: value arrays, fixed bounds, no
// allocation. Zero findings.
//
//fascia:hotpath
func hotClean(dst, src []float64) {
	var acc [8]float64
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		for j := 0; j < 8; j++ {
			acc[j] += src[i+j]
		}
	}
	for j := 0; j < 8; j++ {
		dst[j] += acc[j]
	}
}

// hotSuppressed documents a measured, accepted slow path with a
// reason; the second suppression has no reason and is rejected.
//
//fascia:hotpath
func hotSuppressed(dst []float64) []float64 {
	//lint:hotalloc ok — fixture: cold resize path, runs once per epoch, measured
	dst = append(dst, 1)
	// want "suppress: malformed suppression for .hotalloc."
	//lint:hotalloc ok
	dst = append(dst, 2) // want "hotalloc: append may grow and reallocate in hotpath function hotSuppressed"
	return dst
}
