// Package shard is wiretrust's clean-negative fixture: every decoded
// length passes a bounds comparison before it sizes anything, matching
// the real wire codec's discipline. Zero findings expected.
package shard

import (
	"encoding/binary"
	"errors"
	"io"
)

const maxFrame = 1 << 20

var errFrame = errors.New("bad frame")

// readFrame is the real codec's shape: the length is checked against
// the protocol cap before the payload is allocated.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return nil, errFrame
	}
	payload := make([]byte, n)
	_, err := io.ReadFull(r, payload)
	return payload, err
}

// decodeChecked validates the element count against the bytes actually
// present before allocating — the per-element floor idiom.
func decodeChecked(b []byte) []uint32 {
	if len(b) < 4 {
		return nil
	}
	n := binary.LittleEndian.Uint32(b)
	if int(n) > (len(b)-4)/4 {
		return nil
	}
	out := make([]uint32, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, binary.LittleEndian.Uint32(b[4+4*i:]))
	}
	return out
}

// loopOnly never sizes anything with the decoded value; a loop-bound
// comparison sanitizes it too.
func loopOnly(b []byte) uint64 {
	n := binary.LittleEndian.Uint32(b)
	total := uint64(0)
	for i := uint32(0); i < n; i++ {
		total += uint64(i)
	}
	return total
}
