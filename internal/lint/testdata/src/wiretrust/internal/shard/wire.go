// Package shard is the wiretrust golden fixture: its import path ends
// in internal/shard, so integers decoded off the wire must pass a
// bounds comparison before they size an allocation, index a table, or
// bound a read.
package shard

import (
	"bufio"
	"encoding/binary"
	"io"
)

// rbuf mirrors the real wire codec's decode buffer: u32's result is
// wire-derived at every call site through its function summary.
type rbuf struct {
	b   []byte
	off int
}

func (r *rbuf) u32() uint32 {
	x := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return x
}

// alloc sizes a slice straight from its argument with no check: its
// summary (param 0 reaches a make) turns tainted call sites into
// findings — the finding lands at the caller, where the fix belongs.
func alloc(n uint32) []float64 {
	return make([]float64, n)
}

// decodeBad is the fuzz-crash shape: lengths straight off the wire
// sizing allocations, 8 bytes of input forcing gigabyte allocations.
func decodeBad(b []byte) [][]float64 {
	r := &rbuf{b: b}
	n := r.u32()
	rows := make([][]float64, n) // want "wiretrust: wire-derived length n sizes a make"
	for i := range rows {
		w := r.u32()
		rows[i] = make([]float64, w) // want "wiretrust: wire-derived length w sizes a make"
	}
	return rows
}

// decodeViaHelper launders the tainted length through a helper — the
// interprocedural case. Still flagged, at the call site.
func decodeViaHelper(b []byte) []float64 {
	r := &rbuf{b: b}
	return alloc(r.u32()) // want "wiretrust: wire-derived value r.u32.* is passed to alloc"
}

// pick indexes a table with an unvalidated wire byte.
func pick(br *bufio.Reader, table []int) int {
	c, _ := br.ReadByte()
	return table[c] // want "wiretrust: wire-derived index c reaches table"
}

// readBody sizes an io.ReadFull window straight from the frame header.
func readBody(r io.Reader, hdr []byte, buf []byte) error {
	n := binary.LittleEndian.Uint32(hdr)
	_, err := io.ReadFull(r, buf[:n]) // want "wiretrust: wire-derived size n bounds a slice of buf"
	return err
}

// suppressed documents an accepted risk with a written reason:
// silenced.
func suppressed(b []byte) []byte {
	r := &rbuf{b: b}
	n := r.u32()
	//lint:wiretrust ok — fixture: upstream framing already caps the payload at 64 KiB
	return make([]byte, n)
}

// missingReason's suppression carries no reason: the suppression is
// rejected as malformed and the finding survives.
func missingReason(b []byte) []uint32 {
	r := &rbuf{b: b}
	n := r.u32()
	// want "suppress: malformed suppression for .wiretrust."
	//lint:wiretrust ok
	return make([]uint32, n) // want "wiretrust: wire-derived length n sizes a make"
}
