// Package serve is the goleak golden fixture: every goroutine launched
// here must show a statically-reachable exit on ctx.Done, a stop
// signal, or a connection close, and every derived context's cancel
// function must be used.
package serve

import (
	"context"
	"time"
)

type worker struct{ n int }

func handle(int) {}

func use(context.Context) {}

// pump spins forever with no exit: flagged when launched below —
// the finding lands on the loop, naming the launch site.
func (w *worker) pump() {
	for { // want "goleak: goroutine loop has no reachable exit"
		w.n++
	}
}

// launchNamed hides the loop behind a method call; the check follows
// one call level into in-package declarations.
func (w *worker) launchNamed() {
	go w.pump()
}

// launchSpinner: literal body, no exit at all.
func launchSpinner(w *worker) {
	go func() {
		for { // want "goleak: goroutine loop has no reachable exit"
			w.n++
		}
	}()
}

// launchDataExit exits only when the payload says so: a blocked
// receive at shutdown leaks the goroutine forever.
func launchDataExit(in chan int) {
	go func() {
		for { // want "goleak: blocking goroutine loop exits only on data conditions"
			v := <-in
			if v < 0 {
				return
			}
			handle(v)
		}
	}()
}

// launchDone is the compliant shape: a ctx.Done select case gives
// shutdown a way out.
func launchDone(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				handle(v)
			}
		}
	}()
}

// launchRange drains until close — the writeLoop shape; range over a
// channel exits when the sender closes it.
func launchRange(in chan int) {
	go func() {
		for v := range in {
			handle(v)
		}
	}()
}

// launchStopChan polls a stop-named channel: recognized shutdown edge.
func launchStopChan(in, stop chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-in:
				handle(v)
			}
		}
	}()
}

// discardCancel throws the cancel function away: the derived context
// and its resources leak.
func discardCancel(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want "goleak: WithCancel's cancel function is discarded"
	return ctx
}

// deferredCancel is the compliant shape.
func deferredCancel(parent context.Context) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	use(ctx)
}

// suppressedSpinner documents a process-lifetime goroutine with a
// written reason: silenced.
func suppressedSpinner(w *worker) {
	go func() {
		//lint:goleak ok — fixture: process-lifetime metronome, reaped at exit by design
		for {
			w.n++
		}
	}()
}

// missingReason's suppression carries no reason: rejected as
// malformed, and the finding survives.
func missingReason(w *worker) {
	go func() {
		// want "suppress: malformed suppression for .goleak."
		//lint:goleak ok
		for { // want "goleak: goroutine loop has no reachable exit"
			w.n++
		}
	}()
}
