// Package fingerprintok is the clean fingerprintcover fixture: a fully
// classified Options struct whose Fingerprint body reads exactly the
// declared result-relevant fields with a matching format string. The
// analyzer suite must report nothing here.
package fingerprintok

import "fmt"

// Options mirrors the real root-package shape in miniature.
type Options struct {
	Colors    int
	Partition string
	Threads   int
	Seed      int64
}

var fingerprintResultFields = []string{"Colors", "Partition"}

var fingerprintExecutionOnly = []string{"Threads"}

var fingerprintLifecycle = []string{"Seed"}

// Fingerprint covers exactly the declared result-relevant fields.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("v1|c=%d|p=%s", o.Colors, o.Partition)
}
