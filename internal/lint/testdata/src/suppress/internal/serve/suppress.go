// Package serve is the suppression-machinery fixture: a well-formed
// suppression that silences a maporder finding (above the line and
// trailing), plus the malformed shapes that are themselves diagnostics
// — a missing reason and an unknown analyzer name.
package serve

// releaseAll is order-insensitive; the suppression on the line above
// silences maporder and must produce no diagnostic at all.
func releaseAll(m map[string]func()) {
	//lint:maporder ok — release-only loop, order cannot matter
	for _, f := range m {
		f()
	}
}

// trailing demonstrates a same-line suppression.
func trailing(m map[string]int) int {
	n := 0
	for range m { //lint:maporder ok — integer cardinality, order-free
		n++
	}
	return n
}

// missingReason omits the mandatory reason: the suppression is rejected
// (a diagnostic of its own) and the finding it tried to hide survives.
func missingReason(m map[string]int) int {
	n := 0
	// want "suppress: malformed suppression for .maporder."
	//lint:maporder ok
	for range m { // want "maporder: range over map m"
		n++
	}
	return n
}

// unknownAnalyzer names a nonexistent analyzer: rejected.
func unknownAnalyzer(xs []int) int {
	n := 0
	// want "suppress: suppression names unknown analyzer .frobnicate."
	//lint:frobnicate ok — not a real analyzer
	for _, x := range xs {
		n += x
	}
	return n
}
