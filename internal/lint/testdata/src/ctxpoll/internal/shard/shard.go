// Package shard is the ctxpoll golden fixture for the sharded tier:
// its import path ends in internal/shard, so context-taking functions
// that drive dispatch rounds or rank iterations must poll for
// cancellation. The fixture mirrors the real package's shapes — the
// coordinator's re-dispatch loop around runGroup, the worker's
// iteration loop around RunRank with its stopped() accessor — without
// importing anything beyond context.
package shard

import "context"

func runGroup() float64 { return 1 }

func RunRank() float64 { return 1 }

type workerRun struct{}

func (r *workerRun) stopped() bool { return false }

// dispatchNoPoll re-dispatches rounds without ever checking ctx: a
// shard dispatch can hang on a slow fleet, so this is flagged.
func dispatchNoPoll(ctx context.Context, remaining int) float64 {
	total := 0.0
	for remaining > 0 { // want "ctxpoll: vertex/iteration loop in context-taking function dispatchNoPoll"
		total += runGroup()
		remaining--
	}
	return total
}

// dispatchPolled checks ctx.Err before each round: compliant.
func dispatchPolled(ctx context.Context, remaining int) float64 {
	total := 0.0
	for remaining > 0 {
		if ctx.Err() != nil {
			return total
		}
		total += runGroup()
		remaining--
	}
	return total
}

// iterLoopStopped drives rank iterations but polls the run's stopped()
// accessor (the worker-run pattern): compliant.
func iterLoopStopped(ctx context.Context, run *workerRun, iters int) float64 {
	total := 0.0
	for it := 0; it < iters; it++ {
		if run.stopped() {
			return total
		}
		total += RunRank()
	}
	return total
}

// iterLoopNoPoll drives rank iterations with no stop check: flagged.
func iterLoopNoPoll(ctx context.Context, iters int) float64 {
	total := 0.0
	for it := 0; it < iters; it++ { // want "ctxpoll: vertex/iteration loop in context-taking function iterLoopNoPoll"
		total += RunRank()
	}
	return total
}
