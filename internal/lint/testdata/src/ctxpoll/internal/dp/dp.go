// Package dp is the ctxpoll golden fixture. Its import path ends in
// internal/dp, so every context-taking function with a vertex/iteration
// loop must poll for cancellation inside the loop. The fixture avoids
// maps entirely (maporder also gates internal/dp).
package dp

import (
	"context"
	"sync/atomic"
)

func work(v int) float64 { return float64(v) * 0.5 }

func computeNode() float64 { return 1 }

// runNoPoll burns per-vertex work with no cancellation poll: flagged.
func runNoPoll(ctx context.Context, n int) float64 {
	total := 0.0
	for v := 0; v < n; v++ { // want "ctxpoll: vertex/iteration loop in context-taking function runNoPoll"
		total += work(v)
	}
	return total
}

// runPolled checks ctx.Err inside the loop: compliant.
func runPolled(ctx context.Context, n int) float64 {
	total := 0.0
	for v := 0; v < n; v++ {
		if ctx.Err() != nil {
			return total
		}
		total += work(v)
	}
	return total
}

// runStopFlag polls the armed atomic stop flag (the watchContext
// pattern): compliant.
func runStopFlag(ctx context.Context, stop *atomic.Bool, n int) float64 {
	total := 0.0
	for v := 0; v < n; v++ {
		if stop.Load() {
			return total
		}
		total += work(v)
	}
	return total
}

// runHeavy invokes a DP work horse, which marks the loop long-running
// regardless of its header names: flagged.
func runHeavy(ctx context.Context, reps int) float64 {
	total := 0.0
	for i := 0; i < reps; i++ { // want "ctxpoll: vertex/iteration loop in context-taking function runHeavy"
		total += computeNode()
	}
	return total
}

// fold is a pure-arithmetic pass over completed results (no material
// calls): exempt.
func fold(ctx context.Context, xs []float64) float64 {
	mean := 0.0
	for i, x := range xs {
		mean += (x - mean) / float64(i+1)
	}
	return mean
}

// noCtx takes no context, so the abort contract does not apply.
func noCtx(n int) float64 {
	total := 0.0
	for v := 0; v < n; v++ {
		total += work(v)
	}
	return total
}
