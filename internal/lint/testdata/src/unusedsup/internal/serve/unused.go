// Package serve is the -unused-suppressions fixture: one suppression
// covers a live finding (not reported), one covers nothing (reported
// as stale).
package serve

// used covers a live maporder finding: counting keys is order-free,
// and the suppression earns its keep.
func used(m map[string]int) int {
	n := 0
	//lint:maporder ok — fixture: integer key count, iteration order cannot matter
	for range m {
		n++
	}
	return n
}

// stale suppresses a finding that no longer exists — the loop ranges a
// slice now. -unused-suppressions flags it for removal.
func stale(xs []int) int {
	n := 0
	//lint:maporder ok — fixture: stale on purpose, nothing here ranges a map
	for _, x := range xs {
		n += x
	}
	return n
}
