// Package guardedby is the guardedby golden fixture: a miniature of
// internal/serve's cache — a mutex and the state it guards, annotated
// in the source — exercising the flag path and all four exemptions
// (lexical lock, constructor, Locked suffix, caller-holds doc).
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// newCounter builds the value before it escapes: constructor exemption.
func newCounter() *counter {
	return &counter{n: 1}
}

// get takes the lock: compliant.
func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// peek reads the guarded field without the lock: flagged.
func (c *counter) peek() int {
	return c.n // want "guardedby: access to counter.n .guarded by mu. in peek"
}

// bump writes the guarded field without the lock: flagged.
func (c *counter) bump() {
	c.n++ // want "guardedby: access to counter.n .guarded by mu. in bump"
}

// addLocked carries the Locked suffix: helper-under-lock exemption.
func (c *counter) addLocked(d int) {
	c.n += d
}

// drain assumes the caller holds mu; the doc contract exempts it.
func (c *counter) drain() int {
	v := c.n
	c.n = 0
	return v
}
