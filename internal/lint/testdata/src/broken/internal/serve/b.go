package serve

// oops references an undefined name: a deliberate type error. The
// loader records it in TypeErrs and analysis degrades instead of
// panicking.
func oops() int {
	return undefinedIdentifier
}
