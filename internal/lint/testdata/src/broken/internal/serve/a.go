// Package serve is the broken-package fixture: b.go contains a
// deliberate type error, and fasciavet must still analyze the
// well-typed remainder in this file without panicking.
package serve

// merge keeps full type info despite the error in b.go, so maporder
// still fires on it.
func merge(m map[string]int) int {
	total := 0
	for _, v := range m { // want "maporder: range over map m"
		total += v
	}
	return total
}
