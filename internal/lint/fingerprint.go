package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// FingerprintCover protects fasciad's seed-keyed result cache from ever
// keying incorrectly. The cache assumes Options.Fingerprint() covers
// every option knob that can change the floating-point estimate stream;
// an option added without classification could let two semantically
// different queries share a cache entry and serve a wrong count.
//
// The analyzer runs on any package that declares a struct type named
// Options with a Fingerprint method (in this module: the root package's
// options.go) and cross-checks three things:
//
//  1. every field of Options appears in exactly one of the in-source
//     classification lists fingerprintResultFields,
//     fingerprintExecutionOnly, or fingerprintLifecycle;
//  2. the set of fields actually read inside Fingerprint() equals
//     fingerprintResultFields (the declared result-relevant set); and
//  3. the Sprintf format verb count matches its argument count.
//
// The reflect-based runtime twin (TestFingerprintCoversAllOptions in
// the root package) re-checks (1) and additionally proves each
// result-relevant field perturbs the fingerprint while allowlisted
// fields do not, so the invariant holds even when fasciavet is skipped.
var FingerprintCover = &Analyzer{
	Name: "fingerprintcover",
	Doc:  "Options field not classified as fingerprinted, execution-only, or lifecycle (cache could key incorrectly)",
	Run:  runFingerprintCover,
}

const (
	resultListName    = "fingerprintResultFields"
	execOnlyListName  = "fingerprintExecutionOnly"
	lifecycleListName = "fingerprintLifecycle"
)

func runFingerprintCover(pass *Pass) {
	var optionsSpec *ast.TypeSpec
	var optionsStruct *ast.StructType
	var fingerprint *ast.FuncDecl
	lists := map[string]*ast.CompositeLit{}
	listPos := map[string]ast.Node{}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.Name == "Options" {
							if st, ok := s.Type.(*ast.StructType); ok {
								optionsSpec, optionsStruct = s, st
							}
						}
					case *ast.ValueSpec:
						for i, name := range s.Names {
							switch name.Name {
							case resultListName, execOnlyListName, lifecycleListName:
								if i < len(s.Values) {
									if cl, ok := s.Values[i].(*ast.CompositeLit); ok {
										lists[name.Name] = cl
										listPos[name.Name] = name
									}
								}
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "Fingerprint" && d.Recv != nil && recvTypeName(d) == "Options" {
					fingerprint = d
				}
			}
		}
	}
	if optionsStruct == nil {
		return // package does not define an Options struct: not in scope
	}
	if fingerprint == nil {
		return // Options without Fingerprint: nothing keyed on it
	}

	// Collect the struct's field names (position-carrying).
	var fields []fieldAt
	for _, fl := range optionsStruct.Fields.List {
		if len(fl.Names) == 0 {
			pass.Reportf(fl.Pos(), "embedded field in Options cannot be classified; name it explicitly")
			continue
		}
		for _, n := range fl.Names {
			fields = append(fields, fieldAt{n.Name, n})
		}
	}

	// Resolve the three classification lists.
	classified := map[string]string{} // field -> list name
	for _, listName := range []string{resultListName, execOnlyListName, lifecycleListName} {
		cl, ok := lists[listName]
		if !ok {
			pass.Reportf(optionsSpec.Pos(),
				"missing classification list %s ([]string of Options field names) next to Options; every field must be declared result-relevant, execution-only, or lifecycle", listName)
			continue
		}
		for _, el := range cl.Elts {
			lit, ok := el.(*ast.BasicLit)
			if !ok {
				pass.Reportf(el.Pos(), "%s entries must be string literals", listName)
				continue
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				pass.Reportf(el.Pos(), "%s entry %s is not a valid string literal", listName, lit.Value)
				continue
			}
			if !fieldExists(fields, name) {
				pass.Reportf(el.Pos(), "%s names %q, which is not a field of Options (stale entry?)", listName, name)
				continue
			}
			if prev, dup := classified[name]; dup {
				pass.Reportf(el.Pos(), "Options field %q classified twice (%s and %s); a field is either result-relevant, execution-only, or lifecycle", name, prev, listName)
				continue
			}
			classified[name] = listName
		}
	}

	// Every field must be classified somewhere.
	for _, f := range fields {
		if _, ok := classified[f.name]; !ok {
			pass.Reportf(f.pos.Pos(),
				"Options field %q is not classified: add it to Fingerprint() and %s if it can change the estimate stream, or to %s/%s if it provably cannot (fasciad's cache soundness depends on this)",
				f.name, resultListName, execOnlyListName, lifecycleListName)
		}
	}

	// Fields actually read in Fingerprint() must equal the declared
	// result-relevant set.
	read := fingerprintReads(fingerprint)
	for _, f := range fields {
		inList := classified[f.name] == resultListName
		_, inBody := read[f.name]
		switch {
		case inList && !inBody:
			pass.Reportf(listNodePos(listPos, fingerprint), "field %q is declared result-relevant in %s but never read inside Fingerprint(); the fingerprint would not distinguish it", f.name, resultListName)
		case !inList && inBody:
			pass.Reportf(read[f.name].Pos(), "Fingerprint() reads field %q, which is not declared in %s; declare it so the runtime twin test covers it", f.name, resultListName)
		}
	}

	checkFormatArity(pass, fingerprint)
}

// fieldAt is an Options field name with its declaration site.
type fieldAt struct {
	name string
	pos  ast.Node
}

func listNodePos(listPos map[string]ast.Node, fallback *ast.FuncDecl) token.Pos {
	if n, ok := listPos[resultListName]; ok {
		return n.Pos()
	}
	return fallback.Pos()
}

func fieldExists(fields []fieldAt, name string) bool {
	for _, f := range fields {
		if f.name == name {
			return true
		}
	}
	return false
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// fingerprintReads collects the receiver fields read anywhere in the
// Fingerprint body (o.Colors, o.Partition, …).
func fingerprintReads(fd *ast.FuncDecl) map[string]*ast.SelectorExpr {
	recv := ""
	if len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recv = fd.Recv.List[0].Names[0].Name
	}
	out := map[string]*ast.SelectorExpr{}
	if recv == "" || fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			out[sel.Sel.Name] = sel
		}
		return true
	})
	return out
}

// checkFormatArity verifies each Sprintf-style call in Fingerprint has
// as many format verbs as trailing arguments, so a newly fingerprinted
// field cannot silently fall off the format string.
func checkFormatArity(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		name := calleeName(call)
		if name != "Sprintf" && name != "Fprintf" && name != "Printf" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		verbs := countVerbs(format)
		args := len(call.Args) - 1
		if verbs != args {
			pass.Reportf(call.Pos(), "Fingerprint format string has %d verbs but %d arguments; a fingerprinted field is being dropped or duplicated", verbs, args)
		}
		return true
	})
}

// countVerbs counts printf verbs in a format string, ignoring %%.
func countVerbs(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if i+1 < len(format) && format[i+1] == '%' {
			i++
			continue
		}
		// Skip flags/width/precision up to the verb character.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.*[]", rune(format[j])) {
			j++
		}
		if j < len(format) {
			n++
			i = j
		}
	}
	return n
}
