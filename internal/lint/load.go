package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("repro/internal/dp").
	Path string
	// Dir is the directory the files were parsed from.
	Dir string
	// Fset positions every file in the package (shared across the load).
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results. When TypeErrs is non-empty
	// the info is partial: analyzers must tolerate nil types for any
	// expression (fasciavet degrades rather than panics on broken code).
	Types *types.Package
	Info  *types.Info
	// TypeErrs collects type-checking errors; they do not stop analysis.
	TypeErrs []error
}

// Loader parses and type-checks module packages using only the standard
// library: go/parser for syntax and go/types with a source importer for
// semantics. No x/tools, no network, no export data — stdlib packages
// are themselves type-checked from $GOROOT source on demand.
type Loader struct {
	// ModuleDir is the module root (directory containing go.mod).
	ModuleDir string
	// ModulePath is the module's import-path prefix (from go.mod).
	ModulePath string
	// Fset is shared by every parsed file, module and stdlib alike.
	Fset *token.FileSet

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader rooted at moduleDir, reading the module path
// from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: read go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleDir)
	}
	fset := token.NewFileSet()
	// The source importer type-checks stdlib packages from $GOROOT
	// source. Disable cgo so packages like net resolve to their pure-Go
	// build-tag variants instead of needing the cgo tool.
	build.Default.CgoEnabled = false
	std, _ := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		Fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-internal paths are loaded (and
// cached) by this loader, everything else falls through to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleDir, 0)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// Load parses and type-checks the module package at the given import
// path (non-test files only). Type errors are collected on the returned
// package rather than failing the load, so analyzers can still inspect
// the well-typed parts of a broken tree.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines and _GOOS.go name
		// suffixes) for the host platform, so platform-paired files
		// (spill_linux.go / spill_stub.go) don't double-declare.
		if match, merr := build.Default.MatchFile(dir, n); merr == nil && !match {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}

	p := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// Even unparsable files must not abort the whole run; record
			// the error and analyze what did parse.
			p.TypeErrs = append(p.TypeErrs, err)
			if f == nil {
				continue
			}
		}
		p.Files = append(p.Files, f)
	}

	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	tp, err := conf.Check(path, l.Fset, p.Files, p.Info)
	p.Types = tp
	if err != nil && len(p.TypeErrs) == 0 {
		p.TypeErrs = append(p.TypeErrs, err)
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadPatterns resolves command-line package patterns. Supported forms:
// "./..." (every package under the module, skipping testdata and hidden
// directories), "./dir" or "dir" (one directory), and full import paths
// within the module.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []*Package
	add := func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		p, err := l.Load(path)
		if err != nil {
			return err
		}
		out = append(out, p)
		return nil
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				if err := add(p); err != nil {
					return nil, err
				}
			}
		case strings.HasPrefix(pat, l.ModulePath):
			if err := add(pat); err != nil {
				return nil, err
			}
		default:
			rel := strings.TrimPrefix(pat, "./")
			path := l.ModulePath
			if rel != "" && rel != "." {
				path += "/" + filepath.ToSlash(rel)
			}
			if err := add(path); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// walkModule lists every package directory in the module, skipping
// testdata, vendor, hidden, and underscore-prefixed directories.
func (l *Loader) walkModule() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleDir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return err
		}
		imp := l.ModulePath
		if rel != "." {
			imp += "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, imp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var uniq []string
	for i, p := range paths {
		if i == 0 || p != paths[i-1] {
			uniq = append(uniq, p)
		}
	}
	return uniq, nil
}
