package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePrefix is where golden fixture packages live. Import paths are
// chosen so the path-gated analyzers see the suffix they gate on
// (e.g. …/testdata/src/maporder/internal/serve gates like
// internal/serve).
const fixturePrefix = "repro/internal/lint/testdata/src/"

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// runFixture loads one fixture package, runs the full analyzer suite on
// it, and checks every diagnostic against the fixture's `// want "re"`
// comments (and vice versa). A want comment trailing a line of code
// applies to that line; a want comment on its own line applies to the
// next line. Multiple quoted regexps in one want comment expect that
// many diagnostics on the target line.
func runFixture(t *testing.T, rel string) *Package {
	t.Helper()
	l := newTestLoader(t)
	pkg, err := l.Load(fixturePrefix + rel)
	if err != nil {
		t.Fatalf("load fixture %s: %v", rel, err)
	}
	diags := Run([]*Package{pkg}, All)
	checkWants(t, pkg, diags)
	return pkg
}

var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantSet map[string]map[int][]*regexp.Regexp // file -> line -> patterns

func collectWants(t *testing.T, pkg *Package) wantSet {
	t.Helper()
	wants := wantSet{}
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(filename)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(src), "\n")
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				// Standalone comments (nothing but whitespace before
				// them) refer to the following line.
				if line-1 < len(lines) && strings.TrimSpace(lines[line-1][:pos.Column-1]) == "" {
					line++
				}
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filename, pos.Line, m[1], err)
					}
					if wants[filename] == nil {
						wants[filename] = map[int][]*regexp.Regexp{}
					}
					wants[filename][line] = append(wants[filename][line], re)
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		patterns := wants[d.Pos.Filename][d.Pos.Line]
		matched := -1
		for i, re := range patterns {
			if re != nil && re.MatchString(d.Analyzer+": "+d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		patterns[matched] = nil // consume
	}
	for file, byLine := range wants {
		for line, patterns := range byLine {
			for _, re := range patterns {
				if re != nil {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, re)
				}
			}
		}
	}
}

func TestMapOrderFixture(t *testing.T) { runFixture(t, "maporder/internal/serve") }
func TestCtxPollFixture(t *testing.T)  { runFixture(t, "ctxpoll/internal/dp") }
func TestCtxPollShardFixture(t *testing.T) {
	// The sharded tier is covered too: dispatch-round and rank-iteration
	// loops (runGroup/RunRank heavy calls) must poll, with the worker
	// run's stopped() accessor accepted as a poll.
	runFixture(t, "ctxpoll/internal/shard")
}
func TestFingerprintFixture(t *testing.T) { runFixture(t, "fingerprintcover") }
func TestFingerprintCleanFixture(t *testing.T) {
	runFixture(t, "fingerprintok")
}
func TestCSRMutFixture(t *testing.T) { runFixture(t, "csrmut") }
func TestCSRMutExemptFixture(t *testing.T) {
	// The same writes inside an owner package (internal/gen suffix) are
	// legal: the fixture has no want comments and must stay clean.
	runFixture(t, "csrmutok/internal/gen")
}
func TestGuardedByFixture(t *testing.T)   { runFixture(t, "guardedby") }
func TestSuppressionFixture(t *testing.T) { runFixture(t, "suppress/internal/serve") }
func TestWireTrustFixture(t *testing.T)   { runFixture(t, "wiretrust/internal/shard") }
func TestWireTrustCleanFixture(t *testing.T) {
	// Bounds-checked decodes — the real codec's discipline — must stay
	// silent: the fixture has no want comments.
	runFixture(t, "wiretrustok/internal/shard")
}
func TestGoLeakFixture(t *testing.T)    { runFixture(t, "goleak/internal/serve") }
func TestHotAllocFixture(t *testing.T)  { runFixture(t, "hotalloc/internal/dp") }
func TestFloatFlowFixture(t *testing.T) { runFixture(t, "floatflow/internal/dp") }

// TestUnusedSuppressions pins the -unused-suppressions contract: a
// suppression that covers a live finding is silent, one that covers
// nothing is reported as stale.
func TestUnusedSuppressions(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.Load(fixturePrefix + "unusedsup/internal/serve")
	if err != nil {
		t.Fatal(err)
	}
	diags, unused := RunWithUnused([]*Package{pkg}, All)
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	if len(unused) != 1 {
		t.Fatalf("expected exactly one unused suppression, got %d: %v", len(unused), unused)
	}
	u := unused[0]
	if u.Analyzer != "suppress" || !strings.Contains(u.Message, `"maporder"`) {
		t.Errorf("unexpected unused-suppression diagnostic: %s", u)
	}
	if !strings.Contains(filepath.ToSlash(u.Pos.Filename), "unusedsup/internal/serve") {
		t.Errorf("unused suppression reported outside the fixture: %s", u.Pos.Filename)
	}
}

// TestBrokenPackageDoesNotPanic feeds fasciavet a package with a
// deliberate compile error: the loader must degrade (recording the type
// error) while analyzers still fire on the well-typed remainder.
func TestBrokenPackageDoesNotPanic(t *testing.T) {
	pkg := runFixture(t, "broken/internal/serve")
	if len(pkg.TypeErrs) == 0 {
		t.Fatal("expected type errors to be recorded for the broken fixture")
	}
}

// TestEachAnalyzerFires is the acceptance check that every analyzer has
// at least one golden fixture where it produces a finding.
func TestEachAnalyzerFires(t *testing.T) {
	fixtures := []string{
		"maporder/internal/serve",
		"ctxpoll/internal/dp",
		"fingerprintcover",
		"csrmut",
		"guardedby",
		"suppress/internal/serve",
		"wiretrust/internal/shard",
		"goleak/internal/serve",
		"hotalloc/internal/dp",
		"floatflow/internal/dp",
	}
	l := newTestLoader(t)
	var pkgs []*Package
	for _, rel := range fixtures {
		p, err := l.Load(fixturePrefix + rel)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	fired := map[string]bool{}
	for _, d := range Run(pkgs, All) {
		fired[d.Analyzer] = true
	}
	for _, a := range All {
		if !fired[a.Name] {
			t.Errorf("analyzer %s fired on no fixture", a.Name)
		}
	}
	if !fired["suppress"] {
		t.Error("suppression machinery reported no malformed suppressions")
	}
}

// TestTreeIsClean runs the full suite over the whole module, pinning
// the acceptance criterion that fasciavet exits 0 on the tree (and that
// every in-tree suppression is well-formed).
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	l := newTestLoader(t)
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrs {
			t.Errorf("typecheck %s: %v", p.Path, terr)
		}
	}
	for _, d := range Run(pkgs, All) {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestValidSuppressionTail(t *testing.T) {
	valid := []string{
		"ok — sort below erases order",
		"ok - reason",
		"ok -- reason",
		"ok  —  spaced out reason",
	}
	invalid := []string{
		"", "ok", "ok —", "ok --", "ok-", "reason only", "okay — x",
	}
	for _, s := range valid {
		if !validSuppressionTail(s) {
			t.Errorf("validSuppressionTail(%q) = false, want true", s)
		}
	}
	for _, s := range invalid {
		if validSuppressionTail(s) {
			t.Errorf("validSuppressionTail(%q) = true, want false", s)
		}
	}
}

func TestCountVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   int
	}{
		{"", 0},
		{"%d", 1},
		{"100%%", 0},
		{"v1|c=%d|part=%s|share=%t|root=%d", 4},
		{"%+0.3f %x", 2},
		{"%[1]d", 1},
	}
	for _, c := range cases {
		if got := countVerbs(c.format); got != c.want {
			t.Errorf("countVerbs(%q) = %d, want %d", c.format, got, c.want)
		}
	}
}

func TestPathHasSuffix(t *testing.T) {
	if !pathHasSuffix("repro/internal/dp", "internal/dp") {
		t.Error("expected suffix match")
	}
	if !pathHasSuffix("internal/dp", "internal/dp") {
		t.Error("expected exact match")
	}
	if pathHasSuffix("repro/printernal/dp", "internal/dp") {
		t.Error("matched across a segment boundary")
	}
}

// TestLoaderPositionsAreReal sanity-checks that fixture diagnostics
// carry positions inside the fixture files (guards against fset mixups
// between module and stdlib packages).
func TestLoaderPositionsAreReal(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.Load(fixturePrefix + "maporder/internal/serve")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{MapOrder})
	if len(diags) == 0 {
		t.Fatal("expected at least one maporder diagnostic")
	}
	for _, d := range diags {
		if !strings.Contains(filepath.ToSlash(d.Pos.Filename), "testdata/src/maporder") {
			t.Errorf("diagnostic position %s is outside the fixture", d.Pos.Filename)
		}
		if d.Pos.Line <= 0 || d.Pos.Column <= 0 {
			t.Errorf("diagnostic has no position: %+v", d)
		}
	}
	// All fixture files must have parsed.
	for _, f := range pkg.Files {
		if f == nil {
			t.Fatal("nil file in fixture package")
		}
		var _ ast.Node = f
	}
}
