package lint

// escape.go is hotalloc's second half: the compiler is the only honest
// judge of what escapes, so `fasciavet -escape` (wired as `make
// check-escape`) compiles the annotated packages with -gcflags=-m
// under a fresh GOCACHE — the check-bce technique, diagnostics only
// print when compilation actually runs — and cross-references every
// "escapes to heap" / "moved to heap" line against the //fascia:hotpath
// function ranges collected here.

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
)

// HotRange is the source extent of one annotated function.
type HotRange struct {
	File  string // as recorded in the FileSet (absolute)
	Start int    // first line of the declaration
	End   int    // last line of the body
	Func  string
}

// HotpathRanges collects the //fascia:hotpath function extents in the
// given packages.
func HotpathRanges(pkgs []*Package) []HotRange {
	var out []HotRange
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || !isHotpath(fd) {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				out = append(out, HotRange{
					File:  start.Filename,
					Start: start.Line,
					End:   end.Line,
					Func:  fd.Name.Name,
				})
			}
		}
	}
	return out
}

// EscapeDiag is one parsed compiler escape diagnostic.
type EscapeDiag struct {
	File string
	Line int
	Col  int
	Msg  string
}

// escapeMarkers are the -m diagnostics that mean a heap allocation.
// "does not escape" (which contains "escape") must stay excluded, so
// matching is on these exact phrases.
var escapeMarkers = []string{
	"escapes to heap",
	"moved to heap",
}

// ParseEscapeOutput extracts heap-escape diagnostics from `go build
// -gcflags=-m` output. Lines look like
//
//	internal/dp/lane8.go:30:12: make([]float64, n) escapes to heap
//	internal/table/bulk8.go:14:6: moved to heap: acc
//
// and everything else (package lines, inlining notes, "does not
// escape") is ignored.
func ParseEscapeOutput(out string) []EscapeDiag {
	var diags []EscapeDiag
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		marked := false
		for _, m := range escapeMarkers {
			if strings.Contains(line, m) {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		// file:line:col: msg
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		diags = append(diags, EscapeDiag{
			File: parts[0],
			Line: ln,
			Col:  col,
			Msg:  strings.TrimSpace(parts[3]),
		})
	}
	return diags
}

// EscapeFindings matches compiler escape diagnostics against hotpath
// ranges, producing hotalloc diagnostics for every escape inside an
// annotated function. Compiler paths are relative to the build
// directory; ranges carry FileSet (absolute) paths — they are matched
// by slash-normalized path suffix.
func EscapeFindings(ranges []HotRange, diags []EscapeDiag) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		df := filepath.ToSlash(d.File)
		for _, r := range ranges {
			if d.Line < r.Start || d.Line > r.End {
				continue
			}
			rf := filepath.ToSlash(r.File)
			if rf != df && !strings.HasSuffix(rf, "/"+df) && !strings.HasSuffix(df, "/"+rf) {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      token.Position{Filename: r.File, Line: d.Line, Column: d.Col},
				Analyzer: "hotalloc",
				Message: fmt.Sprintf(
					"compiler reports %q inside hotpath function %s; the //fascia:hotpath contract is zero heap allocation — hoist it or restructure",
					d.Msg, r.Func),
			})
			break
		}
	}
	return out
}
