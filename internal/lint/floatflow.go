package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatFlow extends maporder from "no map ranges in deterministic
// packages" to a dataflow property on the estimate path: a float
// accumulation (`sum += x`, `sum = sum + x`) whose operand *order*
// depends on an unordered iteration is a finding, because float
// addition does not commute in the last bit and the whole differential
// matrix (layout × kernel × batch × parallel mode, plus the seed-keyed
// cache) rests on bit-identical estimate streams.
//
// Unordered contexts: map ranges and sync.Map.Range callbacks (Go
// randomizes iteration), bodies of `go func` literals accumulating
// into captured variables (goroutine completion order), range-over-
// channel loops folding the received values (send interleaving), and
// select statements with two or more receive cases (case choice is
// random).
//
// Per-key accumulation (`m[k] += x` inside `for k := range src`) is
// exempt — each cell receives its adds in a fixed per-key order — and
// the check is interprocedural one level: a map-range loop that calls
// a helper whose summary says it accumulates floats into a passed
// accumulator is the same bug wearing a function call.
var FloatFlow = &Analyzer{
	Name: "floatflow",
	Doc:  "float accumulation ordered by map/sync.Map iteration, unordered channel receives, or goroutine completion (breaks bit-identical estimates)",
	Run:  runFloatFlow,
}

// floatFlowPkgs is the estimate path: the deterministic packages plus
// the distributed tiers that merge per-rank and per-shard totals.
var floatFlowPkgs = []string{
	"internal/dp",
	"internal/table",
	"internal/comb",
	"internal/serve",
	"internal/dist",
	"internal/shard",
}

func runFloatFlow(pass *Pass) {
	gated := false
	for _, s := range floatFlowPkgs {
		if pathHasSuffix(pass.Pkg.Path, s) {
			gated = true
			break
		}
	}
	if !gated {
		return
	}
	eng := newFlowEngine(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ff := &floatFlowWalker{pass: pass, eng: eng}
			ff.walk(fd.Body, nil)
		}
	}
}

// unorderedCtx describes why the enclosing iteration order is
// nondeterministic.
type unorderedCtx struct {
	why string
	// keyVars are the iteration variables; indexing an accumulator by
	// one of them makes the accumulation per-key and exempt.
	keyVars map[types.Object]bool
	// outerOnly restricts findings to accumulators declared outside
	// the given node (goroutine bodies: locals are fine).
	outer ast.Node
}

type floatFlowWalker struct {
	pass *Pass
	eng  *flowEngine
}

// walk descends statements carrying the innermost unordered context.
func (ff *floatFlowWalker) walk(n ast.Node, ctx *unorderedCtx) {
	if n == nil {
		return
	}
	info := ff.pass.Pkg.Info
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		switch m := m.(type) {
		case *ast.RangeStmt:
			ff.walkRange(m, ctx)
			return false
		case *ast.SelectStmt:
			ff.walkSelect(m, ctx)
			return false
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
				for _, a := range m.Call.Args {
					ff.walk(a, ctx)
				}
				ff.walk(lit.Body, &unorderedCtx{
					why:   "goroutine completion order",
					outer: lit,
				})
				return false
			}
			return true
		case *ast.CallExpr:
			// sync.Map.Range(func(k, v) { … }): the callback body runs
			// in randomized order.
			if lit, keys, ok := syncMapRangeCallback(info, m); ok {
				ff.walk(lit.Body, &unorderedCtx{
					why:     "sync.Map iteration order",
					keyVars: keys,
				})
				return false
			}
			if ctx != nil {
				ff.checkCallAccumulates(m, ctx)
			}
			return true
		case *ast.AssignStmt:
			if ctx != nil {
				ff.checkAccum(m, ctx)
			}
			return true
		}
		return true
	})
}

func (ff *floatFlowWalker) walkRange(rs *ast.RangeStmt, ctx *unorderedCtx) {
	info := ff.pass.Pkg.Info
	ff.walk(rs.X, ctx)
	next := ctx
	if why, ok := unorderedRange(info, rs); ok {
		keys := map[types.Object]bool{}
		for _, v := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := v.(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					keys[obj] = true
				}
			}
		}
		next = &unorderedCtx{why: why, keyVars: keys}
	}
	ff.walk(rs.Body, next)
}

func (ff *floatFlowWalker) walkSelect(sel *ast.SelectStmt, ctx *unorderedCtx) {
	recvCases := 0
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if commIsReceive(cc.Comm) {
			recvCases++
		}
	}
	next := ctx
	if recvCases >= 2 {
		next = &unorderedCtx{why: "select receive order across multiple channels"}
	}
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			// Wrap the clause body so walk's root-skip guard does not
			// swallow a bare accumulation statement.
			ff.walk(&ast.BlockStmt{List: cc.Body}, next)
		}
	}
}

func commIsReceive(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ue, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				return true
			}
		}
	case *ast.ExprStmt:
		if ue, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			return true
		}
	}
	return false
}

// unorderedRange classifies a range statement's iteration order.
func unorderedRange(info *types.Info, rs *ast.RangeStmt) (string, bool) {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type.Underlying()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Map:
		return "map iteration order", true
	case *types.Chan:
		return "channel receive order", true
	}
	return "", false
}

// syncMapRangeCallback matches m.Range(func(k, v any) bool { … }) on a
// sync.Map and returns the callback with its parameter objects.
func syncMapRangeCallback(info *types.Info, call *ast.CallExpr) (*ast.FuncLit, map[types.Object]bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" || len(call.Args) != 1 {
		return nil, nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil || !isSyncMap(tv.Type) {
		return nil, nil, false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit)
	if !ok {
		return nil, nil, false
	}
	keys := map[types.Object]bool{}
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, n := range f.Names {
				if obj := identObj(info, n); obj != nil {
					keys[obj] = true
				}
			}
		}
	}
	return lit, keys, true
}

func isSyncMap(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Map"
}

// checkAccum flags a float accumulation inside an unordered context.
func (ff *floatFlowWalker) checkAccum(s *ast.AssignStmt, ctx *unorderedCtx) {
	info := ff.pass.Pkg.Info
	if !isFloatAccumAssign(info, s) {
		return
	}
	lhs := s.Lhs[0]
	if ff.perKeyExempt(lhs, ctx) {
		return
	}
	if ctx.outer != nil && !ff.capturedFromOutside(lhs, ctx.outer) {
		return
	}
	ff.pass.Reportf(s.Pos(),
		"float accumulation into %s is ordered by %s, which is nondeterministic and breaks the bit-identical estimate stream; accumulate in a fixed order (sorted keys, indexed slots) instead",
		exprString(lhs), ctx.why)
}

// checkCallAccumulates flags a call whose summary says it accumulates
// floats into one of its arguments — the interprocedural form of the
// same bug.
func (ff *floatFlowWalker) checkCallAccumulates(call *ast.CallExpr, ctx *unorderedCtx) {
	sum, fd := ff.eng.summaryFor(call)
	if sum == nil || len(sum.floatAcc) == 0 {
		return
	}
	info := ff.pass.Pkg.Info
	recv, args := callParts(info, call)
	hit := func(i int, arg ast.Expr) {
		if !sum.floatAcc[i] || arg == nil {
			return
		}
		if ff.perKeyExempt(arg, ctx) {
			return
		}
		if ctx.outer != nil && !ff.capturedFromOutside(arg, ctx.outer) {
			return
		}
		ff.pass.Reportf(call.Pos(),
			"call to %s accumulates floats into %s in an order set by %s, which is nondeterministic and breaks the bit-identical estimate stream",
			fd.Name.Name, exprString(arg), ctx.why)
	}
	hit(-1, recv)
	for i, a := range args {
		hit(i, a)
	}
}

// perKeyExempt reports whether the accumulator is indexed by an
// iteration variable (per-key cells receive their adds in a fixed
// order, so the fold commutes at the cell level).
func (ff *floatFlowWalker) perKeyExempt(lhs ast.Expr, ctx *unorderedCtx) bool {
	if len(ctx.keyVars) == 0 {
		return false
	}
	info := ff.pass.Pkg.Info
	exempt := false
	ast.Inspect(lhs, func(n ast.Node) bool {
		ie, ok := n.(*ast.IndexExpr)
		if !ok {
			return !exempt
		}
		ast.Inspect(ie.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil && ctx.keyVars[obj] {
					exempt = true
				}
			}
			return !exempt
		})
		return !exempt
	})
	return exempt
}

// capturedFromOutside reports whether the expression's root variable
// is declared outside the given node (a goroutine literal): only
// captured accumulators race on completion order.
func (ff *floatFlowWalker) capturedFromOutside(e ast.Expr, outer ast.Node) bool {
	k, ok := exprKeyOf(ff.pass.Pkg.Info, e)
	if !ok || k.obj == nil {
		return false
	}
	pos := k.obj.Pos()
	return pos.IsValid() && (pos < outer.Pos() || pos > outer.End())
}
