package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc enforces the //fascia:hotpath annotation: the batched and
// tiled DP kernels, the table bulk/lane primitives, and the succinct
// codec inner loops run per vertex × per lane, so a single heap
// allocation inside them multiplies into GC pressure that the arena
// and scratch-pool design exists to avoid. An annotated function must
// not contain:
//
//   - slice, map, or pointer composite literals (value-typed array
//     literals are register material and stay legal);
//   - growing appends;
//   - conversions to interface types (the boxed value escapes);
//   - closures that capture variables (the capture escapes);
//   - calls to in-package functions that do any of the above without
//     carrying the annotation themselves (one level deep, so hiding
//     the allocation in a helper does not hide the cost).
//
// The static rules are necessary but not sufficient — the compiler is
// the judge of what actually escapes — so `fasciavet -escape` (wired
// as `make check-escape`) cross-checks every annotated line range
// against `go build -gcflags=-m` escape diagnostics under a fresh
// GOCACHE, mirroring check-bce.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "heap-allocating construct (composite literal, append, interface conversion, closure) in a //fascia:hotpath function",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	eng := newFlowEngine(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotpathBody(pass, eng, fd)
		}
	}
}

func checkHotpathBody(pass *Pass, eng *flowEngine, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if allocatingLit(info, n) {
				pass.Reportf(n.Pos(),
					"composite literal allocates in hotpath function %s; hoist it to a scratch buffer or the arena", name)
			}
		case *ast.FuncLit:
			if caps := closureCaptures(info, n); len(caps) > 0 {
				pass.Reportf(n.Pos(),
					"closure captures %s in hotpath function %s; captures escape to the heap — pass values explicitly or hoist the closure", caps[0], name)
			}
			return false // the literal's own body belongs to the closure
		case *ast.CallExpr:
			checkHotpathCall(pass, eng, n, name)
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, eng *flowEngine, call *ast.CallExpr, name string) {
	info := pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok {
		if tv.IsType() {
			// Conversion: flag when the target is an interface and the
			// operand is concrete (the value is boxed onto the heap).
			if len(call.Args) == 1 && isInterface(tv.Type) {
				if atv, ok := info.Types[call.Args[0]]; ok && atv.Type != nil && !isInterface(atv.Type) {
					pass.Reportf(call.Pos(),
						"conversion to interface %s boxes its operand in hotpath function %s; keep the concrete type on the hot path", tv.Type.String(), name)
				}
			}
			return
		}
		if tv.IsBuiltin() {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				pass.Reportf(call.Pos(),
					"append may grow and reallocate in hotpath function %s; pre-size the buffer outside the hot loop", name)
			}
			return
		}
	}
	// One level interprocedural: calling an unannotated in-package
	// function that allocates is the same cost wearing a call.
	if sum, fd := eng.summaryFor(call); sum != nil && sum.allocates && !sum.hotpath {
		pass.Reportf(call.Pos(),
			"hotpath function %s calls %s, which allocates (composite literal, append, or closure); annotate %s //fascia:hotpath and fix it, or hoist the call",
			name, fd.Name.Name, fd.Name.Name)
	}
}

// allocatingLit reports whether a composite literal heap-allocates:
// slice and map literals always do; struct/array literals only when
// their address is taken (&T{…}), which the parent UnaryExpr reports
// via the pointer type recorded for the literal's context — here we
// flag slice/map directly and let &T{} surface through the conversion
// and escape checks.
func allocatingLit(info *types.Info, cl *ast.CompositeLit) bool {
	tv, ok := info.Types[cl]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// closureCaptures lists the names a func literal references from its
// enclosing function (package-level objects don't count — they don't
// force a capture allocation).
func closureCaptures(info *types.Info, lit *ast.FuncLit) []string {
	var caps []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true // package-level var
		}
		pos := obj.Pos()
		if pos.IsValid() && (pos < lit.Pos() || pos > lit.End()) {
			seen[obj] = true
			caps = append(caps, id.Name)
		}
		return true
	})
	return caps
}
