package lint

// flow.go is the shared dataflow substrate behind the v2 analyzers
// (wiretrust, hotalloc, goleak, floatflow): a per-package function
// index that resolves calls to in-package declarations, and a
// lightweight taint walker with fixpoint function summaries so the
// analyzers see one level (or more, via summary chaining) across calls
// without importing x/tools. See DESIGN.md §8.
//
// The taint model is deliberately an approximation tuned to this
// codebase:
//
//   - sources: integers produced by encoding/binary decodes, bufio
//     reads, json/binary unmarshals, reads into []byte buffers, and —
//     in the wire-parsing packages — the contents of []byte parameters
//     (a []byte argument in internal/shard or internal/graph *is* wire
//     or file data by construction);
//   - sanitizers: any comparison that mentions the value (an if/for/
//     switch condition), or rebinding it from an untainted expression.
//     The model is branch-insensitive: comparing a value anywhere
//     before the sink counts, including loop bounds;
//   - sinks: make sizes, slice/array/string indexing, slice-expression
//     bounds, and io.CopyN budgets.
//
// Summaries carry taint across calls: returnsTaint (calling it yields
// a wire-derived value — the rbuf.u32 shape), paramToRet (a tainted
// argument taints the result — passthrough helpers), and paramToSink
// (a tainted argument reaches a sink inside the callee unchecked — the
// alloc-helper shape). The summary fixpoint iterates until stable, so
// helper chains deeper than one call still resolve.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose body must stay allocation
// free (checked statically by hotalloc and against the compiler's
// escape diagnostics by `fasciavet -escape` / `make check-escape`).
const hotpathDirective = "//fascia:hotpath"

// isHotpath reports whether the declaration carries the
// //fascia:hotpath directive in its doc comment group.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

// funcIndex maps every function and method declared in a package to
// its declaration, so analyzers can follow calls one level deep.
type funcIndex struct {
	pkg   *Package
	decls map[types.Object]*ast.FuncDecl
}

func newFuncIndex(pkg *Package) *funcIndex {
	idx := &funcIndex{pkg: pkg, decls: make(map[types.Object]*ast.FuncDecl)}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					idx.decls[obj] = fd
				}
			}
		}
	}
	return idx
}

// callObj resolves the object a call invokes (function, method, or
// builtin), or nil when the callee is dynamic.
func (idx *funcIndex) callObj(call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	if obj := idx.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return idx.pkg.Info.Defs[id]
}

// callee resolves a call to an in-package declaration, or (nil, nil).
func (idx *funcIndex) callee(call *ast.CallExpr) (*ast.FuncDecl, types.Object) {
	obj := idx.callObj(call)
	if obj == nil {
		return nil, nil
	}
	return idx.decls[obj], obj
}

// callParts splits a call into its receiver argument (nil for plain
// function calls) and ordinary arguments, matching the summary's
// parameter indexing (receiver = -1, params = 0..n-1).
func callParts(info *types.Info, call *ast.CallExpr) (recv ast.Expr, args []ast.Expr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			recv = sel.X
		}
	}
	return recv, call.Args
}

// taintKind distinguishes an untrusted integer value from a buffer
// whose contents are untrusted (indexing the latter yields the former;
// its length, via len, is always trusted).
type taintKind uint8

const (
	taintVal  taintKind = 1 << iota // a wire-derived scalar
	taintData                       // a buffer holding wire bytes
)

// taintKey names a trackable lvalue: a variable, or a selector chain
// rooted at one ("q", "q.Ranks", "r.b").
type taintKey struct {
	obj  types.Object
	path string
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// exprKeyOf canonicalizes an lvalue-ish expression to a taint key,
// unwrapping parens, derefs, and address-of.
func exprKeyOf(info *types.Info, e ast.Expr) (taintKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := identObj(info, e); obj != nil {
			return taintKey{obj: obj}, true
		}
	case *ast.SelectorExpr:
		if k, ok := exprKeyOf(info, e.X); ok {
			k.path += "." + e.Sel.Name
			return k, true
		}
	case *ast.StarExpr:
		return exprKeyOf(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKeyOf(info, e.X)
		}
	}
	return taintKey{}, false
}

// funcSummary is what the engine knows about one declared function.
type funcSummary struct {
	// returnsTaint: calling the function yields a wire-derived value
	// (the rbuf.u32 / readFrame shape).
	returnsTaint bool
	// paramToRet[i]: a tainted argument in position i (receiver: -1)
	// taints the result — passthrough and arithmetic helpers.
	paramToRet map[int]bool
	// paramToSink[i]: a tainted argument in position i reaches a
	// make/index/slice sink inside the callee without a bounds
	// comparison (the alloc-helper shape wiretrust chases).
	paramToSink map[int]bool
	// floatAcc[i]: the function accumulates float64/float32 (+=) into
	// storage rooted at parameter i (receiver: -1) — floatflow's
	// interprocedural hook.
	floatAcc map[int]bool
	// allocates: the body contains a composite literal, append, or
	// closure — hotalloc's one-level callee check.
	allocates bool
	// hotpath: the declaration carries //fascia:hotpath.
	hotpath bool
}

// flowEngine is the per-package analysis context shared by the v2
// analyzers.
type flowEngine struct {
	pkg       *Package
	idx       *funcIndex
	summaries map[types.Object]*funcSummary
	wireDone  bool
}

func newFlowEngine(pkg *Package) *flowEngine {
	eng := &flowEngine{
		pkg:       pkg,
		idx:       newFuncIndex(pkg),
		summaries: make(map[types.Object]*funcSummary),
	}
	for obj, fd := range eng.idx.decls {
		sum := &funcSummary{
			paramToRet:  make(map[int]bool),
			paramToSink: make(map[int]bool),
			floatAcc:    make(map[int]bool),
			hotpath:     isHotpath(fd),
		}
		eng.fillSyntactic(sum, fd)
		eng.summaries[obj] = sum
	}
	return eng
}

func (eng *flowEngine) summaryFor(call *ast.CallExpr) (*funcSummary, *ast.FuncDecl) {
	fd, obj := eng.idx.callee(call)
	if fd == nil {
		return nil, nil
	}
	return eng.summaries[obj], fd
}

// paramObjs lists a declaration's receiver and parameter objects.
func paramObjs(info *types.Info, fd *ast.FuncDecl) (recv types.Object, params []types.Object) {
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				recv = identObj(info, n)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				params = append(params, identObj(info, n))
			}
		}
	}
	return recv, params
}

// fillSyntactic computes the fixpoint-free summary bits: floatAcc and
// allocates.
func (eng *flowEngine) fillSyntactic(sum *funcSummary, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	info := eng.pkg.Info
	recv, params := paramObjs(info, fd)
	indexOf := func(obj types.Object) (int, bool) {
		if obj == nil {
			return 0, false
		}
		if obj == recv {
			return -1, true
		}
		for i, p := range params {
			if obj == p {
				return i, true
			}
		}
		return 0, false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit, *ast.FuncLit:
			sum.allocates = true
			if _, ok := n.(*ast.FuncLit); ok {
				return false // don't attribute a closure's accumulation to the outer func
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if tv, ok := info.Types[n.Fun]; ok && tv.IsBuiltin() {
					sum.allocates = true
				}
			}
		case *ast.AssignStmt:
			if !isFloatAccumAssign(info, n) {
				return true
			}
			for _, lhs := range n.Lhs {
				if k, ok := exprKeyOf(info, lhs); ok {
					if i, ok := indexOf(k.obj); ok {
						sum.floatAcc[i] = true
					}
				}
			}
		}
		return true
	})
}

// isFloatAccumAssign reports whether the statement accumulates into a
// float: `x += e`, `x -= e`, or `x = x + e` with float-typed x.
func isFloatAccumAssign(info *types.Info, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 {
		return false
	}
	if !isFloatExpr(info, s.Lhs[0]) {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return true
	case token.ASSIGN:
		be, ok := ast.Unparen(s.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return false
		}
		l := exprString(s.Lhs[0])
		return exprString(be.X) == l || exprString(be.Y) == l
	}
	return false
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ensureWireSummaries runs the taint fixpoint (returnsTaint,
// paramToRet, paramToSink). Only wiretrust pays for it; the other
// analyzers use the syntactic summary bits.
func (eng *flowEngine) ensureWireSummaries() {
	if eng.wireDone {
		return
	}
	eng.wireDone = true
	for changed := true; changed; {
		changed = false
		for obj, fd := range eng.idx.decls {
			if eng.updateWireSummary(eng.summaries[obj], fd) {
				changed = true
			}
		}
	}
}

func (eng *flowEngine) updateWireSummary(sum *funcSummary, fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return false
	}
	changed := false
	// Intrinsic sources (plus callee summaries) to the return value.
	w := eng.newWalker(modeFull, nil)
	w.seedByteParams(fd)
	w.walkBody(fd.Body)
	if w.returnTainted && !sum.returnsTaint {
		sum.returnsTaint = true
		changed = true
	}
	// Each parameter in isolation: does it alone reach a sink or the
	// return value? (Sources are off in modeParam so only the seeded
	// parameter's flow is attributed.)
	recv, params := paramObjs(eng.pkg.Info, fd)
	seed := func(i int, obj types.Object) {
		if obj == nil || sum.paramToSink[i] && sum.paramToRet[i] {
			return
		}
		pw := eng.newWalker(modeParam, nil)
		pw.tainted[taintKey{obj: obj}] = taintForType(obj.Type())
		pw.walkBody(fd.Body)
		if pw.sinkHit && !sum.paramToSink[i] {
			sum.paramToSink[i] = true
			changed = true
		}
		if pw.returnTainted && !sum.paramToRet[i] {
			sum.paramToRet[i] = true
			changed = true
		}
	}
	seed(-1, recv)
	for i, p := range params {
		seed(i, p)
	}
	return changed
}

// taintForType: []byte parameters carry untrusted bytes; everything
// else is seeded as an untrusted scalar.
func taintForType(t types.Type) taintKind {
	if isByteSlice(t) {
		return taintData
	}
	return taintVal
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// taintMode selects the walker's source model. modeFull enables the
// intrinsic sources (binary decodes, reads, byte params) and callee
// returnsTaint; modeParam tracks only the explicitly seeded keys, so
// summary bits attribute flows to a single parameter.
type taintMode uint8

const (
	modeFull taintMode = iota
	modeParam
)

// taintWalker walks one function body in statement order, maintaining
// the tainted/sanitized key sets and reporting sinks.
type taintWalker struct {
	eng  *flowEngine
	info *types.Info
	mode taintMode

	tainted   map[taintKey]taintKind
	sanitized map[taintKey]bool

	sinkHit       bool
	returnTainted bool
	report        func(pos token.Pos, msg string)
}

func (eng *flowEngine) newWalker(mode taintMode, report func(token.Pos, string)) *taintWalker {
	return &taintWalker{
		eng:       eng,
		info:      eng.pkg.Info,
		mode:      mode,
		tainted:   make(map[taintKey]taintKind),
		sanitized: make(map[taintKey]bool),
		report:    report,
	}
}

// seedByteParams marks []byte parameters (and []byte fields of struct
// or pointer-to-struct receivers/parameters, the rbuf shape) as wire
// data — the wire-parsing-package assumption.
func (w *taintWalker) seedByteParams(fd *ast.FuncDecl) {
	recv, params := paramObjs(w.info, fd)
	seed := func(obj types.Object) {
		if obj == nil {
			return
		}
		t := obj.Type()
		if isByteSlice(t) {
			w.tainted[taintKey{obj: obj}] = taintData
			return
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if isByteSlice(f.Type()) {
					w.tainted[taintKey{obj: obj, path: "." + f.Name()}] = taintData
				}
			}
		}
	}
	seed(recv)
	for _, p := range params {
		seed(p)
	}
}

func (w *taintWalker) analyzeFunc(fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	w.seedByteParams(fd)
	w.walkBody(fd.Body)
}

func (w *taintWalker) sink(pos token.Pos, format string, args ...any) {
	w.sinkHit = true
	if w.report != nil {
		w.report(pos, fmt.Sprintf(format, args...))
	}
}

func (w *taintWalker) walkBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	for _, s := range body.List {
		w.walkStmt(s)
	}
}

func (w *taintWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.walkAssign(s)
	case *ast.ExprStmt:
		w.scan(s.X)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.scan(v)
			}
			if len(vs.Values) == len(vs.Names) {
				for i, name := range vs.Names {
					w.assignOne(name, vs.Values[i], token.DEFINE)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scan(s.Cond)
		w.sanitizeFromCond(s.Cond)
		w.walkBody(s.Body)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.BlockStmt:
		w.walkBody(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.scan(s.Cond)
			w.sanitizeFromCond(s.Cond)
		}
		w.walkBody(s.Body)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		w.scan(s.X)
		if w.taintOf(s.X)&taintData != 0 && s.Value != nil {
			w.setTaint(s.Value, taintVal, token.DEFINE)
		}
		w.walkBody(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.scan(s.Tag)
			w.sanitizeExprTree(s.Tag)
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				w.scan(e)
			}
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Assign)
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				w.walkStmt(cc.Comm)
			}
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r)
			if w.taintOf(r) != 0 {
				w.returnTainted = true
			}
		}
	case *ast.GoStmt:
		w.scanCall(s.Call)
	case *ast.DeferStmt:
		w.scanCall(s.Call)
	case *ast.SendStmt:
		w.scan(s.Chan)
		w.scan(s.Value)
	case *ast.IncDecStmt:
		w.scan(s.X)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

func (w *taintWalker) walkAssign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		w.scan(r)
	}
	switch {
	case len(s.Lhs) == len(s.Rhs):
		for i := range s.Lhs {
			w.assignOne(s.Lhs[i], s.Rhs[i], s.Tok)
		}
	case len(s.Rhs) == 1:
		// Multi-value form (call, map read, type assert): the result
		// kind applies to every binding.
		kind := w.taintOf(s.Rhs[0])
		for _, l := range s.Lhs {
			w.setTaint(l, kind, s.Tok)
		}
	}
}

func (w *taintWalker) assignOne(lhs, rhs ast.Expr, tok token.Token) {
	// Struct literals carry field-level taint: `r := rbuf{b: data}`
	// taints r.b rather than r wholesale.
	if cl, ok := compositeLitOf(rhs); ok {
		if k, okk := exprKeyOf(w.info, lhs); okk {
			for _, el := range cl.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				fid, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if fk := w.taintOf(kv.Value); fk != 0 {
					sub := taintKey{obj: k.obj, path: k.path + "." + fid.Name}
					w.tainted[sub] = fk
					delete(w.sanitized, sub)
				}
			}
		}
	}
	w.setTaint(lhs, w.taintOf(rhs), tok)
}

func compositeLitOf(e ast.Expr) (*ast.CompositeLit, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return e, true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return cl, true
			}
		}
	}
	return nil, false
}

func (w *taintWalker) setTaint(lhs ast.Expr, kind taintKind, tok token.Token) {
	k, ok := exprKeyOf(w.info, lhs)
	if !ok {
		return
	}
	switch tok {
	case token.ASSIGN, token.DEFINE:
		if kind != 0 {
			w.tainted[k] = kind
			delete(w.sanitized, k)
		} else {
			delete(w.tainted, k)
			delete(w.sanitized, k)
		}
	default: // op= merges taint in, never launders it out
		if kind != 0 {
			w.tainted[k] |= kind
			delete(w.sanitized, k)
		}
	}
}

// taintExpr marks the key behind e (unwrapping &x) with kind — the
// out-parameter side effect of binary.Read / json Decode / io.ReadFull.
func (w *taintWalker) taintExpr(e ast.Expr, kind taintKind) {
	if k, ok := exprKeyOf(w.info, e); ok {
		w.tainted[k] |= kind
		delete(w.sanitized, k)
	}
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// sanitizeFromCond treats every comparison inside a condition as a
// bounds check for the values it mentions.
func (w *taintWalker) sanitizeFromCond(cond ast.Expr) {
	if cond == nil {
		return
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && isComparison(be.Op) {
			w.sanitizeExprTree(be.X)
			w.sanitizeExprTree(be.Y)
		}
		return true
	})
}

// sanitizeExprTree clears taint for every key mentioned in the tree.
func (w *taintWalker) sanitizeExprTree(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if k, ok := exprKeyOf(w.info, ex); ok {
			w.sanitized[k] = true
			delete(w.tainted, k)
		}
		return true
	})
}

// taintOf computes the taint kind of an expression (pure; side effects
// and sinks live in scan/scanCall).
func (w *taintWalker) taintOf(e ast.Expr) taintKind {
	if e == nil {
		return 0
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
		k, ok := exprKeyOf(w.info, e.(ast.Expr))
		if !ok {
			return 0
		}
		if w.sanitized[k] {
			return 0
		}
		if kind, ok := w.tainted[k]; ok {
			return kind
		}
		// A selector under a tainted root (a struct decoded wholesale)
		// is tainted unless that exact field was sanitized.
		for path := k.path; path != ""; {
			i := strings.LastIndex(path, ".")
			if i < 0 {
				break
			}
			path = path[:i]
			pk := taintKey{obj: k.obj, path: path}
			if w.sanitized[pk] {
				return 0
			}
			if kind, ok := w.tainted[pk]; ok && kind&taintVal != 0 {
				return taintVal
			}
		}
		return 0
	case *ast.BinaryExpr:
		if isComparison(e.Op) || e.Op == token.LAND || e.Op == token.LOR {
			return 0
		}
		return w.taintOf(e.X) | w.taintOf(e.Y)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return 0
		}
		return w.taintOf(e.X)
	case *ast.CallExpr:
		return w.callResultTaint(e)
	case *ast.IndexExpr:
		if w.taintOf(e.X)&taintData != 0 {
			return taintVal
		}
		return 0
	case *ast.SliceExpr:
		return w.taintOf(e.X) & taintData
	case *ast.TypeAssertExpr:
		return w.taintOf(e.X)
	}
	return 0
}

// wireSourceFuncs are the stdlib calls whose results are wire-derived.
var wireSourceFuncs = map[string]map[string]bool{
	"encoding/binary": {
		"Uint16": true, "Uint32": true, "Uint64": true,
		"ReadUvarint": true, "ReadVarint": true,
		"Uvarint": true, "Varint": true,
	},
	"bufio": {
		"ReadByte": true, "ReadBytes": true, "ReadSlice": true,
		"ReadString": true, "ReadRune": true,
	},
}

func (w *taintWalker) callResultTaint(call *ast.CallExpr) taintKind {
	info := w.info
	if tv, ok := info.Types[call.Fun]; ok {
		if tv.IsType() { // conversion: int(n), string(b) — passthrough
			if len(call.Args) == 1 {
				return w.taintOf(call.Args[0])
			}
			return 0
		}
		if tv.IsBuiltin() {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				var kind taintKind
				for _, a := range call.Args {
					kind |= w.taintOf(a)
				}
				return kind
			}
			return 0 // len, cap, min, max, make, … are trusted
		}
	}
	obj := w.eng.idx.callObj(call)
	if obj != nil && obj.Pkg() != nil && w.mode == modeFull {
		pkgPath := obj.Pkg().Path()
		if names, ok := wireSourceFuncs[pkgPath]; ok && names[obj.Name()] {
			return taintVal
		}
		if pkgPath == "math" && (obj.Name() == "Float64frombits" || obj.Name() == "Float32frombits") {
			if len(call.Args) == 1 {
				return w.taintOf(call.Args[0])
			}
		}
	}
	// In-package callee: returnsTaint and paramToRet summaries.
	if sum, _ := w.eng.summaryFor(call); sum != nil {
		if w.mode == modeFull && sum.returnsTaint {
			return taintVal
		}
		recv, args := callParts(info, call)
		if recv != nil && sum.paramToRet[-1] && w.taintOf(recv) != 0 {
			return taintVal
		}
		for i, a := range args {
			if sum.paramToRet[i] && w.taintOf(a) != 0 {
				return taintVal
			}
		}
	}
	return 0
}

// scan descends an expression, reporting sinks and applying call side
// effects in evaluation order.
func (w *taintWalker) scan(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		w.scanCall(e)
	case *ast.IndexExpr:
		w.scan(e.X)
		w.scan(e.Index)
		if w.taintOf(e.Index)&taintVal != 0 && !w.isMapOrTypeParamIndex(e) {
			w.sink(e.Index.Pos(),
				"wire-derived index %s reaches %s[...] without a bounds comparison; validate it against the length first",
				exprString(e.Index), exprString(e.X))
		}
	case *ast.SliceExpr:
		w.scan(e.X)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b == nil {
				continue
			}
			w.scan(b)
			if w.taintOf(b)&taintVal != 0 {
				w.sink(b.Pos(),
					"wire-derived size %s bounds a slice of %s without a bounds comparison; validate it against the available bytes first",
					exprString(b), exprString(e.X))
			}
		}
	case *ast.BinaryExpr:
		w.scan(e.X)
		w.scan(e.Y)
	case *ast.UnaryExpr:
		w.scan(e.X)
	case *ast.ParenExpr:
		w.scan(e.X)
	case *ast.StarExpr:
		w.scan(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.scan(kv.Value)
			} else {
				w.scan(el)
			}
		}
	case *ast.FuncLit:
		w.walkBody(e.Body)
	case *ast.TypeAssertExpr:
		w.scan(e.X)
	case *ast.KeyValueExpr:
		w.scan(e.Value)
	}
}

func (w *taintWalker) isMapOrTypeParamIndex(e *ast.IndexExpr) bool {
	tv, ok := w.info.Types[e.X]
	if !ok || tv.Type == nil {
		return true // no type info (broken package): stay quiet
	}
	if tv.IsType() {
		return true // generic instantiation, not an index
	}
	t := tv.Type.Underlying()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Map, *types.Signature:
		return true
	}
	return false
}

func (w *taintWalker) scanCall(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.scan(sel.X)
	}
	for _, a := range call.Args {
		w.scan(a)
	}

	info := w.info
	if tv, ok := info.Types[call.Fun]; ok {
		if tv.IsType() {
			return
		}
		if tv.IsBuiltin() {
			id, _ := ast.Unparen(call.Fun).(*ast.Ident)
			if id != nil && id.Name == "make" && len(call.Args) > 1 {
				for _, sz := range call.Args[1:] {
					if w.taintOf(sz)&taintVal != 0 {
						w.sink(sz.Pos(),
							"wire-derived length %s sizes a make without a bounds comparison; validate it against a protocol limit first",
							exprString(sz))
					}
				}
			}
			return
		}
	}

	if obj := w.eng.idx.callObj(call); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "io":
			switch obj.Name() {
			case "ReadFull", "ReadAtLeast":
				if len(call.Args) >= 2 && w.mode == modeFull {
					w.taintExpr(call.Args[1], taintData)
				}
			case "CopyN":
				if len(call.Args) == 3 && w.taintOf(call.Args[2])&taintVal != 0 {
					w.sink(call.Args[2].Pos(),
						"wire-derived size %s budgets io.CopyN without a bounds comparison; validate it against a protocol limit first",
						exprString(call.Args[2]))
				}
			}
		case "encoding/binary":
			if obj.Name() == "Read" && len(call.Args) == 3 && w.mode == modeFull {
				w.taintExpr(call.Args[2], taintVal)
			}
		case "encoding/json":
			if w.mode == modeFull {
				switch obj.Name() {
				case "Unmarshal":
					if len(call.Args) == 2 {
						w.taintExpr(call.Args[1], taintVal)
					}
				case "Decode":
					if len(call.Args) == 1 {
						w.taintExpr(call.Args[0], taintVal)
					}
				}
			}
		}
		// A Read(buf)-shaped method on any reader fills buf with wire
		// or file bytes.
		if w.mode == modeFull && (obj.Name() == "Read" || obj.Name() == "ReadAt") &&
			len(call.Args) >= 1 && obj.Pkg().Path() != w.eng.pkg.Path {
			if tv, ok := info.Types[call.Args[0]]; ok && tv.Type != nil && isByteSlice(tv.Type) {
				w.taintExpr(call.Args[0], taintData)
			}
		}
	}

	// In-package callee: tainted arguments reaching its sinks.
	if sum, fd := w.eng.summaryFor(call); sum != nil {
		recv, args := callParts(info, call)
		if recv != nil && sum.paramToSink[-1] && w.taintOf(recv) != 0 {
			w.sink(recv.Pos(),
				"wire-derived value %s is the receiver of %s, which sizes an allocation or indexes with it without a bounds comparison",
				exprString(recv), fd.Name.Name)
		}
		for i, a := range args {
			if sum.paramToSink[i] && w.taintOf(a) != 0 {
				w.sink(a.Pos(),
					"wire-derived value %s is passed to %s, which sizes an allocation or indexes with it without a bounds comparison",
					exprString(a), fd.Name.Name)
			}
		}
	}
}
