// Package lint is fasciavet's analysis engine: a stdlib-only static
// analyzer (go/parser + go/types, no x/tools) that mechanizes the
// invariants FASCIA's runtime tests establish — deterministic summation
// order, sub-100ms cancellation, cache-key completeness, CSR
// immutability, mutex discipline, bounds-checked wire lengths,
// allocation-free hotpaths, reachable goroutine exits, and ordered
// float accumulation — so a violation fails `make lint` the moment it
// is written instead of the night a cache serves a wrong count. The
// dataflow analyzers (wiretrust, hotalloc, goleak, floatflow) share
// the interprocedural flow engine in flow.go. See DESIGN.md §8
// "Static analysis".
//
// Findings are suppressed with a mandatory-reason comment on the
// offending line or the line above:
//
//	//lint:<analyzer> ok — <reason>
//
// A suppression without a reason, or naming an unknown analyzer, is
// itself a diagnostic: justifications are part of the contract.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, printable as file:line:col: analyzer: msg.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one project-specific check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and suppressions.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Analyzer is the check being run.
	Analyzer *Analyzer

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the fasciavet analyzer suite. The first five are PR 5's
// single-function checks; wiretrust, hotalloc, goleak, and floatflow
// are the v2 dataflow analyzers built on the flow engine (flow.go).
var All = []*Analyzer{
	MapOrder, CtxPoll, FingerprintCover, CSRMut, GuardedBy,
	WireTrust, HotAlloc, GoLeak, FloatFlow,
}

// Run applies the analyzers to every package, resolves suppression
// comments (dropping suppressed findings, reporting malformed or unknown
// suppressions), and returns the surviving diagnostics sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := run(pkgs, analyzers)
	return diags
}

// RunWithUnused is Run plus the -unused-suppressions report: the
// second slice holds one diagnostic per well-formed suppression
// comment that matched no finding on its line or the next (a stale
// suppression is dead weight that hides nothing and misleads readers).
func RunWithUnused(pkgs []*Package, analyzers []*Analyzer) (diags, unused []Diagnostic) {
	return run(pkgs, analyzers)
}

func run(pkgs []*Package, analyzers []*Analyzer) (out, unused []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		sup, supDiags := collectSuppressions(pkg, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Analyzer: a, diags: &raw}
			a.Run(pass)
		}
		for _, d := range raw {
			if !sup.covers(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
				out = append(out, d)
			}
		}
		out = append(out, supDiags...)
		unused = append(unused, sup.unused()...)
	}
	sortDiags(out)
	sortDiags(unused)
	return out, unused
}

func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppressions maps file -> comment line -> analyzer names suppressed
// there. A suppression on line L covers findings on L (trailing comment)
// and L+1 (comment on its own line above the statement). Each entry
// remembers whether it ever matched a finding, feeding the
// -unused-suppressions report.
type supEntry struct {
	pos  token.Position // of the suppression comment
	used bool
}

type suppressions struct {
	byFile map[string]map[int]map[string]*supEntry
}

func (s *suppressions) covers(file string, line int, analyzer string) bool {
	lines := s.byFile[file]
	if lines == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		if e := lines[l][analyzer]; e != nil {
			e.used = true
			return true
		}
	}
	return false
}

// unused reports every well-formed suppression that covered nothing.
func (s *suppressions) unused() []Diagnostic {
	var out []Diagnostic
	for _, lines := range s.byFile {
		for _, set := range lines {
			for name, e := range set {
				if e.used {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      e.pos,
					Analyzer: "suppress",
					Message: fmt.Sprintf(
						"suppression for %q matches no finding on this or the next line; remove it (stale suppressions hide nothing and mislead readers)", name),
				})
			}
		}
	}
	return out
}

// suppressPrefix introduces a suppression comment. The full syntax is
// the prefix, an analyzer name, the word "ok", a dash, and a
// non-empty reason.
const suppressPrefix = "lint:"

// collectSuppressions scans every comment in the package for
// suppression directives. Well-formed directives are indexed;
// malformed ones (missing reason, unknown analyzer) become diagnostics
// — an unexplained suppression is as much a finding as the thing it
// hides.
func collectSuppressions(pkg *Package, known map[string]bool) (*suppressions, []Diagnostic) {
	sup := &suppressions{byFile: make(map[string]map[int]map[string]*supEntry)}
	knownNames := make([]string, 0, len(known))
	for n := range known {
		knownNames = append(knownNames, n)
	}
	sort.Strings(knownNames)
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "suppress",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, suppressPrefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(rest, " ")
				name = strings.TrimSpace(name)
				if !known[name] {
					report(c.Pos(), "suppression names unknown analyzer %q (known: %s)", name, strings.Join(knownNames, ", "))
					continue
				}
				if !validSuppressionTail(reason) {
					report(c.Pos(), "malformed suppression for %q: want //%s%s ok — <reason> (the reason is mandatory)", name, suppressPrefix, name)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := sup.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]*supEntry)
					sup.byFile[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]*supEntry)
					lines[pos.Line] = set
				}
				set[name] = &supEntry{pos: pos}
			}
		}
	}
	return sup, diags
}

// validSuppressionTail checks the `ok — <reason>` part of a suppression.
// The dash may be an em dash, "--", or "-"; the reason must be
// non-empty.
func validSuppressionTail(tail string) bool {
	tail = strings.TrimSpace(tail)
	rest, ok := strings.CutPrefix(tail, "ok")
	if !ok {
		return false
	}
	rest = strings.TrimSpace(rest)
	for _, dash := range []string{"—", "--", "-"} {
		if r, ok := strings.CutPrefix(rest, dash); ok {
			return strings.TrimSpace(r) != ""
		}
	}
	return false
}

// pathHasSuffix reports whether the import path ends with the given
// slash-separated suffix on a segment boundary ("a/internal/dp" matches
// "internal/dp"; "a/printernal/dp" does not).
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// exprString renders a (simple) expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	default:
		return "<expr>"
	}
}
