package dist

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/comb"
	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/tmpl"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return graph.MustFromEdges(n, edges, nil)
}

// TestDistributedMatchesSharedMemory is the keystone: the distributed
// runtime must produce bit-identical per-iteration estimates to the
// shared-memory engine under the same seed, for any rank count.
func TestDistributedMatchesSharedMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3; trial++ {
		g := randomGraph(rng, 40+20*trial, 120+40*trial)
		tr := tmpl.MustNamed([]string{"U3-1", "U5-2", "U7-1"}[trial])

		cfg := dp.DefaultConfig()
		cfg.Seed = 11
		single, err := dp.New(g, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.Run(4)
		if err != nil {
			t.Fatal(err)
		}

		for _, ranks := range []int{1, 2, 3, 7} {
			de, err := New(g, tr, Config{Ranks: ranks, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			got, err := de.Run(4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.PerIteration {
				if got.PerIteration[i] != want.PerIteration[i] {
					t.Fatalf("trial %d ranks=%d iter %d: dist %v, shared %v",
						trial, ranks, i, got.PerIteration[i], want.PerIteration[i])
				}
			}
		}
	}
}

// TestDistributedColorfulExact checks against the brute-force oracle too.
func TestDistributedColorfulExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 25, 70)
	tr := tmpl.Spider(2, 1, 1)
	de, err := New(g, tr, Config{Ranks: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := de.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the same coloring.
	crng := rand.New(rand.NewSource(3))
	colors := make([]int8, g.N())
	for i := range colors {
		colors[i] = int8(crng.Intn(5))
	}
	wantColorful := exact.CountColorfulMappings(g, tr, colors)
	gotColorful := res.PerIteration[0] * de.prob * float64(de.aut)
	if diff := gotColorful - float64(wantColorful); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("distributed colorful total %v, exact %d", gotColorful, wantColorful)
	}
}

func TestCommunicationAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 60, 180)
	tr := tmpl.Path(4)

	one, err := New(g, tr, Config{Ranks: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := one.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CommBytes != 0 || r1.Messages != 0 {
		t.Fatalf("single rank should not communicate: %d bytes, %d msgs", r1.CommBytes, r1.Messages)
	}

	four, err := New(g, tr, Config{Ranks: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := four.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if r4.CommBytes <= 0 || r4.Messages <= 0 {
		t.Fatal("multi-rank run reported no communication")
	}
	// Messages: per iteration, per internal DP step, each ordered rank
	// pair with a non-empty needs list exchanges exactly one message
	// (empty packets are skipped — on this dense random graph every pair
	// communicates, so the count equals the old all-pairs formula).
	internal := 0
	for _, n := range four.tree.Nodes {
		if !n.IsLeaf() {
			internal++
		}
	}
	pairs := 0
	for s := 0; s < 4; s++ {
		for r := 0; r < 4; r++ {
			if s != r && len(four.NeedList(s, r)) > 0 {
				pairs++
			}
		}
	}
	wantMsgs := int64(2 /*iters*/ * internal * pairs)
	if r4.Messages != wantMsgs {
		t.Fatalf("messages = %d, want %d", r4.Messages, wantMsgs)
	}
	// Partitioning bounds per-rank rows: with 4 ranks nobody should hold
	// more rows than a single rank run holds.
	if r4.MaxRankRows > r1.MaxRankRows {
		t.Fatalf("per-rank rows %d exceed single-rank %d", r4.MaxRankRows, r1.MaxRankRows)
	}
	if r4.MaxRankRows <= 0 {
		t.Fatal("row accounting broken")
	}
}

// TestEmptyGraphRejected pins the satellite fix: dist.New on an empty
// graph used to reach the owner lookup's v*p/n proportionality with
// n = 0; it must instead refuse with the typed error.
func TestEmptyGraphRejected(t *testing.T) {
	g := graph.MustFromEdges(0, nil, nil)
	_, err := New(g, tmpl.Path(3), Config{Ranks: 2, Seed: 1})
	if !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("New on empty graph = %v, want ErrEmptyGraph", err)
	}
	if _, err := New(nil, tmpl.Path(3), Config{Ranks: 2, Seed: 1}); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("New on nil graph = %v, want ErrEmptyGraph", err)
	}
}

// TestNoEmptyPacketsOnPathGraph pins the corrected message accounting
// before it becomes wire traffic. A path graph block-partitioned into 4
// ranks only has boundary edges between adjacent ranks, so only the 6
// ordered adjacent pairs may exchange; the old protocol shipped an empty
// packet to every other rank for every internal node (12 ordered pairs),
// inflating Messages by 2x relative to what a real MPI run would send.
func TestNoEmptyPacketsOnPathGraph(t *testing.T) {
	const n, ranks, iters = 40, 4, 2
	edges := make([][2]int32, n-1)
	for i := range edges {
		edges[i] = [2]int32{int32(i), int32(i + 1)}
	}
	g := graph.MustFromEdges(n, edges, nil)
	tr := tmpl.Path(4)
	de, err := New(g, tr, Config{Ranks: ranks, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Partition sanity: non-adjacent rank pairs must have empty needs.
	nonEmptyPairs := 0
	for s := 0; s < ranks; s++ {
		for r := 0; r < ranks; r++ {
			if s == r {
				continue
			}
			if len(de.NeedList(s, r)) > 0 {
				nonEmptyPairs++
				if d := s - r; d != 1 && d != -1 {
					t.Fatalf("path graph: ranks %d and %d should not need each other", s, r)
				}
			}
		}
	}
	if nonEmptyPairs != 6 {
		t.Fatalf("non-empty needs pairs = %d, want 6 (adjacent ordered pairs)", nonEmptyPairs)
	}

	res, err := de.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	internal := 0
	for _, nd := range de.tree.Nodes {
		if !nd.IsLeaf() {
			internal++
		}
	}
	wantMsgs := int64(iters * internal * nonEmptyPairs)
	if res.Messages != wantMsgs {
		t.Fatalf("messages = %d, want %d (no packets for empty needs lists)", res.Messages, wantMsgs)
	}
	if res.CommBytes <= 0 {
		t.Fatal("adjacent ranks should still ship row payloads")
	}

	// The skip must not change the estimates: bit-identical to the
	// shared-memory engine, which is the deadlock-freedom proof in
	// practice (every rank completed the protocol).
	cfg := dp.DefaultConfig()
	cfg.Seed = 3
	single, err := dp.New(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.PerIteration {
		if res.PerIteration[i] != want.PerIteration[i] {
			t.Fatalf("iter %d: dist %v, shared %v", i, res.PerIteration[i], want.PerIteration[i])
		}
	}
}

// TestCommBytesUnchangedBySkip pins that dropping empty packets cannot
// change CommBytes: an empty packet carried zero payload, so the byte
// accounting on a graph where every pair communicates must equal the
// needs-list payload model exactly.
func TestCommBytesUnchangedBySkip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 60, 180)
	tr := tmpl.Path(4)
	de, err := New(g, tr, Config{Ranks: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := de.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Independent payload model: at each internal step the sender ships
	// the passive child's rows (width C(k, |passive|)) for its needs
	// list, 8 bytes per value plus a 4-byte id, nil rows free. Rows are
	// nil exactly when the sender holds no counts, so the model gives an
	// upper bound that a run with phantom empty packets would still meet
	// (they carried zero payload) — the pin is that bytes are non-zero
	// and within the needs-list bound.
	var upper int64
	for _, nd := range de.tree.Nodes {
		if nd.IsLeaf() {
			continue
		}
		width := comb.Binomial(de.k, nd.Passive.Size())
		for s := 0; s < 3; s++ {
			for r := 0; r < 3; r++ {
				if s != r {
					upper += int64(len(de.NeedList(s, r))) * (width*8 + 4)
				}
			}
		}
	}
	if res.CommBytes <= 0 || res.CommBytes > upper {
		t.Fatalf("CommBytes %d outside (0, %d]", res.CommBytes, upper)
	}
}

func TestMoreRanksLessPerRankMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 400, 1600)
	tr := tmpl.Path(5)
	var prev int
	for i, ranks := range []int{1, 4, 16} {
		de, err := New(g, tr, Config{Ranks: ranks, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := de.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.MaxRankRows >= prev {
			t.Fatalf("ranks=%d: per-rank rows %d did not shrink from %d", ranks, res.MaxRankRows, prev)
		}
		prev = res.MaxRankRows
	}
}

func TestGhostCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 50, 150)
	de, err := New(g, tmpl.Path(3), Config{Ranks: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := de.GhostCounts()
	if len(counts) != 5 {
		t.Fatalf("ghost counts per rank = %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("random graph should have boundary vertices")
	}
	// Ghosts are remote by construction.
	for s := 0; s < 5; s++ {
		for r := 0; r < 5; r++ {
			for _, u := range de.needs[s][r] {
				if u < de.bounds[s] || u >= de.bounds[s+1] {
					t.Fatalf("need list (%d->%d) contains non-owned vertex %d", s, r, u)
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 10, 20)
	if _, err := New(g, tmpl.Path(3), Config{Ranks: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
	lt, _ := tmpl.Path(3).WithLabels("l", []int32{0, 1, 0})
	if _, err := New(g, lt, Config{Ranks: 2}); err == nil {
		t.Error("labeled template on unlabeled graph accepted")
	}
	if _, err := New(g, tmpl.Path(3), Config{Ranks: 2, Colors: 2}); err == nil {
		t.Error("too few colors accepted")
	}
	de, _ := New(g, tmpl.Path(3), Config{Ranks: 2})
	if _, err := de.Run(0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestBalancedStrategyWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 30, 90)
	tr := tmpl.MustNamed("U7-2")
	de, err := New(g, tr, Config{Ranks: 3, Seed: 5, Strategy: part.Balanced})
	if err != nil {
		t.Fatal(err)
	}
	got, err := de.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dp.DefaultConfig()
	cfg.Seed = 5
	cfg.Strategy = part.Balanced
	single, err := dp.New(g, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.PerIteration {
		if got.PerIteration[i] != want.PerIteration[i] {
			t.Fatalf("balanced iter %d: %v vs %v", i, got.PerIteration[i], want.PerIteration[i])
		}
	}
}

// TestDistributedLabeledMatchesShared verifies labeled pruning works
// identically in the distributed runtime.
func TestDistributedLabeledMatchesShared(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 50, 160)
	g.Labels = make([]int32, g.N())
	for i := range g.Labels {
		g.Labels[i] = int32(rng.Intn(3))
	}
	lt, err := tmpl.Spider(2, 1, 1).WithLabels("lab", []int32{0, 1, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	cfg := dp.DefaultConfig()
	cfg.Seed = 21
	shared, err := dp.New(g, lt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := shared.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	de, err := New(g, lt, Config{Ranks: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	got, err := de.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.PerIteration {
		if got.PerIteration[i] != want.PerIteration[i] {
			t.Fatalf("labeled distributed iter %d: %v vs %v", i, got.PerIteration[i], want.PerIteration[i])
		}
	}
}
