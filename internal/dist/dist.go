// Package dist implements the paper's stated future work — "partitioning
// the dynamic programming table for execution on a distributed-memory
// platform" (the PARSE/SAHAD direction) — as a faithful message-passing
// simulation: the vertex set is block-partitioned across P ranks, each
// rank owns the table rows of its vertices for every subtemplate, and
// before each DP step ranks exchange the passive-child rows of their
// boundary ("ghost") vertices with the ranks that need them. Ranks run as
// goroutines communicating only through typed channels; no rank ever
// reads another rank's table memory directly, so the communication volume
// reported is exactly what a real MPI implementation would ship.
//
// The distributed run is bit-identical to the shared-memory engine under
// the same seed, which the tests assert exactly.
package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/comb"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/tmpl"
)

// ErrEmptyGraph is returned by New for a graph with no vertices: the
// block partition would divide by zero in the owner lookup (v*p/n with
// n = 0), and there is nothing to count anyway.
var ErrEmptyGraph = errors.New("dist: graph has no vertices")

// Config controls a distributed counting run.
type Config struct {
	// Ranks is the number of simulated distributed-memory ranks.
	Ranks int
	// Colors is the number of colors (0 = template size).
	Colors int
	// Strategy selects the partitioning heuristic (matching dp.Config).
	Strategy part.Strategy
	// Seed drives colorings; iteration i colors with Seed+i, exactly as
	// the shared-memory engine does, so results are comparable.
	Seed int64
}

// Result reports a distributed run.
type Result struct {
	// Estimate is the mean over iterations of the scaled colorful count.
	Estimate float64
	// PerIteration holds each iteration's estimate.
	PerIteration []float64
	// CommBytes is the total payload volume exchanged between ranks
	// across all iterations (row values plus vertex ids).
	CommBytes int64
	// Messages is the number of point-to-point messages sent.
	Messages int64
	// MaxRankRows is the largest number of table rows held by any single
	// rank for any single subtemplate — the per-node memory the
	// partitioning is meant to bound.
	MaxRankRows int
}

// Engine is a prepared distributed counter.
type Engine struct {
	g    *graph.Graph
	t    *tmpl.Template
	cfg  Config
	k    int
	tree *part.Tree
	aut  int64
	prob float64

	splits map[[2]int]*comb.SplitTable

	// Vertex ownership: rank r owns [bounds[r], bounds[r+1]).
	bounds []int32
	// needs[s][r] lists the vertices owned by rank s that rank r needs
	// as ghosts (s-owned vertices adjacent to at least one r-owned
	// vertex), sorted ascending. Computed once.
	needs [][][]int32

	// internalSteps lists the positions in tree.Order that exchange
	// boundary rows (the internal nodes); passiveStep maps each node to
	// the order position of the parent that consumes it as the passive
	// child (absent for the root and for active-only children), which is
	// where its boundary rows must arrive.
	internalSteps []int
	passiveStep   map[*part.Node]int
}

// New prepares a distributed engine.
func New(g *graph.Graph, t *tmpl.Template, cfg Config) (*Engine, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("dist: ranks must be >= 1, got %d", cfg.Ranks)
	}
	if g == nil || g.N() < 1 {
		return nil, ErrEmptyGraph
	}
	if t.Labeled() && g.Labels == nil {
		return nil, fmt.Errorf("dist: labeled template requires a labeled graph")
	}
	k := cfg.Colors
	if k == 0 {
		k = t.K()
	}
	if k < t.K() || k > comb.MaxColors {
		return nil, fmt.Errorf("dist: invalid color count %d for template size %d", k, t.K())
	}
	tree, err := part.Build(t, cfg.Strategy, false)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g: g, t: t, cfg: cfg, k: k, tree: tree,
		aut:    t.Automorphisms(),
		prob:   dp.ColorfulProbability(k, t.K()),
		splits: map[[2]int]*comb.SplitTable{},
	}
	for _, n := range tree.Nodes {
		if n.IsLeaf() {
			continue
		}
		key := [2]int{n.Size(), n.Active.Size()}
		if _, ok := e.splits[key]; !ok {
			e.splits[key] = comb.NewSplitTable(k, n.Size(), n.Active.Size())
		}
	}
	e.partitionVertices()
	e.passiveStep = map[*part.Node]int{}
	for i, n := range tree.Order {
		if !n.IsLeaf() {
			e.internalSteps = append(e.internalSteps, i)
			// Trees are built with share=false, so every node is the
			// passive child of at most one parent.
			e.passiveStep[n.Passive] = i
		}
	}
	return e, nil
}

// Ranks returns the configured rank count.
func (e *Engine) Ranks() int { return e.cfg.Ranks }

// Bounds returns rank r's owned vertex block [lo, hi).
func (e *Engine) Bounds(r int) (lo, hi int32) { return e.bounds[r], e.bounds[r+1] }

// NeedList returns the vertices owned by rank src that rank dst needs as
// ghosts, in the canonical wire order. The returned slice is shared and
// must not be mutated.
func (e *Engine) NeedList(src, dst int) []int32 { return e.needs[src][dst] }

// Steps returns the number of positions in the DP evaluation order
// (boundary rows are exchanged only at the internal ones).
func (e *Engine) Steps() int { return len(e.tree.Order) }

// Scale returns the divisor that turns a summed colorful total into an
// occurrence estimate: the colorful probability times the automorphism
// count. A coordinator merging per-rank totals must compute
// sum / Scale() to stay bit-identical with the in-process runtime.
func (e *Engine) Scale() float64 { return e.prob * float64(e.aut) }

// IterationColors derives iteration iter's coloring — broadcast state in
// a real system, derived identically by every rank from the shared seed
// (iteration i colors with Seed+i, exactly as the shared-memory engine).
func (e *Engine) IterationColors(iter int) []int8 {
	rng := rand.New(rand.NewSource(e.cfg.Seed + int64(iter)))
	colors := make([]int8, e.g.N())
	for i := range colors {
		colors[i] = int8(rng.Intn(e.k))
	}
	return colors
}

// partitionVertices block-partitions the vertex set and precomputes the
// ghost exchange lists.
func (e *Engine) partitionVertices() {
	n := int32(e.g.N())
	p := e.cfg.Ranks
	e.bounds = make([]int32, p+1)
	for r := 0; r <= p; r++ {
		e.bounds[r] = int32(int64(n) * int64(r) / int64(p))
	}
	owner := func(v int32) int {
		// Binary-search-free owner lookup via proportionality, corrected
		// for rounding.
		r := int(int64(v) * int64(p) / int64(n))
		for r > 0 && v < e.bounds[r] {
			r--
		}
		for r < p-1 && v >= e.bounds[r+1] {
			r++
		}
		return r
	}
	e.needs = make([][][]int32, p)
	seen := make([]int32, e.g.N()) // stamp per (s,r) pass
	stamp := int32(0)
	for s := 0; s < p; s++ {
		e.needs[s] = make([][]int32, p)
	}
	for r := 0; r < p; r++ {
		// Vertices rank r needs: remote neighbors of its owned vertices.
		stamp++
		for v := e.bounds[r]; v < e.bounds[r+1]; v++ {
			for _, u := range e.g.Adj(v) {
				s := owner(u)
				if s == r || seen[u] == stamp {
					continue
				}
				seen[u] = stamp
				e.needs[s][r] = append(e.needs[s][r], u)
			}
		}
		for s := 0; s < p; s++ {
			lst := e.needs[s][r]
			sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		}
	}
}

// GhostCounts returns, per rank, how many ghost vertices it receives per
// DP step — diagnostics for partitioning quality.
func (e *Engine) GhostCounts() []int {
	out := make([]int, e.cfg.Ranks)
	for r := range out {
		for s := 0; s < e.cfg.Ranks; s++ {
			out[r] += len(e.needs[s][r])
		}
	}
	return out
}
