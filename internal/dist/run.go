package dist

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/part"
)

// rankState is the per-rank (per-"process") view: table rows for owned
// vertices only, plus the ghost row cache for the step in flight.
type rankState struct {
	r      int
	lo, hi int32
	// tables[node] holds rows for owned vertices, indexed by v - lo.
	tables map[*part.Node][][]float64
	// ghost[u] is the received passive-child row of remote vertex u.
	ghost map[int32][]float64
	// stop, when non-nil, is the run's cancellation flag; local DP
	// sweeps poll it per vertex and fast-forward (the message-passing
	// protocol still completes so no rank blocks on a vanished sender).
	stop *atomic.Bool
}

// cancelled polls the rank's stop flag.
func (st *rankState) cancelled() bool {
	return st.stop != nil && st.stop.Load()
}

// RankResult reports one rank's share of one iteration.
type RankResult struct {
	// Total is the rank's sum over its owned root-table rows. The
	// iteration estimate is the rank totals summed in rank order divided
	// by Engine.Scale().
	Total float64
	// MaxNodeRows is the largest non-nil row count the rank held for any
	// single subtemplate table.
	MaxNodeRows int
}

// Run executes iters distributed color-coding iterations and averages the
// estimates. Iteration i colors with Seed+i using the same generator as
// the shared-memory engine, so estimates are directly comparable (and,
// per iteration, bit-identical).
func (e *Engine) Run(iters int) (Result, error) {
	return e.RunContext(context.Background(), iters)
}

// RunContext is Run with cooperative cancellation. The context is polled
// at iteration boundaries and inside each rank's local DP sweeps; on
// cancellation every rank still completes the current iteration's
// message-passing protocol (skipping the compute work, so the fast-
// forward is cheap and deadlock-free), the partial iteration is
// discarded, and the mean over completed iterations is returned
// alongside ctx.Err().
func (e *Engine) RunContext(ctx context.Context, iters int) (Result, error) {
	if iters < 1 {
		return Result{}, fmt.Errorf("dist: iterations must be >= 1, got %d", iters)
	}
	stop, release := watchContext(ctx)
	defer release()
	res := Result{PerIteration: make([]float64, 0, iters)}
	var comm CommStats
	var maxRows atomic.Int64

	p := e.cfg.Ranks
	for iter := 0; iter < iters; iter++ {
		if stop != nil && stop.Load() {
			break
		}
		colors := e.IterationColors(iter)
		mail := e.newMailbox()
		totals := make([]float64, p)
		var wg sync.WaitGroup
		//lint:ctxpoll ok — rank-spawn loop only (p goroutine launches); each rank polls the armed stop flag inside RunRank
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				// The in-process transport cannot fail, so RunRank's
				// error is structurally nil here.
				rr, _ := e.RunRank(r, colors, &chanExchange{rank: r, mail: mail, comm: &comm}, stop)
				totals[r] = rr.Total
				for {
					old := maxRows.Load()
					if int64(rr.MaxNodeRows) <= old || maxRows.CompareAndSwap(old, int64(rr.MaxNodeRows)) {
						break
					}
				}
			}(r)
		}
		wg.Wait()
		if stop != nil && stop.Load() {
			// The iteration's compute was cut short; its totals are
			// partial garbage — discard the iteration.
			break
		}
		var sum float64
		for _, t := range totals {
			sum += t
		}
		res.PerIteration = append(res.PerIteration, sum/e.Scale())
	}

	if n := len(res.PerIteration); n > 0 {
		var sum float64
		for _, x := range res.PerIteration {
			sum += x
		}
		res.Estimate = sum / float64(n)
	}
	res.CommBytes = comm.Bytes.Load()
	res.Messages = comm.Messages.Load()
	res.MaxRankRows = int(maxRows.Load())
	return res, ctx.Err()
}

// RunRank executes the rank-local DP for rank r over one iteration's
// coloring, exchanging boundary rows through ex. This is the code a
// shard worker process runs against a wire transport; the in-process
// simulation runs it against buffered channels. The protocol per
// evaluation-order position is:
//
//  1. internal node: receive the ghost packets this step needs (one per
//     peer with a non-empty needs list toward r), then compute owned
//     rows;
//  2. any node: the moment its rows exist, eagerly send them toward the
//     future step that consumes them as the passive child — the
//     pipelined overlap of Chen et al.: packets for later steps travel
//     while earlier steps are still computing.
//
// Pairs whose needs list is empty never exchange (both sides consult
// the same lists, so the skip cannot deadlock). On cancellation the
// protocol still runs to completion with whatever rows exist, so no
// healthy peer is ever stranded waiting; the iteration's result is
// garbage and must be discarded by the caller.
func (e *Engine) RunRank(r int, colors []int8, ex Exchange, stop *atomic.Bool) (RankResult, error) {
	p := e.cfg.Ranks
	st := &rankState{
		r: r, lo: e.bounds[r], hi: e.bounds[r+1],
		tables: map[*part.Node][][]float64{},
		ghost:  map[int32][]float64{},
		stop:   stop,
	}
	remaining := map[*part.Node]int{}
	for _, n := range e.tree.Nodes {
		remaining[n] = n.Consumers
	}
	var rr RankResult
	for i, node := range e.tree.Order {
		if node.IsLeaf() {
			e.initLeafRank(st, node, colors)
		} else {
			clear(st.ghost)
			for src := 0; src < p; src++ {
				if src == r || len(e.needs[src][r]) == 0 {
					continue
				}
				pk, err := ex.Recv(src, i)
				if err != nil {
					return rr, err
				}
				if len(pk.Rows) != len(e.needs[src][r]) {
					return rr, fmt.Errorf("dist: rank %d step %d: packet from %d carries %d rows, need %d",
						r, i, src, len(pk.Rows), len(e.needs[src][r]))
				}
				for j, u := range e.needs[src][r] {
					if pk.Rows[j] != nil {
						st.ghost[u] = pk.Rows[j]
					}
				}
			}
			e.computeRank(st, node, colors)
		}
		// Pipelined eager send: this node's rows are final now; if a
		// future step consumes them as the passive child, ship them
		// immediately so the transfer overlaps the compute in between.
		if step, ok := e.passiveStep[node]; ok {
			rows := st.tables[node]
			for dst := 0; dst < p; dst++ {
				if dst == r {
					continue
				}
				want := e.needs[r][dst]
				if len(want) == 0 {
					continue // empty packet: a real MPI run would not ship it
				}
				pk := Packet{Rows: make([][]float64, len(want))}
				for j, u := range want {
					pk.Rows[j] = rows[u-st.lo]
				}
				if err := ex.Send(dst, step, pk); err != nil {
					return rr, err
				}
			}
		}
		nrows := 0
		for _, row := range st.tables[node] {
			if row != nil {
				nrows++
			}
		}
		if nrows > rr.MaxNodeRows {
			rr.MaxNodeRows = nrows
		}
		if !node.IsLeaf() {
			for _, ch := range []*part.Node{node.Active, node.Passive} {
				remaining[ch]--
				if remaining[ch] == 0 {
					delete(st.tables, ch)
				}
			}
		}
	}
	for _, row := range st.tables[e.tree.Root] {
		for _, x := range row {
			rr.Total += x
		}
	}
	return rr, nil
}

// watchContext arms a cancellation flag the rank-local DP sweeps poll
// with one atomic load per vertex. The release func detaches the
// watcher.
func watchContext(ctx context.Context) (stop *atomic.Bool, release func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	var b atomic.Bool
	if ctx.Err() != nil {
		// AfterFunc fires asynchronously even for a dead context; set the
		// flag synchronously so not a single iteration starts.
		b.Store(true)
		return &b, func() {}
	}
	cancel := context.AfterFunc(ctx, func() { b.Store(true) })
	return &b, func() { cancel() }
}

// initLeafRank fills the leaf table rows for the rank's owned vertices,
// applying label pruning for labeled templates.
func (e *Engine) initLeafRank(st *rankState, node *part.Node, colors []int8) {
	labeled := e.t.Labeled()
	var want int32
	if labeled {
		want = e.t.Label(node.LeafVertex())
	}
	rows := make([][]float64, st.hi-st.lo)
	for v := st.lo; v < st.hi; v++ {
		if labeled && e.g.Label(v) != want {
			continue
		}
		row := make([]float64, e.k)
		row[colors[v]] = 1
		rows[v-st.lo] = row
	}
	st.tables[node] = rows
}

// computeRank runs the DP step for one internal node over the rank's
// owned vertices, reading the passive child's rows either locally or from
// the ghost cache.
func (e *Engine) computeRank(st *rankState, node *part.Node, colors []int8) {
	act := st.tables[node.Active]
	pas := st.tables[node.Passive]
	split := e.splits[[2]int{node.Size(), node.Active.Size()}]
	nc := split.NumSets
	spn := split.SplitsPerSet
	rows := make([][]float64, st.hi-st.lo)
	for v := st.lo; v < st.hi; v++ {
		if st.cancelled() {
			break // iteration will be discarded; skip remaining compute
		}
		arow := act[v-st.lo]
		if arow == nil {
			continue
		}
		var buf []float64
		for _, u := range e.g.Adj(v) {
			var prow []float64
			if u >= st.lo && u < st.hi {
				prow = pas[u-st.lo]
			} else {
				prow = st.ghost[u]
			}
			if prow == nil {
				continue
			}
			if buf == nil {
				buf = make([]float64, nc)
			}
			for ci := 0; ci < nc; ci++ {
				base := ci * spn
				var s float64
				for j := base; j < base+spn; j++ {
					if av := arow[split.ActiveIdx[j]]; av != 0 {
						s += av * prow[split.PassiveIdx[j]]
					}
				}
				buf[ci] += s
			}
		}
		if buf != nil {
			nonzero := false
			for _, x := range buf {
				if x != 0 {
					nonzero = true
					break
				}
			}
			if nonzero {
				rows[v-st.lo] = buf
			}
		}
	}
	st.tables[node] = rows
}
