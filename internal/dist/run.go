package dist

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/part"
)

// packet carries the passive-child rows of one sender's ghost vertices to
// one receiver for one DP step. Rows follow the precomputed needs list
// order; a nil row means the sender has no counts for that vertex.
type packet struct {
	rows [][]float64
}

// rankState is the per-rank (per-"process") view: table rows for owned
// vertices only, plus the ghost row cache for the step in flight.
type rankState struct {
	r      int
	lo, hi int32
	// tables[node] holds rows for owned vertices, indexed by v - lo.
	tables map[*part.Node][][]float64
	// ghost[u] is the received passive-child row of remote vertex u.
	ghost map[int32][]float64
	// stop, when non-nil, is the run's cancellation flag; local DP
	// sweeps poll it per vertex and fast-forward (the message-passing
	// protocol still completes so no rank blocks on a vanished sender).
	stop *atomic.Bool
}

// cancelled polls the rank's stop flag.
func (st *rankState) cancelled() bool {
	return st.stop != nil && st.stop.Load()
}

// Run executes iters distributed color-coding iterations and averages the
// estimates. Iteration i colors with Seed+i using the same generator as
// the shared-memory engine, so estimates are directly comparable (and,
// per iteration, bit-identical).
func (e *Engine) Run(iters int) (Result, error) {
	return e.RunContext(context.Background(), iters)
}

// RunContext is Run with cooperative cancellation. The context is polled
// at iteration boundaries and inside each rank's local DP sweeps; on
// cancellation every rank still completes the current iteration's
// message-passing protocol (skipping the compute work, so the fast-
// forward is cheap and deadlock-free), the partial iteration is
// discarded, and the mean over completed iterations is returned
// alongside ctx.Err().
func (e *Engine) RunContext(ctx context.Context, iters int) (Result, error) {
	if iters < 1 {
		return Result{}, fmt.Errorf("dist: iterations must be >= 1, got %d", iters)
	}
	stop, release := watchContext(ctx)
	defer release()
	res := Result{PerIteration: make([]float64, 0, iters)}
	var commBytes, messages atomic.Int64
	var maxRows atomic.Int64

	p := e.cfg.Ranks
	for iter := 0; iter < iters; iter++ {
		if stop != nil && stop.Load() {
			break
		}
		// The coloring is broadcast state in a real system; every rank
		// derives it from the shared seed here (identical cost model:
		// colors are n bytes of setup, not counted as step traffic).
		rng := rand.New(rand.NewSource(e.cfg.Seed + int64(iter)))
		colors := make([]int8, e.g.N())
		for i := range colors {
			colors[i] = int8(rng.Intn(e.k))
		}

		// mail[s][r] carries packets from rank s to rank r; buffered so a
		// sender never blocks (one packet per DP step per pair).
		mail := make([][]chan packet, p)
		for s := 0; s < p; s++ {
			mail[s] = make([]chan packet, p)
			for r := 0; r < p; r++ {
				if s != r {
					mail[s][r] = make(chan packet, len(e.tree.Order)+1)
				}
			}
		}

		totals := make([]float64, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				st := &rankState{
					r: r, lo: e.bounds[r], hi: e.bounds[r+1],
					tables: map[*part.Node][][]float64{},
					ghost:  map[int32][]float64{},
					stop:   stop,
				}
				remaining := map[*part.Node]int{}
				for _, n := range e.tree.Nodes {
					remaining[n] = n.Consumers
				}
				for _, node := range e.tree.Order {
					if node.IsLeaf() {
						e.initLeafRank(st, node, colors)
					} else {
						// Exchange the passive child's boundary rows,
						// then compute owned rows.
						pas := st.tables[node.Passive]
						for dst := 0; dst < p; dst++ {
							if dst == r {
								continue
							}
							want := e.needs[r][dst]
							pk := packet{rows: make([][]float64, len(want))}
							var bytes int64
							for i, u := range want {
								row := pas[u-st.lo]
								pk.rows[i] = row
								if row != nil {
									bytes += int64(len(row))*8 + 4
								}
							}
							mail[r][dst] <- pk
							commBytes.Add(bytes)
							messages.Add(1)
						}
						clear(st.ghost)
						for src := 0; src < p; src++ {
							if src == r {
								continue
							}
							pk := <-mail[src][r]
							for i, u := range e.needs[src][r] {
								if pk.rows[i] != nil {
									st.ghost[u] = pk.rows[i]
								}
							}
						}
						e.computeRank(st, node, colors)
					}
					rows := 0
					for _, row := range st.tables[node] {
						if row != nil {
							rows++
						}
					}
					for {
						old := maxRows.Load()
						if int64(rows) <= old || maxRows.CompareAndSwap(old, int64(rows)) {
							break
						}
					}
					if !node.IsLeaf() {
						for _, ch := range []*part.Node{node.Active, node.Passive} {
							remaining[ch]--
							if remaining[ch] == 0 {
								delete(st.tables, ch)
							}
						}
					}
				}
				var total float64
				for _, row := range st.tables[e.tree.Root] {
					for _, x := range row {
						total += x
					}
				}
				totals[r] = total
			}(r)
		}
		wg.Wait()
		if stop != nil && stop.Load() {
			// The iteration's compute was cut short; its totals are
			// partial garbage — discard the iteration.
			break
		}
		var sum float64
		for _, t := range totals {
			sum += t
		}
		res.PerIteration = append(res.PerIteration, sum/(e.prob*float64(e.aut)))
	}

	if n := len(res.PerIteration); n > 0 {
		var sum float64
		for _, x := range res.PerIteration {
			sum += x
		}
		res.Estimate = sum / float64(n)
	}
	res.CommBytes = commBytes.Load()
	res.Messages = messages.Load()
	res.MaxRankRows = int(maxRows.Load())
	return res, ctx.Err()
}

// watchContext arms a cancellation flag the rank-local DP sweeps poll
// with one atomic load per vertex. The release func detaches the
// watcher.
func watchContext(ctx context.Context) (stop *atomic.Bool, release func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	var b atomic.Bool
	if ctx.Err() != nil {
		// AfterFunc fires asynchronously even for a dead context; set the
		// flag synchronously so not a single iteration starts.
		b.Store(true)
		return &b, func() {}
	}
	cancel := context.AfterFunc(ctx, func() { b.Store(true) })
	return &b, func() { cancel() }
}

// initLeafRank fills the leaf table rows for the rank's owned vertices,
// applying label pruning for labeled templates.
func (e *Engine) initLeafRank(st *rankState, node *part.Node, colors []int8) {
	labeled := e.t.Labeled()
	var want int32
	if labeled {
		want = e.t.Label(node.LeafVertex())
	}
	rows := make([][]float64, st.hi-st.lo)
	for v := st.lo; v < st.hi; v++ {
		if labeled && e.g.Label(v) != want {
			continue
		}
		row := make([]float64, e.k)
		row[colors[v]] = 1
		rows[v-st.lo] = row
	}
	st.tables[node] = rows
}

// computeRank runs the DP step for one internal node over the rank's
// owned vertices, reading the passive child's rows either locally or from
// the ghost cache.
func (e *Engine) computeRank(st *rankState, node *part.Node, colors []int8) {
	act := st.tables[node.Active]
	pas := st.tables[node.Passive]
	split := e.splits[[2]int{node.Size(), node.Active.Size()}]
	nc := split.NumSets
	spn := split.SplitsPerSet
	rows := make([][]float64, st.hi-st.lo)
	for v := st.lo; v < st.hi; v++ {
		if st.cancelled() {
			break // iteration will be discarded; skip remaining compute
		}
		arow := act[v-st.lo]
		if arow == nil {
			continue
		}
		var buf []float64
		for _, u := range e.g.Adj(v) {
			var prow []float64
			if u >= st.lo && u < st.hi {
				prow = pas[u-st.lo]
			} else {
				prow = st.ghost[u]
			}
			if prow == nil {
				continue
			}
			if buf == nil {
				buf = make([]float64, nc)
			}
			for ci := 0; ci < nc; ci++ {
				base := ci * spn
				var s float64
				for j := base; j < base+spn; j++ {
					if av := arow[split.ActiveIdx[j]]; av != 0 {
						s += av * prow[split.PassiveIdx[j]]
					}
				}
				buf[ci] += s
			}
		}
		if buf != nil {
			nonzero := false
			for _, x := range buf {
				if x != 0 {
					nonzero = true
					break
				}
			}
			if nonzero {
				rows[v-st.lo] = buf
			}
		}
	}
	st.tables[node] = rows
}
