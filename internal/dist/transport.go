package dist

import "sync/atomic"

// Packet carries the passive-child table rows of one sender's boundary
// vertices to one receiver for one DP step. Rows follow the precomputed
// needs-list order for the (sender, receiver) pair; a nil row means the
// sender has no counts for that vertex. Rows are read-only once packed:
// tables are immutable after their DP step, so transports may serialize
// them lazily without copying.
type Packet struct {
	Rows [][]float64
}

// PayloadBytes is the accounted payload volume of the packet: 8 bytes
// per row value plus a 4-byte vertex id per present row. This is the
// cost model the in-process simulation has always reported, and the TCP
// transport reports the same quantity, so CommBytes stays comparable
// across transports (framing overhead is excluded on both).
func (p Packet) PayloadBytes() int64 {
	var b int64
	for _, row := range p.Rows {
		if row != nil {
			b += int64(len(row))*8 + 4
		}
	}
	return b
}

// Exchange moves boundary-row packets between ranks within one
// iteration. Steps are indices into the partition tree's evaluation
// order; only internal (non-leaf) positions ever exchange. Senders may
// ship a step's packet any time before the receiver needs it (the
// pipelined eager send), so implementations must demultiplex by step
// rather than assume arrival order. Send and Recv are called only for
// (src, dst) pairs whose needs list is non-empty — empty packets never
// travel, and both sides consult the same needs lists, so skipping them
// cannot deadlock the protocol.
type Exchange interface {
	// Send ships the rows rank dst needs for the given step. It must not
	// block indefinitely on a healthy peer (the in-process transport
	// buffers one packet per step; the wire transport has a writer
	// goroutine per peer).
	Send(dst, step int, pk Packet) error
	// Recv returns the packet rank src sent for the given step.
	Recv(src, step int) (Packet, error)
}

// CommStats accumulates transport-level accounting shared by all ranks
// of a run.
type CommStats struct {
	// Bytes is the total payload volume (PayloadBytes of every packet).
	Bytes atomic.Int64
	// Messages counts point-to-point packets actually sent; since empty
	// needs lists are skipped, this matches what a real MPI run ships.
	Messages atomic.Int64
}

// chanExchange is the in-process Exchange: one buffered channel per
// (src, dst, step) triple with a non-empty needs list. A capacity-1
// channel per triple means a sender never blocks (each triple carries
// exactly one packet per iteration) and a receiver blocks only until
// its peer ships the step — which it always does, even under
// cancellation, because ranks fast-forward through the protocol instead
// of abandoning it.
type chanExchange struct {
	rank int
	mail mailbox
	comm *CommStats
}

// mailbox holds the per-iteration channels: mail[src][dst][step].
// Channels exist only for pairs with non-empty needs lists; a nil map
// entry is a protocol bug (Send/Recv on a pair that should never talk).
type mailbox [][]map[int]chan Packet

// newMailbox builds the channel grid for one iteration.
func (e *Engine) newMailbox() mailbox {
	p := e.cfg.Ranks
	mail := make(mailbox, p)
	for s := 0; s < p; s++ {
		mail[s] = make([]map[int]chan Packet, p)
		for d := 0; d < p; d++ {
			if s == d || len(e.needs[s][d]) == 0 {
				continue
			}
			m := make(map[int]chan Packet, len(e.internalSteps))
			for _, step := range e.internalSteps {
				m[step] = make(chan Packet, 1)
			}
			mail[s][d] = m
		}
	}
	return mail
}

func (x *chanExchange) Send(dst, step int, pk Packet) error {
	x.comm.Messages.Add(1)
	x.comm.Bytes.Add(pk.PayloadBytes())
	x.mail[x.rank][dst][step] <- pk
	return nil
}

func (x *chanExchange) Recv(src, step int) (Packet, error) {
	return <-x.mail[src][x.rank][step], nil
}
