package table

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Naive.String() != "naive" || Lazy.String() != "lazy" || Hash.String() != "hash" || Succinct.String() != "succinct" {
		t.Fatal("kind strings wrong")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

func TestNewPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Kind(9), 10, 4)
}

func TestBasicSetGet(t *testing.T) {
	for _, kind := range Kinds {
		tab := New(kind, 100, 10)
		if tab.NumSets() != 10 {
			t.Fatalf("%v: NumSets = %d", kind, tab.NumSets())
		}
		if tab.Get(5, 3) != 0 {
			t.Fatalf("%v: fresh cell nonzero", kind)
		}
		tab.Set(5, 3, 2.5)
		tab.Set(5, 7, 1.0)
		tab.Set(99, 0, 4.0)
		if tab.Get(5, 3) != 2.5 || tab.Get(5, 7) != 1.0 || tab.Get(99, 0) != 4.0 {
			t.Fatalf("%v: get after set wrong", kind)
		}
		if !tab.Has(5) || !tab.Has(99) {
			t.Fatalf("%v: Has false for stored vertex", kind)
		}
		if got := tab.SumRow(5); got != 3.5 {
			t.Fatalf("%v: SumRow = %v", kind, got)
		}
		if got := tab.Total(); got != 7.5 {
			t.Fatalf("%v: Total = %v", kind, got)
		}
	}
}

func TestHasSelectivity(t *testing.T) {
	// Lazy and Hash must report absent vertices; Naive reports all
	// present (that is its point).
	lazy := New(Lazy, 50, 4)
	hash := New(Hash, 50, 4)
	lazy.Set(10, 2, 1)
	hash.Set(10, 2, 1)
	if lazy.Has(11) || hash.Has(11) {
		t.Fatal("absent vertex reported present")
	}
	naive := New(Naive, 50, 4)
	if !naive.Has(11) {
		t.Fatal("dense table should always have rows")
	}
}

func TestStoreRowAndRow(t *testing.T) {
	row := []float64{0, 1.5, 0, 2.5}
	for _, kind := range Kinds {
		tab := New(kind, 20, 4)
		tab.StoreRow(3, row)
		for ci := int32(0); ci < 4; ci++ {
			if tab.Get(3, ci) != row[ci] {
				t.Fatalf("%v: cell %d = %v, want %v", kind, ci, tab.Get(3, ci), row[ci])
			}
		}
		r := tab.Row(3)
		if kind == Hash || kind == Succinct {
			if r != nil {
				t.Fatalf("%v Row should be nil", kind)
			}
		} else {
			if len(r) != 4 || r[3] != 2.5 {
				t.Fatalf("%v: Row = %v", kind, r)
			}
		}
	}
}

func TestAccumulateRow(t *testing.T) {
	for _, kind := range Kinds {
		tab := New(kind, 40, 6)
		tab.Set(3, 1, 2)
		tab.Set(3, 5, 7)
		tab.Set(9, 0, 1.5)

		// Every built-in layout must implement the fast path.
		if _, ok := tab.(RowAccumulator); !ok {
			t.Fatalf("%v: does not implement RowAccumulator", kind)
		}
		dst := []float64{1, 0, 0, 0, 0, 1}
		AccumulateRowInto(tab, 3, dst)
		want := []float64{1, 2, 0, 0, 0, 8}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("%v: dst[%d] = %v, want %v", kind, i, dst[i], want[i])
			}
		}
		// Accumulating twice adds again.
		AccumulateRowInto(tab, 9, dst)
		if dst[0] != 2.5 {
			t.Fatalf("%v: second accumulate got %v", kind, dst[0])
		}
		// Absent vertex: no change (Naive has all rows, so skip it there).
		if kind != Naive {
			before := append([]float64(nil), dst...)
			AccumulateRowInto(tab, 20, dst)
			for i := range dst {
				if dst[i] != before[i] {
					t.Fatalf("%v: absent vertex modified dst", kind)
				}
			}
		}
	}
}

func TestBulkAccumulateAndGather(t *testing.T) {
	colors := []int8{2, 0, 1, 3, 2, 1, 0, 3, 1, 2}
	for _, kind := range Kinds {
		tab := New(kind, 10, 4)
		if _, ok := tab.(BulkAccumulator); !ok {
			t.Fatalf("%v: does not implement BulkAccumulator", kind)
		}
		if _, ok := tab.(ColorGatherer); !ok {
			t.Fatalf("%v: does not implement ColorGatherer", kind)
		}
		tab.StoreRow(1, []float64{1, 2, 0, 4})
		tab.StoreRow(3, []float64{0, 0, 5, 1})
		tab.Set(7, 3, 9)

		// AccumulateRows over present, absent, and repeated vertices must
		// equal the sum of per-row accumulations.
		vs := []int32{1, 3, 5, 1}
		dst := []float64{0, 0, 0, 100}
		AccumulateRowsInto(tab, vs, dst)
		want := []float64{2, 4, 5, 109}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("%v: AccumulateRows dst[%d] = %v, want %v", kind, i, dst[i], want[i])
			}
		}

		// GatherColors folds cell (v, colors[v]) into dst[colors[v]]:
		// v=1 (color 0, val 1), v=3 (color 3, val 1), v=7 (color 3, val
		// 9), v=5 absent.
		bins := make([]float64, 4)
		GatherColorsInto(tab, []int32{1, 3, 7, 5}, colors, bins)
		wantBins := []float64{1, 0, 0, 10}
		for i := range wantBins {
			if bins[i] != wantBins[i] {
				t.Fatalf("%v: GatherColors bins[%d] = %v, want %v", kind, i, bins[i], wantBins[i])
			}
		}
	}
}

func TestHashMergeFrom(t *testing.T) {
	main := NewHash(100, 5)
	main.Set(1, 2, 3)
	a := NewHash(100, 5)
	b := NewHash(100, 5)
	for v := int32(10); v < 40; v++ {
		a.Set(v, v%5, float64(v))
	}
	for v := int32(40); v < 90; v++ {
		b.Set(v, v%5, float64(2*v))
	}
	main.MergeFrom(a)
	main.MergeFrom(b)
	main.MergeFrom(nil) // no-op
	if main.Get(1, 2) != 3 {
		t.Fatal("pre-existing cell lost")
	}
	for v := int32(10); v < 40; v++ {
		if main.Get(v, v%5) != float64(v) || !main.Has(v) {
			t.Fatalf("merged cell %d wrong", v)
		}
	}
	for v := int32(40); v < 90; v++ {
		if main.Get(v, v%5) != float64(2*v) || !main.Has(v) {
			t.Fatalf("merged cell %d wrong", v)
		}
	}
	if main.Has(95) {
		t.Fatal("unmerged vertex present")
	}
	// Overlapping keys overwrite.
	c := NewHash(100, 5)
	c.Set(1, 2, 9)
	main.MergeFrom(c)
	if main.Get(1, 2) != 9 {
		t.Fatal("overlapping merge did not overwrite")
	}
	// NumSets mismatch must panic rather than corrupt keys.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on NumSets mismatch")
		}
	}()
	main.MergeFrom(NewHash(100, 7))
}

func TestSparseSkipsAllZeroRows(t *testing.T) {
	tab := NewSparse(10, 4)
	tab.StoreRow(2, []float64{0, 0, 0, 0})
	if tab.Has(2) {
		t.Fatal("all-zero store should not materialize a row")
	}
	tab.StoreRow(2, []float64{0, 1, 0, 0})
	if !tab.Has(2) {
		t.Fatal("nonzero store must materialize")
	}
	// Overwriting an existing row with zeros must stick.
	tab.StoreRow(2, []float64{0, 0, 0, 0})
	if tab.Get(2, 1) != 0 {
		t.Fatal("overwrite with zeros lost")
	}
}

func TestBytesOrdering(t *testing.T) {
	n, sets := 10000, 64
	naive := New(Naive, n, sets)
	lazy := New(Lazy, n, sets)
	hash := New(Hash, n, sets)
	// Touch only a handful of vertices.
	for v := int32(0); v < 20; v++ {
		naive.Set(v, 1, 1)
		lazy.Set(v, 1, 1)
		hash.Set(v, 1, 1)
	}
	if !(hash.Bytes() < lazy.Bytes() && lazy.Bytes() < naive.Bytes()) {
		t.Fatalf("sparse workload: want hash < lazy < naive, got %d / %d / %d",
			hash.Bytes(), lazy.Bytes(), naive.Bytes())
	}
}

func TestHashGrowth(t *testing.T) {
	h := NewHash(100000, 1000)
	for v := int32(0); v < 5000; v++ {
		for ci := int32(0); ci < 3; ci++ {
			h.Set(v, ci, float64(v+1))
		}
	}
	if h.Load() != 15000 {
		t.Fatalf("Load = %d, want 15000", h.Load())
	}
	for v := int32(0); v < 5000; v++ {
		if h.Get(v, 2) != float64(v+1) {
			t.Fatalf("value lost for %d after growth", v)
		}
		if h.Get(v, 3) != 0 {
			t.Fatal("phantom value")
		}
	}
}

func TestHashZeroSet(t *testing.T) {
	h := NewHash(10, 4)
	h.Set(1, 1, 0) // no-op: zero into absent cell
	if h.Load() != 0 {
		t.Fatal("zero store created a cell")
	}
	h.Set(1, 1, 5)
	h.Set(1, 1, 0) // overwrite existing with zero
	if h.Get(1, 1) != 0 {
		t.Fatal("zero overwrite lost")
	}
}

func TestRelease(t *testing.T) {
	for _, kind := range Kinds {
		tab := New(kind, 10, 4)
		tab.Set(1, 1, 1)
		tab.Release()
		// After release the footprint must be (near) zero.
		if tab.Bytes() > 128 {
			t.Fatalf("%v: Bytes after release = %d", kind, tab.Bytes())
		}
	}
}

// TestCrossImplementationEquivalence drives all three layouts with the
// same random operation sequence and requires identical observable
// behaviour.
func TestCrossImplementationEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		sets := 1 + rng.Intn(30)
		tabs := make([]Table, len(Kinds))
		for i, k := range Kinds {
			tabs[i] = New(k, n, sets)
		}
		for op := 0; op < 300; op++ {
			v := int32(rng.Intn(n))
			ci := int32(rng.Intn(sets))
			switch rng.Intn(3) {
			case 0:
				val := float64(rng.Intn(5)) // may be zero
				for _, tab := range tabs {
					tab.Set(v, ci, val)
				}
			case 1:
				row := make([]float64, sets)
				for i := range row {
					if rng.Intn(3) == 0 {
						row[i] = float64(rng.Intn(4))
					}
				}
				for _, tab := range tabs {
					tab.StoreRow(v, row)
				}
			case 2:
				want := tabs[0].Get(v, ci)
				for _, tab := range tabs[1:] {
					if tab.Get(v, ci) != want {
						return false
					}
				}
			}
		}
		// Totals and row sums must agree.
		want := tabs[0].Total()
		for _, tab := range tabs[1:] {
			if diff := tab.Total() - want; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		for v := int32(0); v < int32(n); v++ {
			want := tabs[0].SumRow(v)
			for _, tab := range tabs[1:] {
				if diff := tab.SumRow(v) - want; diff > 1e-9 || diff < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHashCollisionHeavyKeys(t *testing.T) {
	// Sequential keys with numSets=1 stress the probe chain.
	h := NewHash(1<<16, 1)
	for v := int32(0); v < 1<<14; v++ {
		h.Set(v, 0, float64(v)+1)
	}
	for v := int32(0); v < 1<<14; v++ {
		if h.Get(v, 0) != float64(v)+1 {
			t.Fatalf("lost key %d", v)
		}
	}
}
