package table

import "testing"

func benchTable(b *testing.B, kind Kind) {
	const n, sets = 100_000, 64
	tab := New(kind, n, sets)
	row := make([]float64, sets)
	for i := range row {
		if i%3 == 0 {
			row[i] = float64(i)
		}
	}
	b.Run("store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.StoreRow(int32(i%n), row)
		}
	})
	b.Run("get", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += tab.Get(int32(i%n), int32(i%sets))
		}
		_ = sink
	})
	b.Run("has", func(b *testing.B) {
		var hits int
		for i := 0; i < b.N; i++ {
			if tab.Has(int32(i % n)) {
				hits++
			}
		}
		_ = hits
	})
}

func BenchmarkDenseTable(b *testing.B)  { benchTable(b, Naive) }
func BenchmarkSparseTable(b *testing.B) { benchTable(b, Lazy) }
func BenchmarkHashTable(b *testing.B)   { benchTable(b, Hash) }
