//go:build linux

package table

import (
	"os"
	"syscall"
)

// mmapFileBacked maps nbytes of a fresh unlinked temp file MAP_SHARED
// read-write. Being file-backed (not anonymous) is the point: dirty
// pages have a writeback target, so the kernel can evict them under
// memory pressure instead of pinning them in RSS or swapping.
func mmapFileBacked(nbytes int64) ([]byte, error) {
	f, err := os.CreateTemp("", "fascia-spill-*")
	if err != nil {
		return nil, err
	}
	// Unlink immediately: the mapping keeps the inode alive, and the
	// file vanishes on process exit no matter how we die.
	os.Remove(f.Name())
	defer f.Close()
	if err := f.Truncate(nbytes); err != nil {
		return nil, err
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(nbytes),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// adviseDontNeed drops the resident pages of a spill slab; subsequent
// access faults them back in from the backing file. Failure is
// harmless (the pages just stay resident), so the error is ignored.
func adviseDontNeed(b []byte) {
	_ = syscall.Madvise(b, syscall.MADV_DONTNEED)
}
