package table

// Dense is the paper's naive layout: a fully preallocated n × NumSets
// array. Rows exist for every vertex from the start, so Has is always
// true and no allocation happens during the DP.
type Dense struct {
	numSets int
	data    []float64 // n * numSets, row-major
	n       int
	arena   *Arena
}

// NewDense allocates a dense table for n vertices.
func NewDense(n, numSets int) *Dense {
	return NewDenseArena(n, numSets, nil)
}

// NewDenseArena is NewDense drawing the backing slab from an arena (nil
// falls back to plain allocation); Release returns the slab to it.
func NewDenseArena(n, numSets int, a *Arena) *Dense {
	data := a.F64(n * numSets)
	clear(data)
	return &Dense{
		numSets: numSets,
		n:       n,
		data:    data,
		arena:   a,
	}
}

// NumSets implements Table.
func (d *Dense) NumSets() int { return d.numSets }

// Has implements Table; dense rows always exist.
func (d *Dense) Has(v int32) bool { return d.data != nil }

// Get implements Table.
func (d *Dense) Get(v int32, ci int32) float64 {
	return d.data[int(v)*d.numSets+int(ci)]
}

// Row implements Table.
func (d *Dense) Row(v int32) []float64 {
	base := int(v) * d.numSets
	return d.data[base : base+d.numSets : base+d.numSets]
}

// Set implements Table.
func (d *Dense) Set(v int32, ci int32, val float64) {
	d.data[int(v)*d.numSets+int(ci)] = val
}

// StoreRow implements Table.
func (d *Dense) StoreRow(v int32, row []float64) {
	copy(d.Row(v), row)
}

// AccumulateRow implements RowAccumulator: dst[i] += row(v)[i].
func (d *Dense) AccumulateRow(v int32, dst []float64) {
	for i, x := range d.Row(v) {
		dst[i] += x
	}
}

// AccumulateRows implements BulkAccumulator via the 8-wide
// bounds-check-eliminated addTo sweep (bulk8.go): lane-widened batched
// rows keep eight independent adds in flight per iteration.
func (d *Dense) AccumulateRows(vs []int32, dst []float64) {
	ns := d.numSets
	dst = dst[:ns]
	for _, v := range vs {
		base := int(v) * ns
		addTo(dst, d.data[base:base+ns:base+ns])
	}
}

// AccumulateRowsRange implements RangeAccumulator: like AccumulateRows
// but folds only the flat column range [lo, hi) of each row into the
// aligned subrange dst[lo:hi] — the tiled kernels' gather primitive.
func (d *Dense) AccumulateRowsRange(vs []int32, dst []float64, lo, hi int) {
	ns := d.numSets
	sub := dst[lo:hi]
	for _, v := range vs {
		base := int(v) * ns
		addTo(sub, d.data[base+lo:base+hi:base+hi])
	}
}

// GatherColors implements ColorGatherer.
func (d *Dense) GatherColors(vs []int32, colors []int8, dst []float64) {
	ns := d.numSets
	for _, v := range vs {
		c := colors[v]
		dst[c] += d.data[int(v)*ns+int(c)]
	}
}

// SumRow implements Table.
func (d *Dense) SumRow(v int32) float64 {
	var s float64
	for _, x := range d.Row(v) {
		s += x
	}
	return s
}

// Total implements Table.
func (d *Dense) Total() float64 {
	var s float64
	for _, x := range d.data {
		s += x
	}
	return s
}

// Rows implements Table: every vertex row is preallocated.
func (d *Dense) Rows() int64 {
	if d.data == nil {
		return 0
	}
	return int64(d.n)
}

// Bytes implements Table.
func (d *Dense) Bytes() int64 {
	return int64(len(d.data))*float64Size + sliceHeaderLen
}

// Release implements Table, returning the backing slab to the arena.
func (d *Dense) Release() {
	d.arena.PutF64(d.data)
	d.data = nil
}
