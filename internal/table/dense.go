package table

// Dense is the paper's naive layout: a fully preallocated n × NumSets
// array. Rows exist for every vertex from the start, so Has is always
// true and no allocation happens during the DP.
type Dense struct {
	numSets int
	data    []float64 // n * numSets, row-major
	n       int
}

// NewDense allocates a dense table for n vertices.
func NewDense(n, numSets int) *Dense {
	return &Dense{
		numSets: numSets,
		n:       n,
		data:    make([]float64, n*numSets),
	}
}

// NumSets implements Table.
func (d *Dense) NumSets() int { return d.numSets }

// Has implements Table; dense rows always exist.
func (d *Dense) Has(v int32) bool { return d.data != nil }

// Get implements Table.
func (d *Dense) Get(v int32, ci int32) float64 {
	return d.data[int(v)*d.numSets+int(ci)]
}

// Row implements Table.
func (d *Dense) Row(v int32) []float64 {
	base := int(v) * d.numSets
	return d.data[base : base+d.numSets : base+d.numSets]
}

// Set implements Table.
func (d *Dense) Set(v int32, ci int32, val float64) {
	d.data[int(v)*d.numSets+int(ci)] = val
}

// StoreRow implements Table.
func (d *Dense) StoreRow(v int32, row []float64) {
	copy(d.Row(v), row)
}

// AccumulateRow implements RowAccumulator: dst[i] += row(v)[i].
func (d *Dense) AccumulateRow(v int32, dst []float64) {
	for i, x := range d.Row(v) {
		dst[i] += x
	}
}

// AccumulateRows implements BulkAccumulator.
func (d *Dense) AccumulateRows(vs []int32, dst []float64) {
	ns := d.numSets
	for _, v := range vs {
		base := int(v) * ns
		row := d.data[base : base+ns]
		for i, x := range row {
			dst[i] += x
		}
	}
}

// GatherColors implements ColorGatherer.
func (d *Dense) GatherColors(vs []int32, colors []int8, dst []float64) {
	ns := d.numSets
	for _, v := range vs {
		c := colors[v]
		dst[c] += d.data[int(v)*ns+int(c)]
	}
}

// SumRow implements Table.
func (d *Dense) SumRow(v int32) float64 {
	var s float64
	for _, x := range d.Row(v) {
		s += x
	}
	return s
}

// Total implements Table.
func (d *Dense) Total() float64 {
	var s float64
	for _, x := range d.data {
		s += x
	}
	return s
}

// Rows implements Table: every vertex row is preallocated.
func (d *Dense) Rows() int64 {
	if d.data == nil {
		return 0
	}
	return int64(d.n)
}

// Bytes implements Table.
func (d *Dense) Bytes() int64 {
	return int64(len(d.data))*float64Size + sliceHeaderLen
}

// Release implements Table.
func (d *Dense) Release() { d.data = nil }
