package table

import "math/bits"

// HashTable stores only nonzero cells in a single open-addressed hash
// table keyed by key = vid·NumSets + colorIndex — the paper's hashing
// scheme, which "ensures unique values for all combinations of vertices
// and color sets". A per-vertex presence bitset preserves the cheap Has
// checks. Linear probing with power-of-two capacity and multiplicative
// key mixing keeps probes short; the table grows at 70% load.
type HashTable struct {
	numSets int
	keys    []int64 // emptyKey marks free slots
	vals    []float64
	mask    int64
	count   int
	present []uint64 // bitset over vertices
	arena   *Arena
}

const emptyKey = int64(-1)

// NewHash creates a hash-layout table for n vertices. The initial
// capacity is small; the table grows as cells are inserted, so memory
// tracks the realized selectivity rather than n × NumSets.
func NewHash(n, numSets int) *HashTable {
	return NewHashArena(n, numSets, nil)
}

// NewHashArena is NewHash drawing the key/value arrays and presence
// bitset from an arena (nil falls back to plain allocation); Release and
// growth rehashes return slabs to it.
func NewHashArena(n, numSets int, a *Arena) *HashTable {
	present := a.U64((n + 63) / 64)
	clear(present)
	h := &HashTable{
		numSets: numSets,
		present: present,
		arena:   a,
	}
	h.init(1024)
	return h
}

func (h *HashTable) init(capacity int) {
	h.keys = h.arena.I64(capacity)
	for i := range h.keys {
		h.keys[i] = emptyKey
	}
	h.vals = h.arena.F64(capacity) // never read before written at its key
	h.mask = int64(capacity - 1)
	h.count = 0
}

// mix spreads key bits into the table index (Fibonacci hashing).
func (h *HashTable) mix(key int64) int64 {
	return int64((uint64(key)*0x9e3779b97f4a7c15)>>17) & h.mask
}

// NumSets implements Table.
func (h *HashTable) NumSets() int { return h.numSets }

// Has implements Table.
func (h *HashTable) Has(v int32) bool {
	return h.present[v>>6]&(1<<(uint(v)&63)) != 0
}

func (h *HashTable) markPresent(v int32) {
	h.present[v>>6] |= 1 << (uint(v) & 63)
}

// Get implements Table.
func (h *HashTable) Get(v int32, ci int32) float64 {
	key := int64(v)*int64(h.numSets) + int64(ci)
	for i := h.mix(key); ; i = (i + 1) & h.mask {
		k := h.keys[i]
		if k == key {
			return h.vals[i]
		}
		if k == emptyKey {
			return 0
		}
	}
}

// Row implements Table; the hash layout has no materialized rows.
func (h *HashTable) Row(v int32) []float64 { return nil }

// AccumulateRow implements RowAccumulator. The hash layout cannot expose
// a contiguous row, but it can probe all of the row's cells in a single
// pass with the key base hoisted — one multiply per row instead of one
// per cell, and no interface dispatch — which is what keeps the DP's
// aggregated kernel from degrading to per-cell Get calls.
func (h *HashTable) AccumulateRow(v int32, dst []float64) {
	if !h.Has(v) {
		return
	}
	base := int64(v) * int64(h.numSets)
	for ci := 0; ci < h.numSets; ci++ {
		key := base + int64(ci)
		for i := h.mix(key); ; i = (i + 1) & h.mask {
			k := h.keys[i]
			if k == key {
				dst[ci] += h.vals[i]
				break
			}
			if k == emptyKey {
				break
			}
		}
	}
}

// AccumulateRows implements BulkAccumulator.
func (h *HashTable) AccumulateRows(vs []int32, dst []float64) {
	for _, v := range vs {
		h.AccumulateRow(v, dst)
	}
}

// AccumulateRowsRange implements RangeAccumulator: probe only the flat
// column range [lo, hi) of each present vertex into the aligned
// subrange dst[lo:hi].
func (h *HashTable) AccumulateRowsRange(vs []int32, dst []float64, lo, hi int) {
	for _, v := range vs {
		if !h.Has(v) {
			continue
		}
		base := int64(v) * int64(h.numSets)
		for ci := lo; ci < hi; ci++ {
			key := base + int64(ci)
			for i := h.mix(key); ; i = (i + 1) & h.mask {
				k := h.keys[i]
				if k == key {
					dst[ci] += h.vals[i]
					break
				}
				if k == emptyKey {
					break
				}
			}
		}
	}
}

// GatherColors implements ColorGatherer: one probe per vertex for its
// single relevant cell (v, colors[v]).
func (h *HashTable) GatherColors(vs []int32, colors []int8, dst []float64) {
	for _, v := range vs {
		c := colors[v]
		key := int64(v)*int64(h.numSets) + int64(c)
		for i := h.mix(key); ; i = (i + 1) & h.mask {
			k := h.keys[i]
			if k == key {
				dst[c] += h.vals[i]
				break
			}
			if k == emptyKey {
				break
			}
		}
	}
}

func (h *HashTable) grow() {
	oldKeys, oldVals := h.keys, h.vals
	h.init(len(oldKeys) * 2)
	for i, k := range oldKeys {
		if k != emptyKey {
			h.put(k, oldVals[i])
		}
	}
	h.arena.PutI64(oldKeys)
	h.arena.PutF64(oldVals)
}

func (h *HashTable) put(key int64, val float64) {
	for i := h.mix(key); ; i = (i + 1) & h.mask {
		k := h.keys[i]
		if k == key {
			h.vals[i] = val
			return
		}
		if k == emptyKey {
			h.keys[i] = key
			h.vals[i] = val
			h.count++
			return
		}
	}
}

// Set implements Table. Zero stores for absent cells are skipped so the
// table only ever holds nonzero counts.
func (h *HashTable) Set(v int32, ci int32, val float64) {
	if val == 0 {
		// Only overwrite when the cell already exists.
		key := int64(v)*int64(h.numSets) + int64(ci)
		for i := h.mix(key); ; i = (i + 1) & h.mask {
			k := h.keys[i]
			if k == key {
				h.vals[i] = 0
				return
			}
			if k == emptyKey {
				return
			}
		}
	}
	if 10*(h.count+1) > 7*len(h.keys) {
		h.grow()
	}
	h.put(int64(v)*int64(h.numSets)+int64(ci), val)
	h.markPresent(v)
}

// StoreRow implements Table. For a vertex that already has cells the
// whole row is written (zeros clear stale cells); fresh vertices only
// insert their nonzero cells.
func (h *HashTable) StoreRow(v int32, row []float64) {
	overwrite := h.Has(v)
	for ci, x := range row {
		if x != 0 || overwrite {
			h.Set(v, int32(ci), x)
		}
	}
}

// SumRow implements Table.
func (h *HashTable) SumRow(v int32) float64 {
	if !h.Has(v) {
		return 0
	}
	var s float64
	for ci := 0; ci < h.numSets; ci++ {
		s += h.Get(v, int32(ci))
	}
	return s
}

// Total implements Table.
func (h *HashTable) Total() float64 {
	var s float64
	for i, k := range h.keys {
		if k != emptyKey {
			s += h.vals[i]
		}
	}
	return s
}

// Bytes implements Table.
func (h *HashTable) Bytes() int64 {
	return int64(len(h.keys))*(8+float64Size) + int64(len(h.present))*8 + 3*sliceHeaderLen
}

// Rows implements Table: the number of vertices with at least one
// stored cell (a popcount over the presence bitset).
func (h *HashTable) Rows() int64 {
	var n int64
	for _, w := range h.present {
		n += int64(bits.OnesCount64(w))
	}
	return n
}

// Release implements Table, returning all slabs to the arena.
func (h *HashTable) Release() {
	h.arena.PutI64(h.keys)
	h.arena.PutF64(h.vals)
	h.arena.PutU64(h.present)
	h.keys = nil
	h.vals = nil
	h.present = nil
}

// ForEach calls fn for every stored cell with its raw key
// (vid·NumSets + colorIndex) and value, in unspecified order. The
// multi-lane wrapper uses it for per-lane totals without materializing
// rows.
func (h *HashTable) ForEach(fn func(key int64, val float64)) {
	for i, k := range h.keys {
		if k != emptyKey {
			fn(k, h.vals[i])
		}
	}
}

// Load returns the number of stored cells; exposed for tests and memory
// diagnostics.
func (h *HashTable) Load() int { return h.count }

// MergeFrom inserts every cell of src into h (overwriting duplicates) and
// ORs src's presence bits in. Both tables must have the same NumSets and
// vertex count for the keys and bitsets to correspond. The DP's
// inner-parallel mode uses this to combine per-worker staging tables
// after a pass barrier, which is what lets workers fill Hash-layout
// tables lock-free.
func (h *HashTable) MergeFrom(src *HashTable) {
	if src == nil || src.numSets != h.numSets {
		if src != nil {
			panic("table: MergeFrom across differing NumSets")
		}
		return
	}
	for i, k := range src.keys {
		if k == emptyKey {
			continue
		}
		if 10*(h.count+1) > 7*len(h.keys) {
			h.grow()
		}
		h.put(k, src.vals[i])
	}
	for i := range src.present {
		h.present[i] |= src.present[i]
	}
}
