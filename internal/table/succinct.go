package table

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// Succinct is the Motivo-style compressed layout (arXiv:1906.01599):
// each materialized row is stored as a byte stream of
// (zero-run-skip, count) token pairs instead of a flat float64 array,
// exploiting the zero-run sparsity of color-coding DP rows — most
// (vertex, color-set) cells stay zero for selective templates, and
// the nonzero counts are small integers that varint-pack into a
// couple of bytes instead of eight.
//
// The codec is LOSSLESS (integer counts varint-packed exactly,
// anything else as raw IEEE-754 bits), so estimates are bit-identical
// to every other layout — the layout×kernel differential harness
// verifies that for free via Kinds.
//
// Row storage is bump-allocated from 64 KiB byte blocks with a
// per-vertex packed (block, offset) reference, mirroring the Sparse
// layout's concurrency contract: block carving happens under a mutex,
// each vertex's reference is written only by its owning worker, and a
// table being written is never concurrently read. Overwriting a row
// re-carves (the old bytes leak until Release); DP passes store each
// vertex once per pass, so the leak is bounded and the simplicity is
// worth it.
type SuccinctTable struct {
	numSets int
	refs    []int64 // per-vertex packed block<<32|offset, -1 = absent
	blocks  [][]byte
	curBlk  int32 // current bump block index, guarded by mu
	curOff  int32 // next free offset in blocks[curBlk], guarded by mu
	blkLen  int64 // total block bytes allocated, guarded by mu
	encCap  int   // encode scratch size class (worst-case row bytes)
	live    atomic.Int64
	mu      sync.Mutex
	arena   *Arena
}

// succinctBlockBytes is the standard bump-allocation block size; rows
// whose encoding exceeds it get a dedicated exact-size block.
const succinctBlockBytes = 64 << 10

// maxSuccinctCellBytes bounds the encoding of one nonzero cell: a
// zero-skip uvarint (<= 5 bytes for any int32 column count) plus
// either a value uvarint (<= 10 bytes) or marker+raw (9 bytes).
const maxSuccinctCellBytes = 15

// succinctCellEstimateBytes is the planning estimate of the average
// encoded cost per (vertex, color-set) cell: DP rows are mostly zero
// (skipped outright) and their nonzero counts are small integers that
// varint-pack into one or two bytes, so two bytes per cell is a
// conservative sizing figure for the batch and tile planners.
const succinctCellEstimateBytes = 2.0

// NewSuccinct creates a succinct table for n vertices with no rows
// stored.
func NewSuccinct(n, numSets int) *SuccinctTable {
	return NewSuccinctArena(n, numSets, nil)
}

// NewSuccinctArena is NewSuccinct drawing the reference vector, row
// blocks, and encode scratch from an arena (nil falls back to plain
// allocation); Release returns them to it.
func NewSuccinctArena(n, numSets int, a *Arena) *SuccinctTable {
	refs := a.I64(n)
	for i := range refs {
		refs[i] = -1
	}
	return &SuccinctTable{
		numSets: numSets,
		refs:    refs,
		curBlk:  -1,
		encCap:  numSets*maxSuccinctCellBytes + binary.MaxVarintLen64,
		arena:   a,
	}
}

// appendSuccinctRow appends the token-stream encoding of row to dst:
// for each nonzero cell, a uvarint count of zero cells skipped since
// the previous token, then the value — an even uvarint 2·v for a
// nonnegative integer count v (exact: the encoder verifies the
// float64 round-trip), or the odd marker byte 1 followed by the raw
// little-endian IEEE-754 bits. Trailing zeros are simply not emitted.
func appendSuccinctRow(dst []byte, row []float64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	skip := uint64(0)
	for _, v := range row {
		if v == 0 {
			skip++
			continue
		}
		n := binary.PutUvarint(tmp[:], skip)
		dst = append(dst, tmp[:n]...)
		skip = 0
		if u, ok := succinctIntToken(v); ok {
			n = binary.PutUvarint(tmp[:], u)
			dst = append(dst, tmp[:n]...)
		} else {
			dst = append(dst, 1)
			var raw [8]byte
			binary.LittleEndian.PutUint64(raw[:], math.Float64bits(v))
			dst = append(dst, raw[:]...)
		}
	}
	return dst
}

// succinctIntToken returns the even varint token for v when v is a
// nonnegative integer that round-trips float64->uint64->float64
// exactly and leaves the low tag bit free.
func succinctIntToken(v float64) (uint64, bool) {
	if !(v >= 0 && v < (1<<62)) || v != math.Trunc(v) {
		return 0, false
	}
	u := uint64(v)
	if float64(u) != v {
		return 0, false
	}
	return u << 1, true
}

// decodeSuccinctRow zero-fills dst and decodes enc into it. It returns
// false (leaving dst zero-filled up to the failure point) on any
// malformed input: truncated varints, raw tails shorter than 8 bytes,
// unknown odd markers, or tokens that run past len(dst). The fuzz
// harness drives it with hostile inputs.
func decodeSuccinctRow(enc []byte, dst []float64) bool {
	clear(dst)
	ok := true
	walkSuccinctRow(enc, func(ci int, val float64) bool {
		if ci >= len(dst) {
			ok = false
			return false
		}
		dst[ci] = val
		return true
	})
	if !ok {
		return false
	}
	return validSuccinctRow(enc, len(dst))
}

// walkSuccinctRow decodes enc token by token, calling fn with each
// stored (column, value) pair in ascending column order until fn
// returns false or the stream ends. Malformed streams stop the walk
// silently — internal encodings are always well-formed, and the
// validating entry point is decodeSuccinctRow.
func walkSuccinctRow(enc []byte, fn func(ci int, val float64) bool) {
	ci := 0
	for i := 0; i < len(enc); {
		skip, n := binary.Uvarint(enc[i:])
		if n <= 0 || skip > uint64(math.MaxInt32) {
			return
		}
		i += n
		ci += int(skip)
		u, n := binary.Uvarint(enc[i:])
		if n <= 0 {
			return
		}
		i += n
		var v float64
		switch {
		case u&1 == 0:
			v = float64(u >> 1)
		case u == 1:
			if i+8 > len(enc) {
				return
			}
			v = math.Float64frombits(binary.LittleEndian.Uint64(enc[i:]))
			i += 8
		default:
			return
		}
		if !fn(ci, v) {
			return
		}
		ci++
	}
}

// validSuccinctRow reports whether enc is a complete, well-formed
// encoding for a row of width w.
func validSuccinctRow(enc []byte, w int) bool {
	ci := 0
	for i := 0; i < len(enc); {
		skip, n := binary.Uvarint(enc[i:])
		if n <= 0 || skip > uint64(math.MaxInt32) {
			return false
		}
		i += n
		ci += int(skip)
		if ci >= w {
			return false
		}
		u, n := binary.Uvarint(enc[i:])
		if n <= 0 {
			return false
		}
		i += n
		if u&1 == 1 {
			if u != 1 || i+8 > len(enc) {
				return false
			}
			i += 8
		}
		ci++
	}
	return true
}

// NumSets implements Table.
func (s *SuccinctTable) NumSets() int { return s.numSets }

// Has implements Table.
func (s *SuccinctTable) Has(v int32) bool { return s.refs[v] >= 0 }

// rowEnc returns v's encoded row bytes (nil when absent; possibly
// empty for a present all-zero row).
func (s *SuccinctTable) rowEnc(v int32) []byte {
	ref := s.refs[v]
	if ref < 0 {
		return nil
	}
	buf := s.blocks[ref>>32][uint32(ref):]
	n, m := binary.Uvarint(buf)
	return buf[m : m+int(n)]
}

// Get implements Table.
func (s *SuccinctTable) Get(v int32, ci int32) float64 {
	enc := s.rowEnc(v)
	if enc == nil {
		return 0
	}
	var out float64
	walkSuccinctRow(enc, func(c int, val float64) bool {
		if c >= int(ci) {
			if c == int(ci) {
				out = val
			}
			return false
		}
		return true
	})
	return out
}

// Row implements Table; the succinct layout has no flat rows.
func (s *SuccinctTable) Row(v int32) []float64 { return nil }

// carve bump-allocates n bytes of row storage and returns the packed
// (block, offset) reference plus the destination slice (computed under
// the mutex so a concurrent block append cannot race the blocks slice
// header). Concurrent calls for DISTINCT vertices are safe, mirroring
// Sparse.carve.
func (s *SuccinctTable) carve(n int) (ref int64, dst []byte) {
	s.mu.Lock()
	if n > succinctBlockBytes {
		block := s.arena.B(n)
		s.blocks = append(s.blocks, block)
		s.blkLen += int64(n)
		ref = int64(len(s.blocks)-1) << 32
		dst = block[:n:n]
		s.mu.Unlock()
		return ref, dst
	}
	if s.curBlk < 0 || int(s.curOff)+n > succinctBlockBytes {
		block := s.arena.B(succinctBlockBytes)
		s.blocks = append(s.blocks, block)
		s.blkLen += succinctBlockBytes
		s.curBlk = int32(len(s.blocks) - 1)
		s.curOff = 0
	}
	off := s.curOff
	dst = s.blocks[s.curBlk][off : int(off)+n : int(off)+n]
	s.curOff += int32(n)
	ref = int64(s.curBlk)<<32 | int64(off)
	s.mu.Unlock()
	return ref, dst
}

// storeEncoded encodes row and publishes it as v's storage,
// overwriting any previous reference.
func (s *SuccinctTable) storeEncoded(v int32, row []float64) {
	scratch := s.arena.B(s.encCap)
	enc := appendSuccinctRow(scratch[:0], row)
	var pre [binary.MaxVarintLen64]byte
	pn := binary.PutUvarint(pre[:], uint64(len(enc)))
	ref, dst := s.carve(pn + len(enc))
	copy(dst, pre[:pn])
	copy(dst[pn:], enc)
	if s.refs[v] < 0 {
		s.live.Add(1)
	}
	s.refs[v] = ref
	s.arena.PutB(scratch)
}

// Set implements Table. A zero store into an absent vertex is a no-op
// (matching the hash layout); any other single-cell update decodes,
// patches, and re-encodes the row.
func (s *SuccinctTable) Set(v int32, ci int32, val float64) {
	enc := s.rowEnc(v)
	if enc == nil {
		if val == 0 {
			return
		}
		row := s.arena.F64(s.numSets)
		clear(row)
		row[ci] = val
		s.storeEncoded(v, row)
		s.arena.PutF64(row)
		return
	}
	row := s.arena.F64(s.numSets)
	decodeSuccinctRow(enc, row[:s.numSets])
	row[ci] = val
	s.storeEncoded(v, row[:s.numSets])
	s.arena.PutF64(row)
}

// StoreRow implements Table. An all-zero row for an absent vertex is
// skipped, preserving the selectivity of Has.
func (s *SuccinctTable) StoreRow(v int32, row []float64) {
	if s.refs[v] < 0 {
		nonzero := false
		for _, x := range row {
			if x != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			return
		}
	}
	s.storeEncoded(v, row)
}

// DecodeRowInto implements RowDecoder: it zero-fills dst[:NumSets] and
// decodes v's row into it, reporting presence. One sequential decode
// instead of NumSets token-walking Get probes.
func (s *SuccinctTable) DecodeRowInto(v int32, dst []float64) bool {
	enc := s.rowEnc(v)
	if enc == nil {
		return false
	}
	decodeSuccinctRow(enc, dst[:s.numSets])
	return true
}

// AccumulateRow implements RowAccumulator; absent rows contribute
// nothing.
func (s *SuccinctTable) AccumulateRow(v int32, dst []float64) {
	enc := s.rowEnc(v)
	if enc == nil {
		return
	}
	walkSuccinctRow(enc, func(ci int, val float64) bool {
		dst[ci] += val
		return true
	})
}

// AccumulateRows implements BulkAccumulator.
func (s *SuccinctTable) AccumulateRows(vs []int32, dst []float64) {
	for _, v := range vs {
		s.AccumulateRow(v, dst)
	}
}

// AccumulateRowsRange implements RangeAccumulator: tokens are in
// ascending column order, so the walk stops at hi.
func (s *SuccinctTable) AccumulateRowsRange(vs []int32, dst []float64, lo, hi int) {
	for _, v := range vs {
		enc := s.rowEnc(v)
		if enc == nil {
			continue
		}
		walkSuccinctRow(enc, func(ci int, val float64) bool {
			if ci >= hi {
				return false
			}
			if ci >= lo {
				dst[ci] += val
			}
			return true
		})
	}
}

// GatherColors implements ColorGatherer.
func (s *SuccinctTable) GatherColors(vs []int32, colors []int8, dst []float64) {
	for _, v := range vs {
		c := colors[v]
		dst[c] += s.Get(v, int32(c))
	}
}

// ForEachInRow calls fn for every stored cell of v's row in ascending
// column order; the multi-lane wrapper's gather branches use it to
// visit a row's lanes in one decode.
func (s *SuccinctTable) ForEachInRow(v int32, fn func(ci int32, val float64)) {
	enc := s.rowEnc(v)
	if enc == nil {
		return
	}
	walkSuccinctRow(enc, func(ci int, val float64) bool {
		fn(int32(ci), val)
		return true
	})
}

// ForEach calls fn for every stored cell with its raw key
// (vid·NumSets + colorIndex) and value, in ascending key order; the
// multi-lane wrapper uses it for per-lane totals.
func (s *SuccinctTable) ForEach(fn func(key int64, val float64)) {
	for v := range s.refs {
		ref := s.refs[v]
		if ref < 0 {
			continue
		}
		base := int64(v) * int64(s.numSets)
		walkSuccinctRow(s.rowEnc(int32(v)), func(ci int, val float64) bool {
			fn(base+int64(ci), val)
			return true
		})
	}
}

// SumRow implements Table.
func (s *SuccinctTable) SumRow(v int32) float64 {
	var sum float64
	enc := s.rowEnc(v)
	if enc == nil {
		return 0
	}
	walkSuccinctRow(enc, func(ci int, val float64) bool {
		sum += val
		return true
	})
	return sum
}

// Total implements Table.
func (s *SuccinctTable) Total() float64 {
	var sum float64
	for v := range s.refs {
		sum += s.SumRow(int32(v))
	}
	return sum
}

// Rows implements Table: the number of stored rows.
func (s *SuccinctTable) Rows() int64 { return s.live.Load() }

// Bytes implements Table: the reference vector plus all row blocks.
// Compression is the point — on selective workloads this sits far
// below the dense layout's n·NumSets·8.
func (s *SuccinctTable) Bytes() int64 {
	s.mu.Lock()
	blk := s.blkLen
	nblocks := int64(len(s.blocks))
	s.mu.Unlock()
	return int64(len(s.refs))*8 + blk + nblocks*sliceHeaderLen + 2*sliceHeaderLen
}

// Release implements Table, returning the reference vector and row
// blocks to the arena.
func (s *SuccinctTable) Release() {
	s.arena.PutI64(s.refs)
	s.refs = nil
	s.mu.Lock()
	blocks := s.blocks
	s.blocks = nil
	s.curBlk = -1
	s.curOff = 0
	s.blkLen = 0
	s.mu.Unlock()
	for _, b := range blocks {
		s.arena.PutB(b)
	}
	s.live.Store(0)
}
