package table

import (
	"encoding/binary"
	"math"
	"testing"
)

// eqCell compares decoded cells the way the succinct codec defines
// equality: bit-exact, except that the sign of zero is elided (zero
// cells are skipped outright, so -0.0 legitimately decodes as +0.0).
func eqCell(a, b float64) bool {
	if a == 0 && b == 0 {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// FuzzSuccinctRow drives the succinct row codec from both ends: the
// fuzz input is interpreted once as a row of raw float64 bits (encode →
// decode must round-trip losslessly) and once as a hostile encoded
// stream (decode must never panic, must agree with validSuccinctRow,
// and anything it accepts must re-encode stably).
func FuzzSuccinctRow(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f}, uint8(1))       // 1.0
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0xff}, uint8(2))       // -inf
	f.Add([]byte{1, 0xff, 2, 4, 1, 1, 1, 1, 1, 1, 1}, uint8(8)) // hostile-ish stream
	f.Fuzz(func(t *testing.T, data []byte, w uint8) {
		width := int(w)%64 + 1

		// Lossless round-trip: raw bits -> row -> encode -> decode.
		row := make([]float64, width)
		for i := 0; i < width && (i+1)*8 <= len(data); i++ {
			row[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		enc := appendSuccinctRow(nil, row)
		if !validSuccinctRow(enc, width) {
			t.Fatalf("encoder produced invalid stream %x for row %v", enc, row)
		}
		dec := make([]float64, width)
		if !decodeSuccinctRow(enc, dec) {
			t.Fatalf("decoder rejected encoder output %x for row %v", enc, row)
		}
		for i := range row {
			if !eqCell(row[i], dec[i]) {
				t.Fatalf("cell %d: %x -> %x not lossless", i, math.Float64bits(row[i]), math.Float64bits(dec[i]))
			}
		}

		// Hostile decode: the raw input as an encoded stream. Must not
		// panic, and accept/reject must match the validator.
		dst := make([]float64, width)
		ok := decodeSuccinctRow(data, dst)
		if ok != validSuccinctRow(data, width) {
			t.Fatalf("decode ok=%v disagrees with validator for %x", ok, data)
		}
		if ok {
			// Accepted streams re-encode to something that decodes to the
			// same row (the encoding itself may differ: Uvarint accepts
			// non-minimal varints the encoder never emits).
			enc2 := appendSuccinctRow(nil, dst)
			dst2 := make([]float64, width)
			if !decodeSuccinctRow(enc2, dst2) {
				t.Fatalf("re-encode of accepted stream rejected: %x -> %x", data, enc2)
			}
			for i := range dst {
				if !eqCell(dst[i], dst2[i]) {
					t.Fatalf("re-encode changed cell %d: %x -> %x", i, math.Float64bits(dst[i]), math.Float64bits(dst2[i]))
				}
			}
		}
	})
}
