package table

// Multi is the lane-strided multi-coloring table behind the dp package's
// batched execution mode: one underlying Table stores the cells of L
// concurrent color-coding iterations ("lanes"), with the logical cell
// (v, ci, lane) living at flat column ci·L + lane of a width NumSets·L
// row. Lane blocks are contiguous, so the batched kernels' innermost
// loops are flat float64 FMA sweeps over the lane dimension, and one
// graph traversal serves all L lanes.
//
// Presence (Has) is the union over lanes: a row materializes when ANY
// lane stores a nonzero there. Absent lanes of a present row read as the
// zeros they are, so per-lane results are unaffected — counts are
// integer-valued float64s and every summation order is exact (up to
// 2^53), which is what makes batched and unbatched runs bit-identical.
type Multi struct {
	tab     Table
	numSets int
	lanes   int
	n       int
}

// NewMulti creates a lane-strided table of the given layout for n
// vertices, numSets color sets, and lanes concurrent colorings, drawing
// slabs from the arena (nil = plain allocation).
func NewMulti(kind Kind, n, numSets, lanes int, a *Arena) *Multi {
	return &Multi{
		tab:     NewInArena(kind, n, numSets*lanes, a),
		numSets: numSets,
		lanes:   lanes,
		n:       n,
	}
}

// NumSets returns the per-lane color-set count.
func (m *Multi) NumSets() int { return m.numSets }

// Lanes returns the number of concurrent colorings stored.
func (m *Multi) Lanes() int { return m.lanes }

// Width returns the flat row width NumSets·Lanes.
func (m *Multi) Width() int { return m.numSets * m.lanes }

// Has reports whether any lane has stored a row for v.
func (m *Multi) Has(v int32) bool { return m.tab.Has(v) }

// LaneRow returns v's flat lane-strided row (length Width), or nil when
// the layout cannot expose one (hash) or no lane has touched v.
func (m *Multi) LaneRow(v int32) []float64 { return m.tab.Row(v) }

// Get returns the cell (v, ci) of one lane, zero when absent.
func (m *Multi) Get(v, ci int32, lane int) float64 {
	return m.tab.Get(v, ci*int32(m.lanes)+int32(lane))
}

// Set stores the cell (v, ci) of one lane.
func (m *Multi) Set(v, ci int32, lane int, val float64) {
	m.tab.Set(v, ci*int32(m.lanes)+int32(lane), val)
}

// StoreRow copies a flat lane-strided row (length Width) into v's
// storage; layouts that track presence skip all-zero rows.
func (m *Multi) StoreRow(v int32, row []float64) {
	m.tab.StoreRow(v, row)
}

// MaterializeRow returns v's flat row directly when the layout has one,
// otherwise decodes it in one pass (succinct layout, via RowDecoder) or
// copies it cell-by-cell into dst (hash layout; absent cells read
// zero). dst must have capacity Width.
func (m *Multi) MaterializeRow(v int32, dst []float64) []float64 {
	if row := m.tab.Row(v); row != nil {
		return row
	}
	w := m.Width()
	dst = dst[:w]
	if rd, ok := m.tab.(RowDecoder); ok {
		if !rd.DecodeRowInto(v, dst) {
			clear(dst)
		}
		return dst
	}
	for ci := 0; ci < w; ci++ {
		dst[ci] = m.tab.Get(v, int32(ci))
	}
	return dst
}

// AccumulateRows adds the flat lane rows of every vertex in vs into dst
// (length Width) — the batched SpMM-style neighbor aggregation: one
// interface dispatch and one sequential sweep per neighbor, amortized
// over all lanes.
func (m *Multi) AccumulateRows(vs []int32, dst []float64) {
	AccumulateRowsInto(m.tab, vs, dst)
}

// AccumulateRowsRange is the tiled form of AccumulateRows: it folds only
// the per-lane column range [lo, hi) — flat columns [lo·L, hi·L) — of
// each vertex's lane row into the aligned subrange of dst. Lane blocks
// are contiguous, so a per-lane column tile is one flat slice per row.
func (m *Multi) AccumulateRowsRange(vs []int32, dst []float64, lo, hi int) {
	AccumulateRowsRangeInto(m.tab, vs, dst, lo*m.lanes, hi*m.lanes)
}

// GatherColors folds, for each vertex u in vs and each lane j, the cell
// (u, colors[u·L+j], j) into dst[colors[u·L+j]·L+j]; colors is the
// lane-strided per-vertex coloring and dst has length k·L. It is the
// batched form of the single-vertex-child per-color gather.
func (m *Multi) GatherColors(vs []int32, colors []int8, dst []float64) {
	L := m.lanes
	sc, isSuccinct := m.tab.(*SuccinctTable)
	for _, u := range vs {
		if row := m.tab.Row(u); row != nil {
			base := int(u) * L
			for j := 0; j < L; j++ {
				o := int(colors[base+j])*L + j
				dst[o] += row[o]
			}
		} else if isSuccinct { // succinct: one decode visits every lane
			base := int(u) * L
			sc.ForEachInRow(u, func(ci int32, val float64) {
				j := int(ci) % L
				if int(colors[base+j]) == int(ci)/L {
					dst[ci] += val
				}
			})
		} else if m.tab.Has(u) { // hash layout: probe per lane
			base := int(u) * L
			for j := 0; j < L; j++ {
				ci := int32(colors[base+j])
				dst[int(ci)*L+j] += m.Get(u, ci, j)
			}
		}
	}
}

// GatherColorsRange is the tiled form of GatherColors: lanes whose
// color for u falls outside the per-lane column range [lo, hi) are
// skipped, so a tile sweep over the passive columns visits each (u,
// lane) cell exactly once across tiles.
func (m *Multi) GatherColorsRange(vs []int32, colors []int8, dst []float64, lo, hi int) {
	L := m.lanes
	sc, isSuccinct := m.tab.(*SuccinctTable)
	for _, u := range vs {
		if row := m.tab.Row(u); row != nil {
			base := int(u) * L
			for j := 0; j < L; j++ {
				c := int(colors[base+j])
				if c < lo || c >= hi {
					continue
				}
				o := c*L + j
				dst[o] += row[o]
			}
		} else if isSuccinct { // succinct: one decode visits every lane
			base := int(u) * L
			sc.ForEachInRow(u, func(ci int32, val float64) {
				c := int(ci) / L
				if c < lo || c >= hi {
					return
				}
				if int(colors[base+int(ci)%L]) == c {
					dst[ci] += val
				}
			})
		} else if m.tab.Has(u) { // hash layout: probe per lane
			base := int(u) * L
			for j := 0; j < L; j++ {
				c := int(colors[base+j])
				if c < lo || c >= hi {
					continue
				}
				dst[c*L+j] += m.Get(u, int32(c), j)
			}
		}
	}
}

// Totals accumulates the per-lane sum of all cells into dst (length
// Lanes) — one colorful-mapping total per concurrent coloring.
func (m *Multi) Totals(dst []float64) {
	L := m.lanes
	// Hash and succinct layouts walk their stored cells directly; the
	// flat key is v·Width + ci·L + lane, so key mod L is the lane.
	// Counts are integer-valued float64s, so visiting only nonzero
	// cells (in either walk order) sums bit-identically to the dense
	// row sweep below.
	if fe, ok := m.tab.(interface{ ForEach(func(int64, float64)) }); ok {
		fe.ForEach(func(key int64, val float64) {
			dst[int(key)%L] += val
		})
		return
	}
	w := m.Width()
	for v := int32(0); v < int32(m.n); v++ {
		row := m.tab.Row(v)
		if row == nil {
			continue
		}
		for i := 0; i < w; i++ {
			dst[i%L] += row[i]
		}
	}
}

// MergeFrom merges a hash-layout staging Multi into this one (the
// lock-free inner-parallel staging path); both must be hash-layout with
// identical shape.
func (m *Multi) MergeFrom(src *Multi) {
	dst, ok1 := m.tab.(*HashTable)
	s, ok2 := src.tab.(*HashTable)
	if !ok1 || !ok2 {
		panic("table: Multi.MergeFrom requires hash layouts")
	}
	dst.MergeFrom(s)
}

// IsHash reports whether the underlying layout is the hash table (which
// needs staging for concurrent writers).
func (m *Multi) IsHash() bool {
	_, ok := m.tab.(*HashTable)
	return ok
}

// Bytes returns the current heap footprint of the underlying storage.
func (m *Multi) Bytes() int64 { return m.tab.Bytes() }

// Rows returns the number of materialized (union-over-lanes) rows.
func (m *Multi) Rows() int64 { return m.tab.Rows() }

// Release drops all storage, returning slabs to the arena.
func (m *Multi) Release() { m.tab.Release() }
