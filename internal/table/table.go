// Package table provides the dynamic-programming count table abstraction
// from the paper (§III-C): counts indexed by (subtemplate, vertex,
// color-set index), with the subtemplate dimension handled by the engine
// and this package supplying per-subtemplate (vertex × color set) storage
// in three interchangeable layouts:
//
//   - Dense ("naive"): every row preallocated regardless of need.
//   - Sparse ("improved"): rows allocated only for vertices that acquire a
//     nonzero count, enabling the cheap initialized-vertex checks that
//     skip work in the DP inner loops.
//   - Hash: a single open-addressed table keyed by vid·Nc + colorIndex,
//     which wins for high-selectivity templates where most (vertex,
//     color set) cells stay empty.
//
// All layouts report their exact heap footprint via Bytes(), which powers
// the paper's memory experiments (Figures 6 and 7).
package table

import "fmt"

// Kind selects a table layout.
type Kind int

const (
	// Naive preallocates all n × C(k,h) entries (the paper's baseline).
	Naive Kind = iota
	// Lazy allocates rows on first store (the paper's "improved" layout).
	Lazy
	// Hash stores only nonzero cells in an open-addressed hash table.
	Hash
	// Succinct stores compressed rows: zero-run skipping plus varint
	// packing of integer counts (raw IEEE-754 fallback keeps the codec
	// lossless), the Motivo-style layout for memory-bound graphs.
	Succinct
)

func (k Kind) String() string {
	switch k {
	case Naive:
		return "naive"
	case Lazy:
		return "lazy"
	case Hash:
		return "hash"
	case Succinct:
		return "succinct"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Table stores counts for one subtemplate: a float64 per (vertex,
// color-set index) pair. Implementations are not safe for concurrent
// writers to the same vertex, but concurrent access to distinct vertices
// is safe for Dense and Sparse (the inner-loop parallel mode shards
// vertices); the Hash layout requires external chunk merging and is used
// only in sequential and outer-parallel modes.
type Table interface {
	// NumSets returns the number of color-set slots per vertex.
	NumSets() int
	// Has reports whether vertex v has any stored (possibly zero) row.
	// The DP uses it to skip uninitialized vertices cheaply.
	Has(v int32) bool
	// Get returns the count for (v, ci), zero when absent.
	Get(v int32, ci int32) float64
	// Row returns direct row storage for v, or nil when the layout cannot
	// expose one (Hash) or the row is absent. Callers must not retain it.
	Row(v int32) []float64
	// Set stores a single cell, materializing the row as needed.
	Set(v int32, ci int32, val float64)
	// StoreRow copies row (length NumSets) into v's storage. Layouts that
	// track presence may skip an all-zero row for an absent vertex.
	StoreRow(v int32, row []float64)
	// SumRow returns the sum of v's row (zero when absent).
	SumRow(v int32) float64
	// Total returns the sum of all cells.
	Total() float64
	// Bytes returns the current heap footprint of the table's storage.
	Bytes() int64
	// Rows returns the number of materialized vertex rows: every vertex
	// for the dense layout, allocated rows for the sparse layout, and
	// vertices with at least one stored cell for the hash layout. It
	// powers the run-stats row-traffic accounting.
	Rows() int64
	// Release drops all storage; the table must not be used afterwards.
	Release()
}

// New creates a table of the given layout for n vertices and numSets
// color-set slots per vertex.
func New(kind Kind, n int, numSets int) Table {
	return NewInArena(kind, n, numSets, nil)
}

// NewInArena is New with backing slabs drawn from (and returned to) an
// arena; a nil arena degrades to plain allocation.
func NewInArena(kind Kind, n int, numSets int, a *Arena) Table {
	switch kind {
	case Naive:
		return NewDenseArena(n, numSets, a)
	case Lazy:
		return NewSparseArena(n, numSets, a)
	case Hash:
		return NewHashArena(n, numSets, a)
	case Succinct:
		return NewSuccinctArena(n, numSets, a)
	default:
		panic(fmt.Sprintf("table: unknown kind %d", int(kind)))
	}
}

// Kinds lists all layouts, for cross-implementation tests and ablations.
var Kinds = []Kind{Naive, Lazy, Hash, Succinct}

// BytesPerCellEstimate returns the layout's expected storage cost per
// (vertex, color-set) cell, the figure the dp batch and tile planners
// size (B, tiles) with. Dense-backed layouts (and hash, whose occupancy
// cannot be assumed small a priori) cost a full float64 per cell; the
// succinct layout's zero-run skipping and varint packing average a few
// bytes per cell on the integer-valued, mostly-zero DP tables, so the
// same memory budget admits wider lane batches.
func (k Kind) BytesPerCellEstimate() float64 {
	if k == Succinct {
		return succinctCellEstimateBytes
	}
	return float64Size
}

// RowDecoder is an optional fast path for layouts without flat rows:
// DecodeRowInto zero-fills dst[:NumSets] and decodes vertex v's row
// into it in one sequential pass, reporting presence. Callers fall
// back to per-cell Get when a layout (hash) does not implement it.
type RowDecoder interface {
	DecodeRowInto(v int32, dst []float64) bool
}

// RowAccumulator is an optional fast path for neighbor aggregation:
// AccumulateRow adds vertex v's row into dst (len >= NumSets), doing
// nothing when the row is absent. All built-in layouts implement it; the
// DP's aggregated (SpMM-style) kernel uses it to sum neighbor passive
// rows into a dense scratch buffer without a per-cell interface call.
type RowAccumulator interface {
	AccumulateRow(v int32, dst []float64)
}

// AccumulateRowInto adds v's row into dst using the RowAccumulator fast
// path when available, falling back to Row and finally per-cell Get.
func AccumulateRowInto(tab Table, v int32, dst []float64) {
	if acc, ok := tab.(RowAccumulator); ok {
		acc.AccumulateRow(v, dst)
		return
	}
	if row := tab.Row(v); row != nil {
		for i, x := range row {
			dst[i] += x
		}
		return
	}
	for ci := 0; ci < tab.NumSets(); ci++ {
		dst[ci] += tab.Get(v, int32(ci))
	}
}

// BulkAccumulator is the batched form of RowAccumulator: it adds the rows
// of every vertex in vs into dst with one interface dispatch for the
// whole adjacency list. The aggregated DP kernel is bound by per-neighbor
// call overhead on wide-degree vertices, so built-in layouts implement
// this with a tight concrete loop.
type BulkAccumulator interface {
	AccumulateRows(vs []int32, dst []float64)
}

// AccumulateRowsInto adds the rows of all vs into dst via the
// BulkAccumulator fast path when available.
func AccumulateRowsInto(tab Table, vs []int32, dst []float64) {
	if acc, ok := tab.(BulkAccumulator); ok {
		acc.AccumulateRows(vs, dst)
		return
	}
	for _, v := range vs {
		AccumulateRowInto(tab, v, dst)
	}
}

// RangeAccumulator is the tiled form of BulkAccumulator: it folds only
// the flat column range [lo, hi) of each row into the aligned subrange
// dst[lo:hi]. The tiled DP kernels sweep a node's passive columns one
// tile at a time so the gathered rows stay cache-resident; every
// built-in layout implements this with a tight concrete loop.
type RangeAccumulator interface {
	AccumulateRowsRange(vs []int32, dst []float64, lo, hi int)
}

// AccumulateRowsRangeInto adds columns [lo, hi) of the rows of all vs
// into dst[lo:hi] via the RangeAccumulator fast path when available,
// falling back to Row and finally per-cell Get.
func AccumulateRowsRangeInto(tab Table, vs []int32, dst []float64, lo, hi int) {
	if acc, ok := tab.(RangeAccumulator); ok {
		acc.AccumulateRowsRange(vs, dst, lo, hi)
		return
	}
	for _, v := range vs {
		if row := tab.Row(v); row != nil {
			addTo(dst[lo:hi], row[lo:hi])
		} else if tab.Has(v) {
			for ci := lo; ci < hi; ci++ {
				dst[ci] += tab.Get(v, int32(ci))
			}
		}
	}
}

// GatherColorsRangeInto is the tiled form of GatherColorsInto: vertices
// whose color falls outside [lo, hi) are skipped entirely, so a tile
// sweep touches only the cache-resident column range and each (v,
// colors[v]) cell is folded exactly once across tiles.
func GatherColorsRangeInto(tab Table, vs []int32, colors []int8, dst []float64, lo, hi int) {
	for _, v := range vs {
		c := int(colors[v])
		if c < lo || c >= hi {
			continue
		}
		dst[c] += tab.Get(v, int32(c))
	}
}

// ColorGatherer is the bulk primitive behind the single-vertex-child
// aggregated kernel: for each vertex v in vs it adds the cell
// (v, colors[v]) into dst[colors[v]], folding an adjacency list into at
// most NumSets per-color sums with one interface dispatch. Absent cells
// contribute zero.
type ColorGatherer interface {
	GatherColors(vs []int32, colors []int8, dst []float64)
}

// GatherColorsInto folds the (v, colors[v]) cells of all vs into dst
// using the ColorGatherer fast path when available.
func GatherColorsInto(tab Table, vs []int32, colors []int8, dst []float64) {
	if g, ok := tab.(ColorGatherer); ok {
		g.GatherColors(vs, colors, dst)
		return
	}
	for _, v := range vs {
		c := colors[v]
		dst[c] += tab.Get(v, int32(c))
	}
}

const (
	float64Size    = 8
	sliceHeaderLen = 24
)
