package table

import (
	"sync"
	"sync/atomic"
)

// Sparse is the paper's "improved" layout: per-vertex rows allocated only
// when a vertex first receives a count. The Has check lets the DP skip
// vertices whose active child is uninitialized and neighbors whose
// passive child is uninitialized, saving both memory and work.
//
// Rows live in bump-allocated arena blocks indexed by a compact int32
// offset table (4 bytes per vertex, versus 24-byte slice headers for a
// naive slice-of-slices), so the layout's footprint stays below the dense
// layout's whenever any vertices are untouched. Rows are never freed
// individually; the whole table is released at once, matching the DP's
// eager-release schedule.
type Sparse struct {
	numSets int
	index   []int32 // per-vertex arena slot (-1 = absent)
	blocks  [][]float64
	cur     []float64    // current block remainder
	live    atomic.Int64 // number of allocated rows, for Bytes
	mu      sync.Mutex   // guards arena growth for concurrent writers
	arena   *Arena
}

// sparseBlockRows is the number of rows per arena block.
const sparseBlockRows = 256

// NewSparse creates a sparse table for n vertices with no rows allocated.
func NewSparse(n, numSets int) *Sparse {
	return NewSparseArena(n, numSets, nil)
}

// NewSparseArena is NewSparse drawing the index vector and row blocks
// from an arena (nil falls back to plain allocation); Release returns
// them to it.
func NewSparseArena(n, numSets int, a *Arena) *Sparse {
	idx := a.I32(n)
	for i := range idx {
		idx[i] = -1
	}
	return &Sparse{numSets: numSets, index: idx, arena: a}
}

// NumSets implements Table.
func (s *Sparse) NumSets() int { return s.numSets }

// Has implements Table.
func (s *Sparse) Has(v int32) bool { return s.index[v] >= 0 }

// rowAt returns the row for an allocated slot id.
func (s *Sparse) rowAt(slot int32) []float64 {
	b := int(slot) / sparseBlockRows
	r := (int(slot) % sparseBlockRows) * s.numSets
	return s.blocks[b][r : r+s.numSets : r+s.numSets]
}

// Get implements Table.
func (s *Sparse) Get(v int32, ci int32) float64 {
	slot := s.index[v]
	if slot < 0 {
		return 0
	}
	return s.rowAt(slot)[ci]
}

// Row implements Table.
func (s *Sparse) Row(v int32) []float64 {
	slot := s.index[v]
	if slot < 0 {
		return nil
	}
	return s.rowAt(slot)
}

// carve assigns a fresh row slot to v and returns its (dirty!) storage.
// Arena slabs arrive with stale contents, so the caller must fully
// initialize the row — clear it or overwrite every cell — before the
// pass barrier publishes it to readers. Concurrent calls for DISTINCT
// vertices are safe: each vertex's index entry is only written by its
// owning worker and block carving happens under the mutex, with the
// returned row slice pointing directly into the (immutable once
// allocated) block storage. Deferring the zeroing to row granularity
// lets StoreRow skip it entirely: internal DP nodes materialize whole
// rows, and block-level memclr of soon-overwritten cells was ~30% of
// batched run time under the profiler.
func (s *Sparse) carve(v int32) []float64 {
	s.mu.Lock()
	if len(s.cur) == 0 {
		block := s.arena.F64(sparseBlockRows * s.numSets)
		s.blocks = append(s.blocks, block)
		s.cur = block
	}
	row := s.cur[:s.numSets:s.numSets]
	s.cur = s.cur[s.numSets:]
	slot := int32(s.live.Load())
	s.live.Add(1)
	s.mu.Unlock()
	s.index[v] = slot
	return row
}

// ensure materializes v's row, zeroed on first touch (the Set-style
// callers update single cells and read the rest as zero).
func (s *Sparse) ensure(v int32) []float64 {
	if slot := s.index[v]; slot >= 0 {
		return s.rowAt(slot)
	}
	row := s.carve(v)
	clear(row)
	return row
}

// Set implements Table.
func (s *Sparse) Set(v int32, ci int32, val float64) {
	s.ensure(v)[ci] = val
}

// StoreRow implements Table. An all-zero row for an absent vertex is
// skipped, preserving the selectivity of Has. A fresh row is carved
// dirty and fully overwritten — no zeroing pass.
func (s *Sparse) StoreRow(v int32, row []float64) {
	if slot := s.index[v]; slot >= 0 {
		copy(s.rowAt(slot), row)
		return
	}
	nonzero := false
	for _, x := range row {
		if x != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		return
	}
	dst := s.carve(v)
	n := copy(dst, row)
	clear(dst[n:]) // defensive: short rows must not expose stale cells
}

// AccumulateRow implements RowAccumulator: dst[i] += row(v)[i], a no-op
// for absent rows.
func (s *Sparse) AccumulateRow(v int32, dst []float64) {
	for i, x := range s.Row(v) {
		dst[i] += x
	}
}

// AccumulateRows implements BulkAccumulator; absent rows contribute
// nothing. The inner sweep is the 8-wide bounds-check-eliminated addTo
// (bulk8.go): scalar Go emits roughly one checked add per cycle, and
// with lane-widened batched rows (width numSets x B) the unroll keeps
// eight independent adds in flight — this function is ~50% of a batched
// run under the profiler.
func (s *Sparse) AccumulateRows(vs []int32, dst []float64) {
	dst = dst[:s.numSets]
	for _, v := range vs {
		slot := s.index[v]
		if slot < 0 {
			continue
		}
		addTo(dst, s.rowAt(slot))
	}
}

// AccumulateRowsRange implements RangeAccumulator: like AccumulateRows
// but folds only the flat column range [lo, hi) of each present row into
// the aligned subrange dst[lo:hi] — the tiled kernels' gather primitive.
func (s *Sparse) AccumulateRowsRange(vs []int32, dst []float64, lo, hi int) {
	sub := dst[lo:hi]
	for _, v := range vs {
		slot := s.index[v]
		if slot < 0 {
			continue
		}
		addTo(sub, s.rowAt(slot)[lo:hi])
	}
}

// GatherColors implements ColorGatherer; absent rows contribute nothing.
func (s *Sparse) GatherColors(vs []int32, colors []int8, dst []float64) {
	for _, v := range vs {
		slot := s.index[v]
		if slot < 0 {
			continue
		}
		c := colors[v]
		dst[c] += s.rowAt(slot)[c]
	}
}

// SumRow implements Table.
func (s *Sparse) SumRow(v int32) float64 {
	var sum float64
	for _, x := range s.Row(v) {
		sum += x
	}
	return sum
}

// Total implements Table.
func (s *Sparse) Total() float64 {
	var sum float64
	n := s.live.Load()
	for slot := int64(0); slot < n; slot++ {
		for _, x := range s.rowAt(int32(slot)) {
			sum += x
		}
	}
	return sum
}

// Rows implements Table: the number of arena rows allocated so far.
func (s *Sparse) Rows() int64 { return s.live.Load() }

// Bytes implements Table.
func (s *Sparse) Bytes() int64 {
	return int64(len(s.index))*4 +
		int64(len(s.blocks))*(int64(sparseBlockRows)*int64(s.numSets)*float64Size+sliceHeaderLen) +
		sliceHeaderLen
}

// Release implements Table, returning the index vector and row blocks to
// the arena.
func (s *Sparse) Release() {
	s.arena.PutI32(s.index)
	for _, b := range s.blocks {
		s.arena.PutF64(b)
	}
	s.index = nil
	s.blocks = nil
	s.cur = nil
	s.live.Store(0)
}
